package wmm_test

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"repro/wmm"
)

func TestProfiles(t *testing.T) {
	ps := wmm.Profiles()
	if len(ps) != 2 || ps["arm"] == nil || ps["power"] == nil {
		t.Fatalf("Profiles() = %v", ps)
	}
	if wmm.ARMv8().Name != "armv8" || wmm.POWER7().Name != "power7" {
		t.Error("profile names wrong")
	}
}

func TestBenchmarkRegistries(t *testing.T) {
	jvm := wmm.JVMBenchmarks()
	if len(jvm) != 8 {
		t.Errorf("JVM suite has %d benchmarks, want 8", len(jvm))
	}
	kern := wmm.KernelBenchmarks()
	if len(kern) != 11 {
		t.Errorf("kernel suite has %d benchmarks, want 11", len(kern))
	}
	for _, b := range jvm {
		got, err := wmm.JVMBenchmark(b.Name)
		if err != nil || got.Name != b.Name {
			t.Errorf("JVMBenchmark(%q): %v", b.Name, err)
		}
	}
	if _, err := wmm.JVMBenchmark("nope"); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if _, err := wmm.KernelBenchmark("nope"); err == nil {
		t.Error("unknown kernel benchmark accepted")
	}
}

func TestExperimentRegistry(t *testing.T) {
	exps := wmm.Experiments()
	if len(exps) != 20 {
		t.Errorf("experiment registry has %d entries, want 20", len(exps))
	}
	seen := map[string]bool{}
	for _, e := range exps {
		if seen[e.Name] {
			t.Errorf("duplicate experiment %q", e.Name)
		}
		seen[e.Name] = true
		if e.Run == nil || e.Desc == "" || e.Paper == "" {
			t.Errorf("experiment %q incomplete", e.Name)
		}
	}
	for _, want := range []string{"fig1", "fig10", "txt7", "litmus"} {
		if !seen[want] {
			t.Errorf("missing experiment %q", want)
		}
	}
	if err := wmm.RunExperiment("not-an-experiment", wmm.ExperimentOptions{}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestPathHelpers(t *testing.T) {
	if len(wmm.JVMElementalPaths()) != 4 {
		t.Error("JVM elemental paths")
	}
	if len(wmm.KernelMacroPaths()) != 14 {
		t.Error("kernel macro paths")
	}
	if wmm.KernelPathName(wmm.KernelRBDPath()) != "read_barrier_depends" {
		t.Error("rbd path name")
	}
	if wmm.JVMAllBarriersPath() == 0 {
		t.Error("composite path id")
	}
}

func TestStrategyHelpers(t *testing.T) {
	if !wmm.JVMStrategyJDK9().UseAcqRel || wmm.JVMStrategyJDK8().UseAcqRel {
		t.Error("JVM strategies")
	}
	sts := wmm.KernelStrategies()
	if len(sts) != 6 || sts[0].Name != "base case" || sts[5].Name != "la/sr" {
		t.Errorf("kernel strategies: %v", sts)
	}
}

func TestModelHelpers(t *testing.T) {
	p := wmm.SensitivityModel(0.003, 100)
	if p <= 0 || p >= 1 {
		t.Errorf("model value %v", p)
	}
	a := wmm.CostIncrease(0.003, p)
	if a < 99 || a > 101 {
		t.Errorf("inverse gave %v, want ~100", a)
	}
	if len(wmm.DefaultScanSizes()) < 8 {
		t.Error("default sizes too few")
	}
}

func TestLitmusSuiteAccess(t *testing.T) {
	for _, profName := range []string{"armv8", "power7"} {
		suite := wmm.LitmusSuite(profName)
		if len(suite) < 14 {
			t.Errorf("%s litmus suite has %d tests", profName, len(suite))
		}
		names := map[string]bool{}
		for _, test := range suite {
			names[test.Name] = true
		}
		if !names["MP"] || !names["SB"] || !names["CoRR"] {
			t.Errorf("%s suite missing canonical shapes", profName)
		}
	}
}

// TestEndToEndMachine exercises the facade's machine surface.
func TestEndToEndMachine(t *testing.T) {
	m, err := wmm.NewMachine(wmm.ARMv8(), wmm.MachineConfig{Cores: 1, MemWords: 256, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b := wmm.NewBuilder()
	b.MovImm(0, 7)
	b.Fence(wmm.DMBIsh)
	b.Store(0, 1, 16)
	b.Halt()
	if err := m.LoadProgram(0, b.MustBuild()); err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(100_000)
	if err != nil || !res.AllHalted {
		t.Fatalf("run: %v halted=%v", err, res.AllHalted)
	}
	if m.ReadMem(16) != 7 {
		t.Errorf("mem[16] = %d", m.ReadMem(16))
	}
}

// TestExperimentSmoke runs the two cheapest experiments end to end through
// the facade.
func TestExperimentSmoke(t *testing.T) {
	var sb strings.Builder
	opt := wmm.ExperimentOptions{Short: true, Out: &sb, Seed: 1}
	for _, name := range []string{"txt3", "fig4"} {
		if err := wmm.RunExperiment(name, opt); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	out := sb.String()
	for _, want := range []string{"lwsync", "Figure 4", "arm-nostack"} {
		if !strings.Contains(out, want) {
			t.Errorf("experiment output missing %q", want)
		}
	}
}

func TestEngineFacade(t *testing.T) {
	eng := wmm.NewEngine(wmm.EngineOptions{Workers: 2})
	defer eng.Close()
	results, err := eng.Run(context.Background(), []string{"fig4", "txt3"},
		wmm.EngineRunOptions{Short: true, Samples: 2, Seed: 1, Parallel: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 || results[0].Experiment != "fig4" || results[1].Experiment != "txt3" {
		t.Fatalf("engine results out of order: %+v", results)
	}
	if !strings.Contains(results[0].Output, "Figure 4") {
		t.Errorf("fig4 output missing table: %q", results[0].Output)
	}

	raw, err := wmm.RunExperimentJSON(context.Background(),
		"fig4", wmm.ExperimentOptions{Short: true, Samples: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var r wmm.EngineResult
	if err := json.Unmarshal(raw, &r); err != nil {
		t.Fatalf("RunExperimentJSON returned invalid JSON: %v", err)
	}
	if r.Experiment != "fig4" || len(r.Tables) != 1 {
		t.Errorf("structured result = %q with %d tables", r.Experiment, len(r.Tables))
	}
}

func TestC11Facade(t *testing.T) {
	if len(wmm.C11Paths()) != 7 {
		t.Error("c11 paths")
	}
	g := wmm.NewC11(wmm.ARMv8(), true)
	b := wmm.NewBuilder()
	g.Load(b, wmm.Acquire, 2, 1, 0)
	g.Store(b, wmm.Release, 2, 1, 8)
	if b.Len() == 0 {
		t.Error("c11 generator emitted nothing")
	}
	sb := wmm.C11StackBenchmark("s", wmm.ReleaseAcquireStack())
	if sb == nil || sb.Name != "s" {
		t.Error("stack benchmark")
	}
	cb := wmm.C11CounterBenchmark("c", wmm.SeqCst)
	if cb == nil {
		t.Error("counter benchmark")
	}
	if _, err := wmm.MeasureBenchmark(cb, wmm.DefaultEnv(wmm.ARMv8()), 1, 1); err != nil {
		t.Errorf("counter run: %v", err)
	}
}
