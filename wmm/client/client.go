// Package client is the typed Go client for the wmmd v1 API: the
// versioned HTTP surface of the weak-memory-model benchmarking service
// (run submission, status, streaming progress, cancellation, the
// paginated catalogues, generated litmus campaigns, fence-strategy
// optimizer jobs) plus the worker
// lease protocol the sharded execution backend speaks (cmd/wmmworker
// is built on it).
//
// Every method takes a context and propagates it through the request.
// Non-2xx responses decode the uniform error envelope {"error":
// {"code", "message"}} into *Error.  Submissions refused by admission
// control (429) are retried automatically, honouring the server's
// Retry-After hint; 503s and connection-refused dial errors — a
// coordinator restarting or failing over to a standby — are retried
// with capped exponential backoff from the same attempt budget, so
// workers and clients ride out a failover without surfacing transient
// errors.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"
)

// asError is errors.As with a pointer target, split out so types.go
// stays free of the errors import knot.
func asError(err error, target **Error) bool { return errors.As(err, target) }

// Client talks to one wmmd server.  A Client is safe for concurrent
// use by multiple goroutines.
type Client struct {
	base       string
	hc         *http.Client
	maxRetries int           // extra attempts after a retryable failure (0 = no retry)
	maxWait    time.Duration // cap on one backoff pause
	tenant     string        // X-WMM-Tenant header value ("" = none)
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying http.Client (timeouts,
// transports, test doubles).
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// WithRetry sets how many times a retryable failure (429, 503, dial
// refused) is retried (default 4) and the cap on one backoff pause
// (default 30s).
func WithRetry(attempts int, maxWait time.Duration) Option {
	return func(c *Client) {
		c.maxRetries = attempts
		if maxWait > 0 {
			c.maxWait = maxWait
		}
	}
}

// WithTenant stamps every request with the X-WMM-Tenant header, naming
// the fair-share queue and quota bucket submissions are accounted to.
// The header wins over any tenant field in a submitted spec.
func WithTenant(name string) Option { return func(c *Client) { c.tenant = name } }

// New returns a client for the server at base (e.g.
// "http://127.0.0.1:8347").
func New(base string, opts ...Option) *Client {
	c := &Client{
		base:       strings.TrimRight(base, "/"),
		hc:         http.DefaultClient,
		maxRetries: 4,
		maxWait:    30 * time.Second,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// apiErr decodes the error envelope from a non-2xx response.
func apiErr(resp *http.Response, body []byte) *Error {
	e := &Error{Status: resp.StatusCode}
	var env struct {
		Err struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if json.Unmarshal(body, &env) == nil && (env.Err.Code != "" || env.Err.Message != "") {
		e.Code, e.Message = env.Err.Code, env.Err.Message
	} else {
		e.Message = strings.TrimSpace(string(body))
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil && secs >= 0 {
			e.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	return e
}

// newRequest builds a request with the client's standing headers (the
// tenant identity), so the raw-response paths (canonical JSON, NDJSON
// streaming) carry them like the typed ones.
func (c *Client) newRequest(ctx context.Context, method, url string, body io.Reader) (*http.Request, error) {
	req, err := http.NewRequestWithContext(ctx, method, url, body)
	if err != nil {
		return nil, err
	}
	if c.tenant != "" {
		req.Header.Set("X-WMM-Tenant", c.tenant)
	}
	return req, nil
}

// retryableDialErr reports a connection-level failure worth retrying:
// nothing was accepting on the port (coordinator restarting, standby
// not yet promoted).  Failures after the connection was established are
// not retried — the request may have executed.
func retryableDialErr(err error) bool {
	var op *net.OpError
	return errors.As(err, &op) && op.Op == "dial"
}

// backoff computes the pause before retry attempt n: the server's
// Retry-After when given, else exponential from 250ms, capped.
func (c *Client) backoff(hint time.Duration, attempt int) time.Duration {
	wait := hint
	if wait <= 0 {
		wait = 250 * time.Millisecond << attempt
	}
	if wait > c.maxWait {
		wait = c.maxWait
	}
	return wait
}

// sleep pauses for d or until ctx ends.
func sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		t.Stop()
		return ctx.Err()
	}
}

// do performs one API call: marshal in (if non-nil), retry retryable
// failures (429 honouring Retry-After, 503, dial refused) with capped
// backoff, decode the envelope on failure and out (if non-nil) on
// success.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body []byte
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			return fmt.Errorf("client: marshal %s %s body: %w", method, path, err)
		}
	}
	for attempt := 0; ; attempt++ {
		var rd io.Reader
		if in != nil {
			rd = bytes.NewReader(body)
		}
		req, err := c.newRequest(ctx, method, c.base+path, rd)
		if err != nil {
			return fmt.Errorf("client: %s %s: %w", method, path, err)
		}
		if in != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			if retryableDialErr(err) && attempt < c.maxRetries {
				if serr := sleep(ctx, c.backoff(0, attempt)); serr != nil {
					return serr
				}
				continue
			}
			return fmt.Errorf("client: %s %s: %w", method, path, err)
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return fmt.Errorf("client: %s %s: read body: %w", method, path, err)
		}
		if resp.StatusCode >= 200 && resp.StatusCode < 300 {
			if out == nil {
				return nil
			}
			if err := json.Unmarshal(raw, out); err != nil {
				return fmt.Errorf("client: %s %s: decode response: %w", method, path, err)
			}
			return nil
		}
		apiE := apiErr(resp, raw)
		retryable := resp.StatusCode == http.StatusTooManyRequests ||
			resp.StatusCode == http.StatusServiceUnavailable
		if retryable && attempt < c.maxRetries {
			if serr := sleep(ctx, c.backoff(apiE.RetryAfter, attempt)); serr != nil {
				return serr
			}
			continue
		}
		return apiE
	}
}

// GetJSON performs a raw GET against an arbitrary server path and
// decodes the JSON response into out (which may be nil to discard).
// It is the escape hatch for endpoints outside the typed surface
// (/healthz, /readyz, legacy shims); errors still decode the envelope
// into *Error.
func (c *Client) GetJSON(ctx context.Context, path string, out any) error {
	return c.do(ctx, http.MethodGet, path, nil, out)
}

// pageQuery renders cursor pagination into a query string.
func pageQuery(p Page) string {
	q := url.Values{}
	if p.Limit > 0 {
		q.Set("limit", strconv.Itoa(p.Limit))
	}
	if p.After != "" {
		q.Set("after", p.After)
	}
	if len(q) == 0 {
		return ""
	}
	return "?" + q.Encode()
}

// Experiments returns one page of the experiment catalogue.
func (c *Client) Experiments(ctx context.Context, p Page) (ExperimentsPage, error) {
	var out ExperimentsPage
	err := c.do(ctx, http.MethodGet, "/api/v1/experiments"+pageQuery(p), nil, &out)
	return out, err
}

// SubmitRun submits a run, retrying on admission-control 429s per the
// client's retry budget.
func (c *Client) SubmitRun(ctx context.Context, spec RunSpec) (Submitted, error) {
	var out Submitted
	err := c.do(ctx, http.MethodPost, "/api/v1/runs", spec, &out)
	return out, err
}

// Runs returns one page of run statuses, in submission order.
func (c *Client) Runs(ctx context.Context, p Page) (RunsPage, error) {
	var out RunsPage
	err := c.do(ctx, http.MethodGet, "/api/v1/runs"+pageQuery(p), nil, &out)
	return out, err
}

// Run returns a run's status.  includeResults asks for partial results
// while the run is still executing (final results are always present).
func (c *Client) Run(ctx context.Context, id string, includeResults bool) (RunStatus, error) {
	path := "/api/v1/runs/" + url.PathEscape(id)
	if includeResults {
		path += "?results=1"
	}
	var out RunStatus
	err := c.do(ctx, http.MethodGet, path, nil, &out)
	return out, err
}

// CanonicalRun returns a finished run's canonical JSON — the ordered
// results with wall times zeroed, the byte-comparable form that must
// be identical for local, sharded and resumed executions of the same
// spec and seed.
func (c *Client) CanonicalRun(ctx context.Context, id string) ([]byte, error) {
	req, err := c.newRequest(ctx, http.MethodGet,
		c.base+"/api/v1/runs/"+url.PathEscape(id)+"?canonical=1", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, apiErr(resp, raw)
	}
	return raw, nil
}

// CancelRun cancels a running run, or removes a finished one from the
// catalogue.
func (c *Client) CancelRun(ctx context.Context, id string) (CancelResponse, error) {
	var out CancelResponse
	err := c.do(ctx, http.MethodDelete, "/api/v1/runs/"+url.PathEscape(id), nil, &out)
	return out, err
}

// WaitRun polls a run until it leaves the running state (or ctx ends),
// returning the final status.
func (c *Client) WaitRun(ctx context.Context, id string, poll time.Duration) (RunStatus, error) {
	if poll <= 0 {
		poll = 250 * time.Millisecond
	}
	for {
		st, err := c.Run(ctx, id, false)
		if err != nil {
			return st, err
		}
		if st.State != StateRunning {
			return st, nil
		}
		t := time.NewTimer(poll)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return st, ctx.Err()
		}
	}
}

// WatchRun streams a run's NDJSON progress: the opening snapshot is
// returned, and fn is invoked for each subsequent event until the
// terminal "end" event (inclusive), the stream closes, or fn returns a
// non-nil error (which aborts the watch and is returned).
func (c *Client) WatchRun(ctx context.Context, id string, fn func(Event) error) (RunStatus, error) {
	var snap RunStatus
	req, err := c.newRequest(ctx, http.MethodGet,
		c.base+"/api/v1/runs/"+url.PathEscape(id)+"?stream=1", nil)
	if err != nil {
		return snap, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return snap, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		return snap, apiErr(resp, raw)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 64<<20) // snapshots can be large
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return snap, err
		}
		return snap, io.ErrUnexpectedEOF
	}
	if err := json.Unmarshal(sc.Bytes(), &snap); err != nil {
		return snap, fmt.Errorf("client: decode stream snapshot: %w", err)
	}
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return snap, fmt.Errorf("client: decode stream event: %w", err)
		}
		if fn != nil {
			if err := fn(ev); err != nil {
				return snap, err
			}
		}
		if ev.Event == "end" {
			return snap, nil
		}
	}
	return snap, sc.Err()
}

// SubmitLitmus submits a generated litmus campaign, retrying on
// admission-control 429s per the client's retry budget.
func (c *Client) SubmitLitmus(ctx context.Context, spec LitmusSpec) (Submitted, error) {
	var out Submitted
	err := c.do(ctx, http.MethodPost, "/api/v1/litmus", spec, &out)
	return out, err
}

// Litmus returns a campaign's status.  includeResults asks for partial
// shard results while the campaign is still executing (final results
// are always present).
func (c *Client) Litmus(ctx context.Context, id string, includeResults bool) (LitmusStatus, error) {
	path := "/api/v1/litmus/" + url.PathEscape(id)
	if includeResults {
		path += "?results=1"
	}
	var out LitmusStatus
	err := c.do(ctx, http.MethodGet, path, nil, &out)
	return out, err
}

// WaitLitmus polls a campaign until it leaves the running state (or ctx
// ends), returning the final status.
func (c *Client) WaitLitmus(ctx context.Context, id string, poll time.Duration) (LitmusStatus, error) {
	if poll <= 0 {
		poll = 250 * time.Millisecond
	}
	for {
		st, err := c.Litmus(ctx, id, false)
		if err != nil {
			return st, err
		}
		if st.State != StateRunning {
			return st, nil
		}
		t := time.NewTimer(poll)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return st, ctx.Err()
		}
	}
}

// CanonicalLitmus returns a finished campaign's canonical JSON — the
// ordered shard results with wall times zeroed, byte-identical for
// local, sharded and re-executed campaigns of the same spec.
func (c *Client) CanonicalLitmus(ctx context.Context, id string) ([]byte, error) {
	req, err := c.newRequest(ctx, http.MethodGet,
		c.base+"/api/v1/litmus/"+url.PathEscape(id)+"?canonical=1", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, apiErr(resp, raw)
	}
	return raw, nil
}

// CancelLitmus cancels a running campaign, or removes a finished one
// from the catalogue.
func (c *Client) CancelLitmus(ctx context.Context, id string) (CancelResponse, error) {
	var out CancelResponse
	err := c.do(ctx, http.MethodDelete, "/api/v1/litmus/"+url.PathEscape(id), nil, &out)
	return out, err
}

// LitmusList returns one page of litmus campaign statuses, in
// submission order.
func (c *Client) LitmusList(ctx context.Context, p Page) (LitmusPage, error) {
	var out LitmusPage
	err := c.do(ctx, http.MethodGet, "/api/v1/litmus"+pageQuery(p), nil, &out)
	return out, err
}

// SubmitOptimize submits a fence-strategy optimizer job, retrying on
// admission-control 429s per the client's retry budget.
func (c *Client) SubmitOptimize(ctx context.Context, spec OptimizeSpec) (Submitted, error) {
	var out Submitted
	err := c.do(ctx, http.MethodPost, "/api/v1/optimize", spec, &out)
	return out, err
}

// Optimize returns an optimizer job's status (the ranked report rides
// along as raw JSON once the job is done).
func (c *Client) Optimize(ctx context.Context, id string) (OptimizeStatus, error) {
	var out OptimizeStatus
	err := c.do(ctx, http.MethodGet, "/api/v1/optimize/"+url.PathEscape(id), nil, &out)
	return out, err
}

// OptimizeList returns one page of optimizer job statuses, in
// submission order.
func (c *Client) OptimizeList(ctx context.Context, p Page) (OptimizePage, error) {
	var out OptimizePage
	err := c.do(ctx, http.MethodGet, "/api/v1/optimize"+pageQuery(p), nil, &out)
	return out, err
}

// WaitOptimize polls an optimizer job until it leaves the running state
// (or ctx ends), returning the final status.
func (c *Client) WaitOptimize(ctx context.Context, id string, poll time.Duration) (OptimizeStatus, error) {
	if poll <= 0 {
		poll = 250 * time.Millisecond
	}
	for {
		st, err := c.Optimize(ctx, id)
		if err != nil {
			return st, err
		}
		if st.State != StateRunning {
			return st, nil
		}
		t := time.NewTimer(poll)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return st, ctx.Err()
		}
	}
}

// CanonicalOptimize returns a finished optimizer job's canonical report
// JSON — byte-identical for the same spec and seed wherever the job's
// cells executed (local, sharded, or served from the result cache).
func (c *Client) CanonicalOptimize(ctx context.Context, id string) ([]byte, error) {
	req, err := c.newRequest(ctx, http.MethodGet,
		c.base+"/api/v1/optimize/"+url.PathEscape(id)+"?canonical=1", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, apiErr(resp, raw)
	}
	return raw, nil
}

// CancelOptimize cancels a running optimizer job, or removes a finished
// one from the catalogue.
func (c *Client) CancelOptimize(ctx context.Context, id string) (CancelResponse, error) {
	var out CancelResponse
	err := c.do(ctx, http.MethodDelete, "/api/v1/optimize/"+url.PathEscape(id), nil, &out)
	return out, err
}

// Lease asks the coordinator for a batch of up to maxJobs experiment
// jobs under a new lease.  worker identifies this process in
// assignment records and logs.  An empty grant (LeaseID == "") means
// no work was queued.
func (c *Client) Lease(ctx context.Context, worker string, maxJobs int) (LeaseGrant, error) {
	var out LeaseGrant
	err := c.do(ctx, http.MethodPost, "/api/v1/leases",
		map[string]any{"worker": worker, "max_jobs": maxJobs}, &out)
	return out, err
}

// Heartbeat renews a lease, returning the refreshed TTL.  A *Error
// with status 410 means the lease expired and its jobs were re-queued:
// abandon the batch.
func (c *Client) Heartbeat(ctx context.Context, leaseID string) (time.Duration, error) {
	var out struct {
		TTLMs int64 `json:"ttl_ms"`
	}
	err := c.do(ctx, http.MethodPost, "/api/v1/leases/"+url.PathEscape(leaseID)+"/heartbeat", struct{}{}, &out)
	return time.Duration(out.TTLMs) * time.Millisecond, err
}

// UploadResults settles a lease with the batch's completed results.
// Jobs the upload does not cover are re-queued by the coordinator.  A
// *Error with status 410 means the lease already expired — the batch
// was re-queued and this upload is moot; drop it.
func (c *Client) UploadResults(ctx context.Context, leaseID string, results []JobResult) (UploadAck, error) {
	var out UploadAck
	err := c.do(ctx, http.MethodPost, "/api/v1/leases/"+url.PathEscape(leaseID)+"/results",
		map[string]any{"results": results}, &out)
	return out, err
}
