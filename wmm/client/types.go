package client

import (
	"encoding/json"
	"fmt"
	"time"
)

// RunSpec is the body of POST /api/v1/runs.
type RunSpec struct {
	// Experiments to run, in order; empty = the full evaluation in
	// paper order.
	Experiments []string `json:"experiments,omitempty"`
	// Short selects the reduced sweep.
	Short bool `json:"short"`
	// Samples per measurement (0 = driver default).
	Samples int `json:"samples,omitempty"`
	// Seed is the base random seed (0 = 1).
	Seed int64 `json:"seed,omitempty"`
	// Parallel experiments in flight (0 = server default).
	Parallel int `json:"parallel,omitempty"`
	// TimeoutMs bounds the whole run; 0 = no deadline.
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
	// Adaptive opts in to sequential stopping: each measurement draws
	// samples until its Student-t 95% CI is tight enough, instead of the
	// fixed count.
	Adaptive *AdaptiveSpec `json:"adaptive,omitempty"`
	// NoCache bypasses the server's content-addressed result cache for
	// this run: every job executes and nothing is committed.
	NoCache bool `json:"nocache,omitempty"`
	// Tenant names the fair-share queue and quota bucket the run is
	// accounted to.  The X-WMM-Tenant header (see WithTenant) takes
	// precedence; empty = "default".
	Tenant string `json:"tenant,omitempty"`
}

// AdaptiveSpec is the sequential stopping rule carried by RunSpec and
// leased jobs, mirroring the server's.
type AdaptiveSpec struct {
	// RelPrecision stops sampling once (CI half-width)/|mean| is at or
	// below it; must be in (0, 1].
	RelPrecision float64 `json:"rel_precision"`
	// MinSamples floors the sample count before the precision test
	// applies (0 = server default, 3).
	MinSamples int `json:"min_samples,omitempty"`
	// MaxSamples is the hard ceiling (0 = server default, 64).
	MaxSamples int `json:"max_samples,omitempty"`
}

// Submitted acknowledges an accepted run.
type Submitted struct {
	ID    string `json:"id"`
	State string `json:"state"`
	Total int    `json:"total"`
}

// Result is one experiment's structured outcome.  Tables and Fits are
// carried as raw JSON so the client does not redeclare the engine's
// report model; decode them into your own types as needed.
type Result struct {
	Experiment   string            `json:"experiment"`
	Paper        string            `json:"paper"`
	Desc         string            `json:"desc"`
	Status       string            `json:"status"`
	Tables       []json.RawMessage `json:"tables,omitempty"`
	Fits         []json.RawMessage `json:"fits,omitempty"`
	Measurements int               `json:"measurements"`
	Samples      int               `json:"samples"`
	WallNs       int64             `json:"wall_ns"`
	Output       string            `json:"output"`
	Err          string            `json:"error,omitempty"`
	// Cache is the result's provenance when it was served from the
	// server's result cache ("memory", "store", or "singleflight")
	// instead of executed; empty for an actual execution.
	Cache string `json:"cache,omitempty"`
}

// Run states, mirroring the server's.
const (
	StateRunning   = "running"
	StateDone      = "done"
	StateFailed    = "failed"
	StateCancelled = "cancelled"
	StatePartial   = "partial"
)

// RunStatus is the snapshot served by GET /api/v1/runs/{id}.  The id /
// kind / state / tenant / started_at / finished_at header is the
// envelope shared by every v1 job resource (runs, litmus, optimize).
type RunStatus struct {
	ID           string     `json:"id"`
	Kind         string     `json:"kind"`
	State        string     `json:"state"`
	Tenant       string     `json:"tenant,omitempty"`
	FinishedAt   *time.Time `json:"finished_at,omitempty"`
	Spec         RunSpec    `json:"spec"`
	Total        int        `json:"total"`
	Completed    int        `json:"completed"`
	Running      []string   `json:"running,omitempty"`
	Resumed      bool       `json:"resumed,omitempty"`
	Measurements int        `json:"measurements"`
	Samples      int        `json:"samples"`
	Error        string     `json:"error,omitempty"`
	StartedAt    time.Time  `json:"started_at"`
	WallMs       int64      `json:"wall_ms"`
	Results      []Result   `json:"results,omitempty"`
}

// Event is one NDJSON progress record from a streamed run.
type Event struct {
	Event      string `json:"event"` // "started" | "done" | "end"
	Experiment string `json:"experiment,omitempty"`
	Error      string `json:"error,omitempty"`
	WallMs     int64  `json:"wall_ms,omitempty"`
	State      string `json:"state,omitempty"` // on "end"
	Completed  int    `json:"completed,omitempty"`
	Total      int    `json:"total,omitempty"`
}

// ExperimentInfo is one catalogue entry.
type ExperimentInfo struct {
	Name  string `json:"name"`
	Paper string `json:"paper"`
	Desc  string `json:"desc"`
}

// Page selects one page of a cursor-paginated listing.
type Page struct {
	// Limit bounds the page size (0 = server default, 100).
	Limit int
	// After is the exclusive cursor: the last item of the previous
	// page, as returned in NextAfter.
	After string
}

// ExperimentsPage is one page of the experiment catalogue.
type ExperimentsPage struct {
	Items     []ExperimentInfo `json:"items"`
	NextAfter string           `json:"next_after,omitempty"`
}

// RunsPage is one page of run statuses.
type RunsPage struct {
	Items     []RunStatus `json:"items"`
	NextAfter string      `json:"next_after,omitempty"`
}

// CancelResponse acknowledges DELETE /api/v1/runs/{id}.
type CancelResponse struct {
	ID      string `json:"id"`
	State   string `json:"state"`
	Deleted bool   `json:"deleted,omitempty"`
}

// Job is one leased job: everything a worker needs to reproduce the
// exact bytes a local execution would produce.  When Litmus is non-nil
// the job is a litmus shard (Experiment carries the shard name and the
// samples/seed/short fields are unused); when Optimize is non-empty it
// is a fence-optimizer cell, carried opaquely — the worker decodes it
// with the engine's cell type, which the client does not redeclare.
type Job struct {
	RunID      string          `json:"run_id"`
	Experiment string          `json:"experiment"`
	Samples    int             `json:"samples,omitempty"`
	Seed       int64           `json:"seed,omitempty"`
	Short      bool            `json:"short"`
	Adaptive   *AdaptiveSpec   `json:"adaptive,omitempty"`
	Litmus     *LitmusJob      `json:"litmus,omitempty"`
	Optimize   json.RawMessage `json:"optimize,omitempty"`
}

// LitmusSpec is the body of POST /api/v1/litmus: a campaign of
// generated litmus tests against one simulated machine.  The batch is
// a pure function of (GenSeed, Count, MaxThreads); the coordinator
// shards it by index range and workers regenerate their slice.
type LitmusSpec struct {
	// Arch selects the machine: "armv8" or "power7".
	Arch string `json:"arch"`
	// GenSeed drives the generator (0 = 1).
	GenSeed int64 `json:"gen_seed,omitempty"`
	// Count is the number of distinct generated tests.
	Count int `json:"count"`
	// MaxThreads caps the cycle length (2..4; 0 = 4).
	MaxThreads int `json:"max_threads,omitempty"`
	// Trials is the randomized trial count per test (0 = 400).
	Trials int `json:"trials,omitempty"`
	// Seed is the runner's base seed (0 = 1).
	Seed int64 `json:"seed,omitempty"`
	// ShardSize is the number of tests per dispatched shard (0 = 50).
	ShardSize int `json:"shard_size,omitempty"`
	// Parallel shards in flight at once (0 = server default).
	Parallel int `json:"parallel,omitempty"`
	// TimeoutMs bounds the whole campaign; 0 = no deadline.
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
	// Tenant names the fair-share queue and quota bucket the campaign
	// is accounted to (the X-WMM-Tenant header wins; empty = "default").
	Tenant string `json:"tenant,omitempty"`
}

// LitmusJob is the shard descriptor carried by a leased litmus job:
// tests [Lo,Hi) of the batch (GenSeed, Count, MaxThreads) generates.
type LitmusJob struct {
	Arch       string `json:"arch"`
	GenSeed    int64  `json:"gen_seed,omitempty"`
	Count      int    `json:"count"`
	MaxThreads int    `json:"max_threads,omitempty"`
	Trials     int    `json:"trials,omitempty"`
	Seed       int64  `json:"seed,omitempty"`
	Lo         int    `json:"lo"`
	Hi         int    `json:"hi"`
}

// LitmusStatus is the snapshot served by GET /api/v1/litmus/{id}.
// Each Result is one shard: Output carries a canonical JSON array of
// per-test outcome rows {"name", "trials", "hits", "relaxed"}.
type LitmusStatus struct {
	ID         string     `json:"id"`
	Kind       string     `json:"kind"`
	State      string     `json:"state"`
	Tenant     string     `json:"tenant,omitempty"`
	FinishedAt *time.Time `json:"finished_at,omitempty"`
	Spec       LitmusSpec `json:"spec"`
	Total      int        `json:"total"`     // shards
	Completed  int        `json:"completed"` // shards finished
	Tests      int        `json:"tests"`
	Trials     int        `json:"trials"`
	Error      string     `json:"error,omitempty"`
	StartedAt  time.Time  `json:"started_at"`
	WallMs     int64      `json:"wall_ms"`
	Results    []Result   `json:"results,omitempty"`
}

// OptimizeSpec is the body of POST /api/v1/optimize: a fence-strategy
// optimizer job.  The search enumerates per-barrier lowering strategies
// for one platform (Strategies, or the platform's full catalogue),
// proves each candidate sound by exhaustive litmus exploration, then
// ranks the sound survivors by measured throughput on the workload mix.
type OptimizeSpec struct {
	// Platform selects the strategy catalogue: "jvm", "kernel" or "c11"
	// (empty = "jvm").
	Platform string `json:"platform,omitempty"`
	// Arch is the simulated machine: "armv8" or "power7" (empty =
	// "armv8").
	Arch string `json:"arch,omitempty"`
	// Strategies restricts the search space by name; empty = the
	// platform's full catalogue.  Must include the baseline.
	Strategies []string `json:"strategies,omitempty"`
	// Baseline names the strategy ratios are computed against (empty =
	// the platform's conventional default).
	Baseline string `json:"baseline,omitempty"`
	// Gate configures the soundness check.
	Gate OptimizeGate `json:"gate"`
	// Workload configures the scoring measurement.
	Workload OptimizeWorkload `json:"workload"`
	// Samples per measurement cell (0 = 5).
	Samples int `json:"samples,omitempty"`
	// FitCosts are the synthetic barrier costs (ns) swept for the
	// sensitivity fit; at least two, strictly increasing (empty =
	// defaults).
	FitCosts []int64 `json:"fit_costs,omitempty"`
	// Seed drives every measurement (0 = 1).
	Seed int64 `json:"seed,omitempty"`
	// Parallel cells in flight at once (0 = server default).
	Parallel int `json:"parallel,omitempty"`
	// TimeoutMs bounds the whole job; 0 = no deadline.
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
	// NoCache bypasses the cluster result cache: every cell executes
	// even when a prior job already measured the identical cell.
	NoCache bool `json:"nocache,omitempty"`
	// Tenant names the fair-share queue and quota bucket the job is
	// accounted to (the X-WMM-Tenant header wins; empty = "default").
	Tenant string `json:"tenant,omitempty"`
}

// OptimizeGate configures the soundness gate of an optimizer job.
type OptimizeGate struct {
	// Shapes are the litmus shapes every candidate must pass (empty =
	// the platform's defaults).
	Shapes []string `json:"shapes,omitempty"`
	// MaxDelay bounds the exhaustive exploration's reorder-delay search
	// (0 = 32).
	MaxDelay int64 `json:"max_delay,omitempty"`
}

// OptimizeWorkload configures the scoring workload of an optimizer job.
type OptimizeWorkload struct {
	// Mix weights operations by name (empty = the platform's default
	// mix).
	Mix map[string]int `json:"mix,omitempty"`
	// Cores simulated (0 = 4).
	Cores int `json:"cores,omitempty"`
	// MaxCycles bounds one measurement (0 = server default).
	MaxCycles int64 `json:"max_cycles,omitempty"`
}

// OptimizeStatus is the snapshot served by GET /api/v1/optimize/{id}.
// Report carries the final ranked report as raw JSON once the job is
// done; fetch ?canonical=1 (CanonicalOptimize) for the byte-comparable
// form.
type OptimizeStatus struct {
	ID              string          `json:"id"`
	Kind            string          `json:"kind"`
	State           string          `json:"state"`
	Tenant          string          `json:"tenant,omitempty"`
	Phase           string          `json:"phase"` // "gate" | "measure" | "done"
	Spec            OptimizeSpec    `json:"spec"`
	Candidates      int             `json:"candidates"`
	Tried           int             `json:"tried"`
	RejectedUnsound int             `json:"rejected_unsound"`
	Scored          int             `json:"scored"`
	Best            string          `json:"best,omitempty"`
	CellsDone       int             `json:"cells_done"`
	Error           string          `json:"error,omitempty"`
	StartedAt       time.Time       `json:"started_at"`
	FinishedAt      *time.Time      `json:"finished_at,omitempty"`
	WallMs          int64           `json:"wall_ms"`
	Report          json.RawMessage `json:"report,omitempty"`
}

// OptimizePage is one page of optimizer job statuses.
type OptimizePage struct {
	Items     []OptimizeStatus `json:"items"`
	NextAfter string           `json:"next_after,omitempty"`
}

// LitmusPage is one page of litmus campaign statuses.
type LitmusPage struct {
	Items     []LitmusStatus `json:"items"`
	NextAfter string         `json:"next_after,omitempty"`
}

// LeaseGrant is a batch of jobs under a TTL'd lease.  An empty LeaseID
// means the queue had no work; poll again after an idle interval.
type LeaseGrant struct {
	LeaseID string `json:"lease_id,omitempty"`
	TTLMs   int64  `json:"ttl_ms,omitempty"`
	Jobs    []Job  `json:"jobs"`
}

// TTL is the grant's lease duration.
func (g LeaseGrant) TTL() time.Duration { return time.Duration(g.TTLMs) * time.Millisecond }

// JobResult is one completed job's upload.  Result carries the
// executed engine Result as raw JSON, byte-for-byte as produced.
type JobResult struct {
	RunID      string          `json:"run_id"`
	Experiment string          `json:"experiment"`
	Result     json.RawMessage `json:"result"`
}

// UploadAck reports how a lease settled: jobs accepted with results,
// and jobs the upload did not cover that were re-queued.
type UploadAck struct {
	Accepted int `json:"accepted"`
	Requeued int `json:"requeued"`
}

// Error is the uniform API error envelope {"error": {"code",
// "message"}} carried by every non-2xx response, plus transport
// context.  RetryAfter is populated from the Retry-After header on 429.
type Error struct {
	Status     int    // HTTP status code
	Code       string // machine-readable error code ("not_found", "saturated", ...)
	Message    string
	RetryAfter time.Duration
}

func (e *Error) Error() string {
	if e.Code != "" {
		return fmt.Sprintf("api error %d (%s): %s", e.Status, e.Code, e.Message)
	}
	return fmt.Sprintf("api error %d: %s", e.Status, e.Message)
}

// IsNotFound reports whether err is an API 404.
func IsNotFound(err error) bool {
	var e *Error
	return asError(err, &e) && e.Status == 404
}

// IsSaturated reports whether err is an admission-control 429 — the
// caller should back off for e.RetryAfter and resubmit.
func IsSaturated(err error) bool {
	var e *Error
	return asError(err, &e) && e.Status == 429
}

// IsUnavailable reports whether err is a 503 — the server is shutting
// down, or an HA standby has not (yet) been promoted to leader.  The
// client retries these itself; seeing one here means the retry budget
// ran out.
func IsUnavailable(err error) bool {
	var e *Error
	return asError(err, &e) && e.Status == 503
}
