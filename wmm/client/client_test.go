package client

import (
	"context"
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// TestRetryOn429 verifies SubmitRun rides out admission-control
// refusals: each 429 is retried after the server's Retry-After hint,
// and the eventual acceptance is returned.
func TestRetryOn429(t *testing.T) {
	var calls atomic.Int32
	var sawBody atomic.Value
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost || r.URL.Path != "/api/v1/runs" {
			t.Errorf("unexpected request %s %s", r.Method, r.URL.Path)
		}
		var spec RunSpec
		if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
			t.Errorf("attempt %d sent an unreadable body: %v", calls.Load(), err)
		}
		sawBody.Store(spec)
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(map[string]any{"error": map[string]string{
				"code": "saturated", "message": "queue full",
			}})
			return
		}
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(Submitted{ID: "run-1", State: StateRunning, Total: 1})
	}))
	defer ts.Close()

	cl := New(ts.URL, WithRetry(4, time.Second))
	sub, err := cl.SubmitRun(context.Background(), RunSpec{Experiments: []string{"fig4"}, Seed: 3})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if sub.ID != "run-1" || calls.Load() != 3 {
		t.Errorf("sub=%+v after %d calls, want run-1 after 3", sub, calls.Load())
	}
	// The body must be re-sent intact on every attempt.
	if spec := sawBody.Load().(RunSpec); len(spec.Experiments) != 1 || spec.Seed != 3 {
		t.Errorf("final attempt body = %+v", spec)
	}
}

// TestRetryBudgetExhausted verifies a persistent 429 eventually
// surfaces as *Error with the Retry-After hint captured.
func TestRetryBudgetExhausted(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Retry-After", "0")
		w.WriteHeader(http.StatusTooManyRequests)
		json.NewEncoder(w).Encode(map[string]any{"error": map[string]string{
			"code": "saturated", "message": "queue full",
		}})
	}))
	defer ts.Close()

	_, err := New(ts.URL, WithRetry(2, time.Second)).SubmitRun(context.Background(), RunSpec{})
	if !IsSaturated(err) {
		t.Fatalf("err = %v, want IsSaturated", err)
	}
	var apiErr *Error
	if !errors.As(err, &apiErr) || apiErr.Code != "saturated" {
		t.Errorf("envelope not decoded: %v", err)
	}
	if calls.Load() != 3 { // initial attempt + 2 retries
		t.Errorf("server saw %d calls, want 3", calls.Load())
	}
}

// TestEnvelopeDecoding verifies non-2xx responses become *Error with
// status, code and message, and that the helpers classify them.
func TestEnvelopeDecoding(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNotFound)
		json.NewEncoder(w).Encode(map[string]any{"error": map[string]string{
			"code": "not_found", "message": `unknown run "nope"`,
		}})
	}))
	defer ts.Close()

	_, err := New(ts.URL).Run(context.Background(), "nope", false)
	if !IsNotFound(err) {
		t.Fatalf("err = %v, want IsNotFound", err)
	}
	var apiErr *Error
	if !errors.As(err, &apiErr) {
		t.Fatal("err is not *Error")
	}
	if apiErr.Status != 404 || apiErr.Code != "not_found" || apiErr.Message == "" {
		t.Errorf("decoded envelope = %+v", apiErr)
	}
	if apiErr.Error() == "" {
		t.Error("Error() empty")
	}
}

// TestPaginationParams verifies Page renders into limit/after query
// parameters and page responses decode.
func TestPaginationParams(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if got := r.URL.Query().Get("limit"); got != "2" {
			t.Errorf("limit = %q, want 2", got)
		}
		if got := r.URL.Query().Get("after"); got != "fig4" {
			t.Errorf("after = %q, want fig4", got)
		}
		json.NewEncoder(w).Encode(ExperimentsPage{
			Items:     []ExperimentInfo{{Name: "fig5"}, {Name: "fig6"}},
			NextAfter: "fig6",
		})
	}))
	defer ts.Close()

	p, err := New(ts.URL).Experiments(context.Background(), Page{Limit: 2, After: "fig4"})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Items) != 2 || p.NextAfter != "fig6" {
		t.Errorf("page = %+v", p)
	}
}

// TestWatchRun verifies the NDJSON stream decodes into a snapshot plus
// events, stopping at the end event.
func TestWatchRun(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("stream") != "1" {
			t.Errorf("stream param missing: %s", r.URL.RawQuery)
		}
		enc := json.NewEncoder(w)
		enc.Encode(RunStatus{ID: "run-1", State: StateRunning, Total: 2, Completed: 1})
		enc.Encode(Event{Event: "done", Experiment: "txt3"})
		enc.Encode(Event{Event: "end", State: StateDone, Completed: 2, Total: 2})
	}))
	defer ts.Close()

	var events []Event
	snap, err := New(ts.URL).WatchRun(context.Background(), "run-1", func(ev Event) error {
		events = append(events, ev)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if snap.ID != "run-1" || snap.Completed != 1 {
		t.Errorf("snapshot = %+v", snap)
	}
	if len(events) != 2 || events[0].Experiment != "txt3" || events[1].State != StateDone {
		t.Errorf("events = %+v", events)
	}
}

// TestContextCancellation verifies an expired context aborts the retry
// wait instead of sleeping through it.
func TestContextCancellation(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "30")
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := New(ts.URL).SubmitRun(ctx, RunSpec{})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Errorf("cancellation took %v; the Retry-After sleep was not interrupted", time.Since(start))
	}
}

// TestRetryOn503 verifies the client rides out "unavailable" responses
// — a coordinator restarting, or an HA standby not yet promoted — with
// backoff, then succeeds once the leader answers.
func TestRetryOn503(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(map[string]any{"error": map[string]string{
				"code": "unavailable", "message": "standby coordinator: not the leader",
			}})
			return
		}
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(Submitted{ID: "run-9", State: StateRunning, Total: 1})
	}))
	defer ts.Close()

	sub, err := New(ts.URL, WithRetry(4, 50*time.Millisecond)).
		SubmitRun(context.Background(), RunSpec{Experiments: []string{"fig4"}})
	if err != nil {
		t.Fatalf("submit across 503s: %v", err)
	}
	if sub.ID != "run-9" || calls.Load() != 3 {
		t.Errorf("sub=%+v after %d calls, want run-9 after 3", sub, calls.Load())
	}
}

// TestUnavailableSurfacesWithoutRetry pins that WithRetry(0, 0) turns
// retries off entirely: the first 503 comes straight back, classified
// by IsUnavailable.
func TestUnavailableSurfacesWithoutRetry(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(map[string]any{"error": map[string]string{
			"code": "unavailable", "message": "shutting down",
		}})
	}))
	defer ts.Close()

	_, err := New(ts.URL, WithRetry(0, 0)).SubmitRun(context.Background(), RunSpec{})
	if !IsUnavailable(err) {
		t.Fatalf("err = %v, want IsUnavailable", err)
	}
	if calls.Load() != 1 {
		t.Errorf("server saw %d calls, want 1 (no retries)", calls.Load())
	}
}

// TestRetryOnDialError verifies a connection-refused dial is retried:
// the client outlives a short window where nothing listens on the
// coordinator's port — exactly the window of an HA failover.
func TestRetryOnDialError(t *testing.T) {
	// Reserve a port, then free it so the first attempts get ECONNREFUSED.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	srvUp := make(chan *httptest.Server, 1)
	go func() {
		time.Sleep(400 * time.Millisecond)
		ln2, err := net.Listen("tcp", addr)
		if err != nil {
			t.Errorf("rebind %s: %v", addr, err)
			close(srvUp)
			return
		}
		ts := httptest.NewUnstartedServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.WriteHeader(http.StatusAccepted)
			json.NewEncoder(w).Encode(Submitted{ID: "run-up", State: StateRunning, Total: 1})
		}))
		ts.Listener = ln2
		ts.Start()
		srvUp <- ts
	}()

	sub, err := New("http://"+addr, WithRetry(6, 300*time.Millisecond)).
		SubmitRun(context.Background(), RunSpec{Experiments: []string{"fig4"}})
	if ts, ok := <-srvUp; ok {
		defer ts.Close()
	}
	if err != nil {
		t.Fatalf("submit across dial failures: %v", err)
	}
	if sub.ID != "run-up" {
		t.Errorf("sub = %+v, want run-up", sub)
	}
}

// TestTenantHeader verifies WithTenant stamps X-WMM-Tenant on the typed
// calls AND the raw-response paths (canonical JSON), and that a client
// without the option sends none.
func TestTenantHeader(t *testing.T) {
	var got atomic.Value
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got.Store(r.Header.Get("X-WMM-Tenant"))
		w.WriteHeader(http.StatusOK)
		w.Write([]byte(`{}`))
	}))
	defer ts.Close()

	cl := New(ts.URL, WithTenant("team-a"))
	if _, err := cl.Run(context.Background(), "run-1", false); err != nil {
		t.Fatal(err)
	}
	if got.Load() != "team-a" {
		t.Errorf("typed call tenant header = %q, want team-a", got.Load())
	}
	if _, err := cl.CanonicalRun(context.Background(), "run-1"); err != nil {
		t.Fatal(err)
	}
	if got.Load() != "team-a" {
		t.Errorf("canonical call tenant header = %q, want team-a", got.Load())
	}
	if _, err := New(ts.URL).Run(context.Background(), "run-1", false); err != nil {
		t.Fatal(err)
	}
	if got.Load() != "" {
		t.Errorf("default client sent tenant header %q, want none", got.Load())
	}
}
