// Package wmm is the public API of the weak-memory-model benchmarking
// library, a reproduction of "Benchmarking Weak Memory Models" (Ritson &
// Owens, PPoPP 2016) on simulated ARMv8 and POWER7 machines.
//
// The library has four layers, all re-exported here:
//
//   - the machine: a cycle-approximate multicore simulator with a weak
//     memory model (store buffers, out-of-order satisfaction, non-multi-
//     copy-atomic propagation on POWER, barriers, exclusives), validated by
//     a litmus-test suite;
//
//   - the platforms: Hotspot-style JVM barrier code generation and
//     Linux-style kernel barrier macros, each with swappable fencing
//     strategies and per-code-path cost-function injection;
//
//   - the benchmarks: calibrated synthetic stand-ins for the paper's
//     DaCapo/Spark and kernel workloads;
//
//   - the methodology: cost-function calibration, sensitivity scans
//     fitting p = 1/((1-k)+k·a), fixed-size surveys, strategy comparisons
//     and the equation-(2) cost-increase bridge.
//
// The experiment drivers that regenerate every table and figure of the
// paper live behind RunExperiment / Experiments.
package wmm

import (
	"context"
	"encoding/json"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/costfn"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/fit"
	"repro/internal/litmus"
	"repro/internal/litmus/gen"
	"repro/internal/platform/c11"
	"repro/internal/platform/jvm"
	"repro/internal/platform/kernel"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
	"repro/internal/workload/c11bench"
	"repro/internal/workload/javabench"
	"repro/internal/workload/linuxbench"
)

// ---------------------------------------------------------------- machine --

// Profile describes a simulated processor (timing, pipeline, memory-model
// flavour).
type Profile = arch.Profile

// ARMv8 returns the paper's X-Gene-1-like evaluation profile.
func ARMv8() *Profile { return arch.ARMv8() }

// POWER7 returns the paper's POWER7-like evaluation profile.
func POWER7() *Profile { return arch.POWER7() }

// Profiles returns both evaluation profiles keyed as the paper's figures
// name them ("arm", "power").
func Profiles() map[string]*Profile { return arch.Profiles() }

// Machine is a runnable multicore simulator instance.
type Machine = sim.Machine

// MachineConfig parameterises a Machine.
type MachineConfig = sim.Config

// RunResult reports a machine run.
type RunResult = sim.Result

// NewMachine constructs a machine for the given profile.
func NewMachine(p *Profile, cfg MachineConfig) (*Machine, error) {
	return sim.New(p, cfg)
}

// Builder assembles programs for the machine.
type Builder = arch.Builder

// Program is an executable instruction sequence.
type Program = arch.Program

// Instr is a single instruction.
type Instr = arch.Instr

// Reg names a machine register.
type Reg = arch.Reg

// BarrierKind enumerates memory barriers (DMBIsh, LwSync, ...).
type BarrierKind = arch.BarrierKind

// Barrier kinds, re-exported for program construction.
const (
	DMBIsh   = arch.DMBIsh
	DMBIshLd = arch.DMBIshLd
	DMBIshSt = arch.DMBIshSt
	ISB      = arch.ISB
	LwSync   = arch.LwSync
	HwSync   = arch.HwSync
)

// NewBuilder returns an empty program builder.
func NewBuilder() *Builder { return arch.NewBuilder() }

// ParseAsm assembles a textual program (see internal/arch.Parse for the
// syntax; cmd/wmmasm for a worked example).
func ParseAsm(src string) (Program, error) { return arch.Parse(src) }

// TraceEvent is one retired instruction reported by a machine tracer.
type TraceEvent = sim.TraceEvent

// Tracer receives retirement events (install with Machine.SetTracer or
// Machine.WriteTraceTo).
type Tracer = sim.Tracer

// ----------------------------------------------------------------- litmus --

// LitmusTest is a litmus shape with per-profile expectations.
type LitmusTest = litmus.Test

// LitmusRunner executes litmus tests across randomized alignments.
type LitmusRunner = litmus.Runner

// LitmusOutcome counts a litmus campaign's results.
type LitmusOutcome = litmus.Outcome

// LitmusSuite returns the conformance catalogue for a profile name
// ("armv8" or "power7").
func LitmusSuite(profile string) []*LitmusTest { return litmus.Suite(profile) }

// LitmusExhaustiveReport enumerates a test's reachable final-memory
// outcomes (LitmusRunner.Exhaustive / CheckExhaustive): where sampling
// counts how often the relaxed outcome shows up, an exhaustive report
// is a proof of absence for forbidden shapes and a replayable witness
// for allowed ones.
type LitmusExhaustiveReport = litmus.ExhaustiveReport

// LitmusExhaustiveOutcome is one reachable final-memory outcome of an
// exhaustive exploration.
type LitmusExhaustiveOutcome = litmus.ExhaustiveOutcome

// LitmusGenConfig parameterises GenerateLitmus.
type LitmusGenConfig = gen.Config

// LitmusRecipe is one generated litmus test in critical-cycle form.
type LitmusRecipe = gen.Recipe

// GenerateLitmus emits a batch of diy-style generated litmus tests.
// The batch is a pure function of the config: same config, same
// byte-identical recipe list, on every machine.
func GenerateLitmus(cfg LitmusGenConfig) ([]*LitmusRecipe, error) { return gen.Generate(cfg) }

// BuildLitmus derives the runnable tests for a generated recipe batch.
func BuildLitmus(recipes []*LitmusRecipe) []*LitmusTest { return gen.BuildAll(recipes) }

// ------------------------------------------------------------- benchmarks --

// Benchmark is a runnable benchmark program.
type Benchmark = workload.Benchmark

// Env binds a benchmark to a platform configuration (profile, fencing
// strategy, injections).
type Env = workload.Env

// DefaultEnv returns the stock environment for a profile.
func DefaultEnv(p *Profile) Env { return workload.DefaultEnv(p) }

// JVMBenchmarks returns the §4.2 suite (DaCapo subset + spark stand-ins).
func JVMBenchmarks() []*Benchmark { return javabench.Suite() }

// KernelBenchmarks returns the §4.3 suite (netperf, ebizzy, lmbench, osm,
// kernel compile, re-hosted JVM benchmarks).
func KernelBenchmarks() []*Benchmark { return linuxbench.Suite() }

// JVMBenchmark returns one §4.2 benchmark by name.
func JVMBenchmark(name string) (*Benchmark, error) { return javabench.ByName(name) }

// KernelBenchmark returns one §4.3 benchmark by name.
func KernelBenchmark(name string) (*Benchmark, error) { return linuxbench.ByName(name) }

// MeasureBenchmark runs a benchmark n times and summarises the samples.
func MeasureBenchmark(b *Benchmark, env Env, n int, seed int64) (Summary, error) {
	return workload.Measure(b, env, n, seed)
}

// -------------------------------------------------------------- statistics --

// Summary is a sample summary (geometric mean, Student-t 95% interval).
type Summary = stats.Summary

// Comparative is a test/base performance ratio with compounded error.
type Comparative = stats.Comparative

// Sensitivity is a fitted k with its standard error.
type Sensitivity = fit.Sensitivity

// SensitivityModel evaluates equation (1): p = 1/((1-k) + k·a).
func SensitivityModel(k, a float64) float64 { return fit.Model(k, a) }

// CostIncrease evaluates equation (2): the per-invocation cost increase
// implied by relative performance p at sensitivity k.
func CostIncrease(k, p float64) float64 { return fit.CostIncrease(k, p) }

// FitSensitivity fits equation (1) to (cost-ns, relative-performance)
// observations by nonlinear least squares.
func FitSensitivity(pts []FitPoint) (Sensitivity, error) { return fit.FitSensitivity(pts) }

// FitPoint is one observation for FitSensitivity.
type FitPoint = fit.Point

// ------------------------------------------------------------ methodology --

// Calibration maps cost-function loop counts to nanoseconds (Figure 4).
type Calibration = core.Calibration

// Calibrate measures the cost-function curve for a profile.
func Calibrate(p *Profile, sizes []int64, seed int64) (Calibration, error) {
	return core.Calibrate(p, sizes, seed)
}

// ScanConfig describes a sensitivity scan (§3).
type ScanConfig = core.ScanConfig

// ScanResult is a completed scan with its fitted sensitivity.
type ScanResult = core.ScanResult

// SensitivityScan sweeps cost-function sizes over code paths and fits the
// sensitivity model.
func SensitivityScan(cfg ScanConfig) (ScanResult, error) { return core.SensitivityScan(cfg) }

// ProbeResult is a fixed-size probe measurement.
type ProbeResult = core.ProbeResult

// Survey probes every (benchmark, code path) pair with a fixed cost
// (Figures 7-8).
func Survey(benches []*Benchmark, env Env, paths []PathID, size int64, samples int, seed int64) ([]ProbeResult, error) {
	return core.Survey(benches, env, paths, size, samples, seed)
}

// CompareStrategies measures a fencing-strategy change on one benchmark.
func CompareStrategies(b *Benchmark, base, test Env, allPaths []PathID, samples int, seed int64) (Comparative, error) {
	return core.CompareStrategies(b, base, test, allPaths, samples, seed)
}

// PathID identifies an instrumentable platform code path.
type PathID = arch.PathID

// Injection is what a code path receives: nothing, nop padding, or a cost
// function.
type Injection = costfn.Injection

// JVMAllBarriersPath returns the code path hit once per emitted JVM
// composite barrier (the Figure 5 instrumentation point).
func JVMAllBarriersPath() PathID { return jvm.PathAnyBarrier }

// JVMElementalPaths returns the four elemental-barrier code paths in
// LoadLoad, LoadStore, StoreLoad, StoreStore order (Figure 6).
func JVMElementalPaths() []PathID {
	return []PathID{jvm.PathLoadLoad, jvm.PathLoadStore, jvm.PathStoreLoad, jvm.PathStoreStore}
}

// KernelMacroPaths returns the fourteen kernel barrier-macro code paths
// (Figures 7-8).
func KernelMacroPaths() []PathID { return append([]PathID{}, kernel.Paths...) }

// KernelRBDPath returns the read_barrier_depends code path (Figures 9-10).
func KernelRBDPath() PathID { return kernel.PathReadBarrierDepends }

// KernelPathName returns the macro name of a kernel code path.
func KernelPathName(p PathID) string { return kernel.PathName(p) }

// JVMStrategyJDK8 returns the barrier-based volatile strategy.
func JVMStrategyJDK8() jvm.Strategy { return jvm.JDK8() }

// JVMStrategyJDK9 returns the acquire/release volatile strategy.
func JVMStrategyJDK9() jvm.Strategy { return jvm.JDK9() }

// KernelStrategies returns the Figure 10 read_barrier_depends strategies
// in the figure's order (base case, ctrl, ctrl+isb, dmb ishld, dmb ish,
// la/sr).
func KernelStrategies() []kernel.Strategy { return kernel.Strategies() }

// ------------------------------------------------------------------- c11 --

// C11Order is a C11 memory_order (the §6 extension platform).
type C11Order = c11.Order

// C11 memory orders.
const (
	Relaxed = c11.Relaxed
	Consume = c11.Consume
	Acquire = c11.Acquire
	Release = c11.Release
	AcqRel  = c11.AcqRel
	SeqCst  = c11.SeqCst
)

// C11Gen generates C11 atomic accesses and the lock-free structures built
// on them (Treiber stack, Michael-Scott queue).
type C11Gen = c11.C11

// NewC11 returns a C11 code generator for the profile.  acqRel selects the
// ldar/stlr lowering on the MCA profile (vs dmb sequences).
func NewC11(p *Profile, acqRel bool) *C11Gen {
	st := c11.Barriers()
	if acqRel {
		st = c11.AcqRelInstrs()
	}
	return c11.New(c11.Config{Prof: p, Strategy: st})
}

// C11Paths returns the instrumentable memory_order code paths.
func C11Paths() []PathID { return append([]PathID{}, c11.Paths...) }

// C11Benchmarks returns the ext-c11 experiment's instruments: the Treiber
// stack under the given orders and the fetch_add counter at an order.
func C11StackBenchmark(name string, orders c11.StackOrders) *Benchmark {
	return c11bench.Stack(name, orders)
}

// C11CounterBenchmark returns the shared-counter benchmark at an order.
func C11CounterBenchmark(name string, order C11Order) *Benchmark {
	return c11bench.Counter(name, order)
}

// StackOrders selects the Treiber stack's memory orders; see
// c11.ReleaseAcquire, c11.AllSeqCst, c11.AllRelaxed.
type StackOrders = c11.StackOrders

// ReleaseAcquireStack returns the canonical correct stack orderings.
func ReleaseAcquireStack() StackOrders { return c11.ReleaseAcquire() }

// SeqCstStack returns the defensive stack orderings.
func SeqCstStack() StackOrders { return c11.AllSeqCst() }

// DefaultScanSizes is the standard cost-size sweep in loop iterations.
func DefaultScanSizes() []int64 {
	return append([]int64{}, core.DefaultSizes...)
}

// ------------------------------------------------------------ experiments --

// ExperimentOptions tunes the paper-experiment drivers.
type ExperimentOptions = experiments.Options

// Experiments lists every table/figure driver in paper order.
func Experiments() []experiments.Experiment { return experiments.All() }

// RunExperiment runs one named experiment (fig1..fig10, txt1..txt7,
// litmus) directly in-process.
func RunExperiment(name string, o ExperimentOptions) error {
	return RunExperimentContext(context.Background(), name, o)
}

// RunExperimentContext runs one named experiment under a context: the
// run aborts at its next measurement once ctx is cancelled or its
// deadline passes.
func RunExperimentContext(ctx context.Context, name string, o ExperimentOptions) error {
	e, err := experiments.ByName(name)
	if err != nil {
		return err
	}
	o.Ctx = ctx
	return e.Run(o)
}

// RunAllExperiments runs the full evaluation in paper order.
func RunAllExperiments(o ExperimentOptions) error { return experiments.RunAll(o) }

// ----------------------------------------------------------------- engine --

// Engine is the concurrent experiment execution engine: a worker pool
// fanning individual sample measurements across GOMAXPROCS workers with
// positional seed derivation (so pooled runs are bit-identical to
// sequential ones), plus a process-wide calibration cache.  Close it when
// done.
type Engine = engine.Engine

// EngineOptions configures NewEngine.
type EngineOptions = engine.Options

// EngineRunOptions parameterises one Engine.Run call.
type EngineRunOptions = engine.RunOptions

// EngineResult is the structured outcome of one experiment: the paper
// artifact it regenerates, its tables, fitted sensitivities, measurement
// counts, and wall time, serializable to JSON.
type EngineResult = engine.Result

// NewEngine starts an execution engine and its worker pool.
func NewEngine(o EngineOptions) *Engine { return engine.New(o) }

// RunExperimentJSON runs one named experiment through a fresh engine and
// returns its structured result serialized as JSON.  Long-lived callers
// wanting the shared calibration cache across experiments should hold an
// Engine and use Engine.Run instead.
func RunExperimentJSON(ctx context.Context, name string, o ExperimentOptions) ([]byte, error) {
	eng := engine.New(engine.Options{})
	defer eng.Close()
	results, err := eng.Run(ctx, []string{name}, engine.RunOptions{
		Samples: o.Samples,
		Seed:    o.Seed,
		Short:   o.Short,
	}, nil)
	if err != nil {
		return nil, err
	}
	return json.MarshalIndent(results[0], "", "  ")
}
