// Command wmmbench regenerates the tables and figures of "Benchmarking
// Weak Memory Models" (Ritson & Owens, PPoPP 2016) on the library's
// simulated ARMv8 and POWER7 machines.
//
// Usage:
//
//	wmmbench [-short] [-samples N] [-seed N] list
//	wmmbench [-short] [-samples N] [-seed N] <experiment>...
//	wmmbench [-short] all
//
// Experiments: fig1 fig4 fig5 fig6 fig7 fig8 fig9 fig10
// txt1 txt2 txt3 txt4 txt5 txt6 txt7 litmus.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/wmm"
)

func main() {
	short := flag.Bool("short", false, "reduced sweep (fewer sizes and samples)")
	samples := flag.Int("samples", 0, "samples per measurement (0 = default: 6, or 3 with -short)")
	seed := flag.Int64("seed", 1, "base random seed")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: wmmbench [flags] list | all | <experiment>...\n\nexperiments:\n")
		for _, e := range wmm.Experiments() {
			fmt.Fprintf(os.Stderr, "  %-8s %-10s %s\n", e.Name, "("+e.Paper+")", e.Desc)
		}
		fmt.Fprintf(os.Stderr, "\nflags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	opt := wmm.ExperimentOptions{Short: *short, Samples: *samples, Seed: *seed}

	switch args[0] {
	case "list":
		for _, e := range wmm.Experiments() {
			fmt.Printf("%-8s %-10s %s\n", e.Name, "("+e.Paper+")", e.Desc)
		}
		return
	case "all":
		start := time.Now()
		if err := wmm.RunAllExperiments(opt); err != nil {
			fmt.Fprintln(os.Stderr, "wmmbench:", err)
			os.Exit(1)
		}
		fmt.Printf("all experiments completed in %v\n", time.Since(start).Round(time.Second))
		return
	}

	for _, name := range args {
		start := time.Now()
		if err := wmm.RunExperiment(name, opt); err != nil {
			fmt.Fprintln(os.Stderr, "wmmbench:", err)
			os.Exit(1)
		}
		fmt.Printf("[%s completed in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}
}
