// Command wmmbench regenerates the tables and figures of "Benchmarking
// Weak Memory Models" (Ritson & Owens, PPoPP 2016) on the library's
// simulated ARMv8 and POWER7 machines.
//
// Usage:
//
//	wmmbench [-short] [-samples N] [-seed N] list
//	wmmbench [flags] <experiment>...
//	wmmbench [flags] all
//
// Flags:
//
//	-parallel   run experiments concurrently through the engine's worker
//	            pool; output stays byte-identical to the sequential run
//	            because sample seeds are positional and each experiment's
//	            output is buffered and emitted in request order
//	-json       emit structured results (tables, fits, timings) as JSON
//	            instead of ASCII tables
//	-timeout    abort the whole run after a duration (e.g. 10m)
//	-stats      after the run, print the engine's metrics (jobs, queue
//	            waits, sample durations, calibration cache hits) to
//	            stderr in Prometheus text format — the same counters
//	            wmmd serves at GET /metrics
//
// Experiments: fig1 fig4 fig5 fig6 fig7 fig8 fig9 fig10
// txt1 txt2 txt3 txt4 txt5 txt6 txt7 litmus.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/wmm"
)

func main() {
	short := flag.Bool("short", false, "reduced sweep (fewer sizes and samples)")
	samples := flag.Int("samples", 0, "samples per measurement (0 = default: 6, or 3 with -short)")
	seed := flag.Int64("seed", 1, "base random seed")
	parallel := flag.Bool("parallel", false, "run experiments concurrently (deterministic output)")
	jsonOut := flag.Bool("json", false, "emit structured JSON results instead of ASCII tables")
	timeout := flag.Duration("timeout", 0, "abort the run after this duration (0 = none)")
	stats := flag.Bool("stats", false, "print engine metrics to stderr after the run")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: wmmbench [flags] list | all | <experiment>...\n\nexperiments:\n")
		for _, e := range wmm.Experiments() {
			fmt.Fprintf(os.Stderr, "  %-8s %-10s %s\n", e.Name, "("+e.Paper+")", e.Desc)
		}
		fmt.Fprintf(os.Stderr, "\nflags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}

	if args[0] == "list" {
		for _, e := range wmm.Experiments() {
			fmt.Printf("%-8s %-10s %s\n", e.Name, "("+e.Paper+")", e.Desc)
		}
		return
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	all := args[0] == "all"
	var names []string
	if !all {
		names = args
	}

	concurrency := 1
	if *parallel {
		// Experiments mostly wait on the shared sample pool, so their
		// concurrency can exceed the core count; overlapping them keeps
		// the pool fed across calibration and fit phases.
		concurrency = 2 * runtime.GOMAXPROCS(0)
		if concurrency < 2 {
			concurrency = 2
		}
	}

	eng := wmm.NewEngine(wmm.EngineOptions{})
	defer eng.Close()

	start := time.Now()
	results, err := eng.Run(ctx, names, wmm.EngineRunOptions{
		Samples:  *samples,
		Seed:     *seed,
		Short:    *short,
		Parallel: concurrency,
	}, nil)

	// printStats dumps the engine's counters in the same Prometheus
	// text format wmmd serves at /metrics.  Called explicitly on every
	// exit path because os.Exit skips defers.
	printStats := func() {
		if *stats {
			fmt.Fprintln(os.Stderr, "# wmmbench engine metrics")
			eng.Metrics().WriteText(os.Stderr)
		}
	}

	if *jsonOut {
		out, merr := json.MarshalIndent(results, "", "  ")
		if merr != nil {
			fmt.Fprintln(os.Stderr, "wmmbench:", merr)
			os.Exit(1)
		}
		fmt.Println(string(out))
		printStats()
		if err != nil {
			os.Exit(1)
		}
		return
	}

	for _, r := range results {
		if r == nil {
			continue
		}
		if all {
			fmt.Printf("=== %s (%s): %s ===\n", r.Experiment, r.Paper, r.Desc)
		}
		fmt.Print(r.Output)
		if r.Err != "" {
			break
		}
		if !all {
			fmt.Printf("[%s completed in %v]\n\n", r.Experiment,
				time.Duration(r.WallNs).Round(time.Millisecond))
		}
	}
	printStats()
	if err != nil {
		fmt.Fprintln(os.Stderr, "wmmbench:", err)
		os.Exit(1)
	}
	if all {
		fmt.Printf("all experiments completed in %v\n", time.Since(start).Round(time.Second))
	}
}
