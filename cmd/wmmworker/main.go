// Command wmmworker is a remote executor for the sharded benchmarking
// backend: it leases batches of experiment jobs from a wmmd coordinator
// over the v1 API, runs them on its own engine worker pool, and uploads
// the results.
//
// Usage:
//
//	wmmworker -coordinator http://host:8347 [-id NAME] [-workers N]
//	          [-max-batch 4] [-poll 500ms] [-sample-timeout 5m]
//	          [-sample-retries 2]
//
// A worker holds no durable state.  If it crashes or is partitioned
// mid-batch, its lease expires at the coordinator and the jobs are
// re-queued; positional seed derivation guarantees that whichever
// process eventually executes a job produces byte-identical results, so
// adding, removing or killing workers never changes a run's canonical
// output (see docs/API.md for the lease protocol).
//
// On SIGINT/SIGTERM the worker stops leasing, aborts in-flight jobs,
// and exits; the coordinator re-queues whatever was left unfinished.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/engine"
	"repro/internal/worker"
)

func main() {
	coordinator := flag.String("coordinator", "", "wmmd base URL (required), e.g. http://127.0.0.1:8347")
	id := flag.String("id", "", "worker identity in assignment records (default worker-<hostname>-<pid>)")
	workers := flag.Int("workers", 0, "sample worker-pool size (0 = GOMAXPROCS)")
	maxBatch := flag.Int("max-batch", 0, "max jobs requested per lease (0 = coordinator default)")
	poll := flag.Duration("poll", 500*time.Millisecond, "idle interval between lease attempts when the queue is empty")
	sampleTimeout := flag.Duration("sample-timeout", 5*time.Minute, "per-sample watchdog deadline (0 = none)")
	sampleRetries := flag.Int("sample-retries", 2, "retries per failed sample batch before the experiment degrades")
	flag.Parse()

	if *coordinator == "" {
		log.Fatal("wmmworker: -coordinator is required")
	}
	if *workers < 0 {
		log.Fatalf("wmmworker: -workers must be >= 0 (0 = GOMAXPROCS), got %d", *workers)
	}
	if *maxBatch < 0 {
		log.Fatalf("wmmworker: -max-batch must be >= 0 (0 = coordinator default), got %d", *maxBatch)
	}
	if *poll <= 0 {
		log.Fatalf("wmmworker: -poll must be > 0, got %v", *poll)
	}
	if *sampleTimeout < 0 {
		log.Fatalf("wmmworker: -sample-timeout must be >= 0 (0 = no deadline), got %v", *sampleTimeout)
	}
	if *sampleRetries < 0 {
		log.Fatalf("wmmworker: -sample-retries must be >= 0, got %d", *sampleRetries)
	}
	if *id == "" {
		host, err := os.Hostname()
		if err != nil {
			host = "unknown"
		}
		*id = fmt.Sprintf("worker-%s-%d", host, os.Getpid())
	}

	eng := engine.New(engine.Options{
		Workers:       *workers,
		SampleTimeout: *sampleTimeout,
		Retry:         engine.RetryPolicy{Max: *sampleRetries},
	})
	defer eng.Close()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	log.Printf("wmmworker: %s leasing from %s (%d workers)", *id, *coordinator, eng.Workers())
	err := worker.Run(ctx, worker.Config{
		Coordinator: *coordinator,
		ID:          *id,
		MaxBatch:    *maxBatch,
		Poll:        *poll,
		Engine:      eng,
		Log:         log.Default(),
	})
	if err != nil && !errors.Is(err, context.Canceled) {
		log.Fatalf("wmmworker: %v", err)
	}
	log.Printf("wmmworker: %s shut down", *id)
}
