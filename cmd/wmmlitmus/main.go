// Command wmmlitmus runs weak-memory litmus tests on the simulated
// machines, in the style of the litmus7 tool: pick shapes, a machine, a
// trial count, and optionally memory-system stress, and get observed
// outcome counts with conformance verdicts.
//
// Usage:
//
//	wmmlitmus [-arch armv8|power7|both] [-trials N] [-stress] [-seed N] [-json] [shape ...]
//	wmmlitmus -exhaustive [-arch ...] [-json] [shape ...]
//	wmmlitmus -gen N [-gen-seed S] [-max-threads T] [-arch ...] [-json]
//	wmmlitmus -list
//
// With no shapes, the whole catalogue for the selected machine(s) runs.
// -exhaustive replaces sampling with enumeration of the reachable
// outcome set: forbidden shapes become proofs of absence, allowed ones
// constructive witnesses.  -gen N swaps the catalogue for N diy-style
// generated tests (no expectations, so verdicts are observational).
// The process exits non-zero when any conformance check fails.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/wmm"
)

// row is one test's result in -json output.
type row struct {
	Arch   string `json:"arch"`
	Name   string `json:"name"`
	Mode   string `json:"mode"`             // "sampled" | "exhaustive"
	Expect string `json:"expect,omitempty"` // catalogue tests only

	// Sampled mode.
	Trials  int `json:"trials,omitempty"`
	Hits    int `json:"hits,omitempty"`
	Relaxed int `json:"relaxed,omitempty"`

	// Exhaustive mode.
	Outcomes       int  `json:"outcomes,omitempty"` // distinct reachable final states
	RelaxedReached bool `json:"relaxed_reached,omitempty"`
	Runs           int  `json:"runs,omitempty"`
	Complete       bool `json:"complete,omitempty"`

	Verdict string `json:"verdict"` // "ok" | "violation" | "observed"
	Error   string `json:"error,omitempty"`
}

func main() {
	archFlag := flag.String("arch", "both", "machine: armv8, power7 or both")
	trials := flag.Int("trials", 400, "randomized trials per shape")
	stress := flag.Bool("stress", false, "elevated propagation-tail probability (provokes rare outcomes)")
	seed := flag.Int64("seed", 1, "base random seed")
	exhaustive := flag.Bool("exhaustive", false, "enumerate reachable outcomes instead of sampling")
	genN := flag.Int("gen", 0, "run N generated diy-style tests instead of the catalogue")
	genSeed := flag.Int64("gen-seed", 1, "generator seed for -gen")
	maxThreads := flag.Int("max-threads", 4, "generated cycle-length cap (2..4) for -gen")
	jsonOut := flag.Bool("json", false, "emit results as a JSON array on stdout")
	list := flag.Bool("list", false, "list the catalogue and exit")
	flag.Parse()

	var profiles []*wmm.Profile
	switch *archFlag {
	case "armv8":
		profiles = []*wmm.Profile{wmm.ARMv8()}
	case "power7":
		profiles = []*wmm.Profile{wmm.POWER7()}
	case "both":
		profiles = []*wmm.Profile{wmm.ARMv8(), wmm.POWER7()}
	default:
		fmt.Fprintf(os.Stderr, "wmmlitmus: unknown arch %q\n", *archFlag)
		os.Exit(2)
	}

	if *list {
		for _, prof := range profiles {
			fmt.Printf("== %s\n", prof.Name)
			for _, t := range wmm.LitmusSuite(prof.Name) {
				fmt.Printf("  %-22s %s\n", t.Name, t.Expect[prof.Name])
			}
		}
		return
	}

	// The test set: the conformance catalogue, or a generated batch
	// (shared across profiles — generation is profile-independent).
	var generated []*wmm.LitmusTest
	if *genN > 0 {
		recipes, err := wmm.GenerateLitmus(wmm.LitmusGenConfig{
			Seed: *genSeed, Count: *genN, MaxThreads: *maxThreads,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "wmmlitmus: %v\n", err)
			os.Exit(2)
		}
		generated = wmm.BuildLitmus(recipes)
	}

	want := map[string]bool{}
	for _, name := range flag.Args() {
		want[strings.ToLower(name)] = true
	}

	var rows []row
	violations := 0
	for _, prof := range profiles {
		if !*jsonOut {
			mode := fmt.Sprintf("%d+ trials/shape", *trials)
			if *exhaustive {
				mode = "exhaustive"
			}
			fmt.Printf("== %s (%s stores, %s)\n", prof.Name, prof.Flavor, mode)
		}
		r := &wmm.LitmusRunner{Prof: prof, Trials: *trials, Seed: *seed}
		tests := generated
		if tests == nil {
			tests = wmm.LitmusSuite(prof.Name)
		}
		for _, t := range tests {
			if len(want) > 0 && !want[strings.ToLower(t.Name)] {
				continue
			}
			if *stress {
				t.StressProp = true
			}
			rw := runOne(r, prof.Name, t, *exhaustive)
			if rw.Verdict == "violation" {
				violations++
			}
			rows = append(rows, rw)
			if !*jsonOut {
				printRow(rw)
			}
		}
	}

	if *jsonOut {
		out, err := json.MarshalIndent(rows, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "wmmlitmus: %v\n", err)
			os.Exit(2)
		}
		fmt.Println(string(out))
	}
	if violations > 0 {
		fmt.Fprintf(os.Stderr, "wmmlitmus: %d conformance violations\n", violations)
		os.Exit(1)
	}
}

// runOne executes one test in the selected mode.  Catalogue tests
// (with an expectation for the profile) get a conformance verdict;
// generated tests are observational.
func runOne(r *wmm.LitmusRunner, prof string, t *wmm.LitmusTest, exhaustive bool) row {
	exp, hasExpect := t.Expect[prof]
	rw := row{Arch: prof, Name: t.Name, Mode: "sampled"}
	if hasExpect {
		rw.Expect = exp.String()
	}

	if exhaustive {
		rw.Mode = "exhaustive"
		var rep *wmm.LitmusExhaustiveReport
		var err error
		if hasExpect {
			rep, err = r.CheckExhaustive(t)
		} else {
			rep, err = r.Exhaustive(t, false)
		}
		if rep != nil {
			rw.Outcomes = len(rep.Outcomes)
			rw.RelaxedReached = rep.Violation() != nil
			rw.Runs = rep.Runs
			rw.Complete = rep.Complete
		}
		switch {
		case err != nil:
			rw.Verdict, rw.Error = "violation", err.Error()
		case hasExpect:
			rw.Verdict = "ok"
		default:
			rw.Verdict = "observed"
		}
		return rw
	}

	if hasExpect {
		out, err := r.Check(t)
		rw.Trials, rw.Hits, rw.Relaxed = out.Trials, out.Hits, out.Relaxed
		if err != nil {
			rw.Verdict, rw.Error = "violation", err.Error()
		} else {
			rw.Verdict = "ok"
		}
		return rw
	}
	out, err := r.Run(t)
	rw.Trials, rw.Hits, rw.Relaxed = out.Trials, out.Hits, out.Relaxed
	if err != nil {
		// A machine error, not a conformance result.
		rw.Verdict, rw.Error = "violation", err.Error()
	} else {
		rw.Verdict = "observed"
	}
	return rw
}

// printRow renders one result line in the human format.
func printRow(rw row) {
	expect := rw.Expect
	if expect == "" {
		expect = "-"
	}
	if rw.Mode == "exhaustive" {
		reached := "relaxed unreachable"
		if rw.RelaxedReached {
			reached = "relaxed REACHABLE"
		}
		complete := "complete"
		if !rw.Complete {
			complete = "truncated"
		}
		fmt.Printf("  %-22s %-15s %3d outcomes / %6d runs (%s)   %s   %s\n",
			rw.Name, expect, rw.Outcomes, rw.Runs, complete, reached, verdictLabel(rw))
	} else {
		fmt.Printf("  %-22s %-15s relaxed %5d / hits %5d / trials %5d   %s\n",
			rw.Name, expect, rw.Relaxed, rw.Hits, rw.Trials, verdictLabel(rw))
	}
	if rw.Error != "" {
		fmt.Printf("    %s\n", rw.Error)
	}
}

func verdictLabel(rw row) string {
	if rw.Verdict == "violation" {
		return "VIOLATION"
	}
	return rw.Verdict
}
