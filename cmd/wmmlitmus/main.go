// Command wmmlitmus runs weak-memory litmus tests on the simulated
// machines, in the style of the litmus7 tool: pick shapes, a machine, a
// trial count, and optionally memory-system stress, and get observed
// outcome counts with conformance verdicts.
//
// Usage:
//
//	wmmlitmus [-arch armv8|power7|both] [-trials N] [-stress] [-seed N] [shape ...]
//	wmmlitmus -list
//
// With no shapes, the whole catalogue for the selected machine(s) runs.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/wmm"
)

func main() {
	archFlag := flag.String("arch", "both", "machine: armv8, power7 or both")
	trials := flag.Int("trials", 400, "randomized trials per shape")
	stress := flag.Bool("stress", false, "elevated propagation-tail probability (provokes rare outcomes)")
	seed := flag.Int64("seed", 1, "base random seed")
	list := flag.Bool("list", false, "list the catalogue and exit")
	flag.Parse()

	var profiles []*wmm.Profile
	switch *archFlag {
	case "armv8":
		profiles = []*wmm.Profile{wmm.ARMv8()}
	case "power7":
		profiles = []*wmm.Profile{wmm.POWER7()}
	case "both":
		profiles = []*wmm.Profile{wmm.ARMv8(), wmm.POWER7()}
	default:
		fmt.Fprintf(os.Stderr, "wmmlitmus: unknown arch %q\n", *archFlag)
		os.Exit(2)
	}

	if *list {
		for _, prof := range profiles {
			fmt.Printf("== %s\n", prof.Name)
			for _, t := range wmm.LitmusSuite(prof.Name) {
				fmt.Printf("  %-22s %s\n", t.Name, t.Expect[prof.Name])
			}
		}
		return
	}

	want := map[string]bool{}
	for _, name := range flag.Args() {
		want[strings.ToLower(name)] = true
	}

	violations := 0
	for _, prof := range profiles {
		fmt.Printf("== %s (%s stores, %d+ trials/shape)\n", prof.Name, prof.Flavor, *trials)
		r := &wmm.LitmusRunner{Prof: prof, Trials: *trials, Seed: *seed}
		for _, t := range wmm.LitmusSuite(prof.Name) {
			if len(want) > 0 && !want[strings.ToLower(t.Name)] {
				continue
			}
			if *stress {
				t.StressProp = true
			}
			out, err := r.Check(t)
			verdict := "ok"
			if err != nil {
				verdict = "VIOLATION"
				violations++
			}
			fmt.Printf("  %-22s %-15s relaxed %5d / hits %5d / trials %5d   %s\n",
				t.Name, t.Expect[prof.Name].String(), out.Relaxed, out.Hits, out.Trials, verdict)
			if err != nil {
				fmt.Printf("    %v\n", err)
			}
		}
	}
	if violations > 0 {
		fmt.Fprintf(os.Stderr, "wmmlitmus: %d conformance violations\n", violations)
		os.Exit(1)
	}
}
