// Command wmmperf runs the simulator performance benchmarks and gates
// against a checked-in baseline, guarding the hot-path optimisations
// (machine reuse, zero-alloc cycle loop) against regression.
//
// Usage:
//
//	wmmperf -short -out BENCH_new.json             # measure
//	wmmperf -short -baseline BENCH_4.json          # measure and gate (CI)
//	wmmperf -shortall                              # also time `wmmbench -short all`
//	wmmperf -sweep                                 # also measure repeated-sweep caching
//
// The gate fails (exit 1) when any benchmark is more than -tolerance
// slower than the baseline in ns/op, or allocates more per op at all
// (allocation counts are deterministic).  With -sweep, the same
// multi-experiment run is submitted twice to an in-process server with
// the result cache enabled; the run fails unless the second pass is
// served from the cache byte-identically, and the report records the
// pass times and speedup.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/perfbench"
	"repro/wmm"
)

func main() {
	var (
		short     = flag.Bool("short", false, "reduced cycle counts for CI")
		out       = flag.String("out", "", "write the measurement report (JSON) to this file")
		baseline  = flag.String("baseline", "", "compare against this baseline report and fail on regression")
		tolerance = flag.Float64("tolerance", 0.20, "relative ns/op slowdown tolerated against the baseline")
		shortAll  = flag.Bool("shortall", false, "also measure wall time of the full `wmmbench -short all` run")
		sweep     = flag.Bool("sweep", false, "also measure the repeated-sweep result-cache scenario")
	)
	flag.Parse()

	rep := perfbench.Report{
		GoOS:   runtime.GOOS,
		GoArch: runtime.GOARCH,
		Short:  *short,
	}
	rep.Results = perfbench.Run(*short, func(format string, args ...any) {
		fmt.Printf(format, args...)
	})

	if *shortAll {
		fmt.Println("running all experiments (-short) for wall-time measurement...")
		start := time.Now()
		if err := wmm.RunAllExperiments(wmm.ExperimentOptions{Short: true, Out: os.Stderr}); err != nil {
			fmt.Fprintf(os.Stderr, "wmmperf: short-all run failed: %v\n", err)
			os.Exit(1)
		}
		rep.ShortAllSeconds = time.Since(start).Seconds()
		fmt.Printf("short-all wall time: %.1fs\n", rep.ShortAllSeconds)
	}

	if *sweep {
		fmt.Println("running the repeated-sweep cache scenario...")
		sw, err := perfbench.RepeatedSweep(*short)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wmmperf: repeated sweep: %v\n", err)
			os.Exit(1)
		}
		rep.RepeatedSweep = &sw
		fmt.Printf("repeated sweep %v: first pass %.2fs, cached pass %.3fs (%.0fx, %d hits)\n",
			sw.Experiments, sw.FirstPassSeconds, sw.SecondPassSeconds, sw.Speedup, sw.CacheHits)
	}

	if *out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "wmmperf: %v\n", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "wmmperf: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("report written to %s\n", *out)
	}

	if *baseline != "" {
		data, err := os.ReadFile(*baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wmmperf: reading baseline: %v\n", err)
			os.Exit(1)
		}
		var base perfbench.Report
		if err := json.Unmarshal(data, &base); err != nil {
			fmt.Fprintf(os.Stderr, "wmmperf: parsing baseline: %v\n", err)
			os.Exit(1)
		}
		if bad := perfbench.Compare(base.Results, rep.Results, *tolerance); len(bad) > 0 {
			fmt.Fprintln(os.Stderr, "wmmperf: performance regression against", *baseline)
			for _, msg := range bad {
				fmt.Fprintln(os.Stderr, "  "+msg)
			}
			os.Exit(1)
		}
		fmt.Printf("no regression against %s (tolerance %.0f%%)\n", *baseline, *tolerance*100)
	}
}
