// Command wmmctl is a thin CLI over the wmmd v1 API, built on
// wmm/client.  It exists for scripts (resume and distributed smoke
// tests, CI) and for poking a server by hand without hand-rolling curl
// against the JSON surface.
//
// Usage:
//
//	wmmctl -server http://host:8347 [-tenant NAME] <command> [args]
//
// -tenant stamps every request with the X-WMM-Tenant header, accounting
// submissions to that tenant's fair-share queue and quotas.
//
// Commands:
//
//	experiments              list the experiment catalogue
//	submit <spec-json>       submit a run (spec on the command line or
//	                         "-" to read stdin); prints the run id
//	status <id>              print a run's status JSON
//	wait <id>                poll until the run finishes; prints final
//	                         state, exits non-zero unless "done"
//	canonical <id>           print a finished run's canonical JSON
//	cancel <id>              cancel or remove a run
//	litmus-submit <spec>     submit a litmus campaign (spec JSON or "-");
//	                         prints the campaign id
//	litmus-wait <id>         poll until the campaign finishes; prints
//	                         final state, exits non-zero unless "done"
//	litmus-canonical <id>    print a finished campaign's canonical JSON
//	optimize-submit <spec>   submit a fence-strategy optimizer job (spec
//	                         JSON or "-"); prints the job id
//	optimize-wait <id>       poll until the job finishes; prints final
//	                         state, exits non-zero unless "done"
//	optimize-status <id>     print an optimizer job's status JSON
//	optimize-report <id>     print a finished job's canonical report JSON
//	ready                    wait (up to -timeout) for /readyz
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"repro/wmm/client"
)

// unmarshalStrict decodes JSON rejecting unknown fields, so a typo'd
// spec key fails loudly instead of silently running the default sweep.
func unmarshalStrict(raw []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

func printJSON(v any) error {
	out, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(out))
	return nil
}

func main() {
	log.SetFlags(0)
	server := flag.String("server", "http://127.0.0.1:8347", "wmmd base URL")
	timeout := flag.Duration("timeout", 10*time.Minute, "overall command deadline")
	tenant := flag.String("tenant", "", "tenant to account submissions to (X-WMM-Tenant header)")
	flag.Parse()

	if flag.NArg() < 1 {
		log.Fatal("wmmctl: usage: wmmctl [-server URL] [-tenant NAME] <experiments|submit|status|wait|canonical|cancel|litmus-submit|litmus-wait|litmus-canonical|optimize-submit|optimize-wait|optimize-status|optimize-report|ready> [args]")
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	var opts []client.Option
	if *tenant != "" {
		opts = append(opts, client.WithTenant(*tenant))
	}
	cl := client.New(*server, opts...)

	cmd, args := flag.Arg(0), flag.Args()[1:]
	if err := run(ctx, cl, cmd, args); err != nil {
		log.Fatalf("wmmctl: %s: %v", cmd, err)
	}
}

func run(ctx context.Context, cl *client.Client, cmd string, args []string) error {
	switch cmd {
	case "experiments":
		// Walk every page so scripts see the full catalogue regardless
		// of the server's default page size.
		page := client.Page{}
		for {
			p, err := cl.Experiments(ctx, page)
			if err != nil {
				return err
			}
			for _, e := range p.Items {
				fmt.Printf("%s\t%s\t%s\n", e.Name, e.Paper, e.Desc)
			}
			if p.NextAfter == "" {
				return nil
			}
			page.After = p.NextAfter
		}

	case "submit":
		if len(args) != 1 {
			return fmt.Errorf("usage: submit <spec-json|->")
		}
		raw := []byte(args[0])
		if args[0] == "-" {
			var err error
			if raw, err = io.ReadAll(os.Stdin); err != nil {
				return err
			}
		}
		var spec client.RunSpec
		if err := unmarshalStrict(raw, &spec); err != nil {
			return fmt.Errorf("bad spec: %w", err)
		}
		sub, err := cl.SubmitRun(ctx, spec)
		if err != nil {
			return err
		}
		fmt.Println(sub.ID)
		return nil

	case "status":
		if len(args) != 1 {
			return fmt.Errorf("usage: status <id>")
		}
		st, err := cl.Run(ctx, args[0], true)
		if err != nil {
			return err
		}
		return printJSON(st)

	case "wait":
		if len(args) != 1 {
			return fmt.Errorf("usage: wait <id>")
		}
		st, err := cl.WaitRun(ctx, args[0], 250*time.Millisecond)
		if err != nil {
			return err
		}
		fmt.Println(st.State)
		if st.State != client.StateDone {
			return fmt.Errorf("run %s finished %s: %s", st.ID, st.State, st.Error)
		}
		return nil

	case "canonical":
		if len(args) != 1 {
			return fmt.Errorf("usage: canonical <id>")
		}
		raw, err := cl.CanonicalRun(ctx, args[0])
		if err != nil {
			return err
		}
		_, err = os.Stdout.Write(raw)
		return err

	case "cancel":
		if len(args) != 1 {
			return fmt.Errorf("usage: cancel <id>")
		}
		resp, err := cl.CancelRun(ctx, args[0])
		if err != nil {
			return err
		}
		return printJSON(resp)

	case "litmus-submit":
		if len(args) != 1 {
			return fmt.Errorf("usage: litmus-submit <spec-json|->")
		}
		raw := []byte(args[0])
		if args[0] == "-" {
			var err error
			if raw, err = io.ReadAll(os.Stdin); err != nil {
				return err
			}
		}
		var spec client.LitmusSpec
		if err := unmarshalStrict(raw, &spec); err != nil {
			return fmt.Errorf("bad spec: %w", err)
		}
		sub, err := cl.SubmitLitmus(ctx, spec)
		if err != nil {
			return err
		}
		fmt.Println(sub.ID)
		return nil

	case "litmus-wait":
		if len(args) != 1 {
			return fmt.Errorf("usage: litmus-wait <id>")
		}
		st, err := cl.WaitLitmus(ctx, args[0], 250*time.Millisecond)
		if err != nil {
			return err
		}
		fmt.Println(st.State)
		if st.State != client.StateDone {
			return fmt.Errorf("campaign %s finished %s: %s", st.ID, st.State, st.Error)
		}
		return nil

	case "litmus-canonical":
		if len(args) != 1 {
			return fmt.Errorf("usage: litmus-canonical <id>")
		}
		raw, err := cl.CanonicalLitmus(ctx, args[0])
		if err != nil {
			return err
		}
		_, err = os.Stdout.Write(raw)
		return err

	case "optimize-submit":
		if len(args) != 1 {
			return fmt.Errorf("usage: optimize-submit <spec-json|->")
		}
		raw := []byte(args[0])
		if args[0] == "-" {
			var err error
			if raw, err = io.ReadAll(os.Stdin); err != nil {
				return err
			}
		}
		var spec client.OptimizeSpec
		if err := unmarshalStrict(raw, &spec); err != nil {
			return fmt.Errorf("bad spec: %w", err)
		}
		sub, err := cl.SubmitOptimize(ctx, spec)
		if err != nil {
			return err
		}
		fmt.Println(sub.ID)
		return nil

	case "optimize-wait":
		if len(args) != 1 {
			return fmt.Errorf("usage: optimize-wait <id>")
		}
		st, err := cl.WaitOptimize(ctx, args[0], 250*time.Millisecond)
		if err != nil {
			return err
		}
		fmt.Println(st.State)
		if st.State != client.StateDone {
			return fmt.Errorf("optimize job %s finished %s: %s", st.ID, st.State, st.Error)
		}
		return nil

	case "optimize-status":
		if len(args) != 1 {
			return fmt.Errorf("usage: optimize-status <id>")
		}
		st, err := cl.Optimize(ctx, args[0])
		if err != nil {
			return err
		}
		return printJSON(st)

	case "optimize-report":
		if len(args) != 1 {
			return fmt.Errorf("usage: optimize-report <id>")
		}
		raw, err := cl.CanonicalOptimize(ctx, args[0])
		if err != nil {
			return err
		}
		_, err = os.Stdout.Write(raw)
		return err

	case "ready":
		// Retry until the server answers /readyz or the deadline ends —
		// the startup barrier for smoke scripts.
		for {
			err := cl.GetJSON(ctx, "/readyz", nil)
			if err == nil {
				return nil
			}
			t := time.NewTimer(200 * time.Millisecond)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return fmt.Errorf("server not ready: %w", err)
			}
		}

	default:
		return fmt.Errorf("unknown command (want experiments|submit|status|wait|canonical|cancel|litmus-submit|litmus-wait|litmus-canonical|optimize-submit|optimize-wait|optimize-status|optimize-report|ready)")
	}
}
