// Command wmmasm assembles and runs textual programs on the simulated
// weak-memory machines — a scratchpad for exploring reorderings by hand.
//
// Each input file provides the program for one core; with a single file
// and -cores N, all cores run the same program.  After the run, registers
// r0..r8 of each core and the first -dump words of memory are printed.
//
// Usage:
//
//	wmmasm [-arch armv8|power7] [-cores N] [-cycles N] [-seed N] [-dump N] prog.s [prog2.s ...]
//
// Example (message passing):
//
//	cat > writer.s <<'EOF'
//	movimm r0, #1
//	str    r0, [r1, #0]    ; data
//	dmb    ishst
//	str    r0, [r1, #64]   ; flag
//	halt
//	EOF
//	cat > reader.s <<'EOF'
//	ldr r2, [r1, #64]
//	ldr r3, [r1, #0]
//	halt
//	EOF
//	wmmasm -arch armv8 writer.s reader.s
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/wmm"
)

func main() {
	archFlag := flag.String("arch", "armv8", "machine: armv8 or power7")
	cores := flag.Int("cores", 0, "core count (default: one per input file)")
	cycles := flag.Int64("cycles", 10_000_000, "cycle budget")
	seed := flag.Int64("seed", 1, "random seed")
	dump := flag.Int64("dump", 16, "memory words to dump")
	mem := flag.Int("mem", 1<<12, "memory words")
	trace := flag.Bool("trace", false, "print the retirement trace")
	flag.Parse()

	files := flag.Args()
	if len(files) == 0 {
		fmt.Fprintln(os.Stderr, "usage: wmmasm [flags] prog.s [prog2.s ...]")
		os.Exit(2)
	}

	var prof *wmm.Profile
	switch *archFlag {
	case "armv8":
		prof = wmm.ARMv8()
	case "power7":
		prof = wmm.POWER7()
	default:
		fmt.Fprintf(os.Stderr, "wmmasm: unknown arch %q\n", *archFlag)
		os.Exit(2)
	}

	progs := make([]wmm.Program, 0, len(files))
	for _, f := range files {
		src, err := os.ReadFile(f)
		if err != nil {
			fmt.Fprintln(os.Stderr, "wmmasm:", err)
			os.Exit(1)
		}
		p, err := wmm.ParseAsm(string(src))
		if err != nil {
			fmt.Fprintf(os.Stderr, "wmmasm: %s: %v\n", f, err)
			os.Exit(1)
		}
		progs = append(progs, p)
	}

	n := *cores
	if n == 0 {
		n = len(progs)
	}
	m, err := wmm.NewMachine(prof, wmm.MachineConfig{Cores: n, MemWords: *mem, Seed: *seed})
	if err != nil {
		fmt.Fprintln(os.Stderr, "wmmasm:", err)
		os.Exit(1)
	}
	if *trace {
		m.WriteTraceTo(os.Stdout)
	}
	for c := 0; c < n; c++ {
		p := progs[c%len(progs)]
		m.SetReg(c, 1, 0) // convention: r1 = memory base
		if err := m.LoadProgram(c, p); err != nil {
			fmt.Fprintln(os.Stderr, "wmmasm:", err)
			os.Exit(1)
		}
	}
	res, err := m.Run(*cycles)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wmmasm:", err)
		os.Exit(1)
	}
	fmt.Printf("%s: %d cycles (%.1f ns), halted=%v\n",
		prof.Name, res.Cycles, prof.CyclesToNs(res.Cycles), res.AllHalted)
	for c := 0; c < n; c++ {
		fmt.Printf("core %d: work=%d regs:", c, res.Cores[c].Work)
		for r := wmm.Reg(0); r <= 8; r++ {
			fmt.Printf(" r%d=%d", r, m.Reg(c, r))
		}
		fmt.Println()
	}
	fmt.Print("mem (word addresses):")
	for a := int64(0); a < *dump; a++ {
		fmt.Printf(" [%d]=%d", a, m.ReadMem(a))
	}
	fmt.Println()
}
