// Command wmmd serves the weak-memory-model benchmarking engine over
// HTTP: experiments become queryable, cancellable jobs instead of
// one-shot stdout dumps.
//
// Usage:
//
//	wmmd [-addr :8347] [-workers N] [-parallel N]
//
// API:
//
//	GET    /healthz          liveness and worker count
//	GET    /experiments      the experiment catalogue
//	POST   /runs             submit {"experiments": ["fig5"], "short": true,
//	                         "seed": 1, "samples": 6, "timeout_ms": 600000}
//	GET    /runs             all run statuses
//	GET    /runs/{id}        one run's status; ?results=1 includes partial
//	                         results, ?stream=1 streams NDJSON progress
//	DELETE /runs/{id}        cancel a run
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/engine"
)

func main() {
	addr := flag.String("addr", ":8347", "listen address")
	workers := flag.Int("workers", 0, "sample worker-pool size (0 = GOMAXPROCS)")
	parallel := flag.Int("parallel", 0, "default concurrent experiments per run (0 = worker count)")
	flag.Parse()

	eng := engine.New(engine.Options{Workers: *workers})
	defer eng.Close()
	srv := &http.Server{
		Addr:    *addr,
		Handler: engine.NewServer(eng, *parallel).Handler(),
	}

	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Print("wmmd: shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()

	log.Printf("wmmd: serving on %s (%d workers)", *addr, eng.Workers())
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("wmmd: %v", err)
	}
}
