// Command wmmd serves the weak-memory-model benchmarking engine over
// HTTP: experiments become queryable, cancellable jobs instead of
// one-shot stdout dumps.
//
// Usage:
//
//	wmmd [-addr :8347] [-workers N] [-parallel N] [-retain 24h]
//	     [-data DIR] [-store jsonl|segment] [-sample-timeout 5m]
//	     [-sample-retries 2] [-local-slots N] [-lease-ttl 15s]
//	     [-max-batch 4] [-max-queue 1024] [-cache-entries 256]
//	     [-cache-retain 168h] [-tenant-max-queued N]
//	     [-tenant-max-running N] [-tenant-weights a=2,b=1]
//	     [-ha] [-ha-id ID] [-ha-ttl 10s] [-ops-addr :8348]
//	     [-legacy-routes=true] [-print-api-doc] [-debug]
//
// API (versioned surface; see docs/API.md for the full contract):
//
//	GET    /healthz                  liveness and worker count
//	GET    /readyz                   readiness: engine up, store writable
//	GET    /metrics                  Prometheus text exposition
//	GET    /api/v1/experiments       experiment catalogue (?limit=&after=)
//	POST   /api/v1/runs              submit {"experiments": ["fig5"],
//	                                 "short": true, "seed": 1, ...};
//	                                 429 + Retry-After when saturated
//	GET    /api/v1/runs              run statuses (?limit=&after=)
//	GET    /api/v1/runs/{id}         one run; ?results=1 partial results,
//	                                 ?stream=1 NDJSON progress,
//	                                 ?canonical=1 canonical result JSON
//	DELETE /api/v1/runs/{id}         cancel / remove a run
//	POST   /api/v1/litmus            submit a generated litmus campaign
//	                                 {"arch": "armv8", "count": 500, ...}
//	GET    /api/v1/litmus            campaign statuses
//	GET    /api/v1/litmus/{id}       one campaign; ?results=1 partial
//	                                 results, ?canonical=1 canonical JSON
//	DELETE /api/v1/litmus/{id}       cancel / remove a campaign
//	POST   /api/v1/optimize          submit a fence-strategy optimizer
//	                                 job {"platform": "jvm", "arch":
//	                                 "armv8", "baseline": ...}
//	GET    /api/v1/optimize          optimizer job statuses
//	GET    /api/v1/optimize/{id}     one job; ?canonical=1 canonical
//	                                 report JSON
//	DELETE /api/v1/optimize/{id}     cancel / remove an optimizer job
//	POST   /api/v1/leases            worker lease: grab a batch of jobs
//	POST   /api/v1/leases/{id}/heartbeat   renew a lease
//	POST   /api/v1/leases/{id}/results     upload a batch's results
//	GET    /debug/pprof/             runtime profiling (only with -debug)
//
// Every non-2xx response carries the uniform JSON error envelope
// {"error": {"code": "...", "message": "..."}} — including unknown v1
// routes (404) and wrong methods (405 + Allow).  The original
// unversioned routes (/experiments, /runs, ...) remain as deprecated
// shims that answer identically plus Deprecation/Sunset headers;
// -legacy-routes=off sunsets them early (410 gone naming the v1
// successor).  -print-api-doc emits the machine-readable route table
// (the committed copy is docs/api-v1.json) and exits.
//
// Execution is sharded: each run decomposes into per-experiment jobs on
// a shared queue, served by -local-slots in-process executors and by
// remote wmmworker processes leasing batches over the API.  A worker
// that stops heartbeating loses its lease and the jobs re-queue;
// positional seed derivation keeps results byte-identical wherever a
// job lands.  -local-slots -1 makes the server a pure coordinator.
// Litmus campaigns ride the same queue as index-range shards of a
// deterministically generated test batch (see docs/LITMUS.md).
//
// Results are content-addressed: before a job is enqueued, the
// dispatcher consults a result cache keyed by a hash of the experiment,
// sweep options, seed and engine version, so resubmitting an identical
// spec is served from cache (experiments carry a "cache" provenance
// field) and concurrent identical submissions execute once
// (single-flight).  -cache-entries bounds the in-memory layer (-1
// disables caching); with -data, entries persist under DIR/cache and
// survive restarts, garbage-collected after -cache-retain.  Append
// ?nocache=1 to POST /api/v1/runs (or set "nocache" in the spec) to
// force execution.  See docs/CACHING.md.
//
// Finished runs are garbage-collected after -retain (0 keeps them
// forever).  Every request is access-logged as one JSON line on stderr.
//
// With -data DIR, runs are durable: specs and completed experiment
// results are checkpointed under DIR, and on startup finished runs are
// restored into the catalogue while interrupted runs resume from their
// last checkpoint.  Positional seed derivation makes a resumed run's
// results identical to an uninterrupted one (see docs/ROBUSTNESS.md).
// -store picks the layout: "jsonl" (one append-only file per run, the
// default) or "segment" (shared immutable segments with crash-safe
// compaction — fewer files, bounded by background folding).
//
// Submissions are accounted to tenants (X-WMM-Tenant header or the
// spec's "tenant" field; default "default").  The dispatcher dequeues
// across tenants by weighted round-robin (-tenant-weights), so one
// tenant's flood cannot starve another's runs; -tenant-max-queued and
// -tenant-max-running bound each tenant's admitted jobs and concurrent
// runs, refused with 429 + Retry-After.
//
// With -ha (requires -data), the process joins leader election over the
// store's coordinator lease: at most one wmmd serves the API while the
// others stand by, watching the lease.  A standby binds -addr only when
// promoted; -ops-addr (optional) is an always-on listener answering
// /healthz 200 and /readyz 503 {"role": "standby"} so operators can
// distinguish a healthy standby from a dead process.  When the leader
// dies, a standby takes over after the lease grace window, replays the
// store, and resumes interrupted runs.  The lease term is enforced as a
// fencing token by the store itself: once a rival claims, every store
// write from the old leader is refused (so a stalled process cannot
// corrupt the store), and a deposed or fenced leader exits with status
// 3 — restart it (e.g. a process supervisor) to rejoin as standby.
//
// On SIGINT/SIGTERM the server shuts down in order: stop accepting
// runs, cancel in-flight runs and wait for their executors, drain HTTP,
// and only then close the engine's worker pool — so a shutdown never
// closes the job channel under an in-flight Measure.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/engine"
	"repro/internal/ha"
	"repro/internal/metrics"
	"repro/internal/resultcache"
	"repro/internal/runstore"
)

// accessLog wraps a handler with one-line JSON access logging.
type accessLog struct {
	h   http.Handler
	out *log.Logger
}

// logWriter records status and bytes while passing Flush through to
// streaming handlers.
type logWriter struct {
	http.ResponseWriter
	code  int
	bytes int64
}

func (w *logWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *logWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

func (w *logWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap supports http.ResponseController.
func (w *logWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

func (a *accessLog) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	lw := &logWriter{ResponseWriter: w}
	start := time.Now()
	a.h.ServeHTTP(lw, r)
	code := lw.code
	if code == 0 {
		code = http.StatusOK
	}
	line, _ := json.Marshal(map[string]any{
		"time":        start.UTC().Format(time.RFC3339Nano),
		"method":      r.Method,
		"path":        r.URL.RequestURI(),
		"status":      code,
		"bytes":       lw.bytes,
		"duration_ms": time.Since(start).Seconds() * 1e3,
		"remote":      r.RemoteAddr,
	})
	a.out.Print(string(line))
}

func main() {
	addr := flag.String("addr", ":8347", "listen address")
	workers := flag.Int("workers", 0, "sample worker-pool size (0 = GOMAXPROCS)")
	parallel := flag.Int("parallel", 0, "default concurrent experiments per run (0 = worker count)")
	retain := flag.Duration("retain", 24*time.Hour, "garbage-collect finished runs after this long (0 = keep forever)")
	dataDir := flag.String("data", "", "directory for durable run state (empty = in-memory only)")
	sampleTimeout := flag.Duration("sample-timeout", 5*time.Minute, "per-sample watchdog deadline (0 = none)")
	sampleRetries := flag.Int("sample-retries", 2, "retries per failed sample batch before the experiment degrades")
	localSlots := flag.Int("local-slots", 0, "local executor slots pulling from the job queue (0 = -parallel default, -1 = coordinate only)")
	leaseTTL := flag.Duration("lease-ttl", 15*time.Second, "worker lease validity between heartbeats")
	maxBatch := flag.Int("max-batch", 4, "max jobs handed out per worker lease")
	maxQueue := flag.Int("max-queue", 1024, "max unfinished jobs admitted before submissions get 429")
	cacheEntries := flag.Int("cache-entries", 256, "in-memory result-cache entries (0 = default, -1 = disable result caching)")
	cacheRetain := flag.Duration("cache-retain", 7*24*time.Hour, "garbage-collect persisted result-cache entries after this long (0 = keep forever)")
	storeKind := flag.String("store", runstore.KindJSONL, "run-store layout under -data: jsonl or segment")
	tenantMaxQueued := flag.Int("tenant-max-queued", 0, "max unfinished jobs admitted per tenant (0 = only -max-queue applies)")
	tenantMaxRunning := flag.Int("tenant-max-running", 0, "max concurrently executing runs per tenant (0 = unbounded)")
	tenantWeights := flag.String("tenant-weights", "", "fair-share weights as tenant=N[,tenant=N...] (default weight 1)")
	haMode := flag.Bool("ha", false, "join leader election over the run store's coordinator lease (requires -data)")
	haID := flag.String("ha-id", "", "lease owner identity for -ha (default hostname-pid)")
	haTTL := flag.Duration("ha-ttl", 10*time.Second, "coordinator lease TTL for -ha")
	opsAddr := flag.String("ops-addr", "", "always-on operational listener (healthz/readyz) for -ha standbys (empty = none)")
	legacyRoutes := flag.String("legacy-routes", "on", "serve the deprecated unversioned routes (/runs, /experiments): on, or off (410 gone naming the v1 successor)")
	printAPIDoc := flag.Bool("print-api-doc", false, "print the machine-readable API description (docs/api-v1.json) and exit")
	debug := flag.Bool("debug", false, "expose net/http/pprof under /debug/pprof/")
	flag.Parse()

	if *printAPIDoc {
		os.Stdout.Write(engine.APIDoc())
		return
	}

	// Validate flags up front with actionable errors, instead of letting
	// a bad value surface later as a confusing runtime failure.
	if *workers < 0 {
		log.Fatalf("wmmd: -workers must be >= 0 (0 = GOMAXPROCS), got %d", *workers)
	}
	if *parallel < 0 {
		log.Fatalf("wmmd: -parallel must be >= 0 (0 = worker count), got %d", *parallel)
	}
	if *retain < 0 {
		log.Fatalf("wmmd: -retain must be >= 0 (0 = keep forever), got %v", *retain)
	}
	if *sampleTimeout < 0 {
		log.Fatalf("wmmd: -sample-timeout must be >= 0 (0 = no deadline), got %v", *sampleTimeout)
	}
	if *sampleRetries < 0 {
		log.Fatalf("wmmd: -sample-retries must be >= 0, got %d", *sampleRetries)
	}
	if *localSlots < -1 {
		log.Fatalf("wmmd: -local-slots must be >= -1 (-1 = coordinate only, 0 = default), got %d", *localSlots)
	}
	if *leaseTTL <= 0 {
		log.Fatalf("wmmd: -lease-ttl must be > 0, got %v", *leaseTTL)
	}
	if *maxBatch <= 0 {
		log.Fatalf("wmmd: -max-batch must be > 0, got %d", *maxBatch)
	}
	if *maxQueue <= 0 {
		log.Fatalf("wmmd: -max-queue must be > 0, got %d", *maxQueue)
	}
	if *cacheEntries < -1 {
		log.Fatalf("wmmd: -cache-entries must be >= -1 (-1 = disable, 0 = default), got %d", *cacheEntries)
	}
	if *cacheRetain < 0 {
		log.Fatalf("wmmd: -cache-retain must be >= 0 (0 = keep forever), got %v", *cacheRetain)
	}
	if *tenantMaxQueued < 0 || *tenantMaxRunning < 0 {
		log.Fatalf("wmmd: -tenant-max-queued and -tenant-max-running must be >= 0 (0 = unbounded)")
	}
	weights, err := parseWeights(*tenantWeights)
	if err != nil {
		log.Fatalf("wmmd: -tenant-weights: %v", err)
	}
	if *haMode && *dataDir == "" {
		log.Fatal("wmmd: -ha requires -data (the lease lives in the run store)")
	}
	if *haTTL <= 0 {
		log.Fatalf("wmmd: -ha-ttl must be > 0, got %v", *haTTL)
	}
	var disableLegacy bool
	switch *legacyRoutes {
	case "on", "true":
	case "off", "false":
		disableLegacy = true
	default:
		log.Fatalf("wmmd: -legacy-routes must be on or off, got %q", *legacyRoutes)
	}

	var store runstore.Storage
	if *dataDir != "" {
		store, err = runstore.OpenBackend(*storeKind, *dataDir)
		if err != nil {
			log.Fatalf("wmmd: -data %s: %v", *dataDir, err)
		}
	} else if *storeKind != runstore.KindJSONL {
		log.Fatalf("wmmd: -store %s needs -data", *storeKind)
	}

	// One registry serves the whole process, created before the engine
	// exists: the HA controller's wmm_ha_* instruments live next to the
	// engine's, so one /metrics scrape sees role, term and fenced-write
	// counts alongside everything else.
	reg := metrics.NewRegistry()

	// buildAPI assembles the full serving stack: engine, result cache,
	// server, store replay.  Non-HA wmmd calls it immediately; an HA
	// process calls it on promotion, so a standby holds no engine and
	// replays nothing until it actually leads.
	var api *engine.Server
	var eng *engine.Engine
	buildAPI := func() (http.Handler, error) {
		eng = engine.New(engine.Options{
			Workers:       *workers,
			SampleTimeout: *sampleTimeout,
			Retry:         engine.RetryPolicy{Max: *sampleRetries},
			Registry:      reg,
		})
		// Content-addressed result reuse: the dispatcher consults the
		// cache before enqueueing jobs, and with -data the persistent
		// layer makes deduplication survive restarts.
		var cache *resultcache.Cache
		if *cacheEntries >= 0 {
			copt := resultcache.Options{MaxEntries: *cacheEntries, Registry: eng.Metrics()}
			if store != nil {
				copt.Persist = store
			}
			cache = resultcache.New(copt)
		}
		api = engine.NewServer(eng, engine.ServerOptions{
			Parallel:         *parallel,
			Retain:           *retain,
			CacheRetain:      *cacheRetain,
			Store:            store,
			TenantMaxRunning: *tenantMaxRunning,
			DisableLegacy:    disableLegacy,
			// A fenced store write means another process coordinates:
			// depose immediately (→ exit 3) rather than waiting for the
			// renew loop to notice.  No-op outside -ha, where the fence
			// is never armed.
			OnFenced: func() {
				if haCtrl != nil {
					haCtrl.NoteFenced()
				}
			},
			Dispatch: &engine.DispatchOptions{
				LocalSlots:      *localSlots,
				LeaseTTL:        *leaseTTL,
				MaxBatch:        *maxBatch,
				MaxQueue:        *maxQueue,
				TenantMaxQueued: *tenantMaxQueued,
				TenantWeights:   weights,
				Cache:           cache,
			},
		})
		if store != nil {
			resumed, restored, err := api.Restore()
			if err != nil {
				return nil, fmt.Errorf("restoring runs from %s: %w", *dataDir, err)
			}
			log.Printf("wmmd: run store %s (%s): %d finished runs restored, %d interrupted runs resumed",
				*dataDir, store.Kind(), restored, resumed)
		}

		mux := http.NewServeMux()
		mux.Handle("/", api.Handler())
		if *debug {
			mux.HandleFunc("GET /debug/pprof/", pprof.Index)
			mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
			mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
			mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
			mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
		}
		return mux, nil
	}

	logger := log.New(os.Stderr, "", 0)
	srv := &http.Server{Addr: *addr}

	// shutdown drains in order: stop accepting runs, cancel in-flight
	// runs and wait for their executors (api.Shutdown), drain HTTP, and
	// let main close the engine last.  Closing the engine while a run is
	// mid-Measure is a send on a closed channel.
	shutdown := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if api != nil {
			if err := api.Shutdown(ctx); err != nil {
				log.Printf("wmmd: run shutdown: %v", err)
			}
		}
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("wmmd: http shutdown: %v", err)
		}
	}

	dataDesc := *dataDir
	if dataDesc == "" {
		dataDesc = "none"
	}

	if !*haMode {
		h, err := buildAPI()
		if err != nil {
			log.Fatalf("wmmd: %v", err)
		}
		srv.Handler = &accessLog{h: h, out: logger}

		shutdownDone := make(chan struct{})
		go func() {
			defer close(shutdownDone)
			sig := make(chan os.Signal, 1)
			signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
			<-sig
			log.Print("wmmd: shutting down")
			shutdown()
		}()

		log.Printf("wmmd: serving on %s (%d workers, retain %v, data %s, debug %v)", *addr, eng.Workers(), *retain, dataDesc, *debug)
		if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("wmmd: %v", err)
		}
		<-shutdownDone
		eng.Close()
		return
	}

	// HA mode: stand by until the coordinator lease is won, then build
	// the API and bind -addr.  The lease is acquired BEFORE binding, so
	// two HA processes can share one -addr: only the leader listens.
	ctrl, err := ha.New(ha.Options{
		Store:   store,
		ID:      *haID,
		TTL:     *haTTL,
		Metrics: reg,
		OnPromote: func(ctx context.Context) (http.Handler, error) {
			h, err := buildAPI()
			if err != nil {
				return nil, err
			}
			srv.Handler = &accessLog{h: ctrlHandler(), out: logger}
			ln, err := listenRetry(*addr, *haTTL)
			if err != nil {
				return nil, err
			}
			go func() {
				if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
					log.Printf("wmmd: serve: %v", err)
				}
			}()
			log.Printf("wmmd: leader serving on %s (data %s, store %s)", *addr, dataDesc, store.Kind())
			return h, nil
		},
	})
	if err != nil {
		log.Fatalf("wmmd: %v", err)
	}
	haCtrl = ctrl

	// The ops listener is up from the first moment, leader or standby:
	// /healthz says alive, /readyz says whether (and as what) this
	// process can take traffic.
	if *opsAddr != "" {
		opsSrv := &http.Server{Addr: *opsAddr, Handler: &accessLog{h: ctrl.Handler(), out: logger}}
		go func() {
			if err := opsSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Fatalf("wmmd: ops listener %s: %v", *opsAddr, err)
			}
		}()
		defer opsSrv.Close()
	}

	runCtx, stopRun := context.WithCancel(context.Background())
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Print("wmmd: shutting down")
		shutdown()
		stopRun() // releases the lease for a fast standby takeover
	}()

	log.Printf("wmmd: HA %s standing by for coordinator lease (ttl %v, data %s)", ctrlID(ctrl, *haID), *haTTL, dataDesc)
	err = ctrl.Run(runCtx)
	switch {
	case err == nil:
		// Clean shutdown: drain finished above.
		if eng != nil {
			eng.Close()
		}
	case errors.Is(err, ha.ErrDeposed):
		// Another process leads.  Serving on would risk split-brain, and
		// the engine may hold half-executed runs — exit hard and let the
		// supervisor restart this process as a standby.
		log.Print("wmmd: deposed, exiting (restart to rejoin as standby)")
		os.Exit(3)
	default:
		log.Fatalf("wmmd: %v", err)
	}
}

// haCtrl lets the promoted access-log handler reach the controller; set
// once before Run starts.
var haCtrl *ha.Controller

// ctrlHandler defers to the HA controller's surface so the main
// listener and the ops listener answer identically.
func ctrlHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		haCtrl.Handler().ServeHTTP(w, r)
	})
}

func ctrlID(c *ha.Controller, flagID string) string {
	if flagID != "" {
		return flagID
	}
	return "node"
}

// listenRetry binds addr, retrying for one lease TTL: after a failover
// the old leader's socket may take a moment to die.
func listenRetry(addr string, ttl time.Duration) (net.Listener, error) {
	deadline := time.Now().Add(2 * ttl)
	for {
		ln, err := net.Listen("tcp", addr)
		if err == nil {
			return ln, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("bind %s: %w", addr, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// parseWeights parses -tenant-weights ("a=2,b=1") into the dispatcher's
// weight map.
func parseWeights(s string) (map[string]int, error) {
	if s == "" {
		return nil, nil
	}
	out := map[string]int{}
	for _, part := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("bad entry %q, want tenant=N", part)
		}
		w, err := strconv.Atoi(val)
		if err != nil || w < 1 {
			return nil, fmt.Errorf("bad weight in %q, want an integer >= 1", part)
		}
		out[name] = w
	}
	return out, nil
}
