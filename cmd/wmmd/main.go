// Command wmmd serves the weak-memory-model benchmarking engine over
// HTTP: experiments become queryable, cancellable jobs instead of
// one-shot stdout dumps.
//
// Usage:
//
//	wmmd [-addr :8347] [-workers N] [-parallel N] [-retain 24h]
//	     [-data DIR] [-sample-timeout 5m] [-sample-retries 2]
//	     [-local-slots N] [-lease-ttl 15s] [-max-batch 4]
//	     [-max-queue 1024] [-cache-entries 256] [-cache-retain 168h]
//	     [-debug]
//
// API (versioned surface; see docs/API.md for the full contract):
//
//	GET    /healthz                  liveness and worker count
//	GET    /readyz                   readiness: engine up, store writable
//	GET    /metrics                  Prometheus text exposition
//	GET    /api/v1/experiments       experiment catalogue (?limit=&after=)
//	POST   /api/v1/runs              submit {"experiments": ["fig5"],
//	                                 "short": true, "seed": 1, ...};
//	                                 429 + Retry-After when saturated
//	GET    /api/v1/runs              run statuses (?limit=&after=)
//	GET    /api/v1/runs/{id}         one run; ?results=1 partial results,
//	                                 ?stream=1 NDJSON progress,
//	                                 ?canonical=1 canonical result JSON
//	DELETE /api/v1/runs/{id}         cancel / remove a run
//	POST   /api/v1/litmus            submit a generated litmus campaign
//	                                 {"arch": "armv8", "count": 500, ...}
//	GET    /api/v1/litmus            campaign statuses
//	GET    /api/v1/litmus/{id}       one campaign; ?results=1 partial
//	                                 results, ?canonical=1 canonical JSON
//	DELETE /api/v1/litmus/{id}       cancel / remove a campaign
//	POST   /api/v1/leases            worker lease: grab a batch of jobs
//	POST   /api/v1/leases/{id}/heartbeat   renew a lease
//	POST   /api/v1/leases/{id}/results     upload a batch's results
//	GET    /debug/pprof/             runtime profiling (only with -debug)
//
// Every non-2xx response carries the uniform JSON error envelope
// {"error": {"code": "...", "message": "..."}}.  The original
// unversioned routes (/experiments, /runs, ...) remain as deprecated
// shims that answer identically plus a Deprecation header.
//
// Execution is sharded: each run decomposes into per-experiment jobs on
// a shared queue, served by -local-slots in-process executors and by
// remote wmmworker processes leasing batches over the API.  A worker
// that stops heartbeating loses its lease and the jobs re-queue;
// positional seed derivation keeps results byte-identical wherever a
// job lands.  -local-slots -1 makes the server a pure coordinator.
// Litmus campaigns ride the same queue as index-range shards of a
// deterministically generated test batch (see docs/LITMUS.md).
//
// Results are content-addressed: before a job is enqueued, the
// dispatcher consults a result cache keyed by a hash of the experiment,
// sweep options, seed and engine version, so resubmitting an identical
// spec is served from cache (experiments carry a "cache" provenance
// field) and concurrent identical submissions execute once
// (single-flight).  -cache-entries bounds the in-memory layer (-1
// disables caching); with -data, entries persist under DIR/cache and
// survive restarts, garbage-collected after -cache-retain.  Append
// ?nocache=1 to POST /api/v1/runs (or set "nocache" in the spec) to
// force execution.  See docs/CACHING.md.
//
// Finished runs are garbage-collected after -retain (0 keeps them
// forever).  Every request is access-logged as one JSON line on stderr.
//
// With -data DIR, runs are durable: specs and completed experiment
// results are checkpointed to append-only JSON files under DIR, and on
// startup finished runs are restored into the catalogue while
// interrupted runs resume from their last checkpoint.  Positional seed
// derivation makes a resumed run's results identical to an
// uninterrupted one (see docs/ROBUSTNESS.md).
//
// On SIGINT/SIGTERM the server shuts down in order: stop accepting
// runs, cancel in-flight runs and wait for their executors, drain HTTP,
// and only then close the engine's worker pool — so a shutdown never
// closes the job channel under an in-flight Measure.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/engine"
	"repro/internal/resultcache"
	"repro/internal/runstore"
)

// accessLog wraps a handler with one-line JSON access logging.
type accessLog struct {
	h   http.Handler
	out *log.Logger
}

// logWriter records status and bytes while passing Flush through to
// streaming handlers.
type logWriter struct {
	http.ResponseWriter
	code  int
	bytes int64
}

func (w *logWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *logWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

func (w *logWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap supports http.ResponseController.
func (w *logWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

func (a *accessLog) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	lw := &logWriter{ResponseWriter: w}
	start := time.Now()
	a.h.ServeHTTP(lw, r)
	code := lw.code
	if code == 0 {
		code = http.StatusOK
	}
	line, _ := json.Marshal(map[string]any{
		"time":        start.UTC().Format(time.RFC3339Nano),
		"method":      r.Method,
		"path":        r.URL.RequestURI(),
		"status":      code,
		"bytes":       lw.bytes,
		"duration_ms": time.Since(start).Seconds() * 1e3,
		"remote":      r.RemoteAddr,
	})
	a.out.Print(string(line))
}

func main() {
	addr := flag.String("addr", ":8347", "listen address")
	workers := flag.Int("workers", 0, "sample worker-pool size (0 = GOMAXPROCS)")
	parallel := flag.Int("parallel", 0, "default concurrent experiments per run (0 = worker count)")
	retain := flag.Duration("retain", 24*time.Hour, "garbage-collect finished runs after this long (0 = keep forever)")
	dataDir := flag.String("data", "", "directory for durable run state (empty = in-memory only)")
	sampleTimeout := flag.Duration("sample-timeout", 5*time.Minute, "per-sample watchdog deadline (0 = none)")
	sampleRetries := flag.Int("sample-retries", 2, "retries per failed sample batch before the experiment degrades")
	localSlots := flag.Int("local-slots", 0, "local executor slots pulling from the job queue (0 = -parallel default, -1 = coordinate only)")
	leaseTTL := flag.Duration("lease-ttl", 15*time.Second, "worker lease validity between heartbeats")
	maxBatch := flag.Int("max-batch", 4, "max jobs handed out per worker lease")
	maxQueue := flag.Int("max-queue", 1024, "max unfinished jobs admitted before submissions get 429")
	cacheEntries := flag.Int("cache-entries", 256, "in-memory result-cache entries (0 = default, -1 = disable result caching)")
	cacheRetain := flag.Duration("cache-retain", 7*24*time.Hour, "garbage-collect persisted result-cache entries after this long (0 = keep forever)")
	debug := flag.Bool("debug", false, "expose net/http/pprof under /debug/pprof/")
	flag.Parse()

	// Validate flags up front with actionable errors, instead of letting
	// a bad value surface later as a confusing runtime failure.
	if *workers < 0 {
		log.Fatalf("wmmd: -workers must be >= 0 (0 = GOMAXPROCS), got %d", *workers)
	}
	if *parallel < 0 {
		log.Fatalf("wmmd: -parallel must be >= 0 (0 = worker count), got %d", *parallel)
	}
	if *retain < 0 {
		log.Fatalf("wmmd: -retain must be >= 0 (0 = keep forever), got %v", *retain)
	}
	if *sampleTimeout < 0 {
		log.Fatalf("wmmd: -sample-timeout must be >= 0 (0 = no deadline), got %v", *sampleTimeout)
	}
	if *sampleRetries < 0 {
		log.Fatalf("wmmd: -sample-retries must be >= 0, got %d", *sampleRetries)
	}
	if *localSlots < -1 {
		log.Fatalf("wmmd: -local-slots must be >= -1 (-1 = coordinate only, 0 = default), got %d", *localSlots)
	}
	if *leaseTTL <= 0 {
		log.Fatalf("wmmd: -lease-ttl must be > 0, got %v", *leaseTTL)
	}
	if *maxBatch <= 0 {
		log.Fatalf("wmmd: -max-batch must be > 0, got %d", *maxBatch)
	}
	if *maxQueue <= 0 {
		log.Fatalf("wmmd: -max-queue must be > 0, got %d", *maxQueue)
	}
	if *cacheEntries < -1 {
		log.Fatalf("wmmd: -cache-entries must be >= -1 (-1 = disable, 0 = default), got %d", *cacheEntries)
	}
	if *cacheRetain < 0 {
		log.Fatalf("wmmd: -cache-retain must be >= 0 (0 = keep forever), got %v", *cacheRetain)
	}

	var store *runstore.Store
	if *dataDir != "" {
		var err error
		store, err = runstore.Open(*dataDir)
		if err != nil {
			log.Fatalf("wmmd: -data %s: %v", *dataDir, err)
		}
	}

	eng := engine.New(engine.Options{
		Workers:       *workers,
		SampleTimeout: *sampleTimeout,
		Retry:         engine.RetryPolicy{Max: *sampleRetries},
	})
	// Content-addressed result reuse: the dispatcher consults the cache
	// before enqueueing jobs, and with -data the persistent layer makes
	// deduplication survive restarts.
	var cache *resultcache.Cache
	if *cacheEntries >= 0 {
		copt := resultcache.Options{MaxEntries: *cacheEntries, Registry: eng.Metrics()}
		if store != nil {
			copt.Persist = store
		}
		cache = resultcache.New(copt)
	}
	api := engine.NewServer(eng, engine.ServerOptions{
		Parallel:    *parallel,
		Retain:      *retain,
		CacheRetain: *cacheRetain,
		Store:       store,
		Dispatch: &engine.DispatchOptions{
			LocalSlots: *localSlots,
			LeaseTTL:   *leaseTTL,
			MaxBatch:   *maxBatch,
			MaxQueue:   *maxQueue,
			Cache:      cache,
		},
	})
	if store != nil {
		resumed, restored, err := api.Restore()
		if err != nil {
			log.Fatalf("wmmd: restoring runs from %s: %v", *dataDir, err)
		}
		log.Printf("wmmd: run store %s: %d finished runs restored, %d interrupted runs resumed", *dataDir, restored, resumed)
	}

	mux := http.NewServeMux()
	mux.Handle("/", api.Handler())
	if *debug {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}

	srv := &http.Server{
		Addr:    *addr,
		Handler: &accessLog{h: mux, out: log.New(os.Stderr, "", 0)},
	}

	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Print("wmmd: shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		// Order matters: cancel in-flight runs and wait for their
		// executors first (api.Shutdown), then drain HTTP
		// (srv.Shutdown), and let main close the engine last.  Closing
		// the engine while a run is mid-Measure is a send on a closed
		// channel.
		if err := api.Shutdown(ctx); err != nil {
			log.Printf("wmmd: run shutdown: %v", err)
		}
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("wmmd: http shutdown: %v", err)
		}
	}()

	dataDesc := *dataDir
	if dataDesc == "" {
		dataDesc = "none"
	}
	log.Printf("wmmd: serving on %s (%d workers, retain %v, data %s, debug %v)", *addr, eng.Workers(), *retain, dataDesc, *debug)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("wmmd: %v", err)
	}
	<-shutdownDone
	eng.Close()
}
