package engine

import (
	"context"
	"testing"
	"time"

	"repro/internal/arch"
	"repro/wmm/client"
)

// TestCalCacheBounded is the regression test for the unbounded
// calibration cache: a long-lived engine serving many distinct
// (profile, sizes, seed) keys must evict completed curves beyond
// CalCacheCap instead of growing forever.
func TestCalCacheBounded(t *testing.T) {
	e := New(Options{Workers: 1, CalCacheCap: 3})
	defer e.Close()
	ctx := context.Background()
	sizes := []int64{1, 8}

	const distinct = 7
	for seed := int64(1); seed <= distinct; seed++ {
		if _, err := e.Calibration(ctx, arch.ARMv8(), sizes, seed); err != nil {
			t.Fatal(err)
		}
	}
	entries, evicted := e.CalCacheSize()
	if entries > 3 {
		t.Errorf("cache holds %d entries, cap is 3", entries)
	}
	if want := distinct - 3; evicted != want {
		t.Errorf("evicted %d entries, want %d", evicted, want)
	}
	if evs := e.met.calEvictions.Value(); int(evs) != evicted {
		t.Errorf("wmm_engine_calibration_cache_evictions_total = %v, want %d", evs, evicted)
	}

	// The survivors are the most recently used keys: the latest seed must
	// still be a hit, the earliest must have been evicted (a miss).
	_, missesBefore := e.CalStats()
	if _, err := e.Calibration(ctx, arch.ARMv8(), sizes, distinct); err != nil {
		t.Fatal(err)
	}
	if _, misses := e.CalStats(); misses != missesBefore {
		t.Errorf("most recent curve was evicted (miss count %d -> %d)", missesBefore, misses)
	}
	if _, err := e.Calibration(ctx, arch.ARMv8(), sizes, 1); err != nil {
		t.Fatal(err)
	}
	if _, misses := e.CalStats(); misses != missesBefore+1 {
		t.Errorf("LRU curve still resident (miss count %d -> %d, want +1)", missesBefore, misses)
	}

	// Negative cap restores the old unbounded behaviour.
	unbounded := New(Options{Workers: 1, CalCacheCap: -1})
	defer unbounded.Close()
	for seed := int64(1); seed <= distinct; seed++ {
		if _, err := unbounded.Calibration(ctx, arch.ARMv8(), sizes, seed); err != nil {
			t.Fatal(err)
		}
	}
	if entries, evicted := unbounded.CalCacheSize(); entries != distinct || evicted != 0 {
		t.Errorf("unbounded cache: %d entries, %d evicted, want %d/0", entries, evicted, distinct)
	}
}

// TestBackoffDeterministic is the regression test for retry jitter
// drawn from the global math/rand: backoff delays now come from a
// per-engine seeded stream, so two engines with the same JitterSeed
// produce identical delay sequences and stay inside the documented
// [d/2, d] envelope.
func TestBackoffDeterministic(t *testing.T) {
	retry := RetryPolicy{Max: 3, Base: 10 * time.Millisecond, Cap: 80 * time.Millisecond}
	mk := func(seed int64) *Engine {
		e := New(Options{Workers: 1, Retry: retry, JitterSeed: seed})
		t.Cleanup(e.Close)
		return e
	}
	seq := func(e *Engine) []time.Duration {
		var ds []time.Duration
		for attempt := 1; attempt <= 8; attempt++ {
			ds = append(ds, e.backoff(attempt))
		}
		return ds
	}

	a, b := seq(mk(7)), seq(mk(7))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at attempt %d: %v vs %v", i+1, a[i], b[i])
		}
	}

	// The envelope: attempt n targets min(Base<<(n-1), Cap), jittered
	// into [d/2, d].
	for i, got := range a {
		d := retry.Base << i
		if d > retry.Cap || d <= 0 {
			d = retry.Cap
		}
		if got < d/2 || got > d {
			t.Errorf("attempt %d backoff %v outside [%v, %v]", i+1, got, d/2, d)
		}
	}

	// A different seed draws a different jitter stream (equality of the
	// whole 8-element sequence over millisecond-scale ranges would mean
	// the seed is being ignored).
	c := seq(mk(8))
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different JitterSeed produced an identical backoff sequence")
	}
}

// TestLitmusRetentionGC is the leak regression test for litmus
// campaigns: before the sweep covered them, finished campaigns (and
// their per-shard outputs) lived forever in a server with -retain set.
// A finished campaign must be removed once retention lapses, and the
// removal must be visible on wmm_litmus_runs_swept_total.
func TestLitmusRetentionGC(t *testing.T) {
	ts, api, _ := newTestServerOpts(t, ServerOptions{
		Parallel: 2, Retain: 50 * time.Millisecond, SweepEvery: time.Hour,
	})
	cl := testClient(ts)
	sub := submitLitmus(t, ts, litmusSpecJSON)
	waitLitmus(t, ts, sub.ID)

	// Drive the sweep directly at a time far past retention, so the test
	// does not depend on the background ticker.
	time.Sleep(60 * time.Millisecond)
	api.gc(time.Now().Add(time.Hour))

	if _, err := cl.Litmus(context.Background(), sub.ID, false); !client.IsNotFound(err) {
		t.Fatalf("finished campaign still present after retention lapsed: %v", err)
	}
	if swept := api.met.litmusSwept.Value(); swept < 1 {
		t.Errorf("wmm_litmus_runs_swept_total = %v, want >= 1", swept)
	}
}
