package engine

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/optimize"
	"repro/internal/runstore"
)

// RunSpec is the body of POST /runs.
type RunSpec struct {
	// Experiments to run, in order; empty = the full evaluation in
	// paper order.
	Experiments []string `json:"experiments,omitempty"`
	// Short selects the reduced sweep.
	Short bool `json:"short"`
	// Samples per measurement (0 = driver default).
	Samples int `json:"samples,omitempty"`
	// Seed is the base random seed (0 = 1).
	Seed int64 `json:"seed,omitempty"`
	// Parallel experiments in flight (0 = server default).
	Parallel int `json:"parallel,omitempty"`
	// TimeoutMs bounds the whole run; 0 = no deadline.
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
	// Adaptive opts in to sequential stopping: each measurement draws
	// samples until its Student-t CI is tight enough (see stats.StopRule)
	// instead of the fixed count.
	Adaptive *AdaptiveSpec `json:"adaptive,omitempty"`
	// NoCache bypasses the server's result cache for this run (also
	// settable per-request with ?nocache=1): every job executes and
	// nothing is committed.
	NoCache bool `json:"nocache,omitempty"`
	// Tenant names the fair-share queue and quota bucket the run is
	// accounted to.  The X-WMM-Tenant request header takes precedence;
	// empty means "default".  Tenancy never affects result bytes — the
	// result cache deduplicates identical jobs across tenants.
	Tenant string `json:"tenant,omitempty"`
}

// Run states.
const (
	StateRunning   = "running"
	StateDone      = "done"
	StateFailed    = "failed"
	StateCancelled = "cancelled"
	// StatePartial is a run that finished with a mix of successful and
	// failed experiments: the failures are contained in their Results
	// (status "failed"/"incomplete") instead of poisoning the whole run.
	StatePartial = "partial"
)

// RunStatus is the snapshot served by GET /runs/{id}.  The id / kind /
// state / tenant / started_at / finished_at header is the envelope
// shared by every v1 job resource (runs, litmus, optimize).
type RunStatus struct {
	ID     string `json:"id"`
	Kind   string `json:"kind"`
	State  string `json:"state"`
	Tenant string `json:"tenant,omitempty"`
	// FinishedAt is set once the run leaves the running state.
	FinishedAt *time.Time `json:"finished_at,omitempty"`
	Spec       RunSpec    `json:"spec"`
	Total      int        `json:"total"`
	Completed  int        `json:"completed"`
	Running    []string   `json:"running,omitempty"`
	// Resumed marks a run restarted from a runstore checkpoint after a
	// server restart.
	Resumed bool `json:"resumed,omitempty"`
	// Measurements and Samples aggregate the execution accounting of
	// the experiments completed so far — the per-run counters behind
	// the engine-wide wmm_engine_* series.
	Measurements int       `json:"measurements"`
	Samples      int       `json:"samples"`
	Error        string    `json:"error,omitempty"`
	StartedAt    time.Time `json:"started_at"`
	WallMs       int64     `json:"wall_ms"`
	Results      []*Result `json:"results,omitempty"`
}

// event is one progress record streamed by GET /runs/{id}?stream=1.
type event struct {
	Event      string `json:"event"` // "started" | "done" | "end"
	Experiment string `json:"experiment,omitempty"`
	Error      string `json:"error,omitempty"`
	WallMs     int64  `json:"wall_ms,omitempty"`
	State      string `json:"state,omitempty"` // on "end"
	Completed  int    `json:"completed,omitempty"`
	Total      int    `json:"total,omitempty"`
}

// serverRun is one submitted job.
type serverRun struct {
	id     string
	srv    *Server
	spec   RunSpec
	total  int
	cancel context.CancelFunc
	// restored carries checkpointed results a resumed run must not
	// re-execute (set once before execute starts, read-only after).
	restored map[string]*Result
	// admitted is the dispatch-queue reservation handleSubmit took for
	// this run (0 for resumed runs, which bypass admission control).
	admitted int

	mu       sync.Mutex
	state    string
	started  time.Time
	finished time.Time
	running  map[string]bool
	results  []*Result // completed experiments, in completion order
	final    []*Result // full ordered set, once the run ends
	err      string
	subs     []chan event
	resumed  bool
	// userCancelled distinguishes an explicit DELETE from a
	// shutdown-triggered cancellation: the former is a terminal outcome
	// recorded in the store, the latter leaves the run interrupted so a
	// restart resumes it.
	userCancelled bool
}

// serverMetrics are the HTTP layer's instruments.
type serverMetrics struct {
	requests   *metrics.Counter   // method, path, code
	latency    *metrics.Histogram // method, path
	runs       *metrics.Counter   // lifecycle transitions, by state
	runsActive *metrics.Gauge     // runs currently executing
	runsKept   *metrics.Gauge     // runs retained in memory
	runsSwept  *metrics.Counter   // runs removed by GC or DELETE

	checkpoints  *metrics.Counter // experiment results durably checkpointed
	storeErrors  *metrics.Counter // failed store operations, by op
	storeFenced  *metrics.Counter // store mutations refused by the fencing token
	runsResumed  *metrics.Counter // interrupted runs resumed on startup
	runsRestored *metrics.Counter // finished runs replayed into the catalogue

	assignments   *metrics.Counter // jobs assigned to remote workers
	litmusRuns    *metrics.Counter // litmus campaign lifecycle transitions, by state
	litmusSwept   *metrics.Counter // litmus campaigns removed by GC or DELETE
	optimizeRuns  *metrics.Counter // optimizer job lifecycle transitions, by state
	optimizeSwept *metrics.Counter // optimizer jobs removed by GC or DELETE
	cacheSwept    *metrics.Counter // persisted cache entries removed by retention

	tenantRuns     *metrics.Gauge   // runs + campaigns executing, by tenant
	tenantRejected *metrics.Counter // refused submissions, by tenant and reason
}

func newServerMetrics(r *metrics.Registry) *serverMetrics {
	return &serverMetrics{
		requests:   r.Counter("wmm_http_requests_total", "HTTP requests served, by route and status code.", "method", "path", "code"),
		latency:    r.Histogram("wmm_http_request_seconds", "HTTP request latency, by route.", nil, "method", "path"),
		runs:       r.Counter("wmm_runs_total", "Run lifecycle transitions (submitted/done/failed/cancelled/partial).", "state"),
		runsActive: r.Gauge("wmm_runs_active", "Runs currently executing."),
		runsKept:   r.Gauge("wmm_runs_retained", "Runs held in memory (running + finished awaiting retention)."),
		runsSwept:  r.Counter("wmm_runs_swept_total", "Finished runs removed by the retention sweep or DELETE."),

		checkpoints:  r.Counter("wmm_store_checkpoints_written_total", "Experiment results durably checkpointed to the run store."),
		storeErrors:  r.Counter("wmm_store_errors_total", "Failed run-store operations, by operation.", "op"),
		storeFenced:  r.Counter("wmm_store_fenced_writes_total", "Store mutations refused by the lease fencing token (this process was deposed)."),
		runsResumed:  r.Counter("wmm_runs_resumed_total", "Interrupted runs resumed from the store on startup."),
		runsRestored: r.Counter("wmm_runs_restored_total", "Finished runs replayed from the store into the catalogue."),

		assignments:   r.Counter("wmm_dispatch_assignments_total", "Experiment jobs assigned to remote workers under leases."),
		litmusRuns:    r.Counter("wmm_litmus_runs_total", "Litmus campaign lifecycle transitions (submitted/done/failed/cancelled/partial).", "state"),
		litmusSwept:   r.Counter("wmm_litmus_runs_swept_total", "Finished litmus campaigns removed by the retention sweep or DELETE."),
		optimizeRuns:  r.Counter("wmm_optimize_runs_total", "Optimizer job lifecycle transitions (submitted/done/failed/cancelled).", "state"),
		optimizeSwept: r.Counter("wmm_optimize_runs_swept_total", "Finished optimizer jobs removed by the retention sweep or DELETE."),
		cacheSwept:    r.Counter("wmm_resultcache_persist_swept_total", "Persisted result-cache entries removed by the retention sweep."),

		tenantRuns:     r.Gauge("wmm_tenant_runs_running", "Runs and litmus campaigns currently executing, by tenant.", "tenant"),
		tenantRejected: r.Counter("wmm_tenant_rejected_total", "Submissions refused by admission control, by tenant and reason.", "tenant", "reason"),
	}
}

// ServerOptions configures NewServer.
type ServerOptions struct {
	// Parallel is the experiment-level concurrency used when a RunSpec
	// does not choose its own (<= 0 falls back to the engine's worker
	// count).
	Parallel int
	// Retain bounds how long a finished run stays queryable.  The
	// retention sweep removes completed runs older than this; 0 keeps
	// them forever (the pre-retention behaviour — a leak on a
	// long-lived server).
	Retain time.Duration
	// SweepEvery is the GC interval; Retain/4 clamped to [1s, 1m] if 0.
	SweepEvery time.Duration
	// Store, when non-nil, makes runs durable: specs and completed
	// experiment results are checkpointed as they happen, and Restore
	// replays them after a restart — resuming interrupted runs from
	// their last checkpoint.  A nil Store is the in-memory-only
	// behaviour.  Any runstore backend works (JSONL or segment); take
	// care to leave this nil rather than storing a typed-nil pointer.
	Store runstore.Storage
	// Dispatch, when non-nil, enables the sharded execution backend:
	// runs are decomposed into experiment jobs on a shared queue served
	// by local executor slots and by remote wmmworker processes leasing
	// batches through POST /api/v1/leases.  Admission control refuses
	// submissions that would overflow the queue with 429 + Retry-After.
	// A nil Dispatch keeps the in-process Engine.Run path.  Set
	// Dispatch.Cache to enable content-addressed result reuse.
	Dispatch *DispatchOptions
	// CacheRetain bounds how long persisted result-cache entries (the
	// Store's cache/ directory) survive; the retention sweep removes
	// older ones.  0 keeps them forever.
	CacheRetain time.Duration
	// TenantMaxRunning bounds how many runs and litmus campaigns one
	// tenant may have executing at once; submissions beyond it are
	// refused with 429 + Retry-After.  0 = unbounded.  Resumed runs
	// bypass the quota — losing checkpointed work is worse than a brief
	// overshoot.
	TenantMaxRunning int
	// OnFenced is called (once) when a store mutation is refused by the
	// lease fencing token (runstore.ErrFenced): another process holds a
	// newer coordinator claim, so this one must stop serving.  Under
	// -ha, wmmd wires it to the controller's NoteFenced, which deposes
	// immediately instead of waiting for the next renew tick.
	OnFenced func()
	// DisableLegacy sunsets the pre-v1 unversioned routes (/runs,
	// /experiments, ...): they answer 410 gone pointing at their v1
	// successor instead of serving.  Off by default until the
	// LegacySunset date; wmmd exposes it as -legacy-routes=off.
	DisableLegacy bool
}

// Server exposes the engine over HTTP: a queryable catalogue of
// experiments and asynchronous, cancellable runs with streamed progress.
// Wire its Handler into an http.Server (see cmd/wmmd) and call Shutdown
// before Engine.Close — it cancels in-flight runs and waits for them,
// so the engine's job channel is never closed mid-send.
type Server struct {
	eng              *Engine
	defaultParallel  int
	retain           time.Duration
	cacheRetain      time.Duration
	store            runstore.Storage
	disp             *Dispatcher
	met              *serverMetrics
	tenantMaxRunning int
	onFenced         func()
	fencedOnce       sync.Once
	disableLegacy    bool
	legacyWarn       sync.Once // one migration warning per process

	mu            sync.Mutex
	runs          map[string]*serverRun
	seq           int
	litmus        map[string]*litmusRun
	litmusSeq     int
	optimize      map[string]*optimizeRun
	optimizeSeq   int
	tenantRunning map[string]int // executing runs + campaigns, by tenant
	closed        bool

	active   sync.WaitGroup // one per executing run
	stopOnce sync.Once
	stop     chan struct{} // closes to end the retention sweeper
}

// NewServer wraps an engine.  Its metrics land in the engine's registry.
func NewServer(eng *Engine, o ServerOptions) *Server {
	if o.Parallel <= 0 {
		o.Parallel = eng.Workers()
	}
	s := &Server{
		eng:              eng,
		defaultParallel:  o.Parallel,
		retain:           o.Retain,
		cacheRetain:      o.CacheRetain,
		store:            o.Store,
		met:              newServerMetrics(eng.Metrics()),
		tenantMaxRunning: o.TenantMaxRunning,
		onFenced:         o.OnFenced,
		disableLegacy:    o.DisableLegacy,
		runs:             map[string]*serverRun{},
		litmus:           map[string]*litmusRun{},
		optimize:         map[string]*optimizeRun{},
		tenantRunning:    map[string]int{},
		stop:             make(chan struct{}),
	}
	if s.store != nil {
		// Continue the run-N sequence past anything already on disk so
		// a restarted server never reuses an ID.
		s.seq = s.store.MaxSeq()
	}
	if o.Dispatch != nil {
		dopt := *o.Dispatch
		if dopt.OnAssign == nil {
			dopt.OnAssign = func(runID, experiment, worker string) {
				s.met.assignments.Inc()
				if s.store != nil {
					if err := s.store.Assign(runID, experiment, worker); err != nil {
						s.storeFailed("assign", err)
					}
				}
			}
		}
		s.disp = NewDispatcher(eng, dopt, o.Parallel)
	}
	if o.Retain > 0 || (o.CacheRetain > 0 && o.Store != nil) {
		every := o.SweepEvery
		if every <= 0 {
			every = o.Retain / 4
			if every <= 0 {
				every = o.CacheRetain / 4
			}
			if every < time.Second {
				every = time.Second
			}
			if every > time.Minute {
				every = time.Minute
			}
		}
		go s.sweep(every)
	}
	return s
}

// storeFailed accounts a failed store mutation.  When the failure is
// the fencing token refusing a deposed coordinator's write, it is
// counted separately and reported upward exactly once, so the HA
// controller deposes without waiting for its next renew tick.
func (s *Server) storeFailed(op string, err error) {
	s.met.storeErrors.Inc(op)
	if errors.Is(err, runstore.ErrFenced) {
		s.met.storeFenced.Inc()
		if s.onFenced != nil {
			s.fencedOnce.Do(s.onFenced)
		}
	}
}

// specOrder is the request order of a spec's experiments: the names it
// listed, or the full catalogue in paper order.
func specOrder(spec RunSpec) []string {
	if len(spec.Experiments) > 0 {
		return spec.Experiments
	}
	var names []string
	for _, e := range experiments.All() {
		names = append(names, e.Name)
	}
	return names
}

// Restore replays the run store into the server.  Finished runs (those
// with a terminal record) become queryable catalogue entries again;
// interrupted runs — a spec with no terminal record, meaning the process
// died or was shut down mid-run — are resumed from their last checkpoint.
// Positional seed derivation makes the resumed portion produce the same
// numbers it would have produced uninterrupted, so the final canonical
// JSON is byte-identical.  Call Restore once, after NewServer and before
// serving traffic.
func (s *Server) Restore() (resumed, restored int, err error) {
	if s.store == nil {
		return 0, 0, nil
	}
	recs, err := s.store.Load()
	if err != nil {
		s.met.storeErrors.Inc("load")
		return 0, 0, err
	}
	for _, rec := range recs {
		var spec RunSpec
		if derr := json.Unmarshal(rec.Spec, &spec); derr != nil {
			s.met.storeErrors.Inc("decode")
			continue
		}
		order := specOrder(spec)

		// Decode every checkpoint; an undecodable one is dropped
		// (counted), which for an interrupted run just means that
		// experiment re-executes.
		byName := make(map[string]*Result, len(rec.Experiments))
		var inOrder []*Result // checkpoint (completion) order
		for _, exp := range rec.Experiments {
			var res Result
			if derr := json.Unmarshal(exp.Result, &res); derr != nil {
				s.met.storeErrors.Inc("decode")
				continue
			}
			byName[exp.Name] = &res
			inOrder = append(inOrder, &res)
		}

		if rec.EndState != "" {
			// Finished: replay into the catalogue, read-only.
			run := &serverRun{
				id:       rec.ID,
				srv:      s,
				spec:     spec,
				total:    len(order),
				cancel:   func() {},
				state:    rec.EndState,
				started:  rec.Started,
				finished: rec.Finished,
				running:  map[string]bool{},
				err:      rec.EndError,
				results:  inOrder,
			}
			if run.finished.IsZero() {
				run.finished = run.started
			}
			// With the complete set on disk, final carries the results in
			// request order, exactly as the live run returned them.
			if len(byName) == len(order) {
				final := make([]*Result, len(order))
				complete := true
				for i, name := range order {
					if final[i] = byName[name]; final[i] == nil {
						complete = false
						break
					}
				}
				if complete {
					run.final = final
				}
			}
			s.mu.Lock()
			if _, ok := s.runs[rec.ID]; !ok {
				s.runs[rec.ID] = run
				restored++
				s.met.runsKept.Set(float64(len(s.runs)))
				s.mu.Unlock()
				s.met.runsRestored.Inc()
			} else {
				s.mu.Unlock()
			}
			continue
		}

		// Interrupted: resume.  Only StatusOK checkpoints are reused;
		// failed/cancelled/incomplete experiments get a fresh attempt.
		completed := make(map[string]*Result, len(byName))
		var kept []*Result
		for _, res := range inOrder {
			if res.Status == StatusOK {
				completed[res.Experiment] = res
				kept = append(kept, res)
			}
		}
		ctx := context.Background()
		var cancel context.CancelFunc
		if spec.TimeoutMs > 0 {
			// The deadline restarts from now: the original budget cannot
			// be reconstructed across a crash, and a fresh one errs on
			// the side of letting the run finish.
			ctx, cancel = context.WithTimeout(ctx, time.Duration(spec.TimeoutMs)*time.Millisecond)
		} else {
			ctx, cancel = context.WithCancel(ctx)
		}
		run := &serverRun{
			id:       rec.ID,
			srv:      s,
			spec:     spec,
			total:    len(order),
			cancel:   cancel,
			restored: completed,
			state:    StateRunning,
			started:  rec.Started,
			running:  map[string]bool{},
			results:  kept,
			resumed:  true,
		}
		s.mu.Lock()
		if _, ok := s.runs[rec.ID]; ok || s.closed {
			s.mu.Unlock()
			cancel()
			continue
		}
		s.runs[rec.ID] = run
		s.active.Add(1)
		// Resumed runs bypass the running quota: abandoning checkpointed
		// work is worse than a brief overshoot after failover.
		tenant := spec.Tenant
		if tenant == "" {
			tenant = DefaultTenant
		}
		s.tenantRunningAddLocked(tenant, 1)
		s.met.runsKept.Set(float64(len(s.runs)))
		s.mu.Unlock()
		s.met.runsActive.Add(1)
		s.met.runsResumed.Inc()
		resumed++
		go s.execute(ctx, cancel, run)
	}
	return resumed, restored, nil
}

// sweep periodically garbage-collects finished runs past retention.
func (s *Server) sweep(every time.Duration) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.gc(time.Now())
		case <-s.stop:
			return
		}
	}
}

// gc removes finished runs and litmus campaigns whose retention has
// lapsed (and persisted cache entries past their own retention),
// returning how many runs were removed.
func (s *Server) gc(now time.Time) int {
	var victims []string
	if s.retain > 0 {
		cutoff := now.Add(-s.retain)
		s.mu.Lock()
		for id, run := range s.runs {
			run.mu.Lock()
			expired := run.state != StateRunning && run.finished.Before(cutoff)
			run.mu.Unlock()
			if expired {
				victims = append(victims, id)
			}
		}
		for _, id := range victims {
			delete(s.runs, id)
		}
		// Litmus campaigns age out under the same retention; being
		// in-memory only, no store cleanup is involved — but the sweep is
		// counted so a leak here is observable (the pre-fix behaviour
		// removed them silently or not at all).
		litmusSwept := 0
		for id, run := range s.litmus {
			run.mu.Lock()
			expired := run.state != StateRunning && run.finished.Before(cutoff)
			run.mu.Unlock()
			if expired {
				delete(s.litmus, id)
				litmusSwept++
			}
		}
		// Optimizer jobs are in-memory only too, and age out identically.
		optimizeSwept := 0
		for id, run := range s.optimize {
			run.mu.Lock()
			expired := run.state != StateRunning && run.finished.Before(cutoff)
			run.mu.Unlock()
			if expired {
				delete(s.optimize, id)
				optimizeSwept++
			}
		}
		s.met.runsKept.Set(float64(len(s.runs)))
		s.mu.Unlock()
		if len(victims) > 0 {
			s.met.runsSwept.Add(float64(len(victims)))
		}
		if litmusSwept > 0 {
			s.met.litmusSwept.Add(float64(litmusSwept))
		}
		if optimizeSwept > 0 {
			s.met.optimizeSwept.Add(float64(optimizeSwept))
		}
		// Expired runs leave the store too, or they would resurrect at the
		// next restart.
		if s.store != nil {
			for _, id := range victims {
				if err := s.store.Delete(id); err != nil {
					s.storeFailed("delete", err)
				}
			}
		}
	}
	// Persisted cache entries age out under their own (typically longer)
	// retention: reuse is most valuable across restarts, but the cache/
	// directory must not grow forever either.
	if s.store != nil && s.cacheRetain > 0 {
		if swept := s.store.CacheSweep(now.Add(-s.cacheRetain)); swept > 0 {
			s.met.cacheSwept.Add(float64(swept))
		}
	}
	return len(victims)
}

// Shutdown stops accepting new runs, cancels every in-flight run, and
// waits (bounded by ctx) for their executor goroutines to finish.  After
// it returns nil, no run is mid-Measure, so Engine.Close is safe.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	runs := make([]*serverRun, 0, len(s.runs))
	for _, run := range s.runs {
		runs = append(runs, run)
	}
	campaigns := make([]*litmusRun, 0, len(s.litmus))
	for _, run := range s.litmus {
		campaigns = append(campaigns, run)
	}
	optimizes := make([]*optimizeRun, 0, len(s.optimize))
	for _, run := range s.optimize {
		optimizes = append(optimizes, run)
	}
	s.mu.Unlock()
	s.stopOnce.Do(func() { close(s.stop) })
	for _, run := range runs {
		run.cancel()
	}
	for _, run := range campaigns {
		run.cancel()
	}
	for _, run := range optimizes {
		run.cancel()
	}
	if s.disp != nil {
		// The run cancellations above resolve every outstanding job, so
		// the executor slots and reaper can stop.
		s.disp.Close()
	}
	done := make(chan struct{})
	go func() {
		s.active.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Handler returns the wmmd API.  The versioned surface is:
//
//	GET    /api/v1/experiments   the experiment catalogue (paginated)
//	POST   /api/v1/runs          submit a run (RunSpec), returns {"id": ...};
//	                             429 + Retry-After under saturation
//	GET    /api/v1/runs          run statuses (paginated: ?limit=&after=)
//	GET    /api/v1/runs/{id}     status; ?results=1 includes results while
//	                             running; ?stream=1 streams NDJSON progress;
//	                             ?canonical=1 serves canonical run JSON
//	DELETE /api/v1/runs/{id}     cancel a running run / remove a finished one
//	POST   /api/v1/litmus        submit a generated litmus campaign (LitmusSpec)
//	GET    /api/v1/litmus        campaign statuses
//	GET    /api/v1/litmus/{id}   campaign status; ?canonical=1 serves canonical
//	                             shard-result JSON
//	DELETE /api/v1/litmus/{id}   cancel / remove a campaign
//	POST   /api/v1/optimize      submit a fence-strategy optimizer job
//	                             (OptimizeSpec)
//	GET    /api/v1/optimize      optimizer job statuses (paginated)
//	GET    /api/v1/optimize/{id} job status; ?canonical=1 serves the
//	                             canonical report JSON
//	DELETE /api/v1/optimize/{id} cancel / remove an optimizer job
//	POST   /api/v1/leases        worker job lease (sharded backend)
//	POST   /api/v1/leases/{id}/heartbeat   renew a lease
//	POST   /api/v1/leases/{id}/results     upload a lease's results
//
// plus the unversioned operational routes (/healthz, /readyz, /metrics)
// and the legacy unversioned API (/experiments, /runs, /runs/{id}),
// kept as thin shims over the v1 handlers that add Deprecation and
// Sunset headers (410 gone under ServerOptions.DisableLegacy).  The
// registration is driven by routeTable (routes.go), the same table
// that renders docs/api-v1.json; unknown v1 routes and wrong methods
// answer 404/405 in the uniform error envelope {"error": {"code",
// "message"}} carried by every non-2xx response.
//
// Every route is instrumented: wmm_http_requests_total and
// wmm_http_request_seconds, labelled by route pattern (not raw path, so
// run IDs do not explode the cardinality).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	for _, rt := range routeTable {
		h := rt.handler(s)
		if rt.Legacy {
			h = s.deprecated(rt.Successor, h)
		}
		mux.HandleFunc(rt.Method+" "+rt.Path, h)
	}
	// Method-less catch-all: anything under /api/v1/ the table did not
	// match falls through here instead of Go's plain-text 404/405, so
	// even "no such route" and "wrong method" answer in the error
	// envelope (with an Allow header computed from the table).
	mux.HandleFunc("/api/v1/", s.handleV1Fallback)
	return s.instrument(mux)
}

// statusWriter records the response code for instrumentation while
// passing Flush through to streaming handlers.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap supports http.ResponseController.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// instrument wraps the mux with request counting and latency recording,
// labelled by the matched route pattern.
func (s *Server) instrument(mux *http.ServeMux) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		mux.ServeHTTP(sw, r)
		path := r.Pattern
		if i := strings.IndexByte(path, ' '); i >= 0 {
			path = path[i+1:]
		}
		if path == "" {
			path = "unmatched"
		}
		code := sw.code
		if code == 0 {
			code = http.StatusOK
		}
		s.met.requests.Inc(r.Method, path, strconv.Itoa(code))
		s.met.latency.Observe(time.Since(start).Seconds(), r.Method, path)
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) error {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// API error codes, the machine-readable half of the uniform error
// envelope {"error": {"code", "message"}} carried by every non-2xx
// response on both the v1 and legacy surfaces.
const (
	ErrCodeInvalidArgument = "invalid_argument" // malformed body, bad spec, bad query
	ErrCodeNotFound        = "not_found"        // unknown run id
	ErrCodeConflict        = "conflict"         // state precludes the request (e.g. canonical of a running run)
	ErrCodeSaturated       = "saturated"        // admission control refused the run (429 + Retry-After)
	ErrCodeUnavailable     = "unavailable"      // shutting down, or dispatch disabled
	ErrCodeLeaseGone       = "lease_gone"       // lease expired or unknown; batch already re-queued

	ErrCodeMethodNotAllowed = "method_not_allowed" // route exists, verb does not (405 + Allow)
	ErrCodeGone             = "gone"               // legacy route sunset by -legacy-routes=off
)

func writeErr(w http.ResponseWriter, status int, code, format string, args ...any) {
	writeJSON(w, status, map[string]any{"error": map[string]string{
		"code":    code,
		"message": fmt.Sprintf(format, args...),
	}})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "workers": s.eng.Workers()})
}

// handleReadyz is readiness, distinct from liveness: the process can be
// alive (healthz 200) while unable to take useful work — mid-shutdown,
// or with an unwritable run store.  Load balancers and operators gate
// traffic on this.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	out := map[string]any{"engine": "ok", "store": "ok"}
	ready := true
	if closed || s.eng.Closed() {
		ready = false
		out["engine"] = "shutting down"
	}
	if s.store == nil {
		out["store"] = "disabled"
	} else if err := s.store.Ping(); err != nil {
		ready = false
		out["store"] = err.Error()
	}
	// An embedded Server is always the leader; the HA wrapper answers
	// /readyz itself (role "standby") until it promotes and delegates here.
	out["role"] = "leader"
	out["ready"] = ready
	code := http.StatusOK
	if !ready {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, out)
}

// pageParams reads the cursor-pagination query (?limit=&after=).  limit
// defaults to 100 and is capped at 1000; after is the exclusive cursor
// (the last item of the previous page).  ok=false means the query was
// malformed and the envelope has been written.
func pageParams(w http.ResponseWriter, r *http.Request) (limit int, after string, ok bool) {
	limit = 100
	if raw := r.URL.Query().Get("limit"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n <= 0 {
			writeErr(w, http.StatusBadRequest, ErrCodeInvalidArgument, "limit must be a positive integer, got %q", raw)
			return 0, "", false
		}
		limit = n
	}
	if limit > 1000 {
		limit = 1000
	}
	return limit, r.URL.Query().Get("after"), true
}

// page is the v1 list envelope: one page of items plus the cursor for
// the next page ("" when this page is the last).
type page[T any] struct {
	Items     []T    `json:"items"`
	NextAfter string `json:"next_after,omitempty"`
}

// writeJobPage serves one page of a job listing — the shared shape of
// every v1 job resource (runs, litmus, optimize): items sorted in
// submission order by ID, cursor-paginated with ?limit=&after= and
// wrapped in the {"items", "next_after"} envelope.  A malformed query
// has its error envelope written here.
func writeJobPage[T any](w http.ResponseWriter, r *http.Request, items []T, id func(T) string) {
	sort.Slice(items, func(i, j int) bool { return runIDLess(id(items[i]), id(items[j])) })
	limit, after, ok := pageParams(w, r)
	if !ok {
		return
	}
	start := 0
	if after != "" {
		for i := range items {
			if !runIDLess(after, id(items[i])) {
				start = i + 1
			}
		}
	}
	pg := page[T]{Items: []T{}}
	end := start + limit
	if end > len(items) {
		end = len(items)
	}
	if start < len(items) {
		pg.Items = items[start:end]
	}
	if end < len(items) {
		pg.NextAfter = id(items[end-1])
	}
	writeJSON(w, http.StatusOK, pg)
}

// ExperimentInfo is one catalogue entry served by GET /api/v1/experiments.
type ExperimentInfo struct {
	Name  string `json:"name"`
	Paper string `json:"paper"`
	Desc  string `json:"desc"`
}

func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request, legacy bool) {
	all := make([]ExperimentInfo, 0, len(experiments.All()))
	for _, e := range experiments.All() {
		all = append(all, ExperimentInfo{Name: e.Name, Paper: e.Paper, Desc: e.Desc})
	}
	if legacy {
		writeJSON(w, http.StatusOK, all)
		return
	}
	limit, after, ok := pageParams(w, r)
	if !ok {
		return
	}
	start := 0
	if after != "" {
		for i, e := range all {
			if e.Name == after {
				start = i + 1
				break
			}
		}
	}
	out := page[ExperimentInfo]{Items: []ExperimentInfo{}}
	end := start + limit
	if end > len(all) {
		end = len(all)
	}
	if start < len(all) {
		out.Items = all[start:end]
	}
	if end < len(all) {
		out.NextAfter = all[end-1].Name
	}
	writeJSON(w, http.StatusOK, out)
}

// TenantHeader carries the tenant on API requests; it wins over the
// spec's tenant field so operators can route through proxies that stamp
// identity without rewriting bodies.
const TenantHeader = "X-WMM-Tenant"

// resolveTenant picks the effective tenant for a submission: header,
// then spec field, then DefaultTenant.  ok=false means the name was
// invalid and the error envelope has been written.
func resolveTenant(w http.ResponseWriter, r *http.Request, specTenant string) (string, bool) {
	tenant := r.Header.Get(TenantHeader)
	if tenant == "" {
		tenant = specTenant
	}
	if tenant == "" {
		return DefaultTenant, true
	}
	if len(tenant) > 64 {
		writeErr(w, http.StatusBadRequest, ErrCodeInvalidArgument,
			"tenant name longer than 64 characters")
		return "", false
	}
	for _, c := range tenant {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			writeErr(w, http.StatusBadRequest, ErrCodeInvalidArgument,
				"tenant name %q: only [A-Za-z0-9._-] allowed", tenant)
			return "", false
		}
	}
	return tenant, true
}

// tenantAdmitRunning enforces the per-tenant running-run quota and, when
// admitted, counts the run.  Callers must hold s.mu.
func (s *Server) tenantAdmitRunningLocked(tenant string) bool {
	if s.tenantMaxRunning > 0 && s.tenantRunning[tenant] >= s.tenantMaxRunning {
		return false
	}
	s.tenantRunningAddLocked(tenant, 1)
	return true
}

func (s *Server) tenantRunningAddLocked(tenant string, d int) {
	n := s.tenantRunning[tenant] + d
	if n <= 0 {
		n = 0
		delete(s.tenantRunning, tenant)
	} else {
		s.tenantRunning[tenant] = n
	}
	s.met.tenantRuns.Set(float64(n), tenant)
}

func (s *Server) tenantRunningDone(tenant string) {
	s.mu.Lock()
	s.tenantRunningAddLocked(tenant, -1)
	s.mu.Unlock()
}

// writeSaturated is the shared 429 envelope for queue and quota
// refusals: Retry-After plus the standard error body.
func (s *Server) writeSaturated(w http.ResponseWriter, format string, args ...any) {
	retry := 1
	if s.disp != nil {
		if r := int(s.disp.RetryAfter().Seconds()); r > retry {
			retry = r
		}
	}
	w.Header().Set("Retry-After", strconv.Itoa(retry))
	args = append(args, retry)
	writeErr(w, http.StatusTooManyRequests, ErrCodeSaturated, format+"; retry after %ds", args...)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec RunSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeErr(w, http.StatusBadRequest, ErrCodeInvalidArgument, "bad run spec: %v", err)
		return
	}
	if spec.Samples < 0 || spec.Seed < 0 || spec.Parallel < 0 || spec.TimeoutMs < 0 {
		writeErr(w, http.StatusBadRequest, ErrCodeInvalidArgument,
			"bad run spec: samples, seed, parallel and timeout_ms must be >= 0")
		return
	}
	for _, name := range spec.Experiments {
		if _, err := experiments.ByName(name); err != nil {
			writeErr(w, http.StatusBadRequest, ErrCodeInvalidArgument, "%v", err)
			return
		}
	}
	if spec.Adaptive != nil {
		if err := spec.Adaptive.Rule().Validate(); err != nil {
			writeErr(w, http.StatusBadRequest, ErrCodeInvalidArgument, "bad adaptive spec: %v", err)
			return
		}
	}
	// ?nocache=1 is the per-request escape hatch: rerun even when an
	// identical result is cached (e.g. to re-validate determinism).
	if v := r.URL.Query().Get("nocache"); v == "1" || v == "true" {
		spec.NoCache = true
	}
	if spec.Parallel <= 0 {
		spec.Parallel = s.defaultParallel
	}
	tenant, ok := resolveTenant(w, r, spec.Tenant)
	if !ok {
		return
	}
	spec.Tenant = tenant // persist and echo the effective tenant

	total := len(spec.Experiments)
	if total == 0 {
		total = len(experiments.All())
	}

	// Admission control: refuse work the dispatch queue cannot absorb —
	// globally or within this tenant's quota — with a Retry-After hint,
	// before anything is recorded.  The reservation is released job by
	// job as the run's jobs finish.
	admitted := 0
	if s.disp != nil {
		switch err := s.disp.TryAdmit(tenant, total); err {
		case nil:
			admitted = total
		case ErrTenantSaturated:
			s.writeSaturated(w, "tenant %q queue quota exceeded (%d jobs refused)", tenant, total)
			return
		default:
			s.writeSaturated(w, "dispatch queue saturated (%d jobs refused)", total)
			return
		}
	}

	ctx := context.Background()
	var cancel context.CancelFunc
	if spec.TimeoutMs > 0 {
		ctx, cancel = context.WithTimeout(ctx, time.Duration(spec.TimeoutMs)*time.Millisecond)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		cancel()
		if s.disp != nil {
			s.disp.admitForce(tenant, -admitted)
		}
		writeErr(w, http.StatusServiceUnavailable, ErrCodeUnavailable, "server shutting down")
		return
	}
	if !s.tenantAdmitRunningLocked(tenant) {
		s.mu.Unlock()
		cancel()
		if s.disp != nil {
			s.disp.admitForce(tenant, -admitted)
		}
		s.met.tenantRejected.Inc(tenant, "tenant_running")
		s.writeSaturated(w, "tenant %q already has %d runs executing", tenant, s.tenantMaxRunning)
		return
	}
	s.seq++
	run := &serverRun{
		id:       fmt.Sprintf("run-%d", s.seq),
		srv:      s,
		spec:     spec,
		total:    total,
		cancel:   cancel,
		admitted: admitted,
		state:    StateRunning,
		started:  time.Now(),
		running:  map[string]bool{},
	}
	s.runs[run.id] = run
	s.active.Add(1)
	s.met.runsKept.Set(float64(len(s.runs)))
	s.mu.Unlock()

	// Persist the spec before any work happens, so a crash at any later
	// point leaves a resumable record.  Durability is best-effort: a
	// store failure degrades to the in-memory behaviour and is counted —
	// except a *fenced* write, which proves another coordinator owns the
	// store: that refuses the run outright, because work accepted here
	// could never be recorded and this process is about to exit.
	if s.store != nil {
		raw, err := json.Marshal(spec)
		if err == nil {
			err = s.store.Begin(run.id, raw, run.started)
		}
		if err != nil {
			s.storeFailed("begin", err)
			if errors.Is(err, runstore.ErrFenced) {
				s.mu.Lock()
				delete(s.runs, run.id)
				s.met.runsKept.Set(float64(len(s.runs)))
				s.tenantRunningAddLocked(tenant, -1)
				s.mu.Unlock()
				s.active.Done()
				cancel()
				if s.disp != nil {
					s.disp.admitForce(tenant, -admitted)
				}
				writeErr(w, http.StatusServiceUnavailable, ErrCodeUnavailable,
					"coordinator deposed: run store is fenced at a newer lease term")
				return
			}
		}
	}
	s.met.runs.Inc("submitted")
	s.met.runsActive.Add(1)

	go s.execute(ctx, cancel, run)
	writeJSON(w, http.StatusAccepted, map[string]any{"id": run.id, "state": StateRunning, "total": total})
}

// execute drives the run to completion on its own goroutine, through
// the sharded dispatcher when one is configured and the in-process
// engine otherwise.  Both paths produce byte-identical results for the
// same spec and seed.
func (s *Server) execute(ctx context.Context, cancel context.CancelFunc, run *serverRun) {
	defer s.active.Done()
	defer cancel()
	opts := RunOptions{
		Samples:   run.spec.Samples,
		Seed:      run.spec.Seed,
		Short:     run.spec.Short,
		Parallel:  run.spec.Parallel,
		Completed: run.restored,
		Adaptive:  run.spec.Adaptive.Rule(),
		NoCache:   run.spec.NoCache,
	}
	tenant := run.spec.Tenant
	if tenant == "" {
		tenant = DefaultTenant
	}
	var results []*Result
	var err error
	if s.disp != nil {
		results, err = s.disp.Run(ctx, run.id, tenant, run.spec.Experiments, opts, (*runSink)(run), run.admitted)
	} else {
		results, err = s.eng.Run(ctx, run.spec.Experiments, opts, (*runSink)(run))
	}
	defer s.tenantRunningDone(tenant)

	run.mu.Lock()
	run.final = results
	run.finished = time.Now()
	switch {
	case err == nil:
		run.state = StateDone
	case ctx.Err() != nil || anyCanceled(results):
		run.state = StateCancelled
		run.err = err.Error()
	case anyOK(results):
		run.state = StatePartial
		run.err = err.Error()
	default:
		run.state = StateFailed
		run.err = err.Error()
	}
	state, errMsg, userCancelled := run.state, run.err, run.userCancelled
	ev := event{Event: "end", State: run.state, Completed: len(run.results), Total: run.total}
	subs := run.subs
	run.subs = nil
	run.mu.Unlock()
	s.met.runs.Inc(state)
	s.met.runsActive.Add(-1)

	// Record the terminal state — except for a shutdown-triggered
	// cancellation, which deliberately leaves the run interrupted in the
	// store so the next startup resumes it from its checkpoints.  An
	// explicit DELETE is a user decision and stays terminal.
	if s.store != nil {
		s.mu.Lock()
		closing := s.closed
		s.mu.Unlock()
		if state != StateCancelled || userCancelled || !closing {
			if err := s.store.End(run.id, state, errMsg); err != nil {
				s.storeFailed("end", err)
			}
		}
	}

	for _, ch := range subs {
		select {
		case ch <- ev:
		default: // dead reader with a full buffer; the close wakes it
		}
		close(ch)
	}
}

func anyCanceled(rs []*Result) bool {
	for _, r := range rs {
		if r != nil && r.Canceled() {
			return true
		}
	}
	return false
}

func anyOK(rs []*Result) bool {
	for _, r := range rs {
		if r != nil && r.Status == StatusOK {
			return true
		}
	}
	return false
}

// runSink adapts a serverRun to the engine's progress Sink.
type runSink serverRun

func (rs *runSink) ExperimentStarted(name string) {
	r := (*serverRun)(rs)
	r.broadcast(func() event {
		r.running[name] = true
		return event{Event: "started", Experiment: name}
	})
}

func (rs *runSink) ExperimentDone(res *Result) {
	r := (*serverRun)(rs)
	r.broadcast(func() event {
		delete(r.running, res.Experiment)
		r.results = append(r.results, res)
		return event{Event: "done", Experiment: res.Experiment, Error: res.Err,
			WallMs: res.WallNs / int64(time.Millisecond), Completed: len(r.results), Total: r.total}
	})
	r.checkpoint(res)
}

// checkpoint durably records a completed experiment.  Results of any
// status are written (so a restored finished run is complete), but only
// StatusOK checkpoints are reused on resume — failed and cancelled
// experiments get a fresh attempt.  Store failures degrade durability,
// never the run.
func (r *serverRun) checkpoint(res *Result) {
	s := r.srv
	if s == nil || s.store == nil {
		return
	}
	raw, err := json.Marshal(res)
	if err == nil {
		err = s.store.Checkpoint(r.id, res.Experiment, raw)
	}
	if err != nil {
		s.storeFailed("checkpoint", err)
		return
	}
	s.met.checkpoints.Inc()
}

// broadcast applies a state mutation under the run's lock and fans the
// resulting event out to stream subscribers.
func (r *serverRun) broadcast(mutate func() event) {
	r.mu.Lock()
	ev := mutate()
	subs := append([]chan event{}, r.subs...)
	r.mu.Unlock()
	for _, ch := range subs {
		select {
		case ch <- ev:
		default: // a slow stream reader drops progress, never blocks the run
		}
	}
}

// status snapshots the run.
func (r *serverRun) status(includeResults bool) RunStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.statusLocked(includeResults)
}

// statusLocked builds the snapshot; r.mu must be held.
func (r *serverRun) statusLocked(includeResults bool) RunStatus {
	st := RunStatus{
		ID:        r.id,
		Kind:      "run",
		State:     r.state,
		Tenant:    r.spec.Tenant,
		Spec:      r.spec,
		Total:     r.total,
		Completed: len(r.results),
		Resumed:   r.resumed,
		StartedAt: r.started,
	}
	if !r.finished.IsZero() {
		fin := r.finished
		st.FinishedAt = &fin
	}
	for name := range r.running {
		st.Running = append(st.Running, name)
	}
	counted := r.results
	if r.final != nil {
		counted = r.final
	}
	for _, res := range counted {
		if res != nil {
			st.Measurements += res.Measurements
			st.Samples += res.Samples
		}
	}
	end := r.finished
	if end.IsZero() {
		end = time.Now()
	}
	st.WallMs = end.Sub(r.started).Milliseconds()
	st.Error = r.err
	if includeResults || r.state != StateRunning {
		if r.final != nil {
			st.Results = r.final
		} else {
			st.Results = append([]*Result{}, r.results...)
		}
	}
	return st
}

// subscribe atomically snapshots the run and, if it is still running,
// registers ch for subsequent events.  Taking the snapshot under the
// same lock that appends the subscriber is what makes the stream
// exactly-once: an event is either reflected in the snapshot or
// delivered on ch, never both and never neither.
func (r *serverRun) subscribe(ch chan event) (snapshot RunStatus, subscribed bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	snapshot = r.statusLocked(false)
	if r.state == StateRunning {
		r.subs = append(r.subs, ch)
		return snapshot, true
	}
	return snapshot, false
}

// unsubscribe removes ch from the run's subscriber list, if present.
func (r *serverRun) unsubscribe(ch chan event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, sub := range r.subs {
		if sub == ch {
			r.subs = append(r.subs[:i], r.subs[i+1:]...)
			return
		}
	}
}

func (s *Server) lookup(r *http.Request) (*serverRun, string) {
	id := r.PathValue("id")
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.runs[id], id
}

// runIDLess is the listing order: submission order for run-N IDs
// (run-2 before run-10), length-then-lexicographic in general.
func runIDLess(a, b string) bool {
	if len(a) != len(b) {
		return len(a) < len(b)
	}
	return a < b
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request, legacy bool) {
	s.mu.Lock()
	runs := make([]*serverRun, 0, len(s.runs))
	for _, run := range s.runs {
		runs = append(runs, run)
	}
	s.mu.Unlock()
	out := make([]RunStatus, 0, len(runs))
	for _, run := range runs {
		out = append(out, run.status(false))
	}
	if legacy {
		sort.Slice(out, func(i, j int) bool { return runIDLess(out[i].ID, out[j].ID) })
		writeJSON(w, http.StatusOK, out)
		return
	}
	writeJobPage(w, r, out, func(st RunStatus) string { return st.ID })
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	run, id := s.lookup(r)
	if run == nil {
		writeErr(w, http.StatusNotFound, ErrCodeNotFound, "unknown run %q", id)
		return
	}
	if r.URL.Query().Get("stream") != "" {
		s.streamStatus(w, r, run)
		return
	}
	if r.URL.Query().Get("canonical") != "" {
		s.canonicalStatus(w, run)
		return
	}
	writeJSON(w, http.StatusOK, run.status(r.URL.Query().Get("results") != ""))
}

// canonicalStatus serves a finished run's CanonicalRunJSON — the
// byte-comparable form (wall times zeroed) used to verify that sharded,
// resumed and local executions of the same spec agree exactly.
func (s *Server) canonicalStatus(w http.ResponseWriter, run *serverRun) {
	run.mu.Lock()
	state := run.state
	results := run.final
	if results == nil {
		results = append([]*Result{}, run.results...)
	}
	run.mu.Unlock()
	if state == StateRunning {
		writeErr(w, http.StatusConflict, ErrCodeConflict, "run %s is still running; canonical JSON exists only for finished runs", run.id)
		return
	}
	raw, err := CanonicalRunJSON(results)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "internal", "canonicalise run %s: %v", run.id, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(raw)
}

// streamStatus serves NDJSON progress: one snapshot line, then an event
// line per experiment start/finish, then an "end" line.  The snapshot
// and the subscription are taken atomically, so each progress event
// appears exactly once — either folded into the snapshot or streamed.
// Encode errors (a client that went away mid-write) end the stream.
func (s *Server) streamStatus(w http.ResponseWriter, r *http.Request, run *serverRun) {
	flusher, _ := w.(http.Flusher)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)

	ch := make(chan event, 64)
	snapshot, subscribed := run.subscribe(ch)

	if err := enc.Encode(snapshot); err != nil {
		if subscribed {
			run.unsubscribe(ch)
		}
		return
	}
	if flusher != nil {
		flusher.Flush()
	}
	if !subscribed {
		enc.Encode(event{Event: "end", State: snapshot.State, Completed: snapshot.Completed, Total: snapshot.Total})
		return
	}
	for {
		select {
		case ev, ok := <-ch:
			if !ok {
				return
			}
			if err := enc.Encode(ev); err != nil {
				run.unsubscribe(ch)
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
			if ev.Event == "end" {
				return
			}
		case <-r.Context().Done():
			run.unsubscribe(ch)
			return
		}
	}
}

// handleCancel cancels a running run.  On a finished run it acts as a
// removal: the run is deleted from the catalogue (the manual counterpart
// of the retention sweep).
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	run, id := s.lookup(r)
	if run == nil {
		writeErr(w, http.StatusNotFound, ErrCodeNotFound, "unknown run %q", id)
		return
	}
	// Mark the cancellation as a user decision before it takes effect, so
	// execute records it as terminal rather than resumable.
	run.mu.Lock()
	run.userCancelled = true
	state := run.state
	run.mu.Unlock()
	run.cancel()
	if state != StateRunning {
		s.mu.Lock()
		// Re-check under s.mu: a concurrent DELETE may have removed it.
		if _, ok := s.runs[id]; ok {
			delete(s.runs, id)
			s.met.runsKept.Set(float64(len(s.runs)))
			s.mu.Unlock()
			s.met.runsSwept.Inc()
			if s.store != nil {
				if err := s.store.Delete(id); err != nil {
					s.storeFailed("delete", err)
				}
			}
		} else {
			s.mu.Unlock()
		}
		writeJSON(w, http.StatusOK, map[string]any{"id": run.id, "state": state, "deleted": true})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"id": run.id, "state": "cancelling"})
}

// --- Worker lease protocol (sharded execution backend) -------------------
//
// Remote wmmworker processes pull work through three endpoints:
//
//	POST /api/v1/leases                  {"worker": "w1", "max_jobs": 4}
//	  -> {"lease_id": "lease-3", "ttl_ms": 15000, "jobs": [wireJob...]}
//	     (lease_id empty and jobs [] when the queue has no work)
//	POST /api/v1/leases/{id}/heartbeat   -> {"ttl_ms": 15000}; 410 if gone
//	POST /api/v1/leases/{id}/results     {"results": [{run_id, experiment,
//	  result}]} -> {"accepted": N, "requeued": M}; 410 if the lease
//	  expired (its jobs were re-queued; the worker drops the batch)
//
// A job is (run_id, experiment, samples, seed, short) — everything a
// worker needs to reproduce the exact bytes a local execution would
// have produced, thanks to positional seed derivation.  Litmus shard
// jobs ride the same leases with a "litmus" payload instead: the shard
// descriptor (arch, generator seed/count, trials, seed, index range)
// from which the worker regenerates its slice of the batch.

// wireJob is one leased job on the wire: an experiment job, or — when
// Litmus is non-nil — a litmus shard job (Experiment then carries the
// shard name and the samples/seed/short fields are unused).
type wireJob struct {
	RunID      string        `json:"run_id"`
	Experiment string        `json:"experiment"`
	Samples    int           `json:"samples,omitempty"`
	Seed       int64         `json:"seed,omitempty"`
	Short      bool          `json:"short"`
	Adaptive   *AdaptiveSpec `json:"adaptive,omitempty"`
	Litmus     *LitmusShard  `json:"litmus,omitempty"`
	// Optimize carries an optimizer-cell job (Experiment then holds the
	// cell name): the cell descriptor from which the worker re-derives
	// the exact gate or measurement a local execution would run.
	Optimize *optimize.Cell `json:"optimize,omitempty"`
}

// leaseRequest is the body of POST /api/v1/leases.
type leaseRequest struct {
	Worker  string `json:"worker"`
	MaxJobs int    `json:"max_jobs,omitempty"`
}

// leaseGrant is the response: a batch of jobs under a TTL'd lease.
type leaseGrant struct {
	LeaseID string    `json:"lease_id,omitempty"`
	TTLMs   int64     `json:"ttl_ms,omitempty"`
	Jobs    []wireJob `json:"jobs"`
}

// wireJobResult is one uploaded result; Result is the engine's Result
// as raw JSON, decoded server-side so the stored/served bytes are
// exactly what a local execution would have produced.
type wireJobResult struct {
	RunID      string          `json:"run_id"`
	Experiment string          `json:"experiment"`
	Result     json.RawMessage `json:"result"`
}

func (s *Server) handleLease(w http.ResponseWriter, r *http.Request) {
	if s.disp == nil {
		writeErr(w, http.StatusServiceUnavailable, ErrCodeUnavailable, "dispatch backend disabled on this server")
		return
	}
	var req leaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, ErrCodeInvalidArgument, "bad lease request: %v", err)
		return
	}
	if req.Worker == "" {
		writeErr(w, http.StatusBadRequest, ErrCodeInvalidArgument, "lease request must name its worker")
		return
	}
	id, ttl, jobs := s.disp.Lease(req.Worker, req.MaxJobs)
	grant := leaseGrant{LeaseID: id, TTLMs: ttl.Milliseconds(), Jobs: []wireJob{}}
	for _, j := range jobs {
		grant.Jobs = append(grant.Jobs, wireJob{
			RunID:      j.runID,
			Experiment: j.name,
			Samples:    j.opts.Samples,
			Seed:       j.opts.Seed,
			Short:      j.opts.Short,
			Adaptive:   SpecFromRule(j.opts.Adaptive),
			Litmus:     j.litmus,
			Optimize:   j.optimize,
		})
	}
	writeJSON(w, http.StatusOK, grant)
}

func (s *Server) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	if s.disp == nil {
		writeErr(w, http.StatusServiceUnavailable, ErrCodeUnavailable, "dispatch backend disabled on this server")
		return
	}
	id := r.PathValue("id")
	ttl, ok := s.disp.Heartbeat(id)
	if !ok {
		writeErr(w, http.StatusGone, ErrCodeLeaseGone, "lease %q expired or unknown; its jobs were re-queued", id)
		return
	}
	writeJSON(w, http.StatusOK, map[string]int64{"ttl_ms": ttl.Milliseconds()})
}

func (s *Server) handleLeaseResults(w http.ResponseWriter, r *http.Request) {
	if s.disp == nil {
		writeErr(w, http.StatusServiceUnavailable, ErrCodeUnavailable, "dispatch backend disabled on this server")
		return
	}
	id := r.PathValue("id")
	var req struct {
		Results []wireJobResult `json:"results"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, ErrCodeInvalidArgument, "bad results upload: %v", err)
		return
	}
	completed := make([]CompletedJob, 0, len(req.Results))
	for _, jr := range req.Results {
		var res Result
		if err := json.Unmarshal(jr.Result, &res); err != nil {
			// An undecodable result is treated as not uploaded: the job
			// is re-queued rather than delivered corrupt.
			continue
		}
		completed = append(completed, CompletedJob{RunID: jr.RunID, Experiment: jr.Experiment, Res: &res})
	}
	accepted, requeued, ok := s.disp.Complete(id, completed)
	if !ok {
		writeErr(w, http.StatusGone, ErrCodeLeaseGone, "lease %q expired or unknown; its jobs were re-queued", id)
		return
	}
	writeJSON(w, http.StatusOK, map[string]int{"accepted": accepted, "requeued": requeued})
}
