package engine

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/experiments"
)

// RunSpec is the body of POST /runs.
type RunSpec struct {
	// Experiments to run, in order; empty = the full evaluation in
	// paper order.
	Experiments []string `json:"experiments,omitempty"`
	// Short selects the reduced sweep.
	Short bool `json:"short"`
	// Samples per measurement (0 = driver default).
	Samples int `json:"samples,omitempty"`
	// Seed is the base random seed (0 = 1).
	Seed int64 `json:"seed,omitempty"`
	// Parallel experiments in flight (0 = server default).
	Parallel int `json:"parallel,omitempty"`
	// TimeoutMs bounds the whole run; 0 = no deadline.
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
}

// Run states.
const (
	StateRunning   = "running"
	StateDone      = "done"
	StateFailed    = "failed"
	StateCancelled = "cancelled"
)

// RunStatus is the snapshot served by GET /runs/{id}.
type RunStatus struct {
	ID        string    `json:"id"`
	State     string    `json:"state"`
	Spec      RunSpec   `json:"spec"`
	Total     int       `json:"total"`
	Completed int       `json:"completed"`
	Running   []string  `json:"running,omitempty"`
	Error     string    `json:"error,omitempty"`
	StartedAt time.Time `json:"started_at"`
	WallMs    int64     `json:"wall_ms"`
	Results   []*Result `json:"results,omitempty"`
}

// event is one progress record streamed by GET /runs/{id}?stream=1.
type event struct {
	Event      string `json:"event"` // "started" | "done" | "end"
	Experiment string `json:"experiment,omitempty"`
	Error      string `json:"error,omitempty"`
	WallMs     int64  `json:"wall_ms,omitempty"`
	State      string `json:"state,omitempty"` // on "end"
	Completed  int    `json:"completed,omitempty"`
	Total      int    `json:"total,omitempty"`
}

// serverRun is one submitted job.
type serverRun struct {
	id     string
	spec   RunSpec
	total  int
	cancel context.CancelFunc

	mu       sync.Mutex
	state    string
	started  time.Time
	finished time.Time
	running  map[string]bool
	results  []*Result // completed experiments, in completion order
	final    []*Result // full ordered set, once the run ends
	err      string
	subs     []chan event
}

// Server exposes the engine over HTTP: a queryable catalogue of
// experiments and asynchronous, cancellable runs with streamed progress.
// Wire its Handler into an http.Server (see cmd/wmmd).
type Server struct {
	eng             *Engine
	defaultParallel int

	mu   sync.Mutex
	runs map[string]*serverRun
	seq  int
}

// NewServer wraps an engine.  defaultParallel is the experiment-level
// concurrency used when a RunSpec does not choose its own (values <= 0
// fall back to the engine's worker count).
func NewServer(eng *Engine, defaultParallel int) *Server {
	if defaultParallel <= 0 {
		defaultParallel = eng.Workers()
	}
	return &Server{eng: eng, defaultParallel: defaultParallel, runs: map[string]*serverRun{}}
}

// Handler returns the wmmd API:
//
//	GET    /healthz          liveness
//	GET    /experiments      the experiment catalogue
//	POST   /runs             submit a run (RunSpec), returns {"id": ...}
//	GET    /runs             list run statuses
//	GET    /runs/{id}        status; ?results=1 includes results while
//	                         running; ?stream=1 streams NDJSON progress
//	DELETE /runs/{id}        cancel
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /experiments", s.handleExperiments)
	mux.HandleFunc("POST /runs", s.handleSubmit)
	mux.HandleFunc("GET /runs", s.handleList)
	mux.HandleFunc("GET /runs/{id}", s.handleStatus)
	mux.HandleFunc("DELETE /runs/{id}", s.handleCancel)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "workers": s.eng.Workers()})
}

func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	type exp struct {
		Name  string `json:"name"`
		Paper string `json:"paper"`
		Desc  string `json:"desc"`
	}
	var out []exp
	for _, e := range experiments.All() {
		out = append(out, exp{Name: e.Name, Paper: e.Paper, Desc: e.Desc})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec RunSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeErr(w, http.StatusBadRequest, "bad run spec: %v", err)
		return
	}
	for _, name := range spec.Experiments {
		if _, err := experiments.ByName(name); err != nil {
			writeErr(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	if spec.Parallel <= 0 {
		spec.Parallel = s.defaultParallel
	}

	ctx := context.Background()
	var cancel context.CancelFunc
	if spec.TimeoutMs > 0 {
		ctx, cancel = context.WithTimeout(ctx, time.Duration(spec.TimeoutMs)*time.Millisecond)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}

	total := len(spec.Experiments)
	if total == 0 {
		total = len(experiments.All())
	}
	s.mu.Lock()
	s.seq++
	run := &serverRun{
		id:      fmt.Sprintf("run-%d", s.seq),
		spec:    spec,
		total:   total,
		cancel:  cancel,
		state:   StateRunning,
		started: time.Now(),
		running: map[string]bool{},
	}
	s.runs[run.id] = run
	s.mu.Unlock()

	go s.execute(ctx, cancel, run)
	writeJSON(w, http.StatusAccepted, map[string]any{"id": run.id, "state": StateRunning, "total": total})
}

// execute drives the run to completion on its own goroutine.
func (s *Server) execute(ctx context.Context, cancel context.CancelFunc, run *serverRun) {
	defer cancel()
	results, err := s.eng.Run(ctx, run.spec.Experiments, RunOptions{
		Samples:  run.spec.Samples,
		Seed:     run.spec.Seed,
		Short:    run.spec.Short,
		Parallel: run.spec.Parallel,
	}, (*runSink)(run))

	run.mu.Lock()
	run.final = results
	run.finished = time.Now()
	switch {
	case err == nil:
		run.state = StateDone
	case ctx.Err() != nil || anyCanceled(results):
		run.state = StateCancelled
		run.err = err.Error()
	default:
		run.state = StateFailed
		run.err = err.Error()
	}
	ev := event{Event: "end", State: run.state, Completed: len(run.results), Total: run.total}
	subs := run.subs
	run.subs = nil
	run.mu.Unlock()

	for _, ch := range subs {
		select {
		case ch <- ev:
		default: // dead reader with a full buffer; the close wakes it
		}
		close(ch)
	}
}

func anyCanceled(rs []*Result) bool {
	for _, r := range rs {
		if r != nil && r.Canceled() {
			return true
		}
	}
	return false
}

// runSink adapts a serverRun to the engine's progress Sink.
type runSink serverRun

func (rs *runSink) ExperimentStarted(name string) {
	r := (*serverRun)(rs)
	r.broadcast(func() event {
		r.running[name] = true
		return event{Event: "started", Experiment: name}
	})
}

func (rs *runSink) ExperimentDone(res *Result) {
	r := (*serverRun)(rs)
	r.broadcast(func() event {
		delete(r.running, res.Experiment)
		r.results = append(r.results, res)
		return event{Event: "done", Experiment: res.Experiment, Error: res.Err,
			WallMs: res.WallNs / int64(time.Millisecond), Completed: len(r.results), Total: r.total}
	})
}

// broadcast applies a state mutation under the run's lock and fans the
// resulting event out to stream subscribers.
func (r *serverRun) broadcast(mutate func() event) {
	r.mu.Lock()
	ev := mutate()
	subs := append([]chan event{}, r.subs...)
	r.mu.Unlock()
	for _, ch := range subs {
		select {
		case ch <- ev:
		default: // a slow stream reader drops progress, never blocks the run
		}
	}
}

// status snapshots the run.
func (r *serverRun) status(includeResults bool) RunStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := RunStatus{
		ID:        r.id,
		State:     r.state,
		Spec:      r.spec,
		Total:     r.total,
		Completed: len(r.results),
		StartedAt: r.started,
	}
	for name := range r.running {
		st.Running = append(st.Running, name)
	}
	end := r.finished
	if end.IsZero() {
		end = time.Now()
	}
	st.WallMs = end.Sub(r.started).Milliseconds()
	st.Error = r.err
	if includeResults || r.state != StateRunning {
		if r.final != nil {
			st.Results = r.final
		} else {
			st.Results = append([]*Result{}, r.results...)
		}
	}
	return st
}

func (s *Server) lookup(r *http.Request) (*serverRun, string) {
	id := r.PathValue("id")
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.runs[id], id
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	runs := make([]*serverRun, 0, len(s.runs))
	for _, run := range s.runs {
		runs = append(runs, run)
	}
	s.mu.Unlock()
	out := make([]RunStatus, 0, len(runs))
	for _, run := range runs {
		out = append(out, run.status(false))
	}
	// Stable submission order for clients: run-2 before run-10.
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].ID, out[j].ID
		if len(a) != len(b) {
			return len(a) < len(b)
		}
		return a < b
	})
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	run, id := s.lookup(r)
	if run == nil {
		writeErr(w, http.StatusNotFound, "unknown run %q", id)
		return
	}
	if r.URL.Query().Get("stream") != "" {
		s.streamStatus(w, r, run)
		return
	}
	writeJSON(w, http.StatusOK, run.status(r.URL.Query().Get("results") != ""))
}

// streamStatus serves NDJSON progress: one snapshot line, then an event
// line per experiment start/finish, then an "end" line.
func (s *Server) streamStatus(w http.ResponseWriter, r *http.Request, run *serverRun) {
	flusher, _ := w.(http.Flusher)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)

	ch := make(chan event, 64)
	run.mu.Lock()
	snapshot := run.state
	if snapshot == StateRunning {
		run.subs = append(run.subs, ch)
	}
	run.mu.Unlock()

	enc.Encode(run.status(false))
	if flusher != nil {
		flusher.Flush()
	}
	if snapshot != StateRunning {
		enc.Encode(event{Event: "end", State: snapshot, Completed: run.status(false).Completed, Total: run.total})
		return
	}
	for {
		select {
		case ev, ok := <-ch:
			if !ok {
				return
			}
			enc.Encode(ev)
			if flusher != nil {
				flusher.Flush()
			}
			if ev.Event == "end" {
				return
			}
		case <-r.Context().Done():
			run.mu.Lock()
			for i, sub := range run.subs {
				if sub == ch {
					run.subs = append(run.subs[:i], run.subs[i+1:]...)
					break
				}
			}
			run.mu.Unlock()
			return
		}
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	run, id := s.lookup(r)
	if run == nil {
		writeErr(w, http.StatusNotFound, "unknown run %q", id)
		return
	}
	run.cancel()
	// A finished run keeps its final state; cancelling it is a no-op.
	run.mu.Lock()
	state := run.state
	run.mu.Unlock()
	if state == StateRunning {
		state = "cancelling"
	}
	writeJSON(w, http.StatusOK, map[string]string{"id": run.id, "state": state})
}
