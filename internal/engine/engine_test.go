package engine

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/arch"
	"repro/internal/experiments"
	"repro/internal/workload"
	"repro/internal/workload/javabench"
)

// cheapSet is a subset of experiments fast enough to run repeatedly in
// tests while still covering tables, notes, litmus campaigns, and the
// counter survey.
var cheapSet = []string{"fig4", "txt3", "counters", "ablations"}

// TestMeasureMatchesSequential verifies the engine's pooled measurement
// is bit-identical to the direct sequential one: same samples, same
// summary, regardless of worker count.
func TestMeasureMatchesSequential(t *testing.T) {
	e := New(Options{Workers: 4})
	defer e.Close()

	b := javabench.Tomcat()
	env := workload.DefaultEnv(arch.ARMv8())
	want, err := workload.Measure(b, env, 3, 42)
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.Measure(context.Background(), b, env, 3, 42)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("pooled summary %+v != sequential %+v", got, want)
	}
}

// TestRunDeterminism verifies that a parallel engine run produces output
// byte-identical to running the same drivers directly and sequentially —
// the property the -parallel flag advertises.
func TestRunDeterminism(t *testing.T) {
	var want bytes.Buffer
	for _, name := range cheapSet {
		ex, err := experiments.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := ex.Run(experiments.Options{Short: true, Samples: 2, Seed: 3, Out: &want}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}

	e := New(Options{Workers: 4})
	defer e.Close()
	results, err := e.Run(context.Background(), cheapSet,
		RunOptions{Short: true, Samples: 2, Seed: 3, Parallel: len(cheapSet)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	for _, r := range results {
		got.WriteString(r.Output)
	}
	if got.String() != want.String() {
		t.Errorf("parallel engine output differs from sequential:\n--- sequential ---\n%s\n--- engine ---\n%s",
			want.String(), got.String())
	}
}

// TestResultStructure checks the structured side of a Result: tables,
// measurement accounting, and JSON round-tripping.
func TestResultStructure(t *testing.T) {
	e := New(Options{})
	defer e.Close()
	results, err := e.Run(context.Background(), []string{"fig4"},
		RunOptions{Short: true, Samples: 2, Seed: 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	r := results[0]
	if r.Experiment != "fig4" || r.Paper != "Figure 4" {
		t.Errorf("result identity = %q/%q", r.Experiment, r.Paper)
	}
	if len(r.Tables) != 1 {
		t.Fatalf("fig4 produced %d tables, want 1", len(r.Tables))
	}
	if len(r.Tables[0].Rows) != 4 {
		t.Errorf("short fig4 table has %d rows, want 4", len(r.Tables[0].Rows))
	}
	if r.WallNs <= 0 {
		t.Error("missing wall time")
	}
	raw, err := r.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Result
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Experiment != "fig4" || len(back.Tables) != 1 {
		t.Errorf("JSON round trip lost data: %+v", back)
	}
}

// TestCalibrationCache verifies the shared cache computes each
// (profile, sizes, seed) curve once and reuses it for every later
// request, including across concurrent requesters.
func TestCalibrationCache(t *testing.T) {
	e := New(Options{Workers: 2})
	defer e.Close()
	ctx := context.Background()
	sizes := []int64{1, 8, 64}

	a, err := e.Calibration(ctx, arch.ARMv8(), sizes, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Calibration(ctx, arch.ARMv8(), sizes, 1)
	if err != nil {
		t.Fatal(err)
	}
	if hits, misses := e.CalStats(); hits != 1 || misses != 1 {
		t.Errorf("after two identical requests: hits=%d misses=%d, want 1/1", hits, misses)
	}
	if len(a.Curve) != len(b.Curve) || a.Curve[0] != b.Curve[0] {
		t.Error("cache returned a different curve")
	}

	// A different sweep or seed is a distinct curve.
	if _, err := e.Calibration(ctx, arch.ARMv8(), []int64{1, 8}, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Calibration(ctx, arch.ARMv8(), sizes, 2); err != nil {
		t.Fatal(err)
	}
	if hits, misses := e.CalStats(); hits != 1 || misses != 3 {
		t.Errorf("distinct keys: hits=%d misses=%d, want 1/3", hits, misses)
	}

	// Concurrent requesters on a fresh key: exactly one computation.
	done := make(chan error, 4)
	for i := 0; i < 4; i++ {
		go func() {
			_, err := e.Calibration(ctx, arch.POWER7(), sizes, 1)
			done <- err
		}()
	}
	for i := 0; i < 4; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if hits, misses := e.CalStats(); misses != 4 {
		t.Errorf("concurrent requesters recomputed: hits=%d misses=%d, want misses=4", hits, misses)
	}
}

// TestDriversShareCalibrationCache runs two scan-based drivers that use
// the same (profile, sizes, seed) and checks the second one hits the
// cache instead of recomputing — the fix for the per-driver
// core.Calibrate recomputation.
func TestDriversShareCalibrationCache(t *testing.T) {
	if testing.Short() {
		t.Skip("scan drivers are expensive")
	}
	e := New(Options{})
	defer e.Close()
	_, err := e.Run(context.Background(), []string{"fig9", "txt7"},
		RunOptions{Short: true, Samples: 1, Seed: 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	hits, misses := e.CalStats()
	if misses != 1 {
		t.Errorf("fig9+txt7 computed %d calibrations, want 1 (hits=%d)", misses, hits)
	}
	if hits < 1 {
		t.Errorf("no cache hits across drivers (hits=%d misses=%d)", hits, misses)
	}
}

// TestRunCancellation verifies a cancelled context aborts a run at its
// next measurement and surfaces as a cancelled result.
func TestRunCancellation(t *testing.T) {
	e := New(Options{})
	defer e.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results, err := e.Run(ctx, []string{"fig4"}, RunOptions{Short: true, Samples: 2}, nil)
	if err == nil {
		t.Fatal("cancelled run reported success")
	}
	if len(results) != 1 || !results[0].Canceled() {
		t.Errorf("result not marked cancelled: %+v", results[0])
	}
}

// TestUnknownExperiment verifies name validation happens before any work.
func TestUnknownExperiment(t *testing.T) {
	e := New(Options{})
	defer e.Close()
	if _, err := e.Run(context.Background(), []string{"bogus"}, RunOptions{}, nil); err == nil {
		t.Error("unknown experiment accepted")
	}
}

// TestMeasureCancelUnblocksEnqueue is the regression test for the
// uncancellable-enqueue bug: with every worker busy, Measure blocks
// sending its first job; cancelling the context must unblock it
// promptly (within one sample boundary) instead of waiting for the
// pool to drain.  Run under -race it also proves the unsent samples'
// WaitGroup accounting is sound.
func TestMeasureCancelUnblocksEnqueue(t *testing.T) {
	e := New(Options{Workers: 1})
	defer e.Close()

	// Occupy the only worker with a job that blocks until released.
	release := make(chan struct{})
	var blockerWG sync.WaitGroup
	blockerWG.Add(1)
	var out float64
	var errv error
	e.jobs <- job{
		ctx: context.Background(), out: &out, err: &errv, wg: &blockerWG,
		enqueued: time.Now(),
		run:      func() (float64, error) { <-release; return 0, nil },
	}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		b := javabench.Tomcat()
		env := workload.DefaultEnv(arch.ARMv8())
		_, err := e.Measure(ctx, b, env, 4, 42)
		done <- err
	}()

	// Let Measure reach the blocked enqueue, then cancel.
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("Measure returned %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Measure still blocked 10s after cancellation")
	}

	close(release)
	blockerWG.Wait()
}

// TestEngineMetrics verifies the engine's instruments track the work it
// does: jobs, measurements, and calibration cache traffic.
func TestEngineMetrics(t *testing.T) {
	e := New(Options{Workers: 2})
	defer e.Close()

	b := javabench.Tomcat()
	env := workload.DefaultEnv(arch.ARMv8())
	if _, err := e.Measure(context.Background(), b, env, 3, 42); err != nil {
		t.Fatal(err)
	}
	if got := e.met.jobsExecuted.Value(); got != 3 {
		t.Errorf("jobs executed = %v, want 3", got)
	}
	if got := e.met.measurements.Value(); got != 1 {
		t.Errorf("measurements = %v, want 1", got)
	}
	if got := e.met.sampleRun.Count(); got != 3 {
		t.Errorf("sample duration observations = %v, want 3", got)
	}

	sizes := []int64{1, 8}
	if _, err := e.Calibration(context.Background(), arch.ARMv8(), sizes, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Calibration(context.Background(), arch.ARMv8(), sizes, 1); err != nil {
		t.Fatal(err)
	}
	if hits, misses := e.met.calHits.Value(), e.met.calMisses.Value(); hits != 1 || misses != 1 {
		t.Errorf("cache metrics hits=%v misses=%v, want 1/1", hits, misses)
	}

	var sb strings.Builder
	if err := e.Metrics().WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "wmm_engine_jobs_executed_total 3") {
		t.Errorf("exposition missing jobs counter:\n%s", sb.String())
	}
}
