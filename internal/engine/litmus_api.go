package engine

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"
)

// Litmus campaign API:
//
//	POST   /api/v1/litmus        submit a campaign (LitmusSpec), returns
//	                             {"id", "state", "total"}; 429 under saturation
//	GET    /api/v1/litmus        campaign statuses, in submission order
//	GET    /api/v1/litmus/{id}   status; ?results=1 includes shard results
//	                             while running; ?canonical=1 serves canonical
//	                             JSON of the ordered shard results
//	DELETE /api/v1/litmus/{id}   cancel a running campaign / remove a
//	                             finished one
//
// Campaigns are in-memory only: unlike experiment runs they are not
// persisted to the run store, because any campaign is cheap to resubmit
// — the batch regenerates from (gen_seed, count, max_threads) and every
// shard re-executes byte-identically.

// litmusRun is one submitted campaign.
type litmusRun struct {
	id       string
	spec     LitmusSpec
	shards   []LitmusShard
	cancel   context.CancelFunc
	admitted int

	mu        sync.Mutex
	state     string
	started   time.Time
	finished  time.Time
	completed []*Result // shard results, completion order, while running
	final     []*Result // shard order, once the campaign ends
	err       string
}

// LitmusStatus is the snapshot served by GET /api/v1/litmus/{id}.  The
// id / kind / state / tenant / started_at / finished_at header is the
// envelope shared by every v1 job resource.
type LitmusStatus struct {
	ID     string `json:"id"`
	Kind   string `json:"kind"`
	State  string `json:"state"`
	Tenant string `json:"tenant,omitempty"`
	// FinishedAt is set once the campaign leaves the running state.
	FinishedAt *time.Time `json:"finished_at,omitempty"`
	Spec       LitmusSpec `json:"spec"`
	Total      int        `json:"total"`     // shards
	Completed  int        `json:"completed"` // shards finished
	// Tests and Trials aggregate the completed shards' execution
	// accounting (tests run, randomized trials performed).
	Tests     int       `json:"tests"`
	Trials    int       `json:"trials"`
	Error     string    `json:"error,omitempty"`
	StartedAt time.Time `json:"started_at"`
	WallMs    int64     `json:"wall_ms"`
	Results   []*Result `json:"results,omitempty"`
}

// status snapshots the campaign.
func (r *litmusRun) status(includeResults bool) LitmusStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := LitmusStatus{
		ID:        r.id,
		Kind:      "litmus",
		State:     r.state,
		Tenant:    r.spec.Tenant,
		Spec:      r.spec,
		Total:     len(r.shards),
		Completed: len(r.completed),
		Error:     r.err,
		StartedAt: r.started,
	}
	if !r.finished.IsZero() {
		fin := r.finished
		st.FinishedAt = &fin
	}
	counted := r.completed
	if r.final != nil {
		counted = r.final
	}
	for _, res := range counted {
		if res != nil {
			st.Tests += res.Measurements
			st.Trials += res.Samples
		}
	}
	end := r.finished
	if end.IsZero() {
		end = time.Now()
	}
	st.WallMs = end.Sub(r.started).Milliseconds()
	if includeResults || r.state != StateRunning {
		if r.final != nil {
			st.Results = r.final
		} else {
			st.Results = append([]*Result{}, r.completed...)
		}
	}
	return st
}

// litmusSink adapts a litmusRun to the dispatcher's progress Sink.
type litmusSink litmusRun

func (ls *litmusSink) ExperimentStarted(string) {}

func (ls *litmusSink) ExperimentDone(res *Result) {
	r := (*litmusRun)(ls)
	r.mu.Lock()
	r.completed = append(r.completed, res)
	r.mu.Unlock()
}

func (s *Server) handleLitmusSubmit(w http.ResponseWriter, r *http.Request) {
	var spec LitmusSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeErr(w, http.StatusBadRequest, ErrCodeInvalidArgument, "bad litmus spec: %v", err)
		return
	}
	spec = spec.withDefaults()
	if err := spec.validate(); err != nil {
		writeErr(w, http.StatusBadRequest, ErrCodeInvalidArgument, "bad litmus spec: %v", err)
		return
	}
	if spec.Parallel <= 0 {
		spec.Parallel = s.defaultParallel
	}
	tenant, tok := resolveTenant(w, r, spec.Tenant)
	if !tok {
		return
	}
	spec.Tenant = tenant
	shards := spec.shards()

	// Admission control shares the dispatch queue's budget with
	// experiment runs: a campaign's shards are refused up front rather
	// than flooding the queue.
	admitted := 0
	if s.disp != nil {
		switch err := s.disp.TryAdmit(tenant, len(shards)); err {
		case nil:
			admitted = len(shards)
		case ErrTenantSaturated:
			s.writeSaturated(w, "tenant %q queue quota exceeded (%d shards refused)", tenant, len(shards))
			return
		default:
			s.writeSaturated(w, "dispatch queue saturated (%d shards refused)", len(shards))
			return
		}
	}

	ctx := context.Background()
	var cancel context.CancelFunc
	if spec.TimeoutMs > 0 {
		ctx, cancel = context.WithTimeout(ctx, time.Duration(spec.TimeoutMs)*time.Millisecond)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		cancel()
		if s.disp != nil {
			s.disp.admitForce(tenant, -admitted)
		}
		writeErr(w, http.StatusServiceUnavailable, ErrCodeUnavailable, "server shutting down")
		return
	}
	if !s.tenantAdmitRunningLocked(tenant) {
		s.mu.Unlock()
		cancel()
		if s.disp != nil {
			s.disp.admitForce(tenant, -admitted)
		}
		s.met.tenantRejected.Inc(tenant, "tenant_running")
		s.writeSaturated(w, "tenant %q already has %d runs executing", tenant, s.tenantMaxRunning)
		return
	}
	s.litmusSeq++
	run := &litmusRun{
		id:       fmt.Sprintf("litmus-%d", s.litmusSeq),
		spec:     spec,
		shards:   shards,
		cancel:   cancel,
		admitted: admitted,
		state:    StateRunning,
		started:  time.Now(),
	}
	s.litmus[run.id] = run
	s.active.Add(1)
	s.mu.Unlock()
	s.met.litmusRuns.Inc("submitted")

	go s.executeLitmus(ctx, cancel, run)
	writeJSON(w, http.StatusAccepted, map[string]any{"id": run.id, "state": StateRunning, "total": len(shards)})
}

// executeLitmus drives a campaign to completion, through the sharded
// dispatcher when one is configured and in-process otherwise.  Both
// paths produce byte-identical shard results for the same spec.
func (s *Server) executeLitmus(ctx context.Context, cancel context.CancelFunc, run *litmusRun) {
	defer s.active.Done()
	defer cancel()
	tenant := run.spec.Tenant
	if tenant == "" {
		tenant = DefaultTenant
	}
	defer s.tenantRunningDone(tenant)
	var results []*Result
	var err error
	if s.disp != nil {
		results, err = s.disp.RunLitmus(ctx, run.id, tenant, run.shards, run.spec.Parallel, (*litmusSink)(run), run.admitted)
	} else {
		results, err = runLitmusLocal(ctx, run.shards, run.spec.Parallel, (*litmusSink)(run))
	}

	run.mu.Lock()
	run.final = results
	run.finished = time.Now()
	switch {
	case err == nil:
		run.state = StateDone
	case ctx.Err() != nil || anyCanceled(results):
		run.state = StateCancelled
		run.err = err.Error()
	case anyOK(results):
		run.state = StatePartial
		run.err = err.Error()
	default:
		run.state = StateFailed
		run.err = err.Error()
	}
	state := run.state
	run.mu.Unlock()
	s.met.litmusRuns.Inc(state)
}

func (s *Server) lookupLitmus(r *http.Request) (*litmusRun, string) {
	id := r.PathValue("id")
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.litmus[id], id
}

func (s *Server) handleLitmusList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	runs := make([]*litmusRun, 0, len(s.litmus))
	for _, run := range s.litmus {
		runs = append(runs, run)
	}
	s.mu.Unlock()
	out := make([]LitmusStatus, 0, len(runs))
	for _, run := range runs {
		out = append(out, run.status(false))
	}
	writeJobPage(w, r, out, func(st LitmusStatus) string { return st.ID })
}

func (s *Server) handleLitmusStatus(w http.ResponseWriter, r *http.Request) {
	run, id := s.lookupLitmus(r)
	if run == nil {
		writeErr(w, http.StatusNotFound, ErrCodeNotFound, "unknown litmus campaign %q", id)
		return
	}
	if r.URL.Query().Get("canonical") != "" {
		run.mu.Lock()
		state := run.state
		results := run.final
		run.mu.Unlock()
		if state == StateRunning {
			writeErr(w, http.StatusConflict, ErrCodeConflict,
				"litmus campaign %s is still running; canonical JSON exists only for finished campaigns", run.id)
			return
		}
		raw, err := CanonicalRunJSON(results)
		if err != nil {
			writeErr(w, http.StatusInternalServerError, "internal", "canonicalise litmus campaign %s: %v", run.id, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		w.Write(raw)
		return
	}
	writeJSON(w, http.StatusOK, run.status(r.URL.Query().Get("results") != ""))
}

// handleLitmusCancel cancels a running campaign; on a finished one it
// removes it from the catalogue.
func (s *Server) handleLitmusCancel(w http.ResponseWriter, r *http.Request) {
	run, id := s.lookupLitmus(r)
	if run == nil {
		writeErr(w, http.StatusNotFound, ErrCodeNotFound, "unknown litmus campaign %q", id)
		return
	}
	run.mu.Lock()
	state := run.state
	run.mu.Unlock()
	run.cancel()
	if state != StateRunning {
		s.mu.Lock()
		_, present := s.litmus[id]
		delete(s.litmus, id)
		s.mu.Unlock()
		if present {
			s.met.litmusSwept.Inc()
		}
		writeJSON(w, http.StatusOK, map[string]any{"id": run.id, "state": state, "deleted": true})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"id": run.id, "state": "cancelling"})
}
