package engine

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/wmm/client"
)

// litmusSpec is the campaign used across the API tests: small enough
// to finish in seconds, multi-shard so ordering and assembly matter.
var litmusSpecJSON = client.LitmusSpec{
	Arch:      "armv8",
	GenSeed:   9,
	Count:     12,
	Trials:    4,
	Seed:      3,
	ShardSize: 5, // 12 tests -> shards [0,5) [5,10) [10,12)
	Parallel:  2,
}

func submitLitmus(t *testing.T, ts *httptest.Server, spec client.LitmusSpec) client.Submitted {
	t.Helper()
	sub, err := testClient(ts).SubmitLitmus(context.Background(), spec)
	if err != nil {
		t.Fatalf("submit litmus: %v", err)
	}
	return sub
}

func waitLitmus(t *testing.T, ts *httptest.Server, id string) client.LitmusStatus {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	st, err := testClient(ts).WaitLitmus(ctx, id, 20*time.Millisecond)
	if err != nil {
		t.Fatalf("wait litmus %s: %v", id, err)
	}
	return st
}

// TestLitmusAPILocal exercises the campaign lifecycle on a server with
// no dispatcher: submit, wait, status accounting, canonical JSON,
// per-shard Output shape, and removal.
func TestLitmusAPILocal(t *testing.T) {
	ts, _ := newTestServer(t)
	cl := testClient(ts)

	sub := submitLitmus(t, ts, litmusSpecJSON)
	if sub.Total != 3 {
		t.Fatalf("total = %d shards, want 3", sub.Total)
	}
	st := waitLitmus(t, ts, sub.ID)
	if st.State != client.StateDone {
		t.Fatalf("campaign ended %s (err %q)", st.State, st.Error)
	}
	if st.Completed != 3 || st.Tests != 12 || st.Trials != 48 {
		t.Errorf("completed/tests/trials = %d/%d/%d, want 3/12/48", st.Completed, st.Tests, st.Trials)
	}
	if len(st.Results) != 3 {
		t.Fatalf("results = %d shards, want 3", len(st.Results))
	}
	wantNames := []string{"shard-00000-00005", "shard-00005-00010", "shard-00010-00012"}
	for i, res := range st.Results {
		if res.Experiment != wantNames[i] {
			t.Errorf("shard %d named %q, want %q", i, res.Experiment, wantNames[i])
		}
		if res.Status != StatusOK {
			t.Errorf("shard %d status %q (err %q)", i, res.Status, res.Err)
		}
		var rows []struct {
			Name    string `json:"name"`
			Trials  int    `json:"trials"`
			Hits    int    `json:"hits"`
			Relaxed int    `json:"relaxed"`
		}
		if err := json.Unmarshal([]byte(res.Output), &rows); err != nil {
			t.Fatalf("shard %d output is not an outcome array: %v", i, err)
		}
		for _, row := range rows {
			if !strings.HasPrefix(row.Name, "gen:") || row.Trials != 4 {
				t.Errorf("shard %d row %+v: want gen:* with 4 trials", i, row)
			}
		}
	}

	// Canonical JSON is stable across fetches.
	a, err := cl.CanonicalLitmus(context.Background(), sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	b, err := cl.CanonicalLitmus(context.Background(), sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("canonical litmus JSON differs between fetches")
	}

	// Listing carries the campaign; removal makes it unknown.
	var listing struct {
		Items []client.LitmusStatus `json:"items"`
	}
	if err := cl.GetJSON(context.Background(), "/api/v1/litmus", &listing); err != nil {
		t.Fatal(err)
	}
	if len(listing.Items) != 1 || listing.Items[0].ID != sub.ID {
		t.Errorf("listing = %+v, want the one campaign", listing.Items)
	}
	if _, err := cl.CancelLitmus(context.Background(), sub.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Litmus(context.Background(), sub.ID, false); !client.IsNotFound(err) {
		t.Errorf("status after delete: %v, want 404", err)
	}
}

// TestLitmusDispatchIdentity verifies the campaign analogue of the
// dispatcher invariant: a campaign sharded through the queue and local
// slots yields canonical JSON byte-identical to the in-process path.
func TestLitmusDispatchIdentity(t *testing.T) {
	tsLocal, _ := newTestServer(t)
	subLocal := submitLitmus(t, tsLocal, litmusSpecJSON)
	if st := waitLitmus(t, tsLocal, subLocal.ID); st.State != client.StateDone {
		t.Fatalf("local campaign ended %s (err %q)", st.State, st.Error)
	}
	want, err := testClient(tsLocal).CanonicalLitmus(context.Background(), subLocal.ID)
	if err != nil {
		t.Fatal(err)
	}

	tsDisp, _ := newDispatchServer(t, DispatchOptions{})
	subDisp := submitLitmus(t, tsDisp, litmusSpecJSON)
	if st := waitLitmus(t, tsDisp, subDisp.ID); st.State != client.StateDone {
		t.Fatalf("dispatched campaign ended %s (err %q)", st.State, st.Error)
	}
	got, err := testClient(tsDisp).CanonicalLitmus(context.Background(), subDisp.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("dispatched campaign diverged from local:\n--- local ---\n%s\n--- dispatched ---\n%s", want, got)
	}
}

// TestLitmusValidation verifies malformed campaign specs are refused
// with the uniform envelope before any work is admitted.
func TestLitmusValidation(t *testing.T) {
	ts, _ := newTestServer(t)
	for name, body := range map[string]string{
		"unknown arch":     `{"arch": "sparc", "count": 5}`,
		"zero count":       `{"arch": "armv8", "count": 0}`,
		"excessive count":  `{"arch": "armv8", "count": 1000000}`,
		"bad max_threads":  `{"arch": "armv8", "count": 5, "max_threads": 7}`,
		"impossible count": `{"arch": "armv8", "count": 19999, "max_threads": 2}`,
		"negative seed":    `{"arch": "armv8", "count": 5, "seed": -1}`,
	} {
		t.Run(name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/api/v1/litmus", "application/json", strings.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != http.StatusBadRequest {
				resp.Body.Close()
				t.Fatalf("status = %d, want 400", resp.StatusCode)
			}
			if code, _ := decodeEnvelope(t, resp); code != ErrCodeInvalidArgument {
				t.Errorf("envelope code = %q, want %q", code, ErrCodeInvalidArgument)
			}
		})
	}
}

// TestLitmusShardDeterminism pins the executable-side contract the
// wire format relies on: the same shard descriptor produces the same
// Result bytes (wall time aside) on every execution.
func TestLitmusShardDeterminism(t *testing.T) {
	sh := LitmusShard{Arch: "power7", GenSeed: 5, Count: 20, MaxThreads: 3, Trials: 3, Seed: 2, Lo: 4, Hi: 9}
	a, err := RunLitmusShard(context.Background(), sh)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunLitmusShard(context.Background(), sh)
	if err != nil {
		t.Fatal(err)
	}
	ca, err := CanonicalRunJSON([]*Result{a})
	if err != nil {
		t.Fatal(err)
	}
	cb, err := CanonicalRunJSON([]*Result{b})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ca, cb) {
		t.Errorf("shard re-execution diverged:\n%s\n---\n%s", ca, cb)
	}
	if a.Measurements != 5 || a.Samples != 15 {
		t.Errorf("measurements/samples = %d/%d, want 5/15", a.Measurements, a.Samples)
	}
}
