package engine

import (
	"encoding/json"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/runstore"
)

// Fenced-store behaviour at the API surface: when the run store refuses
// mutations with runstore.ErrFenced (a rival coordinator holds a newer
// lease claim), a submission — whose durability depends on the Begin
// record — must be refused outright with the standard "unavailable"
// envelope, while non-critical mutations degrade: the operation
// completes in memory, the fenced write is counted, and the OnFenced
// callback fires exactly once so the HA controller can depose.

// fenceOut arms the given handle as a displaced leader: a rival handle
// on the same directory claims the lease, then the leader's handle is
// fenced at the same term under its own name — the state a lost
// double-claim race leaves behind, and the sharpest case because the
// term alone cannot distinguish the two claimants.
func fenceOut(t *testing.T, dir string, leader *runstore.Store) {
	t.Helper()
	rival, err := runstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rival.Close() })
	lease, ok, err := rival.TryAcquireLease("rival", time.Minute)
	if err != nil || !ok {
		t.Fatalf("rival acquire: ok=%v err=%v", ok, err)
	}
	if err := leader.Fence("old-leader", lease.Term); err != nil {
		t.Fatal(err)
	}
}

// TestFencedSubmitRefused: with the store fenced, POST /api/v1/runs
// answers 503 "unavailable", registers nothing, fires OnFenced once
// (even across repeated submissions), and counts every fenced write.
func TestFencedSubmitRefused(t *testing.T) {
	dir := t.TempDir()
	store, err := runstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	var fenced atomic.Int32
	ts, api, _ := newTestServerOpts(t, ServerOptions{
		Parallel: 2,
		Store:    store,
		OnFenced: func() { fenced.Add(1) },
	})
	fenceOut(t, dir, store)

	for attempt := 1; attempt <= 2; attempt++ {
		resp, err := http.Post(ts.URL+"/api/v1/runs", "application/json",
			strings.NewReader(`{"experiments": ["fig4"], "short": true, "samples": 1, "seed": 3}`))
		if err != nil {
			t.Fatal(err)
		}
		var out struct {
			Error struct {
				Code    string `json:"code"`
				Message string `json:"message"`
			} `json:"error"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable || out.Error.Code != ErrCodeUnavailable {
			t.Fatalf("attempt %d: fenced submit = %d %+v, want 503 unavailable", attempt, resp.StatusCode, out)
		}
		if !strings.Contains(out.Error.Message, "fenced") {
			t.Fatalf("attempt %d: envelope message %q should name the fence", attempt, out.Error.Message)
		}
	}

	// The refused submissions left nothing behind: no registered runs,
	// and the dispatcher/active accounting was unwound (Shutdown in the
	// test cleanup would hang on a leaked active.Add).
	api.mu.Lock()
	kept := len(api.runs)
	api.mu.Unlock()
	if kept != 0 {
		t.Fatalf("%d runs registered after fenced submits, want 0", kept)
	}
	if got := fenced.Load(); got != 1 {
		t.Fatalf("OnFenced fired %d times, want exactly 1", got)
	}
	if got := api.met.storeFenced.Value(); got < 2 {
		t.Fatalf("wmm_store_fenced_writes_total = %v, want >= 2", got)
	}
}

// TestFencedDeleteDegrades: removal of a finished run is not durability
// critical — the catalogue entry goes, the fenced store Delete is
// counted, OnFenced fires, and the client still gets its 200.
func TestFencedDeleteDegrades(t *testing.T) {
	dir := t.TempDir()
	store, err := runstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	var fenced atomic.Int32
	ts, api, _ := newTestServerOpts(t, ServerOptions{
		Parallel: 2,
		Store:    store,
		OnFenced: func() { fenced.Add(1) },
	})

	// Run to completion while still the rightful leader.
	id := postRun(t, ts, `{"experiments": ["fig4"], "short": true, "samples": 1, "seed": 3}`)
	if st := waitState(t, ts, id, 2*time.Minute); st.State != StateDone {
		t.Fatalf("run ended %s", st.State)
	}
	fenceOut(t, dir, store)

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/api/v1/runs/"+id, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fenced delete = %d, want 200 (degraded, not refused)", resp.StatusCode)
	}
	api.mu.Lock()
	_, still := api.runs[id]
	api.mu.Unlock()
	if still {
		t.Fatal("run still in the catalogue after delete")
	}
	if fenced.Load() != 1 {
		t.Fatalf("OnFenced fired %d times, want 1", fenced.Load())
	}
	if api.met.storeFenced.Value() < 1 {
		t.Fatal("fenced Delete not counted")
	}
}
