// Package engine is the concurrent experiment execution engine.  It
// turns the paper's evaluation — six-plus samples per point across large
// cost-function sweeps on two simulated machines (§4.1) — from a strictly
// sequential stdout dump into scheduled, cancellable, queryable jobs:
//
//   - a worker pool fans individual (profile, experiment, size, sample)
//     measurements out across GOMAXPROCS workers; sample seeds are derived
//     positionally (workload.SampleSeed), so a pooled run is bit-identical
//     to the sequential one for the same base seed;
//
//   - a process-wide calibration cache keyed by (profile, sizes, seed)
//     computes each Figure 4 curve once instead of once per driver;
//
//   - every experiment produces a structured Result (tables, fitted
//     sensitivities, measurement counts, wall time) serialized to JSON
//     alongside the existing ASCII tables;
//
//   - faults are contained at the sample boundary: a panicking sample
//     becomes a per-job error instead of a process crash, a hung sample
//     is abandoned by a watchdog after Options.SampleTimeout, and
//     transient failures are retried with capped exponential backoff
//     before an experiment degrades to a partial Result;
//
//   - the Server in this package exposes runs over HTTP for cmd/wmmd and
//     checkpoints them through internal/runstore so an interrupted run
//     resumes after a restart.
package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faultinject"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// RetryPolicy bounds the engine's per-sample retries of transient
// failures (recovered panics, watchdog timeouts, injected faults, any
// error that is not a cancellation).  The zero value disables retries.
type RetryPolicy struct {
	// Max is the number of retry rounds per measurement (0 = none).
	Max int
	// Base is the first backoff delay (25ms if <= 0 when Max > 0).
	Base time.Duration
	// Cap bounds the exponential backoff (1s if <= 0 when Max > 0).
	Cap time.Duration
}

// backoff returns the jittered delay before retry round `attempt`
// (1-based): an exponential from Base capped at Cap, with ±50% jitter so
// concurrent measurements retrying together do not stampede in phase.
// Jitter affects only timing, never sample values, so determinism of
// results is preserved.  The jitter stream is a per-engine seeded
// sim.XorShift64, not the global math/rand: two engines built with the
// same Options draw identical delay sequences, and nothing an engine
// does perturbs (or is perturbed by) the process-wide stream — which is
// what keeps fault-injection retry tests reproducible.
func (e *Engine) backoff(attempt int) time.Duration {
	p := e.retry
	d := p.Base << (attempt - 1)
	if d > p.Cap || d <= 0 {
		d = p.Cap
	}
	e.jitterMu.Lock()
	j := e.jitter.Intn(int64(d/2) + 1)
	e.jitterMu.Unlock()
	return d/2 + time.Duration(j)
}

// Options configures an Engine.
type Options struct {
	// Workers is the sample-level worker-pool size; GOMAXPROCS if <= 0.
	Workers int
	// Registry receives the engine's metrics; a private registry is
	// created if nil.
	Registry *metrics.Registry
	// SampleTimeout is the per-sample watchdog deadline.  A sample still
	// running after this long is marked failed (ErrSampleTimeout) and its
	// goroutine abandoned, so one runaway simulation cannot wedge a
	// worker forever.  0 disables the watchdog.
	SampleTimeout time.Duration
	// Retry bounds per-sample retries of transient failures.
	Retry RetryPolicy
	// JitterSeed seeds the engine's retry-backoff jitter stream (a
	// per-engine sim.XorShift64; 0 picks the generator's fixed default).
	// Jitter affects only timing, never sample values.
	JitterSeed int64
	// CalCacheCap bounds the calibration cache to this many completed
	// entries, evicting least-recently-used curves beyond it (default
	// 128; negative = unbounded, the pre-bound behaviour).  In-flight
	// computations are never evicted.
	CalCacheCap int
	// Fault, when non-nil, injects deterministic faults at the sample
	// and calibration boundaries (tests; see internal/faultinject).
	Fault *faultinject.Injector
}

// Sentinel errors for contained sample faults.  They reach callers
// wrapped with the sample's seed, so use errors.Is.
var (
	// ErrSamplePanic marks a sample that panicked and was recovered by
	// its worker.
	ErrSamplePanic = errors.New("sample panicked")
	// ErrSampleTimeout marks a sample abandoned by the watchdog.
	ErrSampleTimeout = errors.New("sample deadline exceeded")
)

// engineMetrics are the engine's instruments: what the worker pool and
// calibration cache record about themselves.
type engineMetrics struct {
	jobsExecuted  *metrics.Counter   // samples run to completion
	jobsCancelled *metrics.Counter   // samples skipped or unsent due to cancellation
	queueWait     *metrics.Histogram // enqueue → worker pickup
	sampleRun     *metrics.Histogram // one simulator execution
	workersBusy   *metrics.Gauge     // workers currently running a sample
	workers       *metrics.Gauge     // pool size (constant per engine)
	measurements  *metrics.Counter   // Measure calls
	adaptiveMeas  *metrics.Counter   // MeasureAdaptive calls
	adaptiveSaved *metrics.Counter   // samples the stop rule avoided vs its ceiling
	calHits       *metrics.Counter   // calibration cache reuses
	calMisses     *metrics.Counter   // calibration cache computations
	calEvictions  *metrics.Counter   // calibration entries evicted by the LRU bound
	experiments   *metrics.Counter   // experiments finished, by outcome
	experimentDur *metrics.Histogram // wall time of one experiment

	panicsRecovered *metrics.Counter // sample panics recovered into job errors
	sampleTimeouts  *metrics.Counter // samples abandoned by the watchdog
	sampleRetries   *metrics.Counter // sample retry attempts
	abandoned       *metrics.Gauge   // abandoned sample goroutines still running
	expPanics       *metrics.Counter // experiment driver panics recovered
}

func newEngineMetrics(r *metrics.Registry) *engineMetrics {
	return &engineMetrics{
		jobsExecuted:  r.Counter("wmm_engine_jobs_executed_total", "Sample jobs run to completion by the worker pool."),
		jobsCancelled: r.Counter("wmm_engine_jobs_cancelled_total", "Sample jobs skipped or unsent because their run was cancelled."),
		queueWait:     r.Histogram("wmm_engine_job_queue_wait_seconds", "Time a sample job waits between enqueue and worker pickup.", nil),
		sampleRun:     r.Histogram("wmm_engine_sample_run_seconds", "Duration of one simulator sample execution.", nil),
		workersBusy:   r.Gauge("wmm_engine_workers_busy", "Workers currently executing a sample."),
		workers:       r.Gauge("wmm_engine_workers", "Sample worker-pool size."),
		measurements:  r.Counter("wmm_engine_measurements_total", "Measurements (n-sample summaries) requested."),
		adaptiveMeas:  r.Counter("wmm_engine_adaptive_measurements_total", "Adaptive (sequential-stopping) measurements requested."),
		adaptiveSaved: r.Counter("wmm_engine_adaptive_samples_saved_total", "Samples the stopping rule avoided relative to its MaxSamples ceiling."),
		calHits:       r.Counter("wmm_engine_calibration_cache_hits_total", "Calibration curves served from the cache."),
		calMisses:     r.Counter("wmm_engine_calibration_cache_misses_total", "Calibration curves computed (cache misses)."),
		calEvictions:  r.Counter("wmm_engine_calibration_cache_evictions_total", "Calibration entries evicted by the cache's LRU bound."),
		experiments:   r.Counter("wmm_engine_experiments_total", "Experiments finished, by outcome.", "outcome"),
		experimentDur: r.Histogram("wmm_engine_experiment_seconds", "Wall time of one experiment driver.", nil),

		panicsRecovered: r.Counter("wmm_engine_sample_panics_recovered_total", "Sample panics recovered into per-job errors by workers."),
		sampleTimeouts:  r.Counter("wmm_engine_sample_timeouts_total", "Samples abandoned by the per-sample watchdog."),
		sampleRetries:   r.Counter("wmm_engine_sample_retries_total", "Sample retry attempts after transient failures."),
		abandoned:       r.Gauge("wmm_engine_samples_abandoned", "Abandoned (timed-out) sample goroutines still running."),
		expPanics:       r.Counter("wmm_engine_experiment_panics_recovered_total", "Experiment driver panics recovered into failed Results."),
	}
}

// Engine schedules measurements across a worker pool and caches
// calibrations.  It implements experiments.Runtime, so drivers run
// against it without knowing they are pooled.  An Engine is safe for
// concurrent use; Close releases its workers.
type Engine struct {
	workers       int
	jobs          chan job
	reg           *metrics.Registry
	met           *engineMetrics
	sampleTimeout time.Duration
	retry         RetryPolicy
	fault         *faultinject.Injector

	jitterMu sync.Mutex
	jitter   sim.XorShift64 // retry-backoff jitter; per-engine, seeded

	calMu     sync.Mutex
	cals      map[string]*calEntry
	calClock  int64 // monotonic use counter driving LRU order
	calCap    int
	hits      int
	misses    int
	evictions int

	closed    atomic.Bool
	closeOnce sync.Once
}

// job is one sample run: a single simulator execution of a benchmark
// under an environment with a derived seed.
type job struct {
	ctx      context.Context
	b        *workload.Benchmark
	env      workload.Env
	seed     int64
	out      *float64
	err      *error
	wg       *sync.WaitGroup
	enqueued time.Time
	run      func() (float64, error) // test seam; nil = workload.Run
}

// New starts an engine with its worker pool.
func New(o Options) *Engine {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	reg := o.Registry
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	retry := o.Retry
	if retry.Max > 0 {
		if retry.Base <= 0 {
			retry.Base = 25 * time.Millisecond
		}
		if retry.Cap <= 0 {
			retry.Cap = time.Second
		}
	}
	calCap := o.CalCacheCap
	if calCap == 0 {
		calCap = defaultCalCacheCap
	}
	e := &Engine{
		workers:       w,
		jobs:          make(chan job),
		reg:           reg,
		met:           newEngineMetrics(reg),
		sampleTimeout: o.SampleTimeout,
		retry:         retry,
		jitter:        sim.NewXorShift64(uint64(o.JitterSeed)),
		fault:         o.Fault.Instrument(reg),
		cals:          map[string]*calEntry{},
		calCap:        calCap,
	}
	e.met.workers.Set(float64(w))
	for i := 0; i < w; i++ {
		go e.worker()
	}
	return e
}

// Metrics returns the engine's registry so callers (wmmd's /metrics,
// wmmbench -stats) can expose or print it.  The server registers its
// HTTP instruments into the same registry.
func (e *Engine) Metrics() *metrics.Registry { return e.reg }

// Workers reports the pool size.
func (e *Engine) Workers() int { return e.workers }

// Close shuts the worker pool down.  Outstanding Measure calls complete;
// new ones panic.
func (e *Engine) Close() {
	e.closeOnce.Do(func() {
		e.closed.Store(true)
		close(e.jobs)
	})
}

// Closed reports whether the engine has stopped accepting work (backs
// wmmd's /readyz).
func (e *Engine) Closed() bool { return e.closed.Load() }

func (e *Engine) worker() {
	// Each worker owns a machine cache so consecutive samples of the same
	// configuration reuse one simulator via Reset instead of rebuilding it.
	// The cache is handed off (never shared) when a sample is abandoned.
	ws := &workerState{mc: workload.NewMachineCache()}
	for j := range e.jobs {
		e.met.queueWait.Observe(time.Since(j.enqueued).Seconds())
		if err := j.ctx.Err(); err != nil {
			*j.err = err
			e.met.jobsCancelled.Inc()
		} else {
			e.met.workersBusy.Add(1)
			start := time.Now()
			*j.out, *j.err = e.runSample(j, ws)
			e.met.sampleRun.Observe(time.Since(start).Seconds())
			e.met.workersBusy.Add(-1)
			e.met.jobsExecuted.Inc()
		}
		j.wg.Done()
	}
}

// workerState is per-worker mutable state; only its owning worker
// goroutine touches it.
type workerState struct {
	mc *workload.MachineCache
}

// runSample executes one sample with panic containment and, when the
// engine has a SampleTimeout, a watchdog that abandons a hung sample so
// the worker can move on.  An abandoned goroutine keeps running (the
// simulator has no preemption point) but writes only to its own locals;
// the wmm_engine_samples_abandoned gauge tracks how many are still
// alive.
func (e *Engine) runSample(j job, ws *workerState) (float64, error) {
	if e.sampleTimeout <= 0 {
		return e.guardedRun(j, ws.mc)
	}
	mc := ws.mc
	ch := make(chan sampleOutcome, 1)
	go func() {
		v, err := e.guardedRun(j, mc)
		ch <- sampleOutcome{v, err}
	}()
	timer := time.NewTimer(e.sampleTimeout)
	defer timer.Stop()
	select {
	case out := <-ch:
		return out.v, out.err
	case <-j.ctx.Done():
		// The abandoned goroutine keeps running inside mc's machines;
		// the worker must not touch that cache again.
		ws.mc = workload.NewMachineCache()
		e.abandon(ch)
		return 0, j.ctx.Err()
	case <-timer.C:
		e.met.sampleTimeouts.Inc()
		ws.mc = workload.NewMachineCache()
		e.abandon(ch)
		return 0, fmt.Errorf("sample (seed %d): %w after %v", j.seed, ErrSampleTimeout, e.sampleTimeout)
	}
}

// sampleOutcome carries a watchdogged sample's result to its worker.
type sampleOutcome struct {
	v   float64
	err error
}

// abandon accounts for a sample goroutine left running behind a timeout
// or cancellation, decrementing the gauge when it eventually finishes.
func (e *Engine) abandon(ch <-chan sampleOutcome) {
	e.met.abandoned.Add(1)
	go func() {
		<-ch
		e.met.abandoned.Add(-1)
	}()
}

// guardedRun is the recovered region around one simulator execution: a
// panic anywhere below (an out-of-range sim.Machine access, a builder
// bug, an injected fault) becomes this job's error instead of killing
// the process.
func (e *Engine) guardedRun(j job, mc *workload.MachineCache) (v float64, err error) {
	defer func() {
		if r := recover(); r != nil {
			e.met.panicsRecovered.Inc()
			err = fmt.Errorf("sample (seed %d): %w: %v\n%s", j.seed, ErrSamplePanic, r, debug.Stack())
		}
	}()
	name := ""
	if j.b != nil {
		name = j.b.Name
	}
	if ferr := e.fault.Fire(faultinject.PointSample, name, j.seed); ferr != nil {
		return 0, ferr
	}
	if j.run != nil {
		return j.run()
	}
	return workload.RunWith(mc, j.b, j.env, j.seed)
}

// retryable reports whether a failed sample is worth re-running:
// cancellations are final, everything else (panic, timeout, injected or
// organic error) gets the policy's retries.
func retryable(err error) bool {
	return err != nil && !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded)
}

// Measure fans the measurement's n samples out across the pool and
// summarises them in seed order.  The summary is bit-identical to
// workload.Measure for the same inputs: sample i always runs with
// workload.SampleSeed(seed, i) regardless of which worker executes it or
// in what order samples complete, and a retried sample re-runs with its
// original positional seed.
//
// Enqueueing selects on ctx, so cancelling a run unblocks a Measure that
// is waiting for busy workers: unsent samples are marked cancelled
// locally and only the already-enqueued ones are waited for.
//
// Failed samples are retried up to Retry.Max rounds with capped
// exponential backoff + jitter before the first surviving error is
// returned to the driver.
func (e *Engine) Measure(ctx context.Context, b *workload.Benchmark, env workload.Env, n int, seed int64) (stats.Summary, error) {
	if err := ctx.Err(); err != nil {
		return stats.Summary{}, err
	}
	e.met.measurements.Inc()
	xs := make([]float64, n)
	if err := e.sampleRange(ctx, b, env, seed, xs, 0, n); err != nil {
		return stats.Summary{}, err
	}
	return stats.Summarise(xs), nil
}

// MeasureAdaptive measures a point under a sequential stopping rule:
// batches of positionally-seeded samples grow from the rule's floor
// until the Student-t CI is tight enough (or the ceiling is hit), then
// the summary of exactly the samples drawn is returned.  Because the
// growth schedule (StopRule.Next) and the stop decision are pure
// functions of the samples so far, and sample i always runs with
// workload.SampleSeed(seed, i), an adaptive measurement stops at the
// same n with the same values in every process that evaluates it — the
// property that lets adaptive runs participate in result caching and
// sharded execution exactly like fixed-n runs do.
func (e *Engine) MeasureAdaptive(ctx context.Context, b *workload.Benchmark, env workload.Env, rule stats.StopRule, seed int64) (stats.Summary, error) {
	if err := ctx.Err(); err != nil {
		return stats.Summary{}, err
	}
	rule = rule.WithDefaults()
	e.met.measurements.Inc()
	e.met.adaptiveMeas.Inc()
	buf := make([]float64, rule.MaxSamples)
	n := rule.MinSamples
	for drawn := 0; ; {
		if err := e.sampleRange(ctx, b, env, seed, buf, drawn, n); err != nil {
			return stats.Summary{}, err
		}
		drawn = n
		sum := stats.Summarise(buf[:drawn])
		if rule.Done(sum) {
			e.met.adaptiveSaved.Add(float64(rule.MaxSamples - drawn))
			return sum, nil
		}
		n = rule.Next(drawn)
	}
}

// sampleRange fills xs[lo:hi] with samples lo..hi-1 of the measurement
// (positional seeds), fanning them across the pool and applying the
// engine's retry policy to transient failures.
func (e *Engine) sampleRange(ctx context.Context, b *workload.Benchmark, env workload.Env, seed int64, xs []float64, lo, hi int) error {
	errs := make([]error, hi)
	idx := make([]int, hi-lo)
	for k := range idx {
		idx[k] = lo + k
	}
	e.runBatch(ctx, b, env, seed, idx, xs, errs)

	for attempt := 1; attempt <= e.retry.Max; attempt++ {
		var retry []int
		for _, i := range idx {
			if retryable(errs[i]) {
				retry = append(retry, i)
			}
		}
		if len(retry) == 0 {
			break
		}
		if err := sleepCtx(ctx, e.backoff(attempt)); err != nil {
			break // cancelled mid-backoff; surface the original errors
		}
		e.met.sampleRetries.Add(float64(len(retry)))
		for _, i := range retry {
			errs[i] = nil
		}
		e.runBatch(ctx, b, env, seed, retry, xs, errs)
	}

	for _, i := range idx {
		if errs[i] != nil {
			return errs[i]
		}
	}
	return nil
}

// runBatch enqueues the samples at the given indices and waits for them,
// honouring cancellation while blocked on busy workers.
func (e *Engine) runBatch(ctx context.Context, b *workload.Benchmark, env workload.Env, seed int64, indices []int, xs []float64, errs []error) {
	var wg sync.WaitGroup
	wg.Add(len(indices))
enqueue:
	for k, i := range indices {
		j := job{ctx: ctx, b: b, env: env, seed: workload.SampleSeed(seed, i),
			out: &xs[i], err: &errs[i], wg: &wg, enqueued: time.Now()}
		select {
		case e.jobs <- j:
		case <-ctx.Done():
			for _, m := range indices[k:] {
				errs[m] = ctx.Err()
				wg.Done()
			}
			e.met.jobsCancelled.Add(float64(len(indices) - k))
			break enqueue
		}
	}
	wg.Wait()
}

// sleepCtx sleeps for d or until ctx is cancelled.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
