// Package engine is the concurrent experiment execution engine.  It
// turns the paper's evaluation — six-plus samples per point across large
// cost-function sweeps on two simulated machines (§4.1) — from a strictly
// sequential stdout dump into scheduled, cancellable, queryable jobs:
//
//   - a worker pool fans individual (profile, experiment, size, sample)
//     measurements out across GOMAXPROCS workers; sample seeds are derived
//     positionally (workload.SampleSeed), so a pooled run is bit-identical
//     to the sequential one for the same base seed;
//
//   - a process-wide calibration cache keyed by (profile, sizes, seed)
//     computes each Figure 4 curve once instead of once per driver;
//
//   - every experiment produces a structured Result (tables, fitted
//     sensitivities, measurement counts, wall time) serialized to JSON
//     alongside the existing ASCII tables;
//
//   - the Server in this package exposes runs over HTTP for cmd/wmmd.
package engine

import (
	"context"
	"runtime"
	"sync"

	"repro/internal/stats"
	"repro/internal/workload"
)

// Options configures an Engine.
type Options struct {
	// Workers is the sample-level worker-pool size; GOMAXPROCS if <= 0.
	Workers int
}

// Engine schedules measurements across a worker pool and caches
// calibrations.  It implements experiments.Runtime, so drivers run
// against it without knowing they are pooled.  An Engine is safe for
// concurrent use; Close releases its workers.
type Engine struct {
	workers int
	jobs    chan job

	calMu  sync.Mutex
	cals   map[string]*calEntry
	hits   int
	misses int

	closeOnce sync.Once
}

// job is one sample run: a single simulator execution of a benchmark
// under an environment with a derived seed.
type job struct {
	ctx  context.Context
	b    *workload.Benchmark
	env  workload.Env
	seed int64
	out  *float64
	err  *error
	wg   *sync.WaitGroup
}

// New starts an engine with its worker pool.
func New(o Options) *Engine {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	e := &Engine{
		workers: w,
		jobs:    make(chan job),
		cals:    map[string]*calEntry{},
	}
	for i := 0; i < w; i++ {
		go e.worker()
	}
	return e
}

// Workers reports the pool size.
func (e *Engine) Workers() int { return e.workers }

// Close shuts the worker pool down.  Outstanding Measure calls complete;
// new ones panic.
func (e *Engine) Close() {
	e.closeOnce.Do(func() { close(e.jobs) })
}

func (e *Engine) worker() {
	for j := range e.jobs {
		if err := j.ctx.Err(); err != nil {
			*j.err = err
		} else {
			*j.out, *j.err = workload.Run(j.b, j.env, j.seed)
		}
		j.wg.Done()
	}
}

// Measure fans the measurement's n samples out across the pool and
// summarises them in seed order.  The summary is bit-identical to
// workload.Measure for the same inputs: sample i always runs with
// workload.SampleSeed(seed, i) regardless of which worker executes it or
// in what order samples complete.
func (e *Engine) Measure(ctx context.Context, b *workload.Benchmark, env workload.Env, n int, seed int64) (stats.Summary, error) {
	if err := ctx.Err(); err != nil {
		return stats.Summary{}, err
	}
	xs := make([]float64, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		e.jobs <- job{ctx: ctx, b: b, env: env, seed: workload.SampleSeed(seed, i), out: &xs[i], err: &errs[i], wg: &wg}
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return stats.Summary{}, err
		}
	}
	return stats.Summarise(xs), nil
}
