// Package engine is the concurrent experiment execution engine.  It
// turns the paper's evaluation — six-plus samples per point across large
// cost-function sweeps on two simulated machines (§4.1) — from a strictly
// sequential stdout dump into scheduled, cancellable, queryable jobs:
//
//   - a worker pool fans individual (profile, experiment, size, sample)
//     measurements out across GOMAXPROCS workers; sample seeds are derived
//     positionally (workload.SampleSeed), so a pooled run is bit-identical
//     to the sequential one for the same base seed;
//
//   - a process-wide calibration cache keyed by (profile, sizes, seed)
//     computes each Figure 4 curve once instead of once per driver;
//
//   - every experiment produces a structured Result (tables, fitted
//     sensitivities, measurement counts, wall time) serialized to JSON
//     alongside the existing ASCII tables;
//
//   - the Server in this package exposes runs over HTTP for cmd/wmmd.
package engine

import (
	"context"
	"runtime"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Options configures an Engine.
type Options struct {
	// Workers is the sample-level worker-pool size; GOMAXPROCS if <= 0.
	Workers int
	// Registry receives the engine's metrics; a private registry is
	// created if nil.
	Registry *metrics.Registry
}

// engineMetrics are the engine's instruments: what the worker pool and
// calibration cache record about themselves.
type engineMetrics struct {
	jobsExecuted  *metrics.Counter   // samples run to completion
	jobsCancelled *metrics.Counter   // samples skipped or unsent due to cancellation
	queueWait     *metrics.Histogram // enqueue → worker pickup
	sampleRun     *metrics.Histogram // one simulator execution
	workersBusy   *metrics.Gauge     // workers currently running a sample
	workers       *metrics.Gauge     // pool size (constant per engine)
	measurements  *metrics.Counter   // Measure calls
	calHits       *metrics.Counter   // calibration cache reuses
	calMisses     *metrics.Counter   // calibration cache computations
	experiments   *metrics.Counter   // experiments finished, by outcome
	experimentDur *metrics.Histogram // wall time of one experiment
}

func newEngineMetrics(r *metrics.Registry) *engineMetrics {
	return &engineMetrics{
		jobsExecuted:  r.Counter("wmm_engine_jobs_executed_total", "Sample jobs run to completion by the worker pool."),
		jobsCancelled: r.Counter("wmm_engine_jobs_cancelled_total", "Sample jobs skipped or unsent because their run was cancelled."),
		queueWait:     r.Histogram("wmm_engine_job_queue_wait_seconds", "Time a sample job waits between enqueue and worker pickup.", nil),
		sampleRun:     r.Histogram("wmm_engine_sample_run_seconds", "Duration of one simulator sample execution.", nil),
		workersBusy:   r.Gauge("wmm_engine_workers_busy", "Workers currently executing a sample."),
		workers:       r.Gauge("wmm_engine_workers", "Sample worker-pool size."),
		measurements:  r.Counter("wmm_engine_measurements_total", "Measurements (n-sample summaries) requested."),
		calHits:       r.Counter("wmm_engine_calibration_cache_hits_total", "Calibration curves served from the cache."),
		calMisses:     r.Counter("wmm_engine_calibration_cache_misses_total", "Calibration curves computed (cache misses)."),
		experiments:   r.Counter("wmm_engine_experiments_total", "Experiments finished, by outcome.", "outcome"),
		experimentDur: r.Histogram("wmm_engine_experiment_seconds", "Wall time of one experiment driver.", nil),
	}
}

// Engine schedules measurements across a worker pool and caches
// calibrations.  It implements experiments.Runtime, so drivers run
// against it without knowing they are pooled.  An Engine is safe for
// concurrent use; Close releases its workers.
type Engine struct {
	workers int
	jobs    chan job
	reg     *metrics.Registry
	met     *engineMetrics

	calMu  sync.Mutex
	cals   map[string]*calEntry
	hits   int
	misses int

	closeOnce sync.Once
}

// job is one sample run: a single simulator execution of a benchmark
// under an environment with a derived seed.
type job struct {
	ctx      context.Context
	b        *workload.Benchmark
	env      workload.Env
	seed     int64
	out      *float64
	err      *error
	wg       *sync.WaitGroup
	enqueued time.Time
	run      func() (float64, error) // test seam; nil = workload.Run
}

// New starts an engine with its worker pool.
func New(o Options) *Engine {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	reg := o.Registry
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	e := &Engine{
		workers: w,
		jobs:    make(chan job),
		reg:     reg,
		met:     newEngineMetrics(reg),
		cals:    map[string]*calEntry{},
	}
	e.met.workers.Set(float64(w))
	for i := 0; i < w; i++ {
		go e.worker()
	}
	return e
}

// Metrics returns the engine's registry so callers (wmmd's /metrics,
// wmmbench -stats) can expose or print it.  The server registers its
// HTTP instruments into the same registry.
func (e *Engine) Metrics() *metrics.Registry { return e.reg }

// Workers reports the pool size.
func (e *Engine) Workers() int { return e.workers }

// Close shuts the worker pool down.  Outstanding Measure calls complete;
// new ones panic.
func (e *Engine) Close() {
	e.closeOnce.Do(func() { close(e.jobs) })
}

func (e *Engine) worker() {
	for j := range e.jobs {
		e.met.queueWait.Observe(time.Since(j.enqueued).Seconds())
		if err := j.ctx.Err(); err != nil {
			*j.err = err
			e.met.jobsCancelled.Inc()
		} else {
			e.met.workersBusy.Add(1)
			start := time.Now()
			if j.run != nil {
				*j.out, *j.err = j.run()
			} else {
				*j.out, *j.err = workload.Run(j.b, j.env, j.seed)
			}
			e.met.sampleRun.Observe(time.Since(start).Seconds())
			e.met.workersBusy.Add(-1)
			e.met.jobsExecuted.Inc()
		}
		j.wg.Done()
	}
}

// Measure fans the measurement's n samples out across the pool and
// summarises them in seed order.  The summary is bit-identical to
// workload.Measure for the same inputs: sample i always runs with
// workload.SampleSeed(seed, i) regardless of which worker executes it or
// in what order samples complete.
//
// Enqueueing selects on ctx, so cancelling a run unblocks a Measure that
// is waiting for busy workers: unsent samples are marked cancelled
// locally and only the already-enqueued ones are waited for.
func (e *Engine) Measure(ctx context.Context, b *workload.Benchmark, env workload.Env, n int, seed int64) (stats.Summary, error) {
	if err := ctx.Err(); err != nil {
		return stats.Summary{}, err
	}
	e.met.measurements.Inc()
	xs := make([]float64, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	wg.Add(n)
enqueue:
	for i := 0; i < n; i++ {
		j := job{ctx: ctx, b: b, env: env, seed: workload.SampleSeed(seed, i),
			out: &xs[i], err: &errs[i], wg: &wg, enqueued: time.Now()}
		select {
		case e.jobs <- j:
		case <-ctx.Done():
			for k := i; k < n; k++ {
				errs[k] = ctx.Err()
				wg.Done()
			}
			e.met.jobsCancelled.Add(float64(n - i))
			break enqueue
		}
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return stats.Summary{}, err
		}
	}
	return stats.Summarise(xs), nil
}
