package engine

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/optimize"
	"repro/internal/resultcache"
)

// ErrSaturated is returned when the dispatch queue cannot admit a new
// run's jobs.  The server maps it to 429 with a Retry-After hint.
var ErrSaturated = errors.New("dispatch queue saturated")

// ErrTenantSaturated is returned when a run's jobs would exceed its
// tenant's queued-jobs quota while the global queue still has room.
// The server maps it to the same 429 envelope as ErrSaturated.
var ErrTenantSaturated = errors.New("tenant queue quota exceeded")

// DefaultTenant is the tenant a request without an X-WMM-Tenant header
// or spec field belongs to.  Pre-tenancy clients all land here, which
// keeps their behaviour identical to the single-queue era.
const DefaultTenant = "default"

// DispatchOptions configures the sharded execution backend: a queue of
// experiment jobs served by local executor slots and by remote
// wmmworker processes leasing batches over HTTP.
type DispatchOptions struct {
	// LocalSlots is the number of local executor goroutines pulling from
	// the shared queue.  0 means the server's default experiment
	// parallelism; -1 disables local execution entirely (every job must
	// be leased by a remote worker).
	LocalSlots int
	// LeaseTTL is how long a granted lease stays valid between
	// heartbeats.  A lease not renewed within the TTL expires and its
	// unfinished jobs are re-queued.  Default 15s.
	LeaseTTL time.Duration
	// MaxBatch bounds the jobs handed out per lease.  Default 4.
	MaxBatch int
	// MaxQueue bounds the jobs admitted but not yet finished (queued,
	// leased, or executing locally).  A run whose jobs would exceed it
	// is refused with ErrSaturated.  Default 1024.
	MaxQueue int
	// RetryAfter is the backpressure hint attached to saturation
	// refusals.  Default 2s.
	RetryAfter time.Duration
	// SweepEvery is the lease-expiry reaper interval; LeaseTTL/4
	// clamped to [10ms, 5s] if 0.
	SweepEvery time.Duration
	// TenantMaxQueued bounds one tenant's admitted-but-unfinished jobs;
	// a run that would exceed it is refused with ErrTenantSaturated.
	// 0 means only the global MaxQueue applies.
	TenantMaxQueued int
	// TenantWeights sets per-tenant fair-share weights for the
	// weighted round-robin dequeue (default weight 1).  A tenant with
	// weight 2 gets two dequeues per rotation where the others get one.
	TenantWeights map[string]int
	// OnAssign, when non-nil, observes every remote assignment (a job
	// handed to a worker under a lease).  The server uses it to write
	// assignment records to the run store.
	OnAssign func(runID, experiment, worker string)
	// Cache, when non-nil, is consulted before every experiment job is
	// enqueued: an identical job (by content hash — see ResultKey) that
	// already completed is served from the cache, and identical jobs in
	// flight are merged single-flight so overlapping runs execute each
	// distinct job once.  Litmus shard jobs are not cached.
	Cache *resultcache.Cache
}

// withDefaults fills the zero values in.
func (o DispatchOptions) withDefaults(defaultSlots int) DispatchOptions {
	if o.LocalSlots == 0 {
		o.LocalSlots = defaultSlots
	}
	if o.LeaseTTL <= 0 {
		o.LeaseTTL = 15 * time.Second
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 4
	}
	if o.MaxQueue <= 0 {
		o.MaxQueue = 1024
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = 2 * time.Second
	}
	if o.SweepEvery <= 0 {
		o.SweepEvery = o.LeaseTTL / 4
		if o.SweepEvery < 10*time.Millisecond {
			o.SweepEvery = 10 * time.Millisecond
		}
		if o.SweepEvery > 5*time.Second {
			o.SweepEvery = 5 * time.Second
		}
	}
	return o
}

// dispatchJob is one experiment job flowing through the shared queue.
// Its lifecycle is enqueue → (local pickup | lease) → finish, with
// lease expiry pushing it back to enqueue.  All mutable fields are
// guarded by the dispatcher's mutex; finish-exactly-once is enforced by
// the done flag, so a late result upload for a job that was already
// re-executed (or cancelled) is dropped instead of delivered twice.
type dispatchJob struct {
	runID  string
	tenant string
	name   string
	opts   RunOptions
	// litmus, when non-nil, makes this a litmus-shard job instead of an
	// experiment job; name then carries the shard name.
	litmus *LitmusShard
	// optimize, when non-nil, makes this an optimizer-cell job; name
	// then carries the cell name.
	optimize *optimize.Cell
	ctx      context.Context

	started func(name string) // ExperimentStarted relay; fired once
	deliver func(res *Result) // resolves the run's waiter; called once

	done         bool
	startedFired bool
	semHeld      bool // holds one of its run's parallel slots
	sem          chan struct{}

	// cacheKey is the job's content hash ("" = the run bypassed the cache
	// or no cache is configured).  cacheLead marks the job as its key's
	// single-flight leader: its finish must settle the key (Fulfill on
	// success, Abandon otherwise) because followers are parked on it.
	cacheKey  string
	cacheLead bool
}

// lease is one outstanding grant to a remote worker.
type lease struct {
	id      string
	worker  string
	jobs    []*dispatchJob
	expires time.Time
}

// dispatchMetrics are the dispatcher's instruments.
type dispatchMetrics struct {
	queueDepth    *metrics.Gauge   // jobs waiting for an executor
	inflight      *metrics.Gauge   // jobs admitted, not yet finished
	jobsDone      *metrics.Counter // jobs finished, by mode
	leasesGranted *metrics.Counter
	leasesExpired *metrics.Counter
	leasesActive  *metrics.Gauge
	requeues      *metrics.Counter // jobs returned to the queue from lost leases
	rejected      *metrics.Counter // run submissions refused by admission control

	tenantDepth    *metrics.Gauge   // queued jobs, by tenant
	tenantInflight *metrics.Gauge   // admitted-not-finished jobs, by tenant
	tenantDone     *metrics.Counter // finished jobs, by tenant
	tenantRejected *metrics.Counter // quota refusals, by tenant and reason
}

func newDispatchMetrics(r *metrics.Registry) *dispatchMetrics {
	return &dispatchMetrics{
		queueDepth:    r.Gauge("wmm_dispatch_queue_depth", "Experiment jobs waiting for a local slot or worker lease."),
		inflight:      r.Gauge("wmm_dispatch_jobs_inflight", "Experiment jobs admitted and not yet finished (queued, leased, or executing)."),
		jobsDone:      r.Counter("wmm_dispatch_jobs_completed_total", "Experiment jobs finished, by execution mode.", "mode"),
		leasesGranted: r.Counter("wmm_dispatch_leases_granted_total", "Job leases granted to workers."),
		leasesExpired: r.Counter("wmm_dispatch_leases_expired_total", "Leases that expired without completing; their jobs were re-queued."),
		leasesActive:  r.Gauge("wmm_dispatch_leases_active", "Leases currently outstanding."),
		requeues:      r.Counter("wmm_dispatch_requeues_total", "Jobs re-queued from expired or partially completed leases."),
		rejected:      r.Counter("wmm_dispatch_rejected_total", "Run submissions refused by admission control (429)."),

		tenantDepth:    r.Gauge("wmm_tenant_queue_depth", "Experiment jobs waiting in a tenant's fair-share queue.", "tenant"),
		tenantInflight: r.Gauge("wmm_tenant_jobs_inflight", "Experiment jobs admitted for a tenant and not yet finished.", "tenant"),
		tenantDone:     r.Counter("wmm_tenant_jobs_completed_total", "Experiment jobs finished, by tenant.", "tenant"),
		tenantRejected: r.Counter("wmm_tenant_rejected_total", "Submissions refused by quota, by tenant and reason.", "tenant", "reason"),
	}
}

// tenantQueue is one tenant's slice of the shared dispatch queue.
type tenantQueue struct {
	jobs     []*dispatchJob
	credits  int // dequeues left in the current fair-share rotation
	admitted int // jobs admitted for this tenant, not yet finished
}

// Dispatcher shards runs' experiment jobs across local executor slots
// and remote workers leasing batches over HTTP.  Because every job is
// fully determined by (experiment, seed, samples, short) — positional
// seed derivation all the way down — it does not matter which process
// executes a job, how often it is re-executed after a lost lease, or in
// what order jobs complete: the assembled run is byte-identical to a
// purely local one.
// Queued jobs live in per-tenant queues drained by a credit-based
// weighted round-robin, so one tenant flooding the queue delays its own
// later jobs, not other tenants' — a saturating tenant cannot starve a
// light one.  Within a tenant the order stays FIFO with lost-lease
// requeues at the front, exactly as the old single queue behaved.
type Dispatcher struct {
	eng *Engine
	opt DispatchOptions
	met *dispatchMetrics

	mu       sync.Mutex
	queues   map[string]*tenantQueue
	rr       []string // round-robin rotation over tenants with queues
	rrNext   int
	queued   int // total jobs across all tenant queues
	leases   map[string]*lease
	leaseSeq int
	admitted int // jobs admitted, not yet finished

	notify   chan struct{} // wakes one blocked local slot
	stop     chan struct{}
	stopOnce sync.Once
}

// NewDispatcher starts a dispatcher over the engine.  defaultSlots is
// the local-slot count used when the options leave LocalSlots zero.
func NewDispatcher(eng *Engine, o DispatchOptions, defaultSlots int) *Dispatcher {
	o = o.withDefaults(defaultSlots)
	d := &Dispatcher{
		eng:    eng,
		opt:    o,
		met:    newDispatchMetrics(eng.Metrics()),
		queues: map[string]*tenantQueue{},
		leases: map[string]*lease{},
		notify: make(chan struct{}, 1),
		stop:   make(chan struct{}),
	}
	for i := 0; i < o.LocalSlots; i++ {
		go d.localSlot()
	}
	go d.reaper()
	return d
}

// Close stops the local slots and the lease reaper.  In-flight local
// executions finish on their own (their run contexts bound them); call
// Close only after every run has been cancelled or completed.
func (d *Dispatcher) Close() {
	d.stopOnce.Do(func() { close(d.stop) })
}

// RetryAfter is the backpressure hint for saturation refusals.
func (d *Dispatcher) RetryAfter() time.Duration { return d.opt.RetryAfter }

// weight returns a tenant's fair-share weight (>= 1).
func (d *Dispatcher) weight(tenant string) int {
	if w := d.opt.TenantWeights[tenant]; w > 1 {
		return w
	}
	return 1
}

// tenantLocked returns the tenant's queue, creating it — and entering
// the tenant into the round-robin rotation — on first use.
func (d *Dispatcher) tenantLocked(tenant string) *tenantQueue {
	q := d.queues[tenant]
	if q == nil {
		q = &tenantQueue{credits: d.weight(tenant)}
		d.queues[tenant] = q
		d.rr = append(d.rr, tenant)
	}
	return q
}

// dropTenantLocked retires an idle tenant (nothing queued, nothing
// admitted) from the rotation so the map tracks active tenants only.
func (d *Dispatcher) dropTenantLocked(tenant string) {
	q := d.queues[tenant]
	if q == nil || q.admitted > 0 || len(q.jobs) > 0 {
		return
	}
	delete(d.queues, tenant)
	for i, name := range d.rr {
		if name == tenant {
			d.rr = append(d.rr[:i], d.rr[i+1:]...)
			if d.rrNext > i {
				d.rrNext--
			}
			break
		}
	}
	if d.rrNext >= len(d.rr) {
		d.rrNext = 0
	}
}

// TryAdmit reserves queue capacity for n of the tenant's jobs, refusing
// with ErrSaturated when the global queue is full and ErrTenantSaturated
// when the tenant's own quota is.  The reservation is released job by
// job as they finish.
func (d *Dispatcher) TryAdmit(tenant string, n int) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.admitted+n > d.opt.MaxQueue {
		d.met.rejected.Inc()
		d.met.tenantRejected.Inc(tenant, "queue_full")
		return ErrSaturated
	}
	q := d.tenantLocked(tenant)
	if d.opt.TenantMaxQueued > 0 && q.admitted+n > d.opt.TenantMaxQueued {
		d.met.rejected.Inc()
		d.met.tenantRejected.Inc(tenant, "tenant_quota")
		d.dropTenantLocked(tenant)
		return ErrTenantSaturated
	}
	d.admitted += n
	q.admitted += n
	d.met.inflight.Set(float64(d.admitted))
	d.met.tenantInflight.Set(float64(q.admitted), tenant)
	return nil
}

// admitForce reserves capacity unconditionally (resumed runs must never
// be refused; a brief overshoot beats losing checkpointed work).  n may
// be negative to release an over-reservation.
func (d *Dispatcher) admitForce(tenant string, n int) {
	d.mu.Lock()
	d.admitted += n
	q := d.tenantLocked(tenant)
	q.admitted += n
	if q.admitted < 0 {
		q.admitted = 0
	}
	d.met.inflight.Set(float64(d.admitted))
	d.met.tenantInflight.Set(float64(q.admitted), tenant)
	d.dropTenantLocked(tenant)
	d.mu.Unlock()
}

// Run shards the named experiments across the queue and assembles their
// results in request order, with the same error semantics as
// Engine.Run: the first failure in request order is returned alongside
// the full result set.  reserved is how many jobs the caller already
// admitted via TryAdmit (0 for resumed runs, which bypass admission).
// tenant names the fair-share queue the jobs join ("" = "default").
func (d *Dispatcher) Run(ctx context.Context, runID, tenant string, names []string, o RunOptions, sink Sink, reserved int) ([]*Result, error) {
	if tenant == "" {
		tenant = DefaultTenant
	}
	var exps []experiments.Experiment
	if len(names) == 0 {
		exps = experiments.All()
	} else {
		for _, name := range names {
			ex, err := experiments.ByName(name)
			if err != nil {
				d.admitForce(tenant, -reserved)
				return nil, err
			}
			exps = append(exps, ex)
		}
	}

	parallel := o.Parallel
	if parallel <= 0 {
		parallel = 1
	}
	if parallel > len(exps) {
		parallel = len(exps)
	}
	sem := make(chan struct{}, parallel)

	// Build every job up front so the cancellation watcher sees the full
	// set even while the enqueue loop is still throttling.
	results := make([]*Result, len(exps))
	var wg sync.WaitGroup
	var jobs []*dispatchJob
	for i, ex := range exps {
		if prev, ok := o.Completed[ex.Name]; ok && prev != nil {
			// Restored from a checkpoint: no execution, no sink events.
			results[i] = prev
			continue
		}
		i := i
		wg.Add(1)
		j := &dispatchJob{
			runID:  runID,
			tenant: tenant,
			name:   ex.Name,
			opts:   RunOptions{Samples: o.Samples, Seed: o.Seed, Short: o.Short, Adaptive: o.Adaptive},
			ctx:    ctx,
			sem:    sem,
		}
		if d.opt.Cache != nil && !o.NoCache {
			j.cacheKey = ResultKey(ex.Name, j.opts)
		}
		j.started = func(name string) {
			if sink != nil {
				sink.ExperimentStarted(name)
			}
		}
		j.deliver = func(res *Result) {
			results[i] = res
			if sink != nil {
				sink.ExperimentDone(res)
			}
			wg.Done()
		}
		jobs = append(jobs, j)
	}

	return d.drive(ctx, tenant, jobs, sem, &wg, results, reserved)
}

// RunLitmus shards a litmus campaign across the queue, exactly as Run
// shards experiments: shard jobs mix with experiment jobs on the same
// queue, under the same leases, with the same finish-once and requeue
// semantics.  Results come back in shard order.
func (d *Dispatcher) RunLitmus(ctx context.Context, runID, tenant string, shards []LitmusShard, parallel int, sink Sink, reserved int) ([]*Result, error) {
	if tenant == "" {
		tenant = DefaultTenant
	}
	if parallel <= 0 {
		parallel = 1
	}
	if parallel > len(shards) {
		parallel = len(shards)
	}
	sem := make(chan struct{}, parallel)

	results := make([]*Result, len(shards))
	var wg sync.WaitGroup
	var jobs []*dispatchJob
	for i, sh := range shards {
		sh := sh
		wg.Add(1)
		j := &dispatchJob{
			runID:  runID,
			tenant: tenant,
			name:   sh.name(),
			litmus: &sh,
			ctx:    ctx,
			sem:    sem,
		}
		j.started = func(name string) {
			if sink != nil {
				sink.ExperimentStarted(name)
			}
		}
		i := i
		j.deliver = func(res *Result) {
			results[i] = res
			if sink != nil {
				sink.ExperimentDone(res)
			}
			wg.Done()
		}
		jobs = append(jobs, j)
	}
	return d.drive(ctx, tenant, jobs, sem, &wg, results, reserved)
}

// RunOptimizeCells fans one wave of optimizer cells across the queue,
// exactly as RunLitmus fans shards — same leases, same finish-once and
// requeue semantics, results in cell order.  Unlike litmus shards,
// cells are content-addressed: identical cells (same engine version,
// cell identity and normalised spec) resolve from the result cache, so
// a resubmitted job re-measures nothing.
func (d *Dispatcher) RunOptimizeCells(ctx context.Context, runID, tenant string, cells []optimize.Cell, parallel int, noCache bool, sink Sink, reserved int) ([]*Result, error) {
	if tenant == "" {
		tenant = DefaultTenant
	}
	if parallel <= 0 {
		parallel = 1
	}
	if parallel > len(cells) {
		parallel = len(cells)
	}
	sem := make(chan struct{}, parallel)

	results := make([]*Result, len(cells))
	var wg sync.WaitGroup
	var jobs []*dispatchJob
	for i, cell := range cells {
		cell := cell
		wg.Add(1)
		j := &dispatchJob{
			runID:    runID,
			tenant:   tenant,
			name:     cell.Name(),
			optimize: &cell,
			ctx:      ctx,
			sem:      sem,
		}
		if d.opt.Cache != nil && !noCache {
			if key, err := OptimizeCellKey(cell); err == nil {
				j.cacheKey = key
			}
		}
		j.started = func(name string) {
			if sink != nil {
				sink.ExperimentStarted(name)
			}
		}
		i := i
		j.deliver = func(res *Result) {
			results[i] = res
			if sink != nil {
				sink.ExperimentDone(res)
			}
			wg.Done()
		}
		jobs = append(jobs, j)
	}
	return d.drive(ctx, tenant, jobs, sem, &wg, results, reserved)
}

// drive is the shared dispatch tail: reconcile the admission
// reservation, arm the cancellation watcher, enqueue under the run's
// parallelism budget, and assemble the first failure in request order.
func (d *Dispatcher) drive(ctx context.Context, tenant string, jobs []*dispatchJob, sem chan struct{}, wg *sync.WaitGroup, results []*Result, reserved int) ([]*Result, error) {
	// Reconcile the caller's reservation with the jobs actually created
	// (a resumed run reserves nothing; restored experiments need no slot).
	d.admitForce(tenant, len(jobs)-reserved)

	// The watcher resolves every unfinished job the moment the run's
	// context ends: queued jobs are withdrawn, leased jobs are written
	// off (a late upload is dropped by the done guard), and locally
	// executing jobs are aborted by the context itself — their eventual
	// finish is then a no-op.
	watcherDone := make(chan struct{})
	go func() {
		defer close(watcherDone)
		<-ctx.Done()
		d.cancelJobs(jobs, ctx.Err())
	}()

	// Enqueue under the run's parallelism budget: at most `parallel`
	// jobs of this run are in flight across the whole fleet at once.
	// Cache-resolved jobs (hits and single-flight followers) consume no
	// slot — only jobs that will actually execute are throttled.
	for _, j := range jobs {
		if d.consultCache(j) {
			continue
		}
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
			// The watcher resolves this job and the rest.
			continue
		}
		if !d.push(j) {
			// Already resolved (cancelled) before it could be queued;
			// return the unused slot.
			<-sem
		}
	}
	wg.Wait()

	for _, r := range results {
		if r.Err != "" {
			return results, fmt.Errorf("%s: %s", r.Experiment, r.Err)
		}
	}
	return results, nil
}

// consultCache resolves a job against the result cache before it is
// enqueued, reporting true when the job needs no executor: it was served
// from a cache layer (finished immediately, with provenance recorded) or
// it is now following an identical in-flight job and will be resolved
// when that job's leader settles.  False means the job must execute —
// either the cache is not in play, or the job was appointed its key's
// single-flight leader.
func (d *Dispatcher) consultCache(j *dispatchJob) bool {
	c := d.opt.Cache
	if c == nil || j.cacheKey == "" {
		return false
	}
	data, src, state := c.Acquire(j.cacheKey, func(data []byte, ok bool) {
		d.onLeaderSettled(j, data, ok)
	})
	switch state {
	case resultcache.Hit:
		if res := decodeCachedResult(data, j.name); res != nil {
			res.Cache = src
			d.fireStarted(j)
			d.finish(j, res, "cache")
			return true
		}
		// Poisoned entry: the bytes do not decode to this experiment's
		// result (e.g. a corrupted persisted file).  Drop it and lead a
		// fresh execution — the Fulfill on success overwrites both layers
		// with good bytes, so the cache self-heals.
		c.Delete(j.cacheKey)
		j.cacheLead = true
		return false
	case resultcache.Leader:
		j.cacheLead = true
		return false
	default: // resultcache.Following
		return true
	}
}

// onLeaderSettled is the single-flight follower callback: the identical
// job's leader has settled its key.  On success the leader's result is
// delivered here with singleflight provenance; on failure (or a value
// that does not decode) the job falls back to its own execution,
// re-entering the enqueue path off the leader's goroutine.
func (d *Dispatcher) onLeaderSettled(j *dispatchJob, data []byte, ok bool) {
	if ok {
		if res := decodeCachedResult(data, j.name); res != nil {
			res.Cache = resultcache.SourceSingleflight
			d.fireStarted(j)
			d.finish(j, res, "cache")
			return
		}
	}
	go func() {
		select {
		case j.sem <- struct{}{}:
			// Lead the key ourselves now so a successful fallback still
			// populates the cache (Fulfill without registered followers
			// just commits the value).
			j.cacheLead = true
			if !d.push(j) {
				<-j.sem
			}
		case <-j.ctx.Done():
			// The run's cancellation watcher resolves the job.
		}
	}()
}

// decodeCachedResult decodes a cached value, returning nil unless it is
// a well-formed result for the expected experiment (the poisoning guard:
// content hashes include the engine version, but the decode check keeps
// even a corrupted or mis-keyed entry from being delivered as a result).
func decodeCachedResult(data []byte, name string) *Result {
	var res Result
	if err := json.Unmarshal(data, &res); err != nil || res.Experiment != name {
		return nil
	}
	return &res
}

// push appends a job to its tenant's queue, reporting false if the job
// was already finished (cancelled before enqueue).  Marks the job as
// holding one of its run's parallel slots.
func (d *Dispatcher) push(j *dispatchJob) bool {
	d.mu.Lock()
	if j.done {
		d.mu.Unlock()
		return false
	}
	j.semHeld = true
	q := d.tenantLocked(j.tenant)
	q.jobs = append(q.jobs, j)
	d.queued++
	d.met.queueDepth.Set(float64(d.queued))
	d.met.tenantDepth.Set(float64(len(q.jobs)), j.tenant)
	d.mu.Unlock()
	d.wake()
	return true
}

// requeue returns lost-lease jobs to the front of their tenants' queues
// so they are retried before newer work.
func (d *Dispatcher) requeue(jobs []*dispatchJob) int {
	d.mu.Lock()
	n := 0
	for _, j := range jobs {
		if j.done {
			continue
		}
		q := d.tenantLocked(j.tenant)
		q.jobs = append([]*dispatchJob{j}, q.jobs...)
		d.queued++
		d.met.tenantDepth.Set(float64(len(q.jobs)), j.tenant)
		n++
	}
	if n > 0 {
		d.met.queueDepth.Set(float64(d.queued))
		d.met.requeues.Add(float64(n))
	}
	d.mu.Unlock()
	if n > 0 {
		d.wake()
	}
	return n
}

// wake nudges one blocked local slot.
func (d *Dispatcher) wake() {
	select {
	case d.notify <- struct{}{}:
	default:
	}
}

// popLocked removes the next job under weighted round-robin: the
// rotation visits tenants in arrival order, each tenant spending one
// fair-share credit per dequeue; when every tenant with queued work is
// out of credits, all credits replenish to the tenants' weights and the
// rotation starts a new round.  Jobs already resolved (cancelled while
// queued) are returned like any other and skipped by the caller.
func (d *Dispatcher) popLocked() *dispatchJob {
	if d.queued == 0 {
		return nil
	}
	for pass := 0; pass < 2; pass++ {
		n := len(d.rr)
		for i := 0; i < n; i++ {
			idx := (d.rrNext + i) % n
			q := d.queues[d.rr[idx]]
			if len(q.jobs) == 0 || q.credits <= 0 {
				continue
			}
			j := q.jobs[0]
			q.jobs = q.jobs[1:]
			q.credits--
			d.queued--
			d.met.tenantDepth.Set(float64(len(q.jobs)), d.rr[idx])
			if q.credits > 0 && len(q.jobs) > 0 {
				d.rrNext = idx // tenant may spend its remaining credits
			} else {
				d.rrNext = (idx + 1) % n
			}
			return j
		}
		// Work is queued but every tenant holding it is out of credits:
		// replenish and take a second pass.
		for _, name := range d.rr {
			d.queues[name].credits = d.weight(name)
		}
	}
	return nil
}

// pop removes the next live job, or nil if the queues are empty.
func (d *Dispatcher) pop() *dispatchJob {
	d.mu.Lock()
	defer d.mu.Unlock()
	for {
		j := d.popLocked()
		if j == nil {
			d.met.queueDepth.Set(float64(d.queued))
			return nil
		}
		if j.done {
			continue
		}
		d.met.queueDepth.Set(float64(d.queued))
		return j
	}
}

// localSlot is one local executor: it pulls jobs from the shared queue
// and runs them on the engine, exactly as a remote worker would in its
// own process.
func (d *Dispatcher) localSlot() {
	for {
		j := d.pop()
		if j == nil {
			select {
			case <-d.notify:
				continue
			case <-d.stop:
				return
			}
		}
		d.execute(j)
	}
}

// execute runs one job locally and finishes it.
func (d *Dispatcher) execute(j *dispatchJob) {
	d.fireStarted(j)
	var res *Result
	if err := j.ctx.Err(); err != nil {
		res = d.cancelledResult(j, err)
	} else {
		var rerr error
		if j.litmus != nil {
			res, rerr = RunLitmusShard(j.ctx, *j.litmus)
		} else if j.optimize != nil {
			res, rerr = RunOptimizeCell(j.ctx, *j.optimize)
		} else {
			res, rerr = d.eng.RunExperiment(j.ctx, j.name, j.opts)
		}
		if rerr != nil {
			// Unknown experiment or malformed shard — validated at
			// submission, so this is defensive; surface it as a failed
			// result.
			res = &Result{Experiment: j.name, Status: StatusFailed, Err: rerr.Error()}
		}
	}
	d.finish(j, res, "local")
}

// fireStarted relays ExperimentStarted exactly once per job, however
// many times the job is handed out after lost leases.
func (d *Dispatcher) fireStarted(j *dispatchJob) {
	d.mu.Lock()
	fire := !j.startedFired && !j.done
	j.startedFired = true
	d.mu.Unlock()
	if fire {
		j.started(j.name)
	}
}

// finish resolves a job exactly once, releasing its run-parallelism
// slot and its admission reservation.  Late duplicates (an upload after
// the lease expired and the job re-ran, or a local execution racing the
// cancellation watcher) are dropped.
func (d *Dispatcher) finish(j *dispatchJob, res *Result, mode string) bool {
	d.mu.Lock()
	if j.done {
		d.mu.Unlock()
		return false
	}
	j.done = true
	semHeld := j.semHeld
	d.admitted--
	d.met.inflight.Set(float64(d.admitted))
	if q := d.queues[j.tenant]; q != nil {
		q.admitted--
		if q.admitted < 0 {
			q.admitted = 0
		}
		d.met.tenantInflight.Set(float64(q.admitted), j.tenant)
		d.dropTenantLocked(j.tenant)
	}
	d.met.tenantDone.Inc(j.tenant)
	d.mu.Unlock()
	d.settleCache(j, res, mode)
	d.met.jobsDone.Inc(mode)
	if semHeld {
		<-j.sem
	}
	j.deliver(res)
	return true
}

// settleCache settles a single-flight key led by this job: a successful
// execution is committed (unparking followers with the value), anything
// else — failure, cancellation, write-off — abandons the key so
// followers arrange their own execution and the next requester retries.
func (d *Dispatcher) settleCache(j *dispatchJob, res *Result, mode string) {
	c := d.opt.Cache
	if c == nil || !j.cacheLead {
		return
	}
	if mode != "cancelled" && res != nil && res.Status == StatusOK && res.Cache == "" {
		if data, err := json.Marshal(res); err == nil {
			c.Fulfill(j.cacheKey, data)
			return
		}
	}
	c.Abandon(j.cacheKey)
}

// cancelJobs resolves every unfinished job of a run whose context
// ended, withdrawing queued ones so they are never handed out.
func (d *Dispatcher) cancelJobs(jobs []*dispatchJob, cause error) {
	if cause == nil {
		cause = context.Canceled
	}
	d.mu.Lock()
	doomed := map[*dispatchJob]bool{}
	for _, j := range jobs {
		if !j.done {
			doomed[j] = true
		}
	}
	for tenant, q := range d.queues {
		live := q.jobs[:0]
		for _, p := range q.jobs {
			if !doomed[p] {
				live = append(live, p)
			} else {
				d.queued--
			}
		}
		q.jobs = live
		d.met.tenantDepth.Set(float64(len(q.jobs)), tenant)
	}
	d.met.queueDepth.Set(float64(d.queued))
	d.mu.Unlock()
	for _, j := range jobs {
		d.finish(j, d.cancelledResult(j, cause), "cancelled")
	}
}

// cancelledResult synthesizes the result of a job written off by
// cancellation, mirroring what runOne produces for a cancelled driver.
func (d *Dispatcher) cancelledResult(j *dispatchJob, cause error) *Result {
	r := &Result{Experiment: j.name, Status: StatusCancelled, Err: cause.Error()}
	if ex, err := experiments.ByName(j.name); err == nil {
		r.Paper, r.Desc = ex.Paper, ex.Desc
	}
	return r
}

// Lease hands out up to max queued jobs (bounded by MaxBatch) under a
// new lease for the worker.  An empty grant (no lease created) means
// the queue had no work; workers poll again after their idle interval.
func (d *Dispatcher) Lease(worker string, max int) (id string, ttl time.Duration, jobs []*dispatchJob) {
	if max <= 0 || max > d.opt.MaxBatch {
		max = d.opt.MaxBatch
	}
	var granted []*dispatchJob
	d.mu.Lock()
	// Batches draw through the same weighted round-robin as local slots,
	// so remote capacity is fair-shared exactly like local capacity.
	for len(granted) < max {
		j := d.popLocked()
		if j == nil {
			break
		}
		if j.done {
			continue
		}
		granted = append(granted, j)
	}
	d.met.queueDepth.Set(float64(d.queued))
	if len(granted) == 0 {
		d.mu.Unlock()
		return "", 0, nil
	}
	d.leaseSeq++
	id = fmt.Sprintf("lease-%d", d.leaseSeq)
	d.leases[id] = &lease{id: id, worker: worker, jobs: granted, expires: time.Now().Add(d.opt.LeaseTTL)}
	d.met.leasesActive.Set(float64(len(d.leases)))
	d.mu.Unlock()
	d.met.leasesGranted.Inc()

	for _, j := range granted {
		d.fireStarted(j)
		if d.opt.OnAssign != nil {
			d.opt.OnAssign(j.runID, j.name, worker)
		}
	}
	return id, d.opt.LeaseTTL, granted
}

// Heartbeat renews a lease, reporting false if it is unknown or already
// expired — the worker should abandon the batch (its jobs have been
// re-queued).
func (d *Dispatcher) Heartbeat(id string) (time.Duration, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	l, ok := d.leases[id]
	if !ok {
		return 0, false
	}
	l.expires = time.Now().Add(d.opt.LeaseTTL)
	return d.opt.LeaseTTL, true
}

// CompletedJob is one uploaded result, matched against a lease's jobs
// by (run, experiment).
type CompletedJob struct {
	RunID      string
	Experiment string
	Res        *Result
}

// Complete settles a lease with the worker's uploaded results.  Jobs
// the upload does not cover are re-queued; unmatched uploads are
// ignored.  ok=false means the lease is unknown (expired and reaped) —
// its jobs were already re-queued and any duplicate execution is
// absorbed by the finish-once guard, so the worker just drops the
// batch.
func (d *Dispatcher) Complete(id string, uploaded []CompletedJob) (accepted, requeued int, ok bool) {
	d.mu.Lock()
	l, found := d.leases[id]
	if !found {
		d.mu.Unlock()
		return 0, 0, false
	}
	delete(d.leases, id)
	d.met.leasesActive.Set(float64(len(d.leases)))
	jobs := l.jobs
	d.mu.Unlock()

	byKey := map[string]*CompletedJob{}
	for i := range uploaded {
		u := &uploaded[i]
		byKey[u.RunID+"\x00"+u.Experiment] = u
	}
	var missing []*dispatchJob
	for _, j := range jobs {
		if u := byKey[j.runID+"\x00"+j.name]; u != nil && u.Res != nil {
			if d.finish(j, u.Res, "remote") {
				accepted++
			}
			continue
		}
		missing = append(missing, j)
	}
	requeued = d.requeue(missing)
	return accepted, requeued, true
}

// reaper expires leases whose heartbeats stopped, re-queuing their
// unfinished jobs so lost workers never lose work.
func (d *Dispatcher) reaper() {
	t := time.NewTicker(d.opt.SweepEvery)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			d.expire(time.Now())
		case <-d.stop:
			return
		}
	}
}

// expire reaps leases past their TTL, returning how many expired.
func (d *Dispatcher) expire(now time.Time) int {
	d.mu.Lock()
	var dead []*lease
	for id, l := range d.leases {
		if now.After(l.expires) {
			dead = append(dead, l)
			delete(d.leases, id)
		}
	}
	if len(dead) > 0 {
		d.met.leasesActive.Set(float64(len(d.leases)))
	}
	d.mu.Unlock()
	for _, l := range dead {
		d.met.leasesExpired.Inc()
		d.requeue(l.jobs)
	}
	return len(dead)
}
