package engine

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"

	"repro/internal/arch"
	"repro/internal/litmus"
	"repro/internal/litmus/gen"
)

// Litmus campaigns are the second job family the sharded backend
// carries: a generated batch of litmus tests (internal/litmus/gen) is
// cut into contiguous index ranges and fanned out through the same
// queue, leases and workers as experiment jobs.  Nothing but the shard
// descriptor crosses the wire — generation is a pure function of
// (seed, count, max_threads), so every party regenerates the identical
// batch and a shard executes byte-identically wherever it lands.

// LitmusSpec is the body of POST /api/v1/litmus: one generated litmus
// campaign against one simulated machine.
type LitmusSpec struct {
	// Arch selects the machine: "armv8" or "power7".
	Arch string `json:"arch"`
	// GenSeed drives the generator (0 = 1).
	GenSeed int64 `json:"gen_seed,omitempty"`
	// Count is the number of distinct generated tests.
	Count int `json:"count"`
	// MaxThreads caps the cycle length (2..4; 0 = 4).
	MaxThreads int `json:"max_threads,omitempty"`
	// Trials is the randomized trial count per test (0 = 400).
	Trials int `json:"trials,omitempty"`
	// Seed is the runner's base seed (0 = 1).
	Seed int64 `json:"seed,omitempty"`
	// ShardSize is the number of tests per dispatched shard (0 = 50).
	ShardSize int `json:"shard_size,omitempty"`
	// Parallel shards in flight at once (0 = server default).
	Parallel int `json:"parallel,omitempty"`
	// TimeoutMs bounds the whole campaign; 0 = no deadline.
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
	// Tenant names the fair-share queue and quota bucket the campaign is
	// accounted to (the X-WMM-Tenant header wins; empty = "default").
	Tenant string `json:"tenant,omitempty"`
}

// maxLitmusCount bounds a campaign; the recipe space saturates long
// before this, and gen.Generate fails loudly when a Count is impossible.
const maxLitmusCount = 20_000

// withDefaults fills the zero values in.
func (sp LitmusSpec) withDefaults() LitmusSpec {
	if sp.GenSeed == 0 {
		sp.GenSeed = 1
	}
	if sp.MaxThreads == 0 {
		sp.MaxThreads = 4
	}
	if sp.Trials == 0 {
		sp.Trials = 400
	}
	if sp.Seed == 0 {
		sp.Seed = 1
	}
	if sp.ShardSize == 0 {
		sp.ShardSize = 50
	}
	return sp
}

// validate rejects malformed specs, including configs the generator
// cannot satisfy (a dry generation is cheap: recipes only, no programs).
func (sp LitmusSpec) validate() error {
	if _, err := litmusProfile(sp.Arch); err != nil {
		return err
	}
	if sp.Count <= 0 || sp.Count > maxLitmusCount {
		return fmt.Errorf("count must be in [1,%d], got %d", maxLitmusCount, sp.Count)
	}
	if sp.MaxThreads < 2 || sp.MaxThreads > 4 {
		return fmt.Errorf("max_threads must be in [2,4], got %d", sp.MaxThreads)
	}
	if sp.Trials < 0 || sp.Seed < 0 || sp.GenSeed < 0 || sp.ShardSize < 0 || sp.Parallel < 0 || sp.TimeoutMs < 0 {
		return fmt.Errorf("trials, seeds, shard_size, parallel and timeout_ms must be >= 0")
	}
	if _, err := gen.Generate(gen.Config{Seed: sp.GenSeed, Count: sp.Count, MaxThreads: sp.MaxThreads}); err != nil {
		return err
	}
	return nil
}

// shards cuts the campaign into contiguous index ranges.
func (sp LitmusSpec) shards() []LitmusShard {
	var out []LitmusShard
	for lo := 0; lo < sp.Count; lo += sp.ShardSize {
		hi := lo + sp.ShardSize
		if hi > sp.Count {
			hi = sp.Count
		}
		out = append(out, LitmusShard{
			Arch:       sp.Arch,
			GenSeed:    sp.GenSeed,
			Count:      sp.Count,
			MaxThreads: sp.MaxThreads,
			Trials:     sp.Trials,
			Seed:       sp.Seed,
			Lo:         lo,
			Hi:         hi,
		})
	}
	return out
}

// LitmusShard is one dispatched unit of a campaign: tests [Lo,Hi) of
// the batch that (GenSeed, Count, MaxThreads) deterministically
// generates.  The executing process regenerates the batch and runs its
// slice; shipping indices instead of programs is what keeps the wire
// format trivial and the execution location irrelevant.
type LitmusShard struct {
	Arch       string `json:"arch"`
	GenSeed    int64  `json:"gen_seed,omitempty"`
	Count      int    `json:"count"`
	MaxThreads int    `json:"max_threads,omitempty"`
	Trials     int    `json:"trials,omitempty"`
	Seed       int64  `json:"seed,omitempty"`
	Lo         int    `json:"lo"`
	Hi         int    `json:"hi"`
}

// name is the shard's job identity on the queue and in results.
func (sh LitmusShard) name() string { return fmt.Sprintf("shard-%05d-%05d", sh.Lo, sh.Hi) }

// litmusProfile resolves a machine name.
func litmusProfile(name string) (*arch.Profile, error) {
	switch name {
	case "armv8":
		return arch.ARMv8(), nil
	case "power7":
		return arch.POWER7(), nil
	default:
		return nil, fmt.Errorf("unknown arch %q (want armv8 or power7)", name)
	}
}

// litmusTestOutcome is one test's outcome inside a shard result, the
// row format of the shard's canonical Output JSON.
type litmusTestOutcome struct {
	Name    string `json:"name"`
	Trials  int    `json:"trials"`
	Hits    int    `json:"hits"`
	Relaxed int    `json:"relaxed"`
}

// RunLitmusShard regenerates the shard's batch and runs its slice,
// returning the outcome counts as a Result whose Output is a canonical
// JSON array (one row per test, generation order).  Like experiment
// jobs, the Result is byte-identical (wall time aside) in whichever
// process executes it.  The error return is reserved for protocol-level
// mismatches (unknown arch, inconsistent indices); execution failures
// are contained in the Result.
func RunLitmusShard(ctx context.Context, sh LitmusShard) (*Result, error) {
	prof, err := litmusProfile(sh.Arch)
	if err != nil {
		return nil, err
	}
	if sh.Lo < 0 || sh.Hi > sh.Count || sh.Lo >= sh.Hi {
		return nil, fmt.Errorf("litmus shard range [%d,%d) outside batch of %d", sh.Lo, sh.Hi, sh.Count)
	}
	recipes, err := gen.Generate(gen.Config{Seed: sh.GenSeed, Count: sh.Count, MaxThreads: sh.MaxThreads})
	if err != nil {
		return nil, err
	}

	r := &litmus.Runner{Prof: prof, Trials: sh.Trials, Seed: sh.Seed}
	res := &Result{
		Experiment: sh.name(),
		Desc:       fmt.Sprintf("generated litmus tests [%d,%d) of %d on %s", sh.Lo, sh.Hi, sh.Count, prof.Name),
	}
	finish := func(status, errMsg string, outs []litmusTestOutcome) *Result {
		raw, merr := json.MarshalIndent(outs, "", "  ")
		if merr != nil {
			status, errMsg = StatusFailed, merr.Error()
		} else {
			res.Output = string(raw)
		}
		res.Status = status
		res.Err = errMsg
		return res
	}

	outs := make([]litmusTestOutcome, 0, sh.Hi-sh.Lo)
	for _, rc := range recipes[sh.Lo:sh.Hi] {
		if err := ctx.Err(); err != nil {
			return finish(StatusCancelled, err.Error(), outs), nil
		}
		tst := rc.Build()
		out, err := r.Run(tst)
		if err != nil {
			status := StatusFailed
			if len(outs) > 0 {
				status = StatusIncomplete
			}
			return finish(status, fmt.Sprintf("%s: %v", tst.Name, err), outs), nil
		}
		outs = append(outs, litmusTestOutcome{Name: tst.Name, Trials: out.Trials, Hits: out.Hits, Relaxed: out.Relaxed})
		res.Measurements++
		res.Samples += out.Trials
	}
	return finish(StatusOK, "", outs), nil
}

// runLitmusLocal executes a campaign's shards in-process with bounded
// parallelism — the fallback when no dispatcher is configured, with the
// same containment and ordering semantics as Engine.Run: failures stay
// in their shard's Result, results come back in shard order, and the
// first failure in that order is also returned as the campaign error.
func runLitmusLocal(ctx context.Context, shards []LitmusShard, parallel int, sink Sink) ([]*Result, error) {
	if parallel <= 0 {
		parallel = 1
	}
	if parallel > len(shards) {
		parallel = len(shards)
	}
	sem := make(chan struct{}, parallel)
	results := make([]*Result, len(shards))
	var wg sync.WaitGroup
	for i, sh := range shards {
		wg.Add(1)
		go func(i int, sh LitmusShard) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if sink != nil {
				sink.ExperimentStarted(sh.name())
			}
			res, err := RunLitmusShard(ctx, sh)
			if err != nil {
				res = &Result{Experiment: sh.name(), Status: StatusFailed, Err: err.Error()}
			}
			results[i] = res
			if sink != nil {
				sink.ExperimentDone(res)
			}
		}(i, sh)
	}
	wg.Wait()

	for _, r := range results {
		if r.Err != "" {
			return results, fmt.Errorf("%s: %s", r.Experiment, r.Err)
		}
	}
	return results, nil
}
