package engine

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"sync"

	"repro/internal/optimize"
)

// Optimizer jobs are the third job family the sharded backend carries:
// a fence-strategy search (internal/optimize) decomposes into cells —
// soundness gates, candidate measurements, sensitivity fits — and the
// cells fan out through the same queue, leases and workers as
// experiment jobs and litmus shards.  A cell is a pure function of its
// descriptor, so it executes byte-identically wherever it lands, and —
// unlike litmus shards — cells are content-addressed: resubmitting the
// same spec reuses the cluster result cache instead of re-measuring.

// OptimizeSpec is the body of POST /api/v1/optimize: one fence-strategy
// optimizer job (see optimize.Spec for the search parameters) plus the
// execution controls shared by every v1 job resource.
type OptimizeSpec struct {
	optimize.Spec
	// Parallel cells in flight at once (0 = server default).
	Parallel int `json:"parallel,omitempty"`
	// TimeoutMs bounds the whole job; 0 = no deadline.
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
	// NoCache bypasses the cluster result cache: every cell executes
	// even when a prior job already measured the identical cell.
	NoCache bool `json:"nocache,omitempty"`
	// Tenant names the fair-share queue and quota bucket the job is
	// accounted to (the X-WMM-Tenant header wins; empty = "default").
	Tenant string `json:"tenant,omitempty"`
}

// withDefaults normalises the embedded search spec; the wire-level
// controls keep their zero defaults until submission resolves them.
func (sp OptimizeSpec) withDefaults() OptimizeSpec {
	sp.Spec = sp.Spec.WithDefaults()
	return sp
}

// validate checks the normalised form.
func (sp OptimizeSpec) validate() error {
	if err := sp.Spec.Validate(); err != nil {
		return err
	}
	if sp.Parallel < 0 || sp.TimeoutMs < 0 {
		return fmt.Errorf("optimize: parallel and timeout_ms must be >= 0")
	}
	return nil
}

// OptimizeCellKey is the content hash of one optimizer cell: the engine
// version (gate and measurement semantics), the cell identity, and the
// normalised spec it was cut from.  Equal keys produce byte-identical
// results, so a resubmitted job's cells resolve from the result cache.
func OptimizeCellKey(cell optimize.Cell) (string, error) {
	spec, err := json.Marshal(cell.Spec)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256([]byte(fmt.Sprintf("%s|optimize=%s|spec=%s", EngineVersion, cell.Name(), spec)))
	return fmt.Sprintf("%x", sum), nil
}

// RunOptimizeCell executes one optimizer cell, returning its outcome as
// a Result whose Output is the cell result's canonical JSON.  The error
// return is reserved for protocol-level mismatches (malformed cell or
// spec); execution failures — an exploration that exceeds its budget, a
// measurement error — are contained in the Result, exactly as for
// experiment jobs and litmus shards.
func RunOptimizeCell(ctx context.Context, cell optimize.Cell) (*Result, error) {
	sp := cell.Spec.WithDefaults()
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	switch cell.Kind {
	case "gate", "measure", "fit":
	default:
		return nil, fmt.Errorf("optimize: unknown cell kind %q", cell.Kind)
	}
	res := &Result{
		Experiment: cell.Name(),
		Desc:       fmt.Sprintf("optimizer %s cell (%s on %s)", cell.Kind, sp.Platform, sp.Arch),
	}
	if err := ctx.Err(); err != nil {
		res.Status = StatusCancelled
		res.Err = err.Error()
		return res, nil
	}
	cr, err := optimize.RunCell(cell)
	if err != nil {
		res.Status = StatusFailed
		res.Err = err.Error()
		return res, nil
	}
	raw, err := json.MarshalIndent(cr, "", "  ")
	if err != nil {
		res.Status = StatusFailed
		res.Err = err.Error()
		return res, nil
	}
	res.Status = StatusOK
	res.Output = string(raw)
	switch cell.Kind {
	case "gate":
		res.Measurements = len(cr.Gate)
		for _, g := range cr.Gate {
			res.Samples += g.Runs
		}
	default:
		res.Measurements = 1
		res.Samples = sp.Samples
	}
	return res, nil
}

// decodeCellResult recovers the optimizer cell outcome embedded in a
// job Result's Output, rejecting results that are not a successful
// execution of the named cell.
func decodeCellResult(res *Result, name string) (optimize.CellResult, error) {
	var cr optimize.CellResult
	if res == nil {
		return cr, fmt.Errorf("optimize: cell %s produced no result", name)
	}
	if res.Status != StatusOK {
		msg := res.Err
		if msg == "" {
			msg = res.Status
		}
		return cr, fmt.Errorf("optimize: cell %s: %s", name, msg)
	}
	if err := json.Unmarshal([]byte(res.Output), &cr); err != nil {
		return cr, fmt.Errorf("optimize: cell %s: undecodable output: %v", name, err)
	}
	if cr.Cell != name {
		return cr, fmt.Errorf("optimize: cell %s: output names cell %q", name, cr.Cell)
	}
	return cr, nil
}

// runOptimizeLocal executes one wave of optimizer cells in-process with
// bounded parallelism — the fallback when no dispatcher is configured,
// with the same containment and ordering semantics as the other local
// drivers: failures stay in their cell's Result, results come back in
// cell order, and the first failure in that order is also returned.
func runOptimizeLocal(ctx context.Context, cells []optimize.Cell, parallel int, sink Sink) ([]*Result, error) {
	if parallel <= 0 {
		parallel = 1
	}
	if parallel > len(cells) {
		parallel = len(cells)
	}
	sem := make(chan struct{}, parallel)
	results := make([]*Result, len(cells))
	var wg sync.WaitGroup
	for i, cell := range cells {
		wg.Add(1)
		go func(i int, cell optimize.Cell) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if sink != nil {
				sink.ExperimentStarted(cell.Name())
			}
			res, err := RunOptimizeCell(ctx, cell)
			if err != nil {
				res = &Result{Experiment: cell.Name(), Status: StatusFailed, Err: err.Error()}
			}
			results[i] = res
			if sink != nil {
				sink.ExperimentDone(res)
			}
		}(i, cell)
	}
	wg.Wait()

	for _, r := range results {
		if r.Err != "" {
			return results, fmt.Errorf("%s: %s", r.Experiment, r.Err)
		}
	}
	return results, nil
}
