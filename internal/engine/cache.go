package engine

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/faultinject"
)

// defaultCalCacheCap bounds the calibration cache when Options leave
// CalCacheCap zero.  Each entry is one Figure 4 curve (~a few hundred
// bytes), so the cap is about predictability, not memory pressure: a
// long-lived wmmd serving many (profile, sizes, seed) combinations must
// not grow without bound.
const defaultCalCacheCap = 128

// calEntry computes one calibration at most once; concurrent requesters
// for the same key block on the sync.Once instead of duplicating the
// measurement (the Figure 4 curve is the single most repeated piece of
// work in the sequential harness — every scan driver rebuilt it).
type calEntry struct {
	once chan struct{} // closed when computed
	cal  core.Calibration
	err  error

	// done and lastUse are guarded by the engine's calMu.  done marks a
	// successfully computed entry (only those are eviction candidates —
	// evicting an in-flight entry would duplicate its computation);
	// lastUse orders entries for LRU eviction.
	done    bool
	lastUse int64
}

// calKey identifies a calibration: the exact profile, size sweep, and
// seed.  Any difference (e.g. Figure 1's extended sweep) is a distinct
// curve.
func calKey(prof *arch.Profile, sizes []int64, seed int64) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s|%d|", prof.Name, seed)
	for _, s := range sizes {
		fmt.Fprintf(&sb, "%d,", s)
	}
	return sb.String()
}

// Calibration returns the Figure 4 curve for (profile, sizes, seed),
// computing it on first request and serving every later request from the
// cache.  A failed or cancelled computation is evicted so a later run can
// retry rather than inherit the stale error.  The cache is bounded: when
// a computation completes and the cache holds more than the engine's
// CalCacheCap completed curves, the least-recently-used ones are evicted
// (and counted on wmm_engine_calibration_cache_evictions_total).
func (e *Engine) Calibration(ctx context.Context, prof *arch.Profile, sizes []int64, seed int64) (core.Calibration, error) {
	if err := ctx.Err(); err != nil {
		return core.Calibration{}, err
	}
	k := calKey(prof, sizes, seed)
	e.calMu.Lock()
	ent, ok := e.cals[k]
	if ok {
		e.hits++
	} else {
		ent = &calEntry{once: make(chan struct{})}
		e.cals[k] = ent
		e.misses++
	}
	e.calClock++
	ent.lastUse = e.calClock
	e.calMu.Unlock()
	if ok {
		e.met.calHits.Inc()
	} else {
		e.met.calMisses.Inc()
	}

	if !ok {
		// The computation is guarded: a panicking calibration (or an
		// injected fault) becomes this entry's error — and the entry is
		// evicted below — instead of leaving concurrent waiters blocked
		// on a once that never closes.
		ent.err = func() (err error) {
			defer func() {
				if r := recover(); r != nil {
					err = fmt.Errorf("calibration %s panicked: %v", k, r)
				}
			}()
			if ferr := e.fault.Fire(faultinject.PointCalibration, k, seed); ferr != nil {
				return ferr
			}
			ent.cal, err = core.Calibrate(prof, append([]int64{}, sizes...), seed)
			return err
		}()
		close(ent.once)
		if ent.err == nil {
			e.calMu.Lock()
			ent.done = true
			e.evictCalsLocked()
			e.calMu.Unlock()
		}
	} else {
		select {
		case <-ent.once:
		case <-ctx.Done():
			return core.Calibration{}, ctx.Err()
		}
	}
	if ent.err != nil {
		e.calMu.Lock()
		if e.cals[k] == ent {
			delete(e.cals, k)
		}
		e.calMu.Unlock()
		return core.Calibration{}, ent.err
	}
	return ent.cal, nil
}

// evictCalsLocked enforces the LRU bound over completed entries; calMu
// must be held.  In-flight entries never count against the cap and are
// never evicted — waiters hold their pointers and the computation must
// not be repeated.
func (e *Engine) evictCalsLocked() {
	if e.calCap <= 0 {
		return
	}
	for {
		doneCount := 0
		var oldestKey string
		var oldest *calEntry
		for k, ent := range e.cals {
			if !ent.done {
				continue
			}
			doneCount++
			if oldest == nil || ent.lastUse < oldest.lastUse {
				oldestKey, oldest = k, ent
			}
		}
		if doneCount <= e.calCap || oldest == nil {
			return
		}
		delete(e.cals, oldestKey)
		e.evictions++
		e.met.calEvictions.Inc()
	}
}

// CalStats reports the calibration cache's hit/miss counters (misses are
// computations, hits are reuses).
func (e *Engine) CalStats() (hits, misses int) {
	e.calMu.Lock()
	defer e.calMu.Unlock()
	return e.hits, e.misses
}

// CalCacheSize reports the entries currently cached and how many have
// been evicted by the LRU bound (backs the regression test for the
// unbounded-growth fix).
func (e *Engine) CalCacheSize() (entries, evicted int) {
	e.calMu.Lock()
	defer e.calMu.Unlock()
	return len(e.cals), e.evictions
}
