package engine

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/faultinject"
)

// calEntry computes one calibration at most once; concurrent requesters
// for the same key block on the sync.Once instead of duplicating the
// measurement (the Figure 4 curve is the single most repeated piece of
// work in the sequential harness — every scan driver rebuilt it).
type calEntry struct {
	once chan struct{} // closed when computed
	cal  core.Calibration
	err  error
}

// calKey identifies a calibration: the exact profile, size sweep, and
// seed.  Any difference (e.g. Figure 1's extended sweep) is a distinct
// curve.
func calKey(prof *arch.Profile, sizes []int64, seed int64) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s|%d|", prof.Name, seed)
	for _, s := range sizes {
		fmt.Fprintf(&sb, "%d,", s)
	}
	return sb.String()
}

// Calibration returns the Figure 4 curve for (profile, sizes, seed),
// computing it on first request and serving every later request from the
// cache.  A failed or cancelled computation is evicted so a later run can
// retry rather than inherit the stale error.
func (e *Engine) Calibration(ctx context.Context, prof *arch.Profile, sizes []int64, seed int64) (core.Calibration, error) {
	if err := ctx.Err(); err != nil {
		return core.Calibration{}, err
	}
	k := calKey(prof, sizes, seed)
	e.calMu.Lock()
	ent, ok := e.cals[k]
	if ok {
		e.hits++
	} else {
		ent = &calEntry{once: make(chan struct{})}
		e.cals[k] = ent
		e.misses++
	}
	e.calMu.Unlock()
	if ok {
		e.met.calHits.Inc()
	} else {
		e.met.calMisses.Inc()
	}

	if !ok {
		// The computation is guarded: a panicking calibration (or an
		// injected fault) becomes this entry's error — and the entry is
		// evicted below — instead of leaving concurrent waiters blocked
		// on a once that never closes.
		ent.err = func() (err error) {
			defer func() {
				if r := recover(); r != nil {
					err = fmt.Errorf("calibration %s panicked: %v", k, r)
				}
			}()
			if ferr := e.fault.Fire(faultinject.PointCalibration, k, seed); ferr != nil {
				return ferr
			}
			ent.cal, err = core.Calibrate(prof, append([]int64{}, sizes...), seed)
			return err
		}()
		close(ent.once)
	} else {
		select {
		case <-ent.once:
		case <-ctx.Done():
			return core.Calibration{}, ctx.Err()
		}
	}
	if ent.err != nil {
		e.calMu.Lock()
		if e.cals[k] == ent {
			delete(e.cals, k)
		}
		e.calMu.Unlock()
		return core.Calibration{}, ent.err
	}
	return ent.cal, nil
}

// CalStats reports the calibration cache's hit/miss counters (misses are
// computations, hits are reuses).
func (e *Engine) CalStats() (hits, misses int) {
	e.calMu.Lock()
	defer e.calMu.Unlock()
	return e.hits, e.misses
}
