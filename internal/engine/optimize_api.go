package engine

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/optimize"
)

// Fence-strategy optimizer API:
//
//	POST   /api/v1/optimize       submit a job (OptimizeSpec), returns
//	                              {"id", "state", "total"}; 429 under saturation
//	GET    /api/v1/optimize       job statuses, in submission order (paginated)
//	GET    /api/v1/optimize/{id}  status: phase, candidates tried / rejected
//	                              unsound / scored, best-so-far; the final
//	                              report once finished; ?canonical=1 serves
//	                              the report's canonical JSON
//	DELETE /api/v1/optimize/{id}  cancel a running job / remove a finished one
//
// A job runs in two waves: gate cells (one exhaustive litmus gate per
// candidate strategy) and then score cells (one measurement per sound
// survivor plus the sensitivity fits) — both fanned through the
// dispatcher when one is configured.  Cells are content-addressed, so
// resubmitting a spec resolves from the result cache; the canonical
// report is byte-identical wherever the cells executed.

// optimizeRun is one submitted optimizer job.
type optimizeRun struct {
	id         string
	spec       OptimizeSpec
	candidates int
	cancel     context.CancelFunc
	admitted   int

	mu       sync.Mutex
	state    string
	phase    string // "gate" -> "measure" -> "done"
	started  time.Time
	finished time.Time
	cells    int // cells completed so far (both waves)
	tried    int // gate cells completed
	rejected int // candidates the gate proved unsound
	scored   int // measure cells completed
	best     string
	bestGeo  float64
	report   *optimize.Report
	err      string
}

// Optimizer job phases reported in OptimizeStatus.Phase.
const (
	PhaseGate    = "gate"
	PhaseMeasure = "measure"
	PhaseDone    = "done"
)

// OptimizeStatus is the snapshot served by GET /api/v1/optimize/{id}.
type OptimizeStatus struct {
	ID     string `json:"id"`
	Kind   string `json:"kind"`
	State  string `json:"state"`
	Tenant string `json:"tenant,omitempty"`
	// Phase is where the search currently is: "gate" (soundness
	// checking), "measure" (scoring survivors), "done".
	Phase string       `json:"phase"`
	Spec  OptimizeSpec `json:"spec"`
	// Candidates is the size of the search space; Tried counts gate
	// verdicts so far, RejectedUnsound the candidates the gate refused,
	// Scored the survivors measured so far.
	Candidates      int `json:"candidates"`
	Tried           int `json:"tried"`
	RejectedUnsound int `json:"rejected_unsound"`
	Scored          int `json:"scored"`
	// Best is the best-so-far candidate by measured throughput while the
	// job runs, and the final winner once it finishes.
	Best       string     `json:"best,omitempty"`
	CellsDone  int        `json:"cells_done"`
	Error      string     `json:"error,omitempty"`
	StartedAt  time.Time  `json:"started_at"`
	FinishedAt *time.Time `json:"finished_at,omitempty"`
	WallMs     int64      `json:"wall_ms"`
	// Report is the final ranked report, present once the job is done.
	Report *optimize.Report `json:"report,omitempty"`
}

// status snapshots the job.
func (r *optimizeRun) status() OptimizeStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := OptimizeStatus{
		ID:              r.id,
		Kind:            "optimize",
		State:           r.state,
		Tenant:          r.spec.Tenant,
		Phase:           r.phase,
		Spec:            r.spec,
		Candidates:      r.candidates,
		Tried:           r.tried,
		RejectedUnsound: r.rejected,
		Scored:          r.scored,
		Best:            r.best,
		CellsDone:       r.cells,
		Error:           r.err,
		StartedAt:       r.started,
		Report:          r.report,
	}
	end := r.finished
	if end.IsZero() {
		end = time.Now()
	} else {
		fin := r.finished
		st.FinishedAt = &fin
	}
	st.WallMs = end.Sub(r.started).Milliseconds()
	return st
}

// optimizeSink adapts an optimizeRun to the dispatcher's progress Sink:
// completed cells update the job's phase counters and best-so-far.
type optimizeSink optimizeRun

func (os *optimizeSink) ExperimentStarted(string) {}

func (os *optimizeSink) ExperimentDone(res *Result) {
	if res == nil {
		return
	}
	r := (*optimizeRun)(os)
	var cr optimize.CellResult
	decoded := res.Status == StatusOK && json.Unmarshal([]byte(res.Output), &cr) == nil
	r.mu.Lock()
	defer r.mu.Unlock()
	r.cells++
	switch {
	case strings.HasPrefix(res.Experiment, "gate/"):
		r.tried++
		if decoded {
			sound := len(cr.Gate) > 0
			for _, g := range cr.Gate {
				sound = sound && g.Sound
			}
			if !sound {
				r.rejected++
			}
		}
	case strings.HasPrefix(res.Experiment, "measure/"):
		r.scored++
		if decoded && cr.Perf != nil && cr.Perf.GeoMean > r.bestGeo {
			r.bestGeo = cr.Perf.GeoMean
			r.best = strings.TrimPrefix(res.Experiment, "measure/")
		}
	}
}

func (r *optimizeRun) setPhase(phase string) {
	r.mu.Lock()
	r.phase = phase
	r.mu.Unlock()
}

func (s *Server) handleOptimizeSubmit(w http.ResponseWriter, r *http.Request) {
	var spec OptimizeSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeErr(w, http.StatusBadRequest, ErrCodeInvalidArgument, "bad optimize spec: %v", err)
		return
	}
	spec = spec.withDefaults()
	if err := spec.validate(); err != nil {
		writeErr(w, http.StatusBadRequest, ErrCodeInvalidArgument, "bad optimize spec: %v", err)
		return
	}
	if spec.Parallel <= 0 {
		spec.Parallel = s.defaultParallel
	}
	tenant, tok := resolveTenant(w, r, spec.Tenant)
	if !tok {
		return
	}
	spec.Tenant = tenant
	gates, err := spec.GateCells()
	if err != nil { // defensive: validate() already resolved the candidates
		writeErr(w, http.StatusBadRequest, ErrCodeInvalidArgument, "bad optimize spec: %v", err)
		return
	}

	// Admission control covers the first wave (one gate cell per
	// candidate); the scoring wave is sized by the gate's verdicts and
	// joins the queue when it exists, like lost-lease requeues.
	admitted := 0
	if s.disp != nil {
		switch err := s.disp.TryAdmit(tenant, len(gates)); err {
		case nil:
			admitted = len(gates)
		case ErrTenantSaturated:
			s.writeSaturated(w, "tenant %q queue quota exceeded (%d cells refused)", tenant, len(gates))
			return
		default:
			s.writeSaturated(w, "dispatch queue saturated (%d cells refused)", len(gates))
			return
		}
	}

	ctx := context.Background()
	var cancel context.CancelFunc
	if spec.TimeoutMs > 0 {
		ctx, cancel = context.WithTimeout(ctx, time.Duration(spec.TimeoutMs)*time.Millisecond)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		cancel()
		if s.disp != nil {
			s.disp.admitForce(tenant, -admitted)
		}
		writeErr(w, http.StatusServiceUnavailable, ErrCodeUnavailable, "server shutting down")
		return
	}
	if !s.tenantAdmitRunningLocked(tenant) {
		s.mu.Unlock()
		cancel()
		if s.disp != nil {
			s.disp.admitForce(tenant, -admitted)
		}
		s.met.tenantRejected.Inc(tenant, "tenant_running")
		s.writeSaturated(w, "tenant %q already has %d runs executing", tenant, s.tenantMaxRunning)
		return
	}
	s.optimizeSeq++
	run := &optimizeRun{
		id:         fmt.Sprintf("optimize-%d", s.optimizeSeq),
		spec:       spec,
		candidates: len(gates),
		cancel:     cancel,
		admitted:   admitted,
		state:      StateRunning,
		phase:      PhaseGate,
		started:    time.Now(),
	}
	s.optimize[run.id] = run
	s.active.Add(1)
	s.mu.Unlock()
	s.met.optimizeRuns.Inc("submitted")

	go s.executeOptimize(ctx, cancel, run)
	writeJSON(w, http.StatusAccepted, map[string]any{"id": run.id, "state": StateRunning, "total": len(gates)})
}

// executeOptimize drives a job to completion, through the sharded
// dispatcher when one is configured and in-process otherwise.  Both
// paths execute the same cells and assemble byte-identical reports.
func (s *Server) executeOptimize(ctx context.Context, cancel context.CancelFunc, run *optimizeRun) {
	defer s.active.Done()
	defer cancel()
	tenant := run.spec.Tenant
	if tenant == "" {
		tenant = DefaultTenant
	}
	defer s.tenantRunningDone(tenant)

	rep, err := s.driveOptimize(ctx, run)

	run.mu.Lock()
	run.report = rep
	run.finished = time.Now()
	run.phase = PhaseDone
	switch {
	case err == nil:
		run.state = StateDone
		run.best = rep.Best
	case ctx.Err() != nil:
		run.state = StateCancelled
		run.err = err.Error()
	default:
		run.state = StateFailed
		run.err = err.Error()
	}
	state := run.state
	run.mu.Unlock()
	s.met.optimizeRuns.Inc(state)
}

// driveOptimize runs the two waves and assembles the report.  The first
// error — a cell that failed, a gate that could not complete its
// exploration, a baseline rejected as unsound — fails the job.
func (s *Server) driveOptimize(ctx context.Context, run *optimizeRun) (*optimize.Report, error) {
	sp := run.spec.Spec // normalised and validated at submission
	sink := (*optimizeSink)(run)
	results := map[string]optimize.CellResult{}

	wave := func(cells []optimize.Cell, reserved int) error {
		var rs []*Result
		var err error
		if s.disp != nil {
			rs, err = s.disp.RunOptimizeCells(ctx, run.id, run.spec.Tenant, cells, run.spec.Parallel, run.spec.NoCache, sink, reserved)
		} else {
			rs, err = runOptimizeLocal(ctx, cells, run.spec.Parallel, sink)
		}
		for i, res := range rs {
			cr, derr := decodeCellResult(res, cells[i].Name())
			if derr != nil {
				if err == nil {
					err = derr
				}
				continue
			}
			results[cr.Cell] = cr
		}
		return err
	}

	gates, err := sp.GateCells()
	if err != nil {
		return nil, err
	}
	run.setPhase(PhaseGate)
	if err := wave(gates, run.admitted); err != nil {
		return nil, err
	}
	sound, err := optimize.SoundNames(sp, results)
	if err != nil {
		return nil, err
	}
	if !sound[sp.Baseline] {
		// Fail before the scoring wave: without a sound baseline there is
		// nothing to rank against.
		return nil, fmt.Errorf("optimize: baseline strategy %q was rejected by the soundness gate", sp.Baseline)
	}

	score, err := sp.ScoreCells(sound)
	if err != nil {
		return nil, err
	}
	run.setPhase(PhaseMeasure)
	if err := wave(score, 0); err != nil {
		return nil, err
	}
	return optimize.Assemble(sp, results)
}

func (s *Server) lookupOptimize(r *http.Request) (*optimizeRun, string) {
	id := r.PathValue("id")
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.optimize[id], id
}

func (s *Server) handleOptimizeList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	runs := make([]*optimizeRun, 0, len(s.optimize))
	for _, run := range s.optimize {
		runs = append(runs, run)
	}
	s.mu.Unlock()
	out := make([]OptimizeStatus, 0, len(runs))
	for _, run := range runs {
		st := run.status()
		st.Report = nil // list rows stay small; fetch the job for the report
		out = append(out, st)
	}
	writeJobPage(w, r, out, func(st OptimizeStatus) string { return st.ID })
}

func (s *Server) handleOptimizeStatus(w http.ResponseWriter, r *http.Request) {
	run, id := s.lookupOptimize(r)
	if run == nil {
		writeErr(w, http.StatusNotFound, ErrCodeNotFound, "unknown optimize job %q", id)
		return
	}
	if r.URL.Query().Get("canonical") != "" {
		run.mu.Lock()
		state := run.state
		rep := run.report
		run.mu.Unlock()
		if state == StateRunning {
			writeErr(w, http.StatusConflict, ErrCodeConflict,
				"optimize job %s is still running; canonical JSON exists only for finished jobs", run.id)
			return
		}
		if rep == nil {
			writeErr(w, http.StatusConflict, ErrCodeConflict,
				"optimize job %s finished %s without a report", run.id, state)
			return
		}
		raw, err := rep.CanonicalJSON()
		if err != nil {
			writeErr(w, http.StatusInternalServerError, "internal", "canonicalise optimize job %s: %v", run.id, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		w.Write(raw)
		return
	}
	writeJSON(w, http.StatusOK, run.status())
}

// handleOptimizeCancel cancels a running job; on a finished one it
// removes it from the catalogue.
func (s *Server) handleOptimizeCancel(w http.ResponseWriter, r *http.Request) {
	run, id := s.lookupOptimize(r)
	if run == nil {
		writeErr(w, http.StatusNotFound, ErrCodeNotFound, "unknown optimize job %q", id)
		return
	}
	run.mu.Lock()
	state := run.state
	run.mu.Unlock()
	run.cancel()
	if state != StateRunning {
		s.mu.Lock()
		_, present := s.optimize[id]
		delete(s.optimize, id)
		s.mu.Unlock()
		if present {
			s.met.optimizeSwept.Inc()
		}
		writeJSON(w, http.StatusOK, map[string]any{"id": run.id, "state": state, "deleted": true})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"id": run.id, "state": "cancelling"})
}
