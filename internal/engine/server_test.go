package engine

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func newTestServer(t *testing.T) (*httptest.Server, *Engine) {
	t.Helper()
	eng := New(Options{Workers: 2})
	t.Cleanup(eng.Close)
	ts := httptest.NewServer(NewServer(eng, 2).Handler())
	t.Cleanup(ts.Close)
	return ts, eng
}

func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
	}
	return resp
}

func postRun(t *testing.T, ts *httptest.Server, spec string) string {
	t.Helper()
	resp, err := http.Post(ts.URL+"/runs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		t.Fatalf("POST /runs: %d: %s", resp.StatusCode, buf.String())
	}
	var out struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.ID == "" {
		t.Fatal("run id missing")
	}
	return out.ID
}

// waitState polls the run until it leaves StateRunning or the deadline
// passes, returning the final status.
func waitState(t *testing.T, ts *httptest.Server, id string, deadline time.Duration) RunStatus {
	t.Helper()
	stop := time.Now().Add(deadline)
	for {
		var st RunStatus
		getJSON(t, ts.URL+"/runs/"+id, &st)
		if st.State != StateRunning {
			return st
		}
		if time.Now().After(stop) {
			t.Fatalf("run %s still %s after %v (%d/%d done)", id, st.State, deadline, st.Completed, st.Total)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func TestHealthz(t *testing.T) {
	ts, _ := newTestServer(t)
	var out map[string]any
	resp := getJSON(t, ts.URL+"/healthz", &out)
	if resp.StatusCode != http.StatusOK || out["status"] != "ok" {
		t.Errorf("healthz = %d %v", resp.StatusCode, out)
	}
}

func TestExperimentsEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	var out []struct {
		Name  string `json:"name"`
		Paper string `json:"paper"`
	}
	getJSON(t, ts.URL+"/experiments", &out)
	if len(out) != 20 {
		t.Fatalf("catalogue has %d experiments, want 20", len(out))
	}
	if out[0].Name != "fig1" || out[1].Paper != "Figure 4" {
		t.Errorf("catalogue order wrong: %+v", out[:2])
	}
}

func TestRunLifecycle(t *testing.T) {
	ts, _ := newTestServer(t)
	id := postRun(t, ts, `{"experiments": ["fig4", "txt3"], "short": true, "samples": 2, "seed": 3}`)

	st := waitState(t, ts, id, 2*time.Minute)
	if st.State != StateDone {
		t.Fatalf("run ended %s (err %q)", st.State, st.Error)
	}
	if st.Completed != 2 || len(st.Results) != 2 {
		t.Fatalf("completed=%d results=%d, want 2/2", st.Completed, len(st.Results))
	}
	if st.Results[0].Experiment != "fig4" || !strings.Contains(st.Results[0].Output, "Figure 4") {
		t.Errorf("first result = %q", st.Results[0].Experiment)
	}
	if st.Results[1].Experiment != "txt3" {
		t.Errorf("second result = %q", st.Results[1].Experiment)
	}

	// The run also shows up in the listing.
	var list []RunStatus
	getJSON(t, ts.URL+"/runs", &list)
	if len(list) != 1 || list[0].ID != id {
		t.Errorf("listing = %+v", list)
	}
}

func TestRunValidation(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Post(ts.URL+"/runs", "application/json",
		strings.NewReader(`{"experiments": ["bogus"]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown experiment accepted: %d", resp.StatusCode)
	}

	resp = getJSON(t, ts.URL+"/runs/nope", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown run id = %d, want 404", resp.StatusCode)
	}
}

func TestRunCancellationEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	// txt1 at full size is minutes of work; the DELETE must stop it at
	// the next sample boundary.
	id := postRun(t, ts, `{"experiments": ["txt1"], "seed": 3}`)

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/runs/"+id, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE = %d", resp.StatusCode)
	}

	st := waitState(t, ts, id, time.Minute)
	if st.State != StateCancelled {
		t.Fatalf("cancelled run ended %s (err %q)", st.State, st.Error)
	}
}

func TestRunTimeout(t *testing.T) {
	ts, _ := newTestServer(t)
	id := postRun(t, ts, `{"experiments": ["txt1"], "seed": 3, "timeout_ms": 1}`)
	st := waitState(t, ts, id, time.Minute)
	if st.State != StateCancelled {
		t.Fatalf("timed-out run ended %s (err %q)", st.State, st.Error)
	}
}

func TestRunStreaming(t *testing.T) {
	ts, _ := newTestServer(t)
	id := postRun(t, ts, `{"experiments": ["fig4"], "short": true, "samples": 2, "seed": 3}`)

	resp, err := http.Get(fmt.Sprintf("%s/runs/%s?stream=1", ts.URL, id))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("stream content type = %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	var sawEnd bool
	var lines int
	for sc.Scan() {
		lines++
		var ev struct {
			Event string `json:"event"`
			State string `json:"state"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		if ev.Event == "end" {
			sawEnd = true
			if ev.State != StateDone {
				t.Errorf("stream ended in state %q", ev.State)
			}
		}
	}
	if !sawEnd {
		t.Errorf("stream closed without an end event (%d lines)", lines)
	}
}
