package engine

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/wmm/client"
)

func newTestServer(t *testing.T) (*httptest.Server, *Engine) {
	ts, _, eng := newTestServerOpts(t, ServerOptions{Parallel: 2})
	return ts, eng
}

func newTestServerOpts(t *testing.T, o ServerOptions) (*httptest.Server, *Server, *Engine) {
	t.Helper()
	eng := New(Options{Workers: 2})
	t.Cleanup(eng.Close)
	api := NewServer(eng, o)
	// Cleanups run LIFO: drain HTTP, cancel + wait for runs, close the
	// engine — the same ordering cmd/wmmd uses.
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		if err := api.Shutdown(ctx); err != nil {
			t.Errorf("server shutdown: %v", err)
		}
	})
	ts := httptest.NewServer(api.Handler())
	t.Cleanup(ts.Close)
	return ts, api, eng
}

// testClient returns a typed API client for the test server.  The HTTP
// tests drive the server through wmm/client — the same surface real
// consumers (wmmctl, wmmworker) use — so the client and the server's v1
// contract are exercised together.
func testClient(ts *httptest.Server) *client.Client {
	return client.New(ts.URL)
}

// getJSON keeps raw access for the endpoints whose wire shape is itself
// under test (operational routes, legacy shims, error envelopes).
func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
	}
	return resp
}

func postRun(t *testing.T, ts *httptest.Server, spec string) string {
	t.Helper()
	var rs client.RunSpec
	if err := json.Unmarshal([]byte(spec), &rs); err != nil {
		t.Fatalf("bad spec %q: %v", spec, err)
	}
	sub, err := testClient(ts).SubmitRun(context.Background(), rs)
	if err != nil {
		t.Fatalf("submit run: %v", err)
	}
	if sub.ID == "" {
		t.Fatal("run id missing")
	}
	return sub.ID
}

// waitState polls the run until it leaves StateRunning or the deadline
// passes, returning the final status (results included).
func waitState(t *testing.T, ts *httptest.Server, id string, deadline time.Duration) client.RunStatus {
	t.Helper()
	cl := testClient(ts)
	stop := time.Now().Add(deadline)
	for {
		st, err := cl.Run(context.Background(), id, true)
		if err != nil {
			t.Fatalf("run %s status: %v", id, err)
		}
		if st.State != StateRunning {
			return st
		}
		if time.Now().After(stop) {
			t.Fatalf("run %s still %s after %v (%d/%d done)", id, st.State, deadline, st.Completed, st.Total)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func TestHealthz(t *testing.T) {
	ts, _ := newTestServer(t)
	var out map[string]any
	if err := testClient(ts).GetJSON(context.Background(), "/healthz", &out); err != nil {
		t.Fatalf("healthz: %v", err)
	}
	if out["status"] != "ok" {
		t.Errorf("healthz = %v", out)
	}
}

func TestExperimentsEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	cl := testClient(ts)

	// Walk the catalogue through cursor pagination in awkward page sizes.
	var all []client.ExperimentInfo
	pages := 0
	page := client.Page{Limit: 7}
	for {
		p, err := cl.Experiments(context.Background(), page)
		if err != nil {
			t.Fatalf("experiments page %d: %v", pages, err)
		}
		if len(p.Items) == 0 {
			t.Fatalf("experiments page %d empty (NextAfter %q)", pages, p.NextAfter)
		}
		all = append(all, p.Items...)
		pages++
		if p.NextAfter == "" {
			break
		}
		page.After = p.NextAfter
	}
	if len(all) != 20 {
		t.Fatalf("catalogue has %d experiments, want 20", len(all))
	}
	if pages != 3 {
		t.Errorf("catalogue of 20 in pages of 7 took %d pages, want 3", pages)
	}
	if all[0].Name != "fig1" || all[1].Paper != "Figure 4" {
		t.Errorf("catalogue order wrong: %+v", all[:2])
	}
}

func TestRunLifecycle(t *testing.T) {
	ts, _ := newTestServer(t)
	id := postRun(t, ts, `{"experiments": ["fig4", "txt3"], "short": true, "samples": 2, "seed": 3}`)

	st := waitState(t, ts, id, 2*time.Minute)
	if st.State != StateDone {
		t.Fatalf("run ended %s (err %q)", st.State, st.Error)
	}
	if st.Completed != 2 || len(st.Results) != 2 {
		t.Fatalf("completed=%d results=%d, want 2/2", st.Completed, len(st.Results))
	}
	if st.Results[0].Experiment != "fig4" || !strings.Contains(st.Results[0].Output, "Figure 4") {
		t.Errorf("first result = %q", st.Results[0].Experiment)
	}
	if st.Results[1].Experiment != "txt3" {
		t.Errorf("second result = %q", st.Results[1].Experiment)
	}

	// The run also shows up in the listing.
	list, err := testClient(ts).Runs(context.Background(), client.Page{})
	if err != nil {
		t.Fatal(err)
	}
	if len(list.Items) != 1 || list.Items[0].ID != id {
		t.Errorf("listing = %+v", list.Items)
	}
}

func TestRunValidation(t *testing.T) {
	ts, _ := newTestServer(t)
	// Unknown experiment names are refused before anything executes.
	_, err := testClient(ts).SubmitRun(context.Background(),
		client.RunSpec{Experiments: []string{"bogus"}})
	var apiErr *client.Error
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
		t.Errorf("unknown experiment: %v, want 400 envelope", err)
	}

	_, err = testClient(ts).Run(context.Background(), "nope", false)
	if !client.IsNotFound(err) {
		t.Errorf("unknown run id: %v, want 404", err)
	}
}

func TestRunCancellationEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	// txt1 at full size is minutes of work; the DELETE must stop it at
	// the next sample boundary.
	id := postRun(t, ts, `{"experiments": ["txt1"], "seed": 3}`)

	if _, err := testClient(ts).CancelRun(context.Background(), id); err != nil {
		t.Fatalf("cancel: %v", err)
	}

	st := waitState(t, ts, id, time.Minute)
	if st.State != StateCancelled {
		t.Fatalf("cancelled run ended %s (err %q)", st.State, st.Error)
	}
}

func TestRunTimeout(t *testing.T) {
	ts, _ := newTestServer(t)
	id := postRun(t, ts, `{"experiments": ["txt1"], "seed": 3, "timeout_ms": 1}`)
	st := waitState(t, ts, id, time.Minute)
	if st.State != StateCancelled {
		t.Fatalf("timed-out run ended %s (err %q)", st.State, st.Error)
	}
}

func TestRunStreaming(t *testing.T) {
	ts, _ := newTestServer(t)
	id := postRun(t, ts, `{"experiments": ["fig4"], "short": true, "samples": 2, "seed": 3}`)

	// The raw stream carries the NDJSON content type.
	resp, err := http.Get(fmt.Sprintf("%s/api/v1/runs/%s?stream=1", ts.URL, id))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("stream content type = %q", ct)
	}

	var sawEnd bool
	var events int
	_, err = testClient(ts).WatchRun(context.Background(), id, func(ev client.Event) error {
		events++
		if ev.Event == "end" {
			sawEnd = true
			if ev.State != StateDone {
				t.Errorf("stream ended in state %q", ev.State)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("watch: %v", err)
	}
	if !sawEnd {
		t.Errorf("stream closed without an end event (%d events)", events)
	}
}

// TestMetricsEndpoint verifies GET /metrics serves Prometheus text
// exposition covering the engine, calibration cache, and HTTP series
// after a run has executed.
func TestMetricsEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	// ext-c11 drives pooled Measure calls (fig4 is calibration-only,
	// txt3 times sequences outside the pool).
	id := postRun(t, ts, `{"experiments": ["ext-c11"], "short": true, "samples": 1, "seed": 3}`)
	waitState(t, ts, id, 2*time.Minute)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("metrics content type = %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	text := string(body)

	for _, want := range []string{
		// Engine series.
		"# TYPE wmm_engine_jobs_executed_total counter",
		"# TYPE wmm_engine_job_queue_wait_seconds histogram",
		"wmm_engine_sample_run_seconds_bucket{le=",
		"wmm_engine_workers 2",
		// Calibration cache series.
		"# TYPE wmm_engine_calibration_cache_hits_total counter",
		"# TYPE wmm_engine_calibration_cache_misses_total counter",
		// HTTP series, labelled by the v1 route pattern the client hit.
		`wmm_http_requests_total{method="POST",path="/api/v1/runs",code="202"} 1`,
		`wmm_http_request_seconds_count{method="POST",path="/api/v1/runs"} 1`,
		// Run lifecycle series.
		`wmm_runs_total{state="submitted"} 1`,
		`wmm_runs_total{state="done"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
	// The run executed samples, so the jobs counter must be positive.
	var jobs float64
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "wmm_engine_jobs_executed_total ") {
			fmt.Sscanf(line, "wmm_engine_jobs_executed_total %f", &jobs)
		}
	}
	if jobs <= 0 {
		t.Errorf("wmm_engine_jobs_executed_total = %v, want > 0", jobs)
	}
	// Per-run sample counters surface in RunStatus.
	st, err := testClient(ts).Run(context.Background(), id, false)
	if err != nil {
		t.Fatal(err)
	}
	if st.Samples <= 0 || st.Measurements <= 0 {
		t.Errorf("RunStatus counters: samples=%d measurements=%d, want > 0", st.Samples, st.Measurements)
	}
}

// TestServerShutdown verifies the shutdown ordering fix: Shutdown
// cancels an in-flight run, waits for its executor, and afterwards
// closing the engine does not panic with a send on a closed channel.
func TestServerShutdown(t *testing.T) {
	ts, api, eng := newTestServerOpts(t, ServerOptions{Parallel: 2})
	// txt1 at full size is minutes of work; shutdown must not wait for it.
	id := postRun(t, ts, `{"experiments": ["txt1"], "seed": 3}`)

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	start := time.Now()
	if err := api.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if d := time.Since(start); d > 30*time.Second {
		t.Errorf("shutdown took %v", d)
	}

	// The engine can now close safely: no Measure is mid-send.
	eng.Close()

	// The run was cancelled, not abandoned.
	st, err := testClient(ts).Run(context.Background(), id, false)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateCancelled {
		t.Errorf("run state after shutdown = %q, want %q", st.State, StateCancelled)
	}

	// New submissions are refused.
	_, err = testClient(ts).SubmitRun(context.Background(),
		client.RunSpec{Experiments: []string{"fig4"}, Short: true})
	var apiErr *client.Error
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable {
		t.Errorf("submit after shutdown: %v, want 503", err)
	}
}

// TestDeleteFinishedRun verifies DELETE on a finished run removes it
// from the catalogue instead of being a silent no-op.
func TestDeleteFinishedRun(t *testing.T) {
	ts, _ := newTestServer(t)
	cl := testClient(ts)
	id := postRun(t, ts, `{"experiments": ["fig4"], "short": true, "samples": 2, "seed": 3}`)
	waitState(t, ts, id, 2*time.Minute)

	out, err := cl.CancelRun(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if out.State != StateDone || !out.Deleted {
		t.Errorf("DELETE finished run = %+v, want done/deleted", out)
	}

	if _, err := cl.Run(context.Background(), id, false); !client.IsNotFound(err) {
		t.Errorf("deleted run still served: %v", err)
	}
	list, err := cl.Runs(context.Background(), client.Page{})
	if err != nil {
		t.Fatal(err)
	}
	if len(list.Items) != 0 {
		t.Errorf("deleted run still listed: %+v", list.Items)
	}
}

// TestRetentionGC verifies the retention sweep removes finished runs so
// a long-lived server does not accumulate them forever.
func TestRetentionGC(t *testing.T) {
	ts, _, _ := newTestServerOpts(t, ServerOptions{
		Parallel: 2, Retain: 50 * time.Millisecond, SweepEvery: 20 * time.Millisecond,
	})
	cl := testClient(ts)
	id := postRun(t, ts, `{"experiments": ["fig4"], "short": true, "samples": 2, "seed": 3}`)
	waitState(t, ts, id, 2*time.Minute)

	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := cl.Run(context.Background(), id, false); client.IsNotFound(err) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("finished run still present %v after retention lapsed", 10*time.Second)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestGCKeepsRunningRuns verifies the sweep never removes a run that is
// still executing, however old it is.
func TestGCKeepsRunningRuns(t *testing.T) {
	ts, api, _ := newTestServerOpts(t, ServerOptions{
		Parallel: 2, Retain: time.Nanosecond, SweepEvery: time.Hour,
	})
	id := postRun(t, ts, `{"experiments": ["txt1"], "seed": 3}`)
	if n := api.gc(time.Now().Add(time.Hour)); n != 0 {
		t.Errorf("gc removed %d running runs", n)
	}
	if _, err := testClient(ts).Run(context.Background(), id, false); err != nil {
		t.Errorf("running run gone after gc: %v", err)
	}
	// Cleanup (api.Shutdown) cancels the long run.
}

// TestStreamExactlyOnce verifies the subscribe/snapshot race fix: a
// stream opened at any point during a run sees every experiment's
// "done" exactly once — either folded into the snapshot's completed
// count or streamed as an event, never both.
func TestStreamExactlyOnce(t *testing.T) {
	ts, _ := newTestServer(t)
	id := postRun(t, ts,
		`{"experiments": ["fig4", "txt3", "counters", "ablations"], "short": true, "samples": 1, "seed": 3, "parallel": 2}`)

	// Several staggered streams probe different interleavings of
	// subscription vs. progress.
	for attempt := 0; attempt < 3; attempt++ {
		doneSeen := map[string]int{}
		endCompleted := -1
		snap, err := testClient(ts).WatchRun(context.Background(), id, func(ev client.Event) error {
			switch ev.Event {
			case "done":
				doneSeen[ev.Experiment]++
			case "end":
				endCompleted = ev.Completed
			}
			return nil
		})
		if err != nil {
			t.Fatalf("watch %d: %v", attempt, err)
		}
		for exp, n := range doneSeen {
			if n > 1 {
				t.Errorf("stream %d: experiment %s done %d times", attempt, exp, n)
			}
		}
		if endCompleted >= 0 && snap.Completed+len(doneSeen) != endCompleted {
			t.Errorf("stream %d: snapshot completed %d + %d done events != end completed %d",
				attempt, snap.Completed, len(doneSeen), endCompleted)
		}
		time.Sleep(30 * time.Millisecond)
	}
	waitState(t, ts, id, 2*time.Minute)
}
