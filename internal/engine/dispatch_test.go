package engine

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/wmm/client"
)

// newDispatchServer builds a server with the sharded backend enabled.
func newDispatchServer(t *testing.T, d DispatchOptions) (*httptest.Server, *Server) {
	t.Helper()
	ts, api, _ := newTestServerOpts(t, ServerOptions{Parallel: 2, Dispatch: &d})
	return ts, api
}

// decodeEnvelope parses the uniform error envelope from a raw response.
func decodeEnvelope(t *testing.T, resp *http.Response) (code, message string) {
	t.Helper()
	defer resp.Body.Close()
	var env struct {
		Err struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("response is not an error envelope: %v", err)
	}
	if env.Err.Code == "" || env.Err.Message == "" {
		t.Fatalf("envelope missing code/message: %+v", env)
	}
	return env.Err.Code, env.Err.Message
}

// TestDispatchCanonicalIdentity verifies the tentpole's core invariant
// at the local-slots level: a run executed through the sharded
// dispatcher (queue, slots, out-of-order completion) yields canonical
// JSON byte-identical to the plain in-process Engine.Run path.
func TestDispatchCanonicalIdentity(t *testing.T) {
	spec := `{"experiments": ["fig4", "txt3"], "short": true, "samples": 2, "seed": 3, "parallel": 2}`

	tsLocal, _ := newTestServer(t) // no dispatcher: Engine.Run path
	idLocal := postRun(t, tsLocal, spec)
	if st := waitState(t, tsLocal, idLocal, 2*time.Minute); st.State != StateDone {
		t.Fatalf("local run ended %s (err %q)", st.State, st.Error)
	}
	want, err := testClient(tsLocal).CanonicalRun(context.Background(), idLocal)
	if err != nil {
		t.Fatal(err)
	}

	tsDisp, _ := newDispatchServer(t, DispatchOptions{})
	idDisp := postRun(t, tsDisp, spec)
	if st := waitState(t, tsDisp, idDisp, 2*time.Minute); st.State != StateDone {
		t.Fatalf("dispatched run ended %s (err %q)", st.State, st.Error)
	}
	got, err := testClient(tsDisp).CanonicalRun(context.Background(), idDisp)
	if err != nil {
		t.Fatal(err)
	}

	if !bytes.Equal(got, want) {
		t.Errorf("dispatched run diverged from local run:\n--- local ---\n%s\n--- dispatched ---\n%s", want, got)
	}
}

// TestAdmissionControl verifies backpressure: once the dispatch queue
// is saturated, POST /api/v1/runs refuses with 429, a Retry-After hint
// and the "saturated" envelope code — and succeeds again once capacity
// frees up, which the typed client rides out automatically.
func TestAdmissionControl(t *testing.T) {
	ts, _ := newDispatchServer(t, DispatchOptions{MaxQueue: 1, RetryAfter: time.Second})
	cl := testClient(ts)

	// txt1 at full size pins the only queue slot for minutes.
	id := postRun(t, ts, `{"experiments": ["txt1"], "seed": 3}`)

	// Raw request: inspect the refusal wire shape.
	resp, err := http.Post(ts.URL+"/api/v1/runs", "application/json",
		strings.NewReader(`{"experiments": ["fig4"], "short": true, "samples": 1, "seed": 3}`))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusTooManyRequests {
		resp.Body.Close()
		t.Fatalf("saturated submit = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 missing Retry-After header")
	}
	if code, _ := decodeEnvelope(t, resp); code != ErrCodeSaturated {
		t.Errorf("429 envelope code = %q, want %q", code, ErrCodeSaturated)
	}

	// Typed client without retries surfaces the refusal as IsSaturated.
	_, err = client.New(ts.URL, client.WithRetry(0, 0)).SubmitRun(context.Background(),
		client.RunSpec{Experiments: []string{"fig4"}, Short: true, Samples: 1, Seed: 3})
	if !client.IsSaturated(err) {
		t.Errorf("saturated submit via client: %v, want IsSaturated", err)
	}
	var apiErr *client.Error
	if errors.As(err, &apiErr) && apiErr.RetryAfter <= 0 {
		t.Errorf("client did not capture Retry-After: %+v", apiErr)
	}

	// Free the slot, then let the client's retry-on-429 do its job: the
	// first attempt may still see saturation, the retry lands.
	if _, err := cl.CancelRun(context.Background(), id); err != nil {
		t.Fatal(err)
	}
	waitState(t, ts, id, time.Minute)
	sub, err := cl.SubmitRun(context.Background(),
		client.RunSpec{Experiments: []string{"fig4"}, Short: true, Samples: 1, Seed: 3})
	if err != nil {
		t.Fatalf("submit after capacity freed: %v", err)
	}
	if st := waitState(t, ts, sub.ID, 2*time.Minute); st.State != StateDone {
		t.Errorf("post-saturation run ended %s (err %q)", st.State, st.Error)
	}
}

// TestErrorEnvelope verifies every v1 failure mode answers with the
// uniform {"error": {"code", "message"}} envelope — including the two
// regressions called out in the redesign: DELETE of an unknown run id
// and a malformed POST body.
func TestErrorEnvelope(t *testing.T) {
	ts, _ := newTestServer(t)

	t.Run("get unknown run", func(t *testing.T) {
		resp, err := http.Get(ts.URL + "/api/v1/runs/nope")
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("status = %d, want 404", resp.StatusCode)
		}
		if code, _ := decodeEnvelope(t, resp); code != ErrCodeNotFound {
			t.Errorf("code = %q, want %q", code, ErrCodeNotFound)
		}
	})

	t.Run("delete unknown run", func(t *testing.T) {
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/api/v1/runs/nope", nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("status = %d, want 404", resp.StatusCode)
		}
		if code, _ := decodeEnvelope(t, resp); code != ErrCodeNotFound {
			t.Errorf("code = %q, want %q", code, ErrCodeNotFound)
		}
	})

	t.Run("malformed submit body", func(t *testing.T) {
		resp, err := http.Post(ts.URL+"/api/v1/runs", "application/json",
			strings.NewReader(`{"experiments": ["fig4"`)) // truncated JSON
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status = %d, want 400", resp.StatusCode)
		}
		if code, _ := decodeEnvelope(t, resp); code != ErrCodeInvalidArgument {
			t.Errorf("code = %q, want %q", code, ErrCodeInvalidArgument)
		}
	})

	t.Run("negative spec fields", func(t *testing.T) {
		resp, err := http.Post(ts.URL+"/api/v1/runs", "application/json",
			strings.NewReader(`{"experiments": ["fig4"], "samples": -1}`))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status = %d, want 400", resp.StatusCode)
		}
		if code, _ := decodeEnvelope(t, resp); code != ErrCodeInvalidArgument {
			t.Errorf("code = %q, want %q", code, ErrCodeInvalidArgument)
		}
	})

	t.Run("canonical of running run", func(t *testing.T) {
		id := postRun(t, ts, `{"experiments": ["txt1"], "seed": 3}`)
		resp, err := http.Get(ts.URL + "/api/v1/runs/" + id + "?canonical=1")
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusConflict {
			t.Fatalf("status = %d, want 409", resp.StatusCode)
		}
		if code, _ := decodeEnvelope(t, resp); code != ErrCodeConflict {
			t.Errorf("code = %q, want %q", code, ErrCodeConflict)
		}
		if _, err := testClient(ts).CancelRun(context.Background(), id); err != nil {
			t.Fatal(err)
		}
		waitState(t, ts, id, time.Minute)
	})

	t.Run("bad pagination params", func(t *testing.T) {
		resp, err := http.Get(ts.URL + "/api/v1/experiments?limit=zero")
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status = %d, want 400", resp.StatusCode)
		}
		if code, _ := decodeEnvelope(t, resp); code != ErrCodeInvalidArgument {
			t.Errorf("code = %q, want %q", code, ErrCodeInvalidArgument)
		}
	})

	t.Run("lease endpoints without dispatcher", func(t *testing.T) {
		resp, err := http.Post(ts.URL+"/api/v1/leases", "application/json",
			strings.NewReader(`{"worker": "w1"}`))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("status = %d, want 503", resp.StatusCode)
		}
		if code, _ := decodeEnvelope(t, resp); code != ErrCodeUnavailable {
			t.Errorf("code = %q, want %q", code, ErrCodeUnavailable)
		}
	})
}

// TestRunsPagination verifies cursor pagination on GET /api/v1/runs.
func TestRunsPagination(t *testing.T) {
	ts, _ := newTestServer(t)
	cl := testClient(ts)
	var ids []string
	for i := 0; i < 3; i++ {
		ids = append(ids, postRun(t, ts, `{"experiments": ["fig4"], "short": true, "samples": 1, "seed": 3}`))
	}
	for _, id := range ids {
		waitState(t, ts, id, 2*time.Minute)
	}

	first, err := cl.Runs(context.Background(), client.Page{Limit: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(first.Items) != 2 || first.Items[0].ID != ids[0] || first.Items[1].ID != ids[1] {
		t.Fatalf("first page = %d items (%+v)", len(first.Items), first.Items)
	}
	if first.NextAfter != ids[1] {
		t.Fatalf("first page NextAfter = %q, want %q", first.NextAfter, ids[1])
	}
	second, err := cl.Runs(context.Background(), client.Page{Limit: 2, After: first.NextAfter})
	if err != nil {
		t.Fatal(err)
	}
	if len(second.Items) != 1 || second.Items[0].ID != ids[2] {
		t.Fatalf("second page = %+v", second.Items)
	}
	if second.NextAfter != "" {
		t.Errorf("last page NextAfter = %q, want empty", second.NextAfter)
	}
}

// TestLegacyShims verifies the unversioned routes still answer exactly
// as before the redesign — bare-array listings, same status codes — and
// advertise their deprecation.
func TestLegacyShims(t *testing.T) {
	ts, _ := newTestServer(t)

	resp, err := http.Get(ts.URL + "/experiments")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.Get("Deprecation") != "true" {
		t.Error("legacy /experiments missing Deprecation header")
	}
	if link := resp.Header.Get("Link"); !strings.Contains(link, "/api/v1/experiments") {
		t.Errorf("legacy /experiments Link = %q, want successor-version", link)
	}
	var exps []client.ExperimentInfo
	if err := json.NewDecoder(resp.Body).Decode(&exps); err != nil {
		t.Fatalf("legacy /experiments is no longer a bare array: %v", err)
	}
	resp.Body.Close()
	if len(exps) != 20 {
		t.Fatalf("legacy catalogue has %d experiments, want 20", len(exps))
	}

	// Legacy submit + status + list still work end to end.
	resp, err = http.Post(ts.URL+"/runs", "application/json",
		strings.NewReader(`{"experiments": ["fig4"], "short": true, "samples": 1, "seed": 3}`))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("legacy POST /runs = %d, want 202", resp.StatusCode)
	}
	if resp.Header.Get("Deprecation") != "true" {
		t.Error("legacy POST /runs missing Deprecation header")
	}
	var sub struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	waitState(t, ts, sub.ID, 2*time.Minute)

	var list []client.RunStatus
	if resp := getJSON(t, ts.URL+"/runs", &list); resp.Header.Get("Deprecation") != "true" {
		t.Error("legacy GET /runs missing Deprecation header")
	}
	if len(list) != 1 || list[0].ID != sub.ID {
		t.Errorf("legacy listing = %+v", list)
	}

	var st client.RunStatus
	getJSON(t, ts.URL+"/runs/"+sub.ID, &st)
	if st.State != StateDone {
		t.Errorf("legacy status = %q, want done", st.State)
	}

	// Legacy error paths now carry the envelope too (the body shape was
	// previously unspecified; status codes are unchanged).
	resp, err = http.Get(ts.URL + "/runs/nope")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("legacy unknown run = %d, want 404", resp.StatusCode)
	}
	if code, _ := decodeEnvelope(t, resp); code != ErrCodeNotFound {
		t.Errorf("legacy 404 envelope code = %q", code)
	}
}

// TestDispatchShutdown verifies a dispatch-enabled server still honours
// the shutdown ordering contract: in-flight sharded runs are cancelled
// and waited for, and the engine closes without a send on a closed
// channel.
func TestDispatchShutdown(t *testing.T) {
	ts, api := newDispatchServer(t, DispatchOptions{})
	id := postRun(t, ts, `{"experiments": ["txt1"], "seed": 3}`)

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := api.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	st, err := testClient(ts).Run(context.Background(), id, false)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateCancelled {
		t.Errorf("run state after shutdown = %q, want %q", st.State, StateCancelled)
	}
}
