package engine

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/arch"
	"repro/internal/faultinject"
	"repro/internal/sim"
	"repro/internal/workload"
	"repro/internal/workload/javabench"
)

// TestSamplePanicContained verifies the worker-level recover: an injected
// panic inside one sample becomes that measurement's error — wrapping
// ErrSamplePanic, counted by the recovery metric — instead of crashing
// the process.
func TestSamplePanicContained(t *testing.T) {
	e := New(Options{Workers: 2, Fault: faultinject.New(faultinject.Rule{
		Point: faultinject.PointSample, Times: 1,
		Action: faultinject.Action{Panic: true},
	})})
	defer e.Close()

	b := javabench.Tomcat()
	env := workload.DefaultEnv(arch.ARMv8())
	_, err := e.Measure(context.Background(), b, env, 3, 42)
	if !errors.Is(err, ErrSamplePanic) {
		t.Fatalf("Measure returned %v, want ErrSamplePanic", err)
	}
	if got := e.met.panicsRecovered.Value(); got != 1 {
		t.Errorf("panics recovered = %v, want 1", got)
	}
	// The pool survived: the same engine still measures cleanly.
	want, _ := workload.Measure(b, env, 3, 42)
	got, err := e.Measure(context.Background(), b, env, 3, 42)
	if err != nil {
		t.Fatalf("engine dead after recovered panic: %v", err)
	}
	if got != want {
		t.Errorf("post-panic summary %+v != sequential %+v", got, want)
	}
}

// TestSimPanicSurfacesAsJobError is the regression test for the
// sim.Machine out-of-range panics (WriteMem/PreTouch): routed through a
// worker, they surface as a contained job error carrying the panic
// message, not a process crash.
func TestSimPanicSurfacesAsJobError(t *testing.T) {
	e := New(Options{Workers: 1})
	defer e.Close()

	boom := func() (float64, error) {
		m, err := sim.New(arch.ARMv8(), sim.Config{Cores: 1, MemWords: 64, Seed: 1})
		if err != nil {
			return 0, err
		}
		m.WriteMem(64, 1) // one past the end: panics
		return 0, nil
	}
	var out float64
	var errv error
	var wg sync.WaitGroup
	wg.Add(1)
	e.jobs <- job{ctx: context.Background(), out: &out, err: &errv, wg: &wg,
		enqueued: time.Now(), run: boom}
	wg.Wait()
	if !errors.Is(errv, ErrSamplePanic) {
		t.Fatalf("sim panic returned %v, want ErrSamplePanic", errv)
	}
	if !strings.Contains(errv.Error(), "WriteMem address 64 out of range") {
		t.Errorf("panic message lost: %v", errv)
	}
}

// TestSampleTimeoutWatchdog verifies a hung sample is abandoned after
// SampleTimeout: the measurement fails with ErrSampleTimeout, the worker
// moves on, and the abandoned-goroutine gauge tracks the runaway until
// it finishes.
func TestSampleTimeoutWatchdog(t *testing.T) {
	e := New(Options{Workers: 1, SampleTimeout: 50 * time.Millisecond})
	defer e.Close()

	release := make(chan struct{})
	hang := func() (float64, error) { <-release; return 0, nil }
	var out float64
	var errv error
	var wg sync.WaitGroup
	wg.Add(1)
	e.jobs <- job{ctx: context.Background(), out: &out, err: &errv, wg: &wg,
		enqueued: time.Now(), run: hang}
	wg.Wait()
	if !errors.Is(errv, ErrSampleTimeout) {
		t.Fatalf("hung sample returned %v, want ErrSampleTimeout", errv)
	}
	if got := e.met.sampleTimeouts.Value(); got != 1 {
		t.Errorf("sample timeouts = %v, want 1", got)
	}
	if got := e.met.abandoned.Value(); got != 1 {
		t.Errorf("abandoned gauge = %v, want 1 while hung", got)
	}

	// The worker is free despite the runaway: a fast sample completes
	// well inside the watchdog deadline.
	var out2 float64
	var errv2 error
	wg.Add(1)
	e.jobs <- job{ctx: context.Background(), out: &out2, err: &errv2, wg: &wg,
		enqueued: time.Now(), run: func() (float64, error) { return 7, nil }}
	wg.Wait()
	if errv2 != nil || out2 != 7 {
		t.Fatalf("worker wedged after abandonment: out=%v err=%v", out2, errv2)
	}

	// Releasing the runaway drains the gauge.
	close(release)
	deadline := time.Now().Add(5 * time.Second)
	for e.met.abandoned.Value() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("abandoned gauge never drained")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestSampleRetryRecovers verifies transient failures are retried with
// the original positional seed: a fault injected once makes the first
// attempt fail, the retry succeeds, and the summary is bit-identical to
// an unfaulted sequential measurement.
func TestSampleRetryRecovers(t *testing.T) {
	e := New(Options{
		Workers: 2,
		Retry:   RetryPolicy{Max: 2, Base: time.Millisecond, Cap: 5 * time.Millisecond},
		Fault: faultinject.New(faultinject.Rule{
			Point: faultinject.PointSample, Times: 1,
			Action: faultinject.Action{Err: errors.New("transient")},
		}),
	})
	defer e.Close()

	b := javabench.Tomcat()
	env := workload.DefaultEnv(arch.ARMv8())
	want, err := workload.Measure(b, env, 3, 42)
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.Measure(context.Background(), b, env, 3, 42)
	if err != nil {
		t.Fatalf("Measure failed despite retries: %v", err)
	}
	if got != want {
		t.Errorf("retried summary %+v != sequential %+v (positional seed lost?)", got, want)
	}
	if got := e.met.sampleRetries.Value(); got < 1 {
		t.Errorf("sample retries = %v, want >= 1", got)
	}
}

// TestSampleRetryExhaustion verifies a persistent failure is bounded by
// the policy: Retry.Max rounds, then the error surfaces to the driver.
func TestSampleRetryExhaustion(t *testing.T) {
	e := New(Options{
		Workers: 2,
		Retry:   RetryPolicy{Max: 2, Base: time.Millisecond, Cap: 5 * time.Millisecond},
		Fault: faultinject.New(faultinject.Rule{
			Point:  faultinject.PointSample, // no Times cap: always fails
			Action: faultinject.Action{Err: errors.New("persistent")},
		}),
	})
	defer e.Close()

	b := javabench.Tomcat()
	env := workload.DefaultEnv(arch.ARMv8())
	_, err := e.Measure(context.Background(), b, env, 2, 42)
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("Measure returned %v, want ErrInjected", err)
	}
	// 2 samples failed twice more each: exactly Max * n retries.
	if got := e.met.sampleRetries.Value(); got != 4 {
		t.Errorf("sample retries = %v, want 4", got)
	}
}

// TestCalibrationPanicContained verifies a panicking calibration becomes
// that request's error, never a wedged cache: concurrent waiters all get
// the error, the entry is evicted, and the next request recomputes.
func TestCalibrationPanicContained(t *testing.T) {
	e := New(Options{Workers: 2, Fault: faultinject.New(faultinject.Rule{
		Point: faultinject.PointCalibration, Times: 1,
		Action: faultinject.Action{Panic: true},
	})})
	defer e.Close()

	ctx := context.Background()
	sizes := []int64{1, 8}
	if _, err := e.Calibration(ctx, arch.ARMv8(), sizes, 1); err == nil {
		t.Fatal("panicking calibration reported success")
	}
	// The rule is exhausted; the evicted entry recomputes cleanly.
	if _, err := e.Calibration(ctx, arch.ARMv8(), sizes, 1); err != nil {
		t.Fatalf("calibration cache wedged after panic: %v", err)
	}
}

// TestExperimentFaultIsolation verifies containment at the run level: a
// sample fault sinks one experiment (explicit non-ok status) while its
// siblings complete, instead of poisoning the whole run.
func TestExperimentFaultIsolation(t *testing.T) {
	// fig4 is calibration-only; ext-c11 drives pooled samples, so the
	// sample-point rule fails exactly one of the two.
	e := New(Options{Workers: 2, Fault: faultinject.New(faultinject.Rule{
		Point:  faultinject.PointSample,
		Action: faultinject.Action{Err: errors.New("broken rig")},
	})})
	defer e.Close()

	results, err := e.Run(context.Background(), []string{"fig4", "ext-c11"},
		RunOptions{Short: true, Samples: 1, Seed: 3, Parallel: 2}, nil)
	if err == nil {
		t.Fatal("run with a failing experiment reported success")
	}
	if len(results) != 2 {
		t.Fatalf("got %d results, want 2", len(results))
	}
	if results[0].Status != StatusOK {
		t.Errorf("fig4 status = %q, want ok (sibling poisoned?)", results[0].Status)
	}
	if s := results[1].Status; s != StatusFailed && s != StatusIncomplete {
		t.Errorf("ext-c11 status = %q, want failed or incomplete", s)
	}
	if !strings.Contains(results[1].Err, "broken rig") {
		t.Errorf("injected error lost: %q", results[1].Err)
	}
}

// TestFaultMetricsExposed verifies every recovery event lands in the
// exposition: injections, recovered panics, timeouts, and retries are
// all visible on /metrics.
func TestFaultMetricsExposed(t *testing.T) {
	e := New(Options{
		Workers: 1,
		Retry:   RetryPolicy{Max: 1, Base: time.Millisecond, Cap: time.Millisecond},
		Fault: faultinject.New(faultinject.Rule{
			Point: faultinject.PointSample, Times: 1,
			Action: faultinject.Action{Panic: true},
		}),
	})
	defer e.Close()

	b := javabench.Tomcat()
	env := workload.DefaultEnv(arch.ARMv8())
	if _, err := e.Measure(context.Background(), b, env, 1, 42); err != nil {
		t.Fatalf("retry did not absorb the single injected panic: %v", err)
	}

	var sb strings.Builder
	if err := e.Metrics().WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		`wmm_fault_injections_total{point="sample"} 1`,
		"wmm_engine_sample_panics_recovered_total 1",
		"wmm_engine_sample_retries_total 1",
		"# TYPE wmm_engine_samples_abandoned gauge",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}
