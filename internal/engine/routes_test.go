package engine

import (
	"bytes"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestV1ErrorEnvelopeAudit sweeps the failure surface of the v1 API:
// every 4xx/5xx — malformed bodies, unknown IDs, bad query parameters,
// unknown routes under /api/v1/, wrong methods, dead leases — must
// answer with Content-Type application/json and the uniform envelope
// {"error": {"code", "message"}}.  Wrong-method responses must also
// carry an Allow header listing the registered verbs.
func TestV1ErrorEnvelopeAudit(t *testing.T) {
	ts, _ := newDispatchServer(t, DispatchOptions{})

	cases := []struct {
		name      string
		method    string
		path      string
		body      string
		status    int
		code      string
		allowPart string // required substring of the Allow header
	}{
		{name: "runs bad body", method: "POST", path: "/api/v1/runs", body: "{", status: 400, code: ErrCodeInvalidArgument},
		{name: "runs unknown experiment", method: "POST", path: "/api/v1/runs", body: `{"experiments": ["no-such-figure"]}`, status: 400, code: ErrCodeInvalidArgument},
		{name: "litmus bad body", method: "POST", path: "/api/v1/litmus", body: "{", status: 400, code: ErrCodeInvalidArgument},
		{name: "optimize bad body", method: "POST", path: "/api/v1/optimize", body: "{", status: 400, code: ErrCodeInvalidArgument},
		{name: "optimize bad platform", method: "POST", path: "/api/v1/optimize", body: `{"platform": "cobol"}`, status: 400, code: ErrCodeInvalidArgument},
		{name: "runs bad limit", method: "GET", path: "/api/v1/runs?limit=bogus", status: 400, code: ErrCodeInvalidArgument},
		{name: "litmus bad limit", method: "GET", path: "/api/v1/litmus?limit=-3", status: 400, code: ErrCodeInvalidArgument},
		{name: "optimize bad limit", method: "GET", path: "/api/v1/optimize?limit=0", status: 400, code: ErrCodeInvalidArgument},
		{name: "lease missing worker", method: "POST", path: "/api/v1/leases", body: "{}", status: 400, code: ErrCodeInvalidArgument},

		{name: "run not found", method: "GET", path: "/api/v1/runs/run-999", status: 404, code: ErrCodeNotFound},
		{name: "run delete not found", method: "DELETE", path: "/api/v1/runs/run-999", status: 404, code: ErrCodeNotFound},
		{name: "litmus not found", method: "GET", path: "/api/v1/litmus/litmus-999", status: 404, code: ErrCodeNotFound},
		{name: "litmus delete not found", method: "DELETE", path: "/api/v1/litmus/litmus-999", status: 404, code: ErrCodeNotFound},
		{name: "optimize not found", method: "GET", path: "/api/v1/optimize/optimize-999", status: 404, code: ErrCodeNotFound},
		{name: "optimize delete not found", method: "DELETE", path: "/api/v1/optimize/optimize-999", status: 404, code: ErrCodeNotFound},

		{name: "unknown v1 route", method: "GET", path: "/api/v1/frobnicate", status: 404, code: ErrCodeNotFound},
		{name: "unknown v1 subpath", method: "GET", path: "/api/v1/runs/run-1/extra", status: 404, code: ErrCodeNotFound},

		{name: "runs wrong method", method: "PUT", path: "/api/v1/runs", body: "{}", status: 405, code: ErrCodeMethodNotAllowed, allowPart: "GET, POST"},
		{name: "optimize id wrong method", method: "PATCH", path: "/api/v1/optimize/optimize-1", body: "{}", status: 405, code: ErrCodeMethodNotAllowed, allowPart: "DELETE, GET"},
		{name: "leases wrong method", method: "GET", path: "/api/v1/leases", status: 405, code: ErrCodeMethodNotAllowed, allowPart: "POST"},
		{name: "heartbeat wrong method", method: "GET", path: "/api/v1/leases/lease-1/heartbeat", status: 405, code: ErrCodeMethodNotAllowed, allowPart: "POST"},

		{name: "dead lease heartbeat", method: "POST", path: "/api/v1/leases/lease-999/heartbeat", status: 410, code: ErrCodeLeaseGone},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, ts.URL+tc.path, strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != tc.status {
				t.Errorf("%s %s: status %d, want %d", tc.method, tc.path, resp.StatusCode, tc.status)
			}
			if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
				t.Errorf("%s %s: Content-Type %q, want application/json", tc.method, tc.path, ct)
			}
			if tc.allowPart != "" {
				if allow := resp.Header.Get("Allow"); !strings.Contains(allow, tc.allowPart) {
					t.Errorf("%s %s: Allow %q, want it to contain %q", tc.method, tc.path, allow, tc.allowPart)
				}
			}
			if code, _ := decodeEnvelope(t, resp); code != tc.code {
				t.Errorf("%s %s: error code %q, want %q", tc.method, tc.path, code, tc.code)
			}
		})
	}
}

// TestLegacySunsetHeaders pins the deprecation triple on a legacy
// route: Deprecation, the fixed Sunset date, and the successor Link.
func TestLegacySunsetHeaders(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/experiments")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("legacy /experiments: status %d", resp.StatusCode)
	}
	if resp.Header.Get("Deprecation") != "true" {
		t.Error("legacy route missing Deprecation header")
	}
	if got := resp.Header.Get("Sunset"); got != LegacySunset {
		t.Errorf("Sunset header %q, want %q", got, LegacySunset)
	}
	if link := resp.Header.Get("Link"); !strings.Contains(link, "/api/v1/experiments") {
		t.Errorf("Link header %q does not name the v1 successor", link)
	}
}

// TestLegacyRoutesDisabled flips ServerOptions.DisableLegacy: legacy
// routes answer 410 gone in the error envelope, naming the successor,
// while the v1 surface keeps serving.
func TestLegacyRoutesDisabled(t *testing.T) {
	ts, _, _ := newTestServerOpts(t, ServerOptions{Parallel: 2, DisableLegacy: true})
	resp, err := http.Get(ts.URL + "/runs")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("sunset legacy /runs: status %d, want 410", resp.StatusCode)
	}
	code, msg := decodeEnvelope(t, resp)
	if code != ErrCodeGone {
		t.Errorf("error code %q, want %q", code, ErrCodeGone)
	}
	if !strings.Contains(msg, "/api/v1/runs") {
		t.Errorf("410 message %q does not name the v1 successor", msg)
	}
	var page struct {
		Items []RunStatus `json:"items"`
	}
	if resp := getJSON(t, ts.URL+"/api/v1/runs", &page); resp.StatusCode != http.StatusOK {
		t.Fatalf("v1 /runs with legacy disabled: status %d", resp.StatusCode)
	}
}

// TestPatternMatches pins the segment matcher the 405 Allow computation
// rests on.
func TestPatternMatches(t *testing.T) {
	cases := []struct {
		pattern, path string
		want          bool
	}{
		{"/api/v1/runs", "/api/v1/runs", true},
		{"/api/v1/runs", "/api/v1/litmus", false},
		{"/api/v1/runs/{id}", "/api/v1/runs/run-3", true},
		{"/api/v1/runs/{id}", "/api/v1/runs/", false},
		{"/api/v1/runs/{id}", "/api/v1/runs/run-3/extra", false},
		{"/api/v1/leases/{id}/heartbeat", "/api/v1/leases/lease-1/heartbeat", true},
		{"/api/v1/leases/{id}/heartbeat", "/api/v1/leases/lease-1/results", false},
	}
	for _, tc := range cases {
		if got := patternMatches(tc.pattern, tc.path); got != tc.want {
			t.Errorf("patternMatches(%q, %q) = %v, want %v", tc.pattern, tc.path, got, tc.want)
		}
	}
}

// TestAPIDocInSync fails when docs/api-v1.json drifts from the route
// table it is generated from.  Regenerate with:
//
//	go run ./cmd/wmmd -print-api-doc > docs/api-v1.json
func TestAPIDocInSync(t *testing.T) {
	want := APIDoc()
	path := filepath.Join("..", "..", "docs", "api-v1.json")
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading committed API doc: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("docs/api-v1.json is stale: regenerate with `go run ./cmd/wmmd -print-api-doc > docs/api-v1.json`")
	}
}
