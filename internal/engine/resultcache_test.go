package engine

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/arch"
	"repro/internal/resultcache"
	"repro/internal/stats"
	"repro/internal/workload"
	"repro/internal/workload/javabench"
	"repro/wmm/client"
)

// shaHex hashes a ResultKey pre-image the way ResultKey does.
func shaHex(s string) string { return fmt.Sprintf("%x", sha256.Sum256([]byte(s))) }

// --- Content hash ---------------------------------------------------------

func TestResultKeyDiscriminates(t *testing.T) {
	base := RunOptions{Samples: 2, Seed: 3, Short: true}
	key := ResultKey("fig4", base)
	if len(key) != 64 || strings.ToLower(key) != key {
		t.Fatalf("key %q is not lowercase sha256 hex", key)
	}
	variants := map[string]string{
		"experiment": ResultKey("txt3", base),
		"samples":    ResultKey("fig4", RunOptions{Samples: 3, Seed: 3, Short: true}),
		"seed":       ResultKey("fig4", RunOptions{Samples: 2, Seed: 4, Short: true}),
		"short":      ResultKey("fig4", RunOptions{Samples: 2, Seed: 3, Short: false}),
		"adaptive":   ResultKey("fig4", RunOptions{Samples: 2, Seed: 3, Short: true, Adaptive: &stats.StopRule{RelPrecision: 0.05}}),
	}
	for dim, k := range variants {
		if k == key {
			t.Errorf("changing %s did not change the content hash", dim)
		}
	}
	// Irrelevant execution-shape fields must NOT participate: where and
	// how wide a job runs never changes its bytes.
	same := RunOptions{Samples: 2, Seed: 3, Short: true, Parallel: 7, NoCache: true}
	if ResultKey("fig4", same) != key {
		t.Error("parallelism/nocache changed the content hash")
	}
}

// TestResultKeyAdaptiveNormalised: a defaulted rule and its explicit
// spelling are the same measurement, so they must share a cache entry.
func TestResultKeyAdaptiveNormalised(t *testing.T) {
	defaulted := RunOptions{Seed: 3, Adaptive: &stats.StopRule{RelPrecision: 0.05}}
	explicit := RunOptions{Seed: 3, Adaptive: &stats.StopRule{
		RelPrecision: 0.05,
		MinSamples:   stats.DefaultMinSamples,
		MaxSamples:   stats.DefaultMaxSamples,
	}}
	if ResultKey("fig4", defaulted) != ResultKey("fig4", explicit) {
		t.Fatal("defaulted and explicit adaptive rules hash differently")
	}
}

// TestResultKeyVersioned: the engine version is part of the hash input,
// so bumping it orphans (rather than serves) every stale entry.  The
// guard recomputes the key under a hypothetical older version and
// checks it cannot collide with the current one.
func TestResultKeyVersioned(t *testing.T) {
	if !strings.Contains(EngineVersion, "v") {
		t.Fatalf("EngineVersion %q has no version discriminator", EngineVersion)
	}
	key := ResultKey("fig4", RunOptions{Seed: 3})
	// Same spec hashed under a different version prefix (the exact
	// pre-image format is ResultKey's; this mirrors it byte for byte).
	older := shaHex("wmm-engine-v0|exp=fig4|samples=0|seed=3|short=false")
	if key == older {
		t.Fatal("engine-version bump does not invalidate cache keys")
	}
	if key != shaHex(EngineVersion+"|exp=fig4|samples=0|seed=3|short=false") {
		t.Fatal("ResultKey pre-image drifted from the documented format")
	}
}

// --- Dispatcher integration ----------------------------------------------

func newCachedServer(t *testing.T, persist resultcache.Persist) (*client.Client, *Server, *resultcache.Cache) {
	t.Helper()
	cache := resultcache.New(resultcache.Options{Persist: persist})
	ts, api, eng := newTestServerOpts(t, ServerOptions{
		Parallel: 2,
		Dispatch: &DispatchOptions{Cache: cache},
	})
	_ = eng
	return testClient(ts), api, cache
}

func doneResults(t *testing.T, cl *client.Client, id string) []client.Result {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	st, err := cl.WaitRun(ctx, id, 20*time.Millisecond)
	if err != nil {
		t.Fatalf("wait %s: %v", id, err)
	}
	if st.State != StateDone {
		t.Fatalf("run %s ended %s: %s", id, st.State, st.Error)
	}
	return st.Results
}

// TestDispatchCacheReuse is the tentpole scenario: the same spec
// submitted twice is executed once — the second run is served entirely
// from the result cache, with provenance recorded per experiment and
// canonical JSON byte-identical to the first.
func TestDispatchCacheReuse(t *testing.T) {
	cl, api, cache := newCachedServer(t, nil)
	spec := client.RunSpec{Experiments: []string{"fig4", "txt3"}, Short: true, Samples: 2, Seed: 3, Parallel: 2}

	sub1, err := cl.SubmitRun(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	first := doneResults(t, cl, sub1.ID)
	for _, r := range first {
		if r.Cache != "" {
			t.Errorf("first run %s has cache provenance %q, want execution", r.Experiment, r.Cache)
		}
	}

	sub2, err := cl.SubmitRun(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	second := doneResults(t, cl, sub2.ID)
	for _, r := range second {
		if r.Cache != resultcache.SourceMemory {
			t.Errorf("second run %s provenance = %q, want %q", r.Experiment, r.Cache, resultcache.SourceMemory)
		}
	}

	// Exactly one execution per distinct job, cache hits for the rest.
	if local := api.disp.met.jobsDone.Value("local"); local != 2 {
		t.Errorf("local executions = %v, want 2", local)
	}
	if cached := api.disp.met.jobsDone.Value("cache"); cached != 2 {
		t.Errorf("cache-resolved jobs = %v, want 2", cached)
	}
	if st := cache.Stats(); st.Hits != 2 || st.Misses != 2 {
		t.Errorf("cache stats = %+v, want 2 hits / 2 misses", st)
	}

	// Byte-identity: the cached run's canonical JSON equals the executed
	// run's (provenance and wall time are excluded from canonical form).
	can1, err := cl.CanonicalRun(context.Background(), sub1.ID)
	if err != nil {
		t.Fatal(err)
	}
	can2, err := cl.CanonicalRun(context.Background(), sub2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(can1, can2) {
		t.Error("cached run's canonical JSON differs from the executed run's")
	}
}

// TestDispatchCacheSingleflight submits two identical runs
// concurrently: the cache's single-flight admission must merge them so
// each distinct job executes exactly once, and both runs' canonical
// JSON is byte-identical.  (Run under -race in CI.)
func TestDispatchCacheSingleflight(t *testing.T) {
	cl, api, cache := newCachedServer(t, nil)
	spec := client.RunSpec{Experiments: []string{"fig4", "txt3"}, Short: true, Samples: 2, Seed: 3, Parallel: 2}

	const runs = 2
	ids := make([]string, runs)
	var wg sync.WaitGroup
	for i := 0; i < runs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sub, err := cl.SubmitRun(context.Background(), spec)
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
			ids[i] = sub.ID
		}(i)
	}
	wg.Wait()

	var canon [][]byte
	for _, id := range ids {
		if id == "" {
			t.Fatal("a submission failed")
		}
		doneResults(t, cl, id)
		can, err := cl.CanonicalRun(context.Background(), id)
		if err != nil {
			t.Fatal(err)
		}
		canon = append(canon, can)
	}
	if !bytes.Equal(canon[0], canon[1]) {
		t.Error("concurrent identical runs produced different canonical JSON")
	}

	// Exactly one execution per distinct experiment job, however the
	// races resolved (follower merge or post-commit hit).
	if local := api.disp.met.jobsDone.Value("local"); local != 2 {
		t.Errorf("local executions = %v, want exactly 2 (one per distinct job)", local)
	}
	if st := cache.Stats(); st.Misses != 2 {
		t.Errorf("cache misses = %d, want 2 (each distinct job led once)", st.Misses)
	}
}

// corruptPersist serves garbage for every key: a poisoned persistent
// layer (torn write, version skew) must degrade to execution, never be
// delivered as a result — and a successful execution heals the entry.
type corruptPersist struct {
	mu sync.Mutex
	m  map[string][]byte
}

func (p *corruptPersist) CacheGet(key string) ([]byte, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if data, ok := p.m[key]; ok {
		return data, true
	}
	return []byte("{corrupt"), true
}

func (p *corruptPersist) CachePut(key string, data []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.m == nil {
		p.m = map[string][]byte{}
	}
	p.m[key] = append([]byte(nil), data...)
	return nil
}

func TestDispatchCachePoisonGuard(t *testing.T) {
	persist := &corruptPersist{}
	cl, api, _ := newCachedServer(t, persist)
	spec := client.RunSpec{Experiments: []string{"fig4"}, Short: true, Samples: 2, Seed: 3}

	sub, err := cl.SubmitRun(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	res := doneResults(t, cl, sub.ID)
	if len(res) != 1 || res[0].Status != StatusOK || res[0].Cache != "" {
		t.Fatalf("poisoned cache entry was not re-executed: %+v", res)
	}
	if local := api.disp.met.jobsDone.Value("local"); local != 1 {
		t.Errorf("local executions = %v, want 1", local)
	}
	// The execution's Fulfill must have overwritten the poisoned entry
	// with decodable bytes.
	key := ResultKey("fig4", RunOptions{Samples: 2, Seed: 3, Short: true})
	data, _ := persist.CacheGet(key)
	var healed Result
	if err := json.Unmarshal(data, &healed); err != nil || healed.Experiment != "fig4" {
		t.Errorf("persisted entry not healed after execution: %q", data)
	}
}

// TestNoCacheEscapeHatch: nocache runs always execute and never commit.
func TestNoCacheEscapeHatch(t *testing.T) {
	cl, api, cache := newCachedServer(t, nil)
	spec := client.RunSpec{Experiments: []string{"fig4"}, Short: true, Samples: 2, Seed: 3, NoCache: true}

	for i := 0; i < 2; i++ {
		sub, err := cl.SubmitRun(context.Background(), spec)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range doneResults(t, cl, sub.ID) {
			if r.Cache != "" {
				t.Errorf("nocache run %d served from cache (%s)", i, r.Cache)
			}
		}
	}
	if local := api.disp.met.jobsDone.Value("local"); local != 2 {
		t.Errorf("local executions = %v, want 2 (no reuse)", local)
	}
	if st := cache.Stats(); st.Entries != 0 || st.Hits+st.Misses != 0 {
		t.Errorf("nocache runs touched the cache: %+v", st)
	}
}

// --- Adaptive sampling ----------------------------------------------------

// TestMeasureAdaptiveDeterministic: the sequential stopping rule is a
// pure function of positionally-seeded samples, so two engines stop at
// the same n with the same summary — and sampling respects the bounds.
func TestMeasureAdaptiveDeterministic(t *testing.T) {
	b := javabench.Tomcat()
	env := workload.DefaultEnv(arch.ARMv8())
	rule := stats.StopRule{RelPrecision: 0.10, MinSamples: 3, MaxSamples: 12}

	run := func() stats.Summary {
		e := New(Options{Workers: 3})
		defer e.Close()
		sum, err := e.MeasureAdaptive(context.Background(), b, env, rule, 42)
		if err != nil {
			t.Fatal(err)
		}
		return sum
	}
	first, second := run(), run()
	if first != second {
		t.Fatalf("adaptive summaries diverged:\n%+v\n%+v", first, second)
	}
	if first.N < rule.MinSamples || first.N > rule.MaxSamples {
		t.Fatalf("stopped at n=%d outside [%d, %d]", first.N, rule.MinSamples, rule.MaxSamples)
	}
	// Whatever n it stopped at, the samples must be the positional
	// prefix the fixed path would draw.
	want, err := workload.Measure(b, env, first.N, 42)
	if err != nil {
		t.Fatal(err)
	}
	if first != want {
		t.Fatalf("adaptive summary %+v != fixed-n prefix %+v", first, want)
	}
}

// TestAdaptiveRunAPI drives the opt-in end to end through the v1 API:
// the run completes, per-experiment sample accounting reflects the
// stopping rule, and repeated adaptive runs stay byte-identical.
func TestAdaptiveRunAPI(t *testing.T) {
	ts, _ := newTestServer(t)
	cl := testClient(ts)
	spec := client.RunSpec{
		Experiments: []string{"fig4"},
		Short:       true,
		Seed:        3,
		Adaptive:    &client.AdaptiveSpec{RelPrecision: 0.25, MaxSamples: 8},
	}
	canonical := func() []byte {
		sub, err := cl.SubmitRun(context.Background(), spec)
		if err != nil {
			t.Fatal(err)
		}
		doneResults(t, cl, sub.ID)
		can, err := cl.CanonicalRun(context.Background(), sub.ID)
		if err != nil {
			t.Fatal(err)
		}
		return can
	}
	if !bytes.Equal(canonical(), canonical()) {
		t.Error("adaptive runs are not byte-identical")
	}
}

func TestAdaptiveValidation(t *testing.T) {
	ts, _ := newTestServer(t)
	cl := testClient(ts)
	_, err := cl.SubmitRun(context.Background(), client.RunSpec{
		Experiments: []string{"fig4"},
		Adaptive:    &client.AdaptiveSpec{RelPrecision: 2.0},
	})
	var apiErr *client.Error
	if !errors.As(err, &apiErr) || apiErr.Status != 400 {
		t.Fatalf("bad adaptive spec returned %v, want 400", err)
	}
}
