package engine

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"
)

// postTenantRun submits a spec with an explicit X-WMM-Tenant header and
// returns the raw response (callers close the body / decode it).
func postTenantRun(t *testing.T, url, tenant, spec string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/api/v1/runs", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		req.Header.Set(TenantHeader, tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func submitTenantRun(t *testing.T, url, tenant, spec string) string {
	t.Helper()
	resp := postTenantRun(t, url, tenant, spec)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("tenant %q submit = %d, want 202", tenant, resp.StatusCode)
	}
	var out struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil || out.ID == "" {
		t.Fatalf("tenant submit decode: %v (id %q)", err, out.ID)
	}
	return out.ID
}

// TestFairShareDequeueOrder drives the weighted round-robin dequeue
// directly: with one noisy tenant holding a deep queue and one quiet
// tenant holding two jobs, the quiet tenant's work surfaces within the
// first rotations instead of waiting behind the flood — and a weight-2
// tenant gets two dequeues per round.
func TestFairShareDequeueOrder(t *testing.T) {
	eng := New(Options{Workers: 1})
	defer eng.Close()
	d := NewDispatcher(eng, DispatchOptions{
		LocalSlots:    -1, // nothing drains: the queue order is the test
		TenantWeights: map[string]int{"heavy": 2},
	}, 1)
	defer d.Close()

	enqueue := func(tenant string, n int) {
		for i := 0; i < n; i++ {
			d.push(&dispatchJob{
				runID:  fmt.Sprintf("%s-run", tenant),
				tenant: tenant,
				name:   fmt.Sprintf("%s-%d", tenant, i),
				ctx:    context.Background(),
			})
		}
	}
	enqueue("noisy", 10)
	enqueue("quiet", 2)
	enqueue("heavy", 6)

	var order []string
	d.mu.Lock()
	for j := d.popLocked(); j != nil; j = d.popLocked() {
		order = append(order, j.tenant)
	}
	d.mu.Unlock()
	if len(order) != 18 {
		t.Fatalf("drained %d jobs, want 18", len(order))
	}
	// Both quiet jobs must surface within the first two rotations (a
	// rotation is at most 1 noisy + 1 quiet + 2 heavy dequeues), not
	// after the noisy tenant's backlog.
	quietDone := 0
	for _, tenant := range order[:8] {
		if tenant == "quiet" {
			quietDone++
		}
	}
	if quietDone != 2 {
		t.Fatalf("quiet jobs in first 8 dequeues = %d, want 2 (order %v)", quietDone, order)
	}
	// Weight 2 earns heavy twice the dequeues of noisy while all three
	// tenants still have work: the first two full rounds are 8 dequeues
	// (1 noisy + 1 quiet + 2 heavy each).
	heavyEarly, noisyEarly := 0, 0
	for _, tenant := range order[:8] {
		switch tenant {
		case "heavy":
			heavyEarly++
		case "noisy":
			noisyEarly++
		}
	}
	if heavyEarly != 4 || noisyEarly != 2 {
		t.Errorf("first 2 rounds: heavy %d / noisy %d dequeues, want 4 / 2 (order %v)",
			heavyEarly, noisyEarly, order)
	}
}

// TestFairShareNoStarvation is the end-to-end guarantee: a tenant
// saturating the dispatch queue cannot starve another tenant's single
// queued run.  One local slot serialises execution; tenant "noisy"
// floods six runs, tenant "quiet" submits one, and quiet must finish
// while noisy still has runs outstanding.
func TestFairShareNoStarvation(t *testing.T) {
	ts, _, _ := newTestServerOpts(t, ServerOptions{
		Parallel: 1,
		Dispatch: &DispatchOptions{LocalSlots: 1},
	})

	var noisy []string
	for i := 0; i < 6; i++ {
		noisy = append(noisy, submitTenantRun(t, ts.URL, "noisy",
			fmt.Sprintf(`{"experiments": ["fig4"], "short": true, "samples": 1, "seed": %d}`, i+10)))
	}
	quiet := submitTenantRun(t, ts.URL, "quiet",
		`{"experiments": ["fig4"], "short": true, "samples": 1, "seed": 99}`)

	st := waitState(t, ts, quiet, 2*time.Minute)
	if st.State != StateDone {
		t.Fatalf("quiet run ended %s (err %q)", st.State, st.Error)
	}
	if st.Spec.Tenant != "quiet" {
		t.Errorf("quiet run spec.tenant = %q, want %q", st.Spec.Tenant, "quiet")
	}
	// Snapshot the noisy backlog immediately: with fair-share the quiet
	// run jumped the queue, so most of the flood must still be pending.
	cl := testClient(ts)
	outstanding := 0
	for _, id := range noisy {
		rs, err := cl.Run(context.Background(), id, false)
		if err != nil {
			t.Fatal(err)
		}
		if rs.State == StateRunning {
			outstanding++
		}
	}
	if outstanding < 2 {
		t.Fatalf("only %d noisy runs still outstanding when quiet finished; fair-share did not protect the quiet tenant", outstanding)
	}
	for _, id := range noisy {
		waitState(t, ts, id, 5*time.Minute)
	}
}

// TestTenantQueueQuota verifies the per-tenant admission bound: once a
// tenant's admitted jobs reach TenantMaxQueued, its next submission is
// refused with the 429 saturated envelope + Retry-After while other
// tenants keep submitting freely.
func TestTenantQueueQuota(t *testing.T) {
	ts, _, _ := newTestServerOpts(t, ServerOptions{
		Parallel: 1,
		Dispatch: &DispatchOptions{LocalSlots: 1, TenantMaxQueued: 1, RetryAfter: time.Second},
	})

	// txt1 at full size pins the tenant's single quota slot for minutes.
	id := submitTenantRun(t, ts.URL, "greedy", `{"experiments": ["txt1"], "seed": 3}`)

	resp := postTenantRun(t, ts.URL, "greedy", `{"experiments": ["fig4"], "short": true, "samples": 1, "seed": 3}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		resp.Body.Close()
		t.Fatalf("over-quota submit = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("tenant-quota 429 missing Retry-After header")
	}
	var env struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if env.Error.Code != ErrCodeSaturated {
		t.Errorf("tenant-quota envelope code = %q, want %q", env.Error.Code, ErrCodeSaturated)
	}
	if !strings.Contains(env.Error.Message, "greedy") {
		t.Errorf("tenant-quota message does not name the tenant: %q", env.Error.Message)
	}

	// The quota is per tenant, not global: another tenant sails through.
	other := submitTenantRun(t, ts.URL, "modest", `{"experiments": ["fig4"], "short": true, "samples": 1, "seed": 4}`)

	cl := testClient(ts)
	if _, err := cl.CancelRun(context.Background(), id); err != nil {
		t.Fatal(err)
	}
	waitState(t, ts, id, time.Minute)
	waitState(t, ts, other, 2*time.Minute)
}

// TestTenantRunningQuota verifies the server-level bound on concurrently
// executing runs per tenant, independent of queue depth.
func TestTenantRunningQuota(t *testing.T) {
	ts, _, _ := newTestServerOpts(t, ServerOptions{
		Parallel:         1,
		TenantMaxRunning: 1,
		Dispatch:         &DispatchOptions{LocalSlots: 1},
	})

	id := submitTenantRun(t, ts.URL, "capped", `{"experiments": ["txt1"], "seed": 3}`)
	resp := postTenantRun(t, ts.URL, "capped", `{"experiments": ["fig4"], "short": true, "samples": 1, "seed": 3}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		resp.Body.Close()
		t.Fatalf("second running submit = %d, want 429", resp.StatusCode)
	}
	resp.Body.Close()

	// A different tenant is not affected by capped's quota.
	other := submitTenantRun(t, ts.URL, "free", `{"experiments": ["fig4"], "short": true, "samples": 1, "seed": 5}`)

	cl := testClient(ts)
	if _, err := cl.CancelRun(context.Background(), id); err != nil {
		t.Fatal(err)
	}
	waitState(t, ts, id, time.Minute)
	waitState(t, ts, other, 2*time.Minute)

	// With the slot released the capped tenant submits again.
	again := submitTenantRun(t, ts.URL, "capped", `{"experiments": ["fig4"], "short": true, "samples": 1, "seed": 6}`)
	waitState(t, ts, again, 2*time.Minute)
}

// TestTenantResolution pins the precedence and validation rules: the
// X-WMM-Tenant header beats the spec field, the spec field beats the
// default, and malformed names are 400s, not silent fallbacks.
func TestTenantResolution(t *testing.T) {
	ts, _, _ := newTestServerOpts(t, ServerOptions{Parallel: 1, Dispatch: &DispatchOptions{LocalSlots: 1}})

	// Header wins over the spec field.
	id := submitTenantRun(t, ts.URL, "header-team",
		`{"experiments": ["fig4"], "short": true, "samples": 1, "seed": 3, "tenant": "spec-team"}`)
	if st := waitState(t, ts, id, 2*time.Minute); st.Spec.Tenant != "header-team" {
		t.Errorf("header precedence: spec.tenant = %q, want %q", st.Spec.Tenant, "header-team")
	}

	// Spec field alone is honoured.
	id2 := submitTenantRun(t, ts.URL, "",
		`{"experiments": ["fig4"], "short": true, "samples": 1, "seed": 4, "tenant": "spec-team"}`)
	if st := waitState(t, ts, id2, 2*time.Minute); st.Spec.Tenant != "spec-team" {
		t.Errorf("spec tenant: got %q, want %q", st.Spec.Tenant, "spec-team")
	}

	// Neither set: the default tenant is recorded explicitly.
	id3 := submitTenantRun(t, ts.URL, "", `{"experiments": ["fig4"], "short": true, "samples": 1, "seed": 5}`)
	if st := waitState(t, ts, id3, 2*time.Minute); st.Spec.Tenant != DefaultTenant {
		t.Errorf("default tenant: got %q, want %q", st.Spec.Tenant, DefaultTenant)
	}

	for _, bad := range []string{"has space", "semi;colon", strings.Repeat("x", 65)} {
		resp := postTenantRun(t, ts.URL, bad, `{"experiments": ["fig4"], "short": true, "samples": 1}`)
		code := resp.StatusCode
		resp.Body.Close()
		if code != http.StatusBadRequest {
			t.Errorf("tenant %q: submit = %d, want 400", bad, code)
		}
	}
}

// TestLitmusTenantQuota verifies campaigns share the tenant admission
// budget with experiment runs.
func TestLitmusTenantQuota(t *testing.T) {
	ts, _, _ := newTestServerOpts(t, ServerOptions{
		Parallel: 1,
		Dispatch: &DispatchOptions{LocalSlots: 1, TenantMaxQueued: 2},
	})

	// One run holding a quota slot...
	id := submitTenantRun(t, ts.URL, "lab", `{"experiments": ["txt1"], "seed": 3}`)

	// ...then a campaign whose shards exceed the remaining tenant budget.
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/api/v1/litmus",
		strings.NewReader(`{"arch": "armv8", "count": 6, "shard_size": 2, "trials": 5}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(TenantHeader, "lab")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	code := resp.StatusCode
	resp.Body.Close()
	if code != http.StatusTooManyRequests {
		t.Fatalf("over-quota litmus submit = %d, want 429", code)
	}

	cl := testClient(ts)
	if _, err := cl.CancelRun(context.Background(), id); err != nil {
		t.Fatal(err)
	}
	waitState(t, ts, id, time.Minute)
}

// TestReadyzRole pins the satellite contract: an embedded (non-HA)
// server always reports itself the leader on /readyz, so operators can
// tell a standby 503 from a broken one.
func TestReadyzRole(t *testing.T) {
	ts, _ := newTestServer(t)
	var out map[string]any
	resp := getJSON(t, ts.URL+"/readyz", &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz = %d, want 200", resp.StatusCode)
	}
	if out["role"] != "leader" {
		t.Errorf("readyz role = %v, want %q", out["role"], "leader")
	}
	if out["ready"] != true {
		t.Errorf("readyz ready = %v, want true", out["ready"])
	}
}
