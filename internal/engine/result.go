package engine

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"runtime/debug"
	"strings"
	"sync"
	"time"

	"repro/internal/experiments"
	"repro/internal/report"
	"repro/internal/stats"
)

// EngineVersion participates in every result-cache content hash, so any
// change to the engine's measurement semantics (sampling, seeding,
// summarisation, driver output) must bump it — stale cached results from
// an older engine then simply stop matching instead of being served.
const EngineVersion = "wmm-engine-v8"

// ResultKey is the canonical content hash of one experiment execution:
// everything that determines the result's bytes — experiment name, sample
// schedule (fixed count or normalised adaptive rule), base seed, short
// mode, and the engine version.  Two jobs with equal keys produce
// byte-identical canonical results, which is the soundness condition for
// serving one from the other's cache entry.
func ResultKey(name string, o RunOptions) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s|exp=%s|samples=%d|seed=%d|short=%t",
		EngineVersion, name, o.Samples, o.Seed, o.Short)
	if o.Adaptive != nil {
		// Normalise first so a defaulted rule and its explicit spelling
		// hash identically.
		r := o.Adaptive.WithDefaults()
		fmt.Fprintf(&sb, "|adaptive=%g:%d:%d", r.RelPrecision, r.MinSamples, r.MaxSamples)
	}
	return fmt.Sprintf("%x", sha256.Sum256([]byte(sb.String())))
}

// Experiment result statuses.  A Result always carries one, so partial
// outcomes are explicit instead of inferred from the error string.
const (
	// StatusOK: the experiment completed and all artefacts are present.
	StatusOK = "ok"
	// StatusCancelled: the run's context was cancelled mid-experiment.
	StatusCancelled = "cancelled"
	// StatusIncomplete: the experiment failed after producing partial
	// artefacts (some tables/fits/measurements); what it did produce is
	// retained in the Result.
	StatusIncomplete = "incomplete"
	// StatusFailed: the experiment failed before producing anything.
	StatusFailed = "failed"
)

// Result is the structured outcome of one experiment: the machine-readable
// counterpart of the ASCII tables, carrying the same rows plus the fitted
// sensitivities and execution accounting.
type Result struct {
	Experiment   string                  `json:"experiment"`
	Paper        string                  `json:"paper"`
	Desc         string                  `json:"desc"`
	Status       string                  `json:"status"`
	Tables       []*report.Table         `json:"tables,omitempty"`
	Fits         []experiments.FitRecord `json:"fits,omitempty"`
	Measurements int                     `json:"measurements"`
	Samples      int                     `json:"samples"`
	WallNs       int64                   `json:"wall_ns"`
	Output       string                  `json:"output"`
	Err          string                  `json:"error,omitempty"`
	// Cache records provenance when this result was served from the
	// result cache instead of executed: "memory", "store", or
	// "singleflight".  Empty means the experiment actually ran here.
	Cache string `json:"cache,omitempty"`
}

// JSON serializes the result.
func (r *Result) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// CanonicalRunJSON serializes a run's ordered results with the
// nondeterministic execution-accounting fields zeroed.  Two runs of the
// same spec and seed — including one interrupted and resumed from a
// checkpoint, or one served from the result cache — produce byte-identical
// canonical JSON; only wall-clock timing and cache provenance can ever
// differ, and this form strips exactly those.
func CanonicalRunJSON(results []*Result) ([]byte, error) {
	canon := make([]*Result, len(results))
	for i, r := range results {
		if r == nil {
			continue
		}
		c := *r
		c.WallNs = 0
		c.Cache = ""
		canon[i] = &c
	}
	return json.MarshalIndent(canon, "", "  ")
}

// RunOptions parameterises one engine run.
type RunOptions struct {
	// Samples per measurement (0 = the drivers' defaults).
	Samples int
	// Seed is the base random seed (0 = 1).
	Seed int64
	// Short runs the reduced sweep.
	Short bool
	// Parallel is the number of experiments in flight at once; 1 (the
	// sequential schedule) if <= 0.  Whatever the schedule, results are
	// returned in request order and each experiment's output is
	// buffered separately, so the bytes are identical for any value.
	Parallel int
	// Completed carries checkpointed results from a previous attempt of
	// the same run (keyed by experiment name).  Experiments found here
	// are restored verbatim — no execution, no Sink callbacks — which,
	// combined with positional seed derivation, makes a resumed run's
	// canonical JSON byte-identical to an uninterrupted one.
	Completed map[string]*Result
	// Adaptive, when non-nil, replaces the fixed sample count with the
	// sequential stopping rule (see stats.StopRule): each measurement
	// draws samples until its CI is tight enough.  Participates in the
	// result-cache content hash.
	Adaptive *stats.StopRule
	// NoCache bypasses the dispatcher's result cache for this run: jobs
	// always execute, and their results are not committed.  (The direct
	// Engine.Run path never consults the cache; this matters only for
	// dispatched runs.)
	NoCache bool
}

// AdaptiveSpec is the wire form of stats.StopRule used by the v1 API and
// job protocol.
type AdaptiveSpec struct {
	RelPrecision float64 `json:"rel_precision"`
	MinSamples   int     `json:"min_samples,omitempty"`
	MaxSamples   int     `json:"max_samples,omitempty"`
}

// Rule converts the wire form to the stats rule (nil-safe).
func (a *AdaptiveSpec) Rule() *stats.StopRule {
	if a == nil {
		return nil
	}
	return &stats.StopRule{
		RelPrecision: a.RelPrecision,
		MinSamples:   a.MinSamples,
		MaxSamples:   a.MaxSamples,
	}
}

// SpecFromRule converts a stats rule to its wire form (nil-safe).
func SpecFromRule(r *stats.StopRule) *AdaptiveSpec {
	if r == nil {
		return nil
	}
	return &AdaptiveSpec{
		RelPrecision: r.RelPrecision,
		MinSamples:   r.MinSamples,
		MaxSamples:   r.MaxSamples,
	}
}

// Sink observes a run's progress.  Callbacks may arrive from multiple
// experiment goroutines; the engine does not serialize them.
type Sink interface {
	ExperimentStarted(name string)
	ExperimentDone(r *Result)
}

// Run executes the named experiments (nil or empty = all, in paper order)
// and returns one Result per experiment, in request order.  Individual
// experiment failures are contained in their Result (with an explicit
// Status) and the first failure (in request order) is also returned as
// the run's error; the remaining experiments still execute — one failed
// experiment never poisons the rest of the run.  Cancellation stops
// scheduling and aborts in-flight experiments at their next measurement.
func (e *Engine) Run(ctx context.Context, names []string, o RunOptions, sink Sink) ([]*Result, error) {
	var exps []experiments.Experiment
	if len(names) == 0 {
		exps = experiments.All()
	} else {
		for _, name := range names {
			ex, err := experiments.ByName(name)
			if err != nil {
				return nil, err
			}
			exps = append(exps, ex)
		}
	}

	parallel := o.Parallel
	if parallel <= 0 {
		parallel = 1
	}
	if parallel > len(exps) {
		parallel = len(exps)
	}

	results := make([]*Result, len(exps))
	sem := make(chan struct{}, parallel)
	var wg sync.WaitGroup
	for i, ex := range exps {
		if prev, ok := o.Completed[ex.Name]; ok && prev != nil {
			// Restored from a checkpoint: no execution, no sink events
			// (the caller already accounted for it when it first ran).
			results[i] = prev
			continue
		}
		wg.Add(1)
		go func(i int, ex experiments.Experiment) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if sink != nil {
				sink.ExperimentStarted(ex.Name)
			}
			results[i] = e.runOne(ctx, ex, o)
			if sink != nil {
				sink.ExperimentDone(results[i])
			}
		}(i, ex)
	}
	wg.Wait()

	for _, r := range results {
		if r.Err != "" {
			return results, fmt.Errorf("%s: %s", r.Experiment, r.Err)
		}
	}
	return results, nil
}

// RunExperiment executes one named experiment through the engine's
// worker pool and calibration cache, returning its structured Result.
// This is the unit of work the sharded backend distributes: a job is
// fully determined by (name, Seed, Samples, Short) — positional seed
// derivation makes the Result byte-identical (wall time aside) in
// whichever process executes it, which is what makes remote execution
// safe to verify against a local run.
func (e *Engine) RunExperiment(ctx context.Context, name string, o RunOptions) (*Result, error) {
	ex, err := experiments.ByName(name)
	if err != nil {
		return nil, err
	}
	return e.runOne(ctx, ex, o), nil
}

// runOne executes a single experiment against the engine, buffering its
// rendered output and collecting its structured artefacts.  A panicking
// driver (or anything it calls outside the worker pool, e.g. a
// calibration) is recovered into a failed Result: fault containment at
// the experiment boundary, mirroring the worker-level containment at the
// sample boundary.
func (e *Engine) runOne(ctx context.Context, ex experiments.Experiment, o RunOptions) *Result {
	var buf bytes.Buffer
	col := &experiments.Collector{}
	opt := experiments.Options{
		Samples:  o.Samples,
		Seed:     o.Seed,
		Short:    o.Short,
		Out:      &buf,
		Ctx:      ctx,
		RT:       e,
		Collect:  col,
		Adaptive: o.Adaptive,
	}
	start := time.Now()
	err := func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				e.met.expPanics.Inc()
				err = fmt.Errorf("driver panicked: %v\n%s", r, debug.Stack())
			}
		}()
		return ex.Run(opt)
	}()
	r := &Result{
		Experiment:   ex.Name,
		Paper:        ex.Paper,
		Desc:         ex.Desc,
		Tables:       col.Tables,
		Fits:         col.Fits,
		Measurements: col.Measurements,
		Samples:      col.Samples,
		WallNs:       time.Since(start).Nanoseconds(),
		Output:       buf.String(),
	}
	if err != nil {
		r.Err = err.Error()
	}
	switch {
	case err == nil:
		r.Status = StatusOK
	case r.Canceled():
		r.Status = StatusCancelled
	case col.Measurements > 0 || len(col.Tables) > 0 || len(col.Fits) > 0:
		r.Status = StatusIncomplete
	default:
		r.Status = StatusFailed
	}
	e.met.experimentDur.Observe(time.Since(start).Seconds())
	e.met.experiments.Inc(r.Status)
	return r
}

// Canceled reports whether a result's error records a context
// cancellation or deadline (as opposed to a genuine experiment failure).
// Driver errors cross the Result boundary as strings, and %w-wrapping
// preserves the sentinel's rendering as a suffix.
func (r *Result) Canceled() bool {
	return r.Err != "" &&
		(strings.Contains(r.Err, context.Canceled.Error()) ||
			strings.Contains(r.Err, context.DeadlineExceeded.Error()))
}
