package engine

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/experiments"
	"repro/internal/report"
)

// Result is the structured outcome of one experiment: the machine-readable
// counterpart of the ASCII tables, carrying the same rows plus the fitted
// sensitivities and execution accounting.
type Result struct {
	Experiment   string                  `json:"experiment"`
	Paper        string                  `json:"paper"`
	Desc         string                  `json:"desc"`
	Tables       []*report.Table         `json:"tables,omitempty"`
	Fits         []experiments.FitRecord `json:"fits,omitempty"`
	Measurements int                     `json:"measurements"`
	Samples      int                     `json:"samples"`
	WallNs       int64                   `json:"wall_ns"`
	Output       string                  `json:"output"`
	Err          string                  `json:"error,omitempty"`
}

// JSON serializes the result.
func (r *Result) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// RunOptions parameterises one engine run.
type RunOptions struct {
	// Samples per measurement (0 = the drivers' defaults).
	Samples int
	// Seed is the base random seed (0 = 1).
	Seed int64
	// Short runs the reduced sweep.
	Short bool
	// Parallel is the number of experiments in flight at once; 1 (the
	// sequential schedule) if <= 0.  Whatever the schedule, results are
	// returned in request order and each experiment's output is
	// buffered separately, so the bytes are identical for any value.
	Parallel int
}

// Sink observes a run's progress.  Callbacks may arrive from multiple
// experiment goroutines; the engine does not serialize them.
type Sink interface {
	ExperimentStarted(name string)
	ExperimentDone(r *Result)
}

// Run executes the named experiments (nil or empty = all, in paper order)
// and returns one Result per experiment, in request order.  Individual
// experiment failures are recorded in their Result and the first one (in
// request order) is also returned as the run's error; cancellation stops
// scheduling and aborts in-flight experiments at their next measurement.
func (e *Engine) Run(ctx context.Context, names []string, o RunOptions, sink Sink) ([]*Result, error) {
	var exps []experiments.Experiment
	if len(names) == 0 {
		exps = experiments.All()
	} else {
		for _, name := range names {
			ex, err := experiments.ByName(name)
			if err != nil {
				return nil, err
			}
			exps = append(exps, ex)
		}
	}

	parallel := o.Parallel
	if parallel <= 0 {
		parallel = 1
	}
	if parallel > len(exps) {
		parallel = len(exps)
	}

	results := make([]*Result, len(exps))
	sem := make(chan struct{}, parallel)
	var wg sync.WaitGroup
	for i, ex := range exps {
		wg.Add(1)
		go func(i int, ex experiments.Experiment) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if sink != nil {
				sink.ExperimentStarted(ex.Name)
			}
			results[i] = e.runOne(ctx, ex, o)
			if sink != nil {
				sink.ExperimentDone(results[i])
			}
		}(i, ex)
	}
	wg.Wait()

	for _, r := range results {
		if r.Err != "" {
			return results, fmt.Errorf("%s: %s", r.Experiment, r.Err)
		}
	}
	return results, nil
}

// runOne executes a single experiment against the engine, buffering its
// rendered output and collecting its structured artefacts.
func (e *Engine) runOne(ctx context.Context, ex experiments.Experiment, o RunOptions) *Result {
	var buf bytes.Buffer
	col := &experiments.Collector{}
	opt := experiments.Options{
		Samples: o.Samples,
		Seed:    o.Seed,
		Short:   o.Short,
		Out:     &buf,
		Ctx:     ctx,
		RT:      e,
		Collect: col,
	}
	start := time.Now()
	err := ex.Run(opt)
	r := &Result{
		Experiment:   ex.Name,
		Paper:        ex.Paper,
		Desc:         ex.Desc,
		Tables:       col.Tables,
		Fits:         col.Fits,
		Measurements: col.Measurements,
		Samples:      col.Samples,
		WallNs:       time.Since(start).Nanoseconds(),
		Output:       buf.String(),
	}
	if err != nil {
		r.Err = err.Error()
	}
	e.met.experimentDur.Observe(time.Since(start).Seconds())
	switch {
	case err == nil:
		e.met.experiments.Inc("ok")
	case r.Canceled():
		e.met.experiments.Inc("cancelled")
	default:
		e.met.experiments.Inc("failed")
	}
	return r
}

// Canceled reports whether a result's error records a context
// cancellation or deadline (as opposed to a genuine experiment failure).
// Driver errors cross the Result boundary as strings, and %w-wrapping
// preserves the sentinel's rendering as a suffix.
func (r *Result) Canceled() bool {
	return r.Err != "" &&
		(strings.Contains(r.Err, context.Canceled.Error()) ||
			strings.Contains(r.Err, context.DeadlineExceeded.Error()))
}
