package engine

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/arch"
	"repro/internal/workload"
	"repro/internal/workload/javabench"
	"repro/internal/workload/linuxbench"
)

// TestWorkerMachineCacheDeterminism drives many concurrent measurements of
// different configurations (profiles, benchmarks, metrics) through a small
// worker pool, so each worker's machine cache is reused and re-keyed across
// jobs.  Every pooled summary must be bit-identical to direct sequential
// execution.  Run under -race this also proves the caches are confined to
// their workers.
func TestWorkerMachineCacheDeterminism(t *testing.T) {
	e := New(Options{Workers: 3})
	defer e.Close()

	type study struct {
		b   *workload.Benchmark
		env workload.Env
	}
	studies := []study{
		{javabench.Tomcat(), workload.DefaultEnv(arch.ARMv8())},
		{javabench.Spark(), workload.DefaultEnv(arch.POWER7())},
		{linuxbench.Ebizzy(), workload.DefaultEnv(arch.ARMv8())},
		{javabench.Tomcat(), workload.DefaultEnv(arch.POWER7())},
	}

	var wg sync.WaitGroup
	for i, st := range studies {
		wg.Add(1)
		go func(i int, st study) {
			defer wg.Done()
			want, err := workload.Measure(st.b, st.env, 3, int64(40+i))
			if err != nil {
				t.Errorf("%s: sequential: %v", st.b.Name, err)
				return
			}
			got, err := e.Measure(context.Background(), st.b, st.env, 3, int64(40+i))
			if err != nil {
				t.Errorf("%s: pooled: %v", st.b.Name, err)
				return
			}
			if got != want {
				t.Errorf("%s: pooled summary %+v != sequential %+v", st.b.Name, got, want)
			}
		}(i, st)
	}
	wg.Wait()
}

// TestWorkerMachineCacheHandoffOnTimeout forces the sample watchdog to
// abandon a real simulator run mid-flight and then reuses the same worker
// for further samples.  The abandoned goroutine keeps simulating inside the
// old cache's machine while the worker measures with a fresh cache; under
// -race any sharing between the two would be reported.
func TestWorkerMachineCacheHandoffOnTimeout(t *testing.T) {
	// The generous SampleTimeout never fires for healthy benchmarks (even
	// under -race on a loaded host); it only enables the watchdog path, so
	// a cancelled context abandons the in-flight sample.
	e := New(Options{Workers: 1, SampleTimeout: 30 * time.Second})
	defer e.Close()

	slow := &workload.Benchmark{
		Name:      "slow-spin",
		Platform:  workload.JVMPlatform,
		Metric:    workload.Throughput,
		Cores:     2,
		MaxCycles: 2_000_000, // simulates for seconds: far past the watchdog
		Build: func(ctx *workload.BuildCtx) error {
			for c := 0; c < 2; c++ {
				b := arch.NewBuilder()
				b.Label("loop")
				b.Work(1)
				b.AddImm(0, 0, 1)
				b.B("loop")
				p, err := b.Build()
				if err != nil {
					return err
				}
				if err := ctx.M.LoadProgram(c, p); err != nil {
					return err
				}
			}
			return nil
		},
	}
	env := workload.DefaultEnv(arch.ARMv8())
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err := e.Measure(ctx, slow, env, 1, 9)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expected context deadline, got %v", err)
	}

	// The worker moved on to a fresh cache; subsequent measurements stay
	// bit-identical to sequential execution while the abandoned goroutine
	// still runs in the old one.
	fast := javabench.Tomcat()
	want, err := workload.Measure(fast, env, 2, 17)
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.Measure(context.Background(), fast, env, 2, 17)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("post-timeout pooled summary %+v != sequential %+v", got, want)
	}
}
