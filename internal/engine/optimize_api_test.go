package engine

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/optimize"
	"repro/wmm/client"
)

// optSpecJSON is the optimizer job used across the API tests: two JVM
// strategies on ARMv8, trimmed sampling so the whole search stays fast.
// Cells: 2 gates + 2 measures + 2 fits = 6.
var optSpecJSON = client.OptimizeSpec{
	Platform:   "jvm",
	Arch:       "armv8",
	Strategies: []string{"jdk8-barriers", "jdk9-acqrel"},
	Samples:    3,
	FitCosts:   []int64{8, 32},
	Workload:   client.OptimizeWorkload{MaxCycles: 60_000},
	Seed:       7,
	Parallel:   2,
}

// optSpecPure is the same search expressed in the optimize package's
// own terms, for cross-checking the API against a direct Run.
var optSpecPure = optimize.Spec{
	Platform:   "jvm",
	Arch:       "armv8",
	Strategies: []string{"jdk8-barriers", "jdk9-acqrel"},
	Samples:    3,
	FitCosts:   []int64{8, 32},
	Workload:   optimize.WorkloadSpec{MaxCycles: 60_000},
	Seed:       7,
}

func submitOptimize(t *testing.T, ts *httptest.Server, spec client.OptimizeSpec) client.Submitted {
	t.Helper()
	sub, err := testClient(ts).SubmitOptimize(context.Background(), spec)
	if err != nil {
		t.Fatalf("submit optimize: %v", err)
	}
	return sub
}

func waitOptimize(t *testing.T, ts *httptest.Server, id string) client.OptimizeStatus {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	st, err := testClient(ts).WaitOptimize(ctx, id, 20*time.Millisecond)
	if err != nil {
		t.Fatalf("wait optimize %s: %v", id, err)
	}
	return st
}

// TestOptimizeAPILocal exercises the optimizer job lifecycle on a
// server with no dispatcher: submit, wait, status accounting, the
// canonical report, listing and removal.
func TestOptimizeAPILocal(t *testing.T) {
	ts, _ := newTestServer(t)
	cl := testClient(ts)

	sub := submitOptimize(t, ts, optSpecJSON)
	if sub.Total != 2 {
		t.Fatalf("total = %d gate cells, want 2 (one per candidate)", sub.Total)
	}
	st := waitOptimize(t, ts, sub.ID)
	if st.State != client.StateDone {
		t.Fatalf("job ended %s (err %q)", st.State, st.Error)
	}
	if st.Kind != "optimize" || st.Phase != PhaseDone {
		t.Errorf("kind/phase = %q/%q, want optimize/done", st.Kind, st.Phase)
	}
	if st.Candidates != 2 || st.Tried != 2 || st.RejectedUnsound != 0 || st.Scored != 2 {
		t.Errorf("candidates/tried/rejected/scored = %d/%d/%d/%d, want 2/2/0/2",
			st.Candidates, st.Tried, st.RejectedUnsound, st.Scored)
	}
	if st.CellsDone != 6 {
		t.Errorf("cells_done = %d, want 6 (2 gates + 2 measures + 2 fits)", st.CellsDone)
	}
	if st.Best != "jdk9-acqrel" {
		t.Errorf("best = %q, want jdk9-acqrel", st.Best)
	}
	if len(st.Report) == 0 {
		t.Error("finished job carries no report")
	}
	if st.FinishedAt == nil {
		t.Error("finished job has no finished_at")
	}

	// The canonical report is stable across fetches and byte-identical
	// to a direct in-process optimize.Run of the same spec.
	a, err := cl.CanonicalOptimize(context.Background(), sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	b, err := cl.CanonicalOptimize(context.Background(), sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("canonical report differs between fetches")
	}
	rep, err := optimize.Run(optSpecPure)
	if err != nil {
		t.Fatal(err)
	}
	want, err := rep.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, want) {
		t.Errorf("API report diverged from direct optimize.Run:\n--- API ---\n%s\n--- direct ---\n%s", a, want)
	}

	// Listing carries the job (without the report); removal makes it
	// unknown.
	listing, err := cl.OptimizeList(context.Background(), client.Page{})
	if err != nil {
		t.Fatal(err)
	}
	if len(listing.Items) != 1 || listing.Items[0].ID != sub.ID {
		t.Fatalf("listing = %+v, want the one job", listing.Items)
	}
	if len(listing.Items[0].Report) != 0 {
		t.Error("list rows must not carry the full report")
	}
	if _, err := cl.CancelOptimize(context.Background(), sub.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Optimize(context.Background(), sub.ID); !client.IsNotFound(err) {
		t.Errorf("status after delete: %v, want 404", err)
	}
}

// TestOptimizeDispatchIdentity verifies the dispatcher invariant for
// the optimizer family: a job fanned through the queue and local slots
// assembles a canonical report byte-identical to the in-process path.
func TestOptimizeDispatchIdentity(t *testing.T) {
	tsLocal, _ := newTestServer(t)
	subLocal := submitOptimize(t, tsLocal, optSpecJSON)
	if st := waitOptimize(t, tsLocal, subLocal.ID); st.State != client.StateDone {
		t.Fatalf("local job ended %s (err %q)", st.State, st.Error)
	}
	want, err := testClient(tsLocal).CanonicalOptimize(context.Background(), subLocal.ID)
	if err != nil {
		t.Fatal(err)
	}

	tsDisp, _ := newDispatchServer(t, DispatchOptions{})
	subDisp := submitOptimize(t, tsDisp, optSpecJSON)
	if st := waitOptimize(t, tsDisp, subDisp.ID); st.State != client.StateDone {
		t.Fatalf("dispatched job ended %s (err %q)", st.State, st.Error)
	}
	got, err := testClient(tsDisp).CanonicalOptimize(context.Background(), subDisp.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("dispatched job diverged from local:\n--- local ---\n%s\n--- dispatched ---\n%s", want, got)
	}
}

// TestOptimizeCacheReuse: optimizer cells are content-addressed, so
// resubmitting a spec resolves every cell from the result cache — no
// re-measurement — and still assembles a byte-identical report.
func TestOptimizeCacheReuse(t *testing.T) {
	cl, api, cache := newCachedServer(t, nil)

	sub1, err := cl.SubmitOptimize(context.Background(), optSpecJSON)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if st, err := cl.WaitOptimize(ctx, sub1.ID, 20*time.Millisecond); err != nil || st.State != client.StateDone {
		t.Fatalf("first job: state %v err %v", st.State, err)
	}
	if local := api.disp.met.jobsDone.Value("local"); local != 6 {
		t.Fatalf("local executions after first job = %v, want 6", local)
	}

	sub2, err := cl.SubmitOptimize(context.Background(), optSpecJSON)
	if err != nil {
		t.Fatal(err)
	}
	if st, err := cl.WaitOptimize(ctx, sub2.ID, 20*time.Millisecond); err != nil || st.State != client.StateDone {
		t.Fatalf("second job: state %v err %v", st.State, err)
	}
	if local := api.disp.met.jobsDone.Value("local"); local != 6 {
		t.Errorf("local executions after second job = %v, want still 6 (all cells cached)", local)
	}
	if cached := api.disp.met.jobsDone.Value("cache"); cached != 6 {
		t.Errorf("cache-resolved cells = %v, want 6", cached)
	}
	if st := cache.Stats(); st.Hits != 6 || st.Misses != 6 {
		t.Errorf("cache stats = %+v, want 6 hits / 6 misses", st)
	}

	can1, err := cl.CanonicalOptimize(context.Background(), sub1.ID)
	if err != nil {
		t.Fatal(err)
	}
	can2, err := cl.CanonicalOptimize(context.Background(), sub2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(can1, can2) {
		t.Error("cached job's canonical report differs from the executed job's")
	}
}

// TestOptimizeUnsoundBaselineFails: a job whose baseline is rejected by
// the soundness gate fails before the scoring wave — there is nothing
// to rank against — with the rejection in the error.
func TestOptimizeUnsoundBaselineFails(t *testing.T) {
	ts, _ := newTestServer(t)
	spec := optSpecJSON
	spec.Strategies = []string{"hybrid-ldar+dmb-nosl", "jdk9-acqrel"}
	spec.Baseline = "hybrid-ldar+dmb-nosl"
	sub := submitOptimize(t, ts, spec)
	st := waitOptimize(t, ts, sub.ID)
	if st.State != client.StateFailed {
		t.Fatalf("job ended %s, want failed", st.State)
	}
	if !strings.Contains(st.Error, "baseline") {
		t.Errorf("error %q does not name the baseline rejection", st.Error)
	}
	if st.RejectedUnsound != 1 {
		t.Errorf("rejected_unsound = %d, want 1", st.RejectedUnsound)
	}
	if _, err := testClient(ts).CanonicalOptimize(context.Background(), sub.ID); err == nil {
		t.Error("canonical of a report-less failed job succeeded, want 409")
	}
}

// TestOptimizeValidation verifies malformed optimizer specs are refused
// with the uniform envelope before any work is admitted.
func TestOptimizeValidation(t *testing.T) {
	ts, _ := newTestServer(t)
	for name, body := range map[string]string{
		"unknown platform":  `{"platform": "rust"}`,
		"unknown arch":      `{"arch": "riscv"}`,
		"unknown strategy":  `{"strategies": ["jdk8-barriers", "jdk11"]}`,
		"baseline excluded": `{"strategies": ["jdk9-acqrel"]}`,
		"one fit cost":      `{"fit_costs": [8]}`,
		"negative parallel": `{"parallel": -1}`,
		"bad mix op":        `{"workload": {"mix": {"rcu_derefs": 1}}}`,
	} {
		t.Run(name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/api/v1/optimize", "application/json", strings.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != http.StatusBadRequest {
				resp.Body.Close()
				t.Fatalf("status = %d, want 400", resp.StatusCode)
			}
			if code, _ := decodeEnvelope(t, resp); code != ErrCodeInvalidArgument {
				t.Errorf("envelope code = %q, want %q", code, ErrCodeInvalidArgument)
			}
		})
	}
}

// TestOptimizeCellKeyDiscriminates pins the content hash: the engine
// version, cell identity and normalised spec all participate, and
// execution-irrelevant wire fields do not exist on the cell at all.
func TestOptimizeCellKeyDiscriminates(t *testing.T) {
	sp := optSpecPure.WithDefaults()
	cells, err := sp.GateCells()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) < 2 {
		t.Fatalf("only %d gate cells", len(cells))
	}
	k0, err := OptimizeCellKey(cells[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(k0) != 64 || strings.ToLower(k0) != k0 {
		t.Fatalf("key %q is not lowercase sha256 hex", k0)
	}
	k1, err := OptimizeCellKey(cells[1])
	if err != nil {
		t.Fatal(err)
	}
	if k0 == k1 {
		t.Error("different cells share a content hash")
	}
	reseeded := cells[0]
	reseeded.Spec.Seed++
	k2, err := OptimizeCellKey(reseeded)
	if err != nil {
		t.Fatal(err)
	}
	if k2 == k0 {
		t.Error("changing the spec seed did not change the content hash")
	}
	again, err := OptimizeCellKey(cells[0])
	if err != nil {
		t.Fatal(err)
	}
	if again != k0 {
		t.Error("content hash is not deterministic")
	}
}
