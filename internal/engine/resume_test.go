package engine

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/runstore"
)

// resumeSpec is the run used by the checkpoint/resume tests: fig4 is
// quick (calibration-only) and checkpoints early; ext-c11 drives many
// pooled samples and takes far longer.  parallel=2 runs them
// concurrently, so fig4's checkpoint lands while ext-c11 is still
// mid-flight — the window the crash test interrupts in.
const resumeSpec = `{"experiments": ["fig4", "ext-c11"], "short": true, "samples": 2, "seed": 3, "parallel": 2}`

// runToCanonical executes resumeSpec uninterrupted on a store-less
// server and returns the canonical JSON of its final results, as served
// by GET /api/v1/runs/{id}?canonical=1.
func runToCanonical(t *testing.T) []byte {
	t.Helper()
	ts, _, _ := newTestServerOpts(t, ServerOptions{Parallel: 2})
	id := postRun(t, ts, resumeSpec)
	st := waitState(t, ts, id, 5*time.Minute)
	if st.State != StateDone {
		t.Fatalf("baseline run ended %s (err %q)", st.State, st.Error)
	}
	raw, err := testClient(ts).CanonicalRun(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestCrashResumeDeterminism is the headline robustness property: a run
// interrupted mid-experiment and resumed by a fresh server produces
// final results byte-identical (in canonical form — wall time zeroed) to
// an uninterrupted run of the same spec and seed.
func TestCrashResumeDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs ext-c11 three times")
	}
	want := runToCanonical(t)
	dir := t.TempDir()

	// Server A: every pooled sample is slowed a little, so the shutdown
	// below reliably lands while ext-c11 is mid-flight.  Delays change
	// timing only, never sample values.
	storeA, err := runstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	engA := New(Options{Workers: 2, Fault: faultinject.New(faultinject.Rule{
		Point:  faultinject.PointSample,
		Action: faultinject.Action{Delay: 20 * time.Millisecond},
	})})
	apiA := NewServer(engA, ServerOptions{Parallel: 2, Store: storeA})
	tsA := httptest.NewServer(apiA.Handler())
	id := postRun(t, tsA, resumeSpec)

	// Wait for fig4's checkpoint to be durable, then "crash": Shutdown
	// cancels the run but deliberately writes no terminal record, which
	// is exactly the on-disk state a killed process leaves.
	deadline := time.Now().Add(2 * time.Minute)
	for {
		runs, err := storeA.Load()
		if err == nil && len(runs) == 1 && runs[0].Experiment("fig4") != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("fig4 checkpoint never became durable")
		}
		time.Sleep(10 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := apiA.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	tsA.Close()
	engA.Close()

	runs, err := storeA.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 1 || runs[0].EndState != "" {
		t.Fatalf("interrupted run not resumable on disk: %+v", runs)
	}

	// Server B: a fresh process image over the same data directory.
	storeB, err := runstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	engB := New(Options{Workers: 2})
	t.Cleanup(engB.Close)
	apiB := NewServer(engB, ServerOptions{Parallel: 2, Store: storeB})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		apiB.Shutdown(ctx)
	})
	resumed, restored, err := apiB.Restore()
	if err != nil {
		t.Fatal(err)
	}
	if resumed != 1 || restored != 0 {
		t.Fatalf("Restore = %d resumed / %d restored, want 1/0", resumed, restored)
	}
	tsB := httptest.NewServer(apiB.Handler())
	t.Cleanup(tsB.Close)

	st := waitState(t, tsB, id, 5*time.Minute)
	if st.State != StateDone {
		t.Fatalf("resumed run ended %s (err %q)", st.State, st.Error)
	}
	if !st.Resumed {
		t.Error("resumed run not marked Resumed")
	}
	got, err := testClient(tsB).CanonicalRun(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("resumed run diverged from uninterrupted run:\n--- uninterrupted ---\n%s\n--- resumed ---\n%s", want, got)
	}

	// The resume is terminal on disk, and counted.
	runs, err = storeB.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 1 || runs[0].EndState != StateDone {
		t.Errorf("resumed run end state on disk = %+v", runs)
	}
	if got := apiB.met.runsResumed.Value(); got != 1 {
		t.Errorf("wmm_runs_resumed_total = %v, want 1", got)
	}
}

// TestRestoreFinishedRun verifies a completed run survives a restart as
// a read-only catalogue entry, ID sequencing continues past it, and
// DELETE removes its file.
func TestRestoreFinishedRun(t *testing.T) {
	dir := t.TempDir()
	storeA, err := runstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	engA := New(Options{Workers: 2})
	apiA := NewServer(engA, ServerOptions{Parallel: 2, Store: storeA})
	tsA := httptest.NewServer(apiA.Handler())
	id := postRun(t, tsA, `{"experiments": ["fig4"], "short": true, "samples": 2, "seed": 3}`)
	first := waitState(t, tsA, id, 2*time.Minute)
	if first.State != StateDone {
		t.Fatalf("run ended %s", first.State)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := apiA.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	tsA.Close()
	engA.Close()

	storeB, err := runstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	tsB, apiB, _ := newTestServerOpts(t, ServerOptions{Parallel: 2, Store: storeB})
	resumed, restored, err := apiB.Restore()
	if err != nil {
		t.Fatal(err)
	}
	if resumed != 0 || restored != 1 {
		t.Fatalf("Restore = %d resumed / %d restored, want 0/1", resumed, restored)
	}

	st, err := testClient(tsB).Run(context.Background(), id, false)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone || len(st.Results) != 1 || st.Results[0].Experiment != "fig4" {
		t.Fatalf("restored run = %s with %d results", st.State, len(st.Results))
	}
	if st.Results[0].Status != StatusOK || len(st.Results[0].Tables) != 1 {
		t.Errorf("restored result lost content: %+v", st.Results[0])
	}

	// The sequence continues past the restored run.
	id2 := postRun(t, tsB, `{"experiments": ["fig4"], "short": true, "samples": 1, "seed": 3}`)
	if id2 == id {
		t.Fatalf("restarted server reused run ID %s", id)
	}
	waitState(t, tsB, id2, 2*time.Minute)

	// DELETE removes the restored run from disk too.
	if _, err := testClient(tsB).CancelRun(context.Background(), id); err != nil {
		t.Fatal(err)
	}
	runs, err := storeB.Load()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range runs {
		if r.ID == id {
			t.Errorf("deleted run still on disk: %+v", r)
		}
	}
}

// TestReadyz verifies readiness is distinct from liveness: ready while
// serving, 503 once shutdown begins, and the store state is reported.
func TestReadyz(t *testing.T) {
	storeDir := t.TempDir()
	store, err := runstore.Open(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	eng := New(Options{Workers: 2})
	t.Cleanup(eng.Close)
	api := NewServer(eng, ServerOptions{Parallel: 2, Store: store})
	ts := httptest.NewServer(api.Handler())
	t.Cleanup(ts.Close)

	var out map[string]any
	resp := getJSON(t, ts.URL+"/readyz", &out)
	if resp.StatusCode != http.StatusOK || out["ready"] != true || out["store"] != "ok" {
		t.Errorf("readyz while serving = %d %v", resp.StatusCode, out)
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := api.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	resp = getJSON(t, ts.URL+"/readyz", &out)
	if resp.StatusCode != http.StatusServiceUnavailable || out["ready"] != false {
		t.Errorf("readyz after shutdown = %d %v", resp.StatusCode, out)
	}

	// healthz stays 200 through shutdown: liveness, not readiness.
	resp = getJSON(t, ts.URL+"/healthz", nil)
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz after shutdown = %d", resp.StatusCode)
	}
}

// TestReadyzWithoutStore verifies a store-less server is still ready,
// reporting durability as disabled rather than broken.
func TestReadyzWithoutStore(t *testing.T) {
	ts, _ := newTestServer(t)
	var out map[string]any
	resp := getJSON(t, ts.URL+"/readyz", &out)
	if resp.StatusCode != http.StatusOK || out["ready"] != true || out["store"] != "disabled" {
		t.Errorf("readyz = %d %v", resp.StatusCode, out)
	}
}

// TestPartialRunState verifies the run-level degradation path: when some
// experiments fail and others succeed, the run ends "partial" with every
// result's status explicit, instead of all-or-nothing "failed".
func TestPartialRunState(t *testing.T) {
	eng := New(Options{Workers: 2, Fault: faultinject.New(faultinject.Rule{
		Point:  faultinject.PointSample, // fails every pooled sample: ext-c11, not fig4
		Action: faultinject.Action{Err: errors.New("broken rig")},
	})})
	t.Cleanup(eng.Close)
	api := NewServer(eng, ServerOptions{Parallel: 2})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		api.Shutdown(ctx)
	})
	ts := httptest.NewServer(api.Handler())
	t.Cleanup(ts.Close)

	id := postRun(t, ts, `{"experiments": ["fig4", "ext-c11"], "short": true, "samples": 1, "seed": 3, "parallel": 2}`)
	st := waitState(t, ts, id, 2*time.Minute)
	if st.State != StatePartial {
		t.Fatalf("run ended %s (err %q), want partial", st.State, st.Error)
	}
	if st.Results[0].Status != StatusOK {
		t.Errorf("fig4 status = %q, want ok", st.Results[0].Status)
	}
	if s := st.Results[1].Status; s != StatusFailed && s != StatusIncomplete {
		t.Errorf("ext-c11 status = %q, want failed or incomplete", s)
	}

	var sb strings.Builder
	if err := eng.Metrics().WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `wmm_runs_total{state="partial"} 1`) {
		t.Error("exposition missing the partial run transition")
	}
}
