package engine

import (
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"sort"
	"strings"
)

// LegacySunset is the sunset date advertised (RFC 8594 Sunset header)
// on every legacy unversioned route.  After this date a release may
// flip ServerOptions.DisableLegacy on by default; until then legacy
// requests are answered normally with deprecation headers attached.
const LegacySunset = "Thu, 31 Dec 2026 00:00:00 GMT"

// apiRoute is one row of the wmmd route table.
type apiRoute struct {
	Method string
	Path   string // Go 1.22 ServeMux pattern, "{id}" wildcards allowed
	Desc   string // one-line contract, rendered into docs/api-v1.json
	// Legacy marks a pre-v1 unversioned shim: it serves with
	// Deprecation/Sunset headers (or 410 gone under DisableLegacy) and
	// is excluded from the v1 fallback's Allow computation.
	Legacy    bool
	Successor string // v1 pattern a legacy route forwards clients to
	handler   func(s *Server) http.HandlerFunc
}

// routeTable is the single source of truth for the HTTP surface.
// Handler() registers the mux from it, handleV1Fallback computes 405
// Allow sets from it, and APIDoc() renders docs/api-v1.json from it —
// so a route cannot be served but undocumented, or documented but
// unserved (TestAPIDocInSync pins the committed copy).
var routeTable = []apiRoute{
	// Operational, unversioned by convention.
	{Method: "GET", Path: "/healthz", Desc: "liveness and worker count",
		handler: func(s *Server) http.HandlerFunc { return s.handleHealthz }},
	{Method: "GET", Path: "/readyz", Desc: "readiness: engine up, store writable",
		handler: func(s *Server) http.HandlerFunc { return s.handleReadyz }},
	{Method: "GET", Path: "/metrics", Desc: "Prometheus text exposition",
		handler: func(s *Server) http.HandlerFunc { return s.eng.Metrics().Handler().ServeHTTP }},

	// v1: the versioned surface.  Every job resource (runs, litmus,
	// optimize) shares the async-job envelope: paginated list pages
	// {items, next_after}, statuses with id/kind/state/tenant/
	// started_at/finished_at, DELETE for cancel-or-remove, and
	// ?canonical=1 for byte-stable result JSON.
	{Method: "GET", Path: "/api/v1/experiments", Desc: "experiment catalogue (?limit=&after=)",
		handler: func(s *Server) http.HandlerFunc {
			return func(w http.ResponseWriter, r *http.Request) { s.handleExperiments(w, r, false) }
		}},
	{Method: "POST", Path: "/api/v1/runs", Desc: "submit an experiment run (RunSpec); 429 + Retry-After under saturation",
		handler: func(s *Server) http.HandlerFunc { return s.handleSubmit }},
	{Method: "GET", Path: "/api/v1/runs", Desc: "run statuses (?limit=&after=)",
		handler: func(s *Server) http.HandlerFunc {
			return func(w http.ResponseWriter, r *http.Request) { s.handleList(w, r, false) }
		}},
	{Method: "GET", Path: "/api/v1/runs/{id}", Desc: "run status; ?results=1 partial results, ?stream=1 NDJSON progress, ?canonical=1 canonical result JSON",
		handler: func(s *Server) http.HandlerFunc { return s.handleStatus }},
	{Method: "DELETE", Path: "/api/v1/runs/{id}", Desc: "cancel a running run / remove a finished one",
		handler: func(s *Server) http.HandlerFunc { return s.handleCancel }},
	{Method: "POST", Path: "/api/v1/litmus", Desc: "submit a generated litmus campaign (LitmusSpec)",
		handler: func(s *Server) http.HandlerFunc { return s.handleLitmusSubmit }},
	{Method: "GET", Path: "/api/v1/litmus", Desc: "litmus campaign statuses (?limit=&after=)",
		handler: func(s *Server) http.HandlerFunc { return s.handleLitmusList }},
	{Method: "GET", Path: "/api/v1/litmus/{id}", Desc: "campaign status; ?results=1 partial results, ?canonical=1 canonical shard-result JSON",
		handler: func(s *Server) http.HandlerFunc { return s.handleLitmusStatus }},
	{Method: "DELETE", Path: "/api/v1/litmus/{id}", Desc: "cancel a running campaign / remove a finished one",
		handler: func(s *Server) http.HandlerFunc { return s.handleLitmusCancel }},
	{Method: "POST", Path: "/api/v1/optimize", Desc: "submit a fence-strategy optimizer job (OptimizeSpec)",
		handler: func(s *Server) http.HandlerFunc { return s.handleOptimizeSubmit }},
	{Method: "GET", Path: "/api/v1/optimize", Desc: "optimizer job statuses (?limit=&after=)",
		handler: func(s *Server) http.HandlerFunc { return s.handleOptimizeList }},
	{Method: "GET", Path: "/api/v1/optimize/{id}", Desc: "optimizer job status; ?canonical=1 serves the canonical report JSON",
		handler: func(s *Server) http.HandlerFunc { return s.handleOptimizeStatus }},
	{Method: "DELETE", Path: "/api/v1/optimize/{id}", Desc: "cancel a running optimizer job / remove a finished one",
		handler: func(s *Server) http.HandlerFunc { return s.handleOptimizeCancel }},
	{Method: "POST", Path: "/api/v1/leases", Desc: "worker lease: grab a batch of jobs (sharded backend)",
		handler: func(s *Server) http.HandlerFunc { return s.handleLease }},
	{Method: "POST", Path: "/api/v1/leases/{id}/heartbeat", Desc: "renew a worker lease",
		handler: func(s *Server) http.HandlerFunc { return s.handleHeartbeat }},
	{Method: "POST", Path: "/api/v1/leases/{id}/results", Desc: "upload a lease's batch results",
		handler: func(s *Server) http.HandlerFunc { return s.handleLeaseResults }},

	// Legacy unversioned shims over the same handlers.  List responses
	// keep their original bare-array shape (no pagination envelope).
	{Method: "GET", Path: "/experiments", Desc: "legacy experiment catalogue (bare array)",
		Legacy: true, Successor: "/api/v1/experiments",
		handler: func(s *Server) http.HandlerFunc {
			return func(w http.ResponseWriter, r *http.Request) { s.handleExperiments(w, r, true) }
		}},
	{Method: "POST", Path: "/runs", Desc: "legacy run submission",
		Legacy: true, Successor: "/api/v1/runs",
		handler: func(s *Server) http.HandlerFunc { return s.handleSubmit }},
	{Method: "GET", Path: "/runs", Desc: "legacy run statuses (bare array)",
		Legacy: true, Successor: "/api/v1/runs",
		handler: func(s *Server) http.HandlerFunc {
			return func(w http.ResponseWriter, r *http.Request) { s.handleList(w, r, true) }
		}},
	{Method: "GET", Path: "/runs/{id}", Desc: "legacy run status",
		Legacy: true, Successor: "/api/v1/runs/{id}",
		handler: func(s *Server) http.HandlerFunc { return s.handleStatus }},
	{Method: "DELETE", Path: "/runs/{id}", Desc: "legacy run cancel/remove",
		Legacy: true, Successor: "/api/v1/runs/{id}",
		handler: func(s *Server) http.HandlerFunc { return s.handleCancel }},
}

// deprecated wraps a legacy shim with the deprecation headers (RFC
// 8594-style): Deprecation, the fixed Sunset date, and a
// successor-version Link.  The first legacy hit after startup logs a
// one-line migration warning.  With ServerOptions.DisableLegacy the
// shim instead answers 410 gone, naming the successor — the dress
// rehearsal for removing the routes outright after LegacySunset.
func (s *Server) deprecated(successor string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.disableLegacy {
			writeErr(w, http.StatusGone, ErrCodeGone,
				"legacy route %s %s has been sunset; use %s", r.Method, r.URL.Path, successor)
			return
		}
		s.legacyWarn.Do(func() {
			log.Printf("wmmd: legacy unversioned route %s %s in use; migrate to %s before the %s sunset (docs/API.md has the mapping)",
				r.Method, r.URL.Path, successor, LegacySunset)
		})
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Sunset", LegacySunset)
		w.Header().Set("Link", fmt.Sprintf("<%s>; rel=\"successor-version\"", successor))
		h(w, r)
	}
}

// handleV1Fallback answers requests under /api/v1/ that no registered
// route matched.  Go's ServeMux would serve plain-text 404/405 here;
// a versioned JSON API should fail in the same error envelope as every
// other response, and a wrong-method request should still learn the
// Allow set — computed from the route table, so it cannot drift from
// what is actually registered.
func (s *Server) handleV1Fallback(w http.ResponseWriter, r *http.Request) {
	allow := map[string]bool{}
	for _, rt := range routeTable {
		if !rt.Legacy && patternMatches(rt.Path, r.URL.Path) {
			allow[rt.Method] = true
		}
	}
	if len(allow) > 0 {
		methods := make([]string, 0, len(allow))
		for m := range allow {
			methods = append(methods, m)
		}
		sort.Strings(methods)
		w.Header().Set("Allow", strings.Join(methods, ", "))
		writeErr(w, http.StatusMethodNotAllowed, ErrCodeMethodNotAllowed,
			"method %s is not allowed on %s (allowed: %s)", r.Method, r.URL.Path, strings.Join(methods, ", "))
		return
	}
	writeErr(w, http.StatusNotFound, ErrCodeNotFound, "no v1 route matches %s", r.URL.Path)
}

// patternMatches reports whether a concrete request path matches a
// route pattern segment-wise; "{id}"-style wildcards match any single
// non-empty segment.
func patternMatches(pattern, path string) bool {
	ps := strings.Split(pattern, "/")
	qs := strings.Split(path, "/")
	if len(ps) != len(qs) {
		return false
	}
	for i, seg := range ps {
		if strings.HasPrefix(seg, "{") && strings.HasSuffix(seg, "}") {
			if qs[i] == "" {
				return false
			}
			continue
		}
		if seg != qs[i] {
			return false
		}
	}
	return true
}

// APIDoc renders the machine-readable API description from the route
// table.  `wmmd -print-api-doc` emits it; docs/api-v1.json is the
// committed copy and TestAPIDocInSync fails the build when they drift.
func APIDoc() []byte {
	type docRoute struct {
		Method    string `json:"method"`
		Path      string `json:"path"`
		Desc      string `json:"desc"`
		Legacy    bool   `json:"legacy,omitempty"`
		Successor string `json:"successor,omitempty"`
		Sunset    string `json:"sunset,omitempty"`
	}
	doc := struct {
		Version    string     `json:"version"`
		ErrorCodes []string   `json:"error_codes"`
		Routes     []docRoute `json:"routes"`
	}{
		Version: "v1",
		ErrorCodes: []string{
			ErrCodeInvalidArgument, ErrCodeNotFound, ErrCodeConflict,
			ErrCodeSaturated, ErrCodeUnavailable, ErrCodeLeaseGone,
			ErrCodeMethodNotAllowed, ErrCodeGone,
		},
	}
	for _, rt := range routeTable {
		d := docRoute{Method: rt.Method, Path: rt.Path, Desc: rt.Desc,
			Legacy: rt.Legacy, Successor: rt.Successor}
		if rt.Legacy {
			d.Sunset = LegacySunset
		}
		doc.Routes = append(doc.Routes, d)
	}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		panic(err) // the table is static data; this cannot fail
	}
	return append(b, '\n')
}
