package runstore

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// Coordinator lease layer, shared by both backends.
//
// HA failover (internal/ha) elects the coordinator through a single
// lease record in the store: `coordlease.json`, holding the current
// owner, a monotonically increasing term, the expiry, and the TTL the
// holder was configured with.  The protocol is designed for a few wmmd
// processes sharing one store directory (local disk or a shared
// filesystem), with no locking primitive beyond what POSIX rename and
// O_EXCL give us:
//
//   - Acquire: read the record.  A live foreign lease — or one inside a
//     grace window of the *holder's* recorded TTL past its expiry —
//     blocks the claim.  Beyond the grace window, claim term+1 by
//     creating `coordlease.claim-<term>` with O_EXCL (the arbiter when
//     two standbys race: exactly one create succeeds), write the new
//     record into it, fsync, and rename it over `coordlease.json`.
//     Then re-read: only the record on disk says who won.
//   - Renew: verify the record still names this owner and term and has
//     not expired, rewrite it with a fresh expiry (temp+fsync+rename),
//     and re-read to confirm.  An expired lease cannot be renewed — the
//     deposed owner must re-acquire, which forces it through the grace
//     window like everyone else.
//   - Release: remove the record iff it still names this owner and term.
//
// Split-brain defence: the election alone cannot eliminate the window
// in which a stalled ex-leader's write lands after a rival's claim —
// the re-read confirm plus the expiry check shrink it to a single write
// syscall, no further.  So the lease term is *enforced* as a fencing
// token by storage itself: a promoted coordinator arms the fence with
// Fence(owner, term), and from then on every mutation (Begin,
// Checkpoint, Assign, End, Delete, CachePut, segment compaction)
// re-reads this record under the same lock as its commit and refuses
// with ErrFenced when the record names a newer term — or the same term
// under a different owner, which is what a lost O_EXCL race looks like.
// A fenced write means another process coordinates: the caller must
// stop mutating immediately (wmmd exits 3, exactly as for a failed
// renewal).  Residual caveat: the fence is only as fresh as a lease
// read.  On NFS-style filesystems with delayed visibility (attribute
// caching, broken close-to-open), a stalled writer can act on a stale
// lease for up to the client's caching delay — mount shared stores with
// attribute caching disabled (actimeo=0) or accept that bounded
// window.  docs/ROBUSTNESS.md spells out the full argument.

// leaseFile is the lease record's name inside the store directory.
const leaseFile = "coordlease.json"

// ErrFenced reports a store mutation refused by the fencing check: the
// on-disk coordinator lease names a newer claim than the one this
// handle was promoted under, so another process coordinates.  Match
// with errors.Is; the caller must stop mutating the store immediately.
var ErrFenced = errors.New("runstore: store mutation fenced by a newer coordinator lease")

// CoordLease is the on-disk coordinator-lease record.
type CoordLease struct {
	Owner   string    `json:"owner"`
	Term    int64     `json:"term"`
	Expires time.Time `json:"expires"`
	// TTLMs is the TTL the holder acquired or last renewed with, in
	// milliseconds.  It sizes the takeover grace window: a rival waits
	// one full *holder* TTL past expiry, regardless of its own -ha-ttl.
	TTLMs int64 `json:"ttl_ms,omitempty"`
}

// ttl reports the TTL the lease was taken with, for sizing the grace
// window; fallback covers records written before TTLMs existed.
func (c CoordLease) ttl(fallback time.Duration) time.Duration {
	if c.TTLMs > 0 {
		return time.Duration(c.TTLMs) * time.Millisecond
	}
	return fallback
}

// leaseIO is the syscall seam the lease layer reads and claims through.
// Production uses osLeaseIO; tests substitute implementations with
// NFS-style weaknesses (stale reads, non-atomic exclusive creates) to
// prove where the fence holds and where only mount options can.
type leaseIO interface {
	ReadFile(path string) ([]byte, error)
	OpenExclusive(path string) (*os.File, error)
}

type osLeaseIO struct{}

func (osLeaseIO) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }
func (osLeaseIO) OpenExclusive(path string) (*os.File, error) {
	return os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
}

// leaseFS implements the lease layer over a store root directory.
type leaseFS struct {
	root string
	mu   sync.Mutex
	// fsio, when non-nil, replaces the real filesystem calls (tests
	// only — see leaseIO).
	fsio leaseIO
	// fenceOwner/fenceTerm are the armed fencing token; term 0 means
	// unfenced (no coordinator promoted through this handle).
	fenceOwner string
	fenceTerm  int64
}

func (l *leaseFS) leasePath() string { return filepath.Join(l.root, leaseFile) }

func (l *leaseFS) io() leaseIO {
	if l.fsio != nil {
		return l.fsio
	}
	return osLeaseIO{}
}

// Fence arms the storage fence with the lease this handle's coordinator
// was promoted under: every subsequent mutation re-reads the on-disk
// lease under the same lock as its commit and refuses with ErrFenced
// when the record names a newer term — or the same term held by a
// different owner, the signature of a lost claim race.  Reads are never
// fenced.  Fence("", 0) disarms (clean shutdown, tests).
func (l *leaseFS) Fence(owner string, term int64) error {
	if term < 0 {
		return fmt.Errorf("runstore: fence term must be >= 0, got %d", term)
	}
	if term > 0 && owner == "" {
		return fmt.Errorf("runstore: fence needs an owner for term %d", term)
	}
	l.mu.Lock()
	l.fenceOwner, l.fenceTerm = owner, term
	l.mu.Unlock()
	return nil
}

// checkFence validates the armed fencing token against the on-disk
// lease.  Called by every backend mutation at its commit point, while
// holding the backend's own lock — so a takeover observed here is
// observed before the commit, not after.  An unreadable lease fails
// closed (the error is returned, the mutation does not proceed); an
// absent or torn lease blocks nobody, matching readLease.
func (l *leaseFS) checkFence() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.fenceTerm == 0 {
		return nil
	}
	cur, ok, err := l.readLease()
	if err != nil {
		return fmt.Errorf("runstore: fence check: %w", err)
	}
	if !ok {
		return nil
	}
	if cur.Term > l.fenceTerm || (cur.Term == l.fenceTerm && cur.Owner != l.fenceOwner) {
		return fmt.Errorf("%w (armed term %d owner %s; lease names term %d owner %s)",
			ErrFenced, l.fenceTerm, l.fenceOwner, cur.Term, cur.Owner)
	}
	return nil
}

// readLease reads the current record.  A missing or unparseable file
// reports absent — a torn lease blocks nobody, it just gets reclaimed.
func (l *leaseFS) readLease() (CoordLease, bool, error) {
	data, err := l.io().ReadFile(l.leasePath())
	if err != nil {
		if os.IsNotExist(err) {
			return CoordLease{}, false, nil
		}
		return CoordLease{}, false, fmt.Errorf("runstore: read lease: %w", err)
	}
	var c CoordLease
	if err := json.Unmarshal(data, &c); err != nil || c.Owner == "" {
		return CoordLease{}, false, nil
	}
	return c, true, nil
}

// ReadLease reports the current coordinator lease, if any.
func (l *leaseFS) ReadLease() (CoordLease, bool, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.readLease()
}

// TryAcquireLease attempts to take the coordinator lease for owner with
// the given TTL.  It returns the resulting record and whether this
// owner now holds it.  Holding the lease already refreshes it in place;
// a foreign lease blocks until one full holder-TTL past its expiry (the
// takeover grace window).
func (l *leaseFS) TryAcquireLease(owner string, ttl time.Duration) (CoordLease, bool, error) {
	if owner == "" || ttl <= 0 {
		return CoordLease{}, false, fmt.Errorf("runstore: lease needs an owner and a positive ttl")
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	now := time.Now()
	cur, ok, err := l.readLease()
	if err != nil {
		return CoordLease{}, false, err
	}
	if ok && cur.Owner == owner && now.Before(cur.Expires) {
		next := CoordLease{Owner: owner, Term: cur.Term, Expires: now.Add(ttl), TTLMs: ttl.Milliseconds()}
		if err := l.commitLease(next); err != nil {
			return CoordLease{}, false, err
		}
		return l.confirm(owner, next.Term)
	}
	if ok && cur.Owner != owner && now.Before(cur.Expires.Add(cur.ttl(ttl))) {
		// Live, or inside the grace window: the holder gets one full TTL
		// of silence before anyone may take over — the holder's own TTL,
		// which its self-deposal deadline is derived from, not the
		// acquirer's (the processes may run different -ha-ttl).
		return cur, false, nil
	}
	claim := CoordLease{Owner: owner, Term: cur.Term + 1, Expires: now.Add(ttl), TTLMs: ttl.Milliseconds()}
	claimPath := filepath.Join(l.root, fmt.Sprintf("coordlease.claim-%d", claim.Term))
	f, err := l.io().OpenExclusive(claimPath)
	if err != nil {
		if os.IsExist(err) {
			// A rival claimed this term first.  If the claim file is
			// crash debris (no rename followed for two TTLs), clear it so
			// the next attempt is not blocked forever.
			if info, statErr := os.Stat(claimPath); statErr == nil && now.Sub(info.ModTime()) > 2*ttl {
				os.Remove(claimPath)
			}
			return cur, false, nil
		}
		return CoordLease{}, false, fmt.Errorf("runstore: lease claim: %w", err)
	}
	data, _ := json.Marshal(claim)
	if _, err := f.Write(append(data, '\n')); err != nil {
		f.Close()
		os.Remove(claimPath)
		return CoordLease{}, false, fmt.Errorf("runstore: lease claim write: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(claimPath)
		return CoordLease{}, false, fmt.Errorf("runstore: lease claim sync: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(claimPath)
		return CoordLease{}, false, fmt.Errorf("runstore: lease claim close: %w", err)
	}
	if err := os.Rename(claimPath, l.leasePath()); err != nil {
		os.Remove(claimPath)
		return CoordLease{}, false, fmt.Errorf("runstore: lease claim rename: %w", err)
	}
	syncDir(l.root)
	return l.confirm(owner, claim.Term)
}

// RenewLease extends the lease iff it still names this owner and term
// and has not expired.  A false return with a nil error means deposed:
// the caller must stop acting as coordinator immediately.
func (l *leaseFS) RenewLease(owner string, term int64, ttl time.Duration) (CoordLease, bool, error) {
	if owner == "" || ttl <= 0 {
		return CoordLease{}, false, fmt.Errorf("runstore: lease needs an owner and a positive ttl")
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	now := time.Now()
	cur, ok, err := l.readLease()
	if err != nil {
		return CoordLease{}, false, err
	}
	if !ok || cur.Owner != owner || cur.Term != term || now.After(cur.Expires) {
		// Deposed, or too late: an expired lease is never renewed in
		// place, the owner must go back through acquisition.
		return cur, false, nil
	}
	next := CoordLease{Owner: owner, Term: term, Expires: now.Add(ttl), TTLMs: ttl.Milliseconds()}
	if err := l.commitLease(next); err != nil {
		return CoordLease{}, false, err
	}
	return l.confirm(owner, term)
}

// ReleaseLease surrenders the lease iff it still names this owner and
// term, letting a standby take over without waiting out the TTL.  The
// record stays on disk with a zeroed expiry rather than being removed:
// terms must grow monotonically across releases for the term number to
// work as a fencing token.
func (l *leaseFS) ReleaseLease(owner string, term int64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	cur, ok, err := l.readLease()
	if err != nil {
		return err
	}
	if !ok || cur.Owner != owner || cur.Term != term {
		return nil
	}
	return l.commitLease(CoordLease{Owner: owner, Term: term})
}

// commitLease durably replaces the lease record.
func (l *leaseFS) commitLease(c CoordLease) error {
	data, err := json.Marshal(c)
	if err != nil {
		return fmt.Errorf("runstore: marshal lease: %w", err)
	}
	return commitFile(l.leasePath(), append(data, '\n'))
}

// confirm re-reads the record after a write: with rename-based commits,
// only the file on disk says which writer won a race.
func (l *leaseFS) confirm(owner string, term int64) (CoordLease, bool, error) {
	got, ok, err := l.readLease()
	if err != nil {
		return CoordLease{}, false, err
	}
	if !ok || got.Owner != owner || got.Term != term {
		return got, false, nil
	}
	return got, true, nil
}
