package runstore

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// Coordinator lease layer, shared by both backends.
//
// HA failover (internal/ha) elects the coordinator through a single
// lease record in the store: `coordlease.json`, holding the current
// owner, a monotonically increasing term, and an expiry.  The protocol
// is designed for two-or-three wmmd processes sharing one store
// directory (local disk or a shared filesystem), with no locking
// primitive beyond what POSIX rename and O_EXCL give us:
//
//   - Acquire: read the record.  A live foreign lease — or one inside a
//     full-TTL grace window past its expiry — blocks the claim.  Beyond
//     the grace window, claim term+1 by creating `coordlease.claim-<term>`
//     with O_EXCL (the arbiter when two standbys race: exactly one
//     create succeeds), write the new record into it, fsync, and rename
//     it over `coordlease.json`.  Then re-read: only the record on disk
//     says who won.
//   - Renew: verify the record still names this owner and term and has
//     not expired, rewrite it with a fresh expiry (temp+fsync+rename),
//     and re-read to confirm.  An expired lease cannot be renewed — the
//     deposed owner must re-acquire, which forces it through the grace
//     window like everyone else.
//   - Release: remove the record iff it still names this owner and term.
//
// Split-brain argument: a standby only claims at `expires + TTL`, while
// a live leader renews every TTL/3 and steps down on its own if it
// cannot confirm a renewal within one TTL (internal/ha).  For two
// leaders to coexist, the old one would have to stall *inside*
// RenewLease — after its expiry check, before its write lands — for
// longer than a full TTL, then have that stale write land exactly after
// the rival's claim.  The re-read confirm plus the expiry check shrink
// the window to a single write syscall; true elimination would need
// fencing tokens checked by every storage operation, which
// docs/ROBUSTNESS.md discusses.

// leaseFile is the lease record's name inside the store directory.
const leaseFile = "coordlease.json"

// CoordLease is the on-disk coordinator-lease record.
type CoordLease struct {
	Owner   string    `json:"owner"`
	Term    int64     `json:"term"`
	Expires time.Time `json:"expires"`
}

// leaseFS implements the lease layer over a store root directory.
type leaseFS struct {
	root string
	mu   sync.Mutex
}

func (l *leaseFS) leasePath() string { return filepath.Join(l.root, leaseFile) }

// readLease reads the current record.  A missing or unparseable file
// reports absent — a torn lease blocks nobody, it just gets reclaimed.
func (l *leaseFS) readLease() (CoordLease, bool, error) {
	data, err := os.ReadFile(l.leasePath())
	if err != nil {
		if os.IsNotExist(err) {
			return CoordLease{}, false, nil
		}
		return CoordLease{}, false, fmt.Errorf("runstore: read lease: %w", err)
	}
	var c CoordLease
	if err := json.Unmarshal(data, &c); err != nil || c.Owner == "" {
		return CoordLease{}, false, nil
	}
	return c, true, nil
}

// ReadLease reports the current coordinator lease, if any.
func (l *leaseFS) ReadLease() (CoordLease, bool, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.readLease()
}

// TryAcquireLease attempts to take the coordinator lease for owner with
// the given TTL.  It returns the resulting record and whether this
// owner now holds it.  Holding the lease already refreshes it in place;
// a foreign lease blocks until one full TTL past its expiry (the
// takeover grace window).
func (l *leaseFS) TryAcquireLease(owner string, ttl time.Duration) (CoordLease, bool, error) {
	if owner == "" || ttl <= 0 {
		return CoordLease{}, false, fmt.Errorf("runstore: lease needs an owner and a positive ttl")
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	now := time.Now()
	cur, ok, err := l.readLease()
	if err != nil {
		return CoordLease{}, false, err
	}
	if ok && cur.Owner == owner && now.Before(cur.Expires) {
		next := CoordLease{Owner: owner, Term: cur.Term, Expires: now.Add(ttl)}
		if err := l.commitLease(next); err != nil {
			return CoordLease{}, false, err
		}
		return l.confirm(owner, next.Term)
	}
	if ok && cur.Owner != owner && now.Before(cur.Expires.Add(ttl)) {
		// Live, or inside the grace window: the holder gets one full TTL
		// of silence before anyone may take over.
		return cur, false, nil
	}
	claim := CoordLease{Owner: owner, Term: cur.Term + 1, Expires: now.Add(ttl)}
	claimPath := filepath.Join(l.root, fmt.Sprintf("coordlease.claim-%d", claim.Term))
	f, err := os.OpenFile(claimPath, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		if os.IsExist(err) {
			// A rival claimed this term first.  If the claim file is
			// crash debris (no rename followed for two TTLs), clear it so
			// the next attempt is not blocked forever.
			if info, statErr := os.Stat(claimPath); statErr == nil && now.Sub(info.ModTime()) > 2*ttl {
				os.Remove(claimPath)
			}
			return cur, false, nil
		}
		return CoordLease{}, false, fmt.Errorf("runstore: lease claim: %w", err)
	}
	data, _ := json.Marshal(claim)
	if _, err := f.Write(append(data, '\n')); err != nil {
		f.Close()
		os.Remove(claimPath)
		return CoordLease{}, false, fmt.Errorf("runstore: lease claim write: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(claimPath)
		return CoordLease{}, false, fmt.Errorf("runstore: lease claim sync: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(claimPath)
		return CoordLease{}, false, fmt.Errorf("runstore: lease claim close: %w", err)
	}
	if err := os.Rename(claimPath, l.leasePath()); err != nil {
		os.Remove(claimPath)
		return CoordLease{}, false, fmt.Errorf("runstore: lease claim rename: %w", err)
	}
	syncDir(l.root)
	return l.confirm(owner, claim.Term)
}

// RenewLease extends the lease iff it still names this owner and term
// and has not expired.  A false return with a nil error means deposed:
// the caller must stop acting as coordinator immediately.
func (l *leaseFS) RenewLease(owner string, term int64, ttl time.Duration) (CoordLease, bool, error) {
	if owner == "" || ttl <= 0 {
		return CoordLease{}, false, fmt.Errorf("runstore: lease needs an owner and a positive ttl")
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	now := time.Now()
	cur, ok, err := l.readLease()
	if err != nil {
		return CoordLease{}, false, err
	}
	if !ok || cur.Owner != owner || cur.Term != term || now.After(cur.Expires) {
		// Deposed, or too late: an expired lease is never renewed in
		// place, the owner must go back through acquisition.
		return cur, false, nil
	}
	next := CoordLease{Owner: owner, Term: term, Expires: now.Add(ttl)}
	if err := l.commitLease(next); err != nil {
		return CoordLease{}, false, err
	}
	return l.confirm(owner, term)
}

// ReleaseLease surrenders the lease iff it still names this owner and
// term, letting a standby take over without waiting out the TTL.  The
// record stays on disk with a zeroed expiry rather than being removed:
// terms must grow monotonically across releases for the term number to
// work as a fencing token.
func (l *leaseFS) ReleaseLease(owner string, term int64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	cur, ok, err := l.readLease()
	if err != nil {
		return err
	}
	if !ok || cur.Owner != owner || cur.Term != term {
		return nil
	}
	return l.commitLease(CoordLease{Owner: owner, Term: term})
}

// commitLease durably replaces the lease record.
func (l *leaseFS) commitLease(c CoordLease) error {
	data, err := json.Marshal(c)
	if err != nil {
		return fmt.Errorf("runstore: marshal lease: %w", err)
	}
	return commitFile(l.leasePath(), append(data, '\n'))
}

// confirm re-reads the record after a write: with rename-based commits,
// only the file on disk says which writer won a race.
func (l *leaseFS) confirm(owner string, term int64) (CoordLease, bool, error) {
	got, ok, err := l.readLease()
	if err != nil {
		return CoordLease{}, false, err
	}
	if !ok || got.Owner != owner || got.Term != term {
		return got, false, nil
	}
	return got, true, nil
}
