// Package runstore persists experiment runs as append-only JSON so that
// a wmmd restart — graceful or a crash — does not throw away hours of
// sweep progress.  Each run is one `<id>.jsonl` file under the store
// directory, written as a sequence of self-describing records:
//
//	{"rec":"spec", "id":"run-1", "time":..., "spec":{...}}        submission
//	{"rec":"experiment", "time":..., "name":"fig5", "result":{...}}  checkpoint
//	{"rec":"end", "time":..., "state":"done", "error":""}         terminal state
//
// Every append is flushed and fsynced before it returns, so a record is
// durable the moment the caller proceeds.  A run whose file has a spec
// record but no end record is *interrupted*: on startup the server
// replays the store, restores finished runs as queryable history, and
// resumes interrupted runs from their last checkpointed experiment.
//
// The store knows nothing about the engine's types: specs and results
// cross this boundary as raw JSON, which keeps the dependency arrow
// pointing from the engine to the store and makes the on-disk format a
// plain contract.  Replay is tolerant: a record truncated by a crash
// mid-write (no trailing newline, invalid JSON) is dropped rather than
// poisoning the run, which is exactly the append-only format's point —
// the prefix that did fsync is always a consistent state.
package runstore

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/faultinject"
)

// Record is one on-disk line.
type Record struct {
	Rec    string          `json:"rec"` // "spec" | "experiment" | "assign" | "end"
	ID     string          `json:"id,omitempty"`
	Time   time.Time       `json:"time"`
	Spec   json.RawMessage `json:"spec,omitempty"`   // on "spec"
	Name   string          `json:"name,omitempty"`   // on "experiment" and "assign"
	Result json.RawMessage `json:"result,omitempty"` // on "experiment"
	Worker string          `json:"worker,omitempty"` // on "assign"
	State  string          `json:"state,omitempty"`  // on "end"
	Error  string          `json:"error,omitempty"`  // on "end"
}

// ExperimentRecord is one checkpointed experiment of a replayed run.
type ExperimentRecord struct {
	Name   string
	Result json.RawMessage
}

// AssignRecord is one recorded dispatch of an experiment job to a
// remote worker under a lease — the audit trail of where a sharded
// run's work went.  Assignments are informational on replay: resume
// correctness rests entirely on experiment checkpoints (an assigned but
// unfinished experiment simply re-executes, byte-identically).
type AssignRecord struct {
	Name   string
	Worker string
	Time   time.Time
}

// RunRecord is one replayed run: the fold of its record sequence.
type RunRecord struct {
	ID      string
	Started time.Time
	Spec    json.RawMessage
	// Experiments holds the last checkpoint per experiment, in first-
	// checkpoint order.
	Experiments []ExperimentRecord
	// Assignments holds every recorded worker assignment, in append
	// order (a re-queued job may appear more than once).
	Assignments []AssignRecord
	// EndState is empty for an interrupted run.
	EndState string
	EndError string
	Finished time.Time
}

// Experiment returns the last checkpointed result for name, or nil.
func (r *RunRecord) Experiment(name string) json.RawMessage {
	for _, e := range r.Experiments {
		if e.Name == name {
			return e.Result
		}
	}
	return nil
}

// Store is a directory of per-run append-only record files — the JSONL
// Storage backend.  All methods are safe for concurrent use.
type Store struct {
	cacheFS
	leaseFS

	dir string

	mu sync.Mutex

	// Fault, when set, injects faults at the append boundary
	// (faultinject.PointStoreAppend).  Set it before handing the store
	// to a server.
	Fault *faultinject.Injector
}

// Open creates (if needed) and probes the store directory.  It fails
// fast and clearly if the directory cannot be created or written — the
// startup-time check behind wmmd's -data flag and /readyz.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("runstore: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("runstore: create %s: %w", dir, err)
	}
	s := &Store{dir: dir, cacheFS: cacheFS{root: dir}, leaseFS: leaseFS{root: dir}}
	if err := s.Ping(); err != nil {
		return nil, err
	}
	return s, nil
}

// Kind names the backend.
func (s *Store) Kind() string { return KindJSONL }

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// Ping probes that the store is writable (backs GET /readyz).
func (s *Store) Ping() error { return pingDir(s.dir) }

// Close releases backend resources; the JSONL layout holds none.
func (s *Store) Close() error { return nil }

// path returns the record file for a run, rejecting IDs that would
// escape the store directory.
func (s *Store) path(id string) (string, error) {
	if err := validateRunID(id); err != nil {
		return "", err
	}
	return filepath.Join(s.dir, id+".jsonl"), nil
}

// append durably adds one record to the run's file.
func (s *Store) append(id string, rec Record) error {
	if err := s.Fault.Fire(faultinject.PointStoreAppend, id+"/"+rec.Rec, 0); err != nil {
		return err
	}
	path, err := s.path(id)
	if err != nil {
		return err
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("runstore: marshal %s record: %w", rec.Rec, err)
	}
	line = append(line, '\n')

	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.checkFence(); err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("runstore: open %s: %w", path, err)
	}
	defer f.Close()
	if _, err := f.Write(line); err != nil {
		return fmt.Errorf("runstore: append to %s: %w", path, err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("runstore: sync %s: %w", path, err)
	}
	return nil
}

// Begin records a run's submission: its identity and spec.
func (s *Store) Begin(id string, spec json.RawMessage, at time.Time) error {
	return s.append(id, Record{Rec: "spec", ID: id, Time: at, Spec: spec})
}

// Checkpoint records one completed experiment.  Re-checkpointing the
// same experiment (a resumed attempt) appends a newer record; replay
// keeps the last one.
func (s *Store) Checkpoint(id, experiment string, result json.RawMessage) error {
	return s.append(id, Record{Rec: "experiment", Time: time.Now(), Name: experiment, Result: result})
}

// Assign records the dispatch of one experiment job to a worker under
// a lease.  Purely an audit trail: replay surfaces assignments but
// resume never depends on them (a lost assignment's experiment just
// re-executes from its spec).
func (s *Store) Assign(id, experiment, worker string) error {
	return s.append(id, Record{Rec: "assign", Time: time.Now(), Name: experiment, Worker: worker})
}

// End records a run's terminal state.  A run whose file never receives
// an end record is treated as interrupted and resumed on replay.
func (s *Store) End(id, state, errMsg string) error {
	return s.append(id, Record{Rec: "end", Time: time.Now(), State: state, Error: errMsg})
}

// Delete removes a run's file (DELETE on a finished run, retention GC).
func (s *Store) Delete(id string) error {
	path, err := s.path(id)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.checkFence(); err != nil {
		return err
	}
	if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("runstore: delete %s: %w", path, err)
	}
	return nil
}

// CachePut shadows the embedded cacheFS method with a fence check: a
// deposed coordinator must not mutate the shared cache either.  (Reads
// and CacheSweep stay unfenced — entries are immutable and content-
// addressed, so removing one can at worst cost the rival a re-compute.)
func (s *Store) CachePut(key string, data []byte) error {
	if err := s.checkFence(); err != nil {
		return err
	}
	return s.cacheFS.CachePut(key, data)
}

// Load replays every run file in the store, in run-ID order (run-2
// before run-10).  Unparseable records — the torn tail of a crashed
// write — are skipped; files without a spec record are ignored entirely.
func (s *Store) Load() ([]*RunRecord, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("runstore: read %s: %w", s.dir, err)
	}
	var runs []*RunRecord
	for _, ent := range entries {
		name := ent.Name()
		if ent.IsDir() || !strings.HasSuffix(name, ".jsonl") {
			continue
		}
		rec, err := s.loadOne(filepath.Join(s.dir, name))
		if err != nil || rec == nil {
			continue
		}
		runs = append(runs, rec)
	}
	sortRuns(runs)
	return runs, nil
}

// loadOne folds one record file into a RunRecord (nil if it holds no
// spec record).
func (s *Store) loadOne(path string) (*RunRecord, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var run *RunRecord
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 64<<20) // results can be large
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil {
			continue // torn write; the durable prefix stands
		}
		switch rec.Rec {
		case "spec":
			if run == nil {
				run = &RunRecord{ID: rec.ID, Started: rec.Time, Spec: rec.Spec}
			}
		case "experiment":
			if run == nil || rec.Name == "" {
				continue
			}
			replaced := false
			for i := range run.Experiments {
				if run.Experiments[i].Name == rec.Name {
					run.Experiments[i].Result = rec.Result
					replaced = true
					break
				}
			}
			if !replaced {
				run.Experiments = append(run.Experiments, ExperimentRecord{Name: rec.Name, Result: rec.Result})
			}
		case "assign":
			if run == nil || rec.Name == "" {
				continue
			}
			run.Assignments = append(run.Assignments, AssignRecord{Name: rec.Name, Worker: rec.Worker, Time: rec.Time})
		case "end":
			if run != nil {
				run.EndState = rec.State
				run.EndError = rec.Error
				run.Finished = rec.Time
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return run, nil
}

// MaxSeq scans the store for the highest "run-N" identifier, so a
// restarted server continues the sequence instead of reusing IDs.
func (s *Store) MaxSeq() int {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return 0
	}
	max := 0
	for _, ent := range entries {
		name := strings.TrimSuffix(ent.Name(), ".jsonl")
		if !strings.HasPrefix(name, "run-") {
			continue
		}
		if n, err := strconv.Atoi(name[len("run-"):]); err == nil && n > max {
			max = n
		}
	}
	return max
}
