package runstore

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// The Storage conformance suite: every backend must exhibit the same
// observable behaviour for run records, torn-tail replay, the cache
// layer, and the coordinator lease.  Run under -race in CI — the suite
// includes a concurrent-access section.

// backends enumerates the Storage implementations under test.  openSeg
// shrinks segment thresholds so sealing and compaction actually happen
// inside the suite.
var backends = []struct {
	kind string
	open func(t *testing.T, dir string) Storage
}{
	{KindJSONL, func(t *testing.T, dir string) Storage {
		s, err := Open(dir)
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		return s
	}},
	{KindSegment, func(t *testing.T, dir string) Storage {
		s, err := OpenSegment(dir)
		if err != nil {
			t.Fatalf("OpenSegment: %v", err)
		}
		s.MaxSegmentBytes = 4 << 10
		s.CompactAfter = 3
		return s
	}},
}

func TestStorageConformance(t *testing.T) {
	for _, b := range backends {
		t.Run(b.kind, func(t *testing.T) {
			t.Run("roundtrip", func(t *testing.T) { conformRoundtrip(t, b.open) })
			t.Run("reopen", func(t *testing.T) { conformReopen(t, b.open) })
			t.Run("torn-tail", func(t *testing.T) { conformTornTail(t, b.open) })
			t.Run("delete-maxseq", func(t *testing.T) { conformDeleteMaxSeq(t, b.open) })
			t.Run("invalid-id", func(t *testing.T) { conformInvalidID(t, b.open) })
			t.Run("cache", func(t *testing.T) { conformCache(t, b.open) })
			t.Run("lease", func(t *testing.T) { conformLease(t, b.open) })
			t.Run("lease-grace", func(t *testing.T) { conformLeaseGraceHolderTTL(t, b.open) })
			t.Run("fencing", func(t *testing.T) { conformFencing(t, b.open) })
			t.Run("concurrent", func(t *testing.T) { conformConcurrent(t, b.open) })
		})
	}
}

// fill writes a canonical little population of runs: run-1 finished
// with two experiments and an assignment, run-2 interrupted after one
// checkpoint (with a superseded earlier checkpoint), run-10 finished
// empty (tests numeric ID ordering).
func fill(t *testing.T, s Storage) {
	t.Helper()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatalf("fill: %v", err)
		}
	}
	must(s.Begin("run-1", json.RawMessage(`{"experiments":["a","b"]}`), time.Now()))
	must(s.Assign("run-1", "a", "worker-1"))
	must(s.Checkpoint("run-1", "a", json.RawMessage(`{"v":1}`)))
	must(s.Checkpoint("run-1", "b", json.RawMessage(`{"v":2}`)))
	must(s.End("run-1", "done", ""))

	must(s.Begin("run-2", json.RawMessage(`{"experiments":["c"]}`), time.Now()))
	must(s.Checkpoint("run-2", "c", json.RawMessage(`{"v":"stale"}`)))
	must(s.Checkpoint("run-2", "c", json.RawMessage(`{"v":"fresh"}`)))

	must(s.Begin("run-10", json.RawMessage(`{"experiments":[]}`), time.Now()))
	must(s.End("run-10", "failed", "boom"))
}

// checkFill asserts the population written by fill replays intact.
func checkFill(t *testing.T, s Storage) {
	t.Helper()
	runs, err := s.Load()
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(runs) != 3 {
		t.Fatalf("Load: got %d runs, want 3", len(runs))
	}
	if runs[0].ID != "run-1" || runs[1].ID != "run-2" || runs[2].ID != "run-10" {
		t.Fatalf("Load order: got %s,%s,%s", runs[0].ID, runs[1].ID, runs[2].ID)
	}
	r1 := runs[0]
	if r1.EndState != "done" || len(r1.Experiments) != 2 {
		t.Fatalf("run-1: state=%q experiments=%d", r1.EndState, len(r1.Experiments))
	}
	if string(r1.Experiment("a")) != `{"v":1}` || string(r1.Experiment("b")) != `{"v":2}` {
		t.Fatalf("run-1 checkpoints: a=%s b=%s", r1.Experiment("a"), r1.Experiment("b"))
	}
	if len(r1.Assignments) != 1 || r1.Assignments[0].Worker != "worker-1" || r1.Assignments[0].Name != "a" {
		t.Fatalf("run-1 assignments: %+v", r1.Assignments)
	}
	r2 := runs[1]
	if r2.EndState != "" {
		t.Fatalf("run-2 should be interrupted, got state %q", r2.EndState)
	}
	if string(r2.Experiment("c")) != `{"v":"fresh"}` {
		t.Fatalf("run-2 re-checkpoint: got %s, want last write", r2.Experiment("c"))
	}
	if runs[2].EndState != "failed" || runs[2].EndError != "boom" {
		t.Fatalf("run-10: state=%q err=%q", runs[2].EndState, runs[2].EndError)
	}
}

func conformRoundtrip(t *testing.T, open func(*testing.T, string) Storage) {
	s := open(t, t.TempDir())
	defer s.Close()
	if err := s.Ping(); err != nil {
		t.Fatalf("Ping: %v", err)
	}
	fill(t, s)
	checkFill(t, s)
}

func conformReopen(t *testing.T, open func(*testing.T, string) Storage) {
	dir := t.TempDir()
	s := open(t, dir)
	fill(t, s)
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	s2 := open(t, dir)
	defer s2.Close()
	checkFill(t, s2)
	// The reopened store must keep accepting appends.
	if err := s2.End("run-2", "done", ""); err != nil {
		t.Fatalf("End after reopen: %v", err)
	}
}

func conformTornTail(t *testing.T, open func(*testing.T, string) Storage) {
	dir := t.TempDir()
	s := open(t, dir)
	fill(t, s)
	s.Close()
	// Simulate a crash mid-append: garbage at the tail of every record
	// file.  The fsynced prefix must survive untouched.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	torn := 0
	for _, ent := range ents {
		name := ent.Name()
		if !strings.HasSuffix(name, ".jsonl") && !strings.HasSuffix(name, ".log") {
			continue
		}
		f, err := os.OpenFile(filepath.Join(dir, name), os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		f.WriteString(`{"rec":"experiment","id":"run-2","name":"torn`)
		f.Close()
		torn++
	}
	if torn == 0 {
		t.Fatal("no record files found to tear")
	}
	s2 := open(t, dir)
	defer s2.Close()
	checkFill(t, s2)
}

func conformDeleteMaxSeq(t *testing.T, open func(*testing.T, string) Storage) {
	s := open(t, t.TempDir())
	defer s.Close()
	fill(t, s)
	if got := s.MaxSeq(); got != 10 {
		t.Fatalf("MaxSeq: got %d, want 10", got)
	}
	if err := s.Delete("run-10"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	runs, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range runs {
		if r.ID == "run-10" {
			t.Fatal("run-10 still replayed after Delete")
		}
	}
	if got := s.MaxSeq(); got != 2 {
		t.Fatalf("MaxSeq after delete: got %d, want 2", got)
	}
	// Deleting an absent run is not an error (idempotent GC).
	if err := s.Delete("run-999"); err != nil {
		t.Fatalf("Delete absent: %v", err)
	}
}

func conformInvalidID(t *testing.T, open func(*testing.T, string) Storage) {
	s := open(t, t.TempDir())
	defer s.Close()
	for _, id := range []string{"", "../evil", "a/b", `a\b`} {
		if err := s.Begin(id, json.RawMessage(`{}`), time.Now()); err == nil {
			t.Errorf("Begin(%q): no error", id)
		}
		if err := s.Delete(id); err == nil {
			t.Errorf("Delete(%q): no error", id)
		}
	}
}

func conformCache(t *testing.T, open func(*testing.T, string) Storage) {
	s := open(t, t.TempDir())
	defer s.Close()
	key := "0123456789abcdef"
	if _, ok := s.CacheGet(key); ok {
		t.Fatal("CacheGet: hit on empty cache")
	}
	if err := s.CachePut(key, []byte(`{"x":1}`)); err != nil {
		t.Fatalf("CachePut: %v", err)
	}
	if data, ok := s.CacheGet(key); !ok || string(data) != `{"x":1}` {
		t.Fatalf("CacheGet: ok=%v data=%s", ok, data)
	}
	// Overwrite is atomic: last write wins.
	if err := s.CachePut(key, []byte(`{"x":2}`)); err != nil {
		t.Fatal(err)
	}
	if data, _ := s.CacheGet(key); string(data) != `{"x":2}` {
		t.Fatalf("CacheGet after overwrite: %s", data)
	}
	for _, bad := range []string{"", "XYZ", "../../etc/passwd", strings.Repeat("a", 200)} {
		if err := s.CachePut(bad, []byte("x")); err == nil {
			t.Errorf("CachePut(%q): no error", bad)
		}
	}
	if n := s.CacheSweep(time.Now().Add(time.Hour)); n != 1 {
		t.Fatalf("CacheSweep: removed %d, want 1", n)
	}
	if _, ok := s.CacheGet(key); ok {
		t.Fatal("CacheGet: hit after sweep")
	}
}

func conformLease(t *testing.T, open func(*testing.T, string) Storage) {
	s := open(t, t.TempDir())
	defer s.Close()
	ttl := 200 * time.Millisecond

	if _, ok, err := s.ReadLease(); err != nil || ok {
		t.Fatalf("ReadLease on fresh store: ok=%v err=%v", ok, err)
	}
	lease, ok, err := s.TryAcquireLease("alpha", ttl)
	if err != nil || !ok {
		t.Fatalf("acquire: ok=%v err=%v", ok, err)
	}
	if lease.Owner != "alpha" || lease.Term != 1 {
		t.Fatalf("acquire: %+v", lease)
	}
	// A live foreign lease blocks.
	if got, ok, _ := s.TryAcquireLease("beta", ttl); ok {
		t.Fatalf("beta acquired over live lease: %+v", got)
	}
	// The holder renews.
	renewed, ok, err := s.RenewLease("alpha", lease.Term, ttl)
	if err != nil || !ok {
		t.Fatalf("renew: ok=%v err=%v", ok, err)
	}
	if !renewed.Expires.After(lease.Expires) {
		t.Fatal("renew did not extend expiry")
	}
	// A non-holder cannot renew.
	if _, ok, _ := s.RenewLease("beta", lease.Term, ttl); ok {
		t.Fatal("beta renewed alpha's lease")
	}
	// Release lets a rival in immediately, at a higher term.
	if err := s.ReleaseLease("alpha", lease.Term); err != nil {
		t.Fatalf("release: %v", err)
	}
	lease2, ok, err := s.TryAcquireLease("beta", ttl)
	if err != nil || !ok {
		t.Fatalf("beta acquire after release: ok=%v err=%v", ok, err)
	}
	if lease2.Term != 2 {
		t.Fatalf("term not fenced: %+v", lease2)
	}
	// Expiry + grace window: a rival may only claim one full TTL past
	// expiry, and an expired lease cannot be renewed.
	time.Sleep(ttl + ttl/4)
	if _, ok, _ := s.TryAcquireLease("alpha", ttl); ok {
		t.Fatal("alpha claimed inside the grace window")
	}
	if _, ok, _ := s.RenewLease("beta", lease2.Term, ttl); ok {
		t.Fatal("beta renewed an expired lease")
	}
	time.Sleep(ttl)
	lease3, ok, err := s.TryAcquireLease("alpha", ttl)
	if err != nil || !ok {
		t.Fatalf("alpha takeover after grace: ok=%v err=%v", ok, err)
	}
	if lease3.Term != 3 {
		t.Fatalf("takeover term: %+v", lease3)
	}
}

// conformLeaseGraceHolderTTL pins that the takeover grace window is
// sized by the *holder's* recorded TTL, not the acquirer's: a rival
// configured with a tiny -ha-ttl must still grant the holder its full
// TTL of silence before claiming.
func conformLeaseGraceHolderTTL(t *testing.T, open func(*testing.T, string) Storage) {
	s := open(t, t.TempDir())
	defer s.Close()
	const holderTTL = 600 * time.Millisecond
	const rivalTTL = 50 * time.Millisecond

	acquired := time.Now()
	lease, ok, err := s.TryAcquireLease("slow", holderTTL)
	if err != nil || !ok {
		t.Fatalf("acquire: ok=%v err=%v", ok, err)
	}
	if lease.TTLMs != holderTTL.Milliseconds() {
		t.Fatalf("holder TTL not recorded: %+v", lease)
	}
	// Past expiry plus several rival TTLs — where sizing the grace by
	// the acquirer's TTL would already admit the claim — but well inside
	// the holder's full-TTL grace.
	time.Sleep(time.Until(acquired.Add(holderTTL + 4*rivalTTL)))
	if got, ok, _ := s.TryAcquireLease("fast", rivalTTL); ok {
		t.Fatalf("rival claimed inside the holder's grace window: %+v", got)
	}
	// One full holder TTL past expiry, the claim goes through.
	time.Sleep(time.Until(acquired.Add(2*holderTTL + 4*rivalTTL)))
	lease2, ok, err := s.TryAcquireLease("fast", rivalTTL)
	if err != nil || !ok {
		t.Fatalf("claim after holder grace: ok=%v err=%v", ok, err)
	}
	if lease2.Term != lease.Term+1 || lease2.TTLMs != rivalTTL.Milliseconds() {
		t.Fatalf("claim after holder grace: %+v", lease2)
	}
}

// conformFencing is the split-brain acceptance test, in process: a
// term-T leader's store handle pauses (no renewals), a rival handle on
// the same directory waits out expiry + grace and claims term T+1, and
// from that moment every mutation through the old handle — Begin,
// Checkpoint, Assign, End, Delete, CachePut, and segment compaction —
// is refused with ErrFenced, while reads stay open and the rival writes
// freely.  Two separate handles model two processes; run under -race.
func conformFencing(t *testing.T, open func(*testing.T, string) Storage) {
	dir := t.TempDir()
	old := open(t, dir)
	defer old.Close()
	const ttl = 200 * time.Millisecond

	lease, ok, err := old.TryAcquireLease("old-leader", ttl)
	if err != nil || !ok {
		t.Fatalf("acquire: ok=%v err=%v", ok, err)
	}
	if err := old.Fence("old-leader", lease.Term); err != nil {
		t.Fatalf("Fence: %v", err)
	}
	// While its lease stands, the armed handle mutates freely.
	if err := old.Begin("run-1", json.RawMessage(`{"experiments":["a"]}`), time.Now()); err != nil {
		t.Fatalf("Begin while leading: %v", err)
	}
	if err := old.Checkpoint("run-1", "a", json.RawMessage(`{"v":1}`)); err != nil {
		t.Fatalf("Checkpoint while leading: %v", err)
	}

	// The leader stalls: no renewals, no release.  A second process —
	// its own handle on the same directory — waits out expiry + grace
	// and takes the next term.
	rival := open(t, dir)
	defer rival.Close()
	var lease2 CoordLease
	deadline := time.Now().Add(10 * time.Second)
	for {
		lease2, ok, err = rival.TryAcquireLease("rival", ttl)
		if err != nil {
			t.Fatalf("rival acquire: %v", err)
		}
		if ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("rival never took the lease")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if lease2.Term != lease.Term+1 {
		t.Fatalf("takeover term = %d, want %d", lease2.Term, lease.Term+1)
	}
	if err := rival.Fence("rival", lease2.Term); err != nil {
		t.Fatalf("rival Fence: %v", err)
	}

	// The stalled leader wakes up and tries to keep writing: every
	// mutation must come back ErrFenced.
	fenced := func(op string, err error) {
		t.Helper()
		if !errors.Is(err, ErrFenced) {
			t.Fatalf("%s after takeover: %v, want ErrFenced", op, err)
		}
	}
	fenced("Begin", old.Begin("run-9", json.RawMessage(`{}`), time.Now()))
	fenced("Checkpoint", old.Checkpoint("run-1", "a", json.RawMessage(`{"v":2}`)))
	fenced("Assign", old.Assign("run-1", "a", "w1"))
	fenced("End", old.End("run-1", "done", ""))
	fenced("Delete", old.Delete("run-1"))
	fenced("CachePut", old.CachePut("00ff", []byte(`{"x":1}`)))
	if seg, isSeg := old.(*SegmentStore); isSeg {
		fenced("Compact", seg.Compact())
	}

	// Reads are never fenced: the deposed process may still inspect.
	if _, err := old.Load(); err != nil {
		t.Fatalf("Load on fenced handle: %v", err)
	}
	if _, _, err := old.ReadLease(); err != nil {
		t.Fatalf("ReadLease on fenced handle: %v", err)
	}

	// The new leader's writes all land, and the old leader's fenced
	// attempts left no trace: run-1 still has its original checkpoint,
	// run-9 does not exist.
	if err := rival.End("run-1", "done", ""); err != nil {
		t.Fatalf("rival End: %v", err)
	}
	runs, err := rival.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 1 || runs[0].ID != "run-1" {
		t.Fatalf("replay after fencing: %d runs", len(runs))
	}
	if string(runs[0].Experiment("a")) != `{"v":1}` || runs[0].EndState != "done" {
		t.Fatalf("run-1 after fencing: exp=%s state=%q", runs[0].Experiment("a"), runs[0].EndState)
	}

	// Disarming reopens the handle (a restarted process re-arming under
	// a fresh term); the invalid arms are rejected.
	if err := old.Fence("x", -1); err == nil {
		t.Fatal("Fence(-1): no error")
	}
	if err := old.Fence("", 7); err == nil {
		t.Fatal("Fence without owner: no error")
	}
	if err := old.Fence("", 0); err != nil {
		t.Fatalf("disarm: %v", err)
	}
	if err := old.Checkpoint("run-1", "b", json.RawMessage(`{"v":3}`)); err != nil {
		t.Fatalf("write after disarm: %v", err)
	}
}

func conformConcurrent(t *testing.T, open func(*testing.T, string) Storage) {
	s := open(t, t.TempDir())
	defer s.Close()
	const writers, checkpoints = 8, 20
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id := fmt.Sprintf("run-%d", w+1)
			if err := s.Begin(id, json.RawMessage(`{"w":true}`), time.Now()); err != nil {
				t.Errorf("Begin %s: %v", id, err)
				return
			}
			for i := 0; i < checkpoints; i++ {
				name := fmt.Sprintf("exp-%d", i)
				if err := s.Checkpoint(id, name, json.RawMessage(fmt.Sprintf(`{"i":%d}`, i))); err != nil {
					t.Errorf("Checkpoint %s/%s: %v", id, name, err)
					return
				}
			}
			if err := s.End(id, "done", ""); err != nil {
				t.Errorf("End %s: %v", id, err)
			}
		}(w)
	}
	// Concurrent readers and cache traffic while the writers append.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			key := fmt.Sprintf("%032x", r+1)
			for i := 0; i < 10; i++ {
				if _, err := s.Load(); err != nil {
					t.Errorf("Load: %v", err)
					return
				}
				if err := s.CachePut(key, []byte(fmt.Sprintf(`{"i":%d}`, i))); err != nil {
					t.Errorf("CachePut: %v", err)
					return
				}
				s.CacheGet(key)
			}
		}(r)
	}
	wg.Wait()
	runs, err := s.Load()
	if err != nil {
		t.Fatalf("final Load: %v", err)
	}
	if len(runs) != writers {
		t.Fatalf("final Load: %d runs, want %d", len(runs), writers)
	}
	for _, r := range runs {
		if r.EndState != "done" || len(r.Experiments) != checkpoints {
			t.Fatalf("%s: state=%q experiments=%d", r.ID, r.EndState, len(r.Experiments))
		}
	}
}

// TestOpenBackend covers the -store selector, including the error for
// an unknown kind.
func TestOpenBackend(t *testing.T) {
	for _, kind := range []string{"", KindJSONL, KindSegment} {
		s, err := OpenBackend(kind, t.TempDir())
		if err != nil {
			t.Fatalf("OpenBackend(%q): %v", kind, err)
		}
		want := kind
		if want == "" {
			want = KindJSONL
		}
		if s.Kind() != want {
			t.Fatalf("OpenBackend(%q).Kind() = %q", kind, s.Kind())
		}
		s.Close()
	}
	if _, err := OpenBackend("bogus", t.TempDir()); err == nil {
		t.Fatal("OpenBackend(bogus): no error")
	}
}
