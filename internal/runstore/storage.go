package runstore

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// Backend kinds selectable via `wmmd -store`.
const (
	KindJSONL   = "jsonl"   // one append-only <id>.jsonl file per run
	KindSegment = "segment" // shared immutable segments + manifest
)

// Storage is the persistence contract the coordinator runs on.  Two
// dependency-free backends implement it: the original per-run JSONL
// directory (*Store) and the segmented object store (*SegmentStore).
// All methods must be safe for concurrent use, every mutation must be
// durable when it returns, and replay must tolerate a torn tail — the
// conformance suite in conformance_test.go holds both backends to the
// same observable behaviour.
type Storage interface {
	// Kind names the backend ("jsonl" or "segment").
	Kind() string
	// Dir returns the backing directory.
	Dir() string
	// Ping probes that the store is writable (backs GET /readyz).
	Ping() error
	// Close releases backend resources.  The JSONL backend holds none;
	// the segment backend closes its active segment.
	Close() error

	// Begin records a run's submission: its identity and spec.
	Begin(id string, spec json.RawMessage, at time.Time) error
	// Checkpoint records one completed experiment; re-checkpointing the
	// same experiment appends a newer record and replay keeps the last.
	Checkpoint(id, experiment string, result json.RawMessage) error
	// Assign records the dispatch of one experiment job to a worker.
	Assign(id, experiment, worker string) error
	// End records a run's terminal state.
	End(id, state, errMsg string) error
	// Delete removes a run from replay (finished-run DELETE, GC).
	Delete(id string) error
	// Load replays every run, in run-ID order (run-2 before run-10).
	Load() ([]*RunRecord, error)
	// MaxSeq reports the highest live "run-N" identifier.
	MaxSeq() int

	// The content-addressed result-cache layer (resultcache.Persist).
	CacheGet(key string) ([]byte, bool)
	CachePut(key string, data []byte) error
	CacheSweep(olderThan time.Time) int

	// The coordinator-lease layer used for HA failover (internal/ha).
	ReadLease() (CoordLease, bool, error)
	TryAcquireLease(owner string, ttl time.Duration) (CoordLease, bool, error)
	RenewLease(owner string, term int64, ttl time.Duration) (CoordLease, bool, error)
	ReleaseLease(owner string, term int64) error
	// Fence arms the lease term as an enforced fencing token: after
	// Fence(owner, term), every mutation above (plus segment
	// compaction) re-validates against the on-disk lease under the same
	// lock as its commit and refuses with an error wrapping ErrFenced
	// once the lease names a newer claim.  Reads are never fenced.
	// Fence("", 0) disarms.
	Fence(owner string, term int64) error
}

var (
	_ Storage = (*Store)(nil)
	_ Storage = (*SegmentStore)(nil)
)

// OpenBackend opens the named storage backend rooted at dir.  An empty
// kind selects the JSONL layout, the historical default.
func OpenBackend(kind, dir string) (Storage, error) {
	switch kind {
	case "", KindJSONL:
		return Open(dir)
	case KindSegment:
		return OpenSegment(dir)
	default:
		return nil, fmt.Errorf("runstore: unknown store backend %q (want %q or %q)", kind, KindJSONL, KindSegment)
	}
}

// validateRunID rejects identifiers that would escape the store
// directory or collide with backend-internal files.
func validateRunID(id string) error {
	if id == "" || strings.ContainsAny(id, "/\\") || strings.Contains(id, "..") {
		return fmt.Errorf("runstore: invalid run id %q", id)
	}
	return nil
}

// pingDir probes that dir accepts writes.
func pingDir(dir string) error {
	f, err := os.CreateTemp(dir, ".probe-*")
	if err != nil {
		return fmt.Errorf("runstore: %s not writable: %w", dir, err)
	}
	name := f.Name()
	f.Close()
	os.Remove(name)
	return nil
}

// commitFile durably replaces path with data: write to a temp file in
// the same directory, fsync, rename over the target, then fsync the
// directory so the rename itself survives a crash.  Readers see the old
// contents or the new, never a torn mix.
func commitFile(path string, data []byte) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, ".commit-*")
	if err != nil {
		return fmt.Errorf("runstore: commit temp: %w", err)
	}
	tmp := f.Name()
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("runstore: commit write: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("runstore: commit sync: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("runstore: commit close: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("runstore: commit rename: %w", err)
	}
	syncDir(dir)
	return nil
}

// syncDir fsyncs a directory (best effort — not every filesystem
// supports it, and a failure only widens the crash window that the
// torn-tail tolerance already covers).
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// sortRuns orders replayed runs by ID with numeric-friendly comparison
// (run-2 before run-10).
func sortRuns(runs []*RunRecord) {
	sort.Slice(runs, func(i, j int) bool {
		a, b := runs[i].ID, runs[j].ID
		if len(a) != len(b) {
			return len(a) < len(b)
		}
		return a < b
	})
}
