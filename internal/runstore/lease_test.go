package runstore

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// Claim-file debris handling: `coordlease.claim-N` is the O_EXCL
// arbiter between racing standbys, normally renamed over the lease
// within microseconds.  A crash between create and rename leaves it
// behind, and it must block rivals only while it could still be a live
// race — the 2*ttl ModTime sweep.

// TestLeaseClaimDebrisSweep pins that stale crash debris eventually
// unblocks acquisition: the first attempt past 2*ttl removes the
// debris, the next claims the term.
func TestLeaseClaimDebrisSweep(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const ttl = 200 * time.Millisecond

	// A standby crashed mid-claim: claim-1 exists, no lease was ever
	// committed.
	claim := filepath.Join(dir, "coordlease.claim-1")
	if err := os.WriteFile(claim, []byte(`{"owner":"crashed","term":1}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	// Fresh debris blocks: the race might still be in flight.
	if _, ok, err := s.TryAcquireLease("survivor", ttl); err != nil || ok {
		t.Fatalf("acquire over fresh debris: ok=%v err=%v", ok, err)
	}
	if _, statErr := os.Stat(claim); statErr != nil {
		t.Fatalf("fresh debris swept too early: %v", statErr)
	}

	// Age the debris past the 2*ttl deadline without waiting it out.
	stale := time.Now().Add(-2*ttl - time.Second)
	if err := os.Chtimes(claim, stale, stale); err != nil {
		t.Fatal(err)
	}
	// The sweep happens on the blocked attempt (remove), the term is
	// claimable on the next.
	if _, ok, err := s.TryAcquireLease("survivor", ttl); err != nil || ok {
		t.Fatalf("sweeping attempt: ok=%v err=%v", ok, err)
	}
	if _, statErr := os.Stat(claim); !os.IsNotExist(statErr) {
		t.Fatalf("stale debris not swept: %v", statErr)
	}
	lease, ok, err := s.TryAcquireLease("survivor", ttl)
	if err != nil || !ok {
		t.Fatalf("acquire after sweep: ok=%v err=%v", ok, err)
	}
	if lease.Owner != "survivor" || lease.Term != 1 {
		t.Fatalf("acquire after sweep: %+v", lease)
	}
}

// TestLeaseClaimFreshRivalWins pins the other half of the debris rule:
// a claim file from a rival that is *still completing* must keep
// blocking, and once the rival's rename lands, its lease wins.
func TestLeaseClaimFreshRivalWins(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const ttl = 200 * time.Millisecond

	// A rival is mid-claim: its claim file exists with a fresh ModTime.
	rivalLease := CoordLease{Owner: "rival", Term: 1, Expires: time.Now().Add(ttl), TTLMs: ttl.Milliseconds()}
	data, _ := json.Marshal(rivalLease)
	claim := filepath.Join(dir, "coordlease.claim-1")
	if err := os.WriteFile(claim, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.TryAcquireLease("latecomer", ttl); ok {
		t.Fatal("latecomer claimed over an in-flight rival claim")
	}

	// The rival's rename lands — exactly what TryAcquireLease does
	// after its O_EXCL create succeeds.
	if err := os.Rename(claim, filepath.Join(dir, leaseFile)); err != nil {
		t.Fatal(err)
	}
	got, ok, _ := s.TryAcquireLease("latecomer", ttl)
	if ok {
		t.Fatalf("latecomer claimed over the rival's live lease: %+v", got)
	}
	if got.Owner != "rival" || got.Term != 1 {
		t.Fatalf("lease after rival completion: %+v", got)
	}
}

// TestFenceWithoutLease pins the fence's absent-lease semantics: an
// armed handle with no lease on disk writes freely (a torn or deleted
// lease blocks nobody, matching readLease), and the fence trips the
// moment a rival record appears.
func TestFenceWithoutLease(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Fence("ghost", 3); err != nil {
		t.Fatal(err)
	}
	if err := s.Begin("run-1", json.RawMessage(`{}`), time.Now()); err != nil {
		t.Fatalf("Begin with no lease on disk: %v", err)
	}
	// A rival claim at a newer term lands on disk.
	if err := s.commitLease(CoordLease{Owner: "rival", Term: 4, Expires: time.Now().Add(time.Minute)}); err != nil {
		t.Fatal(err)
	}
	if err := s.End("run-1", "done", ""); !errors.Is(err, ErrFenced) {
		t.Fatalf("End after rival claim: %v, want ErrFenced", err)
	}
}
