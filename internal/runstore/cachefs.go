package runstore

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"
)

// Content-addressed result cache layer, shared by both backends.
//
// Alongside run records, a store holds a flat namespace of
// content-addressed cache entries under dir/cache/: one <key>.json file
// per entry, where the key is the engine's canonical content hash of
// everything that determines the result's bytes.  The layer is
// deliberately dumb — opaque bytes in, opaque bytes out — so the engine
// owns the hash definition and the store owns only durability.  Writes
// go through a temp file + rename, so a crash mid-put never leaves a
// torn entry (a reader sees the old file or the new one, never half).

// cacheDir is the store subdirectory holding cache entries.
const cacheDir = "cache"

// cacheFS implements the cache layer over a store root directory.  Both
// backends embed it, which keeps cache entries portable between the
// JSONL and segment layouts (only run records differ on disk).
type cacheFS struct {
	root string
}

// cachePath validates a cache key (lowercase hex, as produced by the
// engine's content hash) and returns its file path.  Validation is the
// traversal guard: keys come from request-derived hashes, but defence in
// depth is cheap.
func (c cacheFS) cachePath(key string) (string, error) {
	if key == "" || len(key) > 128 {
		return "", fmt.Errorf("runstore: invalid cache key %q", key)
	}
	for _, r := range key {
		if (r < '0' || r > '9') && (r < 'a' || r > 'f') {
			return "", fmt.Errorf("runstore: invalid cache key %q", key)
		}
	}
	return filepath.Join(c.root, cacheDir, key+".json"), nil
}

// CacheGet reads a cache entry, reporting false on any miss (absent,
// unreadable, invalid key).  It satisfies resultcache.Persist.
func (c cacheFS) CacheGet(key string) ([]byte, bool) {
	path, err := c.cachePath(key)
	if err != nil {
		return nil, false
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, false
	}
	return data, true
}

// CachePut durably writes a cache entry (write-to-temp + fsync +
// rename).  It satisfies resultcache.Persist.
func (c cacheFS) CachePut(key string, data []byte) error {
	path, err := c.cachePath(key)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("runstore: create cache dir: %w", err)
	}
	f, err := os.CreateTemp(filepath.Dir(path), ".cache-*")
	if err != nil {
		return fmt.Errorf("runstore: cache temp: %w", err)
	}
	tmp := f.Name()
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("runstore: cache write: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("runstore: cache sync: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("runstore: cache close: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("runstore: cache rename: %w", err)
	}
	return nil
}

// CacheSweep removes cache entries not modified since the cutoff,
// returning how many were removed.  The server's retention GC calls it
// so the persistent cache — unlike the pre-PR calibration cache and
// litmus catalogue — cannot grow without bound on a long-lived server.
func (c cacheFS) CacheSweep(olderThan time.Time) int {
	dir := filepath.Join(c.root, cacheDir)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0
	}
	removed := 0
	for _, ent := range entries {
		if ent.IsDir() || !strings.HasSuffix(ent.Name(), ".json") {
			continue
		}
		info, err := ent.Info()
		if err != nil || !info.ModTime().Before(olderThan) {
			continue
		}
		if os.Remove(filepath.Join(dir, ent.Name())) == nil {
			removed++
		}
	}
	return removed
}
