package runstore

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func openSmallSegment(t *testing.T, dir string) *SegmentStore {
	t.Helper()
	s, err := OpenSegment(dir)
	if err != nil {
		t.Fatalf("OpenSegment: %v", err)
	}
	s.MaxSegmentBytes = 512
	s.CompactAfter = 0 // explicit Compact() only, unless a test opts in
	return s
}

// countFiles returns how many directory entries match the suffix.
func countFiles(t *testing.T, dir, contains string) int {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range ents {
		if strings.Contains(e.Name(), contains) {
			n++
		}
	}
	return n
}

// TestSegmentSealAndCompact drives the store past several seal
// thresholds, compacts, and proves replay is identical before and
// after — including across a reopen — while the file count shrinks.
func TestSegmentSealAndCompact(t *testing.T) {
	dir := t.TempDir()
	s := openSmallSegment(t, dir)
	for i := 1; i <= 5; i++ {
		id := fmt.Sprintf("run-%d", i)
		if err := s.Begin(id, json.RawMessage(`{"n":`+fmt.Sprint(i)+`}`), time.Now()); err != nil {
			t.Fatal(err)
		}
		for j := 0; j < 6; j++ {
			if err := s.Checkpoint(id, fmt.Sprintf("e%d", j), json.RawMessage(`{"pad":"`+strings.Repeat("x", 64)+`"}`)); err != nil {
				t.Fatal(err)
			}
		}
		if i%2 == 0 {
			if err := s.End(id, "done", ""); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := s.Delete("run-3"); err != nil {
		t.Fatal(err)
	}
	before, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(before) != 4 {
		t.Fatalf("before compact: %d runs, want 4", len(before))
	}
	if sealed := countFiles(t, dir, "seg-"); sealed < 3 {
		t.Fatalf("expected several segments before compact, found %d", sealed)
	}

	if err := s.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if n := countFiles(t, dir, "compact-"); n != 1 {
		t.Fatalf("after compact: %d compact files, want 1", n)
	}
	after, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	assertSameRuns(t, before, after)

	// Replay is also stable across close + reopen.
	s.Close()
	s2 := openSmallSegment(t, dir)
	defer s2.Close()
	reopened, err := s2.Load()
	if err != nil {
		t.Fatal(err)
	}
	assertSameRuns(t, before, reopened)

	// The tombstoned run is physically gone from disk after compaction.
	data, err := os.ReadFile(filepath.Join(dir, s2.man.Sealed[0]))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), `"run-3"`) {
		t.Fatal("compaction did not reclaim the deleted run")
	}
}

func assertSameRuns(t *testing.T, want, got []*RunRecord) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("run count: got %d, want %d", len(got), len(want))
	}
	for i := range want {
		w, g := want[i], got[i]
		if w.ID != g.ID || w.EndState != g.EndState || w.EndError != g.EndError {
			t.Fatalf("run %d: got %s/%q, want %s/%q", i, g.ID, g.EndState, w.ID, w.EndState)
		}
		if len(w.Experiments) != len(g.Experiments) {
			t.Fatalf("%s: %d experiments, want %d", g.ID, len(g.Experiments), len(w.Experiments))
		}
		for j := range w.Experiments {
			if w.Experiments[j].Name != g.Experiments[j].Name ||
				string(w.Experiments[j].Result) != string(g.Experiments[j].Result) {
				t.Fatalf("%s experiment %d differs", g.ID, j)
			}
		}
	}
}

// TestSegmentAutoCompact lets the append path trigger compaction on
// its own and verifies the sealed count stays bounded.
func TestSegmentAutoCompact(t *testing.T) {
	dir := t.TempDir()
	s := openSmallSegment(t, dir)
	defer s.Close()
	s.CompactAfter = 3
	for i := 1; i <= 8; i++ {
		id := fmt.Sprintf("run-%d", i)
		if err := s.Begin(id, json.RawMessage(`{}`), time.Now()); err != nil {
			t.Fatal(err)
		}
		for j := 0; j < 8; j++ {
			if err := s.Checkpoint(id, fmt.Sprintf("e%d", j), json.RawMessage(`{"pad":"`+strings.Repeat("y", 80)+`"}`)); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.End(id, "done", ""); err != nil {
			t.Fatal(err)
		}
	}
	s.mu.Lock()
	sealed := len(s.man.Sealed)
	s.mu.Unlock()
	if sealed >= 2*s.CompactAfter {
		t.Fatalf("auto-compaction not bounding sealed segments: %d", sealed)
	}
	runs, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 8 {
		t.Fatalf("replay after auto-compact: %d runs, want 8", len(runs))
	}
	for _, r := range runs {
		if len(r.Experiments) != 8 || r.EndState != "done" {
			t.Fatalf("%s incomplete after auto-compact", r.ID)
		}
	}
}

// TestSegmentOrphanCleanup simulates the two compaction crash windows:
// an orphaned compact file (manifest never committed) must be removed,
// and replay must not double-apply it.
func TestSegmentOrphanCleanup(t *testing.T) {
	dir := t.TempDir()
	s := openSmallSegment(t, dir)
	fill(t, s)
	s.Close()
	// A compact file the manifest does not reference = crash before the
	// manifest commit.
	orphan := filepath.Join(dir, "compact-00009999.log")
	if err := os.WriteFile(orphan, []byte(`{"rec":"spec","id":"run-666","spec":{}}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := openSmallSegment(t, dir)
	defer s2.Close()
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatal("orphan compact file survived recovery")
	}
	runs, err := s2.Load()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range runs {
		if r.ID == "run-666" {
			t.Fatal("orphan compact file leaked into replay")
		}
	}
	checkFill(t, s2)
}

// TestSegmentTornActiveTrimmed proves a partial final line is truncated
// on recovery so the first post-restart append is not silently merged
// into garbage.
func TestSegmentTornActiveTrimmed(t *testing.T) {
	dir := t.TempDir()
	s := openSmallSegment(t, dir)
	if err := s.Begin("run-1", json.RawMessage(`{}`), time.Now()); err != nil {
		t.Fatal(err)
	}
	active := s.activeName
	s.Close()
	f, err := os.OpenFile(filepath.Join(dir, active), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"rec":"end","id":"run-1","sta`) // no newline: torn
	f.Close()

	s2 := openSmallSegment(t, dir)
	defer s2.Close()
	if err := s2.Checkpoint("run-1", "a", json.RawMessage(`{"v":1}`)); err != nil {
		t.Fatal(err)
	}
	runs, err := s2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 1 || runs[0].EndState != "" {
		t.Fatalf("torn end record applied: %+v", runs)
	}
	if string(runs[0].Experiment("a")) != `{"v":1}` {
		t.Fatal("post-recovery checkpoint lost to the torn tail")
	}
}

// TestLeaseContention races many claimants for one lease and asserts
// exactly one wins each term.
func TestLeaseContention(t *testing.T) {
	for _, b := range backends {
		t.Run(b.kind, func(t *testing.T) {
			s := b.open(t, t.TempDir())
			defer s.Close()
			const claimants = 8
			var wg sync.WaitGroup
			winners := make(chan string, claimants)
			for i := 0; i < claimants; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					if _, ok, err := s.TryAcquireLease(fmt.Sprintf("node-%d", i), time.Minute); err != nil {
						t.Errorf("TryAcquireLease: %v", err)
					} else if ok {
						winners <- fmt.Sprintf("node-%d", i)
					}
				}(i)
			}
			wg.Wait()
			close(winners)
			var won []string
			for w := range winners {
				won = append(won, w)
			}
			if len(won) != 1 {
				t.Fatalf("winners: %v, want exactly 1", won)
			}
			lease, ok, err := s.ReadLease()
			if err != nil || !ok || lease.Owner != won[0] {
				t.Fatalf("lease after contention: %+v ok=%v err=%v (winner %s)", lease, ok, err, won[0])
			}
		})
	}
}
