package runstore

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func cacheStore(t *testing.T) *Store {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestCacheRoundtrip(t *testing.T) {
	s := cacheStore(t)
	key := strings.Repeat("ab12", 16) // sha256-hex shaped
	if _, ok := s.CacheGet(key); ok {
		t.Fatal("get before put reported a hit")
	}
	if err := s.CachePut(key, []byte(`{"experiment":"fig4"}`)); err != nil {
		t.Fatal(err)
	}
	data, ok := s.CacheGet(key)
	if !ok || string(data) != `{"experiment":"fig4"}` {
		t.Fatalf("CacheGet = (%q, %v), want the stored bytes", data, ok)
	}
	// Overwrite is atomic replace, not append.
	if err := s.CachePut(key, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if data, _ := s.CacheGet(key); string(data) != "v2" {
		t.Fatalf("after overwrite = %q, want v2", data)
	}
}

// TestCacheKeyValidation is the traversal guard: keys are engine content
// hashes (lowercase hex), and anything else — especially path
// metacharacters — must be rejected, never turned into a file path.
func TestCacheKeyValidation(t *testing.T) {
	s := cacheStore(t)
	for _, key := range []string{
		"",
		"../escape",
		"..",
		"a/b",
		"ABCDEF",      // uppercase hex is not canonical
		"0123456789g", // non-hex
		strings.Repeat("a", 129),
	} {
		if err := s.CachePut(key, []byte("x")); err == nil {
			t.Errorf("CachePut(%q) accepted an invalid key", key)
		}
		if _, ok := s.CacheGet(key); ok {
			t.Errorf("CacheGet(%q) hit on an invalid key", key)
		}
	}
}

func TestCacheSweep(t *testing.T) {
	s := cacheStore(t)
	if err := s.CachePut("aaaa", []byte("old")); err != nil {
		t.Fatal(err)
	}
	if err := s.CachePut("bbbb", []byte("new")); err != nil {
		t.Fatal(err)
	}
	// Age the first entry past the cutoff.
	old, err := s.cachePath("aaaa")
	if err != nil {
		t.Fatal(err)
	}
	stale := time.Now().Add(-2 * time.Hour)
	if err := os.Chtimes(old, stale, stale); err != nil {
		t.Fatal(err)
	}

	if n := s.CacheSweep(time.Now().Add(-time.Hour)); n != 1 {
		t.Fatalf("CacheSweep removed %d entries, want 1", n)
	}
	if _, ok := s.CacheGet("aaaa"); ok {
		t.Error("stale entry survived the sweep")
	}
	if _, ok := s.CacheGet("bbbb"); !ok {
		t.Error("fresh entry was swept")
	}
}

func TestCacheSweepIgnoresStrays(t *testing.T) {
	s := cacheStore(t)
	if err := s.CachePut("cccc", []byte("v")); err != nil {
		t.Fatal(err)
	}
	// A stray non-.json file in cache/ must not be touched.
	stray := filepath.Join(s.dir, cacheDir, "README")
	if err := os.WriteFile(stray, []byte("not a cache entry"), 0o644); err != nil {
		t.Fatal(err)
	}
	stale := time.Now().Add(-2 * time.Hour)
	if err := os.Chtimes(stray, stale, stale); err != nil {
		t.Fatal(err)
	}
	if n := s.CacheSweep(time.Now()); n != 1 {
		t.Fatalf("sweep removed %d, want 1 (the .json entry only)", n)
	}
	if _, err := os.Stat(stray); err != nil {
		t.Errorf("stray file removed by sweep: %v", err)
	}
}
