package runstore

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// SegmentStore is the segmented object-store Storage backend: all runs
// share a sequence of append-only log segments instead of one file per
// run.  The layout is three kinds of file under one directory:
//
//	MANIFEST.json      {"sealed":["compact-00000007.log","seg-00000008.log"],"seq":9}
//	seg-N.log          record lines; exactly one is active, the rest sealed
//	compact-N.log      a folded rewrite of older sealed segments
//
// Every record line carries the run ID (unlike the per-run JSONL
// layout, where the file name scopes the records), so a segment is
// self-describing.  Appends go to the single active segment and fsync
// before returning; when it grows past MaxSegmentBytes it is sealed —
// appended to the manifest's `sealed` list, which is committed via
// temp+fsync+rename — and a fresh active segment starts.  Sealed
// segments are immutable forever after.
//
// Replay folds the manifest's sealed segments in list order, then the
// active segment.  List order is authoritative, not segment numbers: a
// compacted segment carries a newer sequence number than the segments
// it folded, yet must replay before any segment written after them.
//
// Compaction is crash-safe by construction: fold the sealed segments
// into a new compact-N.log (invisible until referenced), fsync it,
// commit a manifest naming it, and only then delete the replaced files.
// A crash leaves either the old manifest (the compact file is an orphan,
// removed on open) or the new one (the old segments are orphans, ditto).
// Run deletion appends a tombstone record ({"rec":"delete"}); compaction
// is what physically reclaims tombstoned runs.
type SegmentStore struct {
	cacheFS
	leaseFS

	dir string

	// MaxSegmentBytes seals the active segment once it reaches this
	// size.  Set before first use; defaults to 8 MiB.
	MaxSegmentBytes int64
	// CompactAfter folds sealed segments into one when their count
	// reaches it.  Set before first use; defaults to 6, 0 disables
	// auto-compaction.
	CompactAfter int

	mu         sync.Mutex
	man        manifest
	active     *os.File
	activeName string
	activeSize int64
	closed     bool
}

const (
	manifestFile        = "MANIFEST.json"
	defaultSegBytes     = 8 << 20
	defaultCompactAfter = 6
)

// manifest is the store's committed view of its immutable segments.
type manifest struct {
	// Sealed lists immutable segment files in replay order.
	Sealed []string `json:"sealed"`
	// Seq is the highest segment sequence number ever committed.
	Seq int `json:"seq"`
}

// OpenSegment creates (if needed) and recovers a segment store at dir.
func OpenSegment(dir string) (*SegmentStore, error) {
	if dir == "" {
		return nil, fmt.Errorf("runstore: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("runstore: create %s: %w", dir, err)
	}
	s := &SegmentStore{
		cacheFS:         cacheFS{root: dir},
		leaseFS:         leaseFS{root: dir},
		dir:             dir,
		MaxSegmentBytes: defaultSegBytes,
		CompactAfter:    defaultCompactAfter,
	}
	if err := s.recover(); err != nil {
		return nil, err
	}
	if err := s.Ping(); err != nil {
		return nil, err
	}
	return s, nil
}

// Kind names the backend.
func (s *SegmentStore) Kind() string { return KindSegment }

// Dir returns the store directory.
func (s *SegmentStore) Dir() string { return s.dir }

// Ping probes that the store is writable (backs GET /readyz).
func (s *SegmentStore) Ping() error { return pingDir(s.dir) }

// Close seals off the active segment's file handle.  Records already
// appended stay durable; a reopened store resumes appending to the same
// segment.
func (s *SegmentStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.active != nil {
		err := s.active.Close()
		s.active = nil
		return err
	}
	return nil
}

// segSeq extracts the sequence number from "seg-N.log"/"compact-N.log"
// names, or -1.
func segSeq(name string) int {
	base := strings.TrimSuffix(name, ".log")
	if base == name {
		return -1
	}
	for _, prefix := range []string{"seg-", "compact-"} {
		if rest, ok := strings.CutPrefix(base, prefix); ok {
			if n, err := strconv.Atoi(rest); err == nil && n >= 0 {
				return n
			}
		}
	}
	return -1
}

// recover rebuilds in-memory state from the manifest and directory
// listing: orphaned compaction output is removed, unmanifested sealed
// segments are re-adopted, and the newest unmanifested segment becomes
// the active one.
func (s *SegmentStore) recover() error {
	data, err := os.ReadFile(filepath.Join(s.dir, manifestFile))
	switch {
	case err == nil:
		if err := json.Unmarshal(data, &s.man); err != nil {
			// The manifest is committed atomically, so a torn one is real
			// corruption — refuse to guess at replay order.
			return fmt.Errorf("runstore: corrupt manifest %s: %w", manifestFile, err)
		}
	case os.IsNotExist(err):
		// Fresh store.
	default:
		return fmt.Errorf("runstore: read manifest: %w", err)
	}

	sealed := make(map[string]bool, len(s.man.Sealed))
	for _, name := range s.man.Sealed {
		sealed[name] = true
		if n := segSeq(name); n > s.man.Seq {
			s.man.Seq = n
		}
	}

	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("runstore: read %s: %w", s.dir, err)
	}
	var loose []string // seg-*.log present but not in the manifest
	for _, ent := range entries {
		name := ent.Name()
		if ent.IsDir() || sealed[name] {
			continue
		}
		switch {
		case strings.HasPrefix(name, "compact-") && strings.HasSuffix(name, ".log"):
			// Output of a compaction whose manifest never committed.
			os.Remove(filepath.Join(s.dir, name))
		case strings.HasPrefix(name, "seg-") && strings.HasSuffix(name, ".log") && segSeq(name) >= 0:
			loose = append(loose, name)
			if n := segSeq(name); n > s.man.Seq {
				s.man.Seq = n
			}
		}
	}
	sort.Slice(loose, func(i, j int) bool { return segSeq(loose[i]) < segSeq(loose[j]) })

	// The newest loose segment resumes as active; any older ones are a
	// crash between sealing and the manifest commit — adopt them in
	// sequence order.
	if len(loose) > 1 {
		s.man.Sealed = append(s.man.Sealed, loose[:len(loose)-1]...)
		if err := s.writeManifestLocked(); err != nil {
			return err
		}
	}
	if len(loose) > 0 {
		name := loose[len(loose)-1]
		path := filepath.Join(s.dir, name)
		// Trim a torn tail — bytes past the last newline are a crash
		// mid-append — so new records never concatenate onto a partial
		// line.  (Replay would drop the merged garbage line, silently
		// losing the first post-restart record.)
		if data, err := os.ReadFile(path); err == nil {
			if cut := bytes.LastIndexByte(data, '\n') + 1; cut < len(data) {
				if err := os.Truncate(path, int64(cut)); err != nil {
					return fmt.Errorf("runstore: trim torn segment tail: %w", err)
				}
			}
		}
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("runstore: reopen active segment: %w", err)
		}
		info, err := f.Stat()
		if err != nil {
			f.Close()
			return fmt.Errorf("runstore: stat active segment: %w", err)
		}
		s.active, s.activeName, s.activeSize = f, name, info.Size()
		return nil
	}
	return s.newActiveLocked()
}

// newActiveLocked starts a fresh active segment.
func (s *SegmentStore) newActiveLocked() error {
	seq := s.man.Seq + 1
	name := fmt.Sprintf("seg-%08d.log", seq)
	f, err := os.OpenFile(filepath.Join(s.dir, name), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("runstore: create segment %s: %w", name, err)
	}
	s.man.Seq = seq
	s.active, s.activeName, s.activeSize = f, name, 0
	return nil
}

// writeManifestLocked commits the manifest (temp + fsync + rename).
func (s *SegmentStore) writeManifestLocked() error {
	data, err := json.MarshalIndent(s.man, "", "  ")
	if err != nil {
		return fmt.Errorf("runstore: marshal manifest: %w", err)
	}
	return commitFile(filepath.Join(s.dir, manifestFile), append(data, '\n'))
}

// appendRec durably appends one record to the active segment, sealing
// and compacting as thresholds are crossed.
func (s *SegmentStore) appendRec(rec Record) error {
	if err := validateRunID(rec.ID); err != nil {
		return err
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("runstore: marshal %s record: %w", rec.Rec, err)
	}
	line = append(line, '\n')

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("runstore: store closed")
	}
	if err := s.checkFence(); err != nil {
		return err
	}
	if s.active == nil {
		if err := s.newActiveLocked(); err != nil {
			return err
		}
	}
	if _, err := s.active.Write(line); err != nil {
		return fmt.Errorf("runstore: append to %s: %w", s.activeName, err)
	}
	if err := s.active.Sync(); err != nil {
		return fmt.Errorf("runstore: sync %s: %w", s.activeName, err)
	}
	s.activeSize += int64(len(line))
	if s.activeSize >= s.MaxSegmentBytes {
		if err := s.sealLocked(); err != nil {
			return err
		}
		if s.CompactAfter > 0 && len(s.man.Sealed) >= s.CompactAfter {
			if err := s.compactLocked(); err != nil {
				return err
			}
		}
	}
	return nil
}

// sealLocked makes the active segment immutable and starts a new one.
func (s *SegmentStore) sealLocked() error {
	if err := s.active.Close(); err != nil {
		return fmt.Errorf("runstore: seal %s: %w", s.activeName, err)
	}
	s.active = nil
	s.man.Sealed = append(s.man.Sealed, s.activeName)
	if err := s.writeManifestLocked(); err != nil {
		return err
	}
	return s.newActiveLocked()
}

// Compact folds every sealed segment — after first sealing the active
// one if it holds records — into a single compact segment.  Exposed for
// tests and offline maintenance; appendRec triggers it automatically
// via CompactAfter.
func (s *SegmentStore) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("runstore: store closed")
	}
	if err := s.checkFence(); err != nil {
		return err
	}
	if s.activeSize > 0 {
		if err := s.sealLocked(); err != nil {
			return err
		}
	}
	if len(s.man.Sealed) == 0 {
		return nil
	}
	return s.compactLocked()
}

// compactLocked rewrites all sealed segments as one folded compact
// segment and commits a manifest referencing only it.
func (s *SegmentStore) compactLocked() error {
	fold := newRecordFold()
	for _, name := range s.man.Sealed {
		if err := foldFile(filepath.Join(s.dir, name), fold); err != nil {
			return fmt.Errorf("runstore: compact read %s: %w", name, err)
		}
	}
	seq := s.man.Seq + 1
	name := fmt.Sprintf("compact-%08d.log", seq)
	f, err := os.OpenFile(filepath.Join(s.dir, name), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("runstore: create %s: %w", name, err)
	}
	w := bufio.NewWriter(f)
	for _, id := range fold.order {
		if err := writeFolded(w, fold.runs[id]); err != nil {
			f.Close()
			os.Remove(filepath.Join(s.dir, name))
			return err
		}
	}
	if err := w.Flush(); err == nil {
		err = f.Sync()
	}
	if err != nil {
		f.Close()
		os.Remove(filepath.Join(s.dir, name))
		return fmt.Errorf("runstore: write %s: %w", name, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(filepath.Join(s.dir, name))
		return fmt.Errorf("runstore: close %s: %w", name, err)
	}

	// The manifest rewrite is compaction's commit point: re-validate the
	// fence here, after the (potentially long) fold, so a coordinator
	// deposed mid-compaction cannot publish a manifest over the rival's.
	if err := s.checkFence(); err != nil {
		os.Remove(filepath.Join(s.dir, name))
		return err
	}
	old := s.man.Sealed
	s.man = manifest{Sealed: []string{name}, Seq: seq}
	if err := s.writeManifestLocked(); err != nil {
		return err
	}
	// The new manifest is the commit point; the replaced segments are
	// now unreferenced and their removal is free to fail (recover
	// treats them as loose only if named seg-*, and their sequence
	// numbers are below the compact segment's — worst case they are
	// re-adopted and re-compacted, which is idempotent).
	for _, n := range old {
		os.Remove(filepath.Join(s.dir, n))
	}
	return nil
}

// writeFolded re-serialises one folded run as record lines.
func writeFolded(w *bufio.Writer, run *RunRecord) error {
	write := func(rec Record) error {
		line, err := json.Marshal(rec)
		if err != nil {
			return fmt.Errorf("runstore: compact marshal: %w", err)
		}
		line = append(line, '\n')
		_, err = w.Write(line)
		return err
	}
	if err := write(Record{Rec: "spec", ID: run.ID, Time: run.Started, Spec: run.Spec}); err != nil {
		return err
	}
	for _, e := range run.Experiments {
		if err := write(Record{Rec: "experiment", ID: run.ID, Name: e.Name, Result: e.Result}); err != nil {
			return err
		}
	}
	for _, a := range run.Assignments {
		if err := write(Record{Rec: "assign", ID: run.ID, Time: a.Time, Name: a.Name, Worker: a.Worker}); err != nil {
			return err
		}
	}
	if run.EndState != "" {
		if err := write(Record{Rec: "end", ID: run.ID, Time: run.Finished, State: run.EndState, Error: run.EndError}); err != nil {
			return err
		}
	}
	return nil
}

// Begin records a run's submission: its identity and spec.
func (s *SegmentStore) Begin(id string, spec json.RawMessage, at time.Time) error {
	return s.appendRec(Record{Rec: "spec", ID: id, Time: at, Spec: spec})
}

// Checkpoint records one completed experiment.
func (s *SegmentStore) Checkpoint(id, experiment string, result json.RawMessage) error {
	return s.appendRec(Record{Rec: "experiment", ID: id, Time: time.Now(), Name: experiment, Result: result})
}

// Assign records the dispatch of one experiment job to a worker.
func (s *SegmentStore) Assign(id, experiment, worker string) error {
	return s.appendRec(Record{Rec: "assign", ID: id, Time: time.Now(), Name: experiment, Worker: worker})
}

// End records a run's terminal state.
func (s *SegmentStore) End(id, state, errMsg string) error {
	return s.appendRec(Record{Rec: "end", ID: id, Time: time.Now(), State: state, Error: errMsg})
}

// Delete appends a tombstone hiding the run from replay; compaction
// physically reclaims it.
func (s *SegmentStore) Delete(id string) error {
	return s.appendRec(Record{Rec: "delete", ID: id, Time: time.Now()})
}

// CachePut shadows the embedded cacheFS method with a fence check; see
// (*Store).CachePut.
func (s *SegmentStore) CachePut(key string, data []byte) error {
	if err := s.checkFence(); err != nil {
		return err
	}
	return s.cacheFS.CachePut(key, data)
}

// Load replays the manifest's sealed segments in order, then the active
// segment, folding records into per-run state.  It holds the store lock
// for the duration so the segment set cannot shift mid-replay; Load is
// a startup/admin operation, not a hot path.
func (s *SegmentStore) Load() ([]*RunRecord, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fold := newRecordFold()
	names := append([]string{}, s.man.Sealed...)
	if s.activeName != "" {
		names = append(names, s.activeName)
	}
	for _, name := range names {
		if err := foldFile(filepath.Join(s.dir, name), fold); err != nil {
			return nil, fmt.Errorf("runstore: replay %s: %w", name, err)
		}
	}
	runs := make([]*RunRecord, 0, len(fold.order))
	for _, id := range fold.order {
		runs = append(runs, fold.runs[id])
	}
	sortRuns(runs)
	return runs, nil
}

// MaxSeq reports the highest live "run-N" identifier.
func (s *SegmentStore) MaxSeq() int {
	runs, err := s.Load()
	if err != nil {
		return 0
	}
	max := 0
	for _, r := range runs {
		if rest, ok := strings.CutPrefix(r.ID, "run-"); ok {
			if n, err := strconv.Atoi(rest); err == nil && n > max {
				max = n
			}
		}
	}
	return max
}

// recordFold accumulates the replayed state of every run across
// segment boundaries.
type recordFold struct {
	runs  map[string]*RunRecord
	order []string
}

func newRecordFold() *recordFold {
	return &recordFold{runs: map[string]*RunRecord{}}
}

// apply folds one record; records are self-describing via ID.
func (f *recordFold) apply(rec Record) {
	id := rec.ID
	if id == "" {
		return
	}
	run := f.runs[id]
	switch rec.Rec {
	case "spec":
		if run != nil {
			return // first spec wins
		}
		f.runs[id] = &RunRecord{ID: id, Started: rec.Time, Spec: rec.Spec}
		f.order = append(f.order, id)
	case "experiment":
		if run == nil || rec.Name == "" {
			return
		}
		for i := range run.Experiments {
			if run.Experiments[i].Name == rec.Name {
				run.Experiments[i].Result = rec.Result
				return
			}
		}
		run.Experiments = append(run.Experiments, ExperimentRecord{Name: rec.Name, Result: rec.Result})
	case "assign":
		if run == nil || rec.Name == "" {
			return
		}
		run.Assignments = append(run.Assignments, AssignRecord{Name: rec.Name, Worker: rec.Worker, Time: rec.Time})
	case "end":
		if run == nil {
			return
		}
		run.EndState = rec.State
		run.EndError = rec.Error
		run.Finished = rec.Time
	case "delete":
		if run == nil {
			return
		}
		delete(f.runs, id)
		for i, oid := range f.order {
			if oid == id {
				f.order = append(f.order[:i], f.order[i+1:]...)
				break
			}
		}
	}
}

// foldFile replays one segment file into the fold.  Unparseable lines —
// the torn tail of a crashed write — are skipped, same as the JSONL
// backend: the fsynced prefix is always a consistent state.
func foldFile(path string, fold *recordFold) error {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 64<<20) // results can be large
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil {
			continue
		}
		fold.apply(rec)
	}
	return sc.Err()
}
