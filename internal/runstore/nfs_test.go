package runstore

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"
	"testing"
	"time"
)

// NFS-semantics tests: the rename-based lease protocol assumes POSIX
// single-node guarantees that network filesystems historically break —
// close-to-open consistency (a client may serve stale reads from its
// attribute/page cache) and O_EXCL atomicity (not atomic over NFSv2,
// flaky over misconfigured v3).  nfsIO injects exactly those two
// weaknesses under one store handle, so these tests can show where the
// enforced fence holds, where only the fence holds (the rename-confirm
// argument alone does not), and the one residual window that remains a
// mount-option problem (documented in docs/ROBUSTNESS.md).

// nfsIO is a leaseIO whose reads can be frozen — serving each path's
// last-read bytes, the way an NFS client's cache serves stale data
// within its attribute-cache timeout — and whose exclusive creates can
// drop O_EXCL.
type nfsIO struct {
	brokenExcl bool

	mu     sync.Mutex
	frozen bool
	cache  map[string]nfsCached
}

type nfsCached struct {
	data []byte
	err  error
}

func (n *nfsIO) Freeze() {
	n.mu.Lock()
	n.frozen = true
	n.mu.Unlock()
}

func (n *nfsIO) Thaw() {
	n.mu.Lock()
	n.frozen = false
	n.cache = nil
	n.mu.Unlock()
}

func (n *nfsIO) ReadFile(path string) ([]byte, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.frozen {
		if c, ok := n.cache[path]; ok {
			return c.data, c.err
		}
	}
	data, err := os.ReadFile(path)
	if n.frozen {
		if n.cache == nil {
			n.cache = map[string]nfsCached{}
		}
		n.cache[path] = nfsCached{data: data, err: err}
	}
	return data, err
}

func (n *nfsIO) OpenExclusive(path string) (*os.File, error) {
	if n.brokenExcl {
		// O_EXCL dropped: the create "succeeds" even when a rival's
		// claim file already exists, exactly the NFSv2 failure mode.
		return os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	}
	return os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
}

// TestFencingDelayedLeaseVisibility shows both sides of the fence on a
// filesystem with delayed read visibility: while the stalled leader's
// client cache still serves the old lease, its write LANDS — the
// residual window that only mount options (actimeo=0) can close — and
// the moment visibility catches up, the fence refuses everything.
// Without the fence the stalled leader would keep corrupting the store
// forever after; with it the exposure is bounded by the cache delay.
func TestFencingDelayedLeaseVisibility(t *testing.T) {
	dir := t.TempDir()
	leader, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer leader.Close()
	nfs := &nfsIO{}
	leader.leaseFS.fsio = nfs

	const ttl = 100 * time.Millisecond
	lease, ok, err := leader.TryAcquireLease("leader", ttl)
	if err != nil || !ok {
		t.Fatalf("acquire: ok=%v err=%v", ok, err)
	}
	if err := leader.Fence("leader", lease.Term); err != nil {
		t.Fatal(err)
	}

	// The leader's client cache goes stale from here: every lease read
	// now serves the bytes it saw last.  Prime it with the pre-takeover
	// record via a successful write's fence check.
	nfs.Freeze()
	if err := leader.Begin("run-1", json.RawMessage(`{}`), time.Now()); err != nil {
		t.Fatalf("Begin while leading: %v", err)
	}

	// A rival on the same directory (healthy visibility) waits out
	// expiry + grace and claims the next term.
	rival, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer rival.Close()
	deadline := time.Now().Add(10 * time.Second)
	for {
		l2, ok, err := rival.TryAcquireLease("rival", ttl)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			if l2.Term != lease.Term+1 {
				t.Fatalf("takeover term: %+v", l2)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("rival never took over")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The stalled leader writes while its lease view is stale: the
	// fence reads term 1, and the write lands.  This is the honest
	// residual window — the fence is only as fresh as a lease read.
	if err := leader.Checkpoint("run-1", "a", json.RawMessage(`{"stale":true}`)); err != nil {
		t.Fatalf("write inside the stale-visibility window: %v (want it to land — the documented residual exposure)", err)
	}

	// Visibility catches up (attribute cache expires): from the very
	// next mutation, the fence holds.
	nfs.Thaw()
	if err := leader.End("run-1", "done", ""); !errors.Is(err, ErrFenced) {
		t.Fatalf("write after visibility caught up: %v, want ErrFenced", err)
	}
	if err := leader.Checkpoint("run-1", "b", json.RawMessage(`{}`)); !errors.Is(err, ErrFenced) {
		t.Fatalf("every later write must stay fenced, got %v", err)
	}
}

// TestFencingSameTermDoubleClaim forges the outcome of a lost O_EXCL
// race — two processes each confirmed the SAME term, which rename-based
// arbitration cannot prevent once exclusive create stops being atomic —
// and pins that the fence still picks exactly one writer: the on-disk
// record is the authority, and the owner check refuses the other
// process even though the terms are equal.
func TestFencingSameTermDoubleClaim(t *testing.T) {
	dir := t.TempDir()
	a, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	// A claims term 1 and confirms.
	lease, ok, err := a.TryAcquireLease("node-a", time.Minute)
	if err != nil || !ok || lease.Term != 1 {
		t.Fatalf("acquire: ok=%v err=%v lease=%+v", ok, err, lease)
	}
	if err := a.Fence("node-a", 1); err != nil {
		t.Fatal(err)
	}
	// B's rename of its own term-1 claim lands *after* A's confirm —
	// the interleaving a dropped O_EXCL permits.  B believes it leads
	// at the same term.
	if err := b.commitLease(CoordLease{Owner: "node-b", Term: 1, Expires: time.Now().Add(time.Minute)}); err != nil {
		t.Fatal(err)
	}
	if err := b.Fence("node-b", 1); err != nil {
		t.Fatal(err)
	}

	// Only the process the on-disk record names can write; the term
	// comparison alone would let BOTH through.
	if err := b.Begin("run-1", json.RawMessage(`{}`), time.Now()); err != nil {
		t.Fatalf("on-disk owner's write: %v", err)
	}
	if err := a.Begin("run-2", json.RawMessage(`{}`), time.Now()); !errors.Is(err, ErrFenced) {
		t.Fatalf("displaced same-term claimant's write: %v, want ErrFenced", err)
	}
}

// TestFencingBrokenExclusiveRace races two claimants whose exclusive
// creates dropped O_EXCL, under -race, and asserts the system invariant
// the fence restores: whatever the interleaving did to the claim files,
// at most one handle can mutate the store afterwards — the one the
// on-disk lease names.
func TestFencingBrokenExclusiveRace(t *testing.T) {
	for round := 0; round < 5; round++ {
		t.Run(fmt.Sprintf("round-%d", round), func(t *testing.T) {
			dir := t.TempDir()
			open := func(id string) *Store {
				s, err := Open(dir)
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(func() { s.Close() })
				s.leaseFS.fsio = &nfsIO{brokenExcl: true}
				return s
			}
			a, b := open("node-a"), open("node-b")

			var okA, okB bool
			var wg sync.WaitGroup
			wg.Add(2)
			go func() {
				defer wg.Done()
				_, okA, _ = a.TryAcquireLease("node-a", time.Minute)
			}()
			go func() {
				defer wg.Done()
				_, okB, _ = b.TryAcquireLease("node-b", time.Minute)
			}()
			wg.Wait()
			if !okA && !okB {
				// Both renames raced such that neither confirm saw its own
				// record — a livelock the poll loop resolves in production.
				t.Skip("neither claimant confirmed this round")
			}

			// Each believer arms its fence, as promotion would.
			cur, ok, err := b.ReadLease()
			if err != nil || !ok {
				t.Fatalf("lease after race: ok=%v err=%v", ok, err)
			}
			writers := 0
			for id, s := range map[string]*Store{"node-a": a, "node-b": b} {
				believed := (id == "node-a" && okA) || (id == "node-b" && okB)
				if !believed {
					continue
				}
				if err := s.Fence(id, 1); err != nil {
					t.Fatal(err)
				}
				err := s.Begin("run-"+id, json.RawMessage(`{}`), time.Now())
				switch {
				case err == nil:
					writers++
					if cur.Owner != id {
						t.Fatalf("%s wrote but the lease names %s", id, cur.Owner)
					}
				case errors.Is(err, ErrFenced):
					if cur.Owner == id {
						t.Fatalf("%s is the on-disk owner yet was fenced", id)
					}
				default:
					t.Fatalf("%s Begin: %v", id, err)
				}
			}
			if writers > 1 {
				t.Fatalf("%d writers allowed after a same-term race, want at most 1", writers)
			}
		})
	}
}
