package runstore

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/faultinject"
)

func TestBeginCheckpointEndRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	started := time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)
	if err := s.Begin("run-1", json.RawMessage(`{"short":true}`), started); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint("run-1", "fig4", json.RawMessage(`{"experiment":"fig4"}`)); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint("run-1", "txt3", json.RawMessage(`{"experiment":"txt3"}`)); err != nil {
		t.Fatal(err)
	}
	if err := s.End("run-1", "done", ""); err != nil {
		t.Fatal(err)
	}

	runs, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 1 {
		t.Fatalf("replayed %d runs, want 1", len(runs))
	}
	r := runs[0]
	if r.ID != "run-1" || !r.Started.Equal(started) {
		t.Errorf("identity = %q @ %v", r.ID, r.Started)
	}
	if string(r.Spec) != `{"short":true}` {
		t.Errorf("spec = %s", r.Spec)
	}
	if len(r.Experiments) != 2 || r.Experiments[0].Name != "fig4" || r.Experiments[1].Name != "txt3" {
		t.Errorf("experiments = %+v", r.Experiments)
	}
	if r.EndState != "done" || r.EndError != "" {
		t.Errorf("end = %q/%q", r.EndState, r.EndError)
	}
	if got := r.Experiment("txt3"); string(got) != `{"experiment":"txt3"}` {
		t.Errorf("Experiment(txt3) = %s", got)
	}
	if r.Experiment("nope") != nil {
		t.Error("Experiment(nope) found something")
	}
}

func TestInterruptedRunHasNoEndState(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Begin("run-3", json.RawMessage(`{}`), time.Now()); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint("run-3", "fig4", json.RawMessage(`{}`)); err != nil {
		t.Fatal(err)
	}
	runs, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 1 || runs[0].EndState != "" {
		t.Fatalf("interrupted run replayed as %+v", runs)
	}
}

// TestTornTailTolerated simulates a crash mid-append: the last line is
// truncated garbage.  Replay must keep the durable prefix.
func TestTornTailTolerated(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Begin("run-1", json.RawMessage(`{}`), time.Now()); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint("run-1", "fig4", json.RawMessage(`{"ok":1}`)); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(filepath.Join(dir, "run-1.jsonl"), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"rec":"experiment","name":"txt3","result":{"trunc`)
	f.Close()

	runs, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 1 {
		t.Fatalf("replayed %d runs, want 1", len(runs))
	}
	if len(runs[0].Experiments) != 1 || runs[0].Experiments[0].Name != "fig4" {
		t.Errorf("torn tail corrupted replay: %+v", runs[0].Experiments)
	}
}

func TestRecheckpointKeepsLast(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s.Begin("run-1", json.RawMessage(`{}`), time.Now())
	s.Checkpoint("run-1", "fig5", json.RawMessage(`{"attempt":1}`))
	s.Checkpoint("run-1", "fig5", json.RawMessage(`{"attempt":2}`))
	runs, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(runs[0].Experiments) != 1 || string(runs[0].Experiment("fig5")) != `{"attempt":2}` {
		t.Errorf("re-checkpoint not folded to last: %+v", runs[0].Experiments)
	}
}

func TestDeleteAndMaxSeq(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"run-1", "run-2", "run-10"} {
		if err := s.Begin(id, json.RawMessage(`{}`), time.Now()); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.MaxSeq(); got != 10 {
		t.Errorf("MaxSeq = %d, want 10", got)
	}
	if err := s.Delete("run-10"); err != nil {
		t.Fatal(err)
	}
	if got := s.MaxSeq(); got != 2 {
		t.Errorf("MaxSeq after delete = %d, want 2", got)
	}
	if err := s.Delete("run-10"); err != nil {
		t.Errorf("deleting a missing run: %v", err)
	}
	runs, _ := s.Load()
	if len(runs) != 2 {
		t.Errorf("%d runs after delete, want 2", len(runs))
	}
	// Load returns numeric ID order.
	if runs[0].ID != "run-1" || runs[1].ID != "run-2" {
		t.Errorf("order = %s, %s", runs[0].ID, runs[1].ID)
	}
}

func TestInvalidRunIDRejected(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"", "../evil", "a/b", `a\b`} {
		if err := s.Begin(id, json.RawMessage(`{}`), time.Now()); err == nil {
			t.Errorf("id %q accepted", id)
		}
	}
}

func TestFaultInjectionAtAppend(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s.Fault = faultinject.New(faultinject.Rule{
		Point: faultinject.PointStoreAppend, Key: "run-1/experiment", Times: 1,
		Action: faultinject.Action{Err: errors.New("disk full")},
	})
	if err := s.Begin("run-1", json.RawMessage(`{}`), time.Now()); err != nil {
		t.Fatalf("spec append hit the experiment-only rule: %v", err)
	}
	if err := s.Checkpoint("run-1", "fig4", json.RawMessage(`{}`)); !errors.Is(err, faultinject.ErrInjected) {
		t.Errorf("injected append error lost: %v", err)
	}
	// The rule is exhausted; the retryed checkpoint lands.
	if err := s.Checkpoint("run-1", "fig4", json.RawMessage(`{}`)); err != nil {
		t.Errorf("second checkpoint failed: %v", err)
	}
}

func TestOpenRejectsUnwritableDir(t *testing.T) {
	if os.Geteuid() == 0 {
		t.Skip("running as root; permission bits do not bind")
	}
	dir := t.TempDir()
	ro := filepath.Join(dir, "ro")
	if err := os.Mkdir(ro, 0o555); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(ro); err == nil {
		t.Error("read-only directory accepted")
	}
}

// TestAssignRecords verifies worker-assignment records round-trip
// through replay: every dispatch of a job to a worker is folded into
// the run's Assignments in append order (re-queued jobs appear again),
// without disturbing checkpoint-based resume.
func TestAssignRecords(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Begin("run-1", json.RawMessage(`{"experiments":["fig4","txt3"]}`), time.Now()); err != nil {
		t.Fatal(err)
	}
	if err := s.Assign("run-1", "fig4", "w1"); err != nil {
		t.Fatal(err)
	}
	if err := s.Assign("run-1", "txt3", "w2"); err != nil {
		t.Fatal(err)
	}
	// txt3's first lease is lost; the re-queued job lands on w1.
	if err := s.Assign("run-1", "txt3", "w1"); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint("run-1", "fig4", json.RawMessage(`{"experiment":"fig4"}`)); err != nil {
		t.Fatal(err)
	}

	runs, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 1 {
		t.Fatalf("loaded %d runs, want 1", len(runs))
	}
	run := runs[0]
	want := []struct{ name, worker string }{
		{"fig4", "w1"}, {"txt3", "w2"}, {"txt3", "w1"},
	}
	if len(run.Assignments) != len(want) {
		t.Fatalf("replayed %d assignments, want %d: %+v", len(run.Assignments), len(want), run.Assignments)
	}
	for i, w := range want {
		if run.Assignments[i].Name != w.name || run.Assignments[i].Worker != w.worker {
			t.Errorf("assignment %d = %s/%s, want %s/%s",
				i, run.Assignments[i].Name, run.Assignments[i].Worker, w.name, w.worker)
		}
	}
	// Assignments are an audit trail only: the interrupted run still
	// resumes from its checkpoints.
	if run.EndState != "" || run.Experiment("fig4") == nil || run.Experiment("txt3") != nil {
		t.Errorf("assign records disturbed resume state: %+v", run)
	}
}
