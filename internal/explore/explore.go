// Package explore turns the sampling simulator into an exhaustive one:
// it enumerates, for a small bounded program (a litmus test), every
// final-memory outcome reachable under a finite abstraction of the
// machine's nondeterminism, with a replayable witness per outcome.
//
// # How it works
//
// Every random decision in internal/sim flows through the pluggable
// sim.ChoiceSource interface.  The explorer installs a controlling
// source that resolves each decision from a finite domain and runs the
// machine once per resolution path, enumerating paths by depth-first
// search over a work-stack of pick prefixes: a run replays a recorded
// prefix of picks and then picks the first element of every remaining
// domain, scheduling the untried alternatives of each multi-valued
// post-prefix choice as new prefixes.  Per-thread program alignment
// (the litmus delay loop) is explored the same way, as a virtual choice
// made before the machine starts.
//
// # Reductions
//
// Exhaustive over the raw domains is hopeless (a single propagation
// delay alone has PropMax-PropMin+1 values), so the explorer applies
// two reductions:
//
//   - Delay extremality: integer delay choices range over their extreme
//     values only ({min, max}, plus max+tail for heavy-tailed
//     propagation), and scheduling jitter (issue/load jitter, which
//     perturbs timing by a cycle or two without enabling reorderings
//     that delay extremes and alignment sweeps cannot) is pinned off.
//     The rationale: reorderings observable in final memory flip at
//     delay-order thresholds, and the extreme points reach both sides
//     of every threshold the sampled distributions can reach.  This is
//     an abstraction, not a theorem about the simulator; it is kept
//     honest by the conformance superset test, which checks that every
//     outcome the sampling runner has ever observed is contained in the
//     enumerated set.
//
//   - Sleep-set-style store-combine collapsing: the out-of-order
//     store-buffer commit probability is re-drawn every cycle while a
//     head store is stuck, which would branch the tree at every such
//     cycle.  The explorer branches only the first opportunity per
//     core; declining puts the core's combine choice to sleep for the
//     rest of the run ("combine at the first opportunity or not at
//     all"), which preserves the visible reordering while collapsing
//     the when-exactly dimension.
//
// Independent propagation events are partial-order reduced implicitly:
// the per-destination delay choices of one committed store are factored
// into independent per-destination domains rather than interleavings,
// and state dedup (below) merges the resolution orders that converge.
//
// # State dedup
//
// At every multi-valued choice point past the replayed prefix the
// explorer fingerprints the machine (sim.Machine.Fingerprint — full
// architectural + microarchitectural + storage state, times normalised
// to the current cycle) combined with the choice descriptor and the
// choice ordinal within the current cycle.  If the fingerprint was seen
// before, the subtree rooted here is already covered by the first
// visitor, so the run continues on default picks but schedules no
// further alternatives.  Dedup trusts the 64-bit hash, as stateless
// model checkers conventionally do.
package explore

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/arch"
	"repro/internal/sim"
)

// Spec describes one bounded program to explore.
type Spec struct {
	// Prof is the architecture profile (already stress-adjusted if the
	// caller wants elevated propagation tails).
	Prof *arch.Profile
	// Threads is the number of hardware threads.
	Threads int
	// Build returns thread's program given its alignment stagger (the
	// number of delay-loop iterations to insert; 0 = none).  It must be
	// deterministic.
	Build func(thread int, stagger int64) (arch.Program, error)
	// Init seeds memory before each run.
	Init map[int64]int64
	// PreTouch marks lines resident in the outer hierarchy.
	PreTouch []int64
	// Interesting lists the shared addresses whose timing choices get
	// extremal domains; stores to other addresses (private result
	// slots) resolve to the minimum without branching.
	Interesting []int64
	// Watch lists the addresses whose final values define an outcome.
	Watch []int64
	// Stagger is the alignment domain applied independently to every
	// thread.  Alignment matters in both directions — a reader arriving
	// before or after a writer reaches different outcomes — so no
	// thread is pinned.  Empty = DefaultStagger(Threads).
	Stagger []int64
	// MemWords sizes memory (default 4096).
	MemWords int
	// MaxCyclesPerRun bounds one run (default 1_000_000).
	MaxCyclesPerRun int64
	// MaxRuns bounds the exploration (default 400_000); exceeding it
	// yields Complete == false.
	MaxRuns int
	// StopOutcome, when non-nil, halts the exploration as soon as a
	// newly recorded outcome's watched values satisfy it.  Callers
	// proving reachability (an Allowed litmus expectation) use it to
	// avoid enumerating the full tree; the report is Complete only if
	// the tree happened to be exhausted anyway.
	StopOutcome func(values []int64) bool
}

// DefaultStagger returns the per-thread alignment domain: denser for
// few threads (the cross product is the domain size to the power of the
// thread count), coarser for many.  Values are delay-loop iterations;
// one iteration is roughly two cycles.
func DefaultStagger(threads int) []int64 {
	switch {
	case threads <= 2:
		return []int64{0, 1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48}
	case threads == 3:
		return []int64{0, 1, 2, 4, 8, 16, 32}
	default:
		return []int64{0, 4, 12, 32}
	}
}

// Outcome is one reachable final-memory state over the watched
// addresses, with the pick sequence of the first run that produced it.
type Outcome struct {
	// Values holds the final values of Spec.Watch, in order.
	Values []int64
	// Key is the canonical "v0/v1/..." rendering of Values.
	Key string
	// Picks replays this outcome's witness run (see Replay).
	Picks []int
}

// Report is the result of an exploration.
type Report struct {
	// Outcomes are the reachable outcomes, sorted by Key.
	Outcomes []Outcome
	// Runs is the number of machine runs performed.
	Runs int
	// States is the number of distinct deduplicated choice-point
	// states.
	States int
	// Complete reports whether the choice tree was exhausted.  False
	// means MaxRuns truncated the search: the outcome set is still
	// sound (every outcome was reached by a real run) but not
	// necessarily complete.
	Complete bool
}

// Mem returns outcome o's value at a watched address (the Spec's Watch
// order), or 0 for unwatched addresses.
func (o *Outcome) Mem(sp *Spec) func(int64) int64 {
	return func(addr int64) int64 {
		for i, a := range sp.Watch {
			if a == addr {
				return o.Values[i]
			}
		}
		return 0
	}
}

// choiceRec records one choice made past the prefix.
type choiceRec struct {
	nAlts  int  // domain size
	branch bool // alternatives should be scheduled
}

// controller is the ChoiceSource driving one run.
type controller struct {
	x       *explorer
	prefix  []int
	picks   []int
	recs    []choiceRec
	replay  bool // pure witness replay: no dedup, no recording
	stopped bool // hit a visited state; stop scheduling alternatives

	combineSlept []bool // per-core sleep set for ChoiceSBCombine

	lastCycle int64
	ordinal   int
}

// choose resolves one choice from its domain.
func (c *controller) choose(domain []int64, fp uint64, dedup bool) int64 {
	pos := len(c.picks)
	idx := 0
	if pos < len(c.prefix) {
		idx = c.prefix[pos]
		if idx >= len(domain) {
			// A prefix recorded against a different tree shape; the
			// explorer never does this, but fail closed.
			idx = len(domain) - 1
		}
	}
	branch := false
	if !c.replay && pos >= len(c.prefix) && len(domain) > 1 && !c.stopped {
		if dedup {
			if _, seen := c.x.visited[fp]; seen {
				c.stopped = true
			} else {
				c.x.visited[fp] = struct{}{}
				branch = true
			}
		} else {
			branch = true
		}
	}
	c.picks = append(c.picks, idx)
	if !c.replay {
		c.recs = append(c.recs, choiceRec{nAlts: len(domain), branch: branch})
	}
	return domain[idx]
}

// stateFP combines the machine fingerprint with the choice descriptor
// and the per-cycle choice ordinal (two choice points within one cycle
// can otherwise present identical machine state).
func (c *controller) stateFP(ch sim.Choice) uint64 {
	m := c.x.m
	if now := m.Now(); now != c.lastCycle {
		c.lastCycle, c.ordinal = now, 0
	}
	c.ordinal++
	h := m.Fingerprint()
	for _, v := range [...]uint64{
		uint64(ch.Kind), uint64(int64(ch.Core)), uint64(int64(ch.Dest)),
		uint64(ch.Addr), uint64(ch.Lo), uint64(ch.Hi), uint64(c.ordinal),
	} {
		h ^= v + 0x9e3779b97f4a7c15 + (h << 6) + (h >> 2)
	}
	return h
}

func (c *controller) interesting(addr int64) bool {
	for _, a := range c.x.sp.Interesting {
		if a == addr {
			return true
		}
	}
	return false
}

// BoolChoice implements sim.ChoiceSource.
func (c *controller) BoolChoice(ch sim.Choice) bool {
	var domain []int64
	switch ch.Kind {
	case sim.ChoiceSBCombine:
		if c.interesting(ch.Addr) && !c.combineSlept[ch.Core] {
			domain = boolDomain
		} else {
			domain = falseDomain
		}
	case sim.ChoicePropTail:
		// Folded into the ChoicePropDelay domain (delay extremality).
		domain = falseDomain
	default:
		// Issue and load jitter: pinned off under delay extremality.
		domain = falseDomain
	}
	var fp uint64
	dedup := len(domain) > 1
	if dedup {
		fp = c.stateFP(ch)
	}
	v := c.choose(domain, fp, dedup) != 0
	if ch.Kind == sim.ChoiceSBCombine && len(domain) > 1 && !v {
		// Declined: sleep this core's combine for the rest of the run.
		c.combineSlept[ch.Core] = true
	}
	return v
}

var (
	falseDomain = []int64{0}
	boolDomain  = []int64{0, 1}
)

// IntChoice implements sim.ChoiceSource.
func (c *controller) IntChoice(ch sim.Choice) int64 {
	var domain []int64
	switch ch.Kind {
	case sim.ChoiceStoreDrain, sim.ChoiceSBStick:
		if c.interesting(ch.Addr) && ch.Hi > ch.Lo {
			domain = []int64{ch.Lo, ch.Hi}
		} else {
			domain = []int64{ch.Lo}
		}
	case sim.ChoicePropDelay:
		if c.interesting(ch.Addr) && ch.Hi > ch.Lo {
			domain = []int64{ch.Lo, ch.Hi}
			if c.x.sp.Prof.Lat.PropTail > 0 {
				// The heavy tail, folded in as a third extreme point.
				domain = append(domain, ch.Hi+400)
			}
		} else {
			domain = []int64{ch.Lo}
		}
	default:
		// Load-jitter magnitude and tail extras are unreachable with
		// their gating booleans pinned off; fail safe to the minimum.
		domain = []int64{ch.Lo}
	}
	var fp uint64
	dedup := len(domain) > 1
	if dedup {
		fp = c.stateFP(ch)
	}
	return c.choose(domain, fp, dedup)
}

type explorer struct {
	sp      *Spec
	m       *sim.Machine
	visited map[uint64]struct{}
	// progs caches built programs per (thread, stagger).
	progs map[[2]int64]arch.Program
}

// Explore enumerates the reachable outcomes of sp.
func Explore(sp Spec) (*Report, error) {
	x, err := newExplorer(&sp)
	if err != nil {
		return nil, err
	}
	maxRuns := sp.MaxRuns
	if maxRuns <= 0 {
		maxRuns = 400_000
	}

	outcomes := map[string]*Outcome{}
	rep := &Report{}
	truncated := false
	stack := [][]int{nil} // prefixes to explore; nil = the root run
	for len(stack) > 0 {
		if rep.Runs >= maxRuns {
			truncated = true
			break
		}
		prefix := stack[len(stack)-1]
		stack = stack[:len(stack)-1]

		ctl, err := x.execute(prefix, nil)
		if err != nil {
			return nil, fmt.Errorf("explore: run %d (prefix %v): %w", rep.Runs, prefix, err)
		}
		rep.Runs++

		key, vals := x.outcomeKey()
		if _, ok := outcomes[key]; !ok {
			outcomes[key] = &Outcome{
				Values: vals,
				Key:    key,
				Picks:  append([]int(nil), ctl.picks...),
			}
			if sp.StopOutcome != nil && sp.StopOutcome(vals) {
				break
			}
		}

		// Schedule the untried alternatives of every branchable
		// post-prefix choice.
		for i := len(prefix); i < len(ctl.picks); i++ {
			rec := ctl.recs[i]
			if !rec.branch {
				continue
			}
			for alt := 1; alt < rec.nAlts; alt++ {
				next := make([]int, i+1)
				copy(next, ctl.picks[:i])
				next[i] = alt
				stack = append(stack, next)
			}
		}
	}

	rep.Complete = !truncated && len(stack) == 0
	rep.States = len(x.visited)
	for _, o := range outcomes {
		rep.Outcomes = append(rep.Outcomes, *o)
	}
	sort.Slice(rep.Outcomes, func(i, j int) bool { return rep.Outcomes[i].Key < rep.Outcomes[j].Key })
	return rep, nil
}

// Replay re-runs one pick sequence (an Outcome's witness) with a tracer
// installed, so callers can render the interleaving that produced an
// outcome.
func Replay(sp Spec, picks []int, tracer sim.Tracer) error {
	x, err := newExplorer(&sp)
	if err != nil {
		return err
	}
	x.m.SetTracer(tracer)
	defer x.m.SetTracer(nil)
	_, err = x.execute(picks, &replayMode)
	return err
}

var replayMode = struct{}{}

func newExplorer(sp *Spec) (*explorer, error) {
	if sp.Threads < 1 {
		return nil, fmt.Errorf("explore: Spec.Threads must be positive")
	}
	if sp.Build == nil {
		return nil, fmt.Errorf("explore: Spec.Build is required")
	}
	if len(sp.Watch) == 0 {
		return nil, fmt.Errorf("explore: Spec.Watch is empty")
	}
	if sp.MemWords <= 0 {
		sp.MemWords = 4096
	}
	if sp.MaxCyclesPerRun <= 0 {
		sp.MaxCyclesPerRun = 1_000_000
	}
	if len(sp.Stagger) == 0 {
		sp.Stagger = DefaultStagger(sp.Threads)
	}
	m, err := sim.New(sp.Prof, sim.Config{Cores: sp.Threads, MemWords: sp.MemWords, Seed: 1})
	if err != nil {
		return nil, err
	}
	return &explorer{
		sp:      sp,
		m:       m,
		visited: map[uint64]struct{}{},
		progs:   map[[2]int64]arch.Program{},
	}, nil
}

// execute performs one machine run under the given pick prefix.
func (x *explorer) execute(prefix []int, replay *struct{}) (*controller, error) {
	sp := x.sp
	ctl := &controller{
		x:            x,
		prefix:       prefix,
		replay:       replay != nil,
		combineSlept: make([]bool, sp.Threads),
		lastCycle:    -1,
	}

	// Alignment: one virtual choice per thread, made before the machine
	// starts (no machine state to dedup against).
	staggers := make([]int64, sp.Threads)
	for th := 0; th < sp.Threads; th++ {
		staggers[th] = ctl.choose(sp.Stagger, 0, false)
	}

	// The machine's rngs are never consulted while a source is
	// installed, so the Reset seed is immaterial; keep it fixed.
	x.m.Reset(1)
	x.m.SetChoiceSource(ctl)
	for addr, val := range sp.Init {
		x.m.WriteMem(addr, val)
	}
	for _, a := range sp.PreTouch {
		x.m.PreTouch(a)
	}
	for th := 0; th < sp.Threads; th++ {
		key := [2]int64{int64(th), staggers[th]}
		prog, ok := x.progs[key]
		if !ok {
			var err error
			prog, err = sp.Build(th, staggers[th])
			if err != nil {
				return nil, fmt.Errorf("build thread %d stagger %d: %w", th, staggers[th], err)
			}
			x.progs[key] = prog
		}
		if err := x.m.LoadProgram(th, prog); err != nil {
			return nil, err
		}
	}
	res, err := x.m.Run(sp.MaxCyclesPerRun)
	if err != nil {
		return nil, err
	}
	if !res.AllHalted {
		return nil, fmt.Errorf("did not halt within %d cycles", sp.MaxCyclesPerRun)
	}
	return ctl, nil
}

// outcomeKey reads the watched addresses after a run.
func (x *explorer) outcomeKey() (string, []int64) {
	vals := make([]int64, len(x.sp.Watch))
	var b strings.Builder
	for i, a := range x.sp.Watch {
		vals[i] = x.m.ReadMem(a)
		if i > 0 {
			b.WriteByte('/')
		}
		fmt.Fprintf(&b, "%d", vals[i])
	}
	return b.String(), vals
}
