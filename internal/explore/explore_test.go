package explore

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/arch"
	"repro/internal/sim"
)

const (
	addrX = int64(0)
	addrY = int64(64)
	res0  = int64(1024)
	res1  = int64(1088)
)

// sbSpec hand-builds the store-buffering shape: each thread stores 1 to
// its location, then loads the other's into a private result slot.
// Unfenced, both loads may see 0 (the weak outcome); with a full fence
// between the store and the load, 0/0 must be unreachable.
func sbSpec(prof *arch.Profile, fence arch.BarrierKind) Spec {
	return Spec{
		Prof:    prof,
		Threads: 2,
		Build: func(thread int, stagger int64) (arch.Program, error) {
			myAddr, otherAddr, res := addrX, addrY, res0
			if thread == 1 {
				myAddr, otherAddr, res = addrY, addrX, res1
			}
			b := arch.NewBuilder()
			if stagger > 0 {
				b.MovImm(27, stagger)
				b.Label("delay")
				b.SubsImm(27, 27, 1)
				b.Bne("delay")
			}
			b.MovImm(2, 1)
			b.Store(2, 1, myAddr)
			if fence != arch.BarrierNone {
				b.Fence(fence)
			}
			b.Load(3, 1, otherAddr)
			b.Store(3, 1, res)
			b.Halt()
			return b.Build()
		},
		Interesting: []int64{addrX, addrY},
		Watch:       []int64{res0, res1},
		PreTouch:    []int64{addrX, addrY},
	}
}

func keys(rep *Report) []string {
	out := make([]string, len(rep.Outcomes))
	for i, o := range rep.Outcomes {
		out[i] = o.Key
	}
	return out
}

func hasKey(rep *Report, key string) bool {
	for _, o := range rep.Outcomes {
		if o.Key == key {
			return true
		}
	}
	return false
}

// TestStoreBufferingOutcomes checks the explorer against the one fact
// every weak model agrees on: unfenced SB admits the 0/0 outcome and a
// full fence forbids it — on both profiles.
func TestStoreBufferingOutcomes(t *testing.T) {
	for name, prof := range arch.Profiles() {
		fence := arch.DMBIsh
		if prof.Flavor == arch.NonMCA {
			fence = arch.HwSync
		}
		t.Run(name+"/unfenced", func(t *testing.T) {
			rep, err := Explore(sbSpec(prof, arch.BarrierNone))
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Complete {
				t.Fatalf("exploration truncated at %d runs", rep.Runs)
			}
			if !hasKey(rep, "0/0") {
				t.Errorf("weak SB outcome 0/0 not found; outcomes: %v", keys(rep))
			}
			if !hasKey(rep, "0/1") || !hasKey(rep, "1/0") {
				t.Errorf("one-sided SB outcomes missing; outcomes: %v", keys(rep))
			}
			// 1/1 needs both loads to satisfy after both opposing stores
			// arrive; POWER's propagation floor (commit+drain+prop) exceeds
			// the load-satisfaction window, so only MCA reaches it.
			if prof.Flavor == arch.MCA && !hasKey(rep, "1/1") {
				t.Errorf("interleaved outcome 1/1 not found; outcomes: %v", keys(rep))
			}
			t.Logf("%s unfenced SB: %d outcomes %v in %d runs, %d states",
				name, len(rep.Outcomes), keys(rep), rep.Runs, rep.States)
		})
		t.Run(name+"/fenced", func(t *testing.T) {
			rep, err := Explore(sbSpec(prof, fence))
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Complete {
				t.Fatalf("exploration truncated at %d runs", rep.Runs)
			}
			if hasKey(rep, "0/0") {
				t.Errorf("fenced SB reached forbidden outcome 0/0; outcomes: %v", keys(rep))
			}
			if len(rep.Outcomes) == 0 {
				t.Error("no outcomes at all")
			}
		})
	}
}

// TestExploreDeterminism pins that exploration is a pure function of the
// Spec: two passes produce identical reports, outcome keys, and witness
// picks.
func TestExploreDeterminism(t *testing.T) {
	prof := arch.ARMv8()
	a, err := Explore(sbSpec(prof, arch.BarrierNone))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Explore(sbSpec(prof, arch.BarrierNone))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("exploration not deterministic:\n  a: runs=%d states=%d keys=%v\n  b: runs=%d states=%d keys=%v",
			a.Runs, a.States, keys(a), b.Runs, b.States, keys(b))
	}
}

// TestReplayWitness re-runs each outcome's recorded picks and checks the
// replayed machine reproduces exactly that outcome's watched values,
// with trace events delivered.
func TestReplayWitness(t *testing.T) {
	prof := arch.ARMv8()
	sp := sbSpec(prof, arch.BarrierNone)
	rep, err := Explore(sp)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range rep.Outcomes {
		perCore := map[int]int{}
		err := Replay(sp, o.Picks, func(e sim.TraceEvent) {
			perCore[e.Core]++
		})
		if err != nil {
			t.Fatalf("replay %q: %v", o.Key, err)
		}
		for core := 0; core < 2; core++ {
			if perCore[core] == 0 {
				t.Errorf("replay %q: no trace events from core %d", o.Key, core)
			}
		}
	}
	// Replaying a witness must reproduce its outcome: verify through a
	// fresh explorer bounded to a single run seeded with the picks.
	for _, o := range rep.Outcomes {
		got, err := replayOutcome(sp, o.Picks)
		if err != nil {
			t.Fatalf("replay %q: %v", o.Key, err)
		}
		if got != o.Key {
			t.Errorf("witness for %q replayed to %q", o.Key, got)
		}
	}
}

// replayOutcome runs one witness and reads back the watched addresses.
func replayOutcome(sp Spec, picks []int) (string, error) {
	x, err := newExplorer(&sp)
	if err != nil {
		return "", err
	}
	if _, err := x.execute(picks, &replayMode); err != nil {
		return "", err
	}
	key, _ := x.outcomeKey()
	return key, nil
}

// TestMaxRunsTruncation pins the incomplete-search contract: a budget of
// one run yields Complete == false but still reports that run's outcome.
func TestMaxRunsTruncation(t *testing.T) {
	sp := sbSpec(arch.ARMv8(), arch.BarrierNone)
	sp.MaxRuns = 1
	rep, err := Explore(sp)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Complete {
		t.Error("truncated exploration reported Complete")
	}
	if rep.Runs != 1 || len(rep.Outcomes) != 1 {
		t.Errorf("got %d runs, %d outcomes; want 1 and 1", rep.Runs, len(rep.Outcomes))
	}
}

// TestSpecValidation covers the constructor's error paths.
func TestSpecValidation(t *testing.T) {
	prof := arch.ARMv8()
	build := func(int, int64) (arch.Program, error) {
		return arch.NewBuilder().Halt().Build()
	}
	cases := []struct {
		name string
		sp   Spec
	}{
		{"no threads", Spec{Prof: prof, Build: build, Watch: []int64{0}}},
		{"no build", Spec{Prof: prof, Threads: 1, Watch: []int64{0}}},
		{"no watch", Spec{Prof: prof, Threads: 1, Build: build}},
	}
	for _, tc := range cases {
		if _, err := Explore(tc.sp); err == nil {
			t.Errorf("%s: no error", tc.name)
		}
	}
}

// TestMessagePassingAddrDep checks a second shape end to end: MP with a
// fenced writer and an address-dependent reader forbids stale data on
// both architectures, while the unfenced form admits it.
func TestMessagePassingAddrDep(t *testing.T) {
	for name, prof := range arch.Profiles() {
		wfence := arch.DMBIsh
		if prof.Flavor == arch.NonMCA {
			wfence = arch.LwSync
		}
		mp := func(fenced bool) Spec {
			return Spec{
				Prof:    prof,
				Threads: 2,
				Build: func(thread int, stagger int64) (arch.Program, error) {
					b := arch.NewBuilder()
					if stagger > 0 {
						b.MovImm(27, stagger)
						b.Label("delay")
						b.SubsImm(27, 27, 1)
						b.Bne("delay")
					}
					if thread == 0 {
						b.MovImm(2, 1)
						b.Store(2, 1, addrX) // data
						if fenced {
							b.Fence(wfence)
						}
						b.Store(2, 1, addrY) // flag
					} else {
						b.Load(2, 1, addrY) // flag
						// Address dependency: data address computed from
						// the flag value (x ^ x == 0 folded into the base).
						b.Eor(4, 2, 2)
						b.Add(5, 1, 4)
						b.Load(3, 5, addrX)
						b.Store(2, 1, res0)
						b.Store(3, 1, res1)
					}
					b.Halt()
					return b.Build()
				},
				Interesting: []int64{addrX, addrY},
				Watch:       []int64{res0, res1},
				PreTouch:    []int64{addrX, addrY},
			}
		}
		t.Run(name, func(t *testing.T) {
			weak, err := Explore(mp(false))
			if err != nil {
				t.Fatal(err)
			}
			strong, err := Explore(mp(true))
			if err != nil {
				t.Fatal(err)
			}
			if !strong.Complete {
				t.Fatalf("fenced exploration truncated at %d runs", strong.Runs)
			}
			if hasKey(strong, "1/0") {
				t.Errorf("fenced MP reached forbidden 1/0; outcomes: %v", keys(strong))
			}
			if !hasKey(strong, "1/1") {
				t.Errorf("fenced MP never saw 1/1; outcomes: %v", keys(strong))
			}
			t.Logf("%s MP: unfenced %v (%d runs), fenced %v (%d runs)",
				name, keys(weak), weak.Runs, keys(strong), strong.Runs)
		})
	}
}

func BenchmarkExploreSB(b *testing.B) {
	sp := sbSpec(arch.ARMv8(), arch.BarrierNone)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := Explore(sp)
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Complete {
			b.Fatal("truncated")
		}
	}
}

var _ = fmt.Sprintf // keep fmt if assertions change
