// Package workload provides the benchmark framework: a Benchmark describes
// how to build per-core programs against a platform code generator, and the
// Runner executes it on the simulator across seeds, producing the
// performance samples (geometric means, confidence intervals) that the
// paper's methodology consumes.
//
// Performance follows the paper's §2 definitions: either throughput (work
// units per unit time) or response time (inverse mean / inverse worst-case
// gap between completed requests), each with an inherent stability
// determined by the spread of repeated samples.
package workload

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/arch"
	"repro/internal/costfn"
	"repro/internal/platform/c11"
	"repro/internal/platform/jvm"
	"repro/internal/platform/kernel"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Platform names the platform family a benchmark runs on.
type Platform uint8

const (
	// JVMPlatform benchmarks exercise the Hotspot barrier code paths.
	JVMPlatform Platform = iota
	// KernelPlatform benchmarks exercise the Linux barrier macros.
	KernelPlatform
	// C11Platform benchmarks exercise the C11 memory_order lowerings.
	C11Platform
)

// Metric selects how performance is derived from a run.
type Metric uint8

const (
	// Throughput is work units per simulated nanosecond (higher better).
	Throughput Metric = iota
	// InvMeanResponse is the inverse mean gap between work completions
	// (higher better), for request-serving benchmarks.
	InvMeanResponse
	// InvMaxResponse is the inverse tail (95th percentile) gap between
	// completions (higher better); the paper singles out worst-case
	// response time as a key measure, and the tail percentile is its
	// stable analogue under simulation noise.
	InvMaxResponse
)

// BuildCtx is handed to a benchmark's Build function.
type BuildCtx struct {
	M    *sim.Machine
	Prof *arch.Profile
	// Exactly one of JVM/Kernel/C11 is non-nil, per the benchmark's
	// Platform.
	JVM    *jvm.JVM
	Kernel *kernel.Kernel
	C11    *c11.C11
	// Seed-derived randomness for program/data layout.
	Rand func() uint64
}

// Benchmark describes one benchmark program.
type Benchmark struct {
	Name     string
	Platform Platform
	Metric   Metric

	Cores    int
	MemWords int
	// MaxCycles bounds the measured run; WarmupCycles are excluded from
	// the work accounting (JIT warm-up analogue).
	MaxCycles    int64
	WarmupCycles int64

	// NoiseARM and NoisePOWER are the relative standard deviations of
	// multiplicative sample noise per profile, modelling external
	// interference the simulator does not capture (e.g. SMT pairing on
	// the POWER7, which the paper blames for xalan's instability, or the
	// ARM instabilities of lusearch/tomcat/tradebeans).  Zero means no
	// extra noise.
	NoiseARM   float64
	NoisePOWER float64

	// Build loads the per-core programs.
	Build func(ctx *BuildCtx) error
}

// Env binds a benchmark run to a platform configuration.
type Env struct {
	Prof *arch.Profile
	// JVMStrategy and Inject configure the jvm platform for JVM
	// benchmarks; KernelStrategy the kernel platform; C11Strategy the
	// C11 platform.
	JVMStrategy    jvm.Strategy
	KernelStrategy kernel.Strategy
	C11Strategy    c11.Strategy
	Inject         map[arch.PathID]costfn.Injection
}

// DefaultEnv returns an Env with the stock strategy for the profile and no
// injections.
func DefaultEnv(prof *arch.Profile) Env {
	return Env{
		Prof:           prof,
		JVMStrategy:    jvm.JDK8(),
		KernelStrategy: kernel.Default(),
		C11Strategy:    c11.Barriers(),
	}
}

// NopBase returns a copy of e with every instrumented code path padded
// with nops — the paper's base case.  paths lists the code paths under
// instrumentation.
func (e Env) NopBase(paths []arch.PathID) Env {
	inj := make(map[arch.PathID]costfn.Injection, len(paths))
	v := costfn.ForProfile(e.Prof)
	for _, p := range paths {
		inj[p] = costfn.Nops(v)
	}
	e.Inject = inj
	return e
}

// WithCost returns a copy of e injecting a cost function of n iterations
// into the listed paths and nop padding into the rest of all paths.
func (e Env) WithCost(costPaths, allPaths []arch.PathID, n int64) Env {
	v := costfn.ForProfile(e.Prof)
	inj := make(map[arch.PathID]costfn.Injection, len(allPaths))
	for _, p := range allPaths {
		inj[p] = costfn.Nops(v)
	}
	for _, p := range costPaths {
		inj[p] = costfn.Cost(v, n)
	}
	e.Inject = inj
	return e
}

// machineKey identifies a simulator configuration for reuse purposes:
// machines of equal key differ only by seed, which Reset restores.
type machineKey struct {
	prof     *arch.Profile
	cores    int
	memWords int
	warmup   int64
	record   bool
}

// MachineCache reuses simulator machines across runs of identical
// configuration via sim.Machine.Reset, eliminating the dominant per-sample
// allocation cost (machine construction).  Reset-reuse is bit-identical to
// fresh construction (proven by the sim package's equivalence tests), so
// cached and uncached runs produce the same samples.
//
// A cache is NOT safe for concurrent use: give each worker goroutine its
// own (see Samples and the engine's worker pool).
type MachineCache struct {
	machines map[machineKey]*sim.Machine
	gaps     []float64 // response-gap staging buffer
	scratch  []float64 // stats.PercentileScratch sort buffer
}

// NewMachineCache returns an empty cache.
func NewMachineCache() *MachineCache { return &MachineCache{} }

// acquire returns a machine for the profile and config, reusing a cached
// one when the configuration (everything but the seed) matches.
func (mc *MachineCache) acquire(prof *arch.Profile, cfg sim.Config) (*sim.Machine, error) {
	if mc == nil {
		return sim.New(prof, cfg)
	}
	key := machineKey{prof, cfg.Cores, cfg.MemWords, cfg.WarmupCycles, cfg.RecordWork}
	if m := mc.machines[key]; m != nil {
		m.Reset(cfg.Seed)
		return m, nil
	}
	m, err := sim.New(prof, cfg)
	if err != nil {
		return nil, err
	}
	if mc.machines == nil {
		mc.machines = make(map[machineKey]*sim.Machine)
	}
	mc.machines[key] = m
	return m, nil
}

// Run executes the benchmark once under env with the given seed and
// returns the performance value for the benchmark's metric.
func Run(b *Benchmark, env Env, seed int64) (float64, error) {
	return RunWith(nil, b, env, seed)
}

// RunWith is Run reusing machines and scratch buffers from mc (which may be
// nil for uncached one-shot execution).  Results are bit-identical to Run.
func RunWith(mc *MachineCache, b *Benchmark, env Env, seed int64) (float64, error) {
	cores := b.Cores
	if cores <= 0 {
		cores = 4
	}
	memWords := b.MemWords
	if memWords <= 0 {
		memWords = 1 << 15
	}
	maxCycles := b.MaxCycles
	if maxCycles <= 0 {
		maxCycles = 150_000
	}
	warmup := b.WarmupCycles
	if warmup <= 0 {
		warmup = maxCycles / 5
	}
	m, err := mc.acquire(env.Prof, sim.Config{
		Cores:        cores,
		MemWords:     memWords,
		Seed:         seed,
		WarmupCycles: warmup,
		RecordWork:   b.Metric != Throughput,
	})
	if err != nil {
		return 0, err
	}
	ctx := &BuildCtx{M: m, Prof: env.Prof}
	switch b.Platform {
	case JVMPlatform:
		ctx.JVM = jvm.New(jvm.Config{Prof: env.Prof, Strategy: env.JVMStrategy, Inject: env.Inject})
	case KernelPlatform:
		ctx.Kernel = kernel.New(kernel.Config{Prof: env.Prof, Strategy: env.KernelStrategy, Inject: env.Inject})
	case C11Platform:
		ctx.C11 = c11.New(c11.Config{Prof: env.Prof, Strategy: env.C11Strategy, Inject: env.Inject})
	}
	rng := seed*0x9e3779b97f4a7c + 0x1234567
	ctx.Rand = func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return uint64(rng)
	}
	if err := b.Build(ctx); err != nil {
		return 0, fmt.Errorf("%s: build: %w", b.Name, err)
	}
	res, err := m.Run(maxCycles)
	if err != nil {
		return 0, fmt.Errorf("%s: %w", b.Name, err)
	}
	perf, err := metricValue(b, env.Prof, res, mc)
	if err != nil {
		return 0, fmt.Errorf("%s: %w", b.Name, err)
	}
	noise := b.NoiseARM
	if env.Prof.Flavor == arch.NonMCA {
		noise = b.NoisePOWER
	}
	if noise > 0 {
		// Seeded multiplicative noise: triangular-ish via the sum of two
		// uniforms, cheap and bounded.  The noise stream is decorrelated
		// from the paired base-case run by hashing the environment into
		// the seed, as external interference would be: otherwise it
		// cancels in the relative-performance ratio.
		n := uint64(seed)*0x9e3779b9 ^ envHash(env)
		u1 := float64(splitmix(&n)%10000)/10000 - 0.5
		u2 := float64(splitmix(&n)%10000)/10000 - 0.5
		perf *= 1 + noise*(u1+u2)
	}
	return perf, nil
}

func splitmix(s *uint64) uint64 {
	*s += 0x9e3779b97f4a7c15
	z := *s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// envHash folds the environment's observable configuration into a hash so
// noise streams differ between configurations.
func envHash(env Env) uint64 {
	h := uint64(14695981039346656037)
	mix := func(x uint64) {
		h ^= x
		h *= 1099511628211
	}
	for _, c := range env.JVMStrategy.Name + "/" + env.KernelStrategy.Name + "/" + env.C11Strategy.Name {
		mix(uint64(c))
	}
	mix(uint64(env.KernelStrategy.RBD))
	if env.KernelStrategy.LASR {
		mix(7)
	}
	if env.JVMStrategy.UseAcqRel {
		mix(11)
	}
	if env.JVMStrategy.HeavyStoreStore {
		mix(13)
	}
	if env.JVMStrategy.LockPatch {
		mix(17)
	}
	if env.JVMStrategy.AcqRelLoad {
		mix(19)
	}
	if env.JVMStrategy.AcqRelStore {
		mix(23)
	}
	if env.JVMStrategy.DropStoreLoad {
		mix(29)
	}
	// Map iteration order is random; fold entries commutatively so the
	// hash stays deterministic.
	var acc uint64
	for p, inj := range env.Inject {
		acc += uint64(p)*2654435761 + uint64(inj.Mode)*97 + uint64(inj.Iterations)
	}
	mix(acc)
	return h
}

func metricValue(b *Benchmark, prof *arch.Profile, res sim.Result, mc *MachineCache) (float64, error) {
	switch b.Metric {
	case Throughput:
		if res.TotalWork == 0 {
			return 0, fmt.Errorf("no work retired in %d cycles", res.Cycles)
		}
		return res.WorkPerNs(prof), nil
	case InvMeanResponse, InvMaxResponse:
		var gaps []float64
		if mc != nil {
			gaps = mc.gaps[:0]
		}
		for _, c := range res.Cores {
			ts := c.WorkTimes
			for i := 1; i < len(ts); i++ {
				gaps = append(gaps, prof.CyclesToNs(ts[i]-ts[i-1]))
			}
		}
		if mc != nil {
			mc.gaps = gaps
		}
		if len(gaps) == 0 {
			return 0, fmt.Errorf("no response gaps recorded")
		}
		if b.Metric == InvMeanResponse {
			return 1 / stats.Mean(gaps), nil
		}
		if mc != nil {
			return 1 / stats.PercentileScratch(gaps, 95, &mc.scratch), nil
		}
		return 1 / stats.Percentile(gaps, 95), nil
	}
	return 0, fmt.Errorf("unknown metric")
}

// SampleSeed derives the seed of the i-th sample of a measurement with
// the given base seed.  The derivation is positional, so a measurement's
// samples are identical whether they run sequentially here or are fanned
// out across an execution engine's worker pool.
func SampleSeed(baseSeed int64, i int) int64 {
	return baseSeed + int64(i)*104729 + 1
}

// Samples runs the benchmark n times with distinct seeds and returns the
// performance samples in seed order.  Runs are independent simulator
// instances, so on multi-core hosts they execute in parallel (bounded by
// GOMAXPROCS) without affecting determinism.
func Samples(b *Benchmark, env Env, n int, baseSeed int64) ([]float64, error) {
	out := make([]float64, n)
	errs := make([]error, n)
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		mc := NewMachineCache()
		for i := 0; i < n; i++ {
			out[i], errs[i] = RunWith(mc, b, env, SampleSeed(baseSeed, i))
		}
	} else {
		var wg sync.WaitGroup
		next := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				mc := NewMachineCache()
				for i := range next {
					out[i], errs[i] = RunWith(mc, b, env, SampleSeed(baseSeed, i))
				}
			}()
		}
		for i := 0; i < n; i++ {
			next <- i
		}
		close(next)
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Measure runs the benchmark and summarises the samples.
func Measure(b *Benchmark, env Env, n int, baseSeed int64) (stats.Summary, error) {
	xs, err := Samples(b, env, n, baseSeed)
	if err != nil {
		return stats.Summary{}, err
	}
	return stats.Summarise(xs), nil
}
