package linuxbench

import (
	"testing"

	"repro/internal/workload"
)

// TestSuiteShape checks the §4.3 suite inventory.
func TestSuiteShape(t *testing.T) {
	suite := Suite()
	want := []string{
		"netperf_tcp", "lmbench", "netperf_udp", "ebizzy", "xalan",
		"osm_stack (avg)", "osm_stack (max)", "osm_tiles", "kernel_compile",
		"spark", "h2",
	}
	if len(suite) != len(want) {
		t.Fatalf("suite has %d benchmarks, want %d", len(suite), len(want))
	}
	for i, name := range want {
		b := suite[i]
		if b.Name != name {
			t.Errorf("suite[%d] = %q, want %q", i, b.Name, name)
		}
		if b.Platform != workload.KernelPlatform {
			t.Errorf("%s: wrong platform", name)
		}
	}
}

// TestMetrics checks the response-time benchmarks use response metrics and
// everything else throughput, per the paper's §2 performance definitions.
func TestMetrics(t *testing.T) {
	for _, b := range Suite() {
		switch b.Name {
		case "osm_stack (avg)":
			if b.Metric != workload.InvMeanResponse {
				t.Errorf("%s metric = %v", b.Name, b.Metric)
			}
		case "osm_stack (max)":
			if b.Metric != workload.InvMaxResponse {
				t.Errorf("%s metric = %v", b.Name, b.Metric)
			}
		default:
			if b.Metric != workload.Throughput {
				t.Errorf("%s metric = %v", b.Name, b.Metric)
			}
		}
	}
}

// TestRBDSix checks the Figure 9/10 panel set and order.
func TestRBDSix(t *testing.T) {
	want := []string{"ebizzy", "xalan", "netperf_udp", "osm_stack (avg)", "lmbench", "netperf_tcp"}
	six := RBDSix()
	if len(six) != 6 {
		t.Fatalf("RBDSix has %d", len(six))
	}
	for i, name := range want {
		if six[i].Name != name {
			t.Errorf("RBDSix[%d] = %q, want %q", i, six[i].Name, name)
		}
	}
}

// TestLmbenchSubtests checks the §4.3 sub-test list is the paper's.
func TestLmbenchSubtests(t *testing.T) {
	want := map[string]bool{
		"fcntl": true, "proc_exec": true, "proc_fork": true, "select_100": true,
		"sem": true, "sig_catch": true, "sig_install": true, "syscall_fstat": true,
		"syscall_null": true, "syscall_open": true, "syscall_read": true, "syscall_write": true,
	}
	if len(LmbenchSubtests) != len(want) {
		t.Fatalf("lmbench has %d subtests", len(LmbenchSubtests))
	}
	for _, s := range LmbenchSubtests {
		if !want[s] {
			t.Errorf("unexpected subtest %q", s)
		}
	}
}

// TestNetperfStability encodes the §4.3.1 observation that UDP is more
// stable (and more rbd-indicative) than TCP.
func TestNetperfStability(t *testing.T) {
	tcp, udp := NetperfTCP(), NetperfUDP()
	if tcp.NoiseARM <= udp.NoiseARM {
		t.Error("netperf_tcp should be less stable than netperf_udp")
	}
}

func TestByNameErrors(t *testing.T) {
	if _, err := ByName("ebizzy"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("iperf"); err == nil {
		t.Error("unknown name accepted")
	}
}
