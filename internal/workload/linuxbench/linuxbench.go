// Package linuxbench provides the kernel benchmark suite of §4.3:
// netperf-style loopback networking (TCP- and UDP-like), the ebizzy
// memory-management stress, an lmbench-style system-call microbenchmark
// aggregate, the OpenStreetMap tile-server stack (throughput and response
// time), a parallel kernel-compilation model, and the three JVM benchmarks
// the paper re-hosts on the kernel platform (h2, spark, xalan).
//
// Each benchmark is built over the kernel substrate (spinlocks, RCU-style
// publish/dereference, seqlocks, SPSC rings), so its sensitivity to each
// barrier macro emerges from how often its primitives run — netperf's
// per-packet rcu_dereference is what makes it the most
// read_barrier_depends-sensitive benchmark (Figure 9), while the JVM
// benchmarks coordinate their own concurrency and barely enter the kernel
// (Figure 8).  The paper's Figure 9 k values appear in the comments; this
// reproduction's measured values are recorded in EXPERIMENTS.md.
package linuxbench

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/workload"
)

// Memory map for the role-based benchmarks (word addresses).  Ring slots
// are 8-word strided (kernel.QueuePush), so a 32-slot ring spans
// kernel.QueueHdr + 256 words; each role block reserves 4096 words, with
// the packet payload area (32 x 64-word packets) at payOffset.
const (
	memWords   = 1 << 15
	queueArea  = 1 << 12 // role blocks start here
	blockWords = 4096
	ringMask   = 31 // 32-slot rings
	payOffset  = 512
	payStride  = 64 // words per packet (a 4096-byte page in spirit)
	ackOffset  = 3000
	lockOffset = 3016
)

// Register conventions for the hand-built role programs (clear of the
// substrate scratch registers 21-23 and the cost-function registers).
const (
	rBase arch.Reg = 1
	rIter arch.Reg = 2
	rVal  arch.Reg = 3
	rTmp  arch.Reg = 4
	rTmp2 arch.Reg = 5
	rSum  arch.Reg = 6
	rCnt  arch.Reg = 7
	rQ    arch.Reg = 12
	rPay  arch.Reg = 13
	rAck  arch.Reg = 14
)

func setSP(ctx *workload.BuildCtx, core int) {
	ctx.M.SetReg(core, arch.SP, int64(memWords-256*(core+1)-8))
}

// emitCompute emits n rounds of dependent ALU work on rVal.
func emitCompute(b *arch.Builder, n int) {
	for i := 0; i < n; i++ {
		b.Lsl(rTmp, rVal, 13)
		b.Eor(rVal, rVal, rTmp)
		b.Lsr(rTmp, rVal, 7)
		b.Eor(rVal, rVal, rTmp)
	}
}

// emitComputeLoop emits a counted loop of dependent ALU work (compact form
// for long service times).
func emitComputeLoop(b *arch.Builder, iters int64, label string) {
	b.MovImm(rCnt, iters)
	b.Label(label)
	b.Lsl(rTmp, rVal, 13)
	b.Eor(rVal, rVal, rTmp)
	b.SubsImm(rCnt, rCnt, 1)
	b.Bne(label)
}

// NetperfTCP models the windowed loopback stream: two producer/consumer
// pairs moving 4096-byte packets through an skb ring with a small in-flight
// window, explicit acknowledgements and socket-wakeup ordering, as TCP's
// loopback path does.
// Paper: most macro-sensitive benchmark overall (Figure 8) but with poor
// stability on the TCP side; fig9 k(rbd)=0.00355±10%.
func NetperfTCP() *workload.Benchmark {
	return netperf("netperf_tcp", 7, true, 0.05)
}

// NetperfUDP is the fire-and-forget variant: a large window and no
// acknowledgements, which makes its per-packet path shorter and its
// rbd sensitivity the highest of all benchmarks (fig9 k=0.00943±8%) with
// much better stability than TCP.
func NetperfUDP() *workload.Benchmark {
	return netperf("netperf_udp", 29, false, 0.02)
}

func netperf(name string, window int64, acks bool, noise float64) *workload.Benchmark {
	return &workload.Benchmark{
		Name:       name,
		Platform:   workload.KernelPlatform,
		Metric:     workload.Throughput,
		Cores:      4,
		MemWords:   memWords,
		MaxCycles:  220_000,
		NoiseARM:   noise,
		NoisePOWER: noise,
		Build: func(ctx *workload.BuildCtx) error {
			k := ctx.Kernel
			for pair := 0; pair < 2; pair++ {
				qBase := int64(queueArea + pair*blockWords)
				payBase := qBase + payOffset
				ackAddr := qBase + ackOffset
				// sk_filter analogue, rcu_dereferenced per packet.
				filterAddr := qBase + ackOffset + 64

				// Producer: fill a payload page, append the packet to
				// the lock-guarded skb queue, wake the receiver,
				// respect the window (and read acks on TCP).
				pb := arch.NewBuilder()
				pb.MovImm(rIter, 0)
				pb.MovImm(rVal, 0x1234)
				pb.Label("send")
				pb.MovImm(rTmp, ringMask)
				pb.And(rTmp, rIter, rTmp)
				pb.Lsl(rTmp, rTmp, 6) // *payStride
				pb.Add(rTmp, rPay, rTmp)
				for w := int64(0); w < payStride; w += 4 {
					pb.Store(rIter, rTmp, w)
				}
				// Payload must be globally visible before the skb is
				// linked in (device-style publish ordering).
				k.SmpWmb(pb)
				// send() enters the kernel.
				k.SyscallEnter(pb, rQ, 3200)
				// skb_queue_tail: lock, link, unlock.
				k.SpinLock(pb, rQ, lockOffset)
				pb.Load(rTmp, rQ, 0) // head
				pb.MovImm(rTmp2, ringMask)
				pb.And(rTmp2, rTmp, rTmp2)
				pb.Lsl(rTmp2, rTmp2, 3)
				pb.Add(rTmp2, rQ, rTmp2)
				pb.Store(rIter, rTmp2, 16) // slot
				pb.AddImm(rTmp, rTmp, 1)
				pb.Store(rTmp, rQ, 0) // publish under the lock
				k.SpinUnlock(pb, rQ, lockOffset)
				// Socket wakeup ordering (sock_def_readable).
				k.SmpMB(pb)
				k.SyscallExit(pb, rQ, 3200)
				if acks {
					// Receive the acknowledgement (its own syscall).
					k.SyscallEnter(pb, rQ, 3328)
					k.ReadOnce(pb, rVal, rAck, 0)
					k.SyscallExit(pb, rQ, 3328)
				}
				// Window: wait while head - tail >= window (the waiting
				// itself is scheduler code, plain loads).
				pb.Label("win")
				pb.Load(rTmp, rQ, 0)
				pb.Load(rTmp2, rQ, 8)
				pb.Sub(rTmp, rTmp, rTmp2)
				pb.CmpImm(rTmp, window)
				pb.Bge("win")
				pb.AddImm(rIter, rIter, 1)
				pb.B("send")

				// Consumer: poll the receive queue, dequeue under the
				// lock, run the rcu-dereferenced socket filter, copy and
				// checksum the payload, run protocol processing, ack.
				cb := arch.NewBuilder()
				cb.MovImm(rIter, 0)
				cb.MovImm(rVal, 0x9876)
				cb.Label("recv")
				// Wait for data: the polling itself is scheduler code
				// (plain loads); the queue recheck before dequeue is the
				// READ_ONCE the receive path really performs.
				cb.Label("poll")
				cb.Load(rTmp, rQ, 0)
				cb.Load(rTmp2, rQ, 8)
				cb.Cmp(rTmp, rTmp2)
				cb.Beq("poll")
				// recv() enters the kernel.
				k.SyscallEnter(cb, rQ, 3264)
				k.ReadOnce(cb, rTmp, rQ, 0)
				// skb_dequeue: lock, unlink, unlock.
				k.SpinLock(cb, rQ, lockOffset)
				cb.Load(rTmp2, rQ, 8) // tail
				cb.MovImm(rTmp, ringMask)
				cb.And(rTmp, rTmp2, rTmp)
				cb.Lsl(rTmp, rTmp, 3)
				cb.Add(rTmp, rQ, rTmp)
				cb.Load(rVal, rTmp, 16) // slot -> packet index
				cb.AddImm(rTmp2, rTmp2, 1)
				cb.Store(rTmp2, rQ, 8)
				k.SpinUnlock(cb, rQ, lockOffset)
				// sk_filter: rcu_dereference on the packet path is what
				// makes netperf rbd-sensitive (Figure 9).
				k.RCUDereference(cb, rTmp, rQ, filterAddr-qBase)
				// Payload checksum.
				cb.MovImm(rTmp, ringMask)
				cb.And(rTmp, rVal, rTmp)
				cb.Lsl(rTmp, rTmp, 6)
				cb.Add(rTmp, rPay, rTmp)
				cb.MovImm(rSum, 0)
				for w := int64(0); w < payStride; w += 2 {
					cb.Load(rTmp2, rTmp, w)
					cb.Add(rSum, rSum, rTmp2)
				}
				// Protocol processing (header parsing, checksums).
				cb.Mov(rVal, rSum)
				emitCompute(cb, 20)
				k.SyscallExit(cb, rQ, 3264)
				if acks {
					// Send the acknowledgement (its own syscall).
					k.SyscallEnter(cb, rQ, 3392)
					cb.AddImm(rIter, rIter, 1)
					k.WriteOnce(cb, rIter, rAck, 0)
					// Wake the sender.
					k.SmpMB(cb)
					emitCompute(cb, 20) // ack-path bookkeeping
					k.SyscallExit(cb, rQ, 3392)
				}
				cb.Work(1)
				cb.B("recv")

				prod, cons := 2*pair, 2*pair+1
				for _, cfg := range []struct {
					core int
					b    *arch.Builder
				}{{prod, pb}, {cons, cb}} {
					prog, err := cfg.b.Build()
					if err != nil {
						return err
					}
					ctx.M.SetReg(cfg.core, rBase, 0)
					ctx.M.SetReg(cfg.core, rQ, qBase)
					ctx.M.SetReg(cfg.core, rPay, payBase)
					ctx.M.SetReg(cfg.core, rAck, ackAddr)
					setSP(ctx, cfg.core)
					if err := ctx.M.LoadProgram(cfg.core, prog); err != nil {
						return err
					}
				}
			}
			return nil
		},
	}
}

// Ebizzy models the webserver-like allocator stress: each thread grabs the
// mmap lock, carves a chunk, touches it, and searches it; RCU-guarded
// metadata walks are comparatively rare.  Paper: fourth most sensitive
// overall; fig9 k(rbd)=0.00106±10%; too much variance for Figure 10
// significance.
func Ebizzy() *workload.Benchmark {
	work := workload.Mix{
		Compute:    8,
		PrivStores: 14, // touch the fresh allocation
		PrivLoads:  10, // search it
		ReadOnces:  2,
		WriteOnces: 1, // vm counters
		SpinPairs:  1, // mmap_sem analogue
	}
	rare := workload.Mix{RCUDerefs: 1, AtomicIncs: 1, Syscalls: 1, Compute: 4}
	return &workload.Benchmark{
		Name:       "ebizzy",
		Platform:   workload.KernelPlatform,
		Metric:     workload.Throughput,
		Cores:      4,
		MemWords:   memWords,
		MaxCycles:  220_000,
		NoiseARM:   0.05,
		NoisePOWER: 0.05,
		Build: func(ctx *workload.BuildCtx) error {
			l, err := workload.DefaultLayout(memWords, 4, 1<<11, 1<<8, 8)
			if err != nil {
				return err
			}
			return work.BuildLoopPeriodic(ctx, l, 4, 8, rare)
		},
	}
}

// LmbenchSubtests lists the §4.3 subset of the lmbench suite; the
// benchmark below runs their bodies back to back and, as in the paper,
// reports the aggregate (each body retires one work unit, so throughput is
// the arithmetic aggregate over sub-tests).
var LmbenchSubtests = []string{
	"fcntl", "proc_exec", "proc_fork", "select_100", "sem",
	"sig_catch", "sig_install", "syscall_fstat", "syscall_null",
	"syscall_open", "syscall_read", "syscall_write",
}

// Lmbench models the system-call latency microbenchmarks: tight loops over
// kernel entry/exit with per-test flavour.  Being microbenchmarks they are
// highly macro-sensitive (second overall, Figure 8) and their in-vitro
// cost estimates are the reference points of the §4.3.1 divergence
// analysis.  Paper: fig9 k(rbd)=0.00525±10%.
func Lmbench() *workload.Benchmark {
	return &workload.Benchmark{
		Name:      "lmbench",
		Platform:  workload.KernelPlatform,
		Metric:    workload.Throughput,
		Cores:     1,
		MemWords:  memWords,
		MaxCycles: 220_000,
		NoiseARM:  0.02, NoisePOWER: 0.02,
		Build: func(ctx *workload.BuildCtx) error {
			k := ctx.Kernel
			l, err := workload.DefaultLayout(memWords, 1, 1<<11, 1<<8, 8)
			if err != nil {
				return err
			}
			b := arch.NewBuilder()
			b.MovImm(rVal, 0x777)
			b.Label("suite")
			for i := range LmbenchSubtests {
				// User-side harness work around the call.
				emitCompute(b, 12)
				// Kernel entry: vDSO seqcount read + entry barrier.
				k.SyscallEnter(b, 11, 0)
				// Per-test kernel body flavour.
				switch i % 4 {
				case 0: // fd-table style: RCU dereference of a table slot
					k.RCUDereference(b, rVal, 11, 8)
					emitCompute(b, 4)
				case 1: // fork/exec style: lock a structure, touch it
					k.SpinLock(b, 11, 64)
					b.Load(rTmp, 11, 72)
					b.AddImm(rTmp, rTmp, 1)
					b.Store(rTmp, 11, 72)
					k.SpinUnlock(b, 11, 64)
					emitCompute(b, 8)
				case 2: // signal style: atomic pending mask update
					k.AtomicInc(b, rVal, 11, 128)
					emitCompute(b, 4)
				case 3: // read/write style: copy a small buffer
					for w := int64(0); w < 8; w++ {
						b.Load(rTmp, 11, 192+w)
						b.Store(rTmp, 11, 256+w)
					}
				}
				k.SyscallExit(b, 11, 0)
				b.Work(1)
			}
			b.B("suite")
			prog, err := b.Build()
			if err != nil {
				return err
			}
			l.InitRegs(ctx, 0)
			ctx.M.SetReg(0, 11, l.SharedBase)
			return ctx.M.LoadProgram(0, prog)
		},
	}
}

// OSMTiles models the tile-generation path of the OpenStreetMap stack:
// render workers taking geometry under a shared lock, reading the geo index
// under a seqlock, and doing substantial rendering computation.
// Paper: low-to-mid sensitivity, good stability.
func OSMTiles() *workload.Benchmark {
	work := workload.Mix{
		Compute:    64,
		PrivLoads:  28,
		PrivStores: 6,
		ReadOnces:  1,
		SeqReads:   1,
		SpinPairs:  1,
	}
	rare := workload.Mix{RCUDerefs: 1, Compute: 8}
	return &workload.Benchmark{
		Name:       "osm_tiles",
		Platform:   workload.KernelPlatform,
		Metric:     workload.Throughput,
		Cores:      4,
		MemWords:   memWords,
		MaxCycles:  260_000,
		NoiseARM:   0.02,
		NoisePOWER: 0.02,
		Build: func(ctx *workload.BuildCtx) error {
			l, err := workload.DefaultLayout(memWords, 4, 1<<11, 1<<8, 8)
			if err != nil {
				return err
			}
			return work.BuildLoopPeriodic(ctx, l, 4, 5, rare)
		},
	}
}

// osmStack builds the request-serving stack: a client core pushes requests
// through an skb-style ring at a fixed pace; three server cores pop, do
// substantial rendering work, and complete.  Response time is measured
// from the completion stream.  Requests are long (thousands of cycles), so
// the per-request barrier-macro work is a tiny fraction — the paper finds
// osm_stack nearly insensitive to rbd (fig9 k=0.00019±10%) yet still
// showing a small, statistically significant drop under the heavier
// Figure 10 strategies.
func osmStack(name string, metric workload.Metric) *workload.Benchmark {
	return &workload.Benchmark{
		Name:       name,
		Platform:   workload.KernelPlatform,
		Metric:     metric,
		Cores:      4,
		MemWords:   memWords,
		MaxCycles:  300_000,
		NoiseARM:   0.03,
		NoisePOWER: 0.03,
		Build: func(ctx *workload.BuildCtx) error {
			k := ctx.Kernel
			qBase := int64(queueArea)

			// Client: paced request generator.
			cb := arch.NewBuilder()
			cb.MovImm(rIter, 0)
			cb.MovImm(rVal, 0x51)
			cb.Label("gen")
			emitComputeLoop(cb, 220, "pace")
			k.QueuePush(cb, rIter, rQ, ringMask)
			cb.AddImm(rIter, rIter, 1)
			// Window so the ring never overruns.
			cb.Label("win")
			cb.Load(rTmp, rQ, 0)
			k.ReadOnce(cb, rTmp2, rQ, 8)
			cb.Sub(rTmp, rTmp, rTmp2)
			cb.CmpImm(rTmp, 24)
			cb.Bge("win")
			cb.B("gen")
			prog, err := cb.Build()
			if err != nil {
				return err
			}
			ctx.M.SetReg(0, rQ, qBase)
			setSP(ctx, 0)
			if err := ctx.M.LoadProgram(0, prog); err != nil {
				return err
			}

			// Servers: pop a request (contended: guard the pop with the
			// queue lock), serve it, retire work.
			for core := 1; core < 4; core++ {
				sb := arch.NewBuilder()
				sb.MovImm(rVal, 0x73)
				sb.Label("serve")
				k.SpinLock(sb, rQ, lockOffset)
				k.QueueTryPop(sb, rVal, rQ, ringMask)
				k.SpinUnlock(sb, rQ, lockOffset)
				sb.CmpImm(rVal, 0)
				sb.Blt("serve") // empty: poll again
				// Service: seqlock-guarded index read + render work.
				k.SeqReadRetry(sb, 11, 0, func(b *arch.Builder) {
					b.Load(rTmp, 11, 8)
				})
				emitComputeLoop(sb, 90, "render")
				sb.Work(1)
				sb.B("serve")
				prog, err := sb.Build()
				if err != nil {
					return err
				}
				ctx.M.SetReg(core, rQ, qBase)
				ctx.M.SetReg(core, 11, 256)
				setSP(ctx, core)
				if err := ctx.M.LoadProgram(core, prog); err != nil {
					return err
				}
			}
			return nil
		},
	}
}

// OSMStackAvg is the tile-server stack measured by mean response time.
func OSMStackAvg() *workload.Benchmark {
	return osmStack("osm_stack (avg)", workload.InvMeanResponse)
}

// OSMStackMax is the same stack measured by worst-case response time,
// which the paper calls out as a key measure for response-time benchmarks.
func OSMStackMax() *workload.Benchmark {
	return osmStack("osm_stack (max)", workload.InvMaxResponse)
}

// KernelCompile models `make -j`: compiler processes that compute heavily
// in user space and enter the kernel occasionally for I/O.
// Paper: low sensitivity, high stability.
func KernelCompile() *workload.Benchmark {
	work := workload.Mix{Compute: 34, PrivLoads: 22, PrivStores: 8}
	rare := workload.Mix{Syscalls: 1, SpinPairs: 1, Compute: 6}
	return &workload.Benchmark{
		Name:       "kernel_compile",
		Platform:   workload.KernelPlatform,
		Metric:     workload.Throughput,
		Cores:      6,
		MemWords:   memWords,
		MaxCycles:  260_000,
		NoiseARM:   0.015,
		NoisePOWER: 0.015,
		Build: func(ctx *workload.BuildCtx) error {
			l, err := workload.DefaultLayout(memWords, 6, 1<<10, 1<<8, 8)
			if err != nil {
				return err
			}
			return work.BuildLoopPeriodic(ctx, l, 6, 6, rare)
		},
	}
}

// jvmOnKernel builds the re-hosted JVM benchmarks of §4.3: the JVM
// coordinates its own concurrency in user space, so kernel interactions are
// rare (futex-less locking, occasional time and I/O syscalls).
func jvmOnKernel(name string, userWork workload.Mix, period int, rare workload.Mix, noise float64) *workload.Benchmark {
	return &workload.Benchmark{
		Name:       name,
		Platform:   workload.KernelPlatform,
		Metric:     workload.Throughput,
		Cores:      4,
		MemWords:   memWords,
		MaxCycles:  260_000,
		NoiseARM:   noise,
		NoisePOWER: noise,
		Build: func(ctx *workload.BuildCtx) error {
			l, err := workload.DefaultLayout(memWords, 4, 1<<11, 1<<8, 8)
			if err != nil {
				return err
			}
			return userWork.BuildLoopPeriodic(ctx, l, 4, period, rare)
		},
	}
}

// H2Kernel re-hosts h2: almost completely insensitive to the kernel macros
// (Figure 8, least sensitive).
func H2Kernel() *workload.Benchmark {
	return jvmOnKernel("h2",
		workload.Mix{Compute: 24, PrivLoads: 16, PrivStores: 6},
		11, workload.Mix{Syscalls: 1}, 0.02)
}

// SparkKernel re-hosts spark: second least sensitive.
func SparkKernel() *workload.Benchmark {
	return jvmOnKernel("spark",
		workload.Mix{Compute: 18, PrivLoads: 10, PrivStores: 5, SharedLoads: 2},
		9, workload.Mix{Syscalls: 1}, 0.02)
}

// XalanKernel re-hosts xalan: the document pipeline polls the kernel more
// (I/O-driven work distribution), giving it a mid-table kernel sensitivity
// (5th in Figure 8) — and, curiously, a small *speed-up* when dmb ishld
// instructions are added to its read paths (Figure 10).
// Paper: fig9 k(rbd)=0.00038±10%.
func XalanKernel() *workload.Benchmark {
	return jvmOnKernel("xalan",
		workload.Mix{Compute: 14, PrivLoads: 8, PrivStores: 4, ReadOnces: 1},
		8, workload.Mix{Syscalls: 1, SpinPairs: 1, Compute: 4}, 0.04)
}

// Suite returns the eleven kernel benchmarks in Figure 8's order.
func Suite() []*workload.Benchmark {
	return []*workload.Benchmark{
		NetperfTCP(), Lmbench(), NetperfUDP(), Ebizzy(), XalanKernel(),
		OSMStackAvg(), OSMStackMax(), OSMTiles(), KernelCompile(),
		SparkKernel(), H2Kernel(),
	}
}

// RBDSix returns the six benchmarks of Figures 9 and 10 in the paper's
// panel order: ebizzy, xalan, netperf_udp, osm (avg), lmbench, netperf_tcp.
func RBDSix() []*workload.Benchmark {
	return []*workload.Benchmark{
		Ebizzy(), XalanKernel(), NetperfUDP(), OSMStackAvg(), Lmbench(), NetperfTCP(),
	}
}

// ByName returns the named benchmark from the suite.
func ByName(name string) (*workload.Benchmark, error) {
	for _, b := range Suite() {
		if b.Name == name {
			return b, nil
		}
	}
	return nil, fmt.Errorf("linuxbench: unknown benchmark %q", name)
}
