package workload

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/platform/jvm"
	"repro/internal/platform/kernel"
	"repro/internal/sim"
)

func TestDefaultLayoutValidation(t *testing.T) {
	if _, err := DefaultLayout(1<<15, 4, 1<<11, 1<<9, 16); err != nil {
		t.Fatalf("valid layout rejected: %v", err)
	}
	if _, err := DefaultLayout(1024, 4, 1<<11, 1<<9, 16); err == nil {
		t.Error("oversized layout accepted")
	}
	if _, err := DefaultLayout(1<<15, 4, 1000, 1<<9, 16); err == nil {
		t.Error("non-power-of-two private size accepted")
	}
}

func TestLayoutRegionsDisjoint(t *testing.T) {
	l, err := DefaultLayout(1<<15, 8, 1<<11, 1<<9, 16)
	if err != nil {
		t.Fatal(err)
	}
	type region struct {
		name   string
		lo, hi int64
	}
	regions := []region{
		{"shared", l.SharedBase, l.SharedBase + l.SharedWords},
		{"locks", l.LockBase, l.LockBase + l.LockStripes*16},
		{"queue", l.QueueBase, l.QueueBase + 4096},
		{"priv", l.PrivBase, l.PrivBase + 8*l.PrivWords},
		{"stacks", l.StackBase, l.StackBase + 8*256},
	}
	for i := 0; i < len(regions); i++ {
		for j := i + 1; j < len(regions); j++ {
			a, b := regions[i], regions[j]
			if a.lo < b.hi && b.lo < a.hi {
				t.Errorf("regions %s and %s overlap: [%d,%d) vs [%d,%d)",
					a.name, b.name, a.lo, a.hi, b.lo, b.hi)
			}
		}
	}
}

// TestMixEmitsEveryOp drives every mix field through a one-iteration
// build on both platforms and checks the machine runs it.
func TestMixEmitsEveryOp(t *testing.T) {
	jvmMix := Mix{
		Compute: 1, PrivLoads: 1, PrivStores: 1, SharedLoads: 1,
		VolatileLoads: 1, VolatileStores: 1, Publishes: 1, CardMarks: 1,
		AtomicAdds: 1, LockPairs: 1, FullFences: 1, LoadFences: 1,
	}
	kernelMix := Mix{
		Compute: 1, PrivLoads: 1, PrivStores: 1,
		ReadOnces: 1, WriteOnces: 1, RCUDerefs: 1, RCUAssigns: 1,
		SpinPairs: 1, AtomicIncs: 1, Syscalls: 1,
		SeqReads: 1, SeqWrites: 1, MBs: 1, MandatoryMB: 1,
	}
	for name, prof := range arch.Profiles() {
		for _, tc := range []struct {
			platform Platform
			mix      Mix
		}{{JVMPlatform, jvmMix}, {KernelPlatform, kernelMix}} {
			m, err := sim.New(prof, sim.Config{Cores: 2, MemWords: 1 << 15, Seed: 7})
			if err != nil {
				t.Fatal(err)
			}
			ctx := &BuildCtx{M: m, Prof: prof}
			if tc.platform == JVMPlatform {
				ctx.JVM = jvm.New(jvm.Config{Prof: prof, Strategy: jvm.JDK8()})
			} else {
				ctx.Kernel = kernel.New(kernel.Config{Prof: prof, Strategy: kernel.Default()})
			}
			s := uint64(3)
			ctx.Rand = func() uint64 { s = s*2862933555777941757 + 3037000493; return s }
			l, err := DefaultLayout(1<<15, 2, 1<<10, 1<<8, 8)
			if err != nil {
				t.Fatal(err)
			}
			if err := tc.mix.BuildLoop(ctx, l, 2); err != nil {
				t.Fatalf("%s platform %d: %v", name, tc.platform, err)
			}
			res, err := m.Run(120_000)
			if err != nil {
				t.Fatalf("%s platform %d: %v", name, tc.platform, err)
			}
			if res.TotalWork == 0 {
				t.Errorf("%s platform %d: no work retired", name, tc.platform)
			}
		}
	}
}

// TestPeriodicLoopRatio checks BuildLoopPeriodic interleaves work and rare
// iterations at the requested period (via code-path counters).
func TestPeriodicLoopRatio(t *testing.T) {
	prof := arch.ARMv8()
	m, err := sim.New(prof, sim.Config{Cores: 1, MemWords: 1 << 15, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ctx := &BuildCtx{M: m, Prof: prof,
		Kernel: kernel.New(kernel.Config{Prof: prof, Strategy: kernel.Default()})}
	s := uint64(9)
	ctx.Rand = func() uint64 { s = s*2862933555777941757 + 3037000493; return s }
	l, err := DefaultLayout(1<<15, 1, 1<<10, 1<<8, 8)
	if err != nil {
		t.Fatal(err)
	}
	work := Mix{Compute: 2}
	rare := Mix{MBs: 1}
	if err := work.BuildLoopPeriodic(ctx, l, 1, 7, rare); err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(100_000)
	if err != nil {
		t.Fatal(err)
	}
	// Work per smp_mb retirement should be period+1 = 8.
	mbs := res.SiteCounts[kernel.PathSmpMB]
	if mbs == 0 {
		t.Fatal("no smp_mb retirements recorded")
	}
	ratio := float64(res.TotalWork) / float64(mbs)
	if ratio < 7 || ratio > 9.5 {
		t.Errorf("work per smp_mb = %.2f, want ~8", ratio)
	}
}

// TestEnvHashVariesNoise checks decorrelation: the same seed under two
// different injected environments must produce different noise draws.
func TestEnvHashVariesNoise(t *testing.T) {
	prof := arch.ARMv8()
	bench := &Benchmark{
		Name:     "noisy",
		Platform: JVMPlatform,
		Metric:   Throughput,
		Cores:    1,
		NoiseARM: 0.5,
		Build: func(ctx *BuildCtx) error {
			l, err := DefaultLayout(1<<15, 1, 1<<10, 1<<8, 8)
			if err != nil {
				return err
			}
			return Mix{Compute: 4}.BuildLoop(ctx, l, 1)
		},
	}
	envA := DefaultEnv(prof)
	envB := DefaultEnv(prof).NopBase([]arch.PathID{jvm.PathAnyBarrier})
	a, err := Run(bench, envA, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(bench, envB, 5)
	if err != nil {
		t.Fatal(err)
	}
	// With 50% noise and decorrelated streams, identical values would be
	// a (vanishingly unlikely) bug.
	reldiff := (a - b) / a
	if reldiff < 0.001 && reldiff > -0.001 {
		t.Errorf("noise identical across environments: %v vs %v", a, b)
	}
}
