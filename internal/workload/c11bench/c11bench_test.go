package c11bench

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/platform/c11"
	"repro/internal/workload"
)

// TestBenchmarksRun runs the stack and counter benchmarks once per profile
// and checks they produce work.
func TestBenchmarksRun(t *testing.T) {
	benches := []*workload.Benchmark{
		Stack("stack-ra", c11.ReleaseAcquire()),
		Stack("stack-sc", c11.AllSeqCst()),
		Counter("counter-relaxed", c11.Relaxed),
		Counter("counter-seqcst", c11.SeqCst),
	}
	for name, prof := range arch.Profiles() {
		for _, b := range benches {
			perf, err := workload.Run(b, workload.DefaultEnv(prof), 3)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, b.Name, err)
			}
			if perf <= 0 {
				t.Errorf("%s/%s: non-positive performance", name, b.Name)
			}
		}
	}
}

// TestSeqCstCostsThroughput encodes the ext-c11 headline: the
// all-seq_cst stack is slower than the release/acquire stack, massively so
// on the non-multi-copy-atomic machine.
func TestSeqCstCostsThroughput(t *testing.T) {
	for name, prof := range arch.Profiles() {
		env := workload.DefaultEnv(prof)
		ra, err := workload.Measure(Stack("stack", c11.ReleaseAcquire()), env, 3, 5)
		if err != nil {
			t.Fatal(err)
		}
		sc, err := workload.Measure(Stack("stack", c11.AllSeqCst()), env, 3, 5)
		if err != nil {
			t.Fatal(err)
		}
		if sc.GeoMean >= ra.GeoMean {
			t.Errorf("%s: seq_cst stack (%.4f) not slower than release/acquire (%.4f)",
				name, sc.GeoMean, ra.GeoMean)
		}
		if prof.Flavor == arch.NonMCA && sc.GeoMean > 0.6*ra.GeoMean {
			t.Errorf("%s: seq_cst premium too small (%.2fx); hwsync-per-access should dominate",
				name, sc.GeoMean/ra.GeoMean)
		}
	}
}

// TestWrongPlatformRejected checks the build guards.
func TestWrongPlatformRejected(t *testing.T) {
	b := Stack("stack", c11.ReleaseAcquire())
	b.Platform = workload.JVMPlatform
	if _, err := workload.Run(b, workload.DefaultEnv(arch.ARMv8()), 1); err == nil {
		t.Error("stack accepted a non-C11 platform")
	}
}
