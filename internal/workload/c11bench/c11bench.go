// Package c11bench provides benchmarks over the C11 atomics platform: the
// lock-free structures the paper's introduction motivates ("a lock-free
// stack or queue"), used by the ext-c11 experiment to price memory_order
// decisions the way the paper prices JVM and kernel fencing strategies.
package c11bench

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/platform/c11"
	"repro/internal/workload"
)

// Memory map (word addresses).
const (
	headAddr  = int64(0)
	countAddr = int64(64) // seq_cst side counter (statistics shape)
	arenaSize = int64(1 << 12)
	arenaBase = int64(1024)
	memWords  = 1 << 15
)

// Stack returns a Treiber-stack throughput benchmark: half the cores push
// nodes (allocating from private arenas, wrapping — nodes are recycled
// only after the arena laps, keeping ABA improbable at benchmark
// time-scales), half pop; a pop that returns a node retires one work unit.
// The orders are the benchmark's fencing strategy.
func Stack(name string, orders c11.StackOrders) *workload.Benchmark {
	const cores = 4
	return &workload.Benchmark{
		Name:      name,
		Platform:  workload.C11Platform,
		Metric:    workload.Throughput,
		Cores:     cores,
		MemWords:  memWords,
		MaxCycles: 200_000,
		NoiseARM:  0.02, NoisePOWER: 0.02,
		Build: func(ctx *workload.BuildCtx) error {
			c := ctx.C11
			if c == nil {
				return fmt.Errorf("c11bench: benchmark %s needs the C11 platform", name)
			}
			for core := 0; core < cores/2; core++ {
				// Pusher: cycle through the arena; write the payload,
				// push, occasionally bump a shared seq_cst statistic.
				b := arch.NewBuilder()
				b.MovImm(2, 0) // i
				b.Label("push")
				b.MovImm(3, (arenaSize/2)-1)
				b.And(3, 2, 3)
				b.Lsl(3, 3, 1)
				b.AddImm(3, 3, arenaBase+int64(core)*arenaSize)
				b.Add(4, 2, 2) // payload
				b.Store(4, 3, 0)
				c.StackPush(b, orders, 3, 1, 5, 6)
				b.AddImm(2, 2, 1)
				b.Work(1)
				b.B("push")
				prog, err := b.Build()
				if err != nil {
					return err
				}
				ctx.M.SetReg(core, 1, headAddr)
				ctx.M.SetReg(core, arch.SP, int64(memWords-256*(core+1)-8))
				if err := ctx.M.LoadProgram(core, prog); err != nil {
					return err
				}
			}
			for q := 0; q < cores/2; q++ {
				core := cores/2 + q
				b := arch.NewBuilder()
				b.Label("pop")
				c.StackPop(b, orders, 3, 4, 1, 5, 6)
				b.CmpImm(3, 0)
				b.Beq("pop")
				b.Work(1)
				b.B("pop")
				prog, err := b.Build()
				if err != nil {
					return err
				}
				ctx.M.SetReg(core, 1, headAddr)
				ctx.M.SetReg(core, arch.SP, int64(memWords-256*(core+1)-8))
				if err := ctx.M.LoadProgram(core, prog); err != nil {
					return err
				}
			}
			return nil
		},
	}
}

// Counter returns a shared fetch_add counter benchmark at the given order
// — the minimal "how much does seq_cst cost over relaxed on an RMW"
// instrument.
func Counter(name string, order c11.Order) *workload.Benchmark {
	const cores = 4
	return &workload.Benchmark{
		Name:      name,
		Platform:  workload.C11Platform,
		Metric:    workload.Throughput,
		Cores:     cores,
		MemWords:  memWords,
		MaxCycles: 150_000,
		NoiseARM:  0.02, NoisePOWER: 0.02,
		Build: func(ctx *workload.BuildCtx) error {
			c := ctx.C11
			if c == nil {
				return fmt.Errorf("c11bench: benchmark %s needs the C11 platform", name)
			}
			for core := 0; core < cores; core++ {
				b := arch.NewBuilder()
				b.Label("loop")
				c.FetchAdd(b, order, 4, 1, 0, 1)
				// A little private work between increments.
				for i := 0; i < 6; i++ {
					b.Lsl(5, 4, 13)
					b.Eor(4, 4, 5)
				}
				b.Work(1)
				b.B("loop")
				prog, err := b.Build()
				if err != nil {
					return err
				}
				ctx.M.SetReg(core, 1, countAddr)
				ctx.M.SetReg(core, arch.SP, int64(memWords-256*(core+1)-8))
				if err := ctx.M.LoadProgram(core, prog); err != nil {
					return err
				}
			}
			return nil
		},
	}
}
