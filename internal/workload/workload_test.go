package workload_test

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/platform/jvm"
	"repro/internal/platform/kernel"
	"repro/internal/workload"
	"repro/internal/workload/javabench"
	"repro/internal/workload/linuxbench"
)

// allPathsJVM instruments the composite-barrier path (Figure 5 style).
func jvmAllPaths() []arch.PathID { return []arch.PathID{jvm.PathAnyBarrier} }

// TestAllBenchmarksRun runs every benchmark in both suites once per
// profile and checks that it produces a positive performance value.
func TestAllBenchmarksRun(t *testing.T) {
	suites := append(javabench.Suite(), linuxbench.Suite()...)
	for _, prof := range arch.Profiles() {
		prof := prof
		for _, b := range suites {
			b := b
			t.Run(prof.Name+"/"+b.Name, func(t *testing.T) {
				t.Parallel()
				env := workload.DefaultEnv(prof)
				perf, err := workload.Run(b, env, 42)
				if err != nil {
					t.Fatalf("%v", err)
				}
				if perf <= 0 {
					t.Fatalf("non-positive performance %v", perf)
				}
			})
		}
	}
}

// TestNopBaseCloseToPristine checks that adding nop padding costs only a
// few percent, as in the paper (§4.2: mean 1.9% on ARM; §4.3: mean 1.9%).
func TestNopBaseCloseToPristine(t *testing.T) {
	prof := arch.ARMv8()
	b := javabench.Spark()
	clean, err := workload.Measure(b, workload.DefaultEnv(prof), 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	padded, err := workload.Measure(b, workload.DefaultEnv(prof).NopBase(jvmAllPaths()), 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	rel := padded.GeoMean / clean.GeoMean
	if rel < 0.85 || rel > 1.05 {
		t.Errorf("nop padding changed performance by %.1f%%, want within a few percent", 100*(rel-1))
	}
	t.Logf("nop padding relative performance: %.4f", rel)
}

// TestCostInjectionSlowsDown checks the fundamental lever: a large cost
// function injected into the barrier paths must reduce performance
// markedly, and more cost must slow things further.
func TestCostInjectionSlowsDown(t *testing.T) {
	for _, prof := range arch.Profiles() {
		base, err := workload.Measure(javabench.Spark(), workload.DefaultEnv(prof).NopBase(jvmAllPaths()), 3, 11)
		if err != nil {
			t.Fatal(err)
		}
		small, err := workload.Measure(javabench.Spark(),
			workload.DefaultEnv(prof).WithCost(jvmAllPaths(), jvmAllPaths(), 32), 3, 11)
		if err != nil {
			t.Fatal(err)
		}
		big, err := workload.Measure(javabench.Spark(),
			workload.DefaultEnv(prof).WithCost(jvmAllPaths(), jvmAllPaths(), 512), 3, 11)
		if err != nil {
			t.Fatal(err)
		}
		if !(big.GeoMean < small.GeoMean && small.GeoMean < base.GeoMean) {
			t.Errorf("%s: expected monotone slowdown, got base=%.4f small=%.4f big=%.4f",
				prof.Name, base.GeoMean, small.GeoMean, big.GeoMean)
		}
	}
}

// TestKernelInjection does the same for a kernel macro path.
func TestKernelInjection(t *testing.T) {
	prof := arch.ARMv8()
	paths := kernel.Paths
	b := linuxbench.NetperfUDP()
	base, err := workload.Measure(b, workload.DefaultEnv(prof).NopBase(paths), 3, 13)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := workload.Measure(b,
		workload.DefaultEnv(prof).WithCost([]arch.PathID{kernel.PathReadBarrierDepends}, paths, 512), 3, 13)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.GeoMean >= base.GeoMean {
		t.Errorf("rbd cost did not slow netperf_udp: base=%.4f loaded=%.4f", base.GeoMean, loaded.GeoMean)
	}
}

// TestResponseMetric checks the osm_stack response-time measurement
// produces sane, distinct avg and max figures.
func TestResponseMetric(t *testing.T) {
	prof := arch.ARMv8()
	env := workload.DefaultEnv(prof)
	avg, err := workload.Run(linuxbench.OSMStackAvg(), env, 5)
	if err != nil {
		t.Fatal(err)
	}
	max, err := workload.Run(linuxbench.OSMStackMax(), env, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !(avg > 0 && max > 0 && max < avg) {
		t.Errorf("inverse worst-case response (%v) should be below inverse mean (%v)", max, avg)
	}
}

// TestSeedSpread checks repeated samples differ (the spread that feeds the
// confidence intervals).
func TestSeedSpread(t *testing.T) {
	prof := arch.POWER7()
	xs, err := workload.Samples(javabench.Xalan(), workload.DefaultEnv(prof), 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	distinct := map[float64]bool{}
	for _, x := range xs {
		distinct[x] = true
	}
	if len(distinct) < 2 {
		t.Errorf("all samples identical: %v", xs)
	}
}
