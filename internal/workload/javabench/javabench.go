// Package javabench provides the JVM benchmark suite of §4.2: synthetic
// stand-ins for the concurrency-relevant DaCapo 9.12 benchmarks (per
// Kalibera et al.) plus the Apache Spark GraphX PageRank workload.
//
// Each stand-in runs a periodic mix loop: several iterations of plain
// application work (computation and cache traffic) followed by one
// iteration containing the synchronization operations.  The period and the
// sync-op mix are the calibration dials that reproduce the shape of the
// paper's measured code-path sensitivities (Figures 5 and 6): spark is the
// most sensitive and stable benchmark on both architectures with StoreStore
// dominating its elemental profile; xalan is second on ARM but unstable on
// POWER; lusearch, tomcat and tradebeans are unstable on ARM; sunflow is
// the least sensitive.  The paper's k values appear in the comments; this
// reproduction's measured values are recorded in EXPERIMENTS.md.
package javabench

import (
	"fmt"

	"repro/internal/workload"
)

// mk assembles a periodic mix-loop benchmark: period iterations of work
// followed by one iteration of sync.
func mk(name string, cores, period int, work, sync workload.Mix, noiseARM, noisePOWER float64) *workload.Benchmark {
	return &workload.Benchmark{
		Name:       name,
		Platform:   workload.JVMPlatform,
		Metric:     workload.Throughput,
		Cores:      cores,
		MemWords:   1 << 15,
		MaxCycles:  260_000,
		NoiseARM:   noiseARM,
		NoisePOWER: noisePOWER,
		Build: func(ctx *workload.BuildCtx) error {
			l, err := workload.DefaultLayout(1<<15, cores, 1<<11, 1<<9, 16)
			if err != nil {
				return err
			}
			return work.BuildLoopPeriodic(ctx, l, cores, period, sync)
		},
	}
}

// Spark models the GraphX PageRank job on the LiveJournal graph (§4.2): a
// multi-threaded map-reduce engine whose superstep shuffle publishes large
// numbers of freshly built objects (rank messages) and coordinates through
// volatile flags and atomic accumulators.  Publication pressure is what
// makes StoreStore dominate its Figure 6 profile.
// Paper: fig5 k(arm)=0.00870±6%, k(power)=0.01227±7%; fig6 StoreStore
// k=0.00885 (arm) / 0.01333 (power); stable on both.
func Spark() *workload.Benchmark {
	work := workload.Mix{Compute: 14, PrivLoads: 6, PrivStores: 3, SharedLoads: 2}
	sync := workload.Mix{
		Compute:        4,
		VolatileLoads:  1,
		VolatileStores: 1,
		Publishes:      1,
		CardMarks:      3,
		FullFences:     1,
		AtomicAdds:     1,
		LockPairs:      1, // JVM-internal monitors (the TXT5 patch target)
	}
	return mk("spark", 8, 23, work, sync, 0.02, 0.02)
}

// H2 models the in-memory transactional database: lock-guarded B-tree
// lookups and updates with moderate volatile traffic.
// Paper: fig5 k(arm)=0.00339±6%, k(power)=0.00251±4%.
func H2() *workload.Benchmark {
	work := workload.Mix{Compute: 24, PrivLoads: 16, PrivStores: 6, SharedLoads: 2}
	sync := workload.Mix{Compute: 4, VolatileLoads: 1, LockPairs: 1, CardMarks: 1}
	return mk("h2", 4, 13, work, sync, 0.02, 0.02)
}

// Lusearch models the lucene text search: read-dominated index probes with
// little synchronization beyond per-query volatile reads.
// Paper: fig5 k(arm)=0.00213±6%, k(power)=0.00118±5%; unstable on ARM.
func Lusearch() *workload.Benchmark {
	work := workload.Mix{Compute: 30, PrivLoads: 24, PrivStores: 2}
	sync := workload.Mix{Compute: 4, VolatileLoads: 1, CardMarks: 1}
	return mk("lusearch", 4, 10, work, sync, 0.05, 0.02)
}

// Sunflow models the ray tracer: almost pure computation with a rare
// atomic ticket for work distribution; the least sensitive benchmark.
// Paper: fig5 k(arm)=0.00187±6%, k(power)=0.00164±7%.
func Sunflow() *workload.Benchmark {
	work := workload.Mix{Compute: 52, PrivLoads: 16, PrivStores: 4}
	sync := workload.Mix{Compute: 4, CardMarks: 1, AtomicAdds: 1}
	return mk("sunflow", 4, 9, work, sync, 0.025, 0.06)
}

// Tomcat models the servlet container: request loop with session locks and
// volatile connector state; notably unstable on both architectures.
// Paper: fig5 k(arm)=0.00250±3%, k(power)=0.00397±3%.
func Tomcat() *workload.Benchmark {
	work := workload.Mix{Compute: 22, PrivLoads: 14, PrivStores: 6, SharedLoads: 2}
	sync := workload.Mix{Compute: 4, VolatileLoads: 2, VolatileStores: 1, LockPairs: 1}
	return mk("tomcat", 4, 30, work, sync, 0.045, 0.04)
}

// Tradebeans models the EJB transaction processing benchmark: heavier
// locking than tomcat over the same client-server-database shape.
// Paper: fig5 k(arm)=0.00262±7%, k(power)=0.00385±2%; unstable on ARM.
func Tradebeans() *workload.Benchmark {
	work := workload.Mix{Compute: 26, PrivLoads: 14, PrivStores: 6}
	sync := workload.Mix{Compute: 4, VolatileLoads: 2, VolatileStores: 1, LockPairs: 2}
	return mk("tradebeans", 4, 38, work, sync, 0.05, 0.015)
}

// Tradesoap is tradebeans through a SOAP marshalling layer: the same
// synchronization diluted by more per-request computation.
// Paper: fig5 k(arm)=0.00238±4%, k(power)=0.00314±2%.
func Tradesoap() *workload.Benchmark {
	work := workload.Mix{Compute: 38, PrivLoads: 18, PrivStores: 8}
	sync := workload.Mix{Compute: 4, VolatileLoads: 2, VolatileStores: 1, LockPairs: 2}
	return mk("tradesoap", 4, 30, work, sync, 0.03, 0.02)
}

// Xalan models the XML-to-HTML transformer: a work-queue of documents with
// heavy object churn (publication + card marks).  Second most sensitive on
// ARM; on POWER it is unstable to the point of not being a reasonable
// benchmark (§4.2.1 attributes this to SMT).
// Paper: fig5 k(arm)=0.00606±3%, k(power)=0.00152±14%.
func Xalan() *workload.Benchmark {
	work := workload.Mix{Compute: 16, PrivLoads: 10, PrivStores: 6, SharedLoads: 3}
	sync := workload.Mix{
		Compute:        4,
		VolatileLoads:  1,
		VolatileStores: 1,
		Publishes:      1,
		CardMarks:      2,
	}
	return mk("xalan", 4, 12, work, sync, 0.025, 0.22)
}

// Suite returns the eight benchmarks of §4.2 in the paper's presentation
// order (Figure 5's panels).
func Suite() []*workload.Benchmark {
	return []*workload.Benchmark{
		H2(), Lusearch(), Spark(), Sunflow(),
		Tomcat(), Tradebeans(), Tradesoap(), Xalan(),
	}
}

// ByName returns the named benchmark from the suite.
func ByName(name string) (*workload.Benchmark, error) {
	for _, b := range Suite() {
		if b.Name == name {
			return b, nil
		}
	}
	return nil, fmt.Errorf("javabench: unknown benchmark %q", name)
}
