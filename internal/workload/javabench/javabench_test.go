package javabench

import (
	"testing"

	"repro/internal/workload"
)

// TestSuiteShape checks the §4.2 suite inventory against the paper's
// benchmark list (the Kalibera-selected concurrent DaCapo subset + spark).
func TestSuiteShape(t *testing.T) {
	suite := Suite()
	want := []string{"h2", "lusearch", "spark", "sunflow", "tomcat", "tradebeans", "tradesoap", "xalan"}
	if len(suite) != len(want) {
		t.Fatalf("suite has %d benchmarks, want %d", len(suite), len(want))
	}
	for i, name := range want {
		b := suite[i]
		if b.Name != name {
			t.Errorf("suite[%d] = %q, want %q", i, b.Name, name)
		}
		if b.Platform != workload.JVMPlatform {
			t.Errorf("%s: wrong platform", name)
		}
		if b.Build == nil {
			t.Errorf("%s: no build function", name)
		}
		if b.Cores < 4 {
			t.Errorf("%s: %d cores", name, b.Cores)
		}
	}
	// Spark runs the full 8 cores, as the paper's GC configuration implies.
	if spark, _ := ByName("spark"); spark.Cores != 8 {
		t.Errorf("spark cores = %d, want 8", spark.Cores)
	}
}

// TestInstabilityModel checks the per-architecture instability assignments
// the paper reports: xalan unstable on POWER; lusearch, tomcat and
// tradebeans unstable on ARM; spark stable on both.
func TestInstabilityModel(t *testing.T) {
	get := func(name string) *workload.Benchmark {
		b, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	if x := get("xalan"); x.NoisePOWER <= x.NoiseARM {
		t.Error("xalan should be noisier on POWER (§4.2.1 SMT instability)")
	}
	for _, name := range []string{"lusearch", "tomcat", "tradebeans"} {
		if b := get(name); b.NoiseARM < 0.04 {
			t.Errorf("%s should carry ARM instability, has %v", name, b.NoiseARM)
		}
	}
	if s := get("spark"); s.NoiseARM > 0.03 || s.NoisePOWER > 0.03 {
		t.Error("spark should be stable on both architectures")
	}
}

func TestByNameErrors(t *testing.T) {
	if _, err := ByName("h2"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("dacapo-avrora"); err == nil {
		t.Error("unknown name accepted")
	}
}
