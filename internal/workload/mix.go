package workload

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/platform/c11"
	"repro/internal/platform/jvm"
)

// This file provides the generic "mix loop" program builder both benchmark
// suites are assembled from.  A thread runs an infinite loop; each
// iteration performs a configurable mixture of private computation, cache
// traffic and platform operations, then retires one unit of work.  The mix
// parameters are the calibration dials that give each synthetic benchmark
// the operation frequencies (and therefore the code-path sensitivities) of
// the application it stands in for; see DESIGN.md §2 and the per-benchmark
// comments in the suites.

// Register conventions for mix-loop programs.  r9 and SP are reserved for
// injected cost functions, r21-r23 for platform scratch.
const (
	regBase     arch.Reg = 1 // always 0
	regRand     arch.Reg = 3 // xorshift state
	regTmp      arch.Reg = 4 // address/value temps
	regTmp2     arch.Reg = 5
	regTmp3     arch.Reg = 6
	regVal      arch.Reg = 7
	regPriv     arch.Reg = 10 // private region base
	regShared   arch.Reg = 11 // shared region base
	regQueue    arch.Reg = 12 // queue base
	regLocks    arch.Reg = 13 // lock-stripe region base
	regMaskPriv arch.Reg = 14
	regMaskShr  arch.Reg = 15
	regMaskLock arch.Reg = 16
)

// Layout fixes where each memory region lives for a benchmark machine.
type Layout struct {
	SharedBase  int64
	SharedWords int64 // power of two
	LockBase    int64
	LockStripes int64 // power of two; stride 16 words
	QueueBase   int64
	PrivBase    int64 // per-core regions of PrivWords each
	PrivWords   int64 // power of two
	StackBase   int64 // per-core stacks grow down from StackBase+256*(core+1)
}

// DefaultLayout carves the standard regions out of memWords.
func DefaultLayout(memWords int, cores int, privWords, sharedWords, lockStripes int64) (Layout, error) {
	l := Layout{
		SharedBase:  0,
		SharedWords: sharedWords,
		LockBase:    sharedWords + 64,
		LockStripes: lockStripes,
		QueueBase:   sharedWords + 64 + lockStripes*16 + 64,
	}
	l.PrivBase = l.QueueBase + 4096
	l.PrivWords = privWords
	l.StackBase = l.PrivBase + int64(cores)*privWords + 64
	need := l.StackBase + int64(cores)*256 + 256
	if need > int64(memWords) {
		return Layout{}, fmt.Errorf("workload: layout needs %d words, machine has %d", need, memWords)
	}
	for _, p := range []int64{sharedWords, privWords, lockStripes} {
		if p < 1 || p&(p-1) != 0 {
			return Layout{}, fmt.Errorf("workload: region sizes must be powers of two, got %d", p)
		}
	}
	return l, nil
}

// InitRegs installs the layout's base registers and seeds the xorshift
// state for one core's program.
func (l Layout) InitRegs(ctx *BuildCtx, core int) {
	m := ctx.M
	m.SetReg(core, regBase, 0)
	m.SetReg(core, regPriv, l.PrivBase+int64(core)*l.PrivWords)
	m.SetReg(core, regShared, l.SharedBase)
	m.SetReg(core, regQueue, l.QueueBase)
	m.SetReg(core, regLocks, l.LockBase)
	m.SetReg(core, regMaskPriv, l.PrivWords-1)
	m.SetReg(core, regMaskShr, l.SharedWords-1)
	m.SetReg(core, regMaskLock, l.LockStripes-1)
	m.SetReg(core, regRand, int64(ctx.Rand()|1))
	m.SetReg(core, arch.SP, l.StackBase+int64(core+1)*256-8)
}

// emitXorshift advances the per-thread pseudo-random state in regRand.
func emitXorshift(b *arch.Builder) {
	b.Lsl(regTmp, regRand, 13)
	b.Eor(regRand, regRand, regTmp)
	b.Lsr(regTmp, regRand, 7)
	b.Eor(regRand, regRand, regTmp)
	b.Lsl(regTmp, regRand, 17)
	b.Eor(regRand, regRand, regTmp)
}

// emitPrivAddr leaves a random private-region address in regTmp2.
func emitPrivAddr(b *arch.Builder) {
	emitXorshift(b)
	b.And(regTmp2, regRand, regMaskPriv)
	b.Add(regTmp2, regPriv, regTmp2)
}

// emitSharedAddr leaves a random shared-region address in regTmp2.
func emitSharedAddr(b *arch.Builder) {
	emitXorshift(b)
	b.And(regTmp2, regRand, regMaskShr)
	b.Add(regTmp2, regShared, regTmp2)
}

// emitLockAddr leaves a random lock-stripe address in regTmp3 (stride 16
// words so stripes sit on distinct lines for both profiles).
func emitLockAddr(b *arch.Builder) {
	emitXorshift(b)
	b.And(regTmp3, regRand, regMaskLock)
	b.Lsl(regTmp3, regTmp3, 4)
	b.Add(regTmp3, regLocks, regTmp3)
}

// Mix parameterises one iteration of the generic loop.  Counts are
// per-iteration operation counts.
type Mix struct {
	Compute     int // xorshift rounds of pure ALU work
	PrivLoads   int // random loads from the private working set
	PrivStores  int // random stores to the private working set
	SharedLoads int // plain loads of the shared region (coherence traffic)

	// JVM operations (used when the benchmark's Platform is JVM).
	VolatileLoads  int
	VolatileStores int
	Publishes      int // Release-fenced publication stores
	CardMarks      int // bare StoreStore barriers (GC card marks)
	AtomicAdds     int
	LockPairs      int // lock; small critical section; unlock
	FullFences     int // Unsafe.fullFence-style raw StoreLoad barriers
	LoadFences     int // Unsafe.loadFence-style Acquire barriers

	// Kernel operations (used when Platform is Kernel).
	ReadOnces   int
	WriteOnces  int
	RCUDerefs   int // READ_ONCE + read_barrier_depends
	RCUAssigns  int // smp_wmb + WRITE_ONCE
	SpinPairs   int // spinlock/unlock around a critical section
	AtomicIncs  int
	Syscalls    int // SyscallEnter + tiny body + SyscallExit
	SeqReads    int
	SeqWrites   int
	MBs         int // raw smp_mb invocations
	MandatoryMB int // mb()/rmb()/wmb() triple (driver-style, rare)

	// C11 operations (used when Platform is C11).
	SCLoads     int // memory_order_seq_cst atomic loads of the shared region
	SCStores    int // memory_order_seq_cst atomic stores to the shared region
	RelAcqPairs int // release-store publication followed by an acquire load
	RelaxedOps  int // relaxed atomic load+store pair
	FetchAdds   int // seq_cst fetch_add on a lock stripe
}

// EmitIteration emits one loop iteration of the mix into b, using the
// platform generator from ctx.  It ends with a Work(1) marker.
func (mix Mix) EmitIteration(ctx *BuildCtx, b *arch.Builder) {
	j, k, c := ctx.JVM, ctx.Kernel, ctx.C11

	for i := 0; i < mix.Compute; i++ {
		emitXorshift(b)
	}
	for i := 0; i < mix.PrivLoads; i++ {
		emitPrivAddr(b)
		if j != nil && i%4 == 3 {
			// Every fourth private load sits at a JIT
			// redundant-load-elimination site (the §6 extension).
			j.OptimizableLoad(b, regVal, regTmp2, 0)
		} else {
			b.Load(regVal, regTmp2, 0)
		}
	}
	for i := 0; i < mix.PrivStores; i++ {
		emitPrivAddr(b)
		b.Store(regRand, regTmp2, 0)
	}
	for i := 0; i < mix.SharedLoads; i++ {
		emitSharedAddr(b)
		b.Load(regVal, regTmp2, 0)
	}

	if j != nil {
		for i := 0; i < mix.VolatileLoads; i++ {
			emitSharedAddr(b)
			j.VolatileLoad(b, regVal, regTmp2, 0)
		}
		for i := 0; i < mix.VolatileStores; i++ {
			emitSharedAddr(b)
			j.VolatileStore(b, regRand, regTmp2, 0)
		}
		for i := 0; i < mix.Publishes; i++ {
			// Initialise a private object, then publish a reference
			// into the shared region.
			emitPrivAddr(b)
			b.Store(regRand, regTmp2, 0)
			emitSharedAddr(b)
			j.Publish(b, regTmp2, regTmp2, 0)
		}
		for i := 0; i < mix.CardMarks; i++ {
			emitPrivAddr(b)
			b.Store(regRand, regTmp2, 0)
			j.Barrier(b, jvm.StoreStore)
		}
		for i := 0; i < mix.AtomicAdds; i++ {
			emitLockAddr(b)
			j.AtomicAdd(b, regVal, regTmp3, 8, 1)
		}
		for i := 0; i < mix.LockPairs; i++ {
			emitLockAddr(b)
			j.Lock(b, regTmp3, 0)
			b.Load(regVal, regTmp3, 8)
			b.AddImm(regVal, regVal, 1)
			b.Store(regVal, regTmp3, 8)
			j.Unlock(b, regTmp3, 0)
		}
		for i := 0; i < mix.FullFences; i++ {
			j.Barrier(b, jvm.StoreLoad)
		}
		for i := 0; i < mix.LoadFences; i++ {
			j.Barrier(b, jvm.Acquire)
		}
	}

	if k != nil {
		for i := 0; i < mix.ReadOnces; i++ {
			emitSharedAddr(b)
			k.ReadOnce(b, regVal, regTmp2, 0)
		}
		for i := 0; i < mix.WriteOnces; i++ {
			emitSharedAddr(b)
			k.WriteOnce(b, regRand, regTmp2, 0)
		}
		for i := 0; i < mix.RCUDerefs; i++ {
			emitSharedAddr(b)
			k.RCUDereference(b, regVal, regTmp2, 0)
			// Follow the "pointer": a dependent private read.
			b.And(regVal, regVal, regMaskPriv)
			b.Add(regVal, regPriv, regVal)
			b.Load(regVal, regVal, 0)
		}
		for i := 0; i < mix.RCUAssigns; i++ {
			emitPrivAddr(b)
			b.Store(regRand, regTmp2, 0)
			emitSharedAddr(b)
			k.RCUAssign(b, regRand, regTmp2, 0)
		}
		for i := 0; i < mix.SpinPairs; i++ {
			emitLockAddr(b)
			k.SpinLock(b, regTmp3, 0)
			b.Load(regVal, regTmp3, 8)
			b.AddImm(regVal, regVal, 1)
			b.Store(regVal, regTmp3, 8)
			k.SpinUnlock(b, regTmp3, 0)
		}
		for i := 0; i < mix.AtomicIncs; i++ {
			emitLockAddr(b)
			k.AtomicInc(b, regVal, regTmp3, 8)
		}
		for i := 0; i < mix.Syscalls; i++ {
			emitSharedAddr(b)
			k.SyscallEnter(b, regTmp2, 0)
			emitXorshift(b)
			k.SyscallExit(b, regTmp2, 0)
		}
		for i := 0; i < mix.SeqReads; i++ {
			k.SeqReadRetry(b, regShared, 0, func(b *arch.Builder) {
				b.Load(regVal, regShared, 8)
			})
		}
		for i := 0; i < mix.SeqWrites; i++ {
			k.SeqWriteBegin(b, regShared, 0)
			b.Store(regRand, regShared, 8)
			k.SeqWriteEnd(b, regShared, 0)
		}
		for i := 0; i < mix.MBs; i++ {
			k.SmpMB(b)
		}
		for i := 0; i < mix.MandatoryMB; i++ {
			k.MB(b)
			k.RMB(b)
			k.WMB(b)
		}
	}

	if c != nil {
		for i := 0; i < mix.SCLoads; i++ {
			emitSharedAddr(b)
			c.Load(b, c11.SeqCst, regVal, regTmp2, 0)
		}
		for i := 0; i < mix.SCStores; i++ {
			emitSharedAddr(b)
			c.Store(b, c11.SeqCst, regRand, regTmp2, 0)
		}
		for i := 0; i < mix.RelAcqPairs; i++ {
			// Initialise a private object, publish it with a release
			// store, then re-acquire it.
			emitPrivAddr(b)
			b.Store(regRand, regTmp2, 0)
			emitSharedAddr(b)
			c.Store(b, c11.Release, regRand, regTmp2, 0)
			c.Load(b, c11.Acquire, regVal, regTmp2, 0)
		}
		for i := 0; i < mix.RelaxedOps; i++ {
			emitSharedAddr(b)
			c.Load(b, c11.Relaxed, regVal, regTmp2, 0)
			c.Store(b, c11.Relaxed, regRand, regTmp2, 0)
		}
		for i := 0; i < mix.FetchAdds; i++ {
			emitLockAddr(b)
			c.FetchAdd(b, c11.SeqCst, regVal, regTmp3, 8, 1)
		}
	}

	b.Work(1)
}

// BuildLoopPeriodic installs an infinite loop of period iterations of mix
// followed by one iteration of rare, on every core.  It models workloads
// whose platform interactions are much rarer than their work units (e.g.
// JVM applications that enter the kernel only occasionally).
func (mix Mix) BuildLoopPeriodic(ctx *BuildCtx, l Layout, cores, period int, rare Mix) error {
	if period < 1 {
		period = 1
	}
	for c := 0; c < cores; c++ {
		b := arch.NewBuilder()
		b.Label("mixloop")
		for i := 0; i < period; i++ {
			mix.EmitIteration(ctx, b)
		}
		rare.EmitIteration(ctx, b)
		b.B("mixloop")
		prog, err := b.Build()
		if err != nil {
			return err
		}
		l.InitRegs(ctx, c)
		if err := ctx.M.LoadProgram(c, prog); err != nil {
			return err
		}
	}
	return nil
}

// BuildLoop installs the standard infinite mix loop on every core.
func (mix Mix) BuildLoop(ctx *BuildCtx, l Layout, cores int) error {
	for c := 0; c < cores; c++ {
		b := arch.NewBuilder()
		b.Label("mixloop")
		mix.EmitIteration(ctx, b)
		b.B("mixloop")
		prog, err := b.Build()
		if err != nil {
			return err
		}
		l.InitRegs(ctx, c)
		if err := ctx.M.LoadProgram(c, prog); err != nil {
			return err
		}
	}
	return nil
}
