package sim

import (
	"fmt"
	"io"

	"repro/internal/arch"
)

// TraceEvent describes one retired instruction, in retirement (program)
// order per core.  Traces are the debugging companion to the aggregate
// counters: they show exactly which access satisfied when, which is how
// reordering windows are diagnosed.
type TraceEvent struct {
	Cycle int64 // retirement cycle
	Core  int
	PC    int32
	Instr arch.Instr
	// Val is the instruction's result (loads: value read; stxr: status).
	Val int64
	// Addr is the effective address for memory operations.
	Addr int64
	// SatisfiedAt is the cycle a load's value was read (before Cycle for
	// hits retired behind slower instructions; the gap to program order
	// is the visible reordering).
	SatisfiedAt int64
}

// Tracer receives retirement events.  It runs synchronously inside the
// simulation loop; keep it cheap.
type Tracer func(TraceEvent)

// SetTracer installs a retirement tracer (nil disables tracing).
func (m *Machine) SetTracer(t Tracer) { m.tracer = t }

// WriteTraceTo installs a tracer that renders events as text lines.
func (m *Machine) WriteTraceTo(w io.Writer) {
	m.SetTracer(TraceWriter(w))
}

// TraceWriter returns a Tracer rendering events as text lines, for
// callers that install tracers without holding a Machine (witness
// replays in the exhaustive explorer).
func TraceWriter(w io.Writer) Tracer {
	return func(e TraceEvent) {
		switch {
		case e.Instr.Op.IsLoad():
			fmt.Fprintf(w, "%8d c%d pc=%-3d %-24s addr=%-5d val=%-8d satisfied@%d\n",
				e.Cycle, e.Core, e.PC, e.Instr, e.Addr, e.Val, e.SatisfiedAt)
		case e.Instr.Op.IsStore():
			fmt.Fprintf(w, "%8d c%d pc=%-3d %-24s addr=%-5d val=%-8d (to store buffer)\n",
				e.Cycle, e.Core, e.PC, e.Instr, e.Addr, e.Val)
		default:
			fmt.Fprintf(w, "%8d c%d pc=%-3d %-24s val=%d\n",
				e.Cycle, e.Core, e.PC, e.Instr, e.Val)
		}
	}
}

// emitTrace is called from the retire stage.
func (c *core) emitTrace(now int64, e *wentry) {
	ev := TraceEvent{
		Cycle: now,
		Core:  c.id,
		PC:    e.pc,
		Instr: e.in,
		Val:   e.val,
	}
	if e.in.Op.IsMem() {
		ev.Addr = e.addr
	}
	if e.in.Op.IsLoad() {
		ev.SatisfiedAt = e.readyAt
	}
	c.m.tracer(ev)
}
