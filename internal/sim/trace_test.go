package sim

import (
	"strings"
	"testing"

	"repro/internal/arch"
)

// TestTracerEventsInRetirementOrder checks the tracer reports every retired
// instruction of a core in program order with correct values.
func TestTracerEventsInRetirementOrder(t *testing.T) {
	b := arch.NewBuilder()
	b.MovImm(0, 5)
	b.Store(0, 1, 8)
	b.Load(2, 1, 8)
	b.AddImm(3, 2, 1)
	b.Halt()
	m, err := New(arch.ARMv8(), Config{Cores: 1, MemWords: 256, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var evs []TraceEvent
	m.SetTracer(func(e TraceEvent) { evs = append(evs, e) })
	if err := m.LoadProgram(0, b.MustBuild()); err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(100_000)
	if err != nil || !res.AllHalted {
		t.Fatalf("run: %v halted=%v", err, res.AllHalted)
	}
	// Halt is not traced (it terminates the core in its own retire path).
	if len(evs) != 4 {
		t.Fatalf("traced %d events, want 4", len(evs))
	}
	for i, e := range evs {
		if e.PC != int32(i) {
			t.Errorf("event %d at pc %d: retirement must follow program order", i, e.PC)
		}
		if i > 0 && e.Cycle < evs[i-1].Cycle {
			t.Errorf("event %d cycle regressed", i)
		}
	}
	if evs[2].Val != 5 || evs[2].Addr != 8 {
		t.Errorf("load event = %+v", evs[2])
	}
	if evs[3].Val != 6 {
		t.Errorf("add result = %d", evs[3].Val)
	}
	if evs[2].SatisfiedAt == 0 || evs[2].SatisfiedAt > evs[2].Cycle {
		t.Errorf("load satisfied at %d, retired %d", evs[2].SatisfiedAt, evs[2].Cycle)
	}
}

// TestWriteTraceTo checks the textual renderer includes the key fields.
func TestWriteTraceTo(t *testing.T) {
	b := arch.NewBuilder()
	b.MovImm(0, 9)
	b.Store(0, 1, 16)
	b.Load(2, 1, 16)
	b.Halt()
	m, err := New(arch.POWER7(), Config{Cores: 1, MemWords: 256, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	m.WriteTraceTo(&sb)
	if err := m.LoadProgram(0, b.MustBuild()); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(100_000); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"movimm", "store buffer", "satisfied@", "addr=16"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace output missing %q:\n%s", want, out)
		}
	}
}
