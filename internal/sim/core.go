package sim

import (
	"fmt"

	"repro/internal/arch"
)

// Window-entry states.
const (
	stFetched uint8 = iota // in the window, not yet issued
	stIssued               // executing; result ready at readyAt
	stDone                 // completed, eligible to retire in order
)

const noProd = int64(-1)

// wentry is one in-flight instruction in a core's reorder window.
type wentry struct {
	in      arch.Instr
	pc      int32
	state   uint8
	predTak bool // fetch-time prediction for conditional branches
	fwd     bool // load satisfied by store forwarding

	readyAt int64
	val     int64 // result value (loads: value read; stxr: 0/1)
	flagV   int64 // for flag setters: the signed comparison value
	addr    int64
	addrOK  bool

	tok uint64 // loads: commit seq associated with the value read

	prod  [2]int64 // window ids of operand producers (noProd = regfile)
	fprod int64    // window id of flags producer
	latCl uint8    // latency class chosen at issue (loads)
}

// Latency classes for loads.
const (
	latHit uint8 = iota
	latL2
	latMem
	latFwd
)

// sbEntry is a pending store (or ordering marker) in the store buffer.
type sbEntry struct {
	addr, val int64
	ready     int64 // earliest commit time (line ownership acquired)
	site      arch.PathID
	release   bool // store-release: may not be bypassed, fences the group
	fence     bool // pure marker from dmb ishst / lwsync
}

// CoreStats aggregates per-core observable counters for a run.
type CoreStats struct {
	Retired     uint64
	Work        int64
	Loads       uint64
	Stores      uint64
	Barriers    uint64
	Mispredicts uint64
	Squashes    uint64
	L1Hits      uint64
	L1Misses    uint64
	StallFull   uint64 // cycles with a full window and nothing fetched
	WorkTimes   []int64
}

type core struct {
	id   int
	m    *Machine
	prog []arch.Instr

	regs  [arch.NumRegs]int64
	flagV int64

	// Reorder window: entries are addressed by monotonically increasing
	// ids; slot(id) = id & mask.  Ids in [retireID, nextID) are live.
	entries  []wentry
	mask     int64
	retireID int64
	nextID   int64

	regProd  [arch.NumRegs]int64
	flagProd int64

	fetchPC         int32
	fetchStallUntil int64
	fetchHalted     bool // Halt has been fetched; stop fetching

	sb           []sbEntry
	nextCommitAt int64

	pred   *predictor
	cache  *l1
	rnd    rng
	halted bool

	// Idle fast path: when nothing can be fetched or issued, the core's
	// next state change is a known future time; step() skips until then.
	nFetched  int   // window entries in stFetched
	minReady  int64 // earliest pending completion seen by the last scan
	idleUntil int64
	stats     CoreStats
	lastRet   int64 // cycle of the most recent retirement (watchdog)

	monArmed bool
	monAddr  int64
	monSeq   uint64

	recordWork bool
}

func newCore(id int, m *Machine, seed uint64) *core {
	winCap := 1
	for winCap < m.prof.Pipe.Window {
		winCap <<= 1
	}
	c := &core{
		id:       id,
		m:        m,
		entries:  make([]wentry, winCap),
		mask:     int64(winCap - 1),
		pred:     newPredictor(m.prof.Pipe.BranchPredictorBits),
		cache:    newL1(m.prof.L1Lines, m.prof.LineWords),
		rnd:      newRNG(seed),
		flagProd: noProd,
	}
	for i := range c.regProd {
		c.regProd[i] = noProd
	}
	return c
}

func (c *core) slot(id int64) *wentry { return &c.entries[id&c.mask] }

func (c *core) live() int64 { return c.nextID - c.retireID }

// operandVal resolves a register operand at issue time.  A producer that
// has already retired has written its value to the architectural register
// file (and nothing younger than the consumer can have overwritten it,
// because retirement is in order).
func (c *core) operandVal(_ int64, r arch.Reg, prodID int64) int64 {
	if prodID == noProd || prodID < c.retireID {
		return c.regs[r]
	}
	return c.slot(prodID).val
}

// prodReady reports whether the producer of an operand has its value.
func (c *core) prodReady(prodID int64) bool {
	if prodID == noProd || prodID < c.retireID {
		return true
	}
	return c.slot(prodID).state == stDone
}

// step advances the core by one cycle.
func (c *core) step(now int64) {
	if c.halted {
		return
	}
	if now < c.idleUntil {
		// Nothing can change before idleUntil: no fetchable or issuable
		// work exists and every pending event (completion, store-buffer
		// commit, fetch restart) lies in the future.  Deliveries are
		// value-only and are re-applied at load completion.
		return
	}
	c.m.store.deliver(c.id, now)
	c.drainSB(now)
	c.completeAndIssue(now)
	c.retire(now)
	c.fetch(now)
	c.maybeIdle(now)
}

// maybeIdle computes how long the core can safely skip cycles: only when
// no instruction is waiting to issue and fetch cannot add one.  All
// remaining state transitions are then timed events.
func (c *core) maybeIdle(now int64) {
	if c.nFetched != 0 || c.halted {
		return
	}
	canFetch := !c.fetchHalted && now >= c.fetchStallUntil &&
		c.live() < int64(c.m.prof.Pipe.Window) && int(c.fetchPC) < len(c.prog)
	if canFetch {
		return
	}
	wake := int64(1) << 62
	if c.minReady > now && c.minReady < wake {
		wake = c.minReady
	}
	if len(c.sb) > 0 {
		w := c.nextCommitAt
		if !c.sb[0].fence && c.sb[0].ready > w {
			w = c.sb[0].ready
		}
		if w <= now {
			w = now + 1
		}
		if w < wake {
			wake = w
		}
	}
	if !c.fetchHalted && c.fetchStallUntil > now && c.fetchStallUntil < wake {
		wake = c.fetchStallUntil
	}
	if wake > now+1 && wake < int64(1)<<62 {
		c.idleUntil = wake
	}
}

// ---------------------------------------------------------------- fetch --

func (c *core) fetch(now int64) {
	if c.fetchHalted || now < c.fetchStallUntil {
		return
	}
	for n := 0; n < c.m.prof.Pipe.FetchWidth; n++ {
		if c.live() >= int64(c.m.prof.Pipe.Window) {
			c.stats.StallFull++
			return
		}
		if int(c.fetchPC) >= len(c.prog) {
			return
		}
		in := c.prog[c.fetchPC]
		id := c.nextID
		c.nextID++
		c.nFetched++
		e := c.slot(id)
		*e = wentry{in: in, pc: c.fetchPC, state: stFetched, fprod: noProd}
		e.prod[0], e.prod[1] = noProd, noProd

		// Record operand producers (rename-lite).
		var buf [3]arch.Reg
		reads := in.Reads(buf[:0])
		for i, r := range reads {
			if i < 2 {
				e.prod[i] = c.regProd[r]
			}
		}
		if in.ReadsFlags() {
			e.fprod = c.flagProd
		}
		if rd, ok := in.Writes(); ok {
			c.regProd[rd] = id
		}
		if in.SetsFlags() {
			c.flagProd = id
		}

		// Redirect fetch.
		switch {
		case in.Op == arch.B:
			c.fetchPC = in.Target
		case in.Op.IsCondBranch():
			e.predTak = c.pred.predict(e.pc)
			if e.predTak {
				c.fetchPC = in.Target
			} else {
				c.fetchPC++
			}
		case in.Op == arch.Halt:
			c.fetchHalted = true
			c.fetchPC++
			return
		default:
			c.fetchPC++
		}
	}
}

// ------------------------------------------------------------- complete --

// completeAndIssue walks the window oldest→youngest once per cycle,
// completing in-flight instructions whose latency has elapsed and issuing
// ready instructions subject to the memory-ordering constraints of the
// profile's ISA.
func (c *core) completeAndIssue(now int64) {
	issueBudget := c.m.prof.Pipe.IssueWidth
	c.minReady = int64(1) << 62

	// Ordering state accumulated over older entries during the scan.
	barrierPending := false     // any incomplete barrier (barriers serialize)
	fullBarrierPending := false // incomplete dmb ish / hwsync / isb older than here
	loadBarrierPending := false // incomplete load-ordering barrier or ldar
	olderLoadPending := false   // an older load has not yet satisfied
	olderStoreAddrUnknown := false
	noSpec := c.m.prof.Pipe.NoLoadSpeculation

	for id := c.retireID; id < c.nextID; id++ {
		e := c.slot(id)

		if e.state == stIssued && e.readyAt <= now {
			c.complete(id, e, now)
		}

		if e.state == stFetched && issueBudget > 0 {
			blocked := c.tryIssue(id, e, now,
				barrierPending, fullBarrierPending, loadBarrierPending, olderLoadPending, olderStoreAddrUnknown)
			if !blocked && e.state != stFetched {
				issueBudget--
				c.nFetched--
			}
			// A mispredicted branch squashes everything younger; the
			// window beyond this point is gone.
			if id >= c.nextID {
				return
			}
		}

		if e.state == stIssued && e.readyAt < c.minReady {
			c.minReady = e.readyAt
		}

		// Update ordering state for younger entries.
		op := e.in.Op
		switch {
		case op == arch.Barrier:
			if e.state != stDone {
				// Barriers serialize against each other (at most one in
				// flight), which is what gives them a measurable cost
				// even in sterile timing loops (TXT3); beyond that,
				// only the orderings their semantics demand stall
				// younger work, so a dmb ishld overlaps with stores and
				// computation in vivo (the §4.3.1 divergence).
				barrierPending = true
				k := e.in.Kind
				if k == arch.DMBIsh || k == arch.HwSync || k == arch.ISB {
					fullBarrierPending = true
				}
				if k.OrdersLoadLoad() {
					loadBarrierPending = true
				}
			}
		case op == arch.LoadAcq:
			if e.state != stDone {
				loadBarrierPending = true
			}
			if e.state != stDone {
				olderLoadPending = true
			}
		case op.IsLoad():
			if e.state != stDone {
				olderLoadPending = true
			}
		case op.IsStore():
			if !e.addrOK {
				olderStoreAddrUnknown = true
			}
		case noSpec && op.IsCondBranch():
			if e.state == stFetched {
				// Speculation ablation: unresolved branches order
				// younger loads like a load barrier would.
				loadBarrierPending = true
			}
		}
	}
}

// complete finishes an issued instruction whose latency has elapsed.
func (c *core) complete(id int64, e *wentry, now int64) {
	if e.in.Op.IsLoad() && !e.fwd {
		c.readLoadValue(e, now)
	}
	e.state = stDone
}

// readLoadValue performs the actual memory read at satisfaction time.  On
// MCA storage the value is the coherent one; on non-MCA storage it is the
// core's propagated view.  Weak load-load behaviour therefore arises from
// loads being satisfied out of program order, which barriers, acquires and
// value dependencies constrain by ordering satisfaction times.
func (c *core) readLoadValue(e *wentry, now int64) {
	st := c.m.store
	addr := e.addr

	if e.in.Op == arch.LoadEx {
		// Exclusives read the coherent value and arm the monitor.
		// Obtaining the line coherently implies its propagation (and
		// that of everything channel-ordered before it) has reached
		// this core.
		val, seq := st.readCoherent(addr)
		e.val, e.tok = val, seq
		st.observeExclusive(c.id, addr, seq, now)
		c.monArmed, c.monAddr, c.monSeq = true, addr, seq
	} else {
		st.deliver(c.id, now)
		val, seq := st.readView(c.id, addr, now)
		e.val, e.tok = val, seq
	}
	st.noteObserved(c.id, addr, e.tok)
	if e.latCl != latHit {
		c.cache.fill(addr)
		c.m.store.touchLine(addr >> c.cache.lineShift)
	}
}

// ---------------------------------------------------------------- issue --

// tryIssue attempts to issue entry e.  It returns true if the entry was
// blocked by an ordering constraint or unready operand (so it did not
// consume an issue slot).
func (c *core) tryIssue(id int64, e *wentry, now int64,
	barrier, fullBarrier, loadBarrier, olderLoadPending, olderStoreAddrUnknown bool) bool {

	prof := c.m.prof
	in := e.in

	// A full barrier (dmb ish / hwsync / isb) stalls younger memory
	// accesses; any barrier stalls younger barriers (serialization).
	if fullBarrier && in.Op.IsMem() {
		return true
	}
	if barrier && in.Op == arch.Barrier {
		return true
	}
	if !c.prodReady(e.prod[0]) || !c.prodReady(e.prod[1]) {
		return true
	}
	if in.ReadsFlags() && !c.prodReady(e.fprod) {
		return true
	}
	if c.rnd.permille(prof.Pipe.IssueJitter) {
		return true
	}

	switch in.Op {
	case arch.Nop:
		e.state = stIssued
		e.readyAt = now + 1

	case arch.Work, arch.Halt:
		// Halts complete only at the head with an empty store buffer;
		// model that at retire by marking done here.
		e.state = stIssued
		e.readyAt = now + 1

	case arch.MovImm:
		e.val = in.Imm
		e.state, e.readyAt = stIssued, now+prof.Lat.ALU

	case arch.Mov:
		e.val = c.operandVal(id, in.Rn, e.prod[0])
		e.state, e.readyAt = stIssued, now+prof.Lat.ALU

	case arch.Add, arch.Sub, arch.And, arch.Orr, arch.Eor, arch.Mul:
		a := c.operandVal(id, in.Rn, e.prod[0])
		b := c.operandVal(id, in.Rm, e.prod[1])
		switch in.Op {
		case arch.Add:
			e.val = a + b
		case arch.Sub:
			e.val = a - b
		case arch.And:
			e.val = a & b
		case arch.Orr:
			e.val = a | b
		case arch.Eor:
			e.val = a ^ b
		case arch.Mul:
			e.val = a * b
		}
		lat := prof.Lat.ALU
		if in.Op == arch.Mul {
			lat = prof.Lat.Mul
		}
		e.state, e.readyAt = stIssued, now+lat

	case arch.AddImm, arch.SubImm, arch.Lsl, arch.Lsr, arch.SubsImm:
		a := c.operandVal(id, in.Rn, e.prod[0])
		switch in.Op {
		case arch.AddImm:
			e.val = a + in.Imm
		case arch.SubImm:
			e.val = a - in.Imm
		case arch.Lsl:
			e.val = a << uint(in.Imm)
		case arch.Lsr:
			e.val = int64(uint64(a) >> uint(in.Imm))
		case arch.SubsImm:
			e.val = a - in.Imm
			e.flagV = e.val
		}
		e.state, e.readyAt = stIssued, now+prof.Lat.ALU

	case arch.CmpImm:
		e.flagV = c.operandVal(id, in.Rn, e.prod[0]) - in.Imm
		e.state, e.readyAt = stIssued, now+prof.Lat.ALU

	case arch.Cmp:
		e.flagV = c.operandVal(id, in.Rn, e.prod[0]) - c.operandVal(id, in.Rm, e.prod[1])
		e.state, e.readyAt = stIssued, now+prof.Lat.ALU

	case arch.B:
		e.state, e.readyAt = stIssued, now+1

	case arch.Beq, arch.Bne, arch.Blt, arch.Bge:
		c.resolveBranch(id, e, now)

	case arch.Load, arch.LoadAcq, arch.LoadEx:
		return c.issueLoad(id, e, now, loadBarrier, olderStoreAddrUnknown)

	case arch.Store, arch.StoreRel:
		// Stores are "done" once address and data are known; the memory
		// effect happens at retire, through the store buffer.
		if !c.prodReady(e.prod[1]) {
			return true
		}
		e.addr = c.operandVal(id, in.Rn, e.prod[0]) + in.Imm
		if !c.checkAddr(e.addr) {
			return true
		}
		e.addrOK = true
		e.val = c.operandVal(id, in.Rd, e.prod[1])
		e.state, e.readyAt = stIssued, now+1

	case arch.StoreEx:
		return c.issueStoreEx(id, e, now)

	case arch.Barrier:
		return c.issueBarrier(id, e, now, olderLoadPending)

	default:
		c.m.fail(fmt.Errorf("core %d: unknown opcode %v at pc %d", c.id, in.Op, e.pc))
	}
	return false
}

func (c *core) resolveBranch(id int64, e *wentry, now int64) {
	fp := e.fprod
	var fv int64
	if fp == noProd || fp < c.retireID {
		fv = c.flagV
	} else {
		fv = c.slot(fp).flagV
	}
	var taken bool
	switch e.in.Op {
	case arch.Beq:
		taken = fv == 0
	case arch.Bne:
		taken = fv != 0
	case arch.Blt:
		taken = fv < 0
	case arch.Bge:
		taken = fv >= 0
	}
	c.pred.update(e.pc, taken)
	e.state, e.readyAt = stIssued, now+1
	if taken == e.predTak {
		return
	}
	// A "mispredicted" branch whose actual target coincides with the path
	// fetch already took (e.g. a conditional branch to the next
	// instruction, as in the ctrl litmus shapes and the paper's ctrl
	// read_barrier_depends strategy) costs nothing: the fetched stream is
	// correct either way.
	actualNext := e.pc + 1
	if taken {
		actualNext = e.in.Target
	}
	predictedNext := e.pc + 1
	if e.predTak {
		predictedNext = e.in.Target
	}
	if actualNext == predictedNext {
		return
	}
	// Misprediction: squash everything younger and restart fetch.
	c.stats.Mispredicts++
	c.squashAfter(id)
	if taken {
		c.fetchPC = e.in.Target
	} else {
		c.fetchPC = e.pc + 1
	}
	c.fetchHalted = false
	c.fetchStallUntil = now + c.m.prof.Lat.Mispredict
}

// squashAfter removes all window entries younger than id and rebuilds the
// producer maps.
func (c *core) squashAfter(id int64) {
	c.stats.Squashes += uint64(c.nextID - id - 1)
	c.nextID = id + 1
	for i := range c.regProd {
		c.regProd[i] = noProd
	}
	c.flagProd = noProd
	c.nFetched = 0
	for i := c.retireID; i < c.nextID; i++ {
		e := c.slot(i)
		if e.state == stFetched {
			c.nFetched++
		}
		if rd, ok := e.in.Writes(); ok {
			c.regProd[rd] = i
		}
		if e.in.SetsFlags() {
			c.flagProd = i
		}
	}
}

// checkAddr reports whether addr is a valid memory address.  Out-of-range
// addresses block issue rather than failing the machine: instructions on a
// mispredicted path can compute arbitrary addresses and will be squashed; a
// genuinely bad program eventually trips the retirement watchdog instead.
func (c *core) checkAddr(addr int64) bool {
	return addr >= 0 && addr < int64(c.m.memWords)
}

func (c *core) issueLoad(id int64, e *wentry, now int64, loadBarrier, olderStoreAddrUnknown bool) bool {
	prof := c.m.prof
	if loadBarrier {
		return true
	}
	if olderStoreAddrUnknown {
		// No speculative memory disambiguation: wait until all older
		// store addresses are known.
		return true
	}
	addr := c.operandVal(id, e.in.Rn, e.prod[0]) + e.in.Imm
	if !c.checkAddr(addr) {
		return true
	}
	e.addr = addr
	e.addrOK = true

	if e.in.Op == arch.LoadAcq {
		// stlr→ldar: an acquire load may not satisfy while a release
		// store from this core is still buffered.
		for i := range c.sb {
			if c.sb[i].release {
				return true
			}
		}
	}

	// Same-address ordering: loads to one location satisfy in program
	// order (preserves per-location coherence, CoRR).  An older load whose
	// address is not yet computable blocks this one: we do not speculate
	// on load-load disambiguation.
	for i := c.retireID; i < id; i++ {
		o := c.slot(i)
		if !o.in.Op.IsLoad() || o.state == stDone {
			continue
		}
		oaddr := o.addr
		if !o.addrOK {
			if !c.prodReady(o.prod[0]) {
				return true
			}
			oaddr = c.operandVal(i, o.in.Rn, o.prod[0]) + o.in.Imm
		}
		if oaddr == addr {
			return true
		}
	}

	if e.in.Op == arch.LoadEx {
		// Exclusive loads must read coherent memory so the monitor is
		// armed against the true coherence state: wait for any older
		// buffered store to the same address to drain first.
		for i := id - 1; i >= c.retireID; i-- {
			o := c.slot(i)
			if o.in.Op.IsStore() && o.addrOK && o.addr == addr {
				return true
			}
		}
		for i := range c.sb {
			if !c.sb[i].fence && c.sb[i].addr == addr {
				return true
			}
		}
	} else {
		// Store-to-load forwarding: youngest older store to the same
		// address, in the window or the store buffer.
		for i := id - 1; i >= c.retireID; i-- {
			o := c.slot(i)
			if !o.in.Op.IsStore() || !o.addrOK || o.addr != addr {
				continue
			}
			if o.in.Op == arch.StoreEx {
				break // already committed to storage; read it from there
			}
			if o.state != stDone {
				return true // value not ready yet
			}
			e.val = o.val
			e.fwd = true
			e.tok = 0
			e.state, e.readyAt, e.latCl = stIssued, now+1, latFwd
			c.stats.Loads++
			return false
		}
		for i := len(c.sb) - 1; i >= 0; i-- {
			s := &c.sb[i]
			if !s.fence && s.addr == addr {
				e.val = s.val
				e.fwd = true
				e.state, e.readyAt, e.latCl = stIssued, now+1, latFwd
				c.stats.Loads++
				return false
			}
		}
	}

	lat := int64(0)
	if c.cache.probe(addr) {
		lat = prof.Lat.L1Hit
		e.latCl = latHit
		c.stats.L1Hits++
	} else {
		line := addr >> c.cache.lineShift
		if c.m.store.lineTouched(line) {
			lat = prof.Lat.L2Hit
			e.latCl = latL2
		} else {
			lat = prof.Lat.Mem
			e.latCl = latMem
		}
		lat += prof.Lat.L1Fill
		c.stats.L1Misses++
	}
	if e.in.Op == arch.LoadAcq {
		lat += prof.Lat.AcqIssue
	}
	// Bank-conflict / memory-scheduling jitter: a small random latency
	// component that both spreads repeated samples and perturbs the
	// relative satisfaction order of independent loads.
	if c.rnd.permille(prof.Pipe.IssueJitter * 8) {
		lat += 1 + c.rnd.intn(4)
	}
	e.state, e.readyAt = stIssued, now+lat
	c.stats.Loads++
	return false
}

func (c *core) issueStoreEx(id int64, e *wentry, now int64) bool {
	// Store-exclusives serialize: they perform their check-and-commit
	// atomically when they are the oldest un-retired instruction.
	if id != c.retireID {
		return true
	}
	// The exclusive commits to the coherent point directly, bypassing the
	// store buffer; it therefore may not run ahead of an ordering marker
	// (dmb ishst / lwsync) or a release store still buffered, or it would
	// reorder across an explicit fence.  Plain buffered stores may still
	// be bypassed — that is ordinary (architecturally allowed)
	// store-store reordering.
	for i := range c.sb {
		if c.sb[i].fence || c.sb[i].release {
			return true
		}
	}
	if !c.prodReady(e.prod[1]) {
		return true
	}
	addr := c.operandVal(id, e.in.Rn, e.prod[0]) + e.in.Imm
	if !c.checkAddr(addr) {
		return true
	}
	e.addr, e.addrOK = addr, true
	val := c.operandVal(id, e.in.Rm, e.prod[1])

	_, seq := c.m.store.readCoherent(addr)
	if c.monArmed && c.monAddr == addr && c.monSeq == seq {
		c.m.store.commitStore(c.id, addr, val, now)
		e.val = 0
		c.stats.Stores++
	} else {
		e.val = 1
	}
	c.monArmed = false
	e.state, e.readyAt = stIssued, now+c.m.prof.Lat.L1Hit+1
	return false
}

func (c *core) issueBarrier(id int64, e *wentry, now int64, olderLoadPending bool) bool {
	prof := c.m.prof
	cost := prof.Lat.BarrierIssue[e.in.Kind]
	switch e.in.Kind {
	case arch.DMBIsh, arch.HwSync:
		if id != c.retireID || len(c.sb) != 0 {
			return true
		}
		if e.in.Kind == arch.HwSync {
			if ack := c.m.store.visibleAllBy(c.id); ack > now {
				return true
			}
		}
		e.state, e.readyAt = stIssued, now+cost

	case arch.DMBIshLd:
		if olderLoadPending {
			return true
		}
		e.state, e.readyAt = stIssued, now+cost

	case arch.LwSync:
		if olderLoadPending {
			return true
		}
		e.state, e.readyAt = stIssued, now+cost

	case arch.DMBIshSt:
		e.state, e.readyAt = stIssued, now+cost

	case arch.ISB:
		if id != c.retireID {
			return true
		}
		e.state, e.readyAt = stIssued, now+cost

	default:
		c.m.fail(fmt.Errorf("core %d: bad barrier kind %v", c.id, e.in.Kind))
	}
	return false
}

// --------------------------------------------------------------- retire --

func (c *core) retire(now int64) {
	prof := c.m.prof
	for n := 0; n < prof.Pipe.RetireWidth && c.live() > 0; n++ {
		id := c.retireID
		e := c.slot(id)
		if e.state != stDone {
			return
		}
		in := e.in
		switch {
		case in.Op.IsStore() && in.Op != arch.StoreEx:
			if len(c.sb) >= prof.Pipe.SBDepth {
				return // store buffer full: stall retirement
			}
			// Ownership-acquisition time varies per line (directory
			// state, contention); the variance is what lets a younger
			// ready store drain past a stuck head.
			drain := prof.Lat.StoreDrain + c.rnd.intn(prof.Lat.StoreDrain+1)
			c.sb = append(c.sb, sbEntry{
				addr: e.addr, val: e.val,
				ready:   now + drain,
				site:    in.Site,
				release: in.Op == arch.StoreRel,
			})
			c.stats.Stores++

		case in.Op == arch.Barrier:
			c.stats.Barriers++
			switch in.Kind {
			case arch.DMBIshSt, arch.LwSync:
				// Store-side ordering: later stores may not be
				// committed (or propagated) before earlier ones.
				c.sb = append(c.sb, sbEntry{fence: true})
			case arch.ISB:
				// Context synchronization: discard all speculative
				// work and restart fetch after the flush penalty.
				c.squashAfter(id)
				c.fetchPC = e.pc + 1
				c.fetchHalted = false
				c.fetchStallUntil = now + prof.Lat.ISBFlush
			}

		case in.Op == arch.Work:
			c.stats.Work += in.Imm
			if c.recordWork && len(c.stats.WorkTimes) < maxWorkTimes {
				c.stats.WorkTimes = append(c.stats.WorkTimes, now)
			}

		case in.Op == arch.Halt:
			if len(c.sb) != 0 {
				return // drain before halting
			}
			c.halted = true
			c.retireID++
			c.stats.Retired++
			c.lastRet = now
			return
		}

		if rd, ok := in.Writes(); ok {
			c.regs[rd] = e.val
			if c.regProd[rd] == id {
				c.regProd[rd] = noProd
			}
		}
		if in.SetsFlags() {
			c.flagV = e.flagV
			if c.flagProd == id {
				c.flagProd = noProd
			}
		}
		c.m.countSite(c.id, in.Site)
		if c.m.tracer != nil {
			c.emitTrace(now, e)
		}
		c.retireID++
		c.stats.Retired++
		c.lastRet = now
	}
}

// -------------------------------------------------------------- storebuf --

func (c *core) drainSB(now int64) {
	if len(c.sb) == 0 || now < c.nextCommitAt {
		return
	}
	// Pop leading fence markers for free.
	for len(c.sb) > 0 && c.sb[0].fence {
		c.m.store.fence(c.id)
		c.sb = c.sb[:copy(c.sb, c.sb[1:])]
	}
	if len(c.sb) == 0 {
		return
	}
	idx := 0
	if c.sb[0].ready > now {
		// The head store has not yet acquired its line.  A younger store
		// to a different line whose ownership is already held may commit
		// first (write combining / out-of-order drain) — this is the
		// store-store reordering that dmb ishst and lwsync forbid, which
		// the fence markers in the buffer prevent here.
		if len(c.sb) > 1 && c.sb[1].ready <= now &&
			!c.sb[0].release && !c.sb[1].release && !c.sb[1].fence &&
			c.sb[0].addr>>c.cache.lineShift != c.sb[1].addr>>c.cache.lineShift &&
			c.rnd.permille(storeCombinePermille) {
			idx = 1
			// The bypassed head stays stuck for a while longer (its
			// line is genuinely unavailable), which is what makes the
			// reordering externally observable.
			c.sb[0].ready = now + c.rnd.rangeInt(20, 60)
		} else {
			return
		}
	}
	e := c.sb[idx]
	if e.release {
		// Release stores close the propagation group before committing
		// and reopen it after, so nothing moves across them.
		c.m.store.fence(c.id)
	}
	c.m.store.commitStore(c.id, e.addr, e.val, now)
	if e.release {
		c.m.store.fence(c.id)
	}
	c.sb = append(c.sb[:idx], c.sb[idx+1:]...)
	c.nextCommitAt = now + c.m.prof.Lat.StoreCommit
}

// storeCombinePermille is the probability (per mille) that the store buffer
// commits out of order across different cache lines when permitted.
const storeCombinePermille = 300

// maxWorkTimes bounds the per-core work-timestamp recording.
const maxWorkTimes = 8192
