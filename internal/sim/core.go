package sim

import (
	"fmt"

	"repro/internal/arch"
)

// Window-entry states.
const (
	stFetched uint8 = iota // in the window, not yet issued
	stIssued               // executing; result ready at readyAt
	stDone                 // completed, eligible to retire in order
)

const noProd = int64(-1)

// Instruction-class bits, computed once at fetch so the per-cycle window
// scan tests a byte instead of re-deriving opcode predicates.
const (
	clsMem     uint8 = 1 << iota // op.IsMem()
	clsLoad                      // op.IsLoad()
	clsStore                     // op.IsStore()
	clsBarrier                   // op == Barrier
	clsFullBar                   // Barrier kind dmb ish / hwsync / isb
	clsLdBar                     // Barrier kind ordering load-load
	clsLoadAcq                   // op == LoadAcq
	clsCondBr                    // op.IsCondBranch()
)

func classify(in arch.Instr) uint8 {
	var cls uint8
	op := in.Op
	if op.IsMem() {
		cls |= clsMem
	}
	switch {
	case op.IsLoad():
		cls |= clsLoad
		if op == arch.LoadAcq {
			cls |= clsLoadAcq
		}
	case op.IsStore():
		cls |= clsStore
	case op == arch.Barrier:
		cls |= clsBarrier
		k := in.Kind
		if k == arch.DMBIsh || k == arch.HwSync || k == arch.ISB {
			cls |= clsFullBar
		}
		if k.OrdersLoadLoad() {
			cls |= clsLdBar
		}
	case op.IsCondBranch():
		cls |= clsCondBr
	}
	return cls
}

// wentry is one in-flight instruction in a core's reorder window.
type wentry struct {
	in      arch.Instr
	pc      int32
	state   uint8
	cls     uint8 // instruction-class bits (classify)
	predTak bool  // fetch-time prediction for conditional branches
	fwd     bool  // load satisfied by store forwarding

	readyAt int64
	val     int64 // result value (loads: value read; stxr: 0/1)
	flagV   int64 // for flag setters: the signed comparison value
	addr    int64
	addrOK  bool

	tok uint64 // loads: commit seq associated with the value read

	prod  [2]int64 // window ids of operand producers (noProd = regfile)
	fprod int64    // window id of flags producer
	latCl uint8    // latency class chosen at issue (loads)
}

// Latency classes for loads.
const (
	latHit uint8 = iota
	latL2
	latMem
	latFwd
)

// sbEntry is a pending store (or ordering marker) in the store buffer.
type sbEntry struct {
	addr, val int64
	ready     int64 // earliest commit time (line ownership acquired)
	site      arch.PathID
	release   bool // store-release: may not be bypassed, fences the group
	fence     bool // pure marker from dmb ishst / lwsync
}

// CoreStats aggregates per-core observable counters for a run.
type CoreStats struct {
	Retired     uint64
	Work        int64
	Loads       uint64
	Stores      uint64
	Barriers    uint64
	Mispredicts uint64
	Squashes    uint64
	L1Hits      uint64
	L1Misses    uint64
	StallFull   uint64 // cycles with a full window and nothing fetched
	WorkTimes   []int64
}

type core struct {
	id   int
	m    *Machine
	prog []arch.Instr

	regs  [arch.NumRegs]int64
	flagV int64

	// Reorder window: entries are addressed by monotonically increasing
	// ids; slot(id) = id & mask.  Ids in [retireID, nextID) are live.
	entries  []wentry
	mask     int64
	retireID int64
	nextID   int64

	regProd  [arch.NumRegs]int64
	flagProd int64

	fetchPC         int32
	fetchStallUntil int64
	fetchHalted     bool // Halt has been fetched; stop fetching

	sb           []sbEntry
	nextCommitAt int64

	pred   *predictor
	cache  *l1
	rnd    rng
	halted bool

	// Idle fast path: when nothing can be fetched or issued, the core's
	// next state change is a known future time; step() skips until then.
	nFetched  int   // window entries in stFetched
	minReady  int64 // earliest pending completion seen by the last scan
	idleUntil int64
	// scanAllHard reports that the last window scan issued nothing, drew
	// no randomness, and left every fetched entry blocked on one of this
	// core's own timed events (producer or barrier completion).  Such a
	// core may idle even with fetched entries in the window: no skipped
	// cycle would have consumed RNG or changed state.
	scanAllHard bool
	// idleFullStall marks a hard-block idle whose skipped cycles each
	// count a full-window fetch stall; StallFull for them is credited up
	// front, and re-credited if the warmup boundary zeroes the counters
	// mid-idle.
	idleFullStall bool
	stats       CoreStats
	lastRet     int64  // cycle of the most recent retirement (watchdog)
	retiredEver uint64 // monotonic retirement count; survives warmup reset

	monArmed bool
	monAddr  int64
	monSeq   uint64

	recordWork bool
}

func newCore(id int, m *Machine, seed uint64) *core {
	winCap := 1
	for winCap < m.prof.Pipe.Window {
		winCap <<= 1
	}
	c := &core{
		id:       id,
		m:        m,
		entries:  make([]wentry, winCap),
		mask:     int64(winCap - 1),
		pred:     newPredictor(m.prof.Pipe.BranchPredictorBits),
		cache:    newL1(m.prof.L1Lines, m.prof.LineWords),
		rnd:      newRNG(seed),
		flagProd: noProd,
	}
	for i := range c.regProd {
		c.regProd[i] = noProd
	}
	return c
}

// reset returns the core to its just-constructed state, keeping every
// allocation (window, store buffer, predictor table, cache tags, recorded
// work-time capacity).  Mirrors newCore field for field; stale window
// entries need no clearing because ids in [retireID, nextID) are the only
// ones ever read and fetch overwrites a slot wholesale.
func (c *core) reset(seed uint64) {
	c.prog = nil
	for i := range c.regs {
		c.regs[i] = 0
	}
	c.flagV = 0
	c.retireID, c.nextID = 0, 0
	for i := range c.regProd {
		c.regProd[i] = noProd
	}
	c.flagProd = noProd
	c.fetchPC, c.fetchStallUntil, c.fetchHalted = 0, 0, false
	c.sb = c.sb[:0]
	c.nextCommitAt = 0
	c.pred.reset()
	c.cache.reset()
	c.rnd = newRNG(seed)
	c.halted = false
	c.nFetched, c.minReady, c.idleUntil = 0, 0, 0
	c.scanAllHard, c.idleFullStall = false, false
	wt := c.stats.WorkTimes[:0]
	c.stats = CoreStats{WorkTimes: wt}
	c.lastRet = 0
	c.retiredEver = 0
	c.monArmed, c.monAddr, c.monSeq = false, 0, 0
}

func (c *core) slot(id int64) *wentry { return &c.entries[id&c.mask] }

func (c *core) live() int64 { return c.nextID - c.retireID }

// operandVal resolves a register operand at issue time.  A producer that
// has already retired has written its value to the architectural register
// file (and nothing younger than the consumer can have overwritten it,
// because retirement is in order).
func (c *core) operandVal(_ int64, r arch.Reg, prodID int64) int64 {
	if prodID == noProd || prodID < c.retireID {
		return c.regs[r]
	}
	return c.slot(prodID).val
}

// prodReady reports whether the producer of an operand has its value.
func (c *core) prodReady(prodID int64) bool {
	if prodID == noProd || prodID < c.retireID {
		return true
	}
	return c.slot(prodID).state == stDone
}

// step advances the core by one cycle.
func (c *core) step(now int64) {
	if c.halted {
		return
	}
	if now < c.idleUntil {
		// Nothing can change before idleUntil: no fetchable or issuable
		// work exists and every pending event (completion, store-buffer
		// commit, fetch restart) lies in the future.  Deliveries are
		// value-only and are re-applied at load completion.
		return
	}
	c.m.store.deliver(c.id, now)
	c.drainSB(now)
	c.completeAndIssue(now)
	c.retire(now)
	c.fetch(now)
	c.maybeIdle(now)
}

// debugForceSlowScan disables the hard-block idle fast path and the
// machine-level cycle jump, leaving only the original nFetched==0 idle
// heuristic.  Equivalence tests flip it to prove the fast paths do not
// change a single observable bit.
var debugForceSlowScan = false

// maybeIdle computes how long the core can safely skip cycles.  Two cases:
//
//   - nFetched == 0: nothing is waiting to issue; if fetch cannot add
//     anything, all remaining transitions are timed events.  This is the
//     original heuristic and is kept bit-for-bit (including its choice of
//     store-buffer wake time) because skipped cycles define which RNG draw
//     opportunities exist.
//
//   - nFetched > 0 but the last scan proved every fetched entry is
//     hard-blocked (scanAllHard): no skipped cycle would draw RNG or issue.
//     Here the wake time must be exact — in particular it must include the
//     first cycle at which the store buffer could draw its out-of-order
//     commit probability (sbWake), or skipping would desynchronise the RNG
//     stream relative to a non-idling run.
func (c *core) maybeIdle(now int64) {
	if c.halted {
		return
	}
	canFetch := !c.fetchHalted && now >= c.fetchStallUntil &&
		c.live() < int64(c.m.prof.Pipe.Window) && int(c.fetchPC) < len(c.prog)
	if canFetch {
		return
	}
	if c.nFetched == 0 {
		wake := int64(1) << 62
		if c.minReady > now && c.minReady < wake {
			wake = c.minReady
		}
		if len(c.sb) > 0 {
			w := c.nextCommitAt
			if !c.sb[0].fence && c.sb[0].ready > w {
				w = c.sb[0].ready
			}
			if w <= now {
				w = now + 1
			}
			if w < wake {
				wake = w
			}
		}
		if !c.fetchHalted && c.fetchStallUntil > now && c.fetchStallUntil < wake {
			wake = c.fetchStallUntil
		}
		if wake > now+1 && wake < int64(1)<<62 {
			c.idleUntil = wake
			c.idleFullStall = false
		}
		return
	}
	if debugForceSlowScan || !c.scanAllHard {
		return
	}
	// Hard-blocked window: entries unblock only via completions (covered
	// by minReady — hard blocks clear when a producer or barrier
	// completes, and any completion enables at most one issue attempt at
	// exactly that cycle).  Retirement must not be pending: a retirable
	// head could free window slots or drain stores mid-idle.
	if c.live() > 0 && c.slot(c.retireID).state == stDone {
		return
	}
	wake := int64(1) << 62
	if c.minReady > now && c.minReady < wake {
		wake = c.minReady
	}
	if len(c.sb) > 0 {
		if w := c.sbWake(now); w < wake {
			wake = w
		}
	}
	if !c.fetchHalted && c.fetchStallUntil > now && c.fetchStallUntil < wake {
		wake = c.fetchStallUntil
	}
	if wake > now+1 && wake < int64(1)<<62 {
		c.idleUntil = wake
		// A non-idling run calls fetch on every skipped cycle; with a full
		// window each fetch-eligible cycle records one StallFull.  Those
		// conditions cannot change mid-idle (no fetch, no retirement), so
		// credit the skipped cycles' stalls up front.  The flag lets the
		// warmup-boundary reset re-credit the post-boundary remainder.
		c.idleFullStall = !c.fetchHalted && c.live() >= int64(c.m.prof.Pipe.Window)
		if c.idleFullStall {
			from := now + 1
			if c.fetchStallUntil > from {
				from = c.fetchStallUntil
			}
			if wake > from {
				c.stats.StallFull += uint64(wake - from)
			}
		}
	}
}

// sbWake returns the next cycle at which drainSB would act — pop a fence,
// commit the head store, or (crucially for determinism) draw the
// out-of-order combine probability.  Exact, not conservative: the relaxed
// idle path may not skip a cycle in which drainSB would have consumed RNG.
func (c *core) sbWake(now int64) int64 {
	t0 := c.nextCommitAt
	if t0 <= now {
		t0 = now + 1
	}
	if c.sb[0].fence {
		return t0
	}
	// Head commit: first cycle past the commit gap with line ownership.
	th := t0
	if c.sb[0].ready > th {
		th = c.sb[0].ready
	}
	// Out-of-order combine: from max(t0, sb[1].ready) on, every cycle with
	// the head still stuck draws storeCombinePermille.
	if len(c.sb) > 1 && !c.sb[0].release && !c.sb[1].release && !c.sb[1].fence &&
		c.sb[0].addr>>c.cache.lineShift != c.sb[1].addr>>c.cache.lineShift {
		tc := t0
		if c.sb[1].ready > tc {
			tc = c.sb[1].ready
		}
		if tc < th {
			return tc
		}
	}
	return th
}

// ---------------------------------------------------------------- fetch --

func (c *core) fetch(now int64) {
	if c.fetchHalted || now < c.fetchStallUntil {
		return
	}
	for n := 0; n < c.m.prof.Pipe.FetchWidth; n++ {
		if c.live() >= int64(c.m.prof.Pipe.Window) {
			c.stats.StallFull++
			return
		}
		if int(c.fetchPC) >= len(c.prog) {
			return
		}
		in := c.prog[c.fetchPC]
		id := c.nextID
		c.nextID++
		c.nFetched++
		// The window now holds an entry the last scan never saw (fetch runs
		// after completeAndIssue in step); the hard-block proof no longer
		// covers the window, so the relaxed idle path must not use it.
		c.scanAllHard = false
		e := c.slot(id)
		*e = wentry{in: in, pc: c.fetchPC, state: stFetched, cls: classify(in), fprod: noProd}
		e.prod[0], e.prod[1] = noProd, noProd

		// Record operand producers (rename-lite).
		var buf [3]arch.Reg
		reads := in.Reads(buf[:0])
		for i, r := range reads {
			if i < 2 {
				e.prod[i] = c.regProd[r]
			}
		}
		if in.ReadsFlags() {
			e.fprod = c.flagProd
		}
		if rd, ok := in.Writes(); ok {
			c.regProd[rd] = id
		}
		if in.SetsFlags() {
			c.flagProd = id
		}

		// Redirect fetch.
		switch {
		case in.Op == arch.B:
			c.fetchPC = in.Target
		case in.Op.IsCondBranch():
			e.predTak = c.pred.predict(e.pc)
			if e.predTak {
				c.fetchPC = in.Target
			} else {
				c.fetchPC++
			}
		case in.Op == arch.Halt:
			c.fetchHalted = true
			c.fetchPC++
			return
		default:
			c.fetchPC++
		}
	}
}

// ------------------------------------------------------------- complete --

// completeAndIssue walks the window oldest→youngest once per cycle,
// completing in-flight instructions whose latency has elapsed and issuing
// ready instructions subject to the memory-ordering constraints of the
// profile's ISA.
func (c *core) completeAndIssue(now int64) {
	issueBudget := c.m.prof.Pipe.IssueWidth
	c.minReady = int64(1) << 62

	// Ordering state accumulated over older entries during the scan.
	barrierPending := false     // any incomplete barrier (barriers serialize)
	fullBarrierPending := false // incomplete dmb ish / hwsync / isb older than here
	loadBarrierPending := false // incomplete load-ordering barrier or ldar
	olderLoadPending := false   // an older load has not yet satisfied
	olderStoreAddrUnknown := false
	noSpec := c.m.prof.Pipe.NoLoadSpeculation
	issued := false  // any entry issued this scan
	sawSoft := false // any entry blocked after consuming RNG
	c.scanAllHard = false

	entries, mask := c.entries, c.mask
	for id := c.retireID; id < c.nextID; id++ {
		e := &entries[id&mask]

		if e.state == stIssued && e.readyAt <= now {
			c.complete(id, e, now)
		}

		if e.state == stFetched && issueBudget > 0 {
			switch c.tryIssue(id, e, now,
				barrierPending, fullBarrierPending, loadBarrierPending, olderLoadPending, olderStoreAddrUnknown) {
			case issueOK:
				if e.state != stFetched {
					issued = true
					issueBudget--
					c.nFetched--
				}
			case blockSoft:
				sawSoft = true
			}
			// A mispredicted branch squashes everything younger; the
			// window beyond this point is gone.
			if id >= c.nextID {
				return
			}
		}

		if e.state == stIssued && e.readyAt < c.minReady {
			c.minReady = e.readyAt
		}

		// Update ordering state for younger entries, from the class bits
		// computed at fetch.
		cls := e.cls
		if cls == 0 {
			continue
		}
		switch {
		case cls&clsBarrier != 0:
			if e.state != stDone {
				// Barriers serialize against each other (at most one in
				// flight), which is what gives them a measurable cost
				// even in sterile timing loops (TXT3); beyond that,
				// only the orderings their semantics demand stall
				// younger work, so a dmb ishld overlaps with stores and
				// computation in vivo (the §4.3.1 divergence).
				barrierPending = true
				if cls&clsFullBar != 0 {
					fullBarrierPending = true
				}
				if cls&clsLdBar != 0 {
					loadBarrierPending = true
				}
			}
		case cls&clsLoad != 0:
			if e.state != stDone {
				olderLoadPending = true
				if cls&clsLoadAcq != 0 {
					loadBarrierPending = true
				}
			}
		case cls&clsStore != 0:
			if !e.addrOK {
				olderStoreAddrUnknown = true
			}
		case cls&clsCondBr != 0:
			if noSpec && e.state == stFetched {
				// Speculation ablation: unresolved branches order
				// younger loads like a load barrier would.
				loadBarrierPending = true
			}
		}
	}
	c.scanAllHard = !issued && !sawSoft
}

// complete finishes an issued instruction whose latency has elapsed.
func (c *core) complete(id int64, e *wentry, now int64) {
	if e.in.Op.IsLoad() && !e.fwd {
		c.readLoadValue(e, now)
	}
	e.state = stDone
}

// readLoadValue performs the actual memory read at satisfaction time.  On
// MCA storage the value is the coherent one; on non-MCA storage it is the
// core's propagated view.  Weak load-load behaviour therefore arises from
// loads being satisfied out of program order, which barriers, acquires and
// value dependencies constrain by ordering satisfaction times.
func (c *core) readLoadValue(e *wentry, now int64) {
	st := c.m.store
	addr := e.addr

	if e.in.Op == arch.LoadEx {
		// Exclusives read the coherent value and arm the monitor.
		// Obtaining the line coherently implies its propagation (and
		// that of everything channel-ordered before it) has reached
		// this core.
		val, seq := st.readCoherent(addr)
		e.val, e.tok = val, seq
		st.observeExclusive(c.id, addr, seq, now)
		c.monArmed, c.monAddr, c.monSeq = true, addr, seq
	} else {
		st.deliver(c.id, now)
		val, seq := st.readView(c.id, addr, now)
		e.val, e.tok = val, seq
	}
	st.noteObserved(c.id, addr, e.tok)
	if e.latCl != latHit {
		c.cache.fill(addr)
		c.m.store.touchLine(addr >> c.cache.lineShift)
	}
}

// ---------------------------------------------------------------- issue --

// Issue outcomes.  The hard/soft distinction powers the idle fast path: a
// hard block happened before any randomness was drawn and can only clear
// through one of this core's own timed events (a producer or barrier
// completing), so a cycle in which every fetched entry hard-blocks is
// exactly reproducible when skipped.  A soft block consumed RNG (or depends
// on state the scan cannot time), so the core must step every cycle.
const (
	issueOK   uint8 = iota // issued (or the machine failed)
	blockHard              // blocked before consuming RNG
	blockSoft              // blocked at or after the issue-jitter draw
)

// tryIssue attempts to issue entry e.  It returns issueOK if the entry
// issued, otherwise whether the block was hard or soft (a blocked entry
// does not consume an issue slot).
func (c *core) tryIssue(id int64, e *wentry, now int64,
	barrier, fullBarrier, loadBarrier, olderLoadPending, olderStoreAddrUnknown bool) uint8 {

	prof := c.m.prof
	in := e.in

	// A full barrier (dmb ish / hwsync / isb) stalls younger memory
	// accesses; any barrier stalls younger barriers (serialization).
	if fullBarrier && e.cls&clsMem != 0 {
		return blockHard
	}
	if barrier && e.cls&clsBarrier != 0 {
		return blockHard
	}
	if !c.prodReady(e.prod[0]) || !c.prodReady(e.prod[1]) {
		return blockHard
	}
	if in.ReadsFlags() && !c.prodReady(e.fprod) {
		return blockHard
	}
	if c.chooseBool(ChoiceIssueJitter, -1, prof.Pipe.IssueJitter) {
		return blockSoft
	}

	switch in.Op {
	case arch.Nop:
		e.state = stIssued
		e.readyAt = now + 1

	case arch.Work, arch.Halt:
		// Halts complete only at the head with an empty store buffer;
		// model that at retire by marking done here.
		e.state = stIssued
		e.readyAt = now + 1

	case arch.MovImm:
		e.val = in.Imm
		e.state, e.readyAt = stIssued, now+prof.Lat.ALU

	case arch.Mov:
		e.val = c.operandVal(id, in.Rn, e.prod[0])
		e.state, e.readyAt = stIssued, now+prof.Lat.ALU

	case arch.Add, arch.Sub, arch.And, arch.Orr, arch.Eor, arch.Mul:
		a := c.operandVal(id, in.Rn, e.prod[0])
		b := c.operandVal(id, in.Rm, e.prod[1])
		switch in.Op {
		case arch.Add:
			e.val = a + b
		case arch.Sub:
			e.val = a - b
		case arch.And:
			e.val = a & b
		case arch.Orr:
			e.val = a | b
		case arch.Eor:
			e.val = a ^ b
		case arch.Mul:
			e.val = a * b
		}
		lat := prof.Lat.ALU
		if in.Op == arch.Mul {
			lat = prof.Lat.Mul
		}
		e.state, e.readyAt = stIssued, now+lat

	case arch.AddImm, arch.SubImm, arch.Lsl, arch.Lsr, arch.SubsImm:
		a := c.operandVal(id, in.Rn, e.prod[0])
		switch in.Op {
		case arch.AddImm:
			e.val = a + in.Imm
		case arch.SubImm:
			e.val = a - in.Imm
		case arch.Lsl:
			e.val = a << uint(in.Imm)
		case arch.Lsr:
			e.val = int64(uint64(a) >> uint(in.Imm))
		case arch.SubsImm:
			e.val = a - in.Imm
			e.flagV = e.val
		}
		e.state, e.readyAt = stIssued, now+prof.Lat.ALU

	case arch.CmpImm:
		e.flagV = c.operandVal(id, in.Rn, e.prod[0]) - in.Imm
		e.state, e.readyAt = stIssued, now+prof.Lat.ALU

	case arch.Cmp:
		e.flagV = c.operandVal(id, in.Rn, e.prod[0]) - c.operandVal(id, in.Rm, e.prod[1])
		e.state, e.readyAt = stIssued, now+prof.Lat.ALU

	case arch.B:
		e.state, e.readyAt = stIssued, now+1

	case arch.Beq, arch.Bne, arch.Blt, arch.Bge:
		c.resolveBranch(id, e, now)

	case arch.Load, arch.LoadAcq, arch.LoadEx:
		return c.issueLoad(id, e, now, loadBarrier, olderStoreAddrUnknown)

	case arch.Store, arch.StoreRel:
		// Stores are "done" once address and data are known; the memory
		// effect happens at retire, through the store buffer.
		if !c.prodReady(e.prod[1]) {
			return blockSoft
		}
		e.addr = c.operandVal(id, in.Rn, e.prod[0]) + in.Imm
		if !c.checkAddr(e.addr) {
			return blockSoft
		}
		e.addrOK = true
		e.val = c.operandVal(id, in.Rd, e.prod[1])
		e.state, e.readyAt = stIssued, now+1

	case arch.StoreEx:
		return c.issueStoreEx(id, e, now)

	case arch.Barrier:
		return c.issueBarrier(id, e, now, olderLoadPending)

	default:
		c.m.fail(fmt.Errorf("core %d: unknown opcode %v at pc %d", c.id, in.Op, e.pc))
	}
	return issueOK
}

func (c *core) resolveBranch(id int64, e *wentry, now int64) {
	fp := e.fprod
	var fv int64
	if fp == noProd || fp < c.retireID {
		fv = c.flagV
	} else {
		fv = c.slot(fp).flagV
	}
	var taken bool
	switch e.in.Op {
	case arch.Beq:
		taken = fv == 0
	case arch.Bne:
		taken = fv != 0
	case arch.Blt:
		taken = fv < 0
	case arch.Bge:
		taken = fv >= 0
	}
	c.pred.update(e.pc, taken)
	e.state, e.readyAt = stIssued, now+1
	if taken == e.predTak {
		return
	}
	// A "mispredicted" branch whose actual target coincides with the path
	// fetch already took (e.g. a conditional branch to the next
	// instruction, as in the ctrl litmus shapes and the paper's ctrl
	// read_barrier_depends strategy) costs nothing: the fetched stream is
	// correct either way.
	actualNext := e.pc + 1
	if taken {
		actualNext = e.in.Target
	}
	predictedNext := e.pc + 1
	if e.predTak {
		predictedNext = e.in.Target
	}
	if actualNext == predictedNext {
		return
	}
	// Misprediction: squash everything younger and restart fetch.
	c.stats.Mispredicts++
	c.squashAfter(id)
	if taken {
		c.fetchPC = e.in.Target
	} else {
		c.fetchPC = e.pc + 1
	}
	c.fetchHalted = false
	c.fetchStallUntil = now + c.m.prof.Lat.Mispredict
}

// squashAfter removes all window entries younger than id and rebuilds the
// producer maps.
func (c *core) squashAfter(id int64) {
	c.stats.Squashes += uint64(c.nextID - id - 1)
	c.nextID = id + 1
	for i := range c.regProd {
		c.regProd[i] = noProd
	}
	c.flagProd = noProd
	c.nFetched = 0
	for i := c.retireID; i < c.nextID; i++ {
		e := c.slot(i)
		if e.state == stFetched {
			c.nFetched++
		}
		if rd, ok := e.in.Writes(); ok {
			c.regProd[rd] = i
		}
		if e.in.SetsFlags() {
			c.flagProd = i
		}
	}
}

// checkAddr reports whether addr is a valid memory address.  Out-of-range
// addresses block issue rather than failing the machine: instructions on a
// mispredicted path can compute arbitrary addresses and will be squashed; a
// genuinely bad program eventually trips the retirement watchdog instead.
func (c *core) checkAddr(addr int64) bool {
	return addr >= 0 && addr < int64(c.m.memWords)
}

func (c *core) issueLoad(id int64, e *wentry, now int64, loadBarrier, olderStoreAddrUnknown bool) uint8 {
	prof := c.m.prof
	if loadBarrier {
		return blockSoft
	}
	if olderStoreAddrUnknown {
		// No speculative memory disambiguation: wait until all older
		// store addresses are known.
		return blockSoft
	}
	addr := c.operandVal(id, e.in.Rn, e.prod[0]) + e.in.Imm
	if !c.checkAddr(addr) {
		return blockSoft
	}
	e.addr = addr
	e.addrOK = true

	if e.in.Op == arch.LoadAcq {
		// stlr→ldar (RCsc): an acquire load may not satisfy while a
		// release store from this core is still buffered, nor while an
		// older release store is still in the window awaiting retirement
		// (it will enter the buffer later; satisfying the load now would
		// order it before the release, which ARMv8 forbids — this is
		// what makes the ldar/stlr volatile mapping sequentially
		// consistent).
		for i := range c.sb {
			if c.sb[i].release {
				return blockSoft
			}
		}
		for i := c.retireID; i < id; i++ {
			if c.slot(i).in.Op == arch.StoreRel {
				return blockSoft
			}
		}
	}

	// Same-address ordering: loads to one location satisfy in program
	// order (preserves per-location coherence, CoRR).  An older load whose
	// address is not yet computable blocks this one: we do not speculate
	// on load-load disambiguation.
	for i := c.retireID; i < id; i++ {
		o := c.slot(i)
		if o.cls&clsLoad == 0 || o.state == stDone {
			continue
		}
		oaddr := o.addr
		if !o.addrOK {
			if !c.prodReady(o.prod[0]) {
				return blockSoft
			}
			oaddr = c.operandVal(i, o.in.Rn, o.prod[0]) + o.in.Imm
		}
		if oaddr == addr {
			return blockSoft
		}
	}

	if e.in.Op == arch.LoadEx {
		// Exclusive loads must read coherent memory so the monitor is
		// armed against the true coherence state: wait for any older
		// buffered store to the same address to drain first.
		for i := id - 1; i >= c.retireID; i-- {
			o := c.slot(i)
			if o.cls&clsStore != 0 && o.addrOK && o.addr == addr {
				return blockSoft
			}
		}
		for i := range c.sb {
			if !c.sb[i].fence && c.sb[i].addr == addr {
				return blockSoft
			}
		}
	} else {
		// Store-to-load forwarding: youngest older store to the same
		// address, in the window or the store buffer.
		for i := id - 1; i >= c.retireID; i-- {
			o := c.slot(i)
			if o.cls&clsStore == 0 || !o.addrOK || o.addr != addr {
				continue
			}
			if o.in.Op == arch.StoreEx {
				break // already committed to storage; read it from there
			}
			if o.state != stDone {
				return blockSoft // value not ready yet
			}
			e.val = o.val
			e.fwd = true
			e.tok = 0
			e.state, e.readyAt, e.latCl = stIssued, now+1, latFwd
			c.stats.Loads++
			return issueOK
		}
		for i := len(c.sb) - 1; i >= 0; i-- {
			s := &c.sb[i]
			if !s.fence && s.addr == addr {
				e.val = s.val
				e.fwd = true
				e.state, e.readyAt, e.latCl = stIssued, now+1, latFwd
				c.stats.Loads++
				return issueOK
			}
		}
	}

	lat := int64(0)
	if c.cache.probe(addr) {
		lat = prof.Lat.L1Hit
		e.latCl = latHit
		c.stats.L1Hits++
	} else {
		line := addr >> c.cache.lineShift
		if c.m.store.lineTouched(line) {
			lat = prof.Lat.L2Hit
			e.latCl = latL2
		} else {
			lat = prof.Lat.Mem
			e.latCl = latMem
		}
		lat += prof.Lat.L1Fill
		c.stats.L1Misses++
	}
	if e.in.Op == arch.LoadAcq {
		lat += prof.Lat.AcqIssue
	}
	// Bank-conflict / memory-scheduling jitter: a small random latency
	// component that both spreads repeated samples and perturbs the
	// relative satisfaction order of independent loads.
	if c.chooseBool(ChoiceLoadJitter, addr, prof.Pipe.IssueJitter*8) {
		lat += 1 + c.chooseIntn(ChoiceLoadJitterLat, addr, 4)
	}
	e.state, e.readyAt = stIssued, now+lat
	c.stats.Loads++
	return issueOK
}

func (c *core) issueStoreEx(id int64, e *wentry, now int64) uint8 {
	// Store-exclusives serialize: they perform their check-and-commit
	// atomically when they are the oldest un-retired instruction.
	if id != c.retireID {
		return blockSoft
	}
	// The exclusive commits to the coherent point directly, bypassing the
	// store buffer; it therefore may not run ahead of an ordering marker
	// (dmb ishst / lwsync) or a release store still buffered, or it would
	// reorder across an explicit fence.  Plain buffered stores may still
	// be bypassed — that is ordinary (architecturally allowed)
	// store-store reordering.
	for i := range c.sb {
		if c.sb[i].fence || c.sb[i].release {
			return blockSoft
		}
	}
	if !c.prodReady(e.prod[1]) {
		return blockSoft
	}
	addr := c.operandVal(id, e.in.Rn, e.prod[0]) + e.in.Imm
	if !c.checkAddr(addr) {
		return blockSoft
	}
	e.addr, e.addrOK = addr, true
	val := c.operandVal(id, e.in.Rm, e.prod[1])

	_, seq := c.m.store.readCoherent(addr)
	if c.monArmed && c.monAddr == addr && c.monSeq == seq {
		c.m.store.commitStore(c.id, addr, val, now)
		e.val = 0
		c.stats.Stores++
	} else {
		e.val = 1
	}
	c.monArmed = false
	e.state, e.readyAt = stIssued, now+c.m.prof.Lat.L1Hit+1
	return issueOK
}

func (c *core) issueBarrier(id int64, e *wentry, now int64, olderLoadPending bool) uint8 {
	prof := c.m.prof
	cost := prof.Lat.BarrierIssue[e.in.Kind]
	switch e.in.Kind {
	case arch.DMBIsh, arch.HwSync:
		if id != c.retireID || len(c.sb) != 0 {
			return blockSoft
		}
		if e.in.Kind == arch.HwSync {
			if ack := c.m.store.visibleAllBy(c.id); ack > now {
				return blockSoft
			}
		}
		e.state, e.readyAt = stIssued, now+cost

	case arch.DMBIshLd:
		if olderLoadPending {
			return blockSoft
		}
		e.state, e.readyAt = stIssued, now+cost

	case arch.LwSync:
		if olderLoadPending {
			return blockSoft
		}
		e.state, e.readyAt = stIssued, now+cost

	case arch.DMBIshSt:
		e.state, e.readyAt = stIssued, now+cost

	case arch.ISB:
		if id != c.retireID {
			return blockSoft
		}
		e.state, e.readyAt = stIssued, now+cost

	default:
		c.m.fail(fmt.Errorf("core %d: bad barrier kind %v", c.id, e.in.Kind))
	}
	return issueOK
}

// --------------------------------------------------------------- retire --

func (c *core) retire(now int64) {
	prof := c.m.prof
	for n := 0; n < prof.Pipe.RetireWidth && c.live() > 0; n++ {
		id := c.retireID
		e := c.slot(id)
		if e.state != stDone {
			return
		}
		in := e.in
		switch {
		case in.Op.IsStore() && in.Op != arch.StoreEx:
			if len(c.sb) >= prof.Pipe.SBDepth {
				return // store buffer full: stall retirement
			}
			// Ownership-acquisition time varies per line (directory
			// state, contention); the variance is what lets a younger
			// ready store drain past a stuck head.
			drain := prof.Lat.StoreDrain + c.chooseIntn(ChoiceStoreDrain, e.addr, prof.Lat.StoreDrain+1)
			c.sb = append(c.sb, sbEntry{
				addr: e.addr, val: e.val,
				ready:   now + drain,
				site:    in.Site,
				release: in.Op == arch.StoreRel,
			})
			c.stats.Stores++

		case in.Op == arch.Barrier:
			c.stats.Barriers++
			switch in.Kind {
			case arch.DMBIshSt, arch.LwSync:
				// Store-side ordering: later stores may not be
				// committed (or propagated) before earlier ones.
				c.sb = append(c.sb, sbEntry{fence: true})
			case arch.ISB:
				// Context synchronization: discard all speculative
				// work and restart fetch after the flush penalty.
				c.squashAfter(id)
				c.fetchPC = e.pc + 1
				c.fetchHalted = false
				c.fetchStallUntil = now + prof.Lat.ISBFlush
			}

		case in.Op == arch.Work:
			c.stats.Work += in.Imm
			if c.recordWork && len(c.stats.WorkTimes) < maxWorkTimes {
				c.stats.WorkTimes = append(c.stats.WorkTimes, now)
			}

		case in.Op == arch.Halt:
			if len(c.sb) != 0 {
				return // drain before halting
			}
			c.halted = true
			c.retireID++
			c.stats.Retired++
			c.retiredEver++
			c.lastRet = now
			return
		}

		if rd, ok := in.Writes(); ok {
			c.regs[rd] = e.val
			if c.regProd[rd] == id {
				c.regProd[rd] = noProd
			}
		}
		if in.SetsFlags() {
			c.flagV = e.flagV
			if c.flagProd == id {
				c.flagProd = noProd
			}
		}
		c.m.countSite(c.id, in.Site)
		if c.m.tracer != nil {
			c.emitTrace(now, e)
		}
		c.retireID++
		c.stats.Retired++
		c.retiredEver++
		c.lastRet = now
	}
}

// -------------------------------------------------------------- storebuf --

func (c *core) drainSB(now int64) {
	if len(c.sb) == 0 || now < c.nextCommitAt {
		return
	}
	// Pop leading fence markers for free.
	for len(c.sb) > 0 && c.sb[0].fence {
		c.m.store.fence(c.id)
		c.sb = c.sb[:copy(c.sb, c.sb[1:])]
	}
	if len(c.sb) == 0 {
		return
	}
	idx := 0
	if c.sb[0].ready > now {
		// The head store has not yet acquired its line.  A younger store
		// to a different line whose ownership is already held may commit
		// first (write combining / out-of-order drain) — this is the
		// store-store reordering that dmb ishst and lwsync forbid, which
		// the fence markers in the buffer prevent here.
		if len(c.sb) > 1 && c.sb[1].ready <= now &&
			!c.sb[0].release && !c.sb[1].release && !c.sb[1].fence &&
			c.sb[0].addr>>c.cache.lineShift != c.sb[1].addr>>c.cache.lineShift &&
			c.chooseBool(ChoiceSBCombine, c.sb[0].addr, storeCombinePermille) {
			idx = 1
			// The bypassed head stays stuck for a while longer (its
			// line is genuinely unavailable), which is what makes the
			// reordering externally observable.
			c.sb[0].ready = now + c.chooseRange(ChoiceSBStick, c.sb[0].addr, 20, 60)
		} else {
			return
		}
	}
	e := c.sb[idx]
	if e.release {
		// Release stores close the propagation group before committing
		// and reopen it after, so nothing moves across them.
		c.m.store.fence(c.id)
	}
	c.m.store.commitStore(c.id, e.addr, e.val, now)
	if e.release {
		c.m.store.fence(c.id)
	}
	c.sb = append(c.sb[:idx], c.sb[idx+1:]...)
	c.nextCommitAt = now + c.m.prof.Lat.StoreCommit
}

// storeCombinePermille is the probability (per mille) that the store buffer
// commits out of order across different cache lines when permitted.
const storeCombinePermille = 300

// maxWorkTimes bounds the per-core work-timestamp recording.
const maxWorkTimes = 8192
