package sim

// This file defines the machine's pluggable nondeterminism interface.
//
// Every random decision the simulator makes — issue jitter, load-latency
// jitter, store-drain variance, out-of-order store-buffer commits, and
// the per-destination propagation delays of non-MCA storage — flows
// through a small set of draw helpers.  By default the helpers fall
// through to the per-core (or per-storage) splitmix rng exactly as the
// code always has: a machine without a ChoiceSource is bit-identical to
// one built before this interface existed, including which cycles do and
// do not consume randomness (the idle fast paths depend on that).
//
// Installing a ChoiceSource reroutes every draw to the caller, which is
// what internal/explore builds on: the explorer resolves each Choice
// from a finite domain and enumerates the tree of resolutions, turning
// the sampling simulator into an exhaustive one.

// ChoiceKind identifies one class of nondeterminism point.
type ChoiceKind uint8

const (
	// ChoiceIssueJitter delays a ready instruction by one cycle
	// (bool; core scheduling noise).
	ChoiceIssueJitter ChoiceKind = iota
	// ChoiceLoadJitter adds a random latency component to a load
	// (bool; bank conflicts / memory scheduling).
	ChoiceLoadJitter
	// ChoiceLoadJitterLat is the extra load latency drawn when
	// ChoiceLoadJitter fired (int in [Lo,Hi]; the load pays 1+v).
	ChoiceLoadJitterLat
	// ChoiceStoreDrain is the extra line-ownership acquisition time of
	// a store entering the store buffer (int in [Lo,Hi]).
	ChoiceStoreDrain
	// ChoiceSBCombine commits a ready younger store past a stuck store
	// buffer head on a different line (bool; write combining).
	ChoiceSBCombine
	// ChoiceSBStick is how much longer a bypassed store-buffer head
	// stays stuck (int in [Lo,Hi]).
	ChoiceSBStick
	// ChoicePropDelay is the propagation delay of a committed store to
	// one destination core on non-MCA storage (int in [Lo,Hi]).
	ChoicePropDelay
	// ChoicePropTail decides whether one destination suffers a long
	// extra propagation delay (bool; line stuck in a remote cache).
	ChoicePropTail
	// ChoicePropTailExtra is the extra tail delay when ChoicePropTail
	// fired (int in [Lo,Hi]).
	ChoicePropTailExtra
)

var choiceKindNames = [...]string{
	ChoiceIssueJitter:   "issue-jitter",
	ChoiceLoadJitter:    "load-jitter",
	ChoiceLoadJitterLat: "load-jitter-lat",
	ChoiceStoreDrain:    "store-drain",
	ChoiceSBCombine:     "sb-combine",
	ChoiceSBStick:       "sb-stick",
	ChoicePropDelay:     "prop-delay",
	ChoicePropTail:      "prop-tail",
	ChoicePropTailExtra: "prop-tail-extra",
}

// String returns a short name for the kind.
func (k ChoiceKind) String() string {
	if int(k) < len(choiceKindNames) {
		return choiceKindNames[k]
	}
	return "choice(?)"
}

// Choice describes one nondeterminism point presented to a ChoiceSource.
type Choice struct {
	Kind ChoiceKind
	// Core is the deciding core (for propagation choices, the store's
	// source core).
	Core int
	// Dest is the destination core of a propagation choice; -1 for
	// core-local choices.
	Dest int
	// Addr is the memory address the choice concerns; -1 when the
	// choice is not address-specific (issue jitter).
	Addr int64
	// Lo and Hi bound integer choices (inclusive).  For boolean
	// choices both are zero.
	Lo, Hi int64
	// Permille is the probability of "true" for boolean choices, in
	// thousandths; informational for sources that want to reproduce
	// the default distribution.
	Permille int
}

// ChoiceSource resolves nondeterminism points.  BoolChoice answers
// boolean choices, IntChoice integer ones (the result must lie in
// [c.Lo, c.Hi]).  Implementations are called synchronously from the
// simulation loop and must be deterministic for reproducible runs.
type ChoiceSource interface {
	BoolChoice(c Choice) bool
	IntChoice(c Choice) int64
}

// SetChoiceSource installs a ChoiceSource (nil restores the seeded rng
// path).  Like a Tracer, the source survives Reset; with a source
// installed the machine's own rngs are never consulted, so the seed
// passed to New/Reset is irrelevant to execution.
func (m *Machine) SetChoiceSource(cs ChoiceSource) {
	m.choices = cs
	m.store.setChoices(cs)
}

// Draw helpers.  The nil path must match the historical rng calls
// *exactly*, including their no-draw guards: permille(p<=0) and
// rangeInt(hi<=lo) consume nothing, while intn always draws.  Sources
// that mirror the rng must replicate those guards (see choices_test.go).

func (c *core) chooseBool(kind ChoiceKind, addr int64, p int) bool {
	if cs := c.m.choices; cs != nil {
		return cs.BoolChoice(Choice{Kind: kind, Core: c.id, Dest: -1, Addr: addr, Permille: p})
	}
	return c.rnd.permille(p)
}

// chooseIntn draws from [0, n), like rng.intn.
func (c *core) chooseIntn(kind ChoiceKind, addr int64, n int64) int64 {
	if cs := c.m.choices; cs != nil {
		return cs.IntChoice(Choice{Kind: kind, Core: c.id, Dest: -1, Addr: addr, Lo: 0, Hi: n - 1})
	}
	return c.rnd.intn(n)
}

// chooseRange draws from [lo, hi], like rng.rangeInt.
func (c *core) chooseRange(kind ChoiceKind, addr int64, lo, hi int64) int64 {
	if cs := c.m.choices; cs != nil {
		return cs.IntChoice(Choice{Kind: kind, Core: c.id, Dest: -1, Addr: addr, Lo: lo, Hi: hi})
	}
	return c.rnd.rangeInt(lo, hi)
}

func (s *nonMCAStorage) chooseBool(kind ChoiceKind, core, dest int, addr int64, p int) bool {
	if cs := s.choices; cs != nil {
		return cs.BoolChoice(Choice{Kind: kind, Core: core, Dest: dest, Addr: addr, Permille: p})
	}
	return s.rnd.permille(p)
}

func (s *nonMCAStorage) chooseRange(kind ChoiceKind, core, dest int, addr int64, lo, hi int64) int64 {
	if cs := s.choices; cs != nil {
		return cs.IntChoice(Choice{Kind: kind, Core: core, Dest: dest, Addr: addr, Lo: lo, Hi: hi})
	}
	return s.rnd.rangeInt(lo, hi)
}

// XorShift64 is a tiny xorshift64 generator, exported for callers that
// need a cheap seeded auxiliary stream outside the machine itself (the
// litmus runner's alignment delays, the litmus generator).  The
// recurrence is the classic 13/7/17 triple; a zero seed (which would fix
// the stream at zero) is replaced by a nonzero constant.
type XorShift64 struct{ s uint64 }

// NewXorShift64 returns a generator seeded with seed.
func NewXorShift64(seed uint64) XorShift64 {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return XorShift64{s: seed}
}

// Next returns the next 64 random bits.
func (r *XorShift64) Next() uint64 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return r.s
}

// Intn returns a value in [0, n) by modulo reduction (n must be
// positive).  The slight bias is irrelevant for the delay streams this
// type serves and keeping the reduction trivial keeps streams stable.
func (r *XorShift64) Intn(n int64) int64 {
	return int64(r.Next() % uint64(n))
}
