// Package sim implements a cycle-approximate multicore simulator with a
// weak memory model.  It is the hardware substrate for the paper's
// experiments: per-core speculative issue windows, store buffers with
// forwarding, private caches with lazy invalidation (ARM-style
// multi-copy-atomic storage) or per-core propagation of committed stores
// (POWER-style non-multi-copy-atomic storage), branch prediction, an
// exclusive monitor for load/store-exclusive pairs, and the memory barriers
// of both ISAs.
//
// All nondeterminism flows from a single seed, so a run is reproducible;
// benchmark samples are produced by varying the seed.
package sim

// rng is a splitmix64 pseudo-random generator.  It is deliberately tiny and
// allocation-free; every core owns one, derived from the machine seed, so
// that per-core decisions (issue jitter, propagation delays) are stable
// under changes elsewhere.
type rng struct{ state uint64 }

func newRNG(seed uint64) rng {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return rng{state: seed}
}

// next returns the next 64 random bits.
func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a uniform value in [0, n).  n must be positive.
func (r *rng) intn(n int64) int64 {
	return int64(r.next() % uint64(n))
}

// rangeInt returns a uniform value in [lo, hi].
func (r *rng) rangeInt(lo, hi int64) int64 {
	if hi <= lo {
		return lo
	}
	return lo + r.intn(hi-lo+1)
}

// permille reports true with probability p/1000.
func (r *rng) permille(p int) bool {
	if p <= 0 {
		return false
	}
	return r.next()%1000 < uint64(p)
}
