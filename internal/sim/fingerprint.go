package sim

// Machine state fingerprinting for the exhaustive explorer
// (internal/explore): a 64-bit FNV-1a hash over everything that can
// influence the machine's future behaviour, with absolute times
// normalised to offsets from the current cycle so that runs reaching the
// same configuration at different cycles hash equal.
//
// What is included: architectural and microarchitectural core state
// (registers, flags, the live reorder-window entries with producer links
// re-based to the retire pointer, store buffers, fetch state, predictor
// tables, cache tags, the exclusive monitor), the loaded programs, the
// rotating step-order phase (now mod cores — the machine steps cores in
// an absolute-time-dependent order), and the storage subsystem (memory
// words with their commit sequences, per-core views, in-flight
// propagation events as an order-independent multiset, channel-group
// floors, acknowledgement clocks).
//
// What is deliberately excluded: statistics counters, work timestamps
// and the watchdog's retirement counter (they never feed back into
// execution), and the rng states (a fingerprinting caller has a
// ChoiceSource installed, so the rngs are never consulted).
//
// Time normalisation: times that only matter while they lie in the
// future (fetch stalls, idle wake-ups, visibility clocks, channel
// floors) are clamped to zero once past; times whose relative order
// among past values still matters (pending propagation arrivals, which
// bound partial deliveries) are kept as signed offsets.

const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

type fingerprinter struct{ h uint64 }

func (f *fingerprinter) word(v uint64) {
	h := f.h
	for i := 0; i < 8; i++ {
		h = (h ^ (v & 0xff)) * fnvPrime64
		v >>= 8
	}
	f.h = h
}

func (f *fingerprinter) i64(v int64) { f.word(uint64(v)) }

func (f *fingerprinter) bool(b bool) {
	if b {
		f.word(1)
	} else {
		f.word(0)
	}
}

// rel re-bases an absolute time, clamping past times to zero.
func rel(t, now int64) int64 {
	if t <= now {
		return 0
	}
	return t - now
}

// Fingerprint hashes the machine's current state.  Two machines with
// equal fingerprints evolve identically under identical future choice
// resolutions (up to 64-bit hash collisions, which the explorer accepts
// as model checkers conventionally do).
func (m *Machine) Fingerprint() uint64 {
	f := fingerprinter{h: fnvOffset64}
	now := m.now
	f.i64(now % int64(len(m.cores))) // rotating step-order phase
	if w := m.cfg.WarmupCycles; w > now {
		f.i64(w - now) // a pending stats reset alters nothing else; cheap to include
	}
	for _, c := range m.cores {
		c.fingerprint(&f, now)
	}
	switch st := m.store.(type) {
	case *mcaStorage:
		st.fingerprint(&f)
	case *nonMCAStorage:
		st.fingerprint(&f, now)
	}
	return f.h
}

func (c *core) fingerprint(f *fingerprinter, now int64) {
	f.bool(c.halted)
	if c.halted {
		return // architectural state of a halted core is frozen and externally invisible
	}
	f.bool(c.fetchHalted)
	f.i64(int64(c.fetchPC))
	f.i64(rel(c.fetchStallUntil, now))
	f.i64(rel(c.idleUntil, now))
	f.i64(rel(c.nextCommitAt, now))
	for _, v := range c.regs {
		f.i64(v)
	}
	f.i64(c.flagV)
	for _, p := range c.regProd {
		f.i64(c.normProd(p))
	}
	f.i64(c.normProd(c.flagProd))

	f.i64(c.nextID - c.retireID)
	for id := c.retireID; id < c.nextID; id++ {
		e := c.slot(id)
		f.word(uint64(e.state) | uint64(e.cls)<<8 | uint64(e.latCl)<<16)
		f.bool(e.predTak)
		f.bool(e.fwd)
		f.bool(e.addrOK)
		f.i64(int64(e.pc))
		fingerprintInstr(f, e)
		f.i64(e.readyAt - now)
		f.i64(e.val)
		f.i64(e.flagV)
		f.i64(e.addr)
		f.word(e.tok)
		f.i64(c.normProd(e.prod[0]))
		f.i64(c.normProd(e.prod[1]))
		f.i64(c.normProd(e.fprod))
	}

	f.i64(int64(len(c.sb)))
	for i := range c.sb {
		s := &c.sb[i]
		f.i64(s.addr)
		f.i64(s.val)
		f.i64(rel(s.ready, now))
		f.bool(s.release)
		f.bool(s.fence)
	}

	for _, b := range c.pred.table {
		f.word(uint64(b))
	}
	for _, t := range c.cache.tags {
		f.i64(t)
	}
	f.bool(c.monArmed)
	f.i64(c.monAddr)
	f.word(c.monSeq)

	f.i64(int64(len(c.prog)))
	for i := range c.prog {
		in := &c.prog[i]
		f.word(uint64(in.Op) | uint64(in.Rd)<<8 | uint64(in.Rn)<<16 | uint64(in.Rm)<<24 |
			uint64(in.Kind)<<32 | uint64(in.Site)<<40)
		f.i64(in.Imm)
		f.i64(int64(in.Target))
	}
}

// normProd re-bases a producer id: retired producers are architecturally
// equivalent to register-file reads, so they hash as noProd.
func (c *core) normProd(p int64) int64 {
	if p == noProd || p < c.retireID {
		return noProd
	}
	return p - c.retireID
}

func fingerprintInstr(f *fingerprinter, e *wentry) {
	in := &e.in
	f.word(uint64(in.Op) | uint64(in.Rd)<<8 | uint64(in.Rn)<<16 | uint64(in.Rm)<<24 |
		uint64(in.Kind)<<32 | uint64(in.Site)<<40)
	f.i64(in.Imm)
	f.i64(int64(in.Target))
}

func (s *mcaStorage) fingerprint(f *fingerprinter) {
	f.word(s.commit)
	for a := range s.mem {
		if s.mem[a] != 0 || s.seq[a] != 0 {
			f.i64(int64(a))
			f.i64(s.mem[a])
			f.word(s.seq[a])
		}
	}
	for _, b := range s.touch.bits {
		f.word(b)
	}
}

func (s *nonMCAStorage) fingerprint(f *fingerprinter, now int64) {
	f.word(s.commit)
	for a := range s.master {
		if s.master[a] != 0 || s.seq[a] != 0 {
			f.i64(int64(a))
			f.i64(s.master[a])
			f.word(s.seq[a])
			f.i64(rel(s.masterVis[a], now))
		}
	}
	for c := 0; c < s.cores; c++ {
		v, vs, vv := s.views[c], s.viewSeq[c], s.viewVis[c]
		for a := range v {
			if v[a] != 0 || vs[a] != 0 {
				f.i64(int64(a))
				f.i64(v[a])
				f.word(vs[a])
				f.i64(rel(vv[a], now))
			}
		}
		// In-flight propagation events, hashed as an order-independent
		// multiset: heap layout is not behaviour (delivery is bounded by
		// arrival time, and installs are idempotent by sequence), and
		// equal multisets can sit in different heap shapes.  Arrival
		// offsets stay signed: partial deliveries (observeExclusive)
		// are bounded by one event's arrival, so relative order among
		// past-due arrivals still matters.
		var sum, xor uint64
		for _, e := range s.queues[c].ev {
			ef := fingerprinter{h: fnvOffset64}
			ef.i64(e.arrive - now)
			ef.i64(e.addr)
			ef.i64(e.val)
			ef.word(e.seq)
			ef.i64(rel(e.visAll, now))
			sum += ef.h
			xor ^= ef.h
		}
		f.i64(int64(len(s.queues[c].ev)))
		f.word(sum)
		f.word(xor)
		for d := 0; d < s.cores; d++ {
			f.i64(rel(s.floor[c][d], now))
			f.i64(rel(s.cur[c][d], now))
		}
		f.i64(rel(s.readAck[c], now))
		f.i64(rel(s.ownAck[c], now))
	}
	for _, b := range s.touch.bits {
		f.word(b)
	}
}
