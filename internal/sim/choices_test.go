package sim

import (
	"fmt"
	"testing"

	"repro/internal/arch"
)

// mirrorSource is a ChoiceSource that re-derives the machine's own rng
// streams (base seed -> one draw per core -> one draw for non-MCA
// storage) and answers every Choice exactly as the nil path would,
// including the no-draw guards (permille(p<=0) and rangeInt(hi<=lo)
// consume nothing; the intn-backed kinds always draw).  Routing every
// draw through it must therefore be bit-identical to no source at all —
// the acceptance gate for the pluggable choice-source refactor.
type mirrorSource struct {
	cores []rng
	store rng
}

func newMirrorSource(prof *arch.Profile, cores int, seed int64) *mirrorSource {
	base := newRNG(uint64(seed))
	ms := &mirrorSource{cores: make([]rng, cores)}
	for i := range ms.cores {
		ms.cores[i] = newRNG(base.next())
	}
	if prof.Flavor == arch.NonMCA {
		ms.store = newRNG(base.next() ^ 0xabcdef12345)
	}
	return ms
}

func (ms *mirrorSource) rngFor(c Choice) *rng {
	switch c.Kind {
	case ChoicePropDelay, ChoicePropTail, ChoicePropTailExtra:
		return &ms.store
	default:
		return &ms.cores[c.Core]
	}
}

func (ms *mirrorSource) BoolChoice(c Choice) bool {
	return ms.rngFor(c).permille(c.Permille)
}

func (ms *mirrorSource) IntChoice(c Choice) int64 {
	r := ms.rngFor(c)
	switch c.Kind {
	case ChoiceLoadJitterLat, ChoiceStoreDrain:
		// These sites historically called intn, which draws even for a
		// single-value domain.
		return r.intn(c.Hi + 1)
	default:
		return r.rangeInt(c.Lo, c.Hi)
	}
}

// TestChoiceSourceEquivalence proves seeded simulation is bit-identical
// before and after the choice-source refactor: every scenario runs once
// with no source (the seeded rng path) and once with the rng-mirroring
// source, and the full snapshots must match bit for bit.  The slow-scan
// variant additionally pins that choice points line up with the idle
// fast paths' notion of draw opportunities.
func TestChoiceSourceEquivalence(t *testing.T) {
	for name, prof := range arch.Profiles() {
		for _, sc := range scenarios(prof) {
			for seed := int64(1); seed <= 9; seed += 4 {
				t.Run(fmt.Sprintf("%s/%s/seed%d", name, sc.name, seed), func(t *testing.T) {
					plain := runSnapshot(t, newMachine(t, prof, sc, seed), sc)

					mirrored := newMachine(t, prof, sc, seed)
					mirrored.SetChoiceSource(newMirrorSource(prof, sc.cores, seed))
					sourced := runSnapshot(t, mirrored, sc)
					diffSnapshots(t, "plain vs mirrored source", plain, sourced)

					debugForceSlowScan = true
					slowM := newMachine(t, prof, sc, seed)
					slowM.SetChoiceSource(newMirrorSource(prof, sc.cores, seed))
					slow := runSnapshot(t, slowM, sc)
					debugForceSlowScan = false
					diffSnapshots(t, "plain vs mirrored slow-scan", plain, slow)

					// Clearing the source restores the rng path untouched:
					// the machine's own rngs were never consulted while the
					// source was installed, so Reset + rerun reproduces the
					// plain run.
					mirrored.SetChoiceSource(nil)
					mirrored.Reset(seed)
					cleared := runSnapshot(t, mirrored, sc)
					diffSnapshots(t, "plain vs source-cleared reset", plain, cleared)
				})
			}
		}
	}
}

// TestFingerprintDeterminism pins the explorer's dedup primitive:
// identical runs fingerprint identically (including across Reset), and
// runs that end in different memory states do not.
func TestFingerprintDeterminism(t *testing.T) {
	for name, prof := range arch.Profiles() {
		sc := scenarios(prof)[1] // mp-fenced: two cores, stores + fences
		t.Run(name, func(t *testing.T) {
			a := newMachine(t, prof, sc, 3)
			runSnapshot(t, a, sc)
			fpA := a.Fingerprint()

			b := newMachine(t, prof, sc, 3)
			runSnapshot(t, b, sc)
			if fpB := b.Fingerprint(); fpB != fpA {
				t.Errorf("identical runs fingerprint differently: %#x vs %#x", fpA, fpB)
			}

			b.Reset(3)
			runSnapshot(t, b, sc)
			if fpB := b.Fingerprint(); fpB != fpA {
				t.Errorf("reset run fingerprints differently: %#x vs %#x", fpA, fpB)
			}

			b.Reset(3)
			b.WriteMem(900, 77) // perturb memory only
			sc2 := sc
			sc2.mem = 0 // skip snapshot mem diff; we only want the run
			runSnapshot(t, b, sc2)
			if fpB := b.Fingerprint(); fpB == fpA {
				t.Errorf("distinct memory states share fingerprint %#x", fpA)
			}
		})
	}
}

// TestXorShift64 pins the exported stream against the recurrence the
// litmus runner historically inlined, and the zero-seed guard.
func TestXorShift64(t *testing.T) {
	for _, seed := range []uint64{1, 2, 0x9e3779b9 + 1, 12345678901234567} {
		r := NewXorShift64(seed)
		s := seed
		for i := 0; i < 10_000; i++ {
			s ^= s << 13
			s ^= s >> 7
			s ^= s << 17
			if got := r.Next(); got != s {
				t.Fatalf("seed %d draw %d: got %#x want %#x", seed, i, got, s)
			}
		}
	}
	z := NewXorShift64(0)
	if z.Next() == 0 {
		t.Error("zero seed was not replaced; stream is stuck at zero")
	}
	r := NewXorShift64(7)
	saw := map[int64]bool{}
	for i := 0; i < 1000; i++ {
		v := r.Intn(120)
		if v < 0 || v >= 120 {
			t.Fatalf("Intn out of range: %d", v)
		}
		saw[v] = true
	}
	if len(saw) < 60 {
		t.Errorf("Intn(120) covered only %d values in 1000 draws", len(saw))
	}
}
