package sim

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/arch"
)

// scenario is a reusable machine workload for equivalence testing: it
// covers the subsystems whose state Reset must restore and whose cycles the
// idle fast paths may skip (ALU chains, spin loops, fences, store buffers,
// exclusives, warmup accounting).
type scenario struct {
	name   string
	cores  int
	mem    int
	warmup int64
	record bool
	max    int64
	load   func(t *testing.T, m *Machine)
}

func scenarios(prof *arch.Profile) []scenario {
	full := arch.DMBIsh
	stFence := arch.DMBIshSt
	if prof.Flavor == arch.NonMCA {
		full = arch.HwSync
		stFence = arch.LwSync
	}
	return []scenario{
		{name: "alu-loop", cores: 1, mem: 1024, max: 1_000_000,
			load: func(t *testing.T, m *Machine) {
				b := arch.NewBuilder()
				b.MovImm(0, 0)
				b.MovImm(1, 500)
				b.Label("loop")
				b.Add(0, 0, 1)
				b.Mul(2, 0, 1)
				b.SubsImm(1, 1, 1)
				b.Bne("loop")
				b.Store(0, 3, 10)
				b.Halt()
				mustLoad(t, m, 0, b.MustBuild())
			}},
		{name: "mp-fenced", cores: 2, mem: 1024, max: 2_000_000,
			load: func(t *testing.T, m *Machine) {
				w := arch.NewBuilder()
				w.MovImm(0, 1)
				w.Store(0, 1, 0)
				w.Fence(full)
				w.Store(0, 1, 64)
				w.Halt()
				r := arch.NewBuilder()
				r.Label("spin")
				r.Load(2, 1, 64)
				r.CmpImm(2, 1)
				r.Bne("spin")
				r.Fence(full)
				r.Load(3, 1, 0)
				r.Store(3, 1, 128)
				r.Halt()
				mustLoad(t, m, 0, w.MustBuild())
				mustLoad(t, m, 1, r.MustBuild())
			}},
		{name: "contended-exclusives", cores: 4, mem: 2048, max: 4_000_000,
			load: func(t *testing.T, m *Machine) {
				for c := 0; c < 4; c++ {
					b := arch.NewBuilder()
					b.MovImm(5, 20) // iterations
					b.Label("again")
					b.Label("acq")
					b.LoadEx(0, 1, 0)
					b.CmpImm(0, 0)
					b.Bne("acq")
					b.MovImm(0, 1)
					b.StoreEx(2, 0, 1, 0)
					b.CmpImm(2, 0)
					b.Bne("acq")
					b.Load(3, 1, 8)
					b.AddImm(3, 3, 1)
					b.Store(3, 1, 8)
					b.Fence(stFence)
					b.MovImm(0, 0)
					b.StoreRel(0, 1, 0)
					b.SubsImm(5, 5, 1)
					b.Bne("again")
					b.Halt()
					mustLoad(t, m, c, b.MustBuild())
				}
			}},
		// Dependent load chains hard-block the window while fetch keeps
		// adding independent instructions until it fills: the cycle where
		// the scan proves all-hard but fetch then inserts an issueable
		// entry is exactly where a stale hard-block proof would let the
		// fast path skip an RNG draw.
		{name: "dep-chase-fill", cores: 2, mem: 2048, max: 2_000_000,
			load: func(t *testing.T, m *Machine) {
				for c := 0; c < 2; c++ {
					b := arch.NewBuilder()
					b.MovImm(2, int64(c*128))
					b.MovImm(5, 300)
					b.Label("loop")
					for k := 0; k < 6; k++ {
						b.Load(2, 2, 0)
					}
					b.MovImm(7, 42)
					b.Store(7, 1, int64(c*64+32))
					b.SubsImm(5, 5, 1)
					b.Bne("loop")
					b.Halt()
					mustLoad(t, m, c, b.MustBuild())
				}
			}},
		{name: "warmup-work", cores: 2, mem: 1024, warmup: 5_000, record: true, max: 40_000,
			load: func(t *testing.T, m *Machine) {
				for c := 0; c < 2; c++ {
					b := arch.NewBuilder()
					b.MovImm(0, 0)
					b.Label("loop")
					b.Work(1)
					b.Load(2, 1, int64(c*64))
					b.AddImm(2, 2, 3)
					b.Store(2, 1, int64(c*64))
					b.Fence(stFence)
					b.AddImm(0, 0, 1)
					b.B("loop")
					mustLoad(t, m, c, b.MustBuild())
				}
			}},
	}
}

// snapshot captures everything observable about a finished run.
type snapshot struct {
	res   Result
	err   string
	cores []CoreStats
	works [][]int64
	sites []uint64
	mem   []int64
	regs  [][arch.NumRegs]int64
}

func runSnapshot(t *testing.T, m *Machine, sc scenario) snapshot {
	t.Helper()
	sc.load(t, m)
	res, err := m.Run(sc.max)
	s := snapshot{res: res}
	if err != nil {
		s.err = err.Error()
	}
	s.cores = append([]CoreStats(nil), res.Cores...)
	for i := range s.cores {
		s.works = append(s.works, append([]int64(nil), s.cores[i].WorkTimes...))
		s.cores[i].WorkTimes = nil
	}
	s.sites = append([]uint64(nil), res.SiteCounts...)
	s.res.Cores, s.res.SiteCounts = nil, nil
	for a := int64(0); a < int64(sc.mem); a++ {
		s.mem = append(s.mem, m.ReadMem(a))
	}
	for c := 0; c < sc.cores; c++ {
		var r [arch.NumRegs]int64
		for i := 0; i < int(arch.NumRegs); i++ {
			r[i] = m.Reg(c, arch.Reg(i))
		}
		s.regs = append(s.regs, r)
	}
	return s
}

func diffSnapshots(t *testing.T, label string, want, got snapshot) {
	t.Helper()
	if !reflect.DeepEqual(want, got) {
		t.Errorf("%s: snapshots differ\nwant result %+v err %q cores %+v\ngot  result %+v err %q cores %+v",
			label, want.res, want.err, want.cores, got.res, got.err, got.cores)
	}
}

func newMachine(t *testing.T, prof *arch.Profile, sc scenario, seed int64) *Machine {
	t.Helper()
	m, err := New(prof, Config{
		Cores: sc.cores, MemWords: sc.mem, Seed: seed,
		WarmupCycles: sc.warmup, RecordWork: sc.record,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return m
}

// TestFastPathEquivalence proves the idle fast paths (hard-block idling and
// the machine-level cycle jump) change nothing observable: every scenario
// is run with the fast paths disabled and enabled and the full snapshots
// (cycles, stats, work times, site counts, memory, registers, errors) must
// match bit for bit.
func TestFastPathEquivalence(t *testing.T) {
	for name, prof := range arch.Profiles() {
		for _, sc := range scenarios(prof) {
			for seed := int64(1); seed <= 9; seed += 4 {
				t.Run(fmt.Sprintf("%s/%s/seed%d", name, sc.name, seed), func(t *testing.T) {
					debugForceSlowScan = true
					slow := runSnapshot(t, newMachine(t, prof, sc, seed), sc)
					debugForceSlowScan = false
					fast := runSnapshot(t, newMachine(t, prof, sc, seed), sc)
					diffSnapshots(t, "slow vs fast", slow, fast)
				})
			}
		}
	}
}

// TestResetMatchesNew proves a Reset machine is indistinguishable from a
// fresh one: after a dirty run with a different seed and scenario, Reset +
// rerun must reproduce the fresh machine's snapshot bit for bit, on both
// storage models.
func TestResetMatchesNew(t *testing.T) {
	for name, prof := range arch.Profiles() {
		scs := scenarios(prof)
		for i, sc := range scs {
			for seed := int64(2); seed <= 10; seed += 4 {
				t.Run(fmt.Sprintf("%s/%s/seed%d", name, sc.name, seed), func(t *testing.T) {
					fresh := runSnapshot(t, newMachine(t, prof, sc, seed), sc)

					// Dirty a machine of the same config with a different
					// seed on a different program, then Reset and rerun.
					reused := newMachine(t, prof, sc, seed+977)
					dirty := scs[(i+1)%len(scs)]
					if dirty.cores > sc.cores || dirty.mem > sc.mem {
						dirty = sc
					}
					dirty.load(t, reused)
					if _, err := reused.Run(50_000); err != nil {
						t.Fatalf("dirty run: %v", err)
					}
					reused.Reset(seed)
					again := runSnapshot(t, reused, sc)
					diffSnapshots(t, "fresh vs reset", fresh, again)

					// A second Reset with the same seed reproduces again.
					reused.Reset(seed)
					third := runSnapshot(t, reused, sc)
					diffSnapshots(t, "reset vs reset", fresh, third)
				})
			}
		}
	}
}

// TestWarmupResetsAllCounters pins satellite semantics: every CoreStats
// counter covers the post-warmup window, while SiteCounts covers the whole
// run.
func TestWarmupResetsAllCounters(t *testing.T) {
	prof := arch.ARMv8()
	build := func() arch.Program {
		b := arch.NewBuilder()
		b.SetSite(arch.PathID(3))
		b.MovImm(0, 0)
		b.Label("loop")
		b.Work(1)
		b.Load(2, 1, 0)
		b.Store(2, 1, 0)
		b.AddImm(0, 0, 1)
		b.B("loop")
		return b.MustBuild()
	}
	warm, err := New(prof, Config{Cores: 1, MemWords: 256, Seed: 5, WarmupCycles: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	if err := warm.LoadProgram(0, build()); err != nil {
		t.Fatal(err)
	}
	resWarm, err := warm.Run(20_000)
	if err != nil {
		t.Fatal(err)
	}

	cold, err := New(prof, Config{Cores: 1, MemWords: 256, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := cold.LoadProgram(0, build()); err != nil {
		t.Fatal(err)
	}
	resCold, err := cold.Run(20_000)
	if err != nil {
		t.Fatal(err)
	}

	w, c := resWarm.Cores[0], resCold.Cores[0]
	if w.Retired == 0 || w.Loads == 0 || w.Stores == 0 {
		t.Fatalf("warmup run recorded no post-warmup activity: %+v", w)
	}
	// The warmed run's measurement window is half the cold run's cycles;
	// each counter must reflect only that window, so it must be strictly
	// below the cold run's total.
	if w.Retired >= c.Retired || w.Loads >= c.Loads || w.Stores >= c.Stores {
		t.Errorf("warmup did not reset counters: warm %+v vs cold %+v", w, c)
	}
	// SiteCounts accumulates over the whole run: the warmed machine's
	// count matches its full-run retirement, not the window.
	if len(resWarm.SiteCounts) <= 3 || resWarm.SiteCounts[3] <= w.Retired/8 {
		t.Errorf("SiteCounts should cover the whole run: %v (window stats %+v)", resWarm.SiteCounts, w)
	}
}

// TestCountSiteGrowth pins the geometric growth policy: interleaved high
// and low site ids must not re-copy the table on every high-site access,
// and counts must stay exact.
func TestCountSiteGrowth(t *testing.T) {
	m := &Machine{}
	const high = 1000
	for i := 0; i < 200; i++ {
		m.countSite(0, arch.PathID(1+i%2))
		m.countSite(0, arch.PathID(high-i))
	}
	if got := m.siteCounts[1] + m.siteCounts[2]; got != 200 {
		t.Errorf("low-site counts = %d, want 200", got)
	}
	var sum uint64
	for s := high - 199; s <= high; s++ {
		sum += m.siteCounts[s]
	}
	if sum != 200 {
		t.Errorf("high-site counts = %d, want 200", sum)
	}
	if len(m.siteCounts) > 4*high {
		t.Errorf("growth overshot: len=%d", len(m.siteCounts))
	}
	// Growth is geometric: growing one element at a time from a large
	// table must at least double it.
	before := len(m.siteCounts)
	m.countSite(0, arch.PathID(before))
	if len(m.siteCounts) < 2*before {
		t.Errorf("growth not geometric: %d -> %d", before, len(m.siteCounts))
	}
}

// TestResultReusesBacking pins the zero-alloc contract: consecutive runs of
// a reused machine return Results whose Cores share backing storage.
func TestResultReusesBacking(t *testing.T) {
	prof := arch.ARMv8()
	sc := scenarios(prof)[0]
	m := newMachine(t, prof, sc, 1)
	sc.load(t, m)
	res1, err := m.Run(sc.max)
	if err != nil {
		t.Fatal(err)
	}
	m.Reset(2)
	sc.load(t, m)
	res2, err := m.Run(sc.max)
	if err != nil {
		t.Fatal(err)
	}
	if &res1.Cores[0] != &res2.Cores[0] {
		t.Error("Result.Cores was reallocated across a Reset-reuse cycle")
	}
}
