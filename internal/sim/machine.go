package sim

import (
	"errors"
	"fmt"

	"repro/internal/arch"
)

// Config parameterises a Machine.
type Config struct {
	// Cores is the number of hardware threads (max 64).
	Cores int
	// MemWords is the size of the simulated memory in 64-bit words.
	MemWords int
	// Seed drives all nondeterminism in the run.
	Seed int64
	// WarmupCycles, when positive, resets every per-core counter at that
	// cycle so throughput is measured over the steady state only.  All
	// CoreStats fields therefore cover the measurement window
	// [WarmupCycles, Cycles), matching EffectiveCycles.  SiteCounts is the
	// exception: it accumulates over the whole run, because invocation
	// counting (the §3 counters experiment) wants totals, not rates.
	WarmupCycles int64
	// RecordWork retains per-core retirement timestamps of Work
	// instructions (bounded), for response-time benchmarks.
	RecordWork bool
}

// Result reports the outcome of a run.
//
// Cores and SiteCounts alias machine-owned storage so that repeated runs of
// a reused machine allocate nothing: they are valid until the machine's next
// Run or Reset.  Callers that need the data beyond that must copy it.
// CoreStats counters cover the measurement window (after WarmupCycles);
// SiteCounts covers the whole run.
type Result struct {
	Cycles          int64 // total cycles simulated
	EffectiveCycles int64 // cycles after the warmup boundary
	Cores           []CoreStats
	TotalWork       int64
	SiteCounts      []uint64 // retired-instruction counts per code path
	AllHalted       bool
}

// WorkPerNs returns throughput in work units per simulated nanosecond.
func (r Result) WorkPerNs(p *arch.Profile) float64 {
	if r.EffectiveCycles <= 0 {
		return 0
	}
	return float64(r.TotalWork) / p.CyclesToNs(r.EffectiveCycles)
}

// Machine is a multicore weak-memory simulator instance.  A Machine is used
// for one run at a time: construct (or Reset), load programs, run, inspect.
// Reset returns it to the exact state New produces, so drivers can reuse
// one machine per (profile, config) across samples instead of reallocating.
type Machine struct {
	prof     *arch.Profile
	cfg      Config
	cores    []*core
	store    storage
	memWords int
	now      int64
	err      error

	siteCounts []uint64
	resCores   []CoreStats // reused backing for Result.Cores
	warmStart  int64
	tracer     Tracer
	choices    ChoiceSource
}

// watchdogCycles is the number of cycles without any retirement after which
// the machine declares itself deadlocked (a simulator or program bug).
const watchdogCycles = 100_000

// New constructs a machine for the given profile.
func New(prof *arch.Profile, cfg Config) (*Machine, error) {
	if err := prof.Validate(); err != nil {
		return nil, err
	}
	if cfg.Cores < 1 || cfg.Cores > 64 {
		return nil, fmt.Errorf("sim: core count %d outside [1,64]", cfg.Cores)
	}
	if cfg.MemWords < prof.LineWords {
		return nil, fmt.Errorf("sim: memory of %d words is smaller than one line", cfg.MemWords)
	}
	m := &Machine{prof: prof, cfg: cfg, memWords: cfg.MemWords}
	caches := make([]*l1, cfg.Cores)
	m.cores = make([]*core, cfg.Cores)
	base := newRNG(uint64(cfg.Seed))
	for i := range m.cores {
		m.cores[i] = newCore(i, m, base.next())
		caches[i] = m.cores[i].cache
		m.cores[i].recordWork = cfg.RecordWork
	}
	if prof.Flavor == arch.MCA {
		m.store = newMCAStorage(cfg.MemWords, prof.LineWords, caches)
	} else {
		m.store = newNonMCAStorage(cfg.MemWords, prof.LineWords, cfg.Cores,
			prof.Lat.PropMin, prof.Lat.PropMax, prof.Lat.PropTail, base.next(), caches)
	}
	return m, nil
}

// Prof returns the machine's architecture profile.
func (m *Machine) Prof() *arch.Profile { return m.prof }

// Now returns the current simulation cycle (mid-run it is the cycle
// being stepped; after Run it matches Result.Cycles).
func (m *Machine) Now() int64 { return m.now }

// Reset returns the machine to the state New would produce for the same
// profile and config with the given seed, retaining every allocation
// (window entries, store buffers, propagation heaps, views, site counts).
// Programs are unloaded, exactly as after New; callers reload with
// LoadProgram.  A run on a Reset machine is bit-identical to a run on a
// fresh one: the RNG re-derivation below mirrors New's draw order (base,
// then one draw per core, then — on non-MCA profiles only — one draw for
// the storage subsystem).  Any Result obtained from the machine earlier
// aliases machine-owned memory and is invalidated.
func (m *Machine) Reset(seed int64) {
	m.cfg.Seed = seed
	m.now, m.err, m.warmStart = 0, nil, 0
	for i := range m.siteCounts {
		m.siteCounts[i] = 0
	}
	base := newRNG(uint64(seed))
	for _, c := range m.cores {
		c.reset(base.next())
	}
	if m.prof.Flavor == arch.MCA {
		m.store.reset(0)
	} else {
		m.store.reset(base.next())
	}
}

// LoadProgram installs prog on the given core.  Branch targets must lie
// within the program.
func (m *Machine) LoadProgram(coreID int, prog arch.Program) error {
	if coreID < 0 || coreID >= len(m.cores) {
		return fmt.Errorf("sim: core %d out of range", coreID)
	}
	for i, in := range prog.Code {
		if in.Op.IsBranch() && (in.Target < 0 || int(in.Target) >= len(prog.Code)) {
			return fmt.Errorf("sim: instruction %d branches to %d, outside program of %d", i, in.Target, len(prog.Code))
		}
	}
	m.cores[coreID].prog = prog.Code
	return nil
}

// SetReg initialises a register before the run.
func (m *Machine) SetReg(coreID int, r arch.Reg, v int64) {
	m.cores[coreID].regs[r] = v
}

// Reg reads an architectural register (typically after the run).
func (m *Machine) Reg(coreID int, r arch.Reg) int64 {
	return m.cores[coreID].regs[r]
}

// WriteMem initialises a memory word before the run.
func (m *Machine) WriteMem(addr, val int64) {
	if addr < 0 || addr >= int64(m.memWords) {
		panic(fmt.Sprintf("sim: WriteMem address %d out of range", addr))
	}
	m.store.write(addr, val)
}

// ReadMem reads the coherent (master) value of a memory word.
func (m *Machine) ReadMem(addr int64) int64 { return m.store.read(addr) }

// PreTouch marks the line containing addr as resident in the outer cache
// hierarchy, so the first access costs L2 rather than memory latency.  Use
// it to model warmed-up memory (litmus harnesses, steady-state benchmarks).
func (m *Machine) PreTouch(addr int64) {
	if addr < 0 || addr >= int64(m.memWords) {
		panic(fmt.Sprintf("sim: PreTouch address %d out of range", addr))
	}
	m.store.touchLine(addr >> m.cores[0].cache.lineShift)
}

func (m *Machine) fail(err error) {
	if m.err == nil {
		m.err = err
	}
}

func (m *Machine) countSite(_ int, site arch.PathID) {
	if site == arch.PathNone {
		return
	}
	if int(site) >= len(m.siteCounts) {
		// Grow geometrically: interleaved accesses to high and low site
		// ids must not re-copy the table on every high-site retirement.
		newLen := 2 * len(m.siteCounts)
		if newLen < int(site)+16 {
			newLen = int(site) + 16
		}
		grown := make([]uint64, newLen)
		copy(grown, m.siteCounts)
		m.siteCounts = grown
	}
	m.siteCounts[site]++
}

// ErrDeadlock is returned when no core makes progress for watchdogCycles.
var ErrDeadlock = errors.New("sim: machine deadlocked (no retirement progress)")

// Run simulates up to maxCycles cycles, stopping early when every core has
// executed its Halt.  Cores are stepped in a rotating order so that no core
// is systematically favoured in same-cycle races.
func (m *Machine) Run(maxCycles int64) (Result, error) {
	n := len(m.cores)
	lastProgressCheck := int64(0)
	lastRetiredSum := uint64(0)
	for m.now = 0; m.now < maxCycles; m.now++ {
		if m.cfg.WarmupCycles > 0 && m.now == m.cfg.WarmupCycles {
			m.resetWorkCounters()
		}
		allHalted := true
		skipTo := int64(1) << 62
		start := int(m.now) % n
		for i := 0; i < n; i++ {
			c := m.cores[(start+i)%n]
			if !c.halted {
				allHalted = false
				c.step(m.now)
				// A core that stepped without re-idling has idleUntil <=
				// now (step returns early otherwise), which blocks the
				// jump below, as it must.
				if c.idleUntil < skipTo {
					skipTo = c.idleUntil
				}
			}
		}
		if m.err != nil {
			return m.result(false), m.err
		}
		if allHalted {
			m.now++
			return m.result(true), nil
		}
		if m.now-lastProgressCheck >= watchdogCycles {
			var sum uint64
			for _, c := range m.cores {
				sum += c.retiredEver
			}
			if sum == lastRetiredSum {
				return m.result(false), fmt.Errorf("%w at cycle %d", ErrDeadlock, m.now)
			}
			lastRetiredSum = sum
			lastProgressCheck = m.now
		}
		// When every live core is idle past the next cycle, nothing can
		// happen until the earliest wake time: jump straight there.  The
		// jump is exact — skipped cycles are ones in which every core's
		// step() would have returned immediately — but may not cross the
		// warmup boundary or a watchdog checkpoint, which act at specific
		// cycles, and stays within maxCycles.
		if skipTo > m.now+1 && !debugForceSlowScan {
			if m.cfg.WarmupCycles > 0 && m.now < m.cfg.WarmupCycles && skipTo > m.cfg.WarmupCycles {
				skipTo = m.cfg.WarmupCycles
			}
			if next := lastProgressCheck + watchdogCycles; skipTo > next {
				skipTo = next
			}
			if skipTo > maxCycles {
				skipTo = maxCycles
			}
			if skipTo > m.now+1 {
				m.now = skipTo - 1
			}
		}
	}
	return m.result(false), nil
}

// resetWorkCounters zeroes every per-core counter at the warmup boundary,
// so all of CoreStats covers the measurement window only (retiredEver, the
// watchdog's progress counter, deliberately survives).  SiteCounts is not
// touched: it accumulates over the whole run.
func (m *Machine) resetWorkCounters() {
	m.warmStart = m.now
	for _, c := range m.cores {
		wt := c.stats.WorkTimes[:0]
		c.stats = CoreStats{WorkTimes: wt}
		// A core idling through the boundary had its skipped full-window
		// stalls credited before the zeroing; re-credit the cycles that
		// fall inside the measurement window ([m.now, idleUntil)), which is
		// what a non-idling run would count after the reset.
		if c.idleFullStall && c.idleUntil > m.now {
			from := m.now
			if c.fetchStallUntil > from {
				from = c.fetchStallUntil
			}
			if c.idleUntil > from {
				c.stats.StallFull = uint64(c.idleUntil - from)
			}
		}
	}
}

func (m *Machine) result(halted bool) Result {
	if m.resCores == nil {
		m.resCores = make([]CoreStats, len(m.cores))
	}
	res := Result{
		Cycles:          m.now,
		EffectiveCycles: m.now - m.warmStart,
		Cores:           m.resCores,
		SiteCounts:      m.siteCounts,
		AllHalted:       halted,
	}
	for i, c := range m.cores {
		res.Cores[i] = c.stats
		res.TotalWork += c.stats.Work
	}
	return res
}
