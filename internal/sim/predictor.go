package sim

// predictor is a per-core table of 2-bit saturating counters indexed by a
// hash of the branch PC.  Small tables alias under large instruction
// footprints, which reproduces the paper's observation (§4.3.1) that the
// "ctrl" read_barrier_depends strategy costs little in microbenchmarks
// (where the extra branch trains perfectly) but noticeably more in
// macrobenchmarks (where predictor pressure causes mispredicts).
type predictor struct {
	table []uint8
	mask  uint32
}

func newPredictor(bits uint) *predictor {
	if bits == 0 {
		bits = 6
	}
	size := uint32(1) << bits
	t := make([]uint8, size)
	for i := range t {
		// Weakly not-taken: forward branches (e.g. the exit tests of the
		// ctrl litmus shapes) speculate through on first encounter, as
		// static not-taken prediction would; loops train within one
		// iteration.
		t[i] = 1
	}
	return &predictor{table: t, mask: size - 1}
}

// reset restores the weakly-not-taken initial state of every counter.
func (p *predictor) reset() {
	for i := range p.table {
		p.table[i] = 1
	}
}

func (p *predictor) index(pc int32) uint32 {
	h := uint32(pc) * 2654435761
	return (h >> 4) & p.mask
}

// predict reports whether the branch at pc is predicted taken.
func (p *predictor) predict(pc int32) bool {
	return p.table[p.index(pc)] >= 2
}

// update trains the counter for pc with the actual outcome.
func (p *predictor) update(pc int32, taken bool) {
	i := p.index(pc)
	c := p.table[i]
	if taken {
		if c < 3 {
			p.table[i] = c + 1
		}
	} else if c > 0 {
		p.table[i] = c - 1
	}
}
