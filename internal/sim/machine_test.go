package sim

import (
	"testing"

	"repro/internal/arch"
)

func newTestMachine(t *testing.T, prof *arch.Profile, cores, memWords int, seed int64) *Machine {
	t.Helper()
	m, err := New(prof, Config{Cores: cores, MemWords: memWords, Seed: seed})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return m
}

func mustLoad(t *testing.T, m *Machine, core int, p arch.Program) {
	t.Helper()
	if err := m.LoadProgram(core, p); err != nil {
		t.Fatalf("LoadProgram: %v", err)
	}
}

func run(t *testing.T, m *Machine, max int64) Result {
	t.Helper()
	res, err := m.Run(max)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

// TestSingleCoreALULoop checks that a basic counted loop computes the right
// value and halts.
func TestSingleCoreALULoop(t *testing.T) {
	for name, prof := range arch.Profiles() {
		t.Run(name, func(t *testing.T) {
			b := arch.NewBuilder()
			b.MovImm(0, 0)   // r0 = sum
			b.MovImm(1, 100) // r1 = counter
			b.Label("loop")
			b.Add(0, 0, 1)     // sum += counter
			b.SubsImm(1, 1, 1) // counter--
			b.Bne("loop")
			b.Store(0, 2, 10) // mem[r2+10] = sum
			b.Halt()
			m := newTestMachine(t, prof, 1, 1024, 1)
			m.SetReg(0, 2, 0)
			mustLoad(t, m, 0, b.MustBuild())
			res := run(t, m, 1_000_000)
			if !res.AllHalted {
				t.Fatalf("did not halt in %d cycles", res.Cycles)
			}
			if got := m.ReadMem(10); got != 5050 {
				t.Errorf("sum = %d, want 5050", got)
			}
		})
	}
}

// TestStoreLoadSameCore checks basic program-order store→load consistency
// (forwarding from the store buffer and window).
func TestStoreLoadSameCore(t *testing.T) {
	for name, prof := range arch.Profiles() {
		t.Run(name, func(t *testing.T) {
			b := arch.NewBuilder()
			b.MovImm(0, 42)
			b.Store(0, 1, 0) // mem[0] = 42
			b.Load(2, 1, 0)  // r2 = mem[0]
			b.Store(2, 1, 8) // mem[8] = r2
			b.Halt()
			m := newTestMachine(t, prof, 1, 1024, 7)
			mustLoad(t, m, 0, b.MustBuild())
			res := run(t, m, 100_000)
			if !res.AllHalted {
				t.Fatalf("did not halt")
			}
			if got := m.ReadMem(8); got != 42 {
				t.Errorf("forwarded value = %d, want 42", got)
			}
		})
	}
}

// TestMessagePassingWithFullFences checks that the canonical MP shape with
// full fences on both sides never observes the relaxed outcome, on either
// profile, across many seeds.
func TestMessagePassingWithFullFences(t *testing.T) {
	for name, prof := range arch.Profiles() {
		full := arch.DMBIsh
		if prof.Flavor == arch.NonMCA {
			full = arch.HwSync
		}
		t.Run(name, func(t *testing.T) {
			for seed := int64(0); seed < 200; seed++ {
				// Writer: data=1; fence; flag=1.
				w := arch.NewBuilder()
				w.MovImm(0, 1)
				w.Store(0, 1, 0) // data at addr 0
				w.Fence(full)
				w.Store(0, 1, 64) // flag at addr 64 (different line)
				w.Halt()
				// Reader: spin on flag; fence; read data.
				r := arch.NewBuilder()
				r.Label("spin")
				r.Load(2, 1, 64)
				r.CmpImm(2, 1)
				r.Bne("spin")
				r.Fence(full)
				r.Load(3, 1, 0)
				r.Store(3, 1, 128) // result
				r.Halt()
				m := newTestMachine(t, prof, 2, 1024, seed)
				mustLoad(t, m, 0, w.MustBuild())
				mustLoad(t, m, 1, r.MustBuild())
				res := run(t, m, 2_000_000)
				if !res.AllHalted {
					t.Fatalf("seed %d: did not halt", seed)
				}
				if got := m.ReadMem(128); got != 1 {
					t.Fatalf("seed %d: relaxed outcome observed with full fences: data=%d", seed, got)
				}
			}
		})
	}
}

// delay emits a seed-controlled spin so the two threads' critical sections
// race at varying alignments (the standard litmus-harness technique).
func delay(b *arch.Builder, r arch.Reg, iters int64) {
	if iters <= 0 {
		return
	}
	b.MovImm(r, iters)
	b.Label("delay")
	b.SubsImm(r, r, 1)
	b.Bne("delay")
}

// TestMessagePassingUnfenced checks that without fences the relaxed MP
// outcome is observable on both profiles (the machine is genuinely weak).
// The reader is the single-shot form (ld flag; ld data) with the data line
// primed into its cache, so the data load can satisfy long before the flag
// load; trials race the threads at random alignments.
func TestMessagePassingUnfenced(t *testing.T) {
	for name, prof := range arch.Profiles() {
		t.Run(name, func(t *testing.T) {
			relaxed, hits := 0, 0
			const trials = 600
			rnd := newRNG(99)
			for seed := int64(0); seed < trials; seed++ {
				w := arch.NewBuilder()
				delay(w, 9, rnd.intn(120))
				w.MovImm(0, 1)
				w.Store(0, 1, 0)  // data
				w.Store(0, 1, 64) // flag
				w.Halt()
				r := arch.NewBuilder()
				r.Load(5, 1, 0) // prime the data line
				delay(r, 9, rnd.intn(120))
				r.Load(2, 1, 64)   // r2 = flag
				r.Load(3, 1, 0)    // r3 = data
				r.Store(2, 1, 128) // observed flag
				r.Store(3, 1, 136) // observed data
				r.Halt()
				m := newTestMachine(t, prof, 2, 1024, seed)
				mustLoad(t, m, 0, w.MustBuild())
				mustLoad(t, m, 1, r.MustBuild())
				res := run(t, m, 2_000_000)
				if !res.AllHalted {
					t.Fatalf("seed %d: did not halt", seed)
				}
				if m.ReadMem(128) == 1 { // precondition: flag seen
					hits++
					if m.ReadMem(136) == 0 {
						relaxed++
					}
				}
			}
			if hits == 0 {
				t.Fatalf("flag never observed; race never aligned")
			}
			if relaxed == 0 {
				t.Errorf("no relaxed MP outcome in %d flag-observing trials; machine not weak", hits)
			}
			t.Logf("%s: relaxed %d / flag-seen %d / trials %d", name, relaxed, hits, trials)
		})
	}
}

// TestStoreBufferingLitmus checks the SB shape: without fences both readers
// can miss each other's store; with full fences they cannot.
func TestStoreBufferingLitmus(t *testing.T) {
	build := func(fence arch.BarrierKind, myAddr, otherAddr, d int64) arch.Program {
		b := arch.NewBuilder()
		// Prime both lines so the post-store load is a fast hit.
		b.Load(5, 1, myAddr)
		b.Load(5, 1, otherAddr)
		delay(b, 9, d)
		b.MovImm(0, 1)
		b.Store(0, 1, myAddr)
		b.Fence(fence)
		b.Load(2, 1, otherAddr)
		b.Store(2, 1, myAddr+256) // result slot
		b.Halt()
		return b.MustBuild()
	}
	for name, prof := range arch.Profiles() {
		full := arch.DMBIsh
		if prof.Flavor == arch.NonMCA {
			full = arch.HwSync
		}
		t.Run(name, func(t *testing.T) {
			relaxed := 0
			const trials = 400
			rnd := newRNG(7)
			for seed := int64(0); seed < trials; seed++ {
				m := newTestMachine(t, prof, 2, 2048, seed)
				mustLoad(t, m, 0, build(arch.BarrierNone, 0, 64, rnd.intn(60)))
				mustLoad(t, m, 1, build(arch.BarrierNone, 64, 0, rnd.intn(60)))
				res := run(t, m, 1_000_000)
				if !res.AllHalted {
					t.Fatalf("seed %d: did not halt", seed)
				}
				if m.ReadMem(256) == 0 && m.ReadMem(64+256) == 0 {
					relaxed++
				}
			}
			if relaxed == 0 {
				t.Errorf("SB relaxed outcome never observed without fences")
			} else {
				t.Logf("%s: SB relaxed %d/%d", name, relaxed, trials)
			}
			rnd = newRNG(7)
			for seed := int64(0); seed < 300; seed++ {
				m := newTestMachine(t, prof, 2, 2048, seed)
				mustLoad(t, m, 0, build(full, 0, 64, rnd.intn(60)))
				mustLoad(t, m, 1, build(full, 64, 0, rnd.intn(60)))
				res := run(t, m, 1_000_000)
				if !res.AllHalted {
					t.Fatalf("seed %d: did not halt", seed)
				}
				if m.ReadMem(256) == 0 && m.ReadMem(64+256) == 0 {
					t.Fatalf("seed %d: SB relaxed outcome with full fences", seed)
				}
			}
		})
	}
}

// TestExclusivesMutualExclusion runs two cores incrementing a shared counter
// under an ldxr/stxr CAS loop and checks no increments are lost.
func TestExclusivesMutualExclusion(t *testing.T) {
	const perCore = 200
	inc := func() arch.Program {
		b := arch.NewBuilder()
		b.MovImm(0, perCore) // iterations
		b.Label("outer")
		b.Label("retry")
		b.LoadEx(2, 1, 0) // r2 = counter
		b.AddImm(3, 2, 1) // r3 = r2+1
		b.StoreEx(4, 3, 1, 0)
		b.CmpImm(4, 0)
		b.Bne("retry")
		b.SubsImm(0, 0, 1)
		b.Bne("outer")
		b.Halt()
		return b.MustBuild()
	}
	for name, prof := range arch.Profiles() {
		t.Run(name, func(t *testing.T) {
			for seed := int64(0); seed < 20; seed++ {
				m := newTestMachine(t, prof, 2, 1024, seed)
				mustLoad(t, m, 0, inc())
				mustLoad(t, m, 1, inc())
				res := run(t, m, 5_000_000)
				if !res.AllHalted {
					t.Fatalf("seed %d: did not halt", seed)
				}
				if got := m.ReadMem(0); got != 2*perCore {
					t.Fatalf("seed %d: counter = %d, want %d", seed, got, 2*perCore)
				}
			}
		})
	}
}

// TestWorkAccounting checks Work counters and warmup reset.
func TestWorkAccounting(t *testing.T) {
	prof := arch.ARMv8()
	b := arch.NewBuilder()
	b.MovImm(0, 50)
	b.Label("loop")
	b.Work(2)
	b.SubsImm(0, 0, 1)
	b.Bne("loop")
	b.Halt()
	m := newTestMachine(t, prof, 1, 256, 3)
	mustLoad(t, m, 0, b.MustBuild())
	res := run(t, m, 1_000_000)
	if res.TotalWork != 100 {
		t.Errorf("TotalWork = %d, want 100", res.TotalWork)
	}
}

// TestDeadlockWatchdog checks that a genuinely stuck program is reported.
func TestDeadlockWatchdog(t *testing.T) {
	prof := arch.ARMv8()
	b := arch.NewBuilder()
	// A load from an invalid (negative) address blocks issue forever.
	b.MovImm(1, -4096)
	b.Load(0, 1, 0)
	b.Halt()
	m := newTestMachine(t, prof, 1, 256, 1)
	mustLoad(t, m, 0, b.MustBuild())
	_, err := m.Run(500_000)
	if err == nil {
		t.Fatal("expected deadlock error, got nil")
	}
}

// TestRotatingSeedsDiffer checks that different seeds give different
// cycle counts under contention (nondeterminism flows from the seed).
func TestRotatingSeedsDiffer(t *testing.T) {
	prof := arch.POWER7()
	prog := func() arch.Program {
		b := arch.NewBuilder()
		b.MovImm(0, 500)
		b.Label("loop")
		b.Load(2, 1, 0)
		b.Store(2, 1, 8)
		b.SubsImm(0, 0, 1)
		b.Bne("loop")
		b.Halt()
		return b.MustBuild()
	}
	cycles := map[int64]bool{}
	for seed := int64(1); seed <= 8; seed++ {
		m := newTestMachine(t, prof, 2, 1024, seed)
		mustLoad(t, m, 0, prog())
		mustLoad(t, m, 1, prog())
		res := run(t, m, 5_000_000)
		cycles[res.Cycles] = true
	}
	if len(cycles) < 2 {
		t.Errorf("all 8 seeds produced identical cycle counts; jitter not working")
	}
}

// TestDeterminism checks that the same seed reproduces the same run.
func TestDeterminism(t *testing.T) {
	for name, prof := range arch.Profiles() {
		t.Run(name, func(t *testing.T) {
			runOnce := func() int64 {
				b := arch.NewBuilder()
				b.MovImm(0, 300)
				b.Label("loop")
				b.Load(2, 1, 0)
				b.AddImm(2, 2, 1)
				b.Store(2, 1, 0)
				b.SubsImm(0, 0, 1)
				b.Bne("loop")
				b.Halt()
				m := newTestMachine(t, prof, 2, 1024, 42)
				mustLoad(t, m, 0, b.MustBuild())
				b2 := arch.NewBuilder()
				b2.MovImm(0, 300)
				b2.Label("loop")
				b2.Load(2, 1, 128)
				b2.AddImm(2, 2, 1)
				b2.Store(2, 1, 128)
				b2.SubsImm(0, 0, 1)
				b2.Bne("loop")
				b2.Halt()
				mustLoad(t, m, 1, b2.MustBuild())
				res := run(t, m, 5_000_000)
				return res.Cycles
			}
			a, b := runOnce(), runOnce()
			if a != b {
				t.Errorf("same seed, different cycles: %d vs %d", a, b)
			}
		})
	}
}
