package sim

// l1 is a direct-mapped private cache used purely as a *timing* model: it
// decides whether a load pays L1, L2 or memory latency.  Values are never
// served from it — loads always read the coherent storage (MCA) or the
// core's propagated view (non-MCA) at satisfaction time, which keeps the
// memory system single-copy atomic per location.  Remote stores invalidate
// matching lines immediately, so contended data pays coherence-miss
// latency, which is the effect that makes barrier costs context-dependent
// in macrobenchmarks (paper §4.4).
type l1 struct {
	tags      []int64
	lineWords int64
	lineShift uint
	mask      int64

	hits, misses, invalidations uint64
}

func newL1(lineCount, lineWords int) *l1 {
	c := &l1{
		tags:      make([]int64, lineCount),
		lineWords: int64(lineWords),
		mask:      int64(lineCount - 1),
	}
	for w := lineWords; w > 1; w >>= 1 {
		c.lineShift++
	}
	for i := range c.tags {
		c.tags[i] = -1
	}
	return c
}

func (c *l1) lineOf(addr int64) int64 { return addr >> c.lineShift }

// probe reports whether addr hits, recording hit/miss statistics.
func (c *l1) probe(addr int64) bool {
	line := c.lineOf(addr)
	if c.tags[line&c.mask] == line {
		c.hits++
		return true
	}
	c.misses++
	return false
}

// present reports whether addr's line is cached, without touching stats.
func (c *l1) present(addr int64) bool {
	line := c.lineOf(addr)
	return c.tags[line&c.mask] == line
}

// fill installs the line containing addr.
func (c *l1) fill(addr int64) {
	line := c.lineOf(addr)
	c.tags[line&c.mask] = line
}

// invalidate removes addr's line if present (remote store committed).
func (c *l1) invalidate(addr int64) {
	line := c.lineOf(addr)
	if c.tags[line&c.mask] == line {
		c.tags[line&c.mask] = -1
		c.invalidations++
	}
}

// reset empties the cache and zeroes its counters, as after newL1.
func (c *l1) reset() {
	for i := range c.tags {
		c.tags[i] = -1
	}
	c.hits, c.misses, c.invalidations = 0, 0, 0
}
