package sim

// storage abstracts the machine's shared-memory subsystem.  Two
// implementations exist:
//
//   - mcaStorage: other-multi-copy-atomic (the ARMv8 profile).  A store
//     becomes visible to every core the moment it commits from the store
//     buffer; observable weakness comes from store buffers (with
//     forwarding) and from loads being *satisfied* out of program order.
//
//   - nonMCAStorage: non-multi-copy-atomic (the POWER profile).  A
//     committed store propagates to each other core after an independent
//     random delay, subject to per-channel group ordering (the cumulativity
//     of lwsync/hwsync and release stores), so IRIW-style disagreement
//     between observers is possible.
//
// In both cases loads read the value visible at their satisfaction time;
// private caches are a timing model only (see l1).
type storage interface {
	// commitStore publishes a store by core at time now.
	commitStore(core int, addr, val int64, now int64)
	// fence closes core's current propagation group: stores committed
	// after the fence may not reach any observer before stores committed
	// before it (store-side cumulativity).  No-op on MCA storage.
	fence(core int)
	// readView returns the value of addr visible to core at time now,
	// together with the commit sequence of the write that produced it.
	readView(core int, addr int64, now int64) (int64, uint64)
	// readCoherent returns the globally newest value of addr and its
	// commit sequence (used by exclusives).
	readCoherent(addr int64) (int64, uint64)
	// commitSeq returns the global commit counter.
	commitSeq() uint64
	// deliver applies propagation arrivals for core up to time now.
	deliver(core int, now int64)
	// visibleAllBy returns, for non-MCA storage, the earliest time by
	// which every store core has observed (including its own committed
	// stores) is visible to all cores; hwsync waits for it.  MCA storage
	// returns 0: commitment is global visibility.
	visibleAllBy(core int) int64
	// noteObserved records that core observed the write identified by
	// seq at addr (cumulativity bookkeeping).
	noteObserved(core int, addr int64, seq uint64)
	// observeExclusive records that core read the master-latest write at
	// addr through the coherence protocol (ldxr/larx).  On non-MCA
	// storage this forces the core's view to catch up to that write's
	// arrival: obtaining the line coherently IS its propagation, so
	// everything channel-ordered before it (a releasing store's data)
	// becomes visible too.
	observeExclusive(core int, addr int64, seq uint64, now int64)
	// lineTouched reports whether any core has accessed the line before
	// (first-touch misses cost memory latency; later ones L2 latency).
	lineTouched(line int64) bool
	touchLine(line int64)
	// write initialises memory before the run begins.
	write(addr, val int64)
	// read returns the final coherent value (post-run inspection).
	read(addr int64) int64
	// reset restores the just-constructed state, retaining allocations.
	// seed re-derives the propagation RNG on non-MCA storage (ignored by
	// MCA storage, which consumes no randomness).
	reset(seed uint64)
	// setChoices installs (or clears) the machine's ChoiceSource for
	// the storage subsystem's own draws.  No-op on MCA storage.
	setChoices(cs ChoiceSource)
}

// touchSet tracks first-touch state per cache line.
type touchSet struct {
	bits      []uint64
	lineShift uint
}

func newTouchSet(memWords int, lineWords int) *touchSet {
	var shift uint
	for w := lineWords; w > 1; w >>= 1 {
		shift++
	}
	lines := (memWords >> shift) + 1
	return &touchSet{bits: make([]uint64, (lines+63)/64), lineShift: shift}
}

func (t *touchSet) touched(line int64) bool {
	i := uint64(line)
	return t.bits[i/64]&(1<<(i%64)) != 0
}

func (t *touchSet) touch(line int64) {
	i := uint64(line)
	t.bits[i/64] |= 1 << (i % 64)
}

func (t *touchSet) reset() {
	for i := range t.bits {
		t.bits[i] = 0
	}
}

// mcaStorage is the other-multi-copy-atomic storage subsystem.
type mcaStorage struct {
	mem    []int64
	seq    []uint64
	commit uint64
	caches []*l1 // per-core private caches (timing invalidation sinks)
	touch  *touchSet
}

func newMCAStorage(memWords, lineWords int, caches []*l1) *mcaStorage {
	return &mcaStorage{
		mem:    make([]int64, memWords),
		seq:    make([]uint64, memWords),
		caches: caches,
		touch:  newTouchSet(memWords, lineWords),
	}
}

func (s *mcaStorage) commitStore(core int, addr, val int64, now int64) {
	s.commit++
	s.mem[addr] = val
	s.seq[addr] = s.commit
	// The line now exists in the writer's cache hierarchy: remote misses
	// are serviced by cache-to-cache transfer (L2 latency), not memory.
	s.touch.touch(addr >> s.touch.lineShift)
	for i, c := range s.caches {
		if i == core {
			// Write-allocate into the committing core's own cache.
			c.fill(addr)
			continue
		}
		c.invalidate(addr)
	}
}

func (s *mcaStorage) fence(int) {}

func (s *mcaStorage) readView(_ int, addr int64, _ int64) (int64, uint64) {
	return s.mem[addr], s.seq[addr]
}

func (s *mcaStorage) readCoherent(addr int64) (int64, uint64) {
	return s.mem[addr], s.seq[addr]
}

func (s *mcaStorage) commitSeq() uint64 { return s.commit }

func (s *mcaStorage) deliver(int, int64) {}

func (s *mcaStorage) visibleAllBy(int) int64 { return 0 }

func (s *mcaStorage) noteObserved(int, int64, uint64) {}

func (s *mcaStorage) observeExclusive(int, int64, uint64, int64) {}

func (s *mcaStorage) lineTouched(line int64) bool { return s.touch.touched(line) }
func (s *mcaStorage) touchLine(line int64)        { s.touch.touch(line) }

func (s *mcaStorage) write(addr, val int64) { s.mem[addr] = val }
func (s *mcaStorage) read(addr int64) int64 { return s.mem[addr] }

func (s *mcaStorage) setChoices(ChoiceSource) {}

func (s *mcaStorage) reset(uint64) {
	for i := range s.mem {
		s.mem[i] = 0
	}
	for i := range s.seq {
		s.seq[i] = 0
	}
	s.commit = 0
	s.touch.reset()
}

// propEvent is a store propagating towards one destination core.
type propEvent struct {
	arrive int64
	addr   int64
	val    int64
	seq    uint64
	visAll int64
}

// propHeap is a binary min-heap of propagation events ordered by arrival.
type propHeap struct{ ev []propEvent }

func (h *propHeap) push(e propEvent) {
	h.ev = append(h.ev, e)
	i := len(h.ev) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.ev[p].arrive <= h.ev[i].arrive {
			break
		}
		h.ev[p], h.ev[i] = h.ev[i], h.ev[p]
		i = p
	}
}

func (h *propHeap) peek() (propEvent, bool) {
	if len(h.ev) == 0 {
		return propEvent{}, false
	}
	return h.ev[0], true
}

func (h *propHeap) pop() propEvent {
	top := h.ev[0]
	last := len(h.ev) - 1
	h.ev[0] = h.ev[last]
	h.ev = h.ev[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < len(h.ev) && h.ev[l].arrive < h.ev[m].arrive {
			m = l
		}
		if r < len(h.ev) && h.ev[r].arrive < h.ev[m].arrive {
			m = r
		}
		if m == i {
			break
		}
		h.ev[i], h.ev[m] = h.ev[m], h.ev[i]
		i = m
	}
	return top
}

// nonMCAStorage is the POWER-style storage subsystem.
type nonMCAStorage struct {
	master []int64
	seq    []uint64
	// masterVis is the visible-everywhere time of the latest write per
	// location.  Exclusives read the master directly, so their
	// cumulativity bookkeeping must use it: a core that acquires a lock
	// via larx/ldxr has observed the releasing store, and its next
	// hwsync must wait until everything ordered before that store (the
	// release's group) has reached this core.
	masterVis []int64
	commit    uint64

	cores int
	// Per-core view of memory: the newest value/seq that has propagated
	// to the core, plus the visible-everywhere time of that write (for
	// hwsync cumulativity).
	views   [][]int64
	viewSeq [][]uint64
	viewVis [][]int64

	queues []propHeap

	// Per (src,dst) channel ordering state for propagation groups:
	// floor is the arrival time that stores from the current group may
	// not precede; cur is the maximum arrival handed out so far.
	floor [][]int64
	cur   [][]int64

	// readAck/ownAck track, per core, the latest visible-everywhere time
	// among writes the core has observed / committed.
	readAck []int64
	ownAck  []int64

	caches   []*l1
	touch    *touchSet
	propMin  int64
	propMax  int64
	propTail int
	rnd      rng
	choices  ChoiceSource
}

func newNonMCAStorage(memWords, lineWords, cores int, propMin, propMax int64, propTail int, seed uint64, caches []*l1) *nonMCAStorage {
	s := &nonMCAStorage{
		master:    make([]int64, memWords),
		seq:       make([]uint64, memWords),
		masterVis: make([]int64, memWords),
		cores:     cores,
		views:     make([][]int64, cores),
		viewSeq:   make([][]uint64, cores),
		viewVis:   make([][]int64, cores),
		queues:    make([]propHeap, cores),
		floor:     make([][]int64, cores),
		cur:       make([][]int64, cores),
		readAck:   make([]int64, cores),
		ownAck:    make([]int64, cores),
		caches:    caches,
		touch:     newTouchSet(memWords, lineWords),
		propMin:   propMin,
		propMax:   propMax,
		propTail:  propTail,
		rnd:       newRNG(seed ^ 0xabcdef12345),
	}
	for i := 0; i < cores; i++ {
		s.views[i] = make([]int64, memWords)
		s.viewSeq[i] = make([]uint64, memWords)
		s.viewVis[i] = make([]int64, memWords)
		s.floor[i] = make([]int64, cores)
		s.cur[i] = make([]int64, cores)
	}
	return s
}

func (s *nonMCAStorage) commitStore(core int, addr, val int64, now int64) {
	s.commit++
	seq := s.commit
	s.master[addr] = val
	s.seq[addr] = seq

	// Sample per-destination arrival times, respecting the channel group
	// floors, then compute the visible-everywhere time.
	visAll := now
	var arrivals [64]int64
	for d := 0; d < s.cores; d++ {
		if d == core {
			continue
		}
		delay := s.chooseRange(ChoicePropDelay, core, d, addr, s.propMin, s.propMax)
		// Heavy tail: occasionally a line is stuck (dirty in a remote
		// cache, directory contention) and takes much longer to reach
		// one particular observer.  This is what makes WRC/IRIW-style
		// disagreement observable on real non-MCA machines.
		if s.chooseBool(ChoicePropTail, core, d, addr, s.propTail) {
			delay += s.chooseRange(ChoicePropTailExtra, core, d, addr, 100, 400)
		}
		a := now + delay
		if f := s.floor[core][d]; a < f {
			a = f
		}
		if a > s.cur[core][d] {
			s.cur[core][d] = a
		}
		arrivals[d] = a
		if a > visAll {
			visAll = a
		}
	}
	// The line now exists in the writer's cache hierarchy: remote misses
	// are serviced by cache-to-cache transfer (L2 latency), not memory.
	s.touch.touch(addr >> s.touch.lineShift)
	s.masterVis[addr] = visAll
	// The committing core sees its own store immediately.
	if seq > s.viewSeq[core][addr] {
		s.views[core][addr] = val
		s.viewSeq[core][addr] = seq
		s.viewVis[core][addr] = visAll
	}
	if visAll > s.ownAck[core] {
		s.ownAck[core] = visAll
	}
	for d := 0; d < s.cores; d++ {
		if d == core {
			continue
		}
		s.queues[d].push(propEvent{arrive: arrivals[d], addr: addr, val: val, seq: seq, visAll: visAll})
	}
	s.caches[core].fill(addr)
}

func (s *nonMCAStorage) fence(core int) {
	for d := 0; d < s.cores; d++ {
		if s.cur[core][d] > s.floor[core][d] {
			s.floor[core][d] = s.cur[core][d]
		}
	}
}

func (s *nonMCAStorage) deliver(core int, now int64) {
	q := &s.queues[core]
	for {
		e, ok := q.peek()
		if !ok || e.arrive > now {
			return
		}
		q.pop()
		// The arrival is what invalidates the destination's cached line:
		// until it arrives, the core keeps hitting (and seeing) its old
		// view, which is exactly non-multi-copy-atomic behaviour.
		s.caches[core].invalidate(e.addr)
		if e.seq > s.viewSeq[core][e.addr] {
			s.views[core][e.addr] = e.val
			s.viewSeq[core][e.addr] = e.seq
			s.viewVis[core][e.addr] = e.visAll
		}
	}
}

func (s *nonMCAStorage) readView(core int, addr int64, _ int64) (int64, uint64) {
	return s.views[core][addr], s.viewSeq[core][addr]
}

func (s *nonMCAStorage) readCoherent(addr int64) (int64, uint64) {
	return s.master[addr], s.seq[addr]
}

func (s *nonMCAStorage) commitSeq() uint64 { return s.commit }

func (s *nonMCAStorage) visibleAllBy(core int) int64 {
	if s.readAck[core] > s.ownAck[core] {
		return s.readAck[core]
	}
	return s.ownAck[core]
}

func (s *nonMCAStorage) noteObserved(core int, addr int64, seq uint64) {
	if seq == 0 {
		return
	}
	v := s.viewVis[core][addr]
	if seq == s.seq[addr] && s.masterVis[addr] > v {
		// The observed write is the master-latest (an exclusive read):
		// its visible-everywhere time governs.
		v = s.masterVis[addr]
	}
	if v > s.readAck[core] {
		s.readAck[core] = v
	}
}

func (s *nonMCAStorage) observeExclusive(core int, addr int64, seq uint64, now int64) {
	if seq == 0 || s.viewSeq[core][addr] >= seq {
		return
	}
	// Find the pending arrival of the observed write and deliver
	// everything scheduled up to that moment: the channel-group floors
	// guarantee that covers all stores ordered before it.
	q := &s.queues[core]
	arrive := int64(-1)
	for _, e := range q.ev {
		if e.addr == addr && e.seq == seq {
			arrive = e.arrive
			break
		}
	}
	if arrive >= 0 {
		s.deliver(core, arrive)
	}
	// Install the observed write itself regardless.
	if seq > s.viewSeq[core][addr] {
		s.views[core][addr] = s.master[addr]
		s.viewSeq[core][addr] = seq
		s.viewVis[core][addr] = s.masterVis[addr]
	}
}

func (s *nonMCAStorage) setChoices(cs ChoiceSource) { s.choices = cs }

func (s *nonMCAStorage) lineTouched(line int64) bool { return s.touch.touched(line) }
func (s *nonMCAStorage) touchLine(line int64)        { s.touch.touch(line) }

func (s *nonMCAStorage) write(addr, val int64) {
	s.master[addr] = val
	for c := 0; c < s.cores; c++ {
		s.views[c][addr] = val
	}
}

func (s *nonMCAStorage) read(addr int64) int64 { return s.master[addr] }

func (s *nonMCAStorage) reset(seed uint64) {
	for i := range s.master {
		s.master[i] = 0
	}
	for i := range s.seq {
		s.seq[i] = 0
	}
	for i := range s.masterVis {
		s.masterVis[i] = 0
	}
	s.commit = 0
	for c := 0; c < s.cores; c++ {
		v, vs, vv := s.views[c], s.viewSeq[c], s.viewVis[c]
		for i := range v {
			v[i] = 0
		}
		for i := range vs {
			vs[i] = 0
		}
		for i := range vv {
			vv[i] = 0
		}
		s.queues[c].ev = s.queues[c].ev[:0]
		f, cu := s.floor[c], s.cur[c]
		for i := range f {
			f[i] = 0
		}
		for i := range cu {
			cu[i] = 0
		}
		s.readAck[c], s.ownAck[c] = 0, 0
	}
	s.touch.reset()
	s.rnd = newRNG(seed ^ 0xabcdef12345)
}
