package sim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/arch"
)

// refInterp is a trivial sequential interpreter used as the semantic
// oracle for single-threaded programs: whatever reordering the simulator
// performs, a single thread's architectural results must match sequential
// execution exactly.
type refInterp struct {
	regs  [arch.NumRegs]int64
	flagV int64
	mem   map[int64]int64
	work  int64
}

func (r *refInterp) run(prog []arch.Instr, maxSteps int) bool {
	pc := 0
	for steps := 0; steps < maxSteps; steps++ {
		if pc < 0 || pc >= len(prog) {
			return false
		}
		in := prog[pc]
		next := pc + 1
		switch in.Op {
		case arch.Nop:
		case arch.MovImm:
			r.regs[in.Rd] = in.Imm
		case arch.Mov:
			r.regs[in.Rd] = r.regs[in.Rn]
		case arch.Add:
			r.regs[in.Rd] = r.regs[in.Rn] + r.regs[in.Rm]
		case arch.Sub:
			r.regs[in.Rd] = r.regs[in.Rn] - r.regs[in.Rm]
		case arch.And:
			r.regs[in.Rd] = r.regs[in.Rn] & r.regs[in.Rm]
		case arch.Orr:
			r.regs[in.Rd] = r.regs[in.Rn] | r.regs[in.Rm]
		case arch.Eor:
			r.regs[in.Rd] = r.regs[in.Rn] ^ r.regs[in.Rm]
		case arch.Mul:
			r.regs[in.Rd] = r.regs[in.Rn] * r.regs[in.Rm]
		case arch.AddImm:
			r.regs[in.Rd] = r.regs[in.Rn] + in.Imm
		case arch.SubImm:
			r.regs[in.Rd] = r.regs[in.Rn] - in.Imm
		case arch.Lsl:
			r.regs[in.Rd] = r.regs[in.Rn] << uint(in.Imm)
		case arch.Lsr:
			r.regs[in.Rd] = int64(uint64(r.regs[in.Rn]) >> uint(in.Imm))
		case arch.SubsImm:
			r.regs[in.Rd] = r.regs[in.Rn] - in.Imm
			r.flagV = r.regs[in.Rd]
		case arch.CmpImm:
			r.flagV = r.regs[in.Rn] - in.Imm
		case arch.Cmp:
			r.flagV = r.regs[in.Rn] - r.regs[in.Rm]
		case arch.Load, arch.LoadAcq, arch.LoadEx:
			r.regs[in.Rd] = r.mem[r.regs[in.Rn]+in.Imm]
		case arch.Store, arch.StoreRel:
			r.mem[r.regs[in.Rn]+in.Imm] = r.regs[in.Rd]
		case arch.StoreEx:
			// Single-threaded exclusives always succeed.
			r.mem[r.regs[in.Rn]+in.Imm] = r.regs[in.Rm]
			r.regs[in.Rd] = 0
		case arch.B:
			next = int(in.Target)
		case arch.Beq:
			if r.flagV == 0 {
				next = int(in.Target)
			}
		case arch.Bne:
			if r.flagV != 0 {
				next = int(in.Target)
			}
		case arch.Blt:
			if r.flagV < 0 {
				next = int(in.Target)
			}
		case arch.Bge:
			if r.flagV >= 0 {
				next = int(in.Target)
			}
		case arch.Barrier:
		case arch.Work:
			r.work += in.Imm
		case arch.Halt:
			return true
		}
		pc = next
	}
	return false
}

// genProgram builds a random but always-terminating single-core program:
// straight-line random ALU/memory operations with an occasional bounded
// counted loop and scattered barriers, ending in stores of every register
// so the whole architectural state is observable.
func genProgram(rng *rand.Rand) arch.Program {
	b := arch.NewBuilder()
	regs := []arch.Reg{0, 2, 3, 4, 5, 6, 7, 8}
	// Seed registers with known values.
	for i, r := range regs {
		b.MovImm(r, int64(rng.Intn(1000))+int64(i))
	}
	b.MovImm(1, 0) // base
	n := 10 + rng.Intn(40)
	loops := 0
	for i := 0; i < n; i++ {
		rd := regs[rng.Intn(len(regs))]
		rn := regs[rng.Intn(len(regs))]
		rm := regs[rng.Intn(len(regs))]
		switch rng.Intn(12) {
		case 0:
			b.Add(rd, rn, rm)
		case 1:
			b.Sub(rd, rn, rm)
		case 2:
			b.Eor(rd, rn, rm)
		case 3:
			b.Mul(rd, rn, rm)
		case 4:
			b.AddImm(rd, rn, int64(rng.Intn(64)))
		case 5:
			b.Lsl(rd, rn, int64(rng.Intn(8)))
		case 6:
			// Bounded random-address load within [0,256).
			b.MovImm(10, int64(rng.Intn(256)))
			b.Load(rd, 10, 0)
		case 7:
			b.MovImm(10, int64(rng.Intn(256)))
			b.Store(rn, 10, 0)
		case 8:
			b.Fence([]arch.BarrierKind{arch.DMBIsh, arch.DMBIshLd, arch.DMBIshSt, arch.LwSync, arch.HwSync, arch.ISB}[rng.Intn(6)])
		case 9:
			if loops < 3 {
				loops++
				label := string(rune('a' + loops))
				b.MovImm(11, int64(2+rng.Intn(6)))
				b.Label(label)
				b.Add(rd, rd, rn)
				b.SubsImm(11, 11, 1)
				b.Bne(label)
			} else {
				b.Nop()
			}
		case 10:
			b.CmpImm(rn, int64(rng.Intn(100)))
		case 11:
			b.Work(1)
		}
	}
	// Expose all state.
	for i, r := range regs {
		b.MovImm(12, int64(512+8*i))
		b.Store(r, 12, 0)
	}
	b.Halt()
	return b.MustBuild()
}

// TestSingleThreadMatchesReference is the simulator's core property test:
// for random single-core programs, the out-of-order machine must produce
// exactly the sequential-interpreter results (registers written to memory,
// work counters), on both profiles.
func TestSingleThreadMatchesReference(t *testing.T) {
	profiles := []*arch.Profile{arch.ARMv8(), arch.POWER7()}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		prog := genProgram(rng)
		ref := &refInterp{mem: map[int64]int64{}}
		if !ref.run(prog.Code, 1_000_000) {
			t.Logf("seed %d: reference did not terminate", seed)
			return false
		}
		for _, prof := range profiles {
			m, err := New(prof, Config{Cores: 1, MemWords: 1024, Seed: seed})
			if err != nil {
				t.Logf("seed %d: %v", seed, err)
				return false
			}
			if err := m.LoadProgram(0, prog); err != nil {
				t.Logf("seed %d: %v", seed, err)
				return false
			}
			res, err := m.Run(10_000_000)
			if err != nil || !res.AllHalted {
				t.Logf("seed %d on %s: err=%v halted=%v", seed, prof.Name, err, res.AllHalted)
				return false
			}
			for addr := int64(0); addr < 1024; addr++ {
				want := ref.mem[addr]
				if got := m.ReadMem(addr); got != want {
					t.Logf("seed %d on %s: mem[%d] = %d, want %d", seed, prof.Name, addr, got, want)
					return false
				}
			}
			if res.TotalWork != ref.work {
				t.Logf("seed %d on %s: work %d, want %d", seed, prof.Name, res.TotalWork, ref.work)
				return false
			}
		}
		return true
	}
	n := 60
	if testing.Short() {
		n = 15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: n}); err != nil {
		t.Error(err)
	}
}

// TestFullyFencedSharedCounterIsSC: with a full fence after every access
// and exclusive-based increments, N cores incrementing a counter must
// never lose an update, for random core counts and iteration counts.
func TestFullyFencedSharedCounterIsSC(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cores := 2 + rng.Intn(3)
		iters := 20 + rng.Intn(60)
		prof := arch.ARMv8()
		if seed%2 == 0 {
			prof = arch.POWER7()
		}
		full := arch.DMBIsh
		if prof.Flavor == arch.NonMCA {
			full = arch.HwSync
		}
		m, err := New(prof, Config{Cores: cores, MemWords: 1024, Seed: seed})
		if err != nil {
			return false
		}
		for c := 0; c < cores; c++ {
			b := arch.NewBuilder()
			b.MovImm(2, int64(iters))
			b.Label("outer")
			b.Label("retry")
			b.LoadEx(3, 1, 0)
			b.AddImm(4, 3, 1)
			b.StoreEx(5, 4, 1, 0)
			b.CmpImm(5, 0)
			b.Bne("retry")
			b.Fence(full)
			b.SubsImm(2, 2, 1)
			b.Bne("outer")
			b.Halt()
			if err := m.LoadProgram(c, b.MustBuild()); err != nil {
				return false
			}
		}
		res, err := m.Run(50_000_000)
		if err != nil || !res.AllHalted {
			return false
		}
		return m.ReadMem(0) == int64(cores*iters)
	}
	n := 25
	if testing.Short() {
		n = 8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: n}); err != nil {
		t.Error(err)
	}
}
