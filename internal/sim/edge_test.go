package sim

import (
	"strings"
	"testing"

	"repro/internal/arch"
)

// TestConfigValidation checks machine construction rejects bad configs.
func TestConfigValidation(t *testing.T) {
	prof := arch.ARMv8()
	if _, err := New(prof, Config{Cores: 0, MemWords: 256}); err == nil {
		t.Error("zero cores accepted")
	}
	if _, err := New(prof, Config{Cores: 65, MemWords: 256}); err == nil {
		t.Error("65 cores accepted")
	}
	if _, err := New(prof, Config{Cores: 1, MemWords: 2}); err == nil {
		t.Error("sub-line memory accepted")
	}
	bad := arch.ARMv8()
	bad.Pipe.Window = 1
	if _, err := New(bad, Config{Cores: 1, MemWords: 256}); err == nil {
		t.Error("degenerate window accepted")
	}
}

// TestLoadProgramValidation checks branch-target validation.
func TestLoadProgramValidation(t *testing.T) {
	m, err := New(arch.ARMv8(), Config{Cores: 1, MemWords: 256, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	bad := arch.Program{Code: []arch.Instr{{Op: arch.B, Target: 99}}}
	if err := m.LoadProgram(0, bad); err == nil || !strings.Contains(err.Error(), "branches to") {
		t.Errorf("out-of-range branch accepted: %v", err)
	}
	if err := m.LoadProgram(7, arch.Program{}); err == nil {
		t.Error("out-of-range core accepted")
	}
}

// TestMemoryAccessPanics checks the pre-run accessors guard addresses.
func TestMemoryAccessPanics(t *testing.T) {
	m, err := New(arch.ARMv8(), Config{Cores: 1, MemWords: 256, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []func(){
		func() { m.WriteMem(-1, 0) },
		func() { m.WriteMem(256, 0) },
		func() { m.PreTouch(-1) },
		func() { m.PreTouch(1 << 40) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for out-of-range address")
				}
			}()
			f()
		}()
	}
}

// TestLongDependentChain stresses window wraparound: a dependent chain far
// longer than the window must still compute correctly.
func TestLongDependentChain(t *testing.T) {
	for name, prof := range arch.Profiles() {
		b := arch.NewBuilder()
		b.MovImm(0, 1)
		for i := 0; i < 500; i++ {
			b.AddImm(0, 0, 1)
			if i%37 == 0 {
				b.Mul(0, 0, 1) // r1 = 0... use an identity-ish op mix
				b.AddImm(0, 0, 0)
			}
		}
		b.Store(0, 1, 8)
		b.Halt()
		m, err := New(prof, Config{Cores: 1, MemWords: 256, Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		m.SetReg(0, 1, 0)
		if err := m.LoadProgram(0, b.MustBuild()); err != nil {
			t.Fatal(err)
		}
		res, err := m.Run(5_000_000)
		if err != nil || !res.AllHalted {
			t.Fatalf("%s: err=%v halted=%v", name, err, res.AllHalted)
		}
		// Mul by r1 (=0) zeroes; recompute expected sequentially.
		want := int64(1)
		for i := 0; i < 500; i++ {
			want++
			if i%37 == 0 {
				want = 0
			}
		}
		if got := m.ReadMem(8); got != want {
			t.Errorf("%s: chain result %d, want %d", name, got, want)
		}
	}
}

// TestStoreBufferFullStress retires more stores than the buffer holds; the
// machine must stall retirement rather than lose stores.
func TestStoreBufferFullStress(t *testing.T) {
	for name, prof := range arch.Profiles() {
		b := arch.NewBuilder()
		n := int64(prof.Pipe.SBDepth * 4)
		for i := int64(0); i < n; i++ {
			b.MovImm(0, i+100)
			b.Store(0, 1, i)
		}
		b.Halt()
		m, err := New(prof, Config{Cores: 1, MemWords: 1024, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		m.SetReg(0, 1, 0)
		if err := m.LoadProgram(0, b.MustBuild()); err != nil {
			t.Fatal(err)
		}
		res, err := m.Run(5_000_000)
		if err != nil || !res.AllHalted {
			t.Fatalf("%s: err=%v halted=%v", name, err, res.AllHalted)
		}
		for i := int64(0); i < n; i++ {
			if got := m.ReadMem(i); got != i+100 {
				t.Errorf("%s: mem[%d] = %d, want %d", name, i, got, i+100)
			}
		}
	}
}

// TestRunZeroCycles checks a zero-budget run returns without progress.
func TestRunZeroCycles(t *testing.T) {
	m, err := New(arch.ARMv8(), Config{Cores: 1, MemWords: 256, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b := arch.NewBuilder()
	b.Halt()
	_ = m.LoadProgram(0, b.MustBuild())
	res, err := m.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.AllHalted || res.Cycles != 0 {
		t.Errorf("zero-budget run: %+v", res)
	}
}

// TestEmptyProgramHalts checks a core with an empty program simply idles
// and the run ends at the budget without error.
func TestEmptyProgramHalts(t *testing.T) {
	m, err := New(arch.ARMv8(), Config{Cores: 2, MemWords: 256, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b := arch.NewBuilder()
	b.MovImm(0, 1)
	b.Halt()
	_ = m.LoadProgram(0, b.MustBuild())
	// Core 1 has no program: fetch immediately ends; it never halts, so
	// the run exhausts its (small) budget without a watchdog error,
	// because core 0 keeps the retirement counter moving early on.
	res, err := m.Run(5_000)
	if err != nil {
		t.Fatalf("empty-program run errored: %v", err)
	}
	if res.AllHalted {
		t.Error("machine reported all-halted with a program-less core")
	}
}

// TestWorkTimesBounded checks the response-time recording cap.
func TestWorkTimesBounded(t *testing.T) {
	m, err := New(arch.ARMv8(), Config{Cores: 1, MemWords: 256, Seed: 1, RecordWork: true})
	if err != nil {
		t.Fatal(err)
	}
	b := arch.NewBuilder()
	b.MovImm(0, 20000)
	b.Label("loop")
	b.Work(1)
	b.SubsImm(0, 0, 1)
	b.Bne("loop")
	b.Halt()
	_ = m.LoadProgram(0, b.MustBuild())
	res, err := m.Run(50_000_000)
	if err != nil || !res.AllHalted {
		t.Fatalf("err=%v halted=%v", err, res.AllHalted)
	}
	if len(res.Cores[0].WorkTimes) > maxWorkTimes {
		t.Errorf("work-time log grew to %d, cap is %d", len(res.Cores[0].WorkTimes), maxWorkTimes)
	}
	if res.TotalWork != 20000 {
		t.Errorf("work = %d", res.TotalWork)
	}
}
