package report

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tab := New("Demo", "name", "value")
	tab.Add("alpha", "1.0")
	tab.Addf("beta\t%.2f", 2.5)
	tab.Note("a footnote with %d", 42)
	out := tab.String()
	for _, want := range []string{"## Demo", "name", "alpha", "beta", "2.50", "note: a footnote with 42"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
	// Columns align: the header and first row should place "value" and
	// "1.0" at the same offset.
	lines := strings.Split(out, "\n")
	hdr, row := lines[1], lines[3]
	if strings.Index(hdr, "value") != strings.Index(row, "1.0") {
		t.Errorf("columns misaligned:\n%s\n%s", hdr, row)
	}
}

func TestAddPadsAndTruncates(t *testing.T) {
	tab := New("t", "a", "b")
	tab.Add("only")
	tab.Add("x", "y", "dropped")
	if len(tab.Rows[0]) != 2 || tab.Rows[0][1] != "" {
		t.Errorf("short row not padded: %v", tab.Rows[0])
	}
	if len(tab.Rows[1]) != 2 {
		t.Errorf("long row not truncated: %v", tab.Rows[1])
	}
}

func TestPctAndSig(t *testing.T) {
	if got := Pct(1.025); got != "+2.50%" {
		t.Errorf("Pct = %q", got)
	}
	if got := Pct(0.9); got != "-10.00%" {
		t.Errorf("Pct = %q", got)
	}
	if Sig(true) != "yes" || Sig(false) != "n.s." {
		t.Error("Sig labels wrong")
	}
}

func TestCSV(t *testing.T) {
	tab := New("T", "a", "b")
	tab.Add("x,y", `quo"te`)
	tab.Add("plain", "2")
	tab.Note("n")
	var sb strings.Builder
	tab.CSV(&sb)
	out := sb.String()
	for _, want := range []string{"# T", "a,b", `"x,y","quo""te"`, "plain,2", "# n"} {
		if !strings.Contains(out, want) {
			t.Errorf("CSV missing %q:\n%s", want, out)
		}
	}
}
