// Package report renders experiment results as aligned ASCII tables, the
// form in which the harness regenerates the paper's figures and tables
// (rows/series rather than plots).
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// New creates a table with the given title and column headers.
func New(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// Add appends a row; cells beyond the column count are dropped, missing
// cells padded.
func (t *Table) Add(cells ...string) *Table {
	row := make([]string, len(t.Columns))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.Rows = append(t.Rows, row)
	return t
}

// Addf appends a row built from formatted values.
func (t *Table) Addf(format string, args ...any) *Table {
	return t.Add(strings.Split(fmt.Sprintf(format, args...), "\t")...)
}

// Note appends a footnote line.
func (t *Table) Note(format string, args ...any) *Table {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
	return t
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "## %s\n", t.Title)
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				fmt.Fprint(w, "  ")
			}
			fmt.Fprintf(w, "%-*s", widths[i], cell)
		}
		fmt.Fprintln(w)
	}
	line(t.Columns)
	rule := make([]string, len(t.Columns))
	for i, wd := range widths {
		rule[i] = strings.Repeat("-", wd)
	}
	line(rule)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	t.Render(&sb)
	return sb.String()
}

// Pct formats a ratio as a signed percentage change.
func Pct(ratio float64) string {
	return fmt.Sprintf("%+.2f%%", 100*(ratio-1))
}

// Sig marks statistically significant comparatives.
func Sig(significant bool) string {
	if significant {
		return "yes"
	}
	return "n.s."
}

// CSV writes the table as RFC-4180-style CSV (title and notes as comment
// lines), for downstream plotting of the regenerated figures.
func (t *Table) CSV(w io.Writer) {
	if t.Title != "" {
		fmt.Fprintf(w, "# %s\n", t.Title)
	}
	writeCSVRow(w, t.Columns)
	for _, row := range t.Rows {
		writeCSVRow(w, row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "# %s\n", n)
	}
}

func writeCSVRow(w io.Writer, cells []string) {
	for i, c := range cells {
		if i > 0 {
			fmt.Fprint(w, ",")
		}
		if strings.ContainsAny(c, ",\"\n") {
			c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
		}
		fmt.Fprint(w, c)
	}
	fmt.Fprintln(w)
}
