package fit

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestModelInversion checks equations (1) and (2) are inverses.
func TestModelInversion(t *testing.T) {
	for _, k := range []float64{1e-4, 0.00277, 0.0133, 0.1} {
		for _, a := range []float64{1, 2, 16, 300} {
			p := Model(k, a)
			back := CostIncrease(k, p)
			if math.Abs(back-a) > 1e-6*a+1e-9 {
				t.Errorf("k=%v a=%v: CostIncrease(Model) = %v", k, a, back)
			}
		}
	}
}

// TestFitExact recovers k from noiseless synthetic data.
func TestFitExact(t *testing.T) {
	for _, k := range []float64{0.0002, 0.00277, 0.0089, 0.05} {
		var pts []Point
		for a := 1.0; a <= 16384; a *= 2 {
			pts = append(pts, Point{A: a, P: Model(k, a)})
		}
		s, err := FitSensitivity(pts)
		if err != nil {
			t.Fatalf("k=%v: %v", k, err)
		}
		if math.Abs(s.K-k) > 1e-6*k {
			t.Errorf("k=%v: fitted %v", k, s.K)
		}
		if s.RSS > 1e-15 {
			t.Errorf("k=%v: residual %v on noiseless data", k, s.RSS)
		}
	}
}

// TestFitNoisy recovers k within a few percent from noisy data, like the
// paper's Figure 1 (k = 0.00277 ± 2.5%).
func TestFitNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const k = 0.00277
	var pts []Point
	for a := 1.0; a <= 16384; a *= 2 {
		noise := 1 + 0.01*rng.NormFloat64()
		pts = append(pts, Point{A: a, P: Model(k, a) * noise})
	}
	s, err := FitSensitivity(pts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.K-k)/k > 0.05 {
		t.Errorf("fitted k=%v, want within 5%% of %v", s.K, k)
	}
	if s.RelErr() > 0.25 {
		t.Errorf("relative error %v too large", s.RelErr())
	}
	t.Logf("fit: %v", s)
}

// TestFitErrors checks degenerate inputs are rejected.
func TestFitErrors(t *testing.T) {
	if _, err := FitSensitivity(nil); err == nil {
		t.Error("nil points should error")
	}
	if _, err := FitSensitivity([]Point{{1, 1}}); err == nil {
		t.Error("single point should error")
	}
}

// TestCostIncreaseKnown reproduces the paper's §4.2.1 arithmetic: POWER
// StoreStore lwsync→sync gave mean performance 0.87530 with sensitivity
// 0.01332662, implying a cost increase of ~11.7 ns.
func TestCostIncreaseKnown(t *testing.T) {
	a := CostIncrease(0.01332662, 0.87530)
	if math.Abs(a-11.7) > 0.2 {
		t.Errorf("CostIncrease = %.2f ns, paper reports ~11.7 ns", a)
	}
	// And the ARM case: p = 0.99293, k = 0.00884788 → ~1.8 ns.
	a = CostIncrease(0.00884788, 0.99293)
	if math.Abs(a-1.8) > 0.1 {
		t.Errorf("CostIncrease = %.2f ns, paper reports ~1.8 ns", a)
	}
}

// TestNaiveVsFull is the footnote-4 ablation: for small k the two models
// produce nearly identical fits.
func TestNaiveVsFull(t *testing.T) {
	const k = 0.003
	var pts []Point
	for a := 1.0; a <= 4096; a *= 2 {
		pts = append(pts, Point{A: a, P: Model(k, a)})
	}
	full, err := FitSensitivity(pts)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := FitNaive(pts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(full.K-naive.K)/k > 0.02 {
		t.Errorf("models diverge for small k: full=%v naive=%v", full.K, naive.K)
	}
}

// Property: fitting noiseless data generated from any k in the plausible
// range recovers it.
func TestFitRecoveryProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := math.Pow(10, -4+3*rng.Float64()) // 1e-4 .. 1e-1
		var pts []Point
		for a := 1.0; a <= 8192; a *= 2 {
			pts = append(pts, Point{A: a, P: Model(k, a)})
		}
		s, err := FitSensitivity(pts)
		if err != nil {
			return false
		}
		return math.Abs(s.K-k)/k < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: Model is decreasing in a for positive k, and CostIncrease is
// its inverse wherever defined.
func TestModelMonotoneProperty(t *testing.T) {
	f := func(rawK, rawA uint16) bool {
		k := 1e-5 + float64(rawK)/float64(1<<16)*0.2
		a1 := 1 + float64(rawA%1000)
		a2 := a1 * 2
		p1, p2 := Model(k, a1), Model(k, a2)
		if p2 >= p1 {
			return false
		}
		return math.Abs(CostIncrease(k, p1)-a1) < 1e-6*a1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
