// Package fit implements the nonlinear least-squares machinery of the
// paper's methodology (§3): fitting the idealised sensitivity model
//
//	p(a) = 1 / ((1-k) + k·a)                                  (equation 1)
//
// to (cost-size, relative-performance) samples by Levenberg–Marquardt, and
// inverting it,
//
//	a = -(((1-k)·p) - 1) / (k·p)                              (equation 2)
//
// to express a fencing-strategy change as a per-invocation cost increase.
// The paper uses scipy's curve_fit (non-linear least squares) and reports
// the estimated variance of k; FitSensitivity mirrors that.
package fit

import (
	"errors"
	"fmt"
	"math"
)

// Model evaluates equation (1): the normalised performance of a benchmark
// with sensitivity k when a cost of a nanoseconds is added to the code
// path.  The paper uses 1/((1-k)+ka) rather than 1/(1+ka) because the
// baseline already contains the nop placeholder, so a is never truly zero.
func Model(k, a float64) float64 {
	return 1 / ((1 - k) + k*a)
}

// CostIncrease evaluates equation (2): the per-invocation cost increase, in
// nanoseconds, implied by observing relative performance p on a benchmark
// with sensitivity k.
func CostIncrease(k, p float64) float64 {
	if k == 0 || p == 0 {
		return math.NaN()
	}
	return -((1-k)*p - 1) / (k * p)
}

// Point is one observation: relative performance P measured with a cost
// function of A nanoseconds injected.
type Point struct {
	A float64
	P float64
}

// Sensitivity is the result of fitting the model to observations.
type Sensitivity struct {
	K      float64 // fitted sensitivity (dimensionless ratio)
	StdErr float64 // standard error of K from the fit covariance
	RSS    float64 // residual sum of squares
	N      int     // number of points fitted
}

// RelErr returns the relative error of K (the paper reports e.g.
// "k = 0.00277 ± 2.5%"), as a fraction.
func (s Sensitivity) RelErr() float64 {
	if s.K == 0 {
		return math.Inf(1)
	}
	return math.Abs(s.StdErr / s.K)
}

// String renders the sensitivity the way the paper's figures caption it.
// Unresolvably small k values (the fit collapsed to zero) are labelled
// rather than shown with a meaningless relative error.
func (s Sensitivity) String() string {
	if s.K < 1e-6 {
		return "k<0.00001 (unresolved)"
	}
	re := s.RelErr() * 100
	if re > 999 {
		return fmt.Sprintf("k=%.5f ±>999%%", s.K)
	}
	return fmt.Sprintf("k=%.5f ±%.0f%%", s.K, re)
}

// ErrNoFit is returned when the optimiser cannot produce a finite estimate.
var ErrNoFit = errors.New("fit: no finite least-squares solution")

// FitSensitivity fits equation (1) to the observations by single-parameter
// Levenberg–Marquardt and returns the estimated k with its standard error.
// At least two points are required.
func FitSensitivity(pts []Point) (Sensitivity, error) {
	if len(pts) < 2 {
		return Sensitivity{}, fmt.Errorf("fit: need at least 2 points, have %d", len(pts))
	}

	rss := func(k float64) float64 {
		var s float64
		for _, pt := range pts {
			r := pt.P - Model(k, pt.A)
			s += r * r
		}
		return s
	}

	// Initial estimate from the steepest observation: solve equation (1)
	// for k at the point with the largest a.
	k := 1e-4
	if last := pts[len(pts)-1]; last.A > 1 && last.P > 0 && last.P < 1 {
		k0 := (1/last.P - 1) / (last.A - 1)
		if k0 > 0 && k0 < 1 {
			k = k0
		}
	}

	lambda := 1e-3
	cur := rss(k)
	for iter := 0; iter < 200; iter++ {
		// Jacobian of the residuals with respect to k:
		// d model / dk = -(a-1) / ((1-k)+ka)^2.
		var jtj, jtr float64
		for _, pt := range pts {
			den := (1 - k) + k*pt.A
			if den == 0 {
				den = 1e-12
			}
			j := -(pt.A - 1) / (den * den)
			r := pt.P - Model(k, pt.A)
			jtj += j * j
			jtr += j * r
		}
		if jtj == 0 {
			break
		}
		step := jtr / (jtj * (1 + lambda))
		next := k + step
		if next <= 0 {
			next = k / 2
		}
		if next >= 1 {
			next = (k + 1) / 2
		}
		nextRSS := rss(next)
		if nextRSS < cur {
			k, cur = next, nextRSS
			lambda = math.Max(lambda/4, 1e-12)
			if math.Abs(step) < 1e-14 {
				break
			}
		} else {
			lambda *= 8
			if lambda > 1e12 {
				break
			}
		}
	}
	if math.IsNaN(k) || math.IsInf(k, 0) {
		return Sensitivity{}, ErrNoFit
	}

	// Standard error: sigma^2 * (J'J)^-1 with sigma^2 = RSS/(n-1).
	var jtj float64
	for _, pt := range pts {
		den := (1 - k) + k*pt.A
		j := -(pt.A - 1) / (den * den)
		jtj += j * j
	}
	se := math.Inf(1)
	if jtj > 0 && len(pts) > 1 {
		sigma2 := cur / float64(len(pts)-1)
		se = math.Sqrt(sigma2 / jtj)
	}
	return Sensitivity{K: k, StdErr: se, RSS: cur, N: len(pts)}, nil
}

// NaiveModel is the 1/(1+ka) variant the paper's footnote 4 discusses; it
// exists for the ablation comparing the two forms.
func NaiveModel(k, a float64) float64 { return 1 / (1 + k*a) }

// FitNaive fits NaiveModel by the same optimiser, for the model ablation.
func FitNaive(pts []Point) (Sensitivity, error) {
	// Transform: 1/p = 1 + ka is linear in k; solve by least squares on
	// the transformed points, which is exact for this model.
	if len(pts) < 2 {
		return Sensitivity{}, fmt.Errorf("fit: need at least 2 points, have %d", len(pts))
	}
	var sxx, sxy float64
	for _, pt := range pts {
		if pt.P <= 0 {
			continue
		}
		x := pt.A
		y := 1/pt.P - 1
		sxx += x * x
		sxy += x * y
	}
	if sxx == 0 {
		return Sensitivity{}, ErrNoFit
	}
	k := sxy / sxx
	var rss float64
	for _, pt := range pts {
		r := pt.P - NaiveModel(k, pt.A)
		rss += r * r
	}
	var jtj float64
	for _, pt := range pts {
		den := 1 + k*pt.A
		j := -pt.A / (den * den)
		jtj += j * j
	}
	se := math.Inf(1)
	if jtj > 0 && len(pts) > 1 {
		se = math.Sqrt(rss / float64(len(pts)-1) / jtj)
	}
	return Sensitivity{K: k, StdErr: se, RSS: rss, N: len(pts)}, nil
}
