package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total", "Jobs executed.")
	c.Inc()
	c.Add(2)
	if got := c.Value(); got != 3 {
		t.Errorf("counter = %v, want 3", got)
	}

	g := r.Gauge("busy", "Busy workers.")
	g.Set(4)
	g.Add(-1)
	if got := g.Value(); got != 3 {
		t.Errorf("gauge = %v, want 3", got)
	}
}

func TestLabelledCounter(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("http_requests_total", "Requests.", "method", "code")
	c.Inc("GET", "200")
	c.Inc("GET", "200")
	c.Inc("POST", "202")
	if got := c.Value("GET", "200"); got != 2 {
		t.Errorf(`GET/200 = %v, want 2`, got)
	}
	if got := c.Value("POST", "202"); got != 1 {
		t.Errorf(`POST/202 = %v, want 1`, got)
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency_seconds", "Latency.", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 56.05 {
		t.Errorf("sum = %v, want 56.05", h.Sum())
	}

	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		"# TYPE latency_seconds histogram",
		`latency_seconds_bucket{le="0.1"} 1`,
		`latency_seconds_bucket{le="1"} 3`,
		`latency_seconds_bucket{le="10"} 4`,
		`latency_seconds_bucket{le="+Inf"} 5`,
		"latency_seconds_sum 56.05",
		"latency_seconds_count 5",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
}

func TestExpositionFormat(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("runs_total", "Run lifecycle\ntransitions.", "state")
	c.Inc("done")
	c.Add(2, `we"ird\state`)
	g := r.Gauge("workers", "Pool size.")
	g.Set(8)

	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		`# HELP runs_total Run lifecycle\ntransitions.`,
		"# TYPE runs_total counter",
		`runs_total{state="done"} 1`,
		`runs_total{state="we\"ird\\state"} 2`,
		"# TYPE workers gauge",
		"workers 8",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
	// Registration order: runs_total family before workers.
	if strings.Index(text, "runs_total") > strings.Index(text, "workers") {
		t.Errorf("families out of registration order:\n%s", text)
	}
}

func TestIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "X.", "k")
	b := r.Counter("x_total", "X.", "k")
	a.Inc("v")
	if got := b.Value("v"); got != 1 {
		t.Errorf("re-registration returned a distinct counter (value %v)", got)
	}

	defer func() {
		if recover() == nil {
			t.Error("shape mismatch did not panic")
		}
	}()
	r.Gauge("x_total", "X.")
}

func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n_total", "N.", "w")
	h := r.Histogram("d_seconds", "D.", nil)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc(string(rune('a' + i%2)))
				h.Observe(float64(j) / 1000)
			}
		}(i)
	}
	wg.Wait()
	if got := c.Value("a") + c.Value("b"); got != 8000 {
		t.Errorf("concurrent counter = %v, want 8000", got)
	}
	if h.Count() != 8000 {
		t.Errorf("concurrent histogram count = %d, want 8000", h.Count())
	}
}
