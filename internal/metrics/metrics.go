// Package metrics is a dependency-free metrics registry with Prometheus
// text exposition (version 0.0.4).  It exists because the engine needs
// first-class observability — queue waits, sample durations, cache hit
// rates, run lifecycles — without pulling a client library into a
// reproduction repo: the paper's own methodology is measurement-first,
// and so is the service built on it.
//
// Three instrument kinds are supported, each optionally labelled:
//
//   - Counter: a monotonically increasing float64;
//   - Gauge: a float64 that can go up and down;
//   - Histogram: cumulative buckets plus sum and count.
//
// Registration is idempotent: asking a Registry for a metric that
// already exists with the same type and label names returns the existing
// one; a name collision with a different shape panics (programmer
// error).  All instruments are safe for concurrent use.
package metrics

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// kind discriminates instrument types within a registry.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// DefBuckets are the default histogram buckets, in seconds.  They span
// the engine's realistic latencies: a sample run is microseconds to
// seconds, a full experiment minutes.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120, 300,
}

// series is one (label values → state) cell of a metric family.
type series struct {
	value float64 // counter/gauge

	buckets []uint64 // histogram: cumulative is computed at exposition
	sum     float64
	count   uint64
}

// family is one named metric and all its labelled series.
type family struct {
	name    string
	help    string
	kind    kind
	labels  []string
	bounds  []float64 // histogram upper bounds, ascending
	mu      sync.Mutex
	cells   map[string]*series
	ordered []string // label keys in first-use order (sorted at exposition)
}

// Registry holds metric families and renders them in Prometheus text
// format.  The zero value is not usable; call NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	names    []string // registration order
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

var nameRe = func() func(string) bool {
	ok := func(r rune, first bool) bool {
		if r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r == '_' || r == ':' {
			return true
		}
		return !first && r >= '0' && r <= '9'
	}
	return func(s string) bool {
		for i, r := range s {
			if !ok(r, i == 0) {
				return false
			}
		}
		return s != ""
	}
}()

// register returns the family for name, creating it on first use and
// panicking on a shape mismatch.
func (r *Registry) register(name, help string, k kind, bounds []float64, labels []string) *family {
	if !nameRe(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != k || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("metrics: %s re-registered as %s with %d labels (was %s with %d)",
				name, k, len(labels), f.kind, len(f.labels)))
		}
		for i := range labels {
			if f.labels[i] != labels[i] {
				panic(fmt.Sprintf("metrics: %s re-registered with labels %v (was %v)", name, labels, f.labels))
			}
		}
		return f
	}
	f := &family{name: name, help: help, kind: k, labels: labels, bounds: bounds, cells: map[string]*series{}}
	if len(labels) == 0 {
		// A label-less metric exposes its zero value immediately, so
		// scrapes see the series before the first increment.
		f.cell(nil)
	}
	r.families[name] = f
	r.names = append(r.names, name)
	return f
}

// Counter registers (or fetches) a counter family.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	return &Counter{r.register(name, help, kindCounter, nil, labels)}
}

// Gauge registers (or fetches) a gauge family.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	return &Gauge{r.register(name, help, kindGauge, nil, labels)}
}

// Histogram registers (or fetches) a histogram family with the given
// upper bounds (nil = DefBuckets).  Bounds must be strictly ascending;
// the +Inf bucket is implicit.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...string) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: %s buckets not ascending: %v", name, bounds))
		}
	}
	return &Histogram{r.register(name, help, kindHistogram, bounds, labels)}
}

// cell returns the series for the given label values, creating it on
// first use.  The caller must hold f.mu.
func (f *family) cell(labelValues []string) *series {
	if len(labelValues) != len(f.labels) {
		panic(fmt.Sprintf("metrics: %s called with %d label values, want %d (%v)",
			f.name, len(labelValues), len(f.labels), f.labels))
	}
	key := strings.Join(labelValues, "\x00")
	s, ok := f.cells[key]
	if !ok {
		s = &series{}
		if f.kind == kindHistogram {
			s.buckets = make([]uint64, len(f.bounds))
		}
		f.cells[key] = s
		f.ordered = append(f.ordered, key)
	}
	return s
}

// Counter is a monotonically increasing metric.  Label values, if the
// family was registered with label names, are passed on each call.
type Counter struct{ f *family }

// Inc adds 1.
func (c *Counter) Inc(labelValues ...string) { c.Add(1, labelValues...) }

// Add adds v, which must be non-negative.
func (c *Counter) Add(v float64, labelValues ...string) {
	if v < 0 {
		panic(fmt.Sprintf("metrics: counter %s decreased by %v", c.f.name, v))
	}
	c.f.mu.Lock()
	c.f.cell(labelValues).value += v
	c.f.mu.Unlock()
}

// Value reads the counter (0 if the series was never touched).
func (c *Counter) Value(labelValues ...string) float64 {
	c.f.mu.Lock()
	defer c.f.mu.Unlock()
	return c.f.cell(labelValues).value
}

// Gauge is a metric that can rise and fall.
type Gauge struct{ f *family }

// Set replaces the value.
func (g *Gauge) Set(v float64, labelValues ...string) {
	g.f.mu.Lock()
	g.f.cell(labelValues).value = v
	g.f.mu.Unlock()
}

// Add shifts the value by v (negative allowed).
func (g *Gauge) Add(v float64, labelValues ...string) {
	g.f.mu.Lock()
	g.f.cell(labelValues).value += v
	g.f.mu.Unlock()
}

// Value reads the gauge.
func (g *Gauge) Value(labelValues ...string) float64 {
	g.f.mu.Lock()
	defer g.f.mu.Unlock()
	return g.f.cell(labelValues).value
}

// Histogram accumulates observations into cumulative buckets.
type Histogram struct{ f *family }

// Observe records one observation.
func (h *Histogram) Observe(v float64, labelValues ...string) {
	h.f.mu.Lock()
	s := h.f.cell(labelValues)
	// Store per-bucket counts; exposition accumulates them so Observe
	// touches exactly one bucket.
	i := sort.SearchFloat64s(h.f.bounds, v)
	if i < len(s.buckets) {
		s.buckets[i]++
	}
	s.sum += v
	s.count++
	h.f.mu.Unlock()
}

// Count reports the number of observations.
func (h *Histogram) Count(labelValues ...string) uint64 {
	h.f.mu.Lock()
	defer h.f.mu.Unlock()
	return h.f.cell(labelValues).count
}

// Sum reports the sum of observations.
func (h *Histogram) Sum(labelValues ...string) float64 {
	h.f.mu.Lock()
	defer h.f.mu.Unlock()
	return h.f.cell(labelValues).sum
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	var sb strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteRune(r)
		}
	}
	return sb.String()
}

// escapeHelp escapes HELP text per the exposition format.
func escapeHelp(v string) string {
	return strings.ReplaceAll(strings.ReplaceAll(v, `\`, `\\`), "\n", `\n`)
}

func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}

// labelString renders {a="x",b="y"}; extra appends one more pair (used
// for histogram le).  Empty when there are no pairs.
func labelString(names, values []string, extraName, extraValue string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, `%s="%s"`, n, escapeLabel(values[i]))
	}
	if extraName != "" {
		if len(names) > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, `%s="%s"`, extraName, escapeLabel(extraValue))
	}
	sb.WriteByte('}')
	return sb.String()
}

// WriteText renders every family in Prometheus text exposition format.
// Families appear in registration order; series within a family are
// sorted by label values, so output is deterministic.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	names := append([]string{}, r.names...)
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.families[n]
	}
	r.mu.Unlock()

	for _, f := range fams {
		f.mu.Lock()
		keys := append([]string{}, f.ordered...)
		sort.Strings(keys)
		var sb strings.Builder
		fmt.Fprintf(&sb, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&sb, "# TYPE %s %s\n", f.name, f.kind)
		for _, key := range keys {
			s := f.cells[key]
			var values []string
			if len(f.labels) > 0 {
				values = strings.Split(key, "\x00")
			}
			switch f.kind {
			case kindCounter, kindGauge:
				fmt.Fprintf(&sb, "%s%s %s\n", f.name, labelString(f.labels, values, "", ""), formatValue(s.value))
			case kindHistogram:
				var cum uint64
				for i, bound := range f.bounds {
					cum += s.buckets[i]
					fmt.Fprintf(&sb, "%s_bucket%s %d\n", f.name,
						labelString(f.labels, values, "le", formatValue(bound)), cum)
				}
				fmt.Fprintf(&sb, "%s_bucket%s %d\n", f.name,
					labelString(f.labels, values, "le", "+Inf"), s.count)
				fmt.Fprintf(&sb, "%s_sum%s %s\n", f.name, labelString(f.labels, values, "", ""), formatValue(s.sum))
				fmt.Fprintf(&sb, "%s_count%s %d\n", f.name, labelString(f.labels, values, "", ""), s.count)
			}
		}
		f.mu.Unlock()
		if _, err := io.WriteString(w, sb.String()); err != nil {
			return err
		}
	}
	return nil
}

// Handler serves the registry at GET /metrics (or wherever it is
// mounted) in text exposition format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WriteText(w)
	})
}
