// Package experiments contains one driver per table and figure in the
// paper's evaluation (§4), each regenerating the same rows/series the
// paper reports, on the simulated machines.  DESIGN.md carries the
// experiment index; EXPERIMENTS.md records paper-vs-measured outcomes.
//
// Drivers obtain every measurement and calibration through their Options'
// Runtime, so the same driver code runs directly in-process (the zero
// Options) or through internal/engine's worker pool and calibration cache
// — with bit-identical output either way, because sample seeds are
// derived positionally rather than from execution order.
package experiments

import (
	"context"
	"fmt"
	"io"
	"os"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Runtime is the measurement backend a driver runs against.  The engine
// implements it with a worker pool and a process-wide calibration cache;
// a nil Runtime executes directly in-process.
type Runtime interface {
	// Measure runs n samples of bench under env and summarises them.
	Measure(ctx context.Context, b *workload.Benchmark, env workload.Env, n int, seed int64) (stats.Summary, error)
	// Calibration returns the Figure 4 curve for the profile over the
	// given sizes, possibly from a cache.
	Calibration(ctx context.Context, prof *arch.Profile, sizes []int64, seed int64) (core.Calibration, error)
}

// AdaptiveRuntime is optionally implemented by runtimes that support
// sequential stopping natively (the engine does, batching through its
// worker pool).  Runtimes without it still honour adaptive options — the
// drivers fall back to re-measuring at the rule's growth schedule, which
// positional seeding makes byte-identical, just less efficient.
type AdaptiveRuntime interface {
	Runtime
	// MeasureAdaptive samples bench until the stopping rule is met.
	MeasureAdaptive(ctx context.Context, b *workload.Benchmark, env workload.Env, rule stats.StopRule, seed int64) (stats.Summary, error)
}

// FitRecord is one fitted sensitivity produced by a driver, collected for
// the structured result model.
type FitRecord struct {
	Profile string  `json:"profile"`
	Bench   string  `json:"bench"`
	K       float64 `json:"k"`
	StdErr  float64 `json:"stderr"`
}

// Collector accumulates the structured artefacts of one experiment run
// alongside the rendered ASCII output.  A Collector belongs to a single
// driver invocation and is not safe for concurrent use.
type Collector struct {
	Tables       []*report.Table
	Fits         []FitRecord
	Measurements int // Measure calls issued
	Samples      int // individual sample runs issued
}

// Options tunes the experiment drivers.
type Options struct {
	// Samples per measurement; the paper uses six or more (§4.1).
	Samples int
	// Seed is the base random seed.
	Seed int64
	// Short runs a reduced sweep (fewer sizes and samples) for quick
	// iteration and -short tests.
	Short bool
	// Out receives the rendered tables; os.Stdout if nil.
	Out io.Writer
	// Ctx cancels the run between measurements; context.Background()
	// if nil.
	Ctx context.Context
	// RT is the measurement backend; direct in-process execution if
	// nil.
	RT Runtime
	// Collect, when non-nil, receives the run's structured artefacts
	// (tables, fitted sensitivities, measurement counts).
	Collect *Collector
	// Adaptive, when non-nil, replaces the fixed sample count with
	// sequential stopping: every measurement draws samples until the
	// rule's CI precision target is met (or its ceiling reached).  The
	// stopping decision is a pure function of positionally-seeded
	// samples, so adaptive runs remain byte-identical across processes.
	Adaptive *stats.StopRule
}

func (o Options) out() io.Writer {
	if o.Out == nil {
		return os.Stdout
	}
	return o.Out
}

func (o Options) samples() int {
	if o.Samples > 0 {
		return o.Samples
	}
	if o.Short {
		return 3
	}
	return 6
}

func (o Options) seed() int64 {
	if o.Seed != 0 {
		return o.Seed
	}
	return 1
}

func (o Options) ctx() context.Context {
	if o.Ctx != nil {
		return o.Ctx
	}
	return context.Background()
}

// sizes returns the cost-function sweep in loop iterations.
func (o Options) sizes() []int64 {
	if o.Short {
		return []int64{1, 8, 64, 512}
	}
	return []int64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512}
}

// measurer adapts the runtime into the methodology's Measurer, counting
// issued work into the collector.  When Adaptive is set it supersedes the
// fixed sample count n on every measurement the drivers issue.
func (o Options) measurer() core.Measurer {
	return func(b *workload.Benchmark, env workload.Env, n int, seed int64) (stats.Summary, error) {
		if o.Adaptive != nil {
			return o.measureAdaptive(b, env, seed)
		}
		if o.Collect != nil {
			o.Collect.Measurements++
			o.Collect.Samples += n
		}
		if o.RT != nil {
			return o.RT.Measure(o.ctx(), b, env, n, seed)
		}
		if err := o.ctx().Err(); err != nil {
			return stats.Summary{}, err
		}
		return workload.Measure(b, env, n, seed)
	}
}

// measureAdaptive runs one measurement under the sequential stopping rule.
// The engine's native path incrementally extends one sample buffer; the
// fallbacks re-measure at the rule's deterministic growth schedule, which
// positional seeding makes value-identical (the first k samples of an
// n-sample measurement are the same for every n).  Samples are counted
// into the collector at the achieved N, which is how adaptive savings
// become visible in run records.
func (o Options) measureAdaptive(b *workload.Benchmark, env workload.Env, seed int64) (stats.Summary, error) {
	rule := o.Adaptive.WithDefaults()
	if o.Collect != nil {
		o.Collect.Measurements++
	}
	var sum stats.Summary
	var err error
	switch rt := o.RT.(type) {
	case AdaptiveRuntime:
		sum, err = rt.MeasureAdaptive(o.ctx(), b, env, rule, seed)
	default:
		for n := rule.MinSamples; ; n = rule.Next(n) {
			if o.RT != nil {
				sum, err = o.RT.Measure(o.ctx(), b, env, n, seed)
			} else if err = o.ctx().Err(); err == nil {
				sum, err = workload.Measure(b, env, n, seed)
			}
			if err != nil || rule.Done(sum) {
				break
			}
		}
	}
	if err == nil && o.Collect != nil {
		o.Collect.Samples += sum.N
	}
	return sum, err
}

// measure runs one measurement with the options' sample count and seed.
func (o Options) measure(b *workload.Benchmark, env workload.Env) (stats.Summary, error) {
	return o.measurer()(b, env, o.samples(), o.seed())
}

// calibration returns the Figure 4 curve for the profile over sizes,
// through the runtime's cache when one is attached.
func (o Options) calibration(prof *arch.Profile, sizes []int64) (core.Calibration, error) {
	if o.RT != nil {
		return o.RT.Calibration(o.ctx(), prof, sizes, o.seed())
	}
	if err := o.ctx().Err(); err != nil {
		return core.Calibration{}, err
	}
	return core.Calibrate(prof, sizes, o.seed())
}

// scan runs a sensitivity scan through the runtime and records the fitted
// sensitivity in the collector.
func (o Options) scan(cfg core.ScanConfig) (core.ScanResult, error) {
	cfg.Meas = o.measurer()
	res, err := core.SensitivityScan(cfg)
	if err == nil && o.Collect != nil {
		o.Collect.Fits = append(o.Collect.Fits, FitRecord{
			Profile: cfg.Env.Prof.Name,
			Bench:   cfg.Bench.Name,
			K:       res.Sens.K,
			StdErr:  res.Sens.StdErr,
		})
	}
	return res, err
}

// compare runs a strategy comparison through the runtime.
func (o Options) compare(b *workload.Benchmark, base, test workload.Env, allPaths []arch.PathID) (stats.Comparative, error) {
	return core.Session{Meas: o.measurer()}.CompareStrategies(b, base, test, allPaths, o.samples(), o.seed())
}

// survey runs a fixed-probe survey through the runtime.
func (o Options) survey(benches []*workload.Benchmark, env workload.Env, paths []arch.PathID, size int64) ([]core.ProbeResult, error) {
	return core.Session{Meas: o.measurer()}.Survey(benches, env, paths, size, o.samples(), o.seed())
}

// emit renders the table and hands it to the collector.
func (o Options) emit(t *report.Table) {
	if o.Collect != nil {
		o.Collect.Tables = append(o.Collect.Tables, t)
	}
	t.Render(o.out())
}

// profiles returns the evaluation profiles in presentation order.
func profiles() []*arch.Profile {
	return []*arch.Profile{arch.ARMv8(), arch.POWER7()}
}

// calibrations builds the Figure 4 curves needed to convert loop counts
// to nanoseconds on each profile, through the runtime's shared cache when
// one is attached (so concurrent drivers calibrate each profile once per
// process rather than once per driver).
func calibrations(o Options) (map[string]core.Calibration, error) {
	out := map[string]core.Calibration{}
	for _, p := range profiles() {
		cal, err := o.calibration(p, o.sizes())
		if err != nil {
			return nil, fmt.Errorf("calibrating %s: %w", p.Name, err)
		}
		out[p.Name] = cal
	}
	return out, nil
}

// Experiment names a runnable experiment for the CLI and the bench
// harness.
type Experiment struct {
	Name  string
	Desc  string
	Run   func(Options) error
	Paper string // the paper artifact it regenerates
}

// All lists every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"fig1", "example sensitivity fit (k ± error)", Fig1, "Figure 1"},
		{"fig4", "cost-function execution time vs loop count", Fig4, "Figure 4"},
		{"fig5", "JVM benchmark sensitivity to all barriers (arm, power)", Fig5, "Figure 5"},
		{"fig6", "spark sensitivity per elemental barrier", Fig6, "Figure 6"},
		{"fig7", "kernel: summed relative performance per macro", Fig7, "Figure 7"},
		{"fig8", "kernel: summed relative performance per benchmark", Fig8, "Figure 8"},
		{"fig9", "sensitivity to read_barrier_depends (six benchmarks)", Fig9, "Figure 9"},
		{"fig10", "read_barrier_depends strategy comparison", Fig10, "Figure 10"},
		{"txt1", "JVM nop-padding cost", Txt1, "§4.2"},
		{"txt2", "StoreStore barrier swap (dmb ishst→ish, lwsync→sync)", Txt2, "§4.2.1"},
		{"txt3", "barrier instruction microbenchmarks", Txt3, "§4.2.1/§4.4"},
		{"txt4", "JDK9 acq/rel vs JDK8 barriers per benchmark", Txt4, "§4.2.1"},
		{"txt5", "DMB-elimination lock patch", Txt5, "§4.2.1"},
		{"txt6", "kernel nop-padding cost", Txt6, "§4.3"},
		{"txt7", "cost increases of rbd strategies (equation 2)", Txt7, "§4.3.1"},
		{"litmus", "weak-memory litmus conformance", Litmus, "substrate validation"},
		{"ablations", "design-choice ablations (SB depth, MCA, speculation, fit model)", Ablations, "DESIGN.md §6"},
		{"counters", "invocation-counter alternative (the §3 comparison)", Counters, "§3"},
		{"ext-jit", "compiler-optimisation code-path sensitivity (§6 future work)", JITExtension, "§6"},
		{"ext-c11", "memory_order pricing on lock-free structures (§6 future work)", C11Extension, "§6"},
	}
}

// ByName returns the named experiment.
func ByName(name string) (Experiment, error) {
	for _, e := range All() {
		if e.Name == name {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q", name)
}

// Header is the banner RunAll prints before each experiment; the engine
// callers reuse it so batched parallel output is byte-identical to the
// sequential run.
func Header(e Experiment) string {
	return fmt.Sprintf("=== %s (%s): %s ===\n", e.Name, e.Paper, e.Desc)
}

// RunAll executes every experiment in order.
func RunAll(o Options) error {
	for _, e := range All() {
		if err := o.ctx().Err(); err != nil {
			return err
		}
		fmt.Fprint(o.out(), Header(e))
		if err := e.Run(o); err != nil {
			return fmt.Errorf("%s: %w", e.Name, err)
		}
	}
	return nil
}
