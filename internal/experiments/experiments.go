// Package experiments contains one driver per table and figure in the
// paper's evaluation (§4), each regenerating the same rows/series the
// paper reports, on the simulated machines.  DESIGN.md carries the
// experiment index; EXPERIMENTS.md records paper-vs-measured outcomes.
package experiments

import (
	"fmt"
	"io"
	"os"

	"repro/internal/arch"
	"repro/internal/core"
)

// Options tunes the experiment drivers.
type Options struct {
	// Samples per measurement; the paper uses six or more (§4.1).
	Samples int
	// Seed is the base random seed.
	Seed int64
	// Short runs a reduced sweep (fewer sizes and samples) for quick
	// iteration and -short tests.
	Short bool
	// Out receives the rendered tables; os.Stdout if nil.
	Out io.Writer
}

func (o Options) out() io.Writer {
	if o.Out == nil {
		return os.Stdout
	}
	return o.Out
}

func (o Options) samples() int {
	if o.Samples > 0 {
		return o.Samples
	}
	if o.Short {
		return 3
	}
	return 6
}

func (o Options) seed() int64 {
	if o.Seed != 0 {
		return o.Seed
	}
	return 1
}

// sizes returns the cost-function sweep in loop iterations.
func (o Options) sizes() []int64 {
	if o.Short {
		return []int64{1, 8, 64, 512}
	}
	return []int64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512}
}

// profiles returns the evaluation profiles in presentation order.
func profiles() []*arch.Profile {
	return []*arch.Profile{arch.ARMv8(), arch.POWER7()}
}

// calibrations builds (and caches per call) the Figure 4 curves needed to
// convert loop counts to nanoseconds on each profile.
func calibrations(o Options) (map[string]core.Calibration, error) {
	out := map[string]core.Calibration{}
	for _, p := range profiles() {
		cal, err := core.Calibrate(p, o.sizes(), o.seed())
		if err != nil {
			return nil, fmt.Errorf("calibrating %s: %w", p.Name, err)
		}
		out[p.Name] = cal
	}
	return out, nil
}

// Experiment names a runnable experiment for the CLI and the bench
// harness.
type Experiment struct {
	Name  string
	Desc  string
	Run   func(Options) error
	Paper string // the paper artifact it regenerates
}

// All lists every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"fig1", "example sensitivity fit (k ± error)", Fig1, "Figure 1"},
		{"fig4", "cost-function execution time vs loop count", Fig4, "Figure 4"},
		{"fig5", "JVM benchmark sensitivity to all barriers (arm, power)", Fig5, "Figure 5"},
		{"fig6", "spark sensitivity per elemental barrier", Fig6, "Figure 6"},
		{"fig7", "kernel: summed relative performance per macro", Fig7, "Figure 7"},
		{"fig8", "kernel: summed relative performance per benchmark", Fig8, "Figure 8"},
		{"fig9", "sensitivity to read_barrier_depends (six benchmarks)", Fig9, "Figure 9"},
		{"fig10", "read_barrier_depends strategy comparison", Fig10, "Figure 10"},
		{"txt1", "JVM nop-padding cost", Txt1, "§4.2"},
		{"txt2", "StoreStore barrier swap (dmb ishst→ish, lwsync→sync)", Txt2, "§4.2.1"},
		{"txt3", "barrier instruction microbenchmarks", Txt3, "§4.2.1/§4.4"},
		{"txt4", "JDK9 acq/rel vs JDK8 barriers per benchmark", Txt4, "§4.2.1"},
		{"txt5", "DMB-elimination lock patch", Txt5, "§4.2.1"},
		{"txt6", "kernel nop-padding cost", Txt6, "§4.3"},
		{"txt7", "cost increases of rbd strategies (equation 2)", Txt7, "§4.3.1"},
		{"litmus", "weak-memory litmus conformance", Litmus, "substrate validation"},
		{"ablations", "design-choice ablations (SB depth, MCA, speculation, fit model)", Ablations, "DESIGN.md §6"},
		{"counters", "invocation-counter alternative (the §3 comparison)", Counters, "§3"},
		{"ext-jit", "compiler-optimisation code-path sensitivity (§6 future work)", JITExtension, "§6"},
		{"ext-c11", "memory_order pricing on lock-free structures (§6 future work)", C11Extension, "§6"},
	}
}

// ByName returns the named experiment.
func ByName(name string) (Experiment, error) {
	for _, e := range All() {
		if e.Name == name {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q", name)
}

// RunAll executes every experiment in order.
func RunAll(o Options) error {
	for _, e := range All() {
		fmt.Fprintf(o.out(), "=== %s (%s): %s ===\n", e.Name, e.Paper, e.Desc)
		if err := e.Run(o); err != nil {
			return fmt.Errorf("%s: %w", e.Name, err)
		}
	}
	return nil
}
