package experiments

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/costfn"
	"repro/internal/litmus"
	"repro/internal/report"
)

// Txt3 regenerates the barrier microbenchmarks behind §4.2.1 and §4.4: the
// in-vitro execution time of each barrier instruction.  The paper measures
// lwsync at 6.1 ns and sync at 18.9 ns on POWER7, and cannot distinguish
// the dmb variants on the X-Gene 1 beyond ishld/ishst being slightly
// faster than ish.
func Txt3(o Options) error {
	type probe struct {
		name string
		emit func(*arch.Builder)
	}
	seeds := int64(3)
	if o.Short {
		seeds = 1
	}
	for _, prof := range profiles() {
		if err := o.ctx().Err(); err != nil {
			return err
		}
		var probes []probe
		if prof.Flavor == arch.MCA {
			probes = []probe{
				{"dmb ish", func(b *arch.Builder) { b.Fence(arch.DMBIsh) }},
				{"dmb ishld", func(b *arch.Builder) { b.Fence(arch.DMBIshLd) }},
				{"dmb ishst", func(b *arch.Builder) { b.Fence(arch.DMBIshSt) }},
				{"isb", func(b *arch.Builder) { b.Fence(arch.ISB) }},
				{"ldar", func(b *arch.Builder) { b.LoadAcq(5, 6, 128) }},
				{"stlr", func(b *arch.Builder) { b.StoreRel(5, 6, 128) }},
			}
		} else {
			probes = []probe{
				{"lwsync", func(b *arch.Builder) { b.Fence(arch.LwSync) }},
				{"hwsync (sync)", func(b *arch.Builder) { b.Fence(arch.HwSync) }},
				{"isync", func(b *arch.Builder) { b.Fence(arch.ISB) }},
			}
		}
		t := report.New(fmt.Sprintf("TXT3 (%s): barrier instruction microbenchmarks", prof.Name),
			"sequence", "marginal time (ns)")
		timer := costfn.NewTimer(prof)
		for _, p := range probes {
			var sum float64
			for s := int64(0); s < seeds; s++ {
				ns, err := timer.TimeSequence(p.emit, o.seed()+s*31)
				if err != nil {
					return err
				}
				sum += ns
			}
			t.Addf("%s\t%.2f", p.name, sum/float64(seeds))
		}
		if prof.Flavor == arch.NonMCA {
			t.Note("paper: lwsync 6.1 ns, sync 18.9 ns (threefold difference)")
		} else {
			t.Note("paper: dmb variants indistinguishable beyond ishld/ishst being faster than ish")
		}
		o.emit(t)
	}
	return nil
}

// Litmus runs the weak-memory conformance suite on both profiles,
// validating that the simulated machines exhibit and forbid exactly the
// behaviours the paper's target architectures do — the precondition for
// every other experiment meaning anything.
func Litmus(o Options) error {
	for _, prof := range profiles() {
		if err := o.ctx().Err(); err != nil {
			return err
		}
		trials := 400
		if o.Short {
			trials = 120
		}
		r := &litmus.Runner{Prof: prof, Trials: trials, Seed: o.seed() + 1}
		t := report.New(fmt.Sprintf("Litmus conformance (%s)", prof.Name),
			"test", "expectation", "relaxed/hits", "verdict")
		for _, test := range litmus.Suite(prof.Name) {
			out, err := r.Check(test)
			verdict := "ok"
			if err != nil {
				verdict = "VIOLATION"
			}
			t.Addf("%s\t%s\t%d/%d\t%s", test.Name, test.Expect[prof.Name], out.Relaxed, out.Hits, verdict)
			if err != nil {
				t.Note("%v", err)
			}
		}
		o.emit(t)
	}
	return nil
}
