package experiments

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/fit"
	"repro/internal/litmus"
	"repro/internal/report"
)

// Ablations probes the design choices DESIGN.md §6 calls out, by re-running
// targeted litmus campaigns and fits under modified machines:
//
//  1. store-buffer depth — how the relaxation window of the SB shape
//     responds to buffering capacity;
//  2. multi-copy atomicity — IRIW disagreement disappears when the POWER
//     profile's storage is made other-multi-copy-atomic;
//  3. load speculation — the ctrl shape's relaxation disappears when loads
//     may not issue past unresolved branches;
//  4. the sensitivity-model form — footnote 4's 1/((1-k)+ka) against the
//     naive 1/(1+ka).
func Ablations(o Options) error {
	for _, step := range []func(Options) error{
		ablationSBDepth, ablationMCA, ablationSpeculation, ablationFitModel,
	} {
		if err := o.ctx().Err(); err != nil {
			return err
		}
		if err := step(o); err != nil {
			return err
		}
	}
	return nil
}

func sbShape(prof *arch.Profile, trials int, seed int64) (litmus.Outcome, error) {
	var sb *litmus.Test
	for _, t := range litmus.Suite(prof.Name) {
		if t.Name == "SB" {
			sb = t
			break
		}
	}
	if sb == nil {
		return litmus.Outcome{}, fmt.Errorf("SB shape missing from suite")
	}
	r := &litmus.Runner{Prof: prof, Trials: trials, Seed: seed}
	return r.Run(sb)
}

// ablationSBDepth sweeps the store-buffer depth and reports the SB shape's
// relaxation rate: deeper buffering widens the window between a store's
// retirement and its visibility.
func ablationSBDepth(o Options) error {
	trials := 600
	if o.Short {
		trials = 200
	}
	t := report.New("Ablation: store-buffer depth vs SB-shape relaxation rate (armv8)",
		"SB depth", "store drain (cycles)", "relaxed / trials")
	for _, cfg := range []struct{ depth, drain int64 }{
		{1, 1}, {2, 4}, {12, 14}, {24, 28},
	} {
		prof := arch.ARMv8()
		prof.Pipe.SBDepth = int(cfg.depth)
		prof.Lat.StoreDrain = cfg.drain
		out, err := sbShape(prof, trials, o.seed())
		if err != nil {
			return err
		}
		t.Addf("%d\t%d\t%d / %d", cfg.depth, cfg.drain, out.Relaxed, out.Trials)
	}
	t.Note("shallow, fast-draining buffers shrink the window; the shape never becomes forbidden (TSO also allows SB)")
	o.emit(t)
	return nil
}

// ablationMCA runs IRIW on the POWER profile with and without
// multi-copy-atomic storage.
func ablationMCA(o Options) error {
	trials := 800
	if o.Short {
		trials = 300
	}
	var iriw *litmus.Test
	for _, test := range litmus.Suite("power7") {
		if test.Name == "IRIW+addr+addr" {
			iriw = test
			break
		}
	}
	if iriw == nil {
		return fmt.Errorf("IRIW shape missing")
	}
	t := report.New("Ablation: multi-copy atomicity vs IRIW disagreement (power7 profile)",
		"storage", "relaxed / trials")
	for _, mca := range []bool{false, true} {
		prof := arch.POWER7()
		if mca {
			prof.Flavor = arch.MCA
		}
		r := &litmus.Runner{Prof: prof, Trials: trials, Seed: o.seed()}
		out, err := r.Run(iriw)
		if err != nil {
			return err
		}
		t.Addf("%s\t%d / %d", prof.Flavor, out.Relaxed, out.Trials)
	}
	t.Note("IRIW requires non-multi-copy-atomic stores; forcing MCA must eliminate it")
	o.emit(t)
	return nil
}

// ablationSpeculation runs the MP+ishst+ctl shape with and without load
// speculation past unresolved branches.
func ablationSpeculation(o Options) error {
	trials := 800
	if o.Short {
		trials = 300
	}
	var ctl *litmus.Test
	for _, test := range litmus.Suite("armv8") {
		if test.Name == "MP+ishst+ctl" {
			ctl = test
			break
		}
	}
	if ctl == nil {
		return fmt.Errorf("MP+ishst+ctl shape missing")
	}
	t := report.New("Ablation: load speculation vs the ctrl shape (armv8)",
		"speculation", "relaxed / hits")
	for _, spec := range []bool{true, false} {
		prof := arch.ARMv8()
		prof.Pipe.NoLoadSpeculation = !spec
		r := &litmus.Runner{Prof: prof, Trials: trials, Seed: o.seed()}
		out, err := r.Run(ctl)
		if err != nil {
			return err
		}
		name := "on (real hardware)"
		if !spec {
			name = "off (in-order loads)"
		}
		t.Addf("%s\t%d / %d", name, out.Relaxed, out.Hits)
	}
	t.Note("control dependencies only fail to order loads because of speculation; disabling it forbids the shape")
	o.emit(t)
	return nil
}

// ablationFitModel compares footnote 4's model against the naive form on
// synthetic data at the paper's k scale.
func ablationFitModel(o Options) error {
	t := report.New("Ablation: sensitivity-model form (footnote 4)",
		"true k", "fit 1/((1-k)+ka)", "fit 1/(1+ka)", "divergence")
	for _, k := range []float64{0.0002, 0.00277, 0.0133, 0.08} {
		var pts []fit.Point
		for a := 1.0; a <= 4096; a *= 2 {
			pts = append(pts, fit.Point{A: a, P: fit.Model(k, a)})
		}
		full, err := fit.FitSensitivity(pts)
		if err != nil {
			return err
		}
		naive, err := fit.FitNaive(pts)
		if err != nil {
			return err
		}
		t.Addf("%.5f\t%.5f\t%.5f\t%.2f%%", k, full.K, naive.K, 100*(naive.K-full.K)/full.K)
	}
	t.Note("for the small k values of real benchmarks the forms coincide, as footnote 4 argues")
	o.emit(t)
	return nil
}
