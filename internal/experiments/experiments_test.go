package experiments

import (
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) != 20 {
		t.Fatalf("registry has %d experiments, want 20", len(all))
	}
	// Every figure and in-text table of the paper's evaluation must be
	// covered.
	want := []string{
		"fig1", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
		"txt1", "txt2", "txt3", "txt4", "txt5", "txt6", "txt7", "litmus",
		"ablations", "counters", "ext-jit", "ext-c11",
	}
	for i, name := range want {
		if all[i].Name != name {
			t.Errorf("experiment %d = %q, want %q", i, all[i].Name, name)
		}
	}
	if _, err := ByName("fig5"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("bogus"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestOptionsDefaults(t *testing.T) {
	var o Options
	if o.samples() != 6 {
		t.Errorf("default samples = %d", o.samples())
	}
	o.Short = true
	if o.samples() != 3 {
		t.Errorf("short samples = %d", o.samples())
	}
	o.Samples = 9
	if o.samples() != 9 {
		t.Errorf("explicit samples = %d", o.samples())
	}
	if o.seed() != 1 {
		t.Errorf("default seed = %d", o.seed())
	}
	if len(o.sizes()) != 4 {
		t.Errorf("short sizes = %v", o.sizes())
	}
	o.Short = false
	if len(o.sizes()) != 10 {
		t.Errorf("full sizes = %v", o.sizes())
	}
}

// TestCheapDriversRun exercises the fast experiment drivers end to end.
func TestCheapDriversRun(t *testing.T) {
	var sb strings.Builder
	o := Options{Short: true, Out: &sb, Seed: 2}
	if err := Txt3(o); err != nil {
		t.Fatalf("txt3: %v", err)
	}
	if err := Fig4(o); err != nil {
		t.Fatalf("fig4: %v", err)
	}
	out := sb.String()
	for _, want := range []string{"hwsync", "Figure 4", "power"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

// TestScanDriversRun exercises one sensitivity-scan driver and one
// strategy driver (minutes-scale under -short they are skipped).
func TestScanDriversRun(t *testing.T) {
	if testing.Short() {
		t.Skip("scan drivers are expensive")
	}
	var sb strings.Builder
	o := Options{Short: true, Samples: 2, Out: &sb, Seed: 2}
	if err := Fig1(o); err != nil {
		t.Fatalf("fig1: %v", err)
	}
	if err := Txt5(o); err != nil {
		t.Fatalf("txt5: %v", err)
	}
	out := sb.String()
	if !strings.Contains(out, "fitted k=") {
		t.Errorf("fig1 output missing fit: %s", out)
	}
	if !strings.Contains(out, "acq/rel") {
		t.Errorf("txt5 output missing strategies")
	}
}
