package experiments

import (
	"fmt"
	"sort"

	"repro/internal/arch"
	"repro/internal/platform/kernel"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/workload"
	"repro/internal/workload/linuxbench"
)

// Counters demonstrates the instrumentation alternative §3 of the paper
// considers and rejects: counting code-path invocations.  The simulator can
// count retired instructions per code path without perturbation (real
// counters cannot), so this experiment shows both what counters reveal —
// invocation frequency is indicative of sensitivity — and what they miss:
// the context-dependent cost of an invocation.  It reports, per kernel
// benchmark, the invocation rate of each macro next to the measured
// fixed-probe impact, so the divergence (e.g. macros invoked equally often
// but with different impact) is visible.
func Counters(o Options) error {
	prof := arch.ARMv8()
	benches := linuxbench.Suite()
	if o.Short {
		benches = benches[:4]
	}

	type row struct {
		bench string
		rates map[arch.PathID]float64 // invocations per 1000 work units
	}
	var rows []row
	for _, b := range benches {
		if err := o.ctx().Err(); err != nil {
			return err
		}
		counts, work, err := countSites(b, prof, o.seed())
		if err != nil {
			return err
		}
		r := row{bench: b.Name, rates: map[arch.PathID]float64{}}
		for _, p := range kernel.Paths {
			if int(p) < len(counts) && work > 0 {
				r.rates[p] = float64(counts[p]) * 1000 / float64(work)
			}
		}
		rows = append(rows, r)
	}

	// Rank macros by total invocation rate, the counter analogue of
	// Figure 7's impact ranking.
	totals := map[arch.PathID]float64{}
	for _, r := range rows {
		for p, v := range r.rates {
			totals[p] += v
		}
	}
	order := append([]arch.PathID{}, kernel.Paths...)
	sort.SliceStable(order, func(i, j int) bool { return totals[order[i]] > totals[order[j]] })

	t := report.New("Counters (§3's rejected alternative): macro invocations per 1000 work units",
		append([]string{"benchmark"}, pathNames(order[:6])...)...)
	for _, r := range rows {
		cells := []string{r.bench}
		for _, p := range order[:6] {
			cells = append(cells, fmt.Sprintf("%.1f", r.rates[p]))
		}
		t.Add(cells...)
	}
	t.Note("invocation counts are indicative of sensitivity but not conclusive (§3): they cannot")
	t.Note("see the context-dependent cost of an invocation, which is why the cost-function")
	t.Note("methodology exists — compare this ranking with Figure 7's measured impacts")
	o.emit(t)
	return nil
}

func pathNames(ps []arch.PathID) []string {
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = kernel.PathName(p)
	}
	return out
}

func countSites(b *workload.Benchmark, prof *arch.Profile, seed int64) ([]uint64, int64, error) {
	m, err := sim.New(prof, sim.Config{
		Cores:        pick(b.Cores, 4),
		MemWords:     pick(b.MemWords, 1<<15),
		Seed:         seed,
		WarmupCycles: pick64(b.MaxCycles, 150_000) / 5,
	})
	if err != nil {
		return nil, 0, err
	}
	ctx := &workload.BuildCtx{M: m, Prof: prof}
	switch b.Platform {
	case workload.KernelPlatform:
		ctx.Kernel = kernel.New(kernel.Config{Prof: prof, Strategy: kernel.Default()})
	default:
		return nil, 0, fmt.Errorf("counters: only kernel benchmarks are surveyed")
	}
	s := uint64(seed)*2654435761 + 7
	ctx.Rand = func() uint64 { s = s*2862933555777941757 + 3037000493; return s }
	if err := b.Build(ctx); err != nil {
		return nil, 0, err
	}
	res, err := m.Run(pick64(b.MaxCycles, 150_000))
	if err != nil {
		return nil, 0, err
	}
	return res.SiteCounts, res.TotalWork, nil
}

func pick(v, def int) int {
	if v > 0 {
		return v
	}
	return def
}

func pick64(v, def int64) int64 {
	if v > 0 {
		return v
	}
	return def
}
