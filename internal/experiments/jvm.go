package experiments

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/costfn"
	"repro/internal/platform/jvm"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/workload"
	"repro/internal/workload/javabench"
)

// jvmAllBarriers is the instrumented path set for "inject into all memory
// barriers" (Figure 5): one injection per emitted composite barrier.
var jvmAllBarriers = []arch.PathID{jvm.PathAnyBarrier}

// jvmElementals is the instrumented set for the per-elemental experiments
// (Figure 6).
var jvmElementals = []arch.PathID{
	jvm.PathLoadLoad, jvm.PathLoadStore, jvm.PathStoreLoad, jvm.PathStoreStore,
}

// Fig1 regenerates Figure 1: an example of fitting the sensitivity model
// to a real scan (the paper's example fits k = 0.00277 ± 2.5%; tomcat on
// the ARM profile sits in the same neighbourhood).
func Fig1(o Options) error {
	prof := arch.ARMv8()
	sizes := o.sizes()
	if !o.Short {
		// Figure 1's x-axis extends to 2^14 loop iterations.
		sizes = append(append([]int64{}, sizes...), 1024, 2048, 4096, 8192, 16384)
	}
	cal, err := o.calibration(prof, sizes)
	if err != nil {
		return err
	}
	res, err := o.scan(core.ScanConfig{
		Bench:     javabench.Tomcat(),
		Env:       workload.DefaultEnv(prof),
		CostPaths: jvmAllBarriers,
		AllPaths:  jvmAllBarriers,
		Sizes:     sizes,
		Samples:   o.samples(),
		Seed:      o.seed(),
		Cal:       cal,
	})
	if err != nil {
		return err
	}
	t := report.New("Figure 1: example sensitivity fit (tomcat, armv8)",
		"cost size (iters)", "cost (ns)", "relative perf (sample)", "model fit")
	for _, p := range res.Points {
		t.Addf("%d\t%.1f\t%.4f\t%.4f", p.Iterations, p.Ns, p.P, modelAt(res.Sens.K, p.Ns))
	}
	t.Note("fitted %v (paper's example: k=0.00277 ± 2.5%%)", res.Sens)
	o.emit(t)
	return nil
}

func modelAt(k, a float64) float64 { return 1 / ((1 - k) + k*a) }

// Fig4 regenerates Figure 4: the time taken to execute each cost-function
// variant for increasing loop counts (arm, arm-nostack, power).
func Fig4(o Options) error {
	// Fig4 times the cost functions directly rather than through the
	// runtime, so it carries its own cancellation check.
	if err := o.ctx().Err(); err != nil {
		return err
	}
	sizes := []int64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}
	if o.Short {
		sizes = []int64{1, 8, 64, 512}
	}
	type col struct {
		name  string
		prof  *arch.Profile
		v     costfn.Variant
		curve []costfn.CalPoint
	}
	cols := []col{
		{"arm", arch.ARMv8(), costfn.ARM, nil},
		{"arm-nostack", arch.ARMv8(), costfn.ARMNoStack, nil},
		{"power", arch.POWER7(), costfn.POWER, nil},
	}
	for i := range cols {
		curve, err := costfn.Calibrate(cols[i].prof, cols[i].v, sizes, o.seed())
		if err != nil {
			return err
		}
		cols[i].curve = curve
	}
	t := report.New("Figure 4: cost-function execution time (ns)",
		"loop iterations", "arm", "arm-nostack", "power")
	for i, n := range sizes {
		t.Addf("%d\t%.2f\t%.2f\t%.2f", n,
			cols[0].curve[i].Ns, cols[1].curve[i].Ns, cols[2].curve[i].Ns)
	}
	t.Note("linear for large counts; the spilling variants add two memory operations")
	o.emit(t)
	return nil
}

// paperFig5 carries the paper's fitted k values for the EXPERIMENTS.md
// comparison columns.
var paperFig5 = map[string]map[string]string{
	"armv8": {
		"h2": "0.00339±6%", "lusearch": "0.00213±6%", "spark": "0.00870±6%",
		"sunflow": "0.00187±6%", "tomcat": "0.00250±3%", "tradebeans": "0.00262±7%",
		"tradesoap": "0.00238±4%", "xalan": "0.00606±3%",
	},
	"power7": {
		"h2": "0.00251±4%", "lusearch": "0.00118±5%", "spark": "0.01227±7%",
		"sunflow": "0.00164±7%", "tomcat": "0.00397±3%", "tradebeans": "0.00385±2%",
		"tradesoap": "0.00314±2%", "xalan": "0.00152±14%",
	},
}

// Fig5 regenerates Figure 5: the sensitivity of each JVM benchmark to the
// whole fencing strategy (cost functions in every memory barrier), on both
// architectures.
func Fig5(o Options) error {
	cals, err := calibrations(o)
	if err != nil {
		return err
	}
	for _, prof := range profiles() {
		t := report.New(fmt.Sprintf("Figure 5 (%s): sensitivity to all memory barriers", prof.Name),
			"benchmark", "k (fitted)", "stability", "paper k")
		for _, b := range javabench.Suite() {
			res, err := o.scan(core.ScanConfig{
				Bench:     b,
				Env:       workload.DefaultEnv(prof),
				CostPaths: jvmAllBarriers,
				AllPaths:  jvmAllBarriers,
				Sizes:     o.sizes(),
				Samples:   o.samples(),
				Seed:      o.seed(),
				Cal:       cals[prof.Name],
			})
			if err != nil {
				return err
			}
			t.Addf("%s\t%v\t%s\t%s", b.Name, res.Sens, core.Classify(res.Sens), paperFig5[prof.Name][b.Name])
		}
		o.emit(t)
	}
	return nil
}

// paperFig6 carries the paper's per-elemental spark sensitivities.
var paperFig6 = map[string]map[string]string{
	"armv8": {
		"LoadLoad": "0.00580±4%", "LoadStore": "0.00592±3%",
		"StoreLoad": "0.00507±4%", "StoreStore": "0.00885±3%",
	},
	"power7": {
		"LoadLoad": "0.00102±3%", "LoadStore": "0.00743±7%",
		"StoreLoad": "0.00093±7%", "StoreStore": "0.01333±4%",
	},
}

// Fig6 regenerates Figure 6: the sensitivity of the spark benchmark to
// each elemental memory barrier in turn.
func Fig6(o Options) error {
	cals, err := calibrations(o)
	if err != nil {
		return err
	}
	for _, prof := range profiles() {
		t := report.New(fmt.Sprintf("Figure 6 (%s): spark sensitivity per elemental barrier", prof.Name),
			"elemental", "k (fitted)", "paper k")
		for _, e := range jvm.Elementals {
			res, err := o.scan(core.ScanConfig{
				Bench:     javabench.Spark(),
				Env:       workload.DefaultEnv(prof),
				CostPaths: []arch.PathID{jvm.PathFor(e)},
				AllPaths:  jvmElementals,
				Sizes:     o.sizes(),
				Samples:   o.samples(),
				Seed:      o.seed(),
				Cal:       cals[prof.Name],
			})
			if err != nil {
				return err
			}
			t.Addf("%s\t%v\t%s", e, res.Sens, paperFig6[prof.Name][e.String()])
		}
		t.Note("shape criterion: StoreStore dominates on both architectures")
		o.emit(t)
	}
	return nil
}

// Txt1 measures the cost of the nop placeholders themselves: the paper
// reports a peak drop of 4.5% (h2 on ARM) and means of 1.9% (ARM) and
// 0.7% (POWER) from inserting nops into every elemental barrier.
func Txt1(o Options) error {
	for _, prof := range profiles() {
		t := report.New(fmt.Sprintf("TXT1 (%s): nop insertion into every elemental barrier", prof.Name),
			"benchmark", "relative perf", "change")
		var ratios []float64
		for _, b := range javabench.Suite() {
			clean, err := o.measure(b, workload.DefaultEnv(prof))
			if err != nil {
				return err
			}
			padded, err := o.measure(b, workload.DefaultEnv(prof).NopBase(jvmElementals))
			if err != nil {
				return err
			}
			rel := stats.Compare(padded, clean)
			ratios = append(ratios, rel.Ratio)
			t.Addf("%s\t%.5f\t%s", b.Name, rel.Ratio, report.Pct(rel.Ratio))
		}
		t.Note("mean %.2f%% (paper: ARM -1.9%%, POWER -0.7%%; peak -4.5%%)",
			100*(stats.Mean(ratios)-1))
		o.emit(t)
	}
	return nil
}

// Txt2 regenerates the §4.2.1 StoreStore swap experiment: lowering the
// StoreStore elemental to the full barrier (ARM dmb ishst→dmb ish, POWER
// lwsync→sync), measuring the drop on spark, and converting it to a
// per-invocation cost increase through the fitted StoreStore sensitivity.
func Txt2(o Options) error {
	cals, err := calibrations(o)
	if err != nil {
		return err
	}
	for _, prof := range profiles() {
		scan, err := o.scan(core.ScanConfig{
			Bench:     javabench.Spark(),
			Env:       workload.DefaultEnv(prof),
			CostPaths: []arch.PathID{jvm.PathStoreStore},
			AllPaths:  jvmElementals,
			Sizes:     o.sizes(),
			Samples:   o.samples(),
			Seed:      o.seed(),
			Cal:       cals[prof.Name],
		})
		if err != nil {
			return err
		}
		base := workload.DefaultEnv(prof)
		test := base
		st := test.JVMStrategy
		st.HeavyStoreStore = true
		test.JVMStrategy = st
		t := report.New(fmt.Sprintf("TXT2 (%s): StoreStore lowered to the full barrier", prof.Name),
			"benchmark", "relative perf", "significant", "k(StoreStore)", "cost increase a")
		var others []float64
		for _, b := range javabench.Suite() {
			rel, err := o.compare(b, base, test, jvmElementals)
			if err != nil {
				return err
			}
			if b.Name == "spark" {
				a := core.CostOfChange(scan.Sens, rel)
				t.Addf("%s\t%.5f\t%s\t%v\t%.1f ns", b.Name, rel.Ratio,
					report.Sig(rel.Significant()), scan.Sens, a)
			} else {
				a := core.CostOfChange(scan.Sens, rel)
				others = append(others, a)
				t.Addf("%s\t%.5f\t%s\t\t%.1f ns", b.Name, rel.Ratio,
					report.Sig(rel.Significant()), a)
			}
		}
		t.Note("mean cost increase over non-spark benchmarks: %.1f ns", stats.Mean(others))
		if prof.Flavor == arch.NonMCA {
			t.Note("paper: spark -12.5%%, a = 11.7 ns; cross-benchmark mean 11.8 ns")
		} else {
			t.Note("paper: spark -0.7%%, a = 1.8 ns")
		}
		o.emit(t)
	}
	return nil
}

// Txt4 regenerates the §4.2.1 acq/rel experiment on ARM: JDK9
// load-acquire/store-release volatiles against JDK8 barriers.  The paper
// measures xalan +2.9%, sunflow +3.0%, h2 -0.3%, spark -0.5%,
// tomcat -1.7%, with lusearch/tradebeans/tradesoap not significant.
func Txt4(o Options) error {
	prof := arch.ARMv8()
	base := workload.DefaultEnv(prof)
	test := base
	test.JVMStrategy = jvm.JDK9()
	t := report.New("TXT4 (armv8): JDK9 acq/rel vs JDK8 barriers",
		"benchmark", "relative perf", "change", "significant")
	for _, b := range javabench.Suite() {
		rel, err := o.compare(b, base, test, jvmAllBarriers)
		if err != nil {
			return err
		}
		t.Addf("%s\t%.5f\t%s\t%s", b.Name, rel.Ratio, report.Pct(rel.Ratio), report.Sig(rel.Significant()))
	}
	t.Note("paper: xalan +2.9%%, sunflow +3.0%%, h2 -0.3%%, spark -0.5%%, tomcat -1.7%%, rest n.s.")
	o.emit(t)
	return nil
}

// Txt5 regenerates the §4.2.1 lock-patch experiment: the pending
// DMB-elimination change to the AArch64 synchronization code, measured on
// spark under both volatile strategies.  The paper measures +2.9% with
// acq/rel and -1.0% with barriers.
func Txt5(o Options) error {
	prof := arch.ARMv8()
	t := report.New("TXT5 (armv8): DMB-elimination lock patch on spark",
		"volatile strategy", "relative perf", "change", "significant")
	for _, acqrel := range []bool{true, false} {
		base := workload.DefaultEnv(prof)
		st := jvm.JDK8()
		if acqrel {
			st = jvm.JDK9()
		}
		base.JVMStrategy = st
		test := base
		st.LockPatch = true
		test.JVMStrategy = st
		rel, err := o.compare(javabench.Spark(), base, test, jvmAllBarriers)
		if err != nil {
			return err
		}
		name := "barriers (jdk8)"
		if acqrel {
			name = "acq/rel (jdk9)"
		}
		t.Addf("%s\t%.5f\t%s\t%s", name, rel.Ratio, report.Pct(rel.Ratio), report.Sig(rel.Significant()))
	}
	t.Note("paper: +2.9%% with acq/rel, -1.0%% with barriers")
	o.emit(t)
	return nil
}
