package experiments

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/platform/c11"
	"repro/internal/platform/jvm"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/workload"
	"repro/internal/workload/c11bench"
	"repro/internal/workload/javabench"
)

// JITExtension implements the paper's §6 future work: "explore the
// annotation of code paths related to compiler optimisations ... with the
// JVM JIT compiler this could be accomplished by adding a dedicated cost
// function IR node which is added to code paths where a given optimisation
// occurs or would occur."
//
// The JVM platform emits such a node (jvm.PathJITOpt) at every
// redundant-load-elimination site; this driver runs the standard
// sensitivity scan against that code path, yielding per-benchmark k values
// for a *compiler optimisation* exactly as Figures 5/9 do for fencing
// decisions — the turnkey evaluation system the paper envisages.
func JITExtension(o Options) error {
	prof := arch.ARMv8()
	cal, err := o.calibration(prof, o.sizes())
	if err != nil {
		return err
	}
	t := report.New("§6 extension: sensitivity to the redundant-load-elimination code path (armv8)",
		"benchmark", "k (fitted)", "stability", "interpretation")
	for _, b := range javabench.Suite() {
		res, err := o.scan(core.ScanConfig{
			Bench:     b,
			Env:       workload.DefaultEnv(prof),
			CostPaths: []arch.PathID{jvm.PathJITOpt},
			AllPaths:  []arch.PathID{jvm.PathJITOpt},
			Sizes:     o.sizes(),
			Samples:   o.samples(),
			Seed:      o.seed(),
			Cal:       cal,
		})
		if err != nil {
			return err
		}
		interp := "optimisation matters: regressions here are visible"
		if core.Classify(res.Sens) != core.Stable {
			interp = "weak instrument for this optimisation"
		}
		t.Addf("%s\t%v\t%s\t%s", b.Name, res.Sens, core.Classify(res.Sens), interp)
	}
	t.Note("the k of an optimisation site bounds the end-to-end effect of enabling/disabling it:")
	t.Note("p = 1/((1-k)+ka) with a = the per-site cost delta of the optimisation")
	o.emit(t)
	return nil
}

// C11Extension implements the other §6 direction: "similar modifications
// could be made to a C11 compiler such as GCC ... binary rewriting
// techniques may also be applicable for exploring fencing strategies in
// already compiled code, e.g. C11 atomics."  It prices memory_order
// decisions on the lock-free structures the paper's introduction
// motivates: the relative throughput of a Treiber stack and a shared
// counter under seq_cst-everywhere vs release/acquire vs (ARM) the
// acq/rel-instruction lowering — the Marino-et-al question (§5: how
// expensive is SC?) asked with this paper's instruments.
func C11Extension(o Options) error {
	for _, prof := range profiles() {
		t := report.New(fmt.Sprintf("§6 extension (%s): the price of memory_order strength", prof.Name),
			"benchmark", "configuration", "relative perf", "change", "significant")
		type cfg struct {
			name  string
			bench *workload.Benchmark
			env   func(workload.Env) workload.Env
		}
		base := workload.DefaultEnv(prof)

		// Stack: baseline is the canonical release/acquire version.
		stackBase := c11bench.Stack("stack", c11.ReleaseAcquire())
		cfgs := []cfg{
			{"stack: all seq_cst", c11bench.Stack("stack", c11.AllSeqCst()), nil},
		}
		if prof.Flavor == arch.MCA {
			cfgs = append(cfgs, cfg{
				"stack: rel/acq via ldar-stlr",
				c11bench.Stack("stack", c11.ReleaseAcquire()),
				func(e workload.Env) workload.Env {
					e.C11Strategy = c11.AcqRelInstrs()
					return e
				},
			})
		}
		baseSum, err := o.measure(stackBase, base)
		if err != nil {
			return err
		}
		for _, c := range cfgs {
			env := base
			if c.env != nil {
				env = c.env(env)
			}
			sum, err := o.measure(c.bench, env)
			if err != nil {
				return err
			}
			rel := stats.Compare(sum, baseSum)
			t.Addf("Treiber stack\t%s\t%.4f\t%s\t%s", c.name, rel.Ratio,
				report.Pct(rel.Ratio), report.Sig(rel.Significant()))
		}

		// Counter: relaxed is the baseline.
		ctrBase, err := o.measure(c11bench.Counter("counter", c11.Relaxed), base)
		if err != nil {
			return err
		}
		for _, ord := range []c11.Order{c11.AcqRel, c11.SeqCst} {
			sum, err := o.measure(c11bench.Counter("counter", ord), base)
			if err != nil {
				return err
			}
			rel := stats.Compare(sum, ctrBase)
			t.Addf("fetch_add counter\tmemory_order_%v\t%.4f\t%s\t%s", ord, rel.Ratio,
				report.Pct(rel.Ratio), report.Sig(rel.Significant()))
		}
		t.Note("baseline: release/acquire stack and relaxed counter; the gap to seq_cst is what")
		t.Note("defensive ordering costs on this structure (cf. Marino et al.'s SC-preservation bound, §5)")
		o.emit(t)
	}
	return nil
}
