package experiments

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/platform/kernel"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/workload"
	"repro/internal/workload/linuxbench"
)

// kernelProfile: the paper's kernel experiments all run on the ARMv8
// machine (§4.3).
func kernelProfile() *arch.Profile { return arch.ARMv8() }

// surveySize is the fixed cost-function size for the Figure 7/8 survey
// ("we inject a large cost function (1024 loop iterations) into each macro
// in turn").
const surveySize = 1024

// surveyCache memoizes the 154-point dataset shared by Figures 7 and 8 so
// running both does not repeat the most expensive measurement.  The mutex
// covers the whole computation: when the engine schedules Figures 7 and 8
// concurrently, the second blocks until the first has built the shared
// dataset rather than duplicating it.
var (
	surveyMu    sync.Mutex
	surveyCache = map[string][]core.ProbeResult{}
)

// runKernelSurvey produces the Figure 7/8 dataset.
func runKernelSurvey(o Options) ([]core.ProbeResult, error) {
	surveyMu.Lock()
	defer surveyMu.Unlock()
	key := fmt.Sprintf("%v/%d/%d", o.Short, o.samples(), o.seed())
	if rs, ok := surveyCache[key]; ok {
		return rs, nil
	}
	benches := linuxbench.Suite()
	if o.Short {
		benches = benches[:4]
	}
	rs, err := o.survey(benches, workload.DefaultEnv(kernelProfile()),
		kernel.Paths, surveySize)
	if err != nil {
		return nil, err
	}
	surveyCache[key] = rs
	return rs, nil
}

// Fig7 regenerates Figure 7: the sum of relative performance across all
// benchmarks per macro; lower sums mean larger impact.  The paper finds
// smp_mb, read_once and read_barrier_depends have the most impact.
func Fig7(o Options) error {
	rs, err := runKernelSurvey(o)
	if err != nil {
		return err
	}
	sums := core.SumByPath(rs)
	order := append([]arch.PathID{}, kernel.Paths...)
	sort.SliceStable(order, func(i, j int) bool { return sums[order[i]] < sums[order[j]] })
	t := report.New("Figure 7: summed relative performance per macro (ascending = biggest impact first)",
		"macro", "sum of relative perf")
	for _, p := range order {
		t.Addf("%s\t%.3f", kernel.PathName(p), sums[p])
	}
	t.Note("paper's biggest-impact macros: smp_mb, read_once, read_barrier_depends")
	o.emit(t)
	return nil
}

// Fig8 regenerates Figure 8: the sum of relative performance across all
// macros per benchmark.  The paper finds the microbenchmarks (netperf,
// lmbench, ebizzy) most sensitive and the re-hosted JVM benchmarks (h2,
// spark) almost completely insensitive.
func Fig8(o Options) error {
	rs, err := runKernelSurvey(o)
	if err != nil {
		return err
	}
	sums := core.SumByBench(rs)
	names := make([]string, 0, len(sums))
	for n := range sums {
		names = append(names, n)
	}
	sort.SliceStable(names, func(i, j int) bool { return sums[names[i]] < sums[names[j]] })
	t := report.New("Figure 8: summed relative performance per benchmark (ascending = most sensitive first)",
		"benchmark", "sum of relative perf")
	for _, n := range names {
		t.Addf("%s\t%.3f", n, sums[n])
	}
	t.Note("paper's order: netperf_tcp, lmbench, netperf_udp, ebizzy, xalan, osm_stack(avg), osm_stack(max), osm_tiles, kernel_compile, spark, h2")
	o.emit(t)
	return nil
}

// paperFig9 carries the paper's rbd sensitivities for the comparison
// column.
var paperFig9 = map[string]string{
	"ebizzy": "0.00106±10%", "xalan": "0.00038±10%", "netperf_udp": "0.00943±8%",
	"osm_stack (avg)": "0.00019±10%", "lmbench": "0.00525±10%", "netperf_tcp": "0.00355±10%",
}

// Fig9 regenerates Figure 9: the sensitivity of the six selected
// benchmarks to the read_barrier_depends macro.
func Fig9(o Options) error {
	prof := kernelProfile()
	cal, err := o.calibration(prof, o.sizes())
	if err != nil {
		return err
	}
	t := report.New("Figure 9: sensitivity to read_barrier_depends (armv8)",
		"benchmark", "k (fitted)", "stability", "paper k")
	for _, b := range linuxbench.RBDSix() {
		res, err := o.scan(core.ScanConfig{
			Bench:     b,
			Env:       workload.DefaultEnv(prof),
			CostPaths: []arch.PathID{kernel.PathReadBarrierDepends},
			AllPaths:  kernel.Paths,
			Sizes:     o.sizes(),
			Samples:   o.samples(),
			Seed:      o.seed(),
			Cal:       cal,
		})
		if err != nil {
			return err
		}
		t.Addf("%s\t%v\t%s\t%s", b.Name, res.Sens, core.Classify(res.Sens), paperFig9[b.Name])
	}
	t.Note("shape: netperf_udp most sensitive; osm/xalan near-insensitive; tcp less stable than udp")
	o.emit(t)
	return nil
}

// Fig10 regenerates Figure 10: the relative performance of the five test
// implementations of read_barrier_depends (plus the base case) on the six
// benchmarks.
func Fig10(o Options) error {
	prof := kernelProfile()
	strategies := kernel.Strategies()
	t := report.New("Figure 10: read_barrier_depends strategy comparison (relative performance, armv8)",
		"benchmark", "ctrl", "ctrl+isb", "dmb ishld", "dmb ish", "la/sr")
	for _, b := range linuxbench.RBDSix() {
		baseEnv := workload.DefaultEnv(prof)
		row := []string{b.Name}
		for _, st := range strategies[1:] {
			env := baseEnv
			env.KernelStrategy = st
			rel, err := o.compare(b, baseEnv, env, kernel.Paths)
			if err != nil {
				return err
			}
			mark := ""
			if !rel.Significant() {
				mark = " (n.s.)"
			}
			row = append(row, fmt.Sprintf("%.4f%s", rel.Ratio, mark))
		}
		t.Add(row...)
	}
	t.Note("paper's shape: ctrl+isb always worst; ishld/ish small; xalan slightly improves with added ishld")
	o.emit(t)
	return nil
}

// Txt6 measures the kernel nop-padding cost: the paper reports a mean drop
// of 1.9% across benchmarks and a worst case of 6.6% (netperf).
func Txt6(o Options) error {
	prof := kernelProfile()
	t := report.New("TXT6 (armv8): nop padding in every kernel macro",
		"benchmark", "relative perf", "change")
	var ratios []float64
	for _, b := range linuxbench.Suite() {
		clean, err := o.measure(b, workload.DefaultEnv(prof))
		if err != nil {
			return err
		}
		padded, err := o.measure(b, workload.DefaultEnv(prof).NopBase(kernel.Paths))
		if err != nil {
			return err
		}
		rel := stats.Compare(padded, clean)
		ratios = append(ratios, rel.Ratio)
		t.Addf("%s\t%.5f\t%s", b.Name, rel.Ratio, report.Pct(rel.Ratio))
	}
	t.Note("mean %.2f%% (paper: mean -1.9%%, worst -6.6%% on netperf)", 100*(stats.Mean(ratios)-1))
	o.emit(t)
	return nil
}

// Txt7 regenerates the §4.3.1 cost table: for each rbd strategy, the
// implied per-invocation cost increase a (equation 2) computed from the
// lmbench microbenchmark and from the mean of the other five benchmarks —
// the micro/macro divergence analysis.
func Txt7(o Options) error {
	prof := kernelProfile()
	cal, err := o.calibration(prof, o.sizes())
	if err != nil {
		return err
	}
	benches := linuxbench.RBDSix()
	// Fit per-benchmark rbd sensitivities.
	sens := map[string]core.ScanResult{}
	for _, b := range benches {
		res, err := o.scan(core.ScanConfig{
			Bench:     b,
			Env:       workload.DefaultEnv(prof),
			CostPaths: []arch.PathID{kernel.PathReadBarrierDepends},
			AllPaths:  kernel.Paths,
			Sizes:     o.sizes(),
			Samples:   o.samples(),
			Seed:      o.seed(),
			Cal:       cal,
		})
		if err != nil {
			return err
		}
		sens[b.Name] = res
	}
	t := report.New("TXT7 (armv8): implied cost increase a of each rbd strategy (ns)",
		"strategy", "from lmbench", "mean of others", "paper (lmbench)", "paper (others)")
	paperL := map[string]string{"ctrl": "4.6", "ctrl+isb": "24.5", "dmb ishld": "10.7", "dmb ish": "11.0", "la/sr": "21.7"}
	paperO := map[string]string{"ctrl": "10.1", "ctrl+isb": "24.5", "dmb ishld": "1.8", "dmb ish": "10.7", "la/sr": "15.9"}
	skipped := map[string]bool{}
	for _, st := range kernel.Strategies()[1:] {
		var lm float64
		var others []float64
		for _, b := range benches {
			s := sens[b.Name].Sens
			if core.Classify(s) == core.Insensitive && b.Name != "lmbench" {
				// Equation (2) is meaningless through an instrument
				// that cannot resolve the code path (§4.2.1: "high
				// sensitivity benchmarks produce results which
				// accurately calculate the change in cost").
				skipped[b.Name] = true
				continue
			}
			baseEnv := workload.DefaultEnv(prof)
			env := baseEnv
			env.KernelStrategy = st
			rel, err := o.compare(b, baseEnv, env, kernel.Paths)
			if err != nil {
				return err
			}
			a := core.CostOfChange(s, rel)
			if b.Name == "lmbench" {
				lm = a
			} else {
				others = append(others, a)
			}
		}
		t.Addf("%s\t%.1f\t%.1f\t%s\t%s", st.Name, lm, stats.Mean(others), paperL[st.Name], paperO[st.Name])
	}
	var skippedNames []string
	for name := range skipped {
		skippedNames = append(skippedNames, name)
	}
	sort.Strings(skippedNames)
	for _, name := range skippedNames {
		t.Note("%s excluded from the macro mean: its rbd sensitivity is unresolved", name)
	}
	t.Note("divergence between the micro (lmbench) and macro estimates is the point: dmb ishld is nearly free in vivo")
	o.emit(t)
	return nil
}
