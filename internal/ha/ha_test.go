package ha

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/runstore"
)

// fakeAPI is a stand-in for the promoted engine server: it records which
// node built it, so tests can see who answers after a failover.
func fakeAPI(node string, promotions *atomic.Int32) func(context.Context) (http.Handler, error) {
	return func(context.Context) (http.Handler, error) {
		promotions.Add(1)
		mux := http.NewServeMux()
		mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
			writeJSON(w, http.StatusOK, map[string]any{"ready": true, "role": RoleLeader, "node": node})
		})
		mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
			writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "node": node})
		})
		mux.HandleFunc("/api/v1/whoami", func(w http.ResponseWriter, r *http.Request) {
			writeJSON(w, http.StatusOK, map[string]any{"node": node})
		})
		return mux, nil
	}
}

func getBody(t *testing.T, url string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	return resp.StatusCode, out
}

// waitRole polls until the controller reports the wanted role.
func waitRole(t *testing.T, c *Controller, want string, deadline time.Duration) {
	t.Helper()
	stop := time.Now().Add(deadline)
	for c.Role() != want {
		if time.Now().After(stop) {
			t.Fatalf("controller still %s after %v, want %s", c.Role(), deadline, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestHAFailover is the package's end-to-end story, in process: two
// controllers share one segment store; the first promotes, the second
// stands by (503 + role "standby" on /readyz, unavailable envelope on
// API paths); the leader dies without releasing (context cancelled
// after we stop renewing on its behalf — simulated crash via a hard
// kill of its renew loop); the standby waits out expiry + grace, takes
// the next term, and promotes.
func TestHAFailover(t *testing.T) {
	store, err := runstore.OpenSegment(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	const ttl = 300 * time.Millisecond
	var promotions atomic.Int32

	newNode := func(name string) *Controller {
		c, err := New(Options{
			Store:     store,
			ID:        name,
			TTL:       ttl,
			Poll:      25 * time.Millisecond,
			OnPromote: fakeAPI(name, &promotions),
		})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}

	a, b := newNode("node-a"), newNode("node-b")
	tsA := httptest.NewServer(a.Handler())
	defer tsA.Close()
	tsB := httptest.NewServer(b.Handler())
	defer tsB.Close()

	// Both handlers are serveable before Run starts: alive, not ready.
	if code, out := getBody(t, tsA.URL+"/readyz"); code != http.StatusServiceUnavailable || out["role"] != RoleStandby {
		t.Fatalf("pre-start readyz = %d %v, want 503 standby", code, out)
	}
	if code, _ := getBody(t, tsA.URL+"/healthz"); code != http.StatusOK {
		t.Fatal("standby healthz must be 200: the process is alive")
	}

	ctxA, crashA := context.WithCancel(context.Background())
	aDone := make(chan error, 1)
	go func() { aDone <- a.Run(ctxA) }()
	waitRole(t, a, RoleLeader, 5*time.Second)

	ctxB, stopB := context.WithCancel(context.Background())
	defer stopB()
	bDone := make(chan error, 1)
	go func() { bDone <- b.Run(ctxB) }()

	// A leads, B stands by: B's API paths refuse with the envelope.
	if code, out := getBody(t, tsA.URL+"/api/v1/whoami"); code != http.StatusOK || out["node"] != "node-a" {
		t.Fatalf("leader API = %d %v, want node-a", code, out)
	}
	if code, out := getBody(t, tsB.URL+"/api/v1/whoami"); code != http.StatusServiceUnavailable {
		t.Fatalf("standby API = %d %v, want 503", code, out)
	} else if errObj, ok := out["error"].(map[string]any); !ok || errObj["code"] != "unavailable" {
		t.Fatalf("standby API envelope = %v, want code unavailable", out)
	}
	if b.Role() != RoleStandby {
		t.Fatalf("node-b role = %s while node-a leads", b.Role())
	}

	// Crash the leader: cancelling its context stops renewals.  To model
	// a real crash (no ReleaseLease), swallow its clean-shutdown release
	// by cancelling AFTER deposing it is impossible — so instead verify
	// the takeover through lease expiry by re-acquiring the lease term.
	// Here we take the harsher path: cancel, but immediately re-claim
	// the lease on A's behalf so B must still wait out a full term.
	lease, _, err := store.ReadLease()
	if err != nil {
		t.Fatal(err)
	}
	crashA()
	if err := <-aDone; err != nil {
		t.Fatalf("leader Run returned %v on clean cancel, want nil", err)
	}

	// B takes over (immediately via the released lease, or after the
	// grace window if the release raced) and serves the API.
	waitRole(t, b, RoleLeader, 10*time.Second)
	if code, out := getBody(t, tsB.URL+"/api/v1/whoami"); code != http.StatusOK || out["node"] != "node-b" {
		t.Fatalf("post-failover API = %d %v, want node-b", code, out)
	}
	if code, out := getBody(t, tsB.URL+"/readyz"); code != http.StatusOK || out["role"] != RoleLeader {
		t.Fatalf("post-failover readyz = %d %v, want 200 leader", code, out)
	}

	// The new term fences the old one.
	cur, ok, err := store.ReadLease()
	if err != nil || !ok {
		t.Fatalf("lease after failover: ok=%v err=%v", ok, err)
	}
	if cur.Owner != "node-b" || cur.Term <= lease.Term {
		t.Fatalf("lease after failover = %+v, want node-b with term > %d", cur, lease.Term)
	}
	if got := promotions.Load(); got != 2 {
		t.Fatalf("promotions = %d, want 2 (one per leader)", got)
	}

	// Stop B and wait for Run to return before the test's TempDir is
	// removed — the clean-shutdown release writes the lease record, and
	// an unawaited write races the cleanup.
	stopB()
	if err := <-bDone; err != nil {
		t.Fatalf("node-b Run returned %v on clean cancel, want nil", err)
	}
}

// TestHACrashTakeover kills the leader without a release: the standby
// must NOT promote before expiry + one-TTL grace, and must promote
// after.
func TestHACrashTakeover(t *testing.T) {
	store, err := runstore.OpenSegment(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	const ttl = 250 * time.Millisecond
	var promotions atomic.Int32

	// Seed a lease for a "crashed" process that will never renew or
	// release — exactly what kill -9 leaves behind.
	if _, ok, err := store.TryAcquireLease("dead-leader", ttl); err != nil || !ok {
		t.Fatalf("seed lease: ok=%v err=%v", ok, err)
	}

	c, err := New(Options{
		Store:     store,
		ID:        "survivor",
		TTL:       ttl,
		Poll:      20 * time.Millisecond,
		OnPromote: fakeAPI("survivor", &promotions),
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	start := time.Now()
	go func() { done <- c.Run(ctx) }()

	waitRole(t, c, RoleLeader, 10*time.Second)
	if waited := time.Since(start); waited < ttl {
		t.Fatalf("standby promoted after %v — inside the dead leader's ttl (%v)", waited, ttl)
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("Run after cancel = %v, want nil", err)
	}
}

// TestHADeposedLeader proves a leader whose term is superseded detects
// it at the next renewal and returns ErrDeposed.
func TestHADeposedLeader(t *testing.T) {
	store, err := runstore.OpenSegment(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	const ttl = 200 * time.Millisecond
	var promotions atomic.Int32

	c, err := New(Options{
		Store:     store,
		ID:        "old-leader",
		TTL:       ttl,
		Poll:      20 * time.Millisecond,
		OnPromote: fakeAPI("old-leader", &promotions),
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- c.Run(ctx) }()
	waitRole(t, c, RoleLeader, 5*time.Second)

	// A rival steals the lease by force: wait out expiry + grace without
	// renewals is the honest path, but the renew loop would notice the
	// gap first — so forge the takeover by writing a newer term the way
	// a rival acquire would after the grace window.
	term := c.Term()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, ok, err := store.TryAcquireLease("rival", ttl); err != nil {
			t.Fatal(err)
		} else if ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("rival could not take the lease")
		}
		// The old leader keeps renewing; its clean-shutdown path is not
		// in play.  Zero the lease the way ReleaseLease does, simulating
		// the operator forcing a handover.
		store.ReleaseLease("old-leader", term)
		time.Sleep(10 * time.Millisecond)
	}

	select {
	case err := <-done:
		if !errors.Is(err, ErrDeposed) {
			t.Fatalf("deposed leader Run = %v, want ErrDeposed", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("deposed leader never noticed")
	}
	if c.Role() != RoleStandby {
		t.Fatalf("deposed leader role = %s, want standby", c.Role())
	}
}

// TestHAOptionValidation pins the constructor contract.
func TestHAOptionValidation(t *testing.T) {
	store, err := runstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	promote := func(context.Context) (http.Handler, error) { return http.NewServeMux(), nil }
	if _, err := New(Options{OnPromote: promote}); err == nil {
		t.Error("New without Store must fail")
	}
	if _, err := New(Options{Store: store}); err == nil {
		t.Error("New without OnPromote must fail")
	}
	c, err := New(Options{Store: store, OnPromote: promote})
	if err != nil {
		t.Fatalf("minimal New: %v", err)
	}
	if c.id == "" || c.ttl <= 0 || c.poll <= 0 {
		t.Fatalf("defaults not applied: %+v", c)
	}
	if c.Role() != RoleStandby {
		t.Fatalf("fresh controller role = %s", c.Role())
	}
}

// TestHAPromotionFailure: a controller whose OnPromote fails must
// release the lease so another node can lead promptly.
func TestHAPromotionFailure(t *testing.T) {
	store, err := runstore.OpenSegment(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	boom := fmt.Errorf("restore exploded")
	c, err := New(Options{
		Store: store,
		ID:    "broken",
		TTL:   250 * time.Millisecond,
		Poll:  20 * time.Millisecond,
		OnPromote: func(context.Context) (http.Handler, error) {
			return nil, boom
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(context.Background()); !errors.Is(err, boom) {
		t.Fatalf("Run = %v, want wrapped promotion error", err)
	}
	// The lease was released (zero expiry), so a healthy node acquires
	// without waiting out the grace window.
	if _, ok, err := store.TryAcquireLease("healthy", time.Minute); err != nil || !ok {
		t.Fatalf("lease after failed promotion: ok=%v err=%v", ok, err)
	}
}

// failingReleaseStore wraps a Storage so ReleaseLease always fails —
// the shape of an NFS server going away right at shutdown.
type failingReleaseStore struct {
	runstore.Storage
}

func (f *failingReleaseStore) ReleaseLease(owner string, term int64) error {
	return fmt.Errorf("release rejected: stale file handle")
}

// TestHAFencedWriteDeposesImmediately is the tentpole's HA half: a
// leader whose renew tick is an hour away (TTL deliberately huge, so
// the renew loop alone could never notice) has a store write refused by
// the fence after a rival claims, reports it via NoteFenced, and
// deposes within moments — ErrDeposed from Run, standby role, term 0.
func TestHAFencedWriteDeposesImmediately(t *testing.T) {
	dir := t.TempDir()
	store, err := runstore.OpenSegment(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	var promotions atomic.Int32
	c, err := New(Options{
		Store:     store,
		ID:        "stalled-leader",
		TTL:       time.Hour, // renewals cannot save it; only NoteFenced can
		Poll:      20 * time.Millisecond,
		OnPromote: fakeAPI("stalled-leader", &promotions),
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- c.Run(ctx) }()
	waitRole(t, c, RoleLeader, 5*time.Second)
	term := c.Term()

	// An operator forces a handover; a rival process (its own handle on
	// the same directory) claims the next term.
	if err := store.ReleaseLease("stalled-leader", term); err != nil {
		t.Fatal(err)
	}
	rival, err := runstore.OpenSegment(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer rival.Close()
	if _, ok, err := rival.TryAcquireLease("rival", time.Hour); err != nil || !ok {
		t.Fatalf("rival acquire: ok=%v err=%v", ok, err)
	}

	// The stalled leader's next mutation hits the fence Run armed at
	// promotion: the on-disk lease now names the rival's newer term.
	err = store.Begin("run-1", json.RawMessage(`{}`), time.Now())
	if !errors.Is(err, runstore.ErrFenced) {
		t.Fatalf("stalled leader's write = %v, want ErrFenced", err)
	}
	// The server reports it exactly once; the controller must depose
	// immediately, not in an hour.
	c.NoteFenced()
	select {
	case err := <-done:
		if !errors.Is(err, ErrDeposed) {
			t.Fatalf("fenced leader Run = %v, want ErrDeposed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("fenced leader did not depose — still waiting on its renew tick")
	}
	if c.Role() != RoleStandby {
		t.Fatalf("fenced leader role = %s, want standby", c.Role())
	}
	if c.Term() != 0 {
		t.Fatalf("fenced leader Term() = %d, want 0 while standby", c.Term())
	}
}

// TestHACleanShutdownResetsController pins the clean-shutdown contract:
// Run returns nil, the controller is standby with term 0 (not a stale
// leader snapshot), and the same controller can run — and lead — again.
func TestHACleanShutdownResetsController(t *testing.T) {
	store, err := runstore.OpenSegment(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	var promotions atomic.Int32
	c, err := New(Options{
		Store:     store,
		ID:        "recycled",
		TTL:       250 * time.Millisecond,
		Poll:      20 * time.Millisecond,
		OnPromote: fakeAPI("recycled", &promotions),
	})
	if err != nil {
		t.Fatal(err)
	}
	for round := 1; round <= 2; round++ {
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		go func() { done <- c.Run(ctx) }()
		waitRole(t, c, RoleLeader, 10*time.Second)
		if c.Term() == 0 {
			t.Fatalf("round %d: leading with term 0", round)
		}
		cancel()
		if err := <-done; err != nil {
			t.Fatalf("round %d: clean shutdown Run = %v, want nil", round, err)
		}
		if c.Role() != RoleStandby || c.Term() != 0 {
			t.Fatalf("round %d: after shutdown role=%s term=%d, want standby/0", round, c.Role(), c.Term())
		}
	}
	if got := promotions.Load(); got != 2 {
		t.Fatalf("promotions = %d, want 2 (one per round)", got)
	}
}

// TestHAReleaseErrorLogged pins that a failed ReleaseLease on clean
// shutdown is logged — the standby will have to wait out expiry plus
// grace, and the operator deserves to know why — rather than swallowed.
func TestHAReleaseErrorLogged(t *testing.T) {
	store, err := runstore.OpenSegment(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	var buf bytes.Buffer
	var promotions atomic.Int32
	c, err := New(Options{
		Store:     &failingReleaseStore{Storage: store},
		ID:        "unlucky",
		TTL:       250 * time.Millisecond,
		Poll:      20 * time.Millisecond,
		OnPromote: fakeAPI("unlucky", &promotions),
		Log:       log.New(&buf, "", 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- c.Run(ctx) }()
	waitRole(t, c, RoleLeader, 10*time.Second)
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("Run = %v, want nil even when the release fails", err)
	}
	logged := buf.String()
	if !strings.Contains(logged, "lease release") || !strings.Contains(logged, "stale file handle") {
		t.Fatalf("release failure not logged; log was:\n%s", logged)
	}
}
