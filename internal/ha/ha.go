// Package ha elects a single coordinator among wmmd processes sharing a
// run store, using the store's coordinator lease (runstore.CoordLease).
//
// Each process runs a Controller.  At most one holds the lease and acts
// as leader: it builds the real API (engine + server + Restore) through
// the OnPromote callback and serves it.  The others stay standby,
// polling the lease and answering /healthz (alive) and /readyz (503,
// role "standby") so operators and load balancers can tell a healthy
// standby from a broken process.  When the leader dies without
// releasing, its lease expires; a standby waits out the grace window,
// claims the next term, and promotes — replaying the store, resuming
// interrupted runs from their checkpoints.
//
// A leader renews at TTL/3 and deposes itself when it cannot confirm a
// renewal within one TTL — before the standby's takeover point, which is
// one full TTL past expiry.  On promotion the controller also arms the
// store's fencing token (runstore.Fence), so even a leader stalled past
// both deadlines cannot mutate the store after a rival's claim: the
// write comes back runstore.ErrFenced, the server reports it via
// NoteFenced, and the controller deposes immediately instead of waiting
// for its next renew tick.  See runstore/lease.go and
// docs/ROBUSTNESS.md for the split-brain argument.
package ha

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"os"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/runstore"
)

// ErrDeposed reports that this controller was leader and lost the lease
// (another process holds a newer term, or renewal could not be confirmed
// within one TTL).  The process must stop serving immediately; the
// conservative reaction is to exit and restart as a standby.
var ErrDeposed = errors.New("ha: leadership lost")

// RoleStandby and RoleLeader are the values Controller.Role reports and
// /readyz exposes in its "role" field.
const (
	RoleStandby = "standby"
	RoleLeader  = "leader"
)

// Options configures a Controller.
type Options struct {
	// Store carries the coordinator lease.  Required.
	Store runstore.Storage
	// ID is this process's lease owner identity; it must differ between
	// the processes sharing a store.  Default "<hostname>-<pid>".
	ID string
	// TTL is the lease time-to-live.  The leader renews at TTL/3; a
	// standby takes over one full TTL after observing an expired lease.
	// Default 10s.
	TTL time.Duration
	// Poll is the standby's lease-watch interval.  Default TTL/3.
	Poll time.Duration
	// OnPromote builds the real API when this controller wins the
	// lease: typically NewServer + Restore + binding the public
	// address.  Its handler is served for every request from then on.
	// An error aborts Run — promotion is not retried, because a
	// half-promoted process (store replayed, runs resumed) cannot
	// safely retry without restarting.  Required.
	OnPromote func(ctx context.Context) (http.Handler, error)
	// Log receives role transitions; nil uses the standard logger.
	Log *log.Logger
	// Metrics, when non-nil, receives the wmm_ha_* instruments (role,
	// term, promotions, deposals by cause).  Pass the same registry the
	// engine exposes on /metrics so one scrape sees both.
	Metrics *metrics.Registry
}

// haMetrics are the controller's instruments; nil when no registry was
// supplied.
type haMetrics struct {
	leader     *metrics.Gauge   // 1 while leading, 0 as standby
	term       *metrics.Gauge   // lease term held, 0 as standby
	promotions *metrics.Counter // promotions to leader
	deposals   *metrics.Counter // leaderships lost, by cause
}

func newHAMetrics(r *metrics.Registry) *haMetrics {
	if r == nil {
		return nil
	}
	return &haMetrics{
		leader:     r.Gauge("wmm_ha_leader", "1 while this process holds the coordinator lease, 0 as standby."),
		term:       r.Gauge("wmm_ha_term", "Coordinator lease term currently held (0 while standby)."),
		promotions: r.Counter("wmm_ha_promotions_total", "Lease acquisitions that promoted this process to leader."),
		deposals:   r.Counter("wmm_ha_deposals_total", "Leaderships lost, by cause (superseded, renew_timeout, fenced).", "cause"),
	}
}

// Controller runs the standby→leader lifecycle for one process.
type Controller struct {
	store runstore.Storage
	id    string
	ttl   time.Duration
	poll  time.Duration
	promo func(ctx context.Context) (http.Handler, error)
	log   *log.Logger
	met   *haMetrics

	// fenced receives one signal per NoteFenced burst (buffered,
	// non-blocking sends); the renew loop selects on it to depose
	// without waiting for the next tick.
	fenced chan struct{}

	mu    sync.Mutex
	role  string
	term  int64
	inner http.Handler
}

// New validates the options and returns an unstarted Controller (role
// standby until Run promotes it).
func New(o Options) (*Controller, error) {
	if o.Store == nil {
		return nil, fmt.Errorf("ha: Options.Store is required")
	}
	if o.OnPromote == nil {
		return nil, fmt.Errorf("ha: Options.OnPromote is required")
	}
	if o.ID == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "wmmd"
		}
		o.ID = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	if o.TTL <= 0 {
		o.TTL = 10 * time.Second
	}
	if o.Poll <= 0 {
		o.Poll = o.TTL / 3
	}
	if o.Log == nil {
		o.Log = log.Default()
	}
	return &Controller{
		store:  o.Store,
		id:     o.ID,
		ttl:    o.TTL,
		poll:   o.Poll,
		promo:  o.OnPromote,
		log:    o.Log,
		met:    newHAMetrics(o.Metrics),
		fenced: make(chan struct{}, 1),
		role:   RoleStandby,
	}, nil
}

// NoteFenced reports that a store mutation was refused by the fencing
// check (runstore.ErrFenced): the on-disk lease names a newer claim, so
// another process coordinates.  The controller deposes immediately
// instead of waiting for its next renew tick.  Safe to call from any
// goroutine, idempotent, a no-op while standing by.
func (c *Controller) NoteFenced() {
	select {
	case c.fenced <- struct{}{}:
	default:
	}
}

// Role reports "standby" or "leader".
func (c *Controller) Role() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.role
}

// Term reports the lease term held (0 while standby).  Terms increase
// monotonically across takeovers, so they double as fencing tokens.
func (c *Controller) Term() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.term
}

// Run drives the lifecycle: poll the lease as standby, promote on
// acquisition, renew until deposed or the context ends.  It returns nil
// on a clean shutdown (context cancelled — a held lease is released so
// a standby can take over without waiting out the TTL), ErrDeposed on
// lost leadership, or the error that broke acquisition or promotion.
func (c *Controller) Run(ctx context.Context) error {
	lease, err := c.acquire(ctx)
	if err != nil {
		return err
	}

	// Arm the storage fence before a single request is served: from
	// here on every store mutation re-validates this (owner, term)
	// against the on-disk lease, so even a write from a leader stalled
	// past its own deposal deadline is refused once a rival claims.
	if err := c.store.Fence(c.id, lease.Term); err != nil {
		c.release(lease.Term, "fence arming failed")
		return fmt.Errorf("ha: arm fence: %w", err)
	}
	// Drop any fence signal left over from an earlier leadership of a
	// reused controller.
	select {
	case <-c.fenced:
	default:
	}

	c.log.Printf("ha: %s acquired coordinator lease (term %d), promoting", c.id, lease.Term)
	inner, err := c.promo(ctx)
	if err != nil {
		c.release(lease.Term, "promotion failed")
		return fmt.Errorf("ha: promotion failed: %w", err)
	}
	c.mu.Lock()
	c.role = RoleLeader
	c.term = lease.Term
	c.inner = inner
	c.mu.Unlock()
	if c.met != nil {
		c.met.leader.Set(1)
		c.met.term.Set(float64(lease.Term))
		c.met.promotions.Inc()
	}

	err = c.renewLoop(ctx, lease.Term)
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		// Clean shutdown: hand the lease over instead of making the
		// standby wait out expiry + grace, and reset to standby so a
		// reused controller doesn't keep reporting leader state.
		c.release(lease.Term, "shutdown")
		c.depose("")
		return nil
	}
	return err
}

// release surrenders the lease and disarms the fence, logging a failed
// release rather than swallowing it — the standby then has to wait out
// expiry + grace, which an operator reading the logs should know.
func (c *Controller) release(term int64, why string) {
	if err := c.store.ReleaseLease(c.id, term); err != nil {
		c.log.Printf("ha: %s lease release (%s): %v", c.id, why, err)
	}
	c.store.Fence("", 0)
}

// acquire polls until this controller owns the lease or the context
// ends.
func (c *Controller) acquire(ctx context.Context) (runstore.CoordLease, error) {
	t := time.NewTicker(c.poll)
	defer t.Stop()
	logged := false
	for {
		lease, ok, err := c.store.TryAcquireLease(c.id, c.ttl)
		if err != nil {
			return runstore.CoordLease{}, fmt.Errorf("ha: lease acquisition: %w", err)
		}
		if ok {
			return lease, nil
		}
		if !logged {
			c.log.Printf("ha: %s standing by (leader %s, term %d)", c.id, lease.Owner, lease.Term)
			logged = true
		}
		select {
		case <-ctx.Done():
			return runstore.CoordLease{}, ctx.Err()
		case <-t.C:
		}
	}
}

// renewLoop keeps the lease alive, returning ErrDeposed the moment
// leadership cannot be proven: an explicit refusal, or no confirmed
// renewal within one TTL (store I/O failing while the clock runs out —
// the standby may already be taking over).
func (c *Controller) renewLoop(ctx context.Context, term int64) error {
	t := time.NewTicker(c.ttl / 3)
	defer t.Stop()
	lastOK := time.Now()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-c.fenced:
			c.log.Printf("ha: %s deposed (store mutation fenced: term %d superseded on disk)", c.id, term)
			c.depose("fenced")
			return ErrDeposed
		case <-t.C:
		}
		_, ok, err := c.store.RenewLease(c.id, term, c.ttl)
		switch {
		case err == nil && ok:
			lastOK = time.Now()
		case err == nil:
			c.log.Printf("ha: %s deposed (term %d superseded)", c.id, term)
			c.depose("superseded")
			return ErrDeposed
		default:
			if time.Since(lastOK) > c.ttl {
				c.log.Printf("ha: %s deposed (no confirmed renewal in %v: %v)", c.id, c.ttl, err)
				c.depose("renew_timeout")
				return ErrDeposed
			}
			c.log.Printf("ha: %s renew failed (retrying): %v", c.id, err)
		}
	}
}

// depose resets the controller to standby — role, term AND handler, so
// Term()'s "0 while standby" contract holds after deposal too.  cause
// is the deposal-counter label; empty for a clean shutdown, which is a
// reset rather than a lost leadership.
func (c *Controller) depose(cause string) {
	c.mu.Lock()
	c.role = RoleStandby
	c.term = 0
	c.inner = nil
	c.mu.Unlock()
	if c.met != nil {
		c.met.leader.Set(0)
		c.met.term.Set(0)
		if cause != "" {
			c.met.deposals.Inc(cause)
		}
	}
}

// Handler returns the controller's HTTP surface, serveable from the
// moment the process starts:
//
//   - /healthz answers 200 always — the process is alive either way.
//   - /readyz answers the leader's own readiness once promoted, and
//     503 {"ready": false, "role": "standby"} before that.
//   - every other path delegates to the promoted API, or answers 503
//     with the standard "unavailable" envelope while standby — workers
//     and clients ride that out with their retry/backoff.
func (c *Controller) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		c.mu.Lock()
		inner := c.inner
		c.mu.Unlock()
		switch {
		case r.URL.Path == "/healthz":
			if inner != nil {
				inner.ServeHTTP(w, r)
				return
			}
			writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "role": RoleStandby})
		case r.URL.Path == "/readyz":
			if inner != nil {
				inner.ServeHTTP(w, r)
				return
			}
			writeJSON(w, http.StatusServiceUnavailable, map[string]any{
				"ready": false,
				"role":  RoleStandby,
			})
		default:
			if inner != nil {
				inner.ServeHTTP(w, r)
				return
			}
			writeJSON(w, http.StatusServiceUnavailable, map[string]any{
				"error": map[string]string{
					"code":    "unavailable",
					"message": "standby coordinator: not the leader",
				},
			})
		}
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}
