package litmus

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/arch"
	"repro/internal/explore"
	"repro/internal/sim"
)

// Exhaustive verdicts: where Run samples randomized alignments and
// counts how often the relaxed outcome shows up, Exhaustive hands the
// same program shapes to internal/explore and enumerates the reachable
// final-memory outcomes outright.  A Forbidden expectation then becomes
// a proof of absence over the explorer's reduced choice domains (see
// the package comment of internal/explore for what "reduced" concedes),
// and an Allowed expectation a constructive witness: a replayable trace
// of one run that exhibits the relaxed outcome.

// ExhaustiveOutcome is one reachable final-memory state of a litmus
// test, classified against the test's predicates.
type ExhaustiveOutcome struct {
	// Key is the canonical "v0/v1/..." rendering of Values.
	Key string
	// Values are the final values of the watched addresses.
	Values []int64
	// Hit reports whether the outcome satisfies the test's precondition.
	Hit bool
	// Relaxed reports whether the outcome exhibits the relaxed behaviour.
	Relaxed bool
	// Picks replays the witness run for this outcome (WriteWitness).
	Picks []int
}

// ExhaustiveReport is the result of exhaustively exploring one test.
type ExhaustiveReport struct {
	// Watch lists the watched addresses, parallel to each outcome's
	// Values.
	Watch []int64
	// Outcomes are the reachable outcomes, sorted by Key.
	Outcomes []ExhaustiveOutcome
	// Runs and States count explorer work (runs performed, distinct
	// deduplicated choice states).
	Runs, States int
	// Complete reports whether the reduced choice tree was exhausted.
	// A Forbidden verdict requires it; a reachability witness does not.
	Complete bool

	spec explore.Spec
}

// Violation returns the first outcome that satisfies the precondition
// and exhibits the relaxed behaviour, or nil.
func (rep *ExhaustiveReport) Violation() *ExhaustiveOutcome {
	for i := range rep.Outcomes {
		if o := &rep.Outcomes[i]; o.Hit && o.Relaxed {
			return o
		}
	}
	return nil
}

// WriteWitness replays o's witness run with a text tracer, rendering
// the per-core retirement interleaving that produced the outcome.
func (rep *ExhaustiveReport) WriteWitness(o *ExhaustiveOutcome, w io.Writer) error {
	return explore.Replay(rep.spec, o.Picks, sim.TraceWriter(w))
}

// WatchedAddrs returns the addresses whose final values classify t's
// outcomes: the shared locations, every initialised address, and each
// thread's first four result slots (the catalogue records at most two).
func WatchedAddrs(t *Test) []int64 {
	set := map[int64]struct{}{X: {}, Y: {}, Z: {}}
	for a := range t.Init {
		set[a] = struct{}{}
	}
	for th := range t.Threads {
		for i := 0; i < 4; i++ {
			set[ResultAddr(th, i)] = struct{}{}
		}
	}
	addrs := make([]int64, 0, len(set))
	for a := range set {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	return addrs
}

// staggerLadder is the geometric menu of alignment offsets (delay-loop
// iterations) from which per-test domains are drawn.
var staggerLadder = []int64{0, 1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128, 192, 256, 384}

// staggerDomain builds the per-thread alignment domain for exhaustive
// exploration: the ladder capped at the test's effective sampling bound
// (so every separation the sampling runner can draw is bracketed — the
// R shape needs offsets past 48 to put one whole thread after the
// other), downsampled to a per-thread-count budget because the domain
// is raised to the power of the thread count.
func staggerDomain(threads int, maxDelay int64) []int64 {
	dom := make([]int64, 0, len(staggerLadder)+1)
	for _, v := range staggerLadder {
		if v < maxDelay {
			dom = append(dom, v)
		}
	}
	dom = append(dom, maxDelay)
	budget := 14
	switch {
	case threads == 3:
		budget = 7
	case threads >= 4:
		budget = 4
	}
	if len(dom) <= budget {
		return dom
	}
	out := make([]int64, budget)
	for i := range out {
		out[i] = dom[i*(len(dom)-1)/(budget-1)]
	}
	return out
}

// exhaustiveSpec translates a litmus test into an exploration spec,
// mirroring Run's program construction (setup, alignment delay loop,
// body, halt) with the explorer's stagger domain standing in for the
// sampled delays.
func (r *Runner) exhaustiveSpec(t *Test) explore.Spec {
	prof := r.Prof
	if t.StressProp {
		stressed := *prof
		stressed.Lat.PropTail = 300
		stressed.Lat.PropMax = prof.Lat.PropMax + 32
		prof = &stressed
	}
	maxDelay := r.MaxDelay
	if maxDelay <= 0 {
		maxDelay = 120
	}
	if t.MaxDelay > 0 {
		maxDelay = t.MaxDelay
	}
	return explore.Spec{
		Prof:    prof,
		Threads: len(t.Threads),
		Build: func(thread int, stagger int64) (arch.Program, error) {
			th := t.Threads[thread]
			b := arch.NewBuilder()
			if th.Setup != nil {
				th.Setup(b)
			}
			if stagger > 0 {
				b.MovImm(delayReg, stagger)
				b.Label("litmus_delay")
				b.SubsImm(delayReg, delayReg, 1)
				b.Bne("litmus_delay")
			}
			th.Body(b)
			b.Halt()
			return b.Build()
		},
		Init:        t.Init,
		PreTouch:    []int64{X, Y, Z},
		Interesting: []int64{X, Y, Z},
		Watch:       WatchedAddrs(t),
		Stagger:     staggerDomain(len(t.Threads), maxDelay),
		MemWords:    4096,
	}
}

// Exhaustive enumerates the reachable outcomes of t.  With
// stopOnRelaxed set, exploration halts at the first outcome that
// satisfies the precondition and exhibits the relaxed behaviour (a
// reachability check); otherwise the reduced tree is exhausted.
func (r *Runner) Exhaustive(t *Test, stopOnRelaxed bool) (*ExhaustiveReport, error) {
	sp := r.exhaustiveSpec(t)
	classify := func(vals []int64) (hit, relaxed bool) {
		mem := func(addr int64) int64 {
			for i, a := range sp.Watch {
				if a == addr {
					return vals[i]
				}
			}
			return 0
		}
		hit = t.Hit == nil || t.Hit(mem)
		relaxed = t.Relaxed(mem)
		return hit, relaxed
	}
	if stopOnRelaxed {
		sp.StopOutcome = func(vals []int64) bool {
			hit, relaxed := classify(vals)
			return hit && relaxed
		}
	}
	erep, err := explore.Explore(sp)
	if err != nil {
		return nil, fmt.Errorf("litmus %s: %w", t.Name, err)
	}
	rep := &ExhaustiveReport{
		Watch:    sp.Watch,
		Runs:     erep.Runs,
		States:   erep.States,
		Complete: erep.Complete,
		spec:     sp,
	}
	for _, o := range erep.Outcomes {
		hit, relaxed := classify(o.Values)
		rep.Outcomes = append(rep.Outcomes, ExhaustiveOutcome{
			Key:     o.Key,
			Values:  o.Values,
			Hit:     hit,
			Relaxed: relaxed,
			Picks:   o.Picks,
		})
	}
	return rep, nil
}

// CheckExhaustive verifies t's expectation for the runner's profile by
// exhaustive enumeration: Forbidden requires a complete exploration
// with no relaxed outcome, Allowed requires a reachable relaxed outcome
// (found by early-stopping search), AllowedUnseen checks nothing.
func (r *Runner) CheckExhaustive(t *Test) (*ExhaustiveReport, error) {
	exp, ok := t.Expect[r.Prof.Name]
	if !ok {
		return nil, fmt.Errorf("litmus %s: no expectation for profile %s", t.Name, r.Prof.Name)
	}
	switch exp {
	case Forbidden:
		rep, err := r.Exhaustive(t, false)
		if err != nil {
			return rep, err
		}
		if v := rep.Violation(); v != nil {
			return rep, fmt.Errorf("litmus %s on %s: forbidden outcome %s reachable (witness replayable)",
				t.Name, r.Prof.Name, v.Key)
		}
		if !rep.Complete {
			return rep, fmt.Errorf("litmus %s on %s: exploration truncated after %d runs; absence not proven",
				t.Name, r.Prof.Name, rep.Runs)
		}
		return rep, nil
	case Allowed:
		rep, err := r.Exhaustive(t, true)
		if err != nil {
			return rep, err
		}
		if rep.Violation() == nil {
			return rep, fmt.Errorf("litmus %s on %s: relaxed outcome allowed but unreachable (%d outcomes in %d runs)",
				t.Name, r.Prof.Name, len(rep.Outcomes), rep.Runs)
		}
		return rep, nil
	default: // AllowedUnseen
		rep, err := r.Exhaustive(t, true)
		if err != nil {
			return rep, err
		}
		return rep, nil
	}
}
