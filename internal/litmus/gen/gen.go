// Package gen is a diy-style litmus-test generator: it enumerates
// critical cycles — in the sense of Alglave et al.'s diy7 tool — over a
// small edge grammar and emits them as runnable litmus.Test values.
//
// # Cycle grammar
//
// A generated test has T threads (2..4) and T shared locations, one per
// thread boundary.  Thread i performs two events: a_i on location
// L_{i-1 mod T} and b_i on location L_i.  Between b_i and a_{i+1} sits
// one external communication edge x_i, drawn from:
//
//   - Rfe (reads-from external): b_i writes, a_{i+1} reads that write;
//   - Fre (from-read external): b_i reads, a_{i+1} writes — the edge is
//     witnessed when the read missed the write (read a co-earlier
//     value);
//   - Wse (write-serialisation external, diy's Ws/coe): both write, with
//     a_{i+1} coherence-after b_i.
//
// Within thread i, the internal edge a_i → b_i is program order alone
// (po), an address/data dependency (dep, only after a read), a control
// dependency (ctrl, only after a read), or a fence of a given kind.
//
// The union of the T external edges and T internal edges forms one
// directed cycle through every thread.  Under sequential consistency
// every edge implies happens-before, so the full cycle is unsatisfiable:
// a run witnessing ALL external edges simultaneously is a relaxed
// outcome, exactly what Test.Relaxed detects.  Weak machines may
// exhibit it when the internal edges are too weak to localise order.
//
// Writes to a location are valued in coherence order (1, then 2 for a
// Wse successor), so witness predicates reduce to equality over final
// memory: an Rfe read must return 1, an Fre read must return a value
// below the co-successor's, a Wse location must end at 2.
//
// # Determinism
//
// Generation is a pure function of Config: a seeded xorshift stream
// drives every choice, duplicates (by canonical name) are rejected with
// bounded retries, and the emitted order is the generation order.  Two
// parties with the same Config therefore hold byte-identical test
// lists — the property the distributed litmus path relies on when
// workers regenerate their shard from (seed, count, index range)
// instead of shipping programs over the wire.
package gen

import (
	"fmt"
	"strings"

	"repro/internal/arch"
	"repro/internal/litmus"
	"repro/internal/sim"
)

// EdgeKind is an external communication edge between adjacent threads.
type EdgeKind uint8

const (
	Rfe EdgeKind = iota
	Fre
	Wse
	numEdgeKinds
)

var edgeNames = [numEdgeKinds]string{"Rfe", "Fre", "Wse"}

// String returns the diy-style edge name.
func (e EdgeKind) String() string { return edgeNames[e] }

// InternalKind is the intra-thread edge between a thread's two events.
type InternalKind uint8

const (
	IntPo InternalKind = iota
	IntDep
	IntCtrl
	IntFence
	numInternalKinds
)

// Recipe is the serialisable description of one generated test; the
// runnable litmus.Test is derived from it deterministically.
type Recipe struct {
	// Edges[i] is the external edge from thread i's second event to
	// thread (i+1)%T's first event; len(Edges) is the thread count.
	Edges []EdgeKind
	// Internals[i] is thread i's internal edge.
	Internals []InternalKind
	// Fences[i] is the barrier kind when Internals[i] == IntFence.
	Fences []arch.BarrierKind
}

// Threads returns the thread count.
func (rc *Recipe) Threads() int { return len(rc.Edges) }

// Name returns the canonical test name: per thread, the internal-edge
// mnemonic then the outgoing external edge, e.g. "gen:po.Fre+po.Fre"
// (the SB shape).  Equal names ⇔ equal recipes.
func (rc *Recipe) Name() string {
	parts := make([]string, rc.Threads())
	for i := range parts {
		var in string
		switch rc.Internals[i] {
		case IntPo:
			in = "po"
		case IntDep:
			in = "dep"
		case IntCtrl:
			in = "ctrl"
		case IntFence:
			in = strings.ReplaceAll(rc.Fences[i].String(), " ", "")
		}
		parts[i] = in + "." + rc.Edges[i].String()
	}
	return "gen:" + strings.Join(parts, "+")
}

// Locations used by generated tests: the catalogue's three shared lines
// plus a fourth for 4-thread cycles, all on distinct cache lines for
// both profiles and clear of the result region.
var genLocs = [4]int64{litmus.X, litmus.Y, litmus.Z, 320}

// srcWrites reports whether edge e's source event (b_i) is a write.
func (e EdgeKind) srcWrites() bool { return e == Rfe || e == Wse }

// dstWrites reports whether edge e's destination event (a_{i+1}) is a
// write.
func (e EdgeKind) dstWrites() bool { return e == Fre || e == Wse }

// Build derives the runnable litmus test from the recipe.
func (rc *Recipe) Build() *litmus.Test {
	T := rc.Threads()
	locs := genLocs[:T]

	// Value plan per location L_i: the Wse source writes 1 and its
	// co-successor 2; a lone writer writes 1.
	srcVal := make([]int64, T) // value written by b_i when it writes
	dstVal := make([]int64, T) // value written by a_{i+1} when it writes
	for i, e := range rc.Edges {
		switch e {
		case Rfe:
			srcVal[i] = 1
		case Fre:
			dstVal[i] = 1
		case Wse:
			srcVal[i], dstVal[i] = 1, 2
		}
	}

	threads := make([]litmus.Thread, T)
	for i := 0; i < T; i++ {
		i := i
		inEdge := rc.Edges[(i+T-1)%T] // edge arriving at a_i
		outEdge := rc.Edges[i]        // edge leaving b_i
		aLoc := locs[(i+T-1)%T]
		bLoc := locs[i]
		aWrites := inEdge.dstWrites()
		bWrites := outEdge.srcWrites()
		aVal := dstVal[(i+T-1)%T]
		bVal := srcVal[i]
		internal := rc.Internals[i]
		fence := arch.BarrierNone
		if internal == IntFence {
			fence = rc.Fences[i]
		}
		threads[i] = litmus.Thread{
			Setup: func(b *arch.Builder) {
				// Prime both lines so races are cache-to-cache, as in
				// the hand-written catalogue.
				b.Load(26, litmus.Base, aLoc)
				if bLoc != aLoc {
					b.Load(26, litmus.Base, bLoc)
				}
			},
			Body: func(b *arch.Builder) {
				// Event a_i into r2.
				if aWrites {
					b.MovImm(2, aVal)
					b.Store(2, litmus.Base, aLoc)
				} else {
					b.Load(2, litmus.Base, aLoc)
				}
				// Internal edge a_i -> b_i.
				addrBase := litmus.Base
				depVal := false
				switch internal {
				case IntFence:
					b.Fence(fence)
				case IntDep:
					// r4 = r2 ^ r2 = 0; address dependency for a read
					// target, data dependency for a write target.
					b.Eor(4, 2, 2)
					if bWrites {
						depVal = true
					} else {
						b.Add(5, litmus.Base, 4)
						addrBase = 5
					}
				case IntCtrl:
					b.CmpImm(2, 42)
					b.Bne("gen_ctl")
					b.Label("gen_ctl")
				}
				// Event b_i into r3.
				if bWrites {
					b.MovImm(3, bVal)
					if depVal {
						b.Add(3, 3, 4) // + (r2^r2): carries the dependency
					}
					b.Store(3, addrBase, bLoc)
				} else {
					b.Load(3, addrBase, bLoc)
				}
				// Record observations (result lines are thread-private).
				if !aWrites {
					b.Store(2, litmus.Base, litmus.ResultAddr(i, 0))
				}
				if !bWrites {
					b.Store(3, litmus.Base, litmus.ResultAddr(i, 1))
				}
			},
		}
	}

	edges := append([]EdgeKind(nil), rc.Edges...)
	relaxed := func(mem func(int64) int64) bool {
		for i, e := range edges {
			loc := locs[i]
			dst := (i + 1) % T
			switch e {
			case Rfe:
				if mem(litmus.ResultAddr(dst, 0)) != srcVal[i] {
					return false
				}
			case Fre:
				if mem(litmus.ResultAddr(i, 1)) >= dstVal[i] {
					return false
				}
			case Wse:
				if mem(loc) != dstVal[i] {
					return false
				}
			}
		}
		return true
	}

	return &litmus.Test{
		Name:    rc.Name(),
		Threads: threads,
		Relaxed: relaxed,
	}
}

// Config parameterises a generation run.
type Config struct {
	// Seed drives every random choice (default 1).
	Seed int64
	// Count is the number of distinct tests to emit.
	Count int
	// MaxThreads caps the cycle length (2..4; default 4).
	MaxThreads int
}

// fencePool is the barrier menu for IntFence internal edges.  Both
// profiles execute every kind (with profile-specific latencies and
// ordering strength), so generated tests stay portable across them.
var fencePool = []arch.BarrierKind{
	arch.DMBIsh, arch.DMBIshLd, arch.DMBIshSt, arch.LwSync, arch.HwSync,
}

// Generate emits cfg.Count distinct tests.  The sequence is a pure
// function of cfg: same config, same byte-identical recipe list.
func Generate(cfg Config) ([]*Recipe, error) {
	if cfg.Count <= 0 {
		return nil, fmt.Errorf("gen: Count must be positive")
	}
	maxT := cfg.MaxThreads
	if maxT == 0 {
		maxT = 4
	}
	if maxT < 2 || maxT > 4 {
		return nil, fmt.Errorf("gen: MaxThreads %d outside [2,4]", maxT)
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	rnd := sim.NewXorShift64(uint64(seed)*0x9e3779b97f4a7c15 + 0xd1b54a32d192ed03)

	seen := map[string]bool{}
	var out []*Recipe
	// The recipe space is finite; with bounded retries an impossible
	// Count fails loudly instead of spinning.
	misses := 0
	for len(out) < cfg.Count {
		rc := randomRecipe(&rnd, maxT)
		name := rc.Name()
		if seen[name] {
			misses++
			if misses > 200*cfg.Count+10_000 {
				return out, fmt.Errorf("gen: only %d distinct tests reachable for %+v", len(out), cfg)
			}
			continue
		}
		seen[name] = true
		out = append(out, rc)
	}
	return out, nil
}

func randomRecipe(rnd *sim.XorShift64, maxT int) *Recipe {
	T := 2 + int(rnd.Intn(int64(maxT-1)))
	rc := &Recipe{
		Edges:     make([]EdgeKind, T),
		Internals: make([]InternalKind, T),
		Fences:    make([]arch.BarrierKind, T),
	}
	for i := range rc.Edges {
		rc.Edges[i] = EdgeKind(rnd.Intn(int64(numEdgeKinds)))
	}
	for i := range rc.Internals {
		// a_i reads iff the incoming edge's destination is a read.
		aReads := !rc.Edges[(i+T-1)%T].dstWrites()
		k := InternalKind(rnd.Intn(int64(numInternalKinds)))
		if !aReads && (k == IntDep || k == IntCtrl) {
			// Dependencies hang off a loaded value; writers fall back
			// to plain program order.
			k = IntPo
		}
		rc.Internals[i] = k
		if k == IntFence {
			rc.Fences[i] = fencePool[rnd.Intn(int64(len(fencePool)))]
		}
	}
	return rc
}

// BuildAll derives the runnable tests for a recipe list.
func BuildAll(recipes []*Recipe) []*litmus.Test {
	ts := make([]*litmus.Test, len(recipes))
	for i, rc := range recipes {
		ts[i] = rc.Build()
	}
	return ts
}
