package gen

import (
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/litmus"
)

// TestGenerateDeterminism pins the property the distributed litmus path
// depends on: the same config yields a byte-identical test list, and
// different seeds yield different lists.
func TestGenerateDeterminism(t *testing.T) {
	cfg := Config{Seed: 7, Count: 200}
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	joinNames := func(rs []*Recipe) string {
		names := make([]string, len(rs))
		for i, rc := range rs {
			names[i] = rc.Name()
		}
		return strings.Join(names, "\n")
	}
	na, nb := joinNames(a), joinNames(b)
	if na != nb {
		t.Fatal("same config generated different test lists")
	}
	other, err := Generate(Config{Seed: 8, Count: 200})
	if err != nil {
		t.Fatal(err)
	}
	if joinNames(other) == na {
		t.Error("different seeds generated identical test lists")
	}

	seen := map[string]bool{}
	for _, rc := range a {
		name := rc.Name()
		if seen[name] {
			t.Errorf("duplicate test %s", name)
		}
		seen[name] = true
		if got, want := len(rc.Internals), rc.Threads(); got != want {
			t.Errorf("%s: %d internals for %d threads", name, got, want)
		}
	}
}

// TestGenerateConstraints checks structural invariants: dependencies
// and control edges only follow reads, fence slots are populated
// exactly for fence internals, and thread counts stay in range.
func TestGenerateConstraints(t *testing.T) {
	recipes, err := Generate(Config{Seed: 3, Count: 300})
	if err != nil {
		t.Fatal(err)
	}
	for _, rc := range recipes {
		T := rc.Threads()
		if T < 2 || T > 4 {
			t.Fatalf("%s: %d threads", rc.Name(), T)
		}
		for i := 0; i < T; i++ {
			aReads := !rc.Edges[(i+T-1)%T].dstWrites()
			k := rc.Internals[i]
			if (k == IntDep || k == IntCtrl) && !aReads {
				t.Errorf("%s: thread %d has dependency after a write", rc.Name(), i)
			}
			if k == IntFence && rc.Fences[i] == arch.BarrierNone {
				t.Errorf("%s: thread %d fence internal without a kind", rc.Name(), i)
			}
			if k != IntFence && rc.Fences[i] != arch.BarrierNone {
				t.Errorf("%s: thread %d stray fence kind", rc.Name(), i)
			}
		}
	}
}

// TestGeneratedRoundTrip runs every generated test through the sampling
// runner on both profiles: programs must assemble, halt, and classify
// without error.  SB must resurface from the grammar as gen:po.Fre+po.Fre
// and exhibit its relaxed outcome.
func TestGeneratedRoundTrip(t *testing.T) {
	count := 60
	if testing.Short() {
		count = 15
	}
	recipes, err := Generate(Config{Seed: 11, Count: count})
	if err != nil {
		t.Fatal(err)
	}
	tests := BuildAll(recipes)
	for _, prof := range []*arch.Profile{arch.ARMv8(), arch.POWER7()} {
		r := &litmus.Runner{Prof: prof, Trials: 20, Seed: 5}
		for _, tst := range tests {
			if _, err := r.Run(tst); err != nil {
				t.Fatalf("%s on %s: %v", tst.Name, prof.Name, err)
			}
		}
	}

	// The grammar contains the classic shapes; SB (both threads write
	// then read the other's location: Fre edges both ways, po inside)
	// must show its relaxed outcome on armv8 with enough trials.
	sb := (&Recipe{
		Edges:     []EdgeKind{Fre, Fre},
		Internals: []InternalKind{IntPo, IntPo},
		Fences:    make([]arch.BarrierKind, 2),
	}).Build()
	if sb.Name != "gen:po.Fre+po.Fre" {
		t.Fatalf("canonical SB name: %s", sb.Name)
	}
	out, err := (&litmus.Runner{Prof: arch.ARMv8(), Trials: 200, Seed: 2}).Run(sb)
	if err != nil {
		t.Fatal(err)
	}
	if out.Relaxed == 0 {
		t.Error("generated SB never exhibited the relaxed outcome on armv8")
	}
}

// TestGeneratedExhaustive sends a few generated shapes through the
// exhaustive engine: enumeration must complete (no spin loops in the
// grammar guarantees halting) and classify outcomes without error.
func TestGeneratedExhaustive(t *testing.T) {
	recipes, err := Generate(Config{Seed: 19, Count: 6, MaxThreads: 2})
	if err != nil {
		t.Fatal(err)
	}
	r := &litmus.Runner{Prof: arch.ARMv8()}
	for _, rc := range recipes {
		tst := rc.Build()
		rep, err := r.Exhaustive(tst, false)
		if err != nil {
			t.Fatalf("%s: %v", tst.Name, err)
		}
		if !rep.Complete {
			t.Errorf("%s: exploration truncated after %d runs", tst.Name, rep.Runs)
		}
		if len(rep.Outcomes) == 0 {
			t.Errorf("%s: no outcomes", tst.Name)
		}
	}
}
