//go:build race

package litmus

const raceEnabled = true
