package litmus

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/sim"
)

// TestDelayStreamUnchanged pins that swapping the runner's inline
// xorshift for the shared sim.XorShift64 left the alignment-delay
// stream — and therefore every sampled litmus outcome — unchanged: the
// legacy recurrence is reimplemented here verbatim and compared draw by
// draw against what Run now uses.
func TestDelayStreamUnchanged(t *testing.T) {
	for _, seed := range []int64{1, 2, 7, 12345} {
		for _, maxDelay := range []int64{60, 120, 300} {
			rnd := sim.NewXorShift64(uint64(seed)*0x9e3779b9 + 1)
			legacy := struct{ s uint64 }{uint64(seed)*0x9e3779b9 + 1}
			for i := 0; i < 1000; i++ {
				legacy.s ^= legacy.s << 13
				legacy.s ^= legacy.s >> 7
				legacy.s ^= legacy.s << 17
				want := int64(legacy.s % uint64(maxDelay))
				if got := rnd.Intn(maxDelay); got != want {
					t.Fatalf("seed %d maxDelay %d draw %d: got %d want %d", seed, maxDelay, i, got, want)
				}
			}
		}
	}
}

func outcomeKey(watch []int64, mem func(int64) int64) string {
	var b strings.Builder
	for i, a := range watch {
		if i > 0 {
			b.WriteByte('/')
		}
		fmt.Fprintf(&b, "%d", mem(a))
	}
	return b.String()
}

// TestExhaustiveSupersetOfSampling is the empirical soundness check for
// the explorer's reduced choice domains: every outcome the sampling
// runner observes must be contained in the exhaustively enumerated set.
// A miss here means a reduction (delay extremality, pinned jitter,
// sticky combine, the stagger domain) cut a reachable behaviour.
func TestExhaustiveSupersetOfSampling(t *testing.T) {
	if raceEnabled {
		t.Skip("full enumeration under the race detector exceeds CI budgets; the no-race conformance step runs it")
	}
	for _, prof := range []*arch.Profile{arch.ARMv8(), arch.POWER7()} {
		for _, tst := range Suite(prof.Name) {
			tst := tst
			t.Run(prof.Name+"/"+tst.Name, func(t *testing.T) {
				if testing.Short() && len(tst.Threads) > 2 {
					t.Skip("short mode: 2-thread shapes only")
				}
				if tst.StressProp && len(tst.Threads) > 3 {
					// The stressed 4-thread shapes have three-valued
					// propagation domains per (store, destination); their
					// full tree exceeds any practical run budget.  The
					// early-stopping conformance check still covers them.
					t.Skip("stressed 4-thread shape: full enumeration impractical")
				}
				watch := WatchedAddrs(tst)
				sampled := map[string]bool{}
				r := &Runner{
					Prof:    prof,
					Trials:  400,
					Seed:    2,
					Observe: func(mem func(int64) int64) { sampled[outcomeKey(watch, mem)] = true },
				}
				if testing.Short() {
					r.Trials = 120
				}
				if _, err := r.Run(tst); err != nil {
					t.Fatal(err)
				}
				rep, err := r.Exhaustive(tst, false)
				if err != nil {
					t.Fatal(err)
				}
				if !rep.Complete {
					t.Fatalf("exploration truncated after %d runs", rep.Runs)
				}
				enumerated := map[string]bool{}
				for _, o := range rep.Outcomes {
					enumerated[o.Key] = true
				}
				for k := range sampled {
					if !enumerated[k] {
						t.Errorf("sampled outcome %s not in enumerated set (%d outcomes)", k, len(rep.Outcomes))
					}
				}
				t.Logf("sampled %d ⊆ enumerated %d outcomes (%d runs, %d states)",
					len(sampled), len(rep.Outcomes), rep.Runs, rep.States)
			})
		}
	}
}

// TestExhaustiveConformance runs the exhaustive verdict over the whole
// catalogue: Forbidden expectations become proofs of absence over the
// reduced domains, Allowed expectations constructive witnesses.
func TestExhaustiveConformance(t *testing.T) {
	if raceEnabled {
		t.Skip("full enumeration under the race detector exceeds CI budgets; the no-race conformance step runs it")
	}
	for _, prof := range []*arch.Profile{arch.ARMv8(), arch.POWER7()} {
		for _, tst := range Suite(prof.Name) {
			tst := tst
			t.Run(prof.Name+"/"+tst.Name, func(t *testing.T) {
				if testing.Short() && len(tst.Threads) > 2 {
					t.Skip("short mode: 2-thread shapes only")
				}
				rep, err := r(prof).CheckExhaustive(tst)
				if err != nil {
					t.Fatal(err)
				}
				t.Logf("%s: %d outcomes, %d runs, %d states, complete=%v",
					tst.Expect[prof.Name], len(rep.Outcomes), rep.Runs, rep.States, rep.Complete)
			})
		}
	}
}

func r(prof *arch.Profile) *Runner { return &Runner{Prof: prof} }

// TestExhaustiveWitness checks that an Allowed verdict carries a
// replayable witness whose rendered trace shows both cores retiring.
func TestExhaustiveWitness(t *testing.T) {
	prof := arch.ARMv8()
	var sb *Test
	for _, tst := range Suite(prof.Name) {
		if tst.Name == "SB" {
			sb = tst
		}
	}
	if sb == nil {
		t.Fatal("SB not in catalogue")
	}
	rep, err := r(prof).Exhaustive(sb, true)
	if err != nil {
		t.Fatal(err)
	}
	v := rep.Violation()
	if v == nil {
		t.Fatal("no relaxed outcome found for SB on armv8")
	}
	var buf strings.Builder
	if err := rep.WriteWitness(v, &buf); err != nil {
		t.Fatal(err)
	}
	trace := buf.String()
	if !strings.Contains(trace, "c0") || !strings.Contains(trace, "c1") {
		t.Errorf("witness trace missing per-core events:\n%s", trace)
	}
	if !strings.Contains(trace, "satisfied@") {
		t.Errorf("witness trace has no load events:\n%s", trace)
	}
}
