//go:build !race

package litmus

// raceEnabled reports whether the race detector is compiled in.  The
// exhaustive-enumeration tests perform thousands of simulator runs per
// shape and skip themselves under -race (a dedicated no-race CI step
// runs them at full depth).
const raceEnabled = false
