package litmus

import "repro/internal/arch"

// The catalogue below follows the naming of Sarkar et al. / Alglave et al.:
// MP (message passing), SB (store buffering), LB (load buffering), CoRR /
// CoWW (per-location coherence), WRC (write-to-read causality), IRIW
// (independent reads of independent writes), 2+2W.  Variants append the
// ordering mechanism per thread, e.g. MP+ishst+ctl.
//
// Expectations encode the architectures' documented behaviour, which the
// simulator is required to match: see DESIGN.md §5 for the two deliberate
// deviations (LB relaxation and spin-loop MP on the MCA profile are not
// exhibited, like most real implementations).

func primeLines(addrs ...int64) func(*arch.Builder) {
	return func(b *arch.Builder) {
		for _, a := range addrs {
			b.Load(26, Base, a)
		}
	}
}

// mpWriter emits: X=1; <fence>; Y=1.
func mpWriter(fence arch.BarrierKind) Thread {
	return Thread{Body: func(b *arch.Builder) {
		b.MovImm(2, 1)
		b.Store(2, Base, X)
		b.Fence(fence)
		b.Store(2, Base, Y)
	}}
}

// mpWriterRel emits: X=1; stlr Y=1.
func mpWriterRel() Thread {
	return Thread{Body: func(b *arch.Builder) {
		b.MovImm(2, 1)
		b.Store(2, Base, X)
		b.StoreRel(2, Base, Y)
	}}
}

// Reader ordering mechanisms for the MP family.
type readerKind uint8

const (
	rdPlain readerKind = iota
	rdFence
	rdAddrDep
	rdCtrl
	rdCtrlISB
	rdAcquire
)

// mpReader emits: r2 = Y; <order>; r3 = X; record r2, r3.  The X line is
// primed so the data load can satisfy quickly relative to a missing flag.
func mpReader(kind readerKind, fence arch.BarrierKind) Thread {
	return Thread{
		Setup: primeLines(X),
		Body: func(b *arch.Builder) {
			if kind == rdAcquire {
				b.LoadAcq(2, Base, Y)
			} else {
				b.Load(2, Base, Y)
			}
			switch kind {
			case rdFence:
				b.Fence(fence)
			case rdAddrDep:
				// r4 = r2 ^ r2 = 0; r5 = base + r4: a true address
				// dependency that does not change the address.
				b.Eor(4, 2, 2)
				b.Add(5, Base, 4)
				b.Load(3, 5, X)
				b.Store(2, Base, ResultAddr(1, 0))
				b.Store(3, Base, ResultAddr(1, 1))
				return
			case rdCtrl, rdCtrlISB:
				// Control dependency: a conditional branch on the
				// loaded value over an impotent target (both paths
				// reach the load), per ARMv8 manual B2.7.4.
				b.CmpImm(2, 42)
				b.Bne("ctl")
				b.Label("ctl")
				if kind == rdCtrlISB {
					b.Fence(arch.ISB)
				}
			}
			b.Load(3, Base, X)
			b.Store(2, Base, ResultAddr(1, 0))
			b.Store(3, Base, ResultAddr(1, 1))
		},
	}
}

func mpRelaxed(mem func(int64) int64) bool {
	return mem(ResultAddr(1, 0)) == 1 && mem(ResultAddr(1, 1)) == 0
}

func mpHit(mem func(int64) int64) bool { return mem(ResultAddr(1, 0)) == 1 }

func mpTest(name string, w, r Thread, expect map[string]Expectation) *Test {
	return &Test{
		Name:    name,
		Threads: []Thread{w, r},
		Relaxed: mpRelaxed,
		Hit:     mpHit,
		Expect:  expect,
	}
}

func both(e Expectation) map[string]Expectation {
	return map[string]Expectation{"armv8": e, "power7": e}
}

func armOnly(e Expectation) map[string]Expectation {
	return map[string]Expectation{"armv8": e}
}

func powerOnly(e Expectation) map[string]Expectation {
	return map[string]Expectation{"power7": e}
}

// sbThread emits: mine=1; <fence>; r2 = other; record r2.
func sbThread(t int, mine, other int64, fence arch.BarrierKind) Thread {
	return Thread{
		Setup: primeLines(mine, other),
		Body: func(b *arch.Builder) {
			b.MovImm(2, 1)
			b.Store(2, Base, mine)
			b.Fence(fence)
			b.Load(3, Base, other)
			b.Store(3, Base, ResultAddr(t, 0))
		},
	}
}

// sbThreadRelAcq emits: stlr mine=1; r2 = ldar other; record r2 — the
// JDK9 / C11-SC volatile mapping, whose RCsc stlr→ldar ordering forbids
// the SB relaxation on ARMv8.
func sbThreadRelAcq(t int, mine, other int64) Thread {
	return Thread{
		Setup: primeLines(mine, other),
		Body: func(b *arch.Builder) {
			b.MovImm(2, 1)
			b.StoreRel(2, Base, mine)
			b.LoadAcq(3, Base, other)
			b.Store(3, Base, ResultAddr(t, 0))
		},
	}
}

func sbTest(name string, fence0, fence1 arch.BarrierKind, expect map[string]Expectation) *Test {
	return &Test{
		Name:    name,
		Threads: []Thread{sbThread(0, X, Y, fence0), sbThread(1, Y, X, fence1)},
		Relaxed: func(mem func(int64) int64) bool {
			return mem(ResultAddr(0, 0)) == 0 && mem(ResultAddr(1, 0)) == 0
		},
		Expect: expect,
	}
}

// wrcT2 spins until it reads X = 1, then (ordered by fence and by the data
// dependency through r2) stores Y = r2.
func wrcT2(fence arch.BarrierKind) Thread {
	return Thread{
		Setup: primeLines(X),
		Body: func(b *arch.Builder) {
			b.Label("wrc_spin")
			b.Load(2, Base, X)
			b.CmpImm(2, 1)
			b.Bne("wrc_spin")
			b.Fence(fence)
			b.Store(2, Base, Y)
		},
	}
}

// wrcT3 spins until it observes Y = 1, then reads X through an address
// dependency on the observed value and records both observations.
func wrcT3() Thread {
	return Thread{
		Setup: primeLines(X, Y),
		Body: func(b *arch.Builder) {
			b.Label("wrc_t3_spin")
			b.Load(3, Base, Y)
			b.CmpImm(3, 1)
			b.Bne("wrc_t3_spin")
			b.Eor(5, 3, 3)
			b.Add(6, Base, 5)
			b.Load(4, 6, X)
			b.Store(3, Base, ResultAddr(2, 0))
			b.Store(4, Base, ResultAddr(2, 1))
		},
	}
}

func wrcTest(name string, t2fence arch.BarrierKind, expect map[string]Expectation) *Test {
	w := Thread{Body: func(b *arch.Builder) {
		b.MovImm(2, 1)
		b.Store(2, Base, X)
	}}
	return &Test{
		Name:    name,
		Threads: []Thread{w, wrcT2(t2fence), wrcT3()},
		Relaxed: func(mem func(int64) int64) bool {
			return mem(ResultAddr(2, 0)) == 1 && mem(ResultAddr(2, 1)) == 0
		},
		Hit:    func(mem func(int64) int64) bool { return mem(ResultAddr(2, 0)) == 1 },
		Expect: expect,
	}
}

// iriwReader spins until it observes first = 1 (self-aligning, like a real
// litmus campaign's retry harness), then performs the ordered read of
// second and records both observations.
func iriwReader(t int, first, second int64, kind readerKind, fence arch.BarrierKind) Thread {
	return Thread{
		Setup: primeLines(first, second),
		Body: func(b *arch.Builder) {
			b.Label("iriw_spin")
			b.Load(2, Base, first)
			b.CmpImm(2, 1)
			b.Bne("iriw_spin")
			switch kind {
			case rdFence:
				b.Fence(fence)
				b.Load(3, Base, second)
			case rdAddrDep:
				b.Eor(5, 2, 2)
				b.Add(6, Base, 5)
				b.Load(3, 6, second)
			default:
				b.Load(3, Base, second)
			}
			b.Store(2, Base, ResultAddr(t, 0))
			b.Store(3, Base, ResultAddr(t, 1))
		},
	}
}

func iriwTest(name string, kind readerKind, fence arch.BarrierKind, expect map[string]Expectation) *Test {
	w1 := Thread{Body: func(b *arch.Builder) { b.MovImm(2, 1); b.Store(2, Base, X) }}
	w2 := Thread{Body: func(b *arch.Builder) { b.MovImm(2, 1); b.Store(2, Base, Y) }}
	return &Test{
		Name: name,
		Threads: []Thread{w1, w2,
			iriwReader(2, X, Y, kind, fence),
			iriwReader(3, Y, X, kind, fence)},
		Relaxed: func(mem func(int64) int64) bool {
			return mem(ResultAddr(2, 0)) == 1 && mem(ResultAddr(2, 1)) == 0 &&
				mem(ResultAddr(3, 0)) == 1 && mem(ResultAddr(3, 1)) == 0
		},
		Expect: expect,
	}
}

// Suite returns the litmus tests relevant to the named profile ("armv8" or
// "power7"), each with an expectation for that profile.
func Suite(profile string) []*Test {
	var ts []*Test
	add := func(t *Test) {
		if _, ok := t.Expect[profile]; ok {
			ts = append(ts, t)
		}
	}

	// --- Message passing ------------------------------------------------
	add(mpTest("MP", mpWriter(arch.BarrierNone), mpReader(rdPlain, 0), both(Allowed)))
	add(mpTest("MP+ishst+po", mpWriter(arch.DMBIshSt), mpReader(rdPlain, 0), armOnly(Allowed)))
	mpPoLd := mpTest("MP+po+ishld", mpWriter(arch.BarrierNone), mpReader(rdFence, arch.DMBIshLd), armOnly(Allowed))
	mpPoLd.Trials = 1200
	add(mpPoLd)
	add(mpTest("MP+ishst+ishld", mpWriter(arch.DMBIshSt), mpReader(rdFence, arch.DMBIshLd), armOnly(Forbidden)))
	add(mpTest("MP+ish+ish", mpWriter(arch.DMBIsh), mpReader(rdFence, arch.DMBIsh), armOnly(Forbidden)))
	add(mpTest("MP+ishst+addr", mpWriter(arch.DMBIshSt), mpReader(rdAddrDep, 0), armOnly(Forbidden)))
	add(mpTest("MP+ishst+ctl", mpWriter(arch.DMBIshSt), mpReader(rdCtrl, 0), armOnly(Allowed)))
	add(mpTest("MP+ishst+ctlisb", mpWriter(arch.DMBIshSt), mpReader(rdCtrlISB, 0), armOnly(Forbidden)))
	add(mpTest("MP+rel+acq", mpWriterRel(), mpReader(rdAcquire, 0), armOnly(Forbidden)))

	add(mpTest("MP+lwsync+po", mpWriter(arch.LwSync), mpReader(rdPlain, 0), powerOnly(Allowed)))
	mpPoLw := mpTest("MP+po+lwsync", mpWriter(arch.BarrierNone), mpReader(rdFence, arch.LwSync), powerOnly(Allowed))
	mpPoLw.Trials, mpPoLw.MaxDelay = 1600, 60
	add(mpPoLw)
	add(mpTest("MP+lwsync+lwsync", mpWriter(arch.LwSync), mpReader(rdFence, arch.LwSync), powerOnly(Forbidden)))
	add(mpTest("MP+sync+sync", mpWriter(arch.HwSync), mpReader(rdFence, arch.HwSync), powerOnly(Forbidden)))
	add(mpTest("MP+lwsync+addr", mpWriter(arch.LwSync), mpReader(rdAddrDep, 0), powerOnly(Forbidden)))
	add(mpTest("MP+lwsync+ctl", mpWriter(arch.LwSync), mpReader(rdCtrl, 0), powerOnly(Allowed)))
	add(mpTest("MP+lwsync+ctlisync", mpWriter(arch.LwSync), mpReader(rdCtrlISB, 0), powerOnly(Forbidden)))

	// --- Store buffering -------------------------------------------------
	add(sbTest("SB", arch.BarrierNone, arch.BarrierNone, both(Allowed)))
	add(sbTest("SB+ish+ish", arch.DMBIsh, arch.DMBIsh, armOnly(Forbidden)))
	add(&Test{
		Name:    "SB+rel+acq",
		Threads: []Thread{sbThreadRelAcq(0, X, Y), sbThreadRelAcq(1, Y, X)},
		Relaxed: func(mem func(int64) int64) bool {
			return mem(ResultAddr(0, 0)) == 0 && mem(ResultAddr(1, 0)) == 0
		},
		Expect: armOnly(Forbidden),
	})
	add(sbTest("SB+sync+sync", arch.HwSync, arch.HwSync, powerOnly(Forbidden)))
	// lwsync does not order store→load: SB stays observable.
	add(sbTest("SB+lwsync+lwsync", arch.LwSync, arch.LwSync, powerOnly(Allowed)))

	// --- Per-location coherence ------------------------------------------
	add(&Test{
		Name: "CoRR",
		Threads: []Thread{
			{Body: func(b *arch.Builder) { b.MovImm(2, 1); b.Store(2, Base, X) }},
			{
				Setup: primeLines(X),
				Body: func(b *arch.Builder) {
					b.Load(2, Base, X)
					b.Load(3, Base, X)
					b.Store(2, Base, ResultAddr(1, 0))
					b.Store(3, Base, ResultAddr(1, 1))
				},
			},
		},
		Relaxed: func(mem func(int64) int64) bool {
			return mem(ResultAddr(1, 0)) == 1 && mem(ResultAddr(1, 1)) == 0
		},
		Expect: both(Forbidden),
	})
	add(&Test{
		Name: "CoWW",
		Threads: []Thread{{Body: func(b *arch.Builder) {
			b.MovImm(2, 1)
			b.Store(2, Base, X)
			b.MovImm(3, 2)
			b.Store(3, Base, X)
		}}},
		Relaxed: func(mem func(int64) int64) bool { return mem(X) != 2 },
		Expect:  both(Forbidden),
	})

	// --- Load buffering ---------------------------------------------------
	add(&Test{
		Name: "LB",
		Threads: []Thread{
			{Body: func(b *arch.Builder) {
				b.Load(2, Base, X)
				b.MovImm(3, 1)
				b.Store(3, Base, Y)
				b.Store(2, Base, ResultAddr(0, 0))
			}},
			{Body: func(b *arch.Builder) {
				b.Load(2, Base, Y)
				b.MovImm(3, 1)
				b.Store(3, Base, X)
				b.Store(2, Base, ResultAddr(1, 0))
			}},
		},
		Relaxed: func(mem func(int64) int64) bool {
			return mem(ResultAddr(0, 0)) == 1 && mem(ResultAddr(1, 0)) == 1
		},
		// Architecturally allowed on both, but not exhibited by this
		// simulator (stores never commit before older loads satisfy),
		// matching common hardware implementations.
		Expect: both(AllowedUnseen),
	})

	// --- Write-to-read causality ------------------------------------------
	wrcData := wrcTest("WRC+data+addr", arch.BarrierNone, map[string]Expectation{
		"armv8":  Forbidden, // MCA: T2's read of X implies X is globally visible
		"power7": Allowed,   // non-MCA: X may not have reached T3 yet
	})
	wrcData.Trials, wrcData.MaxDelay, wrcData.StressProp = 2400, 300, true
	add(wrcData)
	add(wrcTest("WRC+sync+addr", arch.HwSync, powerOnly(Forbidden)))

	// --- IRIW --------------------------------------------------------------
	iriwAddr := iriwTest("IRIW+addr+addr", rdAddrDep, 0, map[string]Expectation{
		"armv8":  Forbidden,
		"power7": Allowed,
	})
	iriwAddr.Trials, iriwAddr.MaxDelay, iriwAddr.StressProp = 2400, 40, true
	add(iriwAddr)
	add(iriwTest("IRIW+ishld+ishld", rdFence, arch.DMBIshLd, armOnly(Forbidden)))
	add(iriwTest("IRIW+sync+sync", rdFence, arch.HwSync, powerOnly(Forbidden)))
	iriwLw := iriwTest("IRIW+lwsync+lwsync", rdFence, arch.LwSync, powerOnly(Allowed))
	iriwLw.Trials, iriwLw.MaxDelay, iriwLw.StressProp = 2400, 40, true
	add(iriwLw)

	// --- R ------------------------------------------------------------------
	// P0: x=1; fence; y=1   P1: y=2; fence; r=x.  Relaxed: y final 2, r=0.
	rShape := func(name string, f0, f1 arch.BarrierKind, expect map[string]Expectation) *Test {
		return &Test{
			Name: name,
			Threads: []Thread{
				{Body: func(b *arch.Builder) {
					b.MovImm(2, 1)
					b.Store(2, Base, X)
					b.Fence(f0)
					b.Store(2, Base, Y)
				}},
				{
					Setup: primeLines(X, Y),
					Body: func(b *arch.Builder) {
						b.MovImm(2, 2)
						b.Store(2, Base, Y)
						b.Fence(f1)
						b.Load(3, Base, X)
						b.Store(3, Base, ResultAddr(1, 0))
					},
				},
			},
			Relaxed: func(mem func(int64) int64) bool {
				return mem(Y) == 2 && mem(ResultAddr(1, 0)) == 0
			},
			Hit:    func(mem func(int64) int64) bool { return mem(Y) == 2 },
			Expect: expect,
		}
	}
	add(rShape("R", arch.BarrierNone, arch.BarrierNone, both(Allowed)))
	add(rShape("R+ish+ish", arch.DMBIsh, arch.DMBIsh, armOnly(Forbidden)))
	add(rShape("R+sync+sync", arch.HwSync, arch.HwSync, powerOnly(Forbidden)))

	// --- S ------------------------------------------------------------------
	// P0: x=2; fence; y=1   P1: r=y; x=1.  Relaxed: r=1 and x finally 2
	// (P1's store ordered coherence-before P0's first store despite the
	// reads-from edge).
	sShape := func(name string, f0 arch.BarrierKind, expect map[string]Expectation) *Test {
		return &Test{
			Name: name,
			Threads: []Thread{
				{Body: func(b *arch.Builder) {
					b.MovImm(2, 2)
					b.Store(2, Base, X)
					b.Fence(f0)
					b.MovImm(3, 1)
					b.Store(3, Base, Y)
				}},
				{
					Setup: primeLines(X, Y),
					Body: func(b *arch.Builder) {
						b.Load(2, Base, Y)
						b.MovImm(3, 1)
						b.Store(3, Base, X)
						b.Store(2, Base, ResultAddr(1, 0))
					},
				},
			},
			Relaxed: func(mem func(int64) int64) bool {
				return mem(ResultAddr(1, 0)) == 1 && mem(X) == 2
			},
			Hit:    func(mem func(int64) int64) bool { return mem(ResultAddr(1, 0)) == 1 },
			Expect: expect,
		}
	}
	add(sShape("S", arch.BarrierNone, both(Allowed)))
	// With the writer fenced the shape needs P1's store to commit before
	// its load satisfies, which this machine (like most hardware) never
	// does — architecturally still allowed on ARM/POWER.
	add(sShape("S+ish+po", arch.DMBIsh, armOnly(AllowedUnseen)))
	add(sShape("S+lwsync+po", arch.LwSync, powerOnly(AllowedUnseen)))

	// --- 2+2W ---------------------------------------------------------------
	add(&Test{
		Name: "2+2W",
		Threads: []Thread{
			{Body: func(b *arch.Builder) {
				b.MovImm(2, 1)
				b.MovImm(3, 2)
				b.Store(2, Base, X)
				b.Store(3, Base, Y)
			}},
			{Body: func(b *arch.Builder) {
				b.MovImm(2, 1)
				b.MovImm(3, 2)
				b.Store(2, Base, Y)
				b.Store(3, Base, X)
			}},
		},
		Relaxed: func(mem func(int64) int64) bool { return mem(X) == 1 && mem(Y) == 1 },
		Expect:  both(Allowed),
	})
	add(&Test{
		Name: "2+2W+ishst+ishst",
		Threads: []Thread{
			{Body: func(b *arch.Builder) {
				b.MovImm(2, 1)
				b.MovImm(3, 2)
				b.Store(2, Base, X)
				b.Fence(arch.DMBIshSt)
				b.Store(3, Base, Y)
			}},
			{Body: func(b *arch.Builder) {
				b.MovImm(2, 1)
				b.MovImm(3, 2)
				b.Store(2, Base, Y)
				b.Fence(arch.DMBIshSt)
				b.Store(3, Base, X)
			}},
		},
		Relaxed: func(mem func(int64) int64) bool { return mem(X) == 1 && mem(Y) == 1 },
		Expect:  armOnly(Forbidden),
	})

	return ts
}
