// Package litmus defines classic weak-memory litmus tests and a runner that
// executes them on the simulator across many randomized alignments.  The
// suite serves two purposes:
//
//   - conformance: it validates that the simulated machine exhibits exactly
//     the relaxed behaviours the paper's target architectures exhibit (and
//     forbids the ones they forbid), per fencing variant;
//
//   - it is the substrate for the ISA-level microbenchmarks of §4.4 of the
//     paper (timing loops over barrier instructions).
package litmus

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/sim"
)

// Base is the register threads use as their memory base pointer; the runner
// sets it to zero.
const Base arch.Reg = 1

// Shared-location addresses used by the catalogue.  They sit on distinct
// cache lines for both profiles.
const (
	X int64 = 0
	Y int64 = 64
	Z int64 = 192
)

// Result-slot addresses: thread t's i-th observation is stored at
// ResultBase + 64*t + 8*i (distinct lines per thread).
const ResultBase int64 = 1024

// ResultAddr returns the address of thread t's i-th observation slot.
func ResultAddr(t, i int) int64 { return ResultBase + 64*int64(t) + 8*int64(i) }

// Thread is one hardware thread of a litmus test.
type Thread struct {
	// Setup emits priming code (cache warming) that runs before the
	// randomized alignment delay.
	Setup func(b *arch.Builder)
	// Body emits the test body proper.
	Body func(b *arch.Builder)
}

// Expectation states whether the relaxed outcome is architecturally
// observable on a machine.
type Expectation uint8

const (
	// Forbidden means the relaxed outcome must never be observed.
	Forbidden Expectation = iota
	// Allowed means the relaxed outcome is permitted and, for the shapes
	// in the catalogue, expected to be observable with enough trials.
	Allowed
	// AllowedUnseen means the relaxed outcome is architecturally allowed
	// but not exhibited by this simulator (nor by most real
	// implementations), e.g. LB on ARM.  The runner checks nothing.
	AllowedUnseen
)

// String returns the expectation name.
func (e Expectation) String() string {
	switch e {
	case Forbidden:
		return "forbidden"
	case Allowed:
		return "allowed"
	default:
		return "allowed-unseen"
	}
}

// Test is a litmus shape plus its per-profile expectations.
type Test struct {
	Name    string
	Init    map[int64]int64
	Threads []Thread
	// Relaxed decides, from the final memory image, whether this run
	// exhibited the relaxed outcome.  Hit decides whether the run
	// satisfied the shape's precondition (e.g. the flag was observed);
	// nil means every run counts.
	Relaxed func(mem func(int64) int64) bool
	Hit     func(mem func(int64) int64) bool
	// Expect maps profile name ("armv8", "power7") to the expectation.
	Expect map[string]Expectation
	// Trials overrides the runner's trial count (rare Allowed shapes
	// need more randomized alignments to show up).
	Trials int
	// MaxDelay overrides the runner's alignment-delay bound (shapes
	// needing tight races use a small bound).
	MaxDelay int64
	// StressProp runs the test with an elevated propagation-tail
	// probability, the litmus-campaign equivalent of running the shape
	// under memory-system stress to provoke rare outcomes.
	StressProp bool
}

// Outcome summarises running one Test many times.
type Outcome struct {
	Trials  int
	Hits    int // runs satisfying the precondition
	Relaxed int // runs exhibiting the relaxed outcome
}

// Runner executes litmus tests on a given profile.
type Runner struct {
	Prof   *arch.Profile
	Trials int   // number of randomized runs (default 400)
	Seed   int64 // base seed (default 1)
	// MaxDelay bounds the random alignment delay in loop iterations.
	MaxDelay int64
	// Observe, when non-nil, is called after every trial with the final
	// memory image (before Hit filtering).  The exhaustive-superset
	// conformance check records sampled outcomes through it.
	Observe func(mem func(int64) int64)
}

// delayReg is scratch for the alignment delay loop.
const delayReg arch.Reg = 27

// Run executes the test and returns outcome counts.
func (r *Runner) Run(t *Test) (Outcome, error) {
	trials := r.Trials
	if trials <= 0 {
		trials = 400
	}
	if t.Trials > 0 {
		// Scale a per-test override proportionally when the runner asks
		// for a reduced count (e.g. under -short).
		trials = t.Trials * trials / 400
		if trials < 1 {
			trials = 1
		}
	}
	maxDelay := r.MaxDelay
	if maxDelay <= 0 {
		maxDelay = 120
	}
	if t.MaxDelay > 0 {
		maxDelay = t.MaxDelay
	}
	seed := r.Seed
	if seed == 0 {
		seed = 1
	}
	var out Outcome
	rnd := sim.NewXorShift64(uint64(seed)*0x9e3779b9 + 1)
	next := func() int64 { return rnd.Intn(maxDelay) }

	prof := r.Prof
	if t.StressProp {
		stressed := *prof
		stressed.Lat.PropTail = 300
		stressed.Lat.PropMax = prof.Lat.PropMax + 32
		prof = &stressed
	}
	// One machine serves every trial: the configuration is constant across
	// trials, so Reset (bit-identical to fresh construction) replaces the
	// per-trial rebuild that used to dominate campaign time.
	var m *sim.Machine
	for trial := 0; trial < trials; trial++ {
		trialSeed := seed + int64(trial)*7919
		if m == nil {
			var err error
			m, err = sim.New(prof, sim.Config{
				Cores:    len(t.Threads),
				MemWords: 4096,
				Seed:     trialSeed,
			})
			if err != nil {
				return out, err
			}
		} else {
			m.Reset(trialSeed)
		}
		for addr, val := range t.Init {
			m.WriteMem(addr, val)
		}
		// Litmus runs race on warmed memory: the shared locations are
		// already resident in the outer hierarchy, so priming loads and
		// first observations cost cache-to-cache latency, not DRAM.
		for _, a := range []int64{X, Y, Z} {
			m.PreTouch(a)
		}
		for i, th := range t.Threads {
			b := arch.NewBuilder()
			if th.Setup != nil {
				th.Setup(b)
			}
			if d := next(); d > 0 {
				b.MovImm(delayReg, d)
				b.Label("litmus_delay")
				b.SubsImm(delayReg, delayReg, 1)
				b.Bne("litmus_delay")
			}
			th.Body(b)
			b.Halt()
			prog, err := b.Build()
			if err != nil {
				return out, fmt.Errorf("litmus %s thread %d: %w", t.Name, i, err)
			}
			m.SetReg(i, Base, 0)
			if err := m.LoadProgram(i, prog); err != nil {
				return out, err
			}
		}
		res, err := m.Run(4_000_000)
		if err != nil {
			return out, fmt.Errorf("litmus %s trial %d: %w", t.Name, trial, err)
		}
		if !res.AllHalted {
			return out, fmt.Errorf("litmus %s trial %d: did not halt", t.Name, trial)
		}
		out.Trials++
		if r.Observe != nil {
			r.Observe(m.ReadMem)
		}
		if t.Hit != nil && !t.Hit(m.ReadMem) {
			continue
		}
		out.Hits++
		if t.Relaxed(m.ReadMem) {
			out.Relaxed++
		}
	}
	return out, nil
}

// Check runs the test and verifies the outcome against the expectation for
// the runner's profile.  It returns the outcome and a nil error when the
// behaviour conforms.
func (r *Runner) Check(t *Test) (Outcome, error) {
	exp, ok := t.Expect[r.Prof.Name]
	if !ok {
		return Outcome{}, fmt.Errorf("litmus %s: no expectation for profile %s", t.Name, r.Prof.Name)
	}
	out, err := r.Run(t)
	if err != nil {
		return out, err
	}
	switch exp {
	case Forbidden:
		if out.Relaxed > 0 {
			return out, fmt.Errorf("litmus %s on %s: relaxed outcome observed %d/%d times but is forbidden",
				t.Name, r.Prof.Name, out.Relaxed, out.Hits)
		}
	case Allowed:
		if out.Relaxed == 0 {
			return out, fmt.Errorf("litmus %s on %s: relaxed outcome allowed but never observed (%d hits)",
				t.Name, r.Prof.Name, out.Hits)
		}
	case AllowedUnseen:
		// Nothing to check.
	}
	return out, nil
}
