package litmus

import (
	"testing"

	"repro/internal/arch"
)

// TestSuiteConformance runs every litmus test on its relevant profiles and
// checks conformance with the architectural expectations.
func TestSuiteConformance(t *testing.T) {
	for name, prof := range arch.Profiles() {
		prof := prof
		t.Run(prof.Name, func(t *testing.T) {
			t.Parallel()
			trials := 400
			if testing.Short() {
				trials = 120
			}
			r := &Runner{Prof: prof, Trials: trials, Seed: 2}
			for _, test := range Suite(prof.Name) {
				test := test
				t.Run(test.Name, func(t *testing.T) {
					t.Parallel()
					out, err := r.Check(test)
					if err != nil {
						t.Errorf("%v", err)
					}
					t.Logf("%s on %s (%s): relaxed %d / hits %d / trials %d",
						test.Name, name, test.Expect[prof.Name], out.Relaxed, out.Hits, out.Trials)
				})
			}
		})
	}
}

// TestSuiteCoverage sanity-checks the catalogue shape counts per profile.
func TestSuiteCoverage(t *testing.T) {
	arm := Suite("armv8")
	pow := Suite("power7")
	if len(arm) < 15 {
		t.Errorf("armv8 suite has only %d tests", len(arm))
	}
	if len(pow) < 14 {
		t.Errorf("power7 suite has only %d tests", len(pow))
	}
	for _, ts := range [][]*Test{arm, pow} {
		seen := map[string]bool{}
		for _, test := range ts {
			if seen[test.Name] {
				t.Errorf("duplicate litmus test %q", test.Name)
			}
			seen[test.Name] = true
			if test.Relaxed == nil {
				t.Errorf("litmus test %q has no relaxed predicate", test.Name)
			}
			if len(test.Threads) == 0 {
				t.Errorf("litmus test %q has no threads", test.Name)
			}
		}
	}
}

// TestRunnerUnknownProfile checks the error path for missing expectations.
func TestRunnerUnknownProfile(t *testing.T) {
	prof := arch.ARMv8()
	prof.Name = "weird"
	r := &Runner{Prof: prof, Trials: 1}
	_, err := r.Check(Suite("armv8")[0])
	if err == nil {
		t.Fatal("expected error for unknown profile expectation")
	}
}
