// Package kernel models the Linux-kernel memory-model implementation the
// paper studies in §4.3: the barrier macros of memory-barriers.txt lowered
// to per-architecture instruction sequences, the five candidate
// implementations of read_barrier_depends (Figure 10), and the concurrency
// substrate built on the macros (spinlocks, seqlocks, RCU-style publish /
// dereference, MPSC queues) that the kernel benchmarks exercise.
//
// Each macro is a code path: it carries a stable PathID, accepts a cost
// function or nop-placeholder injection, and its invocations are counted.
// Binary-size invariance is preserved exactly as in the paper: every macro
// site emits the same number of instructions in the base case (nops) and
// the test case.
package kernel

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/costfn"
)

// Code-path identities: the 14 macros of Figure 7.
const (
	PathSmpMB arch.PathID = iota + 1
	PathSmpRmb
	PathSmpWmb
	PathSmpMBBeforeAtomic
	PathSmpMBAfterAtomic
	PathSmpStoreMB
	PathReadOnce
	PathWriteOnce
	PathSmpLoadAcquire
	PathSmpStoreRelease
	PathReadBarrierDepends
	PathMB
	PathRMB
	PathWMB
	// NumPaths is one past the last macro path id.
	NumPaths
)

// Paths lists all macro code paths in Figure 7's order of presentation.
var Paths = []arch.PathID{
	PathSmpMB, PathReadOnce, PathReadBarrierDepends, PathSmpRmb, PathSmpWmb,
	PathSmpMBBeforeAtomic, PathSmpStoreMB, PathSmpMBAfterAtomic, PathWriteOnce,
	PathSmpLoadAcquire, PathSmpStoreRelease, PathRMB, PathMB, PathWMB,
}

var pathNames = map[arch.PathID]string{
	PathSmpMB:              "smp_mb",
	PathSmpRmb:             "smp_rmb",
	PathSmpWmb:             "smp_wmb",
	PathSmpMBBeforeAtomic:  "smp_mb_before_atomic",
	PathSmpMBAfterAtomic:   "smp_mb_after_atomic",
	PathSmpStoreMB:         "smp_store_mb",
	PathReadOnce:           "read_once",
	PathWriteOnce:          "write_once",
	PathSmpLoadAcquire:     "smp_load_acquire",
	PathSmpStoreRelease:    "smp_store_release",
	PathReadBarrierDepends: "read_barrier_depends",
	PathMB:                 "mb",
	PathRMB:                "rmb",
	PathWMB:                "wmb",
}

// PathName returns the macro name for a kernel code path.
func PathName(p arch.PathID) string {
	if n, ok := pathNames[p]; ok {
		return n
	}
	return "?"
}

// RBDImpl selects the read_barrier_depends implementation under test
// (Figure 10).
type RBDImpl uint8

const (
	// RBDNone is the default: a pure compiler barrier, no instructions.
	RBDNone RBDImpl = iota
	// RBDCtrl introduces a true control dependency: the last-loaded value
	// is compared against a constant (42) and a conditional branch jumps
	// over an impotent instruction (ARMv8 manual B2.7.4).
	RBDCtrl
	// RBDCtrlISB is RBDCtrl followed by an isb, the architecturally
	// sufficient load-ordering idiom.
	RBDCtrlISB
	// RBDIshLd implements the macro as a dmb ishld.
	RBDIshLd
	// RBDIsh implements the macro as a full dmb ish.
	RBDIsh
)

// String names the implementation as in Figure 10's x-axis.
func (r RBDImpl) String() string {
	switch r {
	case RBDNone:
		return "base case"
	case RBDCtrl:
		return "ctrl"
	case RBDCtrlISB:
		return "ctrl+isb"
	case RBDIshLd:
		return "dmb ishld"
	case RBDIsh:
		return "dmb ish"
	default:
		return fmt.Sprintf("rbd(%d)", uint8(r))
	}
}

// Strategy is a fencing strategy for the kernel platform.
type Strategy struct {
	Name string
	// RBD selects the read_barrier_depends implementation.
	RBD RBDImpl
	// LASR supplements RBDIshLd by adding dmb ishld to READ_ONCE and
	// dmb ishst to WRITE_ONCE (the la/sr strategy of §4.3.1).
	LASR bool
}

// Default returns the stock Linux 4.2 strategy.
func Default() Strategy { return Strategy{Name: "default"} }

// Strategies returns the Figure 10 test implementations, in the figure's
// order: base case, ctrl, ctrl+isb, dmb ishld, dmb ish, la/sr.
func Strategies() []Strategy {
	return []Strategy{
		{Name: "base case"},
		{Name: "ctrl", RBD: RBDCtrl},
		{Name: "ctrl+isb", RBD: RBDCtrlISB},
		{Name: "dmb ishld", RBD: RBDIshLd},
		{Name: "dmb ish", RBD: RBDIsh},
		{Name: "la/sr", RBD: RBDIshLd, LASR: true},
	}
}

// Config assembles a kernel platform instance.
type Config struct {
	Prof     *arch.Profile
	Strategy Strategy
	// Inject maps macro code paths to injections; absent paths get
	// nothing.  For a fair base case, populate instrumented paths with
	// costfn.Nops.
	Inject map[arch.PathID]costfn.Injection
}

// Kernel is the code generator for one platform configuration.
type Kernel struct {
	cfg Config
}

// New returns a kernel code generator.
func New(cfg Config) *Kernel { return &Kernel{cfg: cfg} }

// Prof returns the platform's architecture profile.
func (k *Kernel) Prof() *arch.Profile { return k.cfg.Prof }

// Strategy returns the platform's fencing strategy.
func (k *Kernel) Strategy() Strategy { return k.cfg.Strategy }

// site wraps the emission of a macro body: injection first, then the
// macro's instruction sequence, all attributed to the macro's path.
func (k *Kernel) site(b *arch.Builder, p arch.PathID, body func()) {
	old := b.SetSite(p)
	k.cfg.Inject[p].Apply(b)
	if body != nil {
		body()
	}
	b.SetSite(old)
}

// full emits the full barrier for the profile (dmb ish / hwsync).
func (k *Kernel) full(b *arch.Builder) {
	if k.cfg.Prof.Flavor == arch.NonMCA {
		b.Fence(arch.HwSync)
	} else {
		b.Fence(arch.DMBIsh)
	}
}

// rmbInstr emits the read-barrier instruction (dmb ishld / lwsync).
func (k *Kernel) rmbInstr(b *arch.Builder) {
	if k.cfg.Prof.Flavor == arch.NonMCA {
		b.Fence(arch.LwSync)
	} else {
		b.Fence(arch.DMBIshLd)
	}
}

// wmbInstr emits the write-barrier instruction (dmb ishst / lwsync).
func (k *Kernel) wmbInstr(b *arch.Builder) {
	if k.cfg.Prof.Flavor == arch.NonMCA {
		b.Fence(arch.LwSync)
	} else {
		b.Fence(arch.DMBIshSt)
	}
}

// SmpMB emits smp_mb(): the full SMP barrier.
func (k *Kernel) SmpMB(b *arch.Builder) {
	k.site(b, PathSmpMB, func() { k.full(b) })
}

// SmpRmb emits smp_rmb().
func (k *Kernel) SmpRmb(b *arch.Builder) {
	k.site(b, PathSmpRmb, func() { k.rmbInstr(b) })
}

// SmpWmb emits smp_wmb().
func (k *Kernel) SmpWmb(b *arch.Builder) {
	k.site(b, PathSmpWmb, func() { k.wmbInstr(b) })
}

// SmpMBBeforeAtomic emits smp_mb__before_atomic().
func (k *Kernel) SmpMBBeforeAtomic(b *arch.Builder) {
	k.site(b, PathSmpMBBeforeAtomic, func() { k.full(b) })
}

// SmpMBAfterAtomic emits smp_mb__after_atomic().
func (k *Kernel) SmpMBAfterAtomic(b *arch.Builder) {
	k.site(b, PathSmpMBAfterAtomic, func() { k.full(b) })
}

// SmpStoreMB emits smp_store_mb(addr, v): a store followed by smp_mb.
func (k *Kernel) SmpStoreMB(b *arch.Builder, rs, rn arch.Reg, off int64) {
	k.site(b, PathSmpStoreMB, func() {
		b.Store(rs, rn, off)
		k.full(b)
	})
}

// ReadOnce emits READ_ONCE(rd = [rn+off]).  By default it is a compiler
// barrier only (a plain load); the la/sr strategy appends dmb ishld.
func (k *Kernel) ReadOnce(b *arch.Builder, rd, rn arch.Reg, off int64) {
	k.site(b, PathReadOnce, func() {
		b.Load(rd, rn, off)
		if k.cfg.Strategy.LASR {
			b.Fence(arch.DMBIshLd)
		}
	})
}

// WriteOnce emits WRITE_ONCE([rn+off] = rs).  By default a plain store;
// the la/sr strategy prepends dmb ishst.
func (k *Kernel) WriteOnce(b *arch.Builder, rs, rn arch.Reg, off int64) {
	k.site(b, PathWriteOnce, func() {
		if k.cfg.Strategy.LASR {
			b.Fence(arch.DMBIshSt)
		}
		b.Store(rs, rn, off)
	})
}

// LoadAcquire emits smp_load_acquire(rd = [rn+off]).
func (k *Kernel) LoadAcquire(b *arch.Builder, rd, rn arch.Reg, off int64) {
	k.site(b, PathSmpLoadAcquire, func() {
		if k.cfg.Prof.Flavor == arch.NonMCA {
			b.Load(rd, rn, off)
			b.Fence(arch.LwSync)
		} else {
			b.LoadAcq(rd, rn, off)
		}
	})
}

// StoreRelease emits smp_store_release([rn+off] = rs).
func (k *Kernel) StoreRelease(b *arch.Builder, rs, rn arch.Reg, off int64) {
	k.site(b, PathSmpStoreRelease, func() {
		if k.cfg.Prof.Flavor == arch.NonMCA {
			b.Fence(arch.LwSync)
			b.Store(rs, rn, off)
		} else {
			b.StoreRel(rs, rn, off)
		}
	})
}

// ReadBarrierDepends emits read_barrier_depends() under the configured
// strategy.  lastLoad is the register holding the most recently loaded
// value, against which the ctrl variants form their control dependency.
func (k *Kernel) ReadBarrierDepends(b *arch.Builder, lastLoad arch.Reg) {
	k.site(b, PathReadBarrierDepends, func() {
		switch k.cfg.Strategy.RBD {
		case RBDNone:
			// Compiler barrier: no instructions.
		case RBDCtrl:
			skip := fmt.Sprintf("rbd_ctrl_%d", b.Len())
			b.CmpImm(lastLoad, 42)
			b.Bne(skip)
			b.Nop() // the impotent instruction branched over
			b.Label(skip)
		case RBDCtrlISB:
			skip := fmt.Sprintf("rbd_ctlisb_%d", b.Len())
			b.CmpImm(lastLoad, 42)
			b.Bne(skip)
			b.Nop()
			b.Label(skip)
			b.Fence(arch.ISB)
		case RBDIshLd:
			b.Fence(arch.DMBIshLd)
		case RBDIsh:
			b.Fence(arch.DMBIsh)
		}
	})
}

// MB, RMB and WMB are the mandatory (non-SMP) barriers; they are stronger
// than their smp_ counterparts on real hardware (dsb-class) and appear
// rarely outside driver code, which is why they sit at the bottom of
// Figure 7's impact ranking.
func (k *Kernel) MB(b *arch.Builder) {
	k.site(b, PathMB, func() { k.full(b) })
}

// RMB emits rmb().
func (k *Kernel) RMB(b *arch.Builder) {
	k.site(b, PathRMB, func() { k.rmbInstr(b) })
}

// WMB emits wmb().
func (k *Kernel) WMB(b *arch.Builder) {
	k.site(b, PathWMB, func() { k.wmbInstr(b) })
}
