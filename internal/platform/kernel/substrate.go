package kernel

import (
	"fmt"

	"repro/internal/arch"
)

// This file provides the concurrency substrate the kernel benchmarks are
// built on.  Every primitive is expressed in terms of the barrier macros,
// so instrumenting a macro instruments every primitive that uses it — the
// kernel benchmarks' sensitivity to a macro is then an emergent property
// of how often their primitives run, exactly as on the real system.

// Scratch registers reserved by the substrate emitters.
const (
	scratchA arch.Reg = 21
	scratchB arch.Reg = 22
	scratchC arch.Reg = 23
)

func label(b *arch.Builder, prefix string) string {
	return fmt.Sprintf("%s_%d", prefix, b.Len())
}

// SpinLock emits acquisition of a test-and-set spinlock at [rn + off]
// (0 = free, 1 = held).  The spin read is a READ_ONCE and the acquisition
// is followed by smp_mb__after_atomic, as in the kernel's qspinlock slow
// path.
func (k *Kernel) SpinLock(b *arch.Builder, rn arch.Reg, off int64) {
	retry := label(b, "klock")
	b.Label(retry)
	// Spin until the lock looks free.  The poll is hand-written assembly
	// in the real kernel (arch_spin_lock), not the READ_ONCE macro, so
	// macro instrumentation and the la/sr strategy do not touch it.
	b.Load(scratchA, rn, off)
	b.CmpImm(scratchA, 0)
	b.Bne(retry)
	// Attempt the exclusive acquisition.
	b.LoadEx(scratchA, rn, off)
	b.CmpImm(scratchA, 0)
	b.Bne(retry)
	b.MovImm(scratchB, 1)
	b.StoreEx(scratchC, scratchB, rn, off)
	b.CmpImm(scratchC, 0)
	b.Bne(retry)
	// Acquire ordering comes from the exclusive pair itself (ldaxr on
	// arm64); the lock fast path invokes no barrier macro.
}

// SpinUnlock emits release of the spinlock.  Like the acquisition spin,
// the release is hand-written per-architecture assembly in the kernel
// (arch_spin_unlock: stlr on arm64, lwsync;store on POWER), so it does not
// pass through the smp_store_release macro's code path.
func (k *Kernel) SpinUnlock(b *arch.Builder, rn arch.Reg, off int64) {
	b.MovImm(scratchA, 0)
	if k.cfg.Prof.Flavor == arch.NonMCA {
		b.Fence(arch.LwSync)
		b.Store(scratchA, rn, off)
	} else {
		b.StoreRel(scratchA, rn, off)
	}
}

// AtomicInc emits an atomic increment of [rn + off] bracketed by the
// smp_mb__before/after_atomic pair, leaving the new value in rd.
func (k *Kernel) AtomicInc(b *arch.Builder, rd, rn arch.Reg, off int64) {
	k.SmpMBBeforeAtomic(b)
	retry := label(b, "kinc")
	b.Label(retry)
	b.LoadEx(scratchA, rn, off)
	b.AddImm(rd, scratchA, 1)
	b.StoreEx(scratchB, rd, rn, off)
	b.CmpImm(scratchB, 0)
	b.Bne(retry)
	k.SmpMBAfterAtomic(b)
}

// RCUAssign publishes a value: initialise the pointed-to data before the
// pointer becomes visible (rcu_assign_pointer in its classic smp_wmb +
// WRITE_ONCE form, which Linux 4.2 drivers still use widely).
func (k *Kernel) RCUAssign(b *arch.Builder, rs, rn arch.Reg, off int64) {
	k.SmpWmb(b)
	k.WriteOnce(b, rs, rn, off)
}

// RCUDereference reads a published pointer-like value: READ_ONCE followed
// by read_barrier_depends (the rcu_dereference idiom §4.3).  rd receives
// the value; the rbd control variants depend on it.
func (k *Kernel) RCUDereference(b *arch.Builder, rd, rn arch.Reg, off int64) {
	k.ReadOnce(b, rd, rn, off)
	k.ReadBarrierDepends(b, rd)
}

// Queue cell layout: a rings of power-of-two size; each slot is one word,
// with head and tail counters on their own lines.
//
//	base+0:   head (producer index, published)
//	base+8:   tail (consumer index)
//	base+16+: slots
const (
	qHead    = 0
	qTail    = 8
	qSlot0   = 16
	QueueHdr = qSlot0
)

// QueuePush emits a single-producer push of rs onto the ring at base rn
// with slotMask slots-1: write the payload, smp_wmb, publish the new head
// with WRITE_ONCE.  This is the skb-queue shape the netperf benchmarks
// hammer.  Clobbers the scratch registers.
func (k *Kernel) QueuePush(b *arch.Builder, rs, rn arch.Reg, slotMask int64) {
	// head is producer-private; a plain load suffices to read it.
	b.Load(scratchA, rn, qHead)
	b.MovImm(scratchB, slotMask)
	b.And(scratchB, scratchA, scratchB)
	b.Lsl(scratchB, scratchB, 3)
	b.Add(scratchB, rn, scratchB)
	b.Store(rs, scratchB, qSlot0)
	// Publish: payload before index.
	k.SmpWmb(b)
	b.AddImm(scratchA, scratchA, 1)
	k.WriteOnce(b, scratchA, rn, qHead)
}

// QueuePop emits a single-consumer pop from the ring at base rn into rd,
// spinning until an element is available: READ_ONCE(head), compare to
// tail, rcu-style dependent read of the slot, advance tail.
func (k *Kernel) QueuePop(b *arch.Builder, rd, rn arch.Reg, slotMask int64) {
	wait := label(b, "kqpop")
	b.Label(wait)
	k.ReadOnce(b, scratchA, rn, qHead)
	b.Load(scratchB, rn, qTail)
	b.Cmp(scratchA, scratchB)
	b.Beq(wait) // empty
	// Dependency-ordered read of the slot published at tail.
	k.ReadBarrierDepends(b, scratchA)
	b.MovImm(scratchC, slotMask)
	b.And(scratchC, scratchB, scratchC)
	b.Lsl(scratchC, scratchC, 3)
	b.Add(scratchC, rn, scratchC)
	b.Load(rd, scratchC, qSlot0)
	b.AddImm(scratchB, scratchB, 1)
	b.Store(scratchB, rn, qTail)
}

// QueueTryPop is QueuePop without the blocking spin: if the queue is
// empty it leaves -1 in rd and falls through.
func (k *Kernel) QueueTryPop(b *arch.Builder, rd, rn arch.Reg, slotMask int64) {
	empty := label(b, "kqtry_empty")
	done := label(b, "kqtry_done")
	k.ReadOnce(b, scratchA, rn, qHead)
	b.Load(scratchB, rn, qTail)
	b.Cmp(scratchA, scratchB)
	b.Beq(empty)
	k.ReadBarrierDepends(b, scratchA)
	b.MovImm(scratchC, slotMask)
	b.And(scratchC, scratchB, scratchC)
	b.Lsl(scratchC, scratchC, 3)
	b.Add(scratchC, rn, scratchC)
	b.Load(rd, scratchC, qSlot0)
	b.AddImm(scratchB, scratchB, 1)
	b.Store(scratchB, rn, qTail)
	b.B(done)
	b.Label(empty)
	b.MovImm(rd, -1)
	b.Label(done)
}

// SeqWriteBegin/SeqWriteEnd bracket a seqlock writer critical section on
// the sequence word at [rn + off].
func (k *Kernel) SeqWriteBegin(b *arch.Builder, rn arch.Reg, off int64) {
	b.Load(scratchA, rn, off)
	b.AddImm(scratchA, scratchA, 1)
	k.WriteOnce(b, scratchA, rn, off)
	k.SmpWmb(b)
}

// SeqWriteEnd completes the seqlock write-side critical section.
func (k *Kernel) SeqWriteEnd(b *arch.Builder, rn arch.Reg, off int64) {
	k.SmpWmb(b)
	b.Load(scratchA, rn, off)
	b.AddImm(scratchA, scratchA, 1)
	k.WriteOnce(b, scratchA, rn, off)
}

// SeqReadRetry emits a seqlock read-side section: sample the sequence,
// run body, re-sample; retry while the writer was active.  body receives
// the builder and must not clobber scratchA.
func (k *Kernel) SeqReadRetry(b *arch.Builder, rn arch.Reg, off int64, body func(*arch.Builder)) {
	retry := label(b, "kseq")
	b.Label(retry)
	k.ReadOnce(b, scratchA, rn, off)
	k.SmpRmb(b)
	body(b)
	k.SmpRmb(b)
	k.ReadOnce(b, scratchB, rn, off)
	b.Cmp(scratchA, scratchB)
	b.Bne(retry)
	// An odd sequence means a writer was mid-flight; retry too.
	b.MovImm(scratchC, 1)
	b.And(scratchC, scratchB, scratchC)
	b.CmpImm(scratchC, 0)
	b.Bne(retry)
}

// SyscallEnter/SyscallExit model the fixed memory-ordering work on the
// kernel entry/exit path (seqcount reads of the vDSO data page, mandatory
// barriers around device state in some paths), which is what gives the
// lmbench-style syscall microbenchmarks their macro sensitivity.
func (k *Kernel) SyscallEnter(b *arch.Builder, rn arch.Reg, off int64) {
	// vDSO-style seqcount read: READ_ONCE of the sequence, smp_rmb, then
	// the entry barrier.
	k.ReadOnce(b, scratchA, rn, off)
	k.SmpRmb(b)
	k.SmpMB(b)
}

// SyscallExit emits the return-path ordering.
func (k *Kernel) SyscallExit(b *arch.Builder, rn arch.Reg, off int64) {
	k.SmpMB(b)
	k.WriteOnce(b, scratchA, rn, off)
}
