package kernel

import "repro/internal/arch"

// This file adds the read-copy-update machinery the paper names as one of
// the "larger concurrency frameworks" built over the barrier macros (§4.3):
// per-CPU nesting counters for the read side and a counter-sampling
// synchronize_rcu for the write side.
//
// The real kernel's read side is free (quiescence is inferred from context
// switches); a user-level toy cannot see context switches, so this
// implementation uses the classic atomically-visible nesting counters
// instead: the read-side enter/exit are uncontended exclusives (coherent,
// hence immediately globally visible), and the grace-period loop samples
// them coherently.  With the kernel's smp_mb on both sides of the sampling
// this is sound on both machines: a reader section either completes before
// the sampling passes its CPU, or it began after the updater's
// publication was visible everywhere — in which case its dereference
// (address-dependent, hence ordered) observes the new version.
//
// Memory layout: an RCU domain occupies one counter line per CPU.
//
//	base + 16*cpu : read-side nesting counter of cpu

// RCUDomainWords returns the words an RCU domain occupies for n CPUs.
func RCUDomainWords(n int) int64 { return 16 * int64(n) }

// rcuBump emits an atomic add of delta to the per-CPU counter.  The
// counter is CPU-private, so the exclusive loop succeeds first try unless
// the grace-period sampler's exclusive read intervenes.
func (k *Kernel) rcuBump(b *arch.Builder, rn arch.Reg, cpu int, delta int64) {
	off := 16 * int64(cpu)
	retry := label(b, "rcu_bump")
	b.Label(retry)
	b.LoadEx(scratchA, rn, off)
	b.AddImm(scratchA, scratchA, delta)
	b.StoreEx(scratchB, scratchA, rn, off)
	b.CmpImm(scratchB, 0)
	b.Bne(retry)
}

// RCUReadLock enters a read-side critical section for the executing cpu.
func (k *Kernel) RCUReadLock(b *arch.Builder, rn arch.Reg, cpu int) {
	k.rcuBump(b, rn, cpu, 1)
}

// RCUReadUnlock leaves the read-side critical section.
func (k *Kernel) RCUReadUnlock(b *arch.Builder, rn arch.Reg, cpu int) {
	k.rcuBump(b, rn, cpu, -1)
}

// SynchronizeRCU waits for a grace period: after a full barrier, it polls
// every CPU's nesting counter until it observes it quiescent (zero), then
// issues the closing full barrier.  The counters are sampled coherently
// (exclusive loads), so a non-quiescent CPU can never be missed; the
// smp_mb pair provides the ordering the paper's macro instrumentation
// sees on real grace-period paths.
//
// The caller must guarantee every reader eventually exits its critical
// section (all substrate read sections are bounded), or the wait spins
// forever, as on the real system.
func (k *Kernel) SynchronizeRCU(b *arch.Builder, rn arch.Reg, cpus int) {
	// Order the updater's prior stores (the publication) against the
	// sampling: after this barrier the new version is visible everywhere.
	k.SmpMB(b)
	for cpu := 0; cpu < cpus; cpu++ {
		off := 16 * int64(cpu)
		wait := label(b, "rcu_gp")
		b.Label(wait)
		b.LoadEx(scratchA, rn, off)
		b.CmpImm(scratchA, 0)
		b.Bne(wait)
	}
	// Order the grace period against the updater's subsequent frees.
	k.SmpMB(b)
}
