package kernel

import "fmt"

// Declarative strategy-space encoding: the Figure 10 implementations as
// round-trippable values the optimizer can enumerate, ship across the wire
// and reconstruct on workers.

// Spec is the round-trippable encoding of a Strategy.  The RBD field uses
// the Figure 10 x-axis names ("base case", "ctrl", "ctrl+isb",
// "dmb ishld", "dmb ish").
type Spec struct {
	RBD  string `json:"rbd"`
	LASR bool   `json:"lasr,omitempty"`
}

// rbdImpls lists the implementations in Figure 10 order.
var rbdImpls = []RBDImpl{RBDNone, RBDCtrl, RBDCtrlISB, RBDIshLd, RBDIsh}

// ParseRBD decodes a Figure 10 implementation name.
func ParseRBD(name string) (RBDImpl, error) {
	for _, r := range rbdImpls {
		if r.String() == name {
			return r, nil
		}
	}
	return 0, fmt.Errorf("kernel: unknown read_barrier_depends implementation %q", name)
}

// Spec returns the declarative encoding of the strategy.
func (s Strategy) Spec() Spec {
	return Spec{RBD: s.RBD.String(), LASR: s.LASR}
}

// FromSpec decodes a Spec into a Strategy with its canonical Figure 10
// name ("la/sr" for the LASR-supplemented dmb ishld variant).
func FromSpec(sp Spec) (Strategy, error) {
	rbd, err := ParseRBD(sp.RBD)
	if err != nil {
		return Strategy{}, err
	}
	st := Strategy{RBD: rbd, LASR: sp.LASR}
	switch {
	case sp.LASR && rbd == RBDIshLd:
		st.Name = "la/sr"
	case sp.LASR:
		st.Name = rbd.String() + "+la/sr"
	default:
		st.Name = rbd.String()
	}
	return st, nil
}

// Enumerate returns the kernel strategy space in Figure 10 order; it is
// exactly the Strategies() catalogue.
func Enumerate() []Strategy { return Strategies() }
